(* Network-driver resilience (the paper's Sec. 6.1 / Fig. 7 scenario):
   download a file over TCP while a crash script repeatedly SIGKILLs
   the Ethernet driver, then verify the MD5 of the received data.

   Run with:  dune exec examples/network_resilience.exe *)

module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Reincarnation = Resilix_core.Reincarnation
module Peer = Resilix_net.Peer
module Wget = Resilix_apps.Wget

let () =
  let size = 16 * 1024 * 1024 in
  let opts =
    { System.default_opts with System.peer_files = [ ("movie.bin", (size, 99)) ]; disk_mb = 8 }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_rtl8139 ~policy:"direct" () ];

  (* wget, with MD5 verification like the paper. *)
  let result = Wget.fresh_result () in
  ignore
    (System.spawn_app t ~name:"wget"
       (Wget.make ~server:Hwmap.rtl_peer_ip ~port:80 ~file:"movie.bin" ~with_md5:true result));

  (* The crash script: kill the driver every 500 ms, forever. *)
  System.start_crash_script t ~target:"eth.rtl8139" ~interval:500_000 ();

  let finished = System.run_until t ~timeout:600_000_000 (fun () -> result.Wget.finished) in
  let duration = float_of_int (result.Wget.finished_at - result.Wget.started_at) /. 1e6 in
  Printf.printf "transfer finished: %b (%d bytes in %.2f s = %.2f MB/s)\n" finished
    result.Wget.bytes duration
    (float_of_int result.Wget.bytes /. 1e6 /. duration);
  Printf.printf "driver recoveries during the download: %d\n"
    (Reincarnation.restarts_of t.System.rs "eth.rtl8139");
  let expected = Peer.file_md5 t.System.rtl_peer "movie.bin" in
  Printf.printf "md5 received: %s\n" result.Wget.md5;
  Printf.printf "md5 expected: %s\n" (Option.value ~default:"?" expected);
  Printf.printf "integrity: %s\n"
    (if Some result.Wget.md5 = expected then "INTACT — recovery was transparent"
     else "CORRUPTED")
