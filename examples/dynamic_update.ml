(* Dynamic update (the paper's Sec. 5.1 defect class 6): replace a
   running driver with a patched binary, on the fly, without a reboot
   — "such dynamic updates ... can significantly increase system
   availability".

   Run with:  dune exec examples/dynamic_update.exe *)

module System = Resilix_system.System
module Kernel = Resilix_kernel.Kernel
module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Privilege = Resilix_proto.Privilege
module Spec = Resilix_proto.Spec
module Status = Resilix_proto.Status
module Driver_lib = Resilix_drivers.Driver_lib
module Reincarnation = Resilix_core.Reincarnation
module Service = Resilix_core.Service

(* A trivial versioned "driver": answers the "version" ioctl. *)
let versioned version () =
  Driver_lib.run_dev
    {
      Driver_lib.default_dev_handlers with
      Driver_lib.dh_ioctl =
        (fun ~src:_ ~minor:_ ~op ~arg:_ ->
          if String.equal op "version" then Driver_lib.Reply (Ok version)
          else Driver_lib.Reply (Error Errno.E_inval));
    }

let query_version () =
  match Service.lookup "svc.widget" with
  | Error _ -> -1
  | Ok (ep, _) -> (
      match Api.sendrec ep (Message.Dev_ioctl { minor = 0; op = "version"; arg = 0 }) with
      | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Ok v }; _ }) -> v
      | _ -> -1)

let () =
  let t = System.boot () in
  (* Two versions of the driver binary in the program registry. *)
  Kernel.register_program t.System.kernel "widget-v1" (versioned 1);
  Kernel.register_program t.System.kernel "widget-v2" (versioned 2);
  let spec =
    Spec.make ~name:"svc.widget" ~program:"widget-v1"
      ~privileges:(Privilege.driver ~ipc_to:[ "vfs" ] ~io_ports:[] ~irqs:[])
      ~policy:"generic" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  let log = ref [] in
  let done_flag = ref false in
  ignore
    (System.spawn_app t ~name:"admin"
       ~priv:{ Privilege.app with Privilege.ipc_to = Privilege.All }
       (fun () ->
         log := Printf.sprintf "running version: %d" (query_version ()) :: !log;
         (* `service refresh` with the patched binary. *)
         (match Service.refresh ~program:"widget-v2" "svc.widget" with
         | Ok () -> log := "refresh accepted (SIGTERM sent, new binary staged)" :: !log
         | Error e -> log := ("refresh failed: " ^ Errno.to_string e) :: !log);
         let rec wait n =
           if n = 0 then ()
           else begin
             Api.sleep 100_000;
             let v = query_version () in
             if v = 2 then log := "running version: 2 (update live)" :: !log else wait (n - 1)
           end
         in
         wait 50;
         done_flag := true));
  ignore (System.run_until t ~timeout:60_000_000 (fun () -> !done_flag));
  List.iter print_endline (List.rev !log);
  List.iter
    (fun e ->
      Printf.printf "RS recorded: defect class %d (%s)%s\n"
        (Status.defect_number e.Reincarnation.defect)
        (Status.defect_name e.Reincarnation.defect)
        (match e.Reincarnation.recovered_at with
        | Some r ->
            Printf.sprintf ", downtime %.1f ms — no exponential backoff for updates"
              (float_of_int (r - e.Reincarnation.detected_at) /. 1e3)
        | None -> ""))
    (Reincarnation.events t.System.rs)
