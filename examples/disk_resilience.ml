(* Disk-driver resilience (the paper's Sec. 6.2 / Fig. 8 scenario):
   read a large file (dd | sha1sum) while the SATA driver is killed
   mid-transfer; the file server reissues pending block I/O and the
   checksum is identical to an undisturbed run.

   Run with:  dune exec examples/disk_resilience.exe *)

module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Reincarnation = Resilix_core.Reincarnation
module Mfs = Resilix_fs.Mfs
module Dd = Resilix_apps.Dd

let run_once ~kill =
  let size = 32 * 1024 * 1024 in
  let opts =
    { System.default_opts with System.fs_files = [ ("big.bin", size) ]; disk_mb = 40 }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_sata ~policy:"direct" () ];
  let result = Dd.fresh_result () in
  ignore (System.spawn_app t ~name:"dd" (Dd.make ~path:"/big.bin" ~with_sha1:true result));
  if kill then begin
    ignore
      (Engine.schedule t.System.engine ~after:300_000 (fun () ->
           ignore (System.kill_service_once t ~target:"blk.sata")));
    ignore
      (Engine.schedule t.System.engine ~after:1_200_000 (fun () ->
           ignore (System.kill_service_once t ~target:"blk.sata")))
  end;
  ignore (System.run_until t ~timeout:600_000_000 (fun () -> result.Dd.finished));
  (result, Reincarnation.restarts_of t.System.rs "blk.sata", Mfs.reissued_ios t.System.mfs)

let () =
  Printf.printf "pass 1: undisturbed read...\n%!";
  let clean, _, _ = run_once ~kill:false in
  Printf.printf "  sha1 = %s (%d bytes)\n%!" clean.Dd.sha1 clean.Dd.bytes;
  Printf.printf "pass 2: same read with two SIGKILLs of blk.sata...\n%!";
  let crashed, recoveries, redone = run_once ~kill:true in
  Printf.printf "  sha1 = %s (%d bytes)\n" crashed.Dd.sha1 crashed.Dd.bytes;
  Printf.printf "  driver recoveries: %d, block I/Os redone: %d\n" recoveries redone;
  Printf.printf "checksums %s\n"
    (if String.equal clean.Dd.sha1 crashed.Dd.sha1 && clean.Dd.sha1 <> "" then
       "IDENTICAL — recovery was transparent and lossless"
     else "DIFFER — data corruption!")
