(* Quickstart: boot the machine, start a guarded driver, kill it, and
   watch the reincarnation server bring it back.

   Run with:  dune exec examples/quickstart.exe *)

module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Reincarnation = Resilix_core.Reincarnation
module Status = Resilix_proto.Status

let () =
  (* 1. Boot the simulated machine: microkernel, devices, and the
        trusted servers (PM, DS, RS, VFS, MFS, INET) of Fig. 1. *)
  let t = System.boot () in

  (* 2. Start the SATA driver through the service utility.  The spec
        carries its least-authority privileges, heartbeat period and
        recovery policy — the paper's Sec. 5 arguments. *)
  System.start_services t [ System.spec_sata ~policy:"direct" () ];
  Printf.printf "driver up: %b\n%!" (Reincarnation.service_up t.System.rs "blk.sata");

  (* 3. Simulate a driver crash one second in. *)
  ignore
    (Engine.schedule t.System.engine ~after:1_000_000 (fun () ->
         Printf.printf "[%.3fs] killing blk.sata with SIGKILL\n%!"
           (float_of_int (Engine.now t.System.engine) /. 1e6);
         ignore (System.kill_service_once t ~target:"blk.sata")));

  (* 4. Run for three simulated seconds and report what RS observed. *)
  System.run t ~until:3_000_000;
  List.iter
    (fun e ->
      Printf.printf "[%.3fs] defect in %s: %s (failure #%d)%s\n"
        (float_of_int e.Reincarnation.detected_at /. 1e6)
        e.Reincarnation.component
        (Status.defect_name e.Reincarnation.defect)
        e.Reincarnation.repetition
        (match e.Reincarnation.recovered_at with
        | Some r -> Printf.sprintf " -> recovered %.1f ms later" (float_of_int (r - e.Reincarnation.detected_at) /. 1e3)
        | None -> " -> NOT recovered"))
    (Reincarnation.events t.System.rs);
  Printf.printf "driver up again: %b\n" (Reincarnation.service_up t.System.rs "blk.sata")
