(* Software fault injection (the paper's Sec. 7.2): corrupt the
   running DP8390 driver's code image with the seven binary-mutation
   fault types while UDP traffic flows, and watch defects being
   detected and recovered.

   Run with:  dune exec examples/fault_injection_demo.exe *)

module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Engine = Resilix_sim.Engine
module Message = Resilix_proto.Message
module Status = Resilix_proto.Status
module Reincarnation = Resilix_core.Reincarnation
module Fault = Resilix_vm.Fault
module Sockets = Resilix_apps.Sockets
module Api = Resilix_kernel.Sysif.Api
module Dp8390 = Resilix_drivers.Netdriver_dp8390

let () =
  let opts = { System.default_opts with System.inet_driver = "eth.dp8390"; disk_mb = 8 } in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_dp8390 ~policy:"direct" ~heartbeat_period:200_000 () ];

  (* Background UDP traffic keeps the driver's code hot. *)
  let received = ref 0 in
  ignore
    (System.spawn_app t ~name:"udp-sink" (fun () ->
         match Sockets.socket Message.Udp with
         | Error _ -> ()
         | Ok sock ->
             ignore (Sockets.listen sock ~port:9);
             let rec pump () =
               (match Sockets.recvfrom sock ~len:2048 with
               | Ok _ -> incr received
               | Error _ -> Api.sleep 50_000);
               pump ()
             in
             pump ()));
  let _stop =
    Resilix_net.Peer.start_udp_stream t.System.dp_peer ~dst_ip:Hwmap.local_ip
      ~dst_mac:Hwmap.dp8390_mac ~dst_port:9 ~src_port:7777 ~payload_len:700 ~interval:10_000
  in
  System.run t ~until:500_000;

  (* Inject one random fault every 50 ms until the driver has crashed
     and recovered five times.  Some faults are silent but disabling
     (the driver looks healthy, traffic stops); as in the paper's
     defect class 3, the "user" notices and requests a restart. *)
  let image = Dp8390.image_info ~base:Hwmap.dp8390_base in
  let injected = ref 0 in
  let last_rx = ref 0 and last_progress = ref 0 in
  let rec inject () =
    if Reincarnation.restarts_of t.System.rs "eth.dp8390" < 5 && !injected < 3000 then begin
      let now = Engine.now t.System.engine in
      if !received > !last_rx then begin
        last_rx := !received;
        last_progress := now
      end
      else if now - !last_progress > 1_500_000 then begin
        last_progress := now;
        Printf.printf "[%.2fs] traffic stalled (silent fault): user requests a restart\n%!"
          (float_of_int now /. 1e6);
        ignore (System.kill_service_once t ~target:"eth.dp8390")
      end;
      let ft = Fault.random_type t.System.rng in
      (match System.inject_fault t ~target:"eth.dp8390" ~image ft with
      | Some what ->
          incr injected;
          if !injected <= 10 then
            Printf.printf "[%.2fs] injected %-22s (%s)\n%!"
              (float_of_int (Engine.now t.System.engine) /. 1e6)
              (Fault.to_string ft) what
      | None -> ());
      ignore (Engine.schedule t.System.engine ~after:50_000 inject)
    end
  in
  inject ();
  ignore
    (System.run_until t ~timeout:600_000_000 (fun () ->
         Reincarnation.restarts_of t.System.rs "eth.dp8390" >= 5));
  System.run t ~until:(Engine.now t.System.engine + 1_000_000);

  Printf.printf "\n%d faults injected; %d datagrams delivered despite the crashes\n" !injected
    !received;
  Printf.printf "defects detected and recovered:\n";
  List.iter
    (fun e ->
      Printf.printf "  [%.2fs] class %d (%s)%s\n"
        (float_of_int e.Reincarnation.detected_at /. 1e6)
        (Status.defect_number e.Reincarnation.defect)
        (Status.defect_name e.Reincarnation.defect)
        (match e.Reincarnation.recovered_at with
        | Some r -> Printf.sprintf " — recovered in %.1f ms" (float_of_int (r - e.Reincarnation.detected_at) /. 1e3)
        | None -> " — NOT recovered"))
    (Reincarnation.events t.System.rs)
