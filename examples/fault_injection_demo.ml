(* Software fault injection (the paper's Sec. 7.2), driven through the
   deterministic-simulation-testing layer (lib/dst): explore seeded
   fault plans against the DP8390 driver while UDP traffic flows,
   check the recovery invariants, and minimize a failing run to a
   replayable repro.

   Run with:  dune exec examples/fault_injection_demo.exe *)

module Explore = Resilix_dst.Explore
module Scenario = Resilix_dst.Scenario
module Invariant = Resilix_dst.Invariant
module Replay = Resilix_dst.Replay
module Repro = Resilix_dst.Repro
module Fault_plan = Resilix_dst.Fault_plan

let () =
  let sc = Scenario.dp_inject in

  (* The scenario boots a machine, streams UDP through the driver, and
     fires a seeded fault plan at it — the same workload the old
     hand-rolled version of this demo built by hand.  Under the
     default recovery bound (1 s of virtual time against ~6 ms
     restarts), every seeded schedule upholds the invariants. *)
  let clean = Explore.run sc ~seed:42 ~runs:3 () in
  Printf.printf "explored %s: %d seeded runs, %d invariant violations\n" clean.Explore.scenario
    clean.Explore.runs
    (List.length clean.Explore.failures);
  List.iter
    (fun (e : Fault_plan.entry) -> Printf.printf "  plan of run 0: %s\n" (Fault_plan.entry_to_string e))
    (sc.Scenario.plan ~seed:(Resilix_sim.Rng.derive ~seed:42 ~index:0) ~faults:3);

  (* Tighten the bound to 1 ms — no real restart fits — and every
     injected crash becomes a finding.  This is how a genuine recovery
     regression would surface: as a minimized, replayable repro. *)
  let failing = Explore.run sc ~seed:42 ~runs:3 ~faults:3 ~bound:1_000 () in
  Printf.printf "\nwith a 1 ms recovery bound: %d of %d runs fail\n"
    (List.length failing.Explore.failures)
    failing.Explore.runs;
  match failing.Explore.failures with
  | [] -> print_endline "no findings (unexpected under this bound)"
  | first :: _ -> (
      List.iter
        (fun v -> Printf.printf "  %s\n" (Invariant.pp_violation v))
        first.Explore.o_violations;
      let repro = Explore.to_repro failing first in
      match Replay.shrink repro with
      | Error m -> Printf.printf "shrink failed: %s\n" m
      | Ok min -> (
          Printf.printf "\nshrunk: %d -> %d fault(s), %d -> %d recorded tie-break(s)\n"
            (List.length repro.Repro.plan)
            (List.length min.Repro.plan)
            (Array.length repro.Repro.decisions)
            (Array.length min.Repro.decisions);
          Printf.printf "minimized plan: %s\n" (Fault_plan.pp_compact min.Repro.plan);
          match Replay.run min with
          | Error m -> Printf.printf "replay failed: %s\n" m
          | Ok outcome ->
              Printf.printf "replay reproduces the violation: %b\n" outcome.Replay.reproduced))
