(* Character-device recovery (the paper's Sec. 6.3 / Fig. 6): errors
   are pushed to the application layer.  Three applications, three
   outcomes:

   - the mp3 player survives an audio-driver crash with a hiccup;
   - the printer spooler reissues the job (duplicates possible);
   - the CD burner must report failure — the disc is ruined.

   Run with:  dune exec examples/char_device_recovery.exe *)

module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Audio_dev = Resilix_hw.Audio_dev
module Printer_dev = Resilix_hw.Printer_dev
module Cd_dev = Resilix_hw.Cd_dev
module Api = Resilix_kernel.Sysif.Api
module Mp3 = Resilix_apps.Mp3_player
module Lpd = Resilix_apps.Lpd
module Cdburn = Resilix_apps.Cdburn

let () =
  let t = System.boot ~opts:{ System.default_opts with System.disk_mb = 8 } () in
  System.start_services t [ System.spec_audio (); System.spec_printer (); System.spec_cd () ];

  let song = Mp3.fresh_result () in
  ignore (System.spawn_app t ~name:"mp3" (Mp3.make ~song_bytes:300_000 song));

  let job =
    String.concat "\n" (List.init 2400 (fun i -> Printf.sprintf "line %04d of the report" i))
  in
  let print_job = Lpd.fresh_result () in
  (* The spooler starts after the burn finishes: the simple VFS serves
     one request at a time, and a print job holds it for a while. *)
  ignore
    (System.spawn_app t ~name:"lpd" (fun () ->
         Api.sleep 1_200_000;
         Lpd.make ~jobs:[ job ] print_job ()));

  let disc_image = String.init 300_000 (fun i -> Char.chr (i land 0xFF)) in
  let burn = Cdburn.fresh_result () in
  ignore (System.spawn_app t ~name:"cdburn" (Cdburn.make ~data:disc_image burn));

  (* Crash all three drivers mid-operation. *)
  List.iter
    (fun (delay, target) ->
      ignore
        (Engine.schedule t.System.engine ~after:delay (fun () ->
             Printf.printf "[%.2fs] SIGKILL %s\n%!" (float_of_int delay /. 1e6) target;
             ignore (System.kill_service_once t ~target))))
    [ (400_000, "chr.audio"); (1_700_000, "chr.printer"); (50_000, "chr.cd") ];

  ignore
    (System.run_until t ~timeout:300_000_000 (fun () ->
         song.Mp3.finished && print_job.Lpd.finished && burn.Cdburn.finished));
  (* Let the printer finish feeding paper and the burn-gap watchdog fire. *)
  System.run t ~until:(Engine.now t.System.engine + 3_000_000);
  Printf.printf "\n--- outcomes ---\n";
  Printf.printf "mp3 player : completed=%b reopened %d time(s), hiccups heard: %d\n"
    song.Mp3.completed song.Mp3.recoveries
    (Audio_dev.underruns t.System.audio);
  Printf.printf "lpd        : jobs done=%d, resubmissions=%d, printed %d bytes for a %d-byte job%s\n"
    print_job.Lpd.jobs_done print_job.Lpd.resubmissions
    (String.length (Printer_dev.printed t.System.printer))
    (String.length job)
    (if String.length (Printer_dev.printed t.System.printer) > String.length job then
       " (duplicates, as the paper warns)"
     else "");
  Printf.printf "cd burner  : success=%b, error reported to user=%b, disc is %s\n"
    burn.Cdburn.success burn.Cdburn.error_reported
    (match Cd_dev.disc t.System.cd with
    | Cd_dev.Blank -> "blank"
    | Cd_dev.In_session -> "mid-session"
    | Cd_dev.Complete -> "complete"
    | Cd_dev.Ruined -> "RUINED (no recovery possible)")
