(** The process manager (PM) server.

    PM owns the pid namespace and the POSIX-style process lifecycle:
    it spawns system processes on behalf of the reincarnation server,
    delivers signals, collects exit statuses from the kernel, and —
    per the paper's Sec. 5.1 — notifies the parent (RS) with SIGCHLD
    whenever a server or driver dies, which is defect-detection inputs
    1–3. *)

type t
(** Shared handle for introspection (readable from outside the
    simulation). *)

val create : unit -> t
(** Make a PM instance. *)

val body : t -> unit -> unit
(** The process body; boot code runs this at the well-known PM slot. *)

val zombies_reaped : t -> int
(** Number of exit statuses collected so far. *)
