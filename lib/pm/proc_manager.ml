module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Signal = Resilix_proto.Signal
module Status = Resilix_proto.Status
module Wellknown = Resilix_proto.Wellknown

type entry = {
  pid : int;
  name : string;
  endpoint : Endpoint.t;
  mutable zombie : Status.exit_status option;
  mutable waited : bool;
}

type t = { mutable table : entry list; mutable next_pid : int; mutable reaped : int }

let create () = { table = []; next_pid = 100; reaped = 0 }
let zombies_reaped t = t.reaped

let live_by_pid t pid =
  List.find_opt (fun e -> e.pid = pid && e.zombie = None && not e.waited) t.table

let live_by_name t name =
  List.find_opt (fun e -> String.equal e.name name && e.zombie = None && not e.waited) t.table

let by_endpoint t ep =
  List.find_opt (fun e -> Endpoint.equal e.endpoint ep && not e.waited) t.table

(* Collect kernel-reported exits, mark zombies, and forward SIGCHLD to
   the reincarnation server — this is how RS learns about defect
   classes 1-3 (Sec. 5.1). *)
let reap t =
  let rec loop () =
    match Api.reap_exit () with
    | None -> ()
    | Some (ep, name, status) ->
        t.reaped <- t.reaped + 1;
        (match by_endpoint t ep with
        | Some entry -> entry.zombie <- Some status
        | None ->
            (* A process PM did not spawn (boot server or test fiber):
               synthesize an entry so waitpid can still see it. *)
            t.table <-
              { pid = t.next_pid; name; endpoint = ep; zombie = Some status; waited = false }
              :: t.table;
            t.next_pid <- t.next_pid + 1);
        ignore (Api.notify Wellknown.rs (Message.N_sig Signal.Sig_chld));
        loop ()
  in
  loop ()

let next_zombie t pid =
  let candidate e =
    match e.zombie with
    | Some _ when not e.waited -> pid = -1 || e.pid = pid
    | Some _ | None -> false
  in
  (* Oldest first: the table is newest-first, so search from the end. *)
  List.fold_left (fun acc e -> if candidate e then Some e else acc) None t.table

let handle_spawn t ~src ~name ~program ~args ~priv ~mem_kb =
  let result =
    match Api.proc_create ~name ~program ~args ~priv ~mem_kb with
    | Error e -> Error e
    | Ok ep ->
        let pid = t.next_pid in
        t.next_pid <- t.next_pid + 1;
        t.table <- { pid; name; endpoint = ep; zombie = None; waited = false } :: t.table;
        Ok (ep, pid)
  in
  ignore (Api.send src (Message.Pm_spawn_reply { result }))

let handle_kill t ~src ~pid ~signal =
  let result =
    match live_by_pid t pid with
    | None -> Error Errno.E_noent
    | Some entry -> (
        match Api.proc_kill entry.endpoint signal with Ok () -> Ok () | Error e -> Error e)
  in
  ignore (Api.send src (Message.Pm_reply { result }))

let handle_waitpid t ~src ~pid =
  let result =
    match next_zombie t pid with
    | Some entry ->
        entry.waited <- true;
        Ok (entry.pid, entry.name, Option.get entry.zombie)
    | None -> Error Errno.E_again
  in
  ignore (Api.send src (Message.Pm_wait_reply { result }))

let handle_pidof t ~src ~name =
  let result = match live_by_name t name with Some e -> Ok e.pid | None -> Error Errno.E_noent in
  ignore (Api.send src (Message.Pm_pidof_reply { result }))

let body t () =
  let rec loop () =
    (match Api.receive Sysif.Any with
    | Ok (Sysif.Rx_notify { kind = Message.N_sig Signal.Sig_chld; _ }) -> reap t
    | Ok (Sysif.Rx_notify _) -> ()
    | Ok (Sysif.Rx_msg { src; body }) -> begin
        match body with
        | Message.Pm_spawn { name; program; args; priv; mem_kb } ->
            handle_spawn t ~src ~name ~program ~args ~priv ~mem_kb
        | Message.Pm_kill { pid; signal } -> handle_kill t ~src ~pid ~signal
        | Message.Pm_waitpid { pid } -> handle_waitpid t ~src ~pid
        | Message.Pm_pidof { name } -> handle_pidof t ~src ~name
        | _ -> ignore (Api.send src (Message.Pm_reply { result = Error Errno.E_inval }))
      end
    | Error _ -> ());
    loop ()
  in
  loop ()
