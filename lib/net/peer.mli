(** The simulated remote host ("the Internet side" of the link).

    It terminates TCP connections with its own instance of the same
    {!Tcp} engine, serves deterministic files over a trivial
    [GET <name>\n] protocol on port 80 (the wget experiment's server),
    echoes UDP on port 7, and can blast a periodic UDP stream at the
    machine under test (receive-side traffic for the fault-injection
    campaign).

    The peer attaches directly to the link — it stands in for remote
    infrastructure, not for a component of the system under test. *)

type t
(** A peer instance. *)

val create :
  engine:Resilix_sim.Engine.t ->
  rng:Resilix_sim.Rng.t ->
  link:Resilix_hw.Link.t ->
  side:Resilix_hw.Link.side ->
  ip:int ->
  mac:int ->
  ?files:(string * (int * int)) list ->
  unit ->
  t
(** [files] maps file names to [(size_bytes, content_seed)]. *)

val add_file : t -> string -> size:int -> seed:int -> unit
(** Register another servable file. *)

val file_fnv : t -> string -> string option
(** FNV digest of a registered file (what the client should see). *)

val file_md5 : t -> string -> string option
(** MD5 digest of a registered file. *)

val bytes_served : t -> int
(** Total file bytes accepted into server-side TCP so far. *)

val connections : t -> int
(** TCP connections accepted so far. *)

(** {1 Client flows}

    Outbound TCP connections from the peer into the machine under
    test.  Every flow shares the peer's single engine timer through a
    heap-backed {!Timerset} (one pending engine event for any number
    of connections) and its ephemeral ports are allocated
    sequentially, so thousands of concurrent flows stay deterministic
    and collision-free — the substrate the load generator
    ({!Resilix_load.Loadgen}) drives. *)

type flow
(** One outbound connection, demuxed and timer-served by the peer. *)

val open_flow :
  t ->
  dst_ip:int ->
  dst_mac:int ->
  dst_port:int ->
  ?local_port:int ->
  ?rx_window:int ->
  ?tx_buffer:int ->
  notify:(flow -> Tcp.event -> unit) ->
  unit ->
  flow
(** Actively open a connection (the SYN is emitted immediately).
    [notify] receives every TCP event; drive the stream with
    {!flow_tcp} + [Tcp.send]/[Tcp.recv].  Buffers default to a 64 KB
    receive window and a 16 KB send buffer — small enough that
    thousands of flows are cheap (the server side, not the client,
    needs deep buffers). *)

val flow_tcp : flow -> Tcp.t
(** The flow's TCP engine. *)

val flow_local_port : flow -> int
(** The ephemeral port the flow opened from. *)

val flow_close : t -> flow -> unit
(** Graceful close (FIN once the send buffer drains). *)

val flow_abort : t -> flow -> unit
(** Drop the flow immediately, emitting RST. *)

type client_result = {
  mutable connected : bool;
  mutable response : string;  (** everything the server sent back *)
  mutable closed : bool;
}

val start_tcp_client :
  t -> dst_ip:int -> dst_mac:int -> dst_port:int -> payload:string -> client_result
(** Open a TCP connection *into* the machine under test (exercising
    the network server's listen/accept path), send [payload], then
    collect whatever comes back until the peer closes. *)

val start_udp_stream :
  t ->
  dst_ip:int ->
  dst_mac:int ->
  dst_port:int ->
  src_port:int ->
  payload_len:int ->
  interval:int ->
  unit ->
  unit
(** Begin sending one datagram every [interval] microseconds; the
    returned thunk stops the stream. *)
