(** The simulated remote host ("the Internet side" of the link).

    It terminates TCP connections with its own instance of the same
    {!Tcp} engine, serves deterministic files over a trivial
    [GET <name>\n] protocol on port 80 (the wget experiment's server),
    echoes UDP on port 7, and can blast a periodic UDP stream at the
    machine under test (receive-side traffic for the fault-injection
    campaign).

    The peer attaches directly to the link — it stands in for remote
    infrastructure, not for a component of the system under test. *)

type t
(** A peer instance. *)

val create :
  engine:Resilix_sim.Engine.t ->
  rng:Resilix_sim.Rng.t ->
  link:Resilix_hw.Link.t ->
  side:Resilix_hw.Link.side ->
  ip:int ->
  mac:int ->
  ?files:(string * (int * int)) list ->
  unit ->
  t
(** [files] maps file names to [(size_bytes, content_seed)]. *)

val add_file : t -> string -> size:int -> seed:int -> unit
(** Register another servable file. *)

val file_fnv : t -> string -> string option
(** FNV digest of a registered file (what the client should see). *)

val file_md5 : t -> string -> string option
(** MD5 digest of a registered file. *)

val bytes_served : t -> int
(** Total file bytes accepted into server-side TCP so far. *)

val connections : t -> int
(** TCP connections accepted so far. *)

type client_result = {
  mutable connected : bool;
  mutable response : string;  (** everything the server sent back *)
  mutable closed : bool;
}

val start_tcp_client :
  t -> dst_ip:int -> dst_mac:int -> dst_port:int -> payload:string -> client_result
(** Open a TCP connection *into* the machine under test (exercising
    the network server's listen/accept path), send [payload], then
    collect whatever comes back until the peer closes. *)

val start_udp_stream :
  t ->
  dst_ip:int ->
  dst_mac:int ->
  dst_port:int ->
  src_port:int ->
  payload_len:int ->
  interval:int ->
  unit ->
  unit
(** Begin sending one datagram every [interval] microseconds; the
    returned thunk stops the stream. *)
