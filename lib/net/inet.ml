module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Memory = Resilix_kernel.Memory
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Wellknown = Resilix_proto.Wellknown
module Metrics = Resilix_obs.Metrics

(* Address-space layout for INET's bounce buffers. *)
let tx_frame_buf = 0x20000
let rx_frame_buf = 0x20800
let frame_buf_size = 2048
let app_buf = 0x30000
let app_buf_size = 65536

type blocked_io = { app : Endpoint.t; grant : int; total : int; mutable progress : int }

type conn = {
  sock_id : int;
  tcp : Tcp.t;
  remote_ip : int;
  remote_port : int;
  local_port : int;
  mutable accepted : bool;
      (* the application owns the descriptor: active opens from birth,
         passive opens once delivered by accept *)
  mutable app_closed : bool; (* the application has called close *)
  mutable reaped : bool; (* demux/timer state already torn down *)
  mutable pending_connect : Endpoint.t option;
  mutable pending_recv : blocked_io option;
  mutable pending_send : blocked_io option;
}

type listener = {
  l_port : int;
  l_max : int; (* backlog bound: un-accepted conns beyond this are refused *)
  mutable backlog : int list; (* sock ids of established, unaccepted conns *)
  mutable l_queued : int; (* un-accepted conns, handshaking included *)
  pending_accepts : Endpoint.t Queue.t; (* blocked accept callers (worker pool) *)
}

type udp_sock = {
  mutable u_port : int;
  u_rxq : (int * int * bytes) Queue.t; (* src ip, src port, payload *)
  mutable u_pending_recv : (Endpoint.t * int * int) option;
}

type sock =
  | S_free
  | S_tcp_fresh
  | S_tcp_conn of conn
  | S_tcp_listen of listener
  | S_udp of udp_sock

type driver = {
  mutable ep : Endpoint.t option;
  mutable up : bool;
  mutable mac : int;
  mutable rx_grant : int option;
  mutable tx_grant : int option;
  mutable tx_busy : bool;
  tx_queue : bytes Queue.t;
  mutable generation : int;
  mutable degraded : bool;
}

(* Counter handles resolved once at [body] startup so per-event bumps
   skip the by-name registry lookup (the kernel does the same for its
   own counters). *)
type ctrs = {
  c_degraded_rejects : Metrics.counter;
  c_tx_postponed : Metrics.counter;
  c_accept_refused : Metrics.counter;
}

type t = {
  local_ip : int;
  gateway_mac : int;
  driver_key : string;
  mutable ctrs : ctrs option;
  mutable socks : sock array;
  mutable free_socks : int list; (* free slot ids; O(1) alloc at C10K scale *)
  conns : (int * int * int, conn) Hashtbl.t; (* remote ip, remote port, local port *)
  listeners : (int, listener) Hashtbl.t; (* local port -> listener *)
  udp_ports : (int, udp_sock) Hashtbl.t;
  timers : Timerset.t;
  drv : driver;
  mutable next_ephemeral : int;
  mutable outage_queued : int;
  spans : Resilix_obs.Span.t;
}

let tx_queue_cap = 256

let create ~local_ip ~gateway_mac ~driver_key ?spans () =
  {
    local_ip;
    gateway_mac;
    driver_key;
    ctrs = None;
    socks = Array.make 64 S_free;
    (* slot 0 stays unused so 0 is never a valid descriptor *)
    free_socks = List.init 63 (fun i -> i + 1);
    conns = Hashtbl.create 32;
    listeners = Hashtbl.create 8;
    udp_ports = Hashtbl.create 8;
    timers = Timerset.create ();
    drv =
      {
        ep = None;
        up = false;
        mac = 0;
        rx_grant = None;
        tx_grant = None;
        tx_busy = false;
        tx_queue = Queue.create ();
        generation = 0;
        degraded = false;
      };
    next_ephemeral = 40000;
    outage_queued = 0;
    spans = (match spans with Some s -> s | None -> Resilix_obs.Span.create ());
  }

let driver_generation t = t.drv.generation
let frames_queued_during_outage t = t.outage_queued
let driver_degraded t = t.drv.degraded

(* The degradation contract, INET side: while the driver's breaker is
   open we refuse work that would otherwise park forever — new TCP
   connects and UDP sends fail fast with [E_degraded].  Established
   connections keep their state; TCP retransmission resupplies them if
   the driver ever comes back. *)
let degraded_reject t src reply_msg =
  (match t.ctrs with
  | Some c -> Metrics.incr c.c_degraded_rejects
  | None -> Api.metric_incr "inet.degraded_rejects");
  ignore (Api.send src reply_msg)

let log fmt = Api.trace "inet" fmt

(* ------------------------------------------------------------------ *)
(* Driver transmit path                                                *)
(* ------------------------------------------------------------------ *)

let rec pump_tx t =
  match t.drv.ep with
  | Some ep when t.drv.up && (not t.drv.tx_busy) && not (Queue.is_empty t.drv.tx_queue) -> begin
      let frame = Queue.pop t.drv.tx_queue in
      let len = Bytes.length frame in
      let mem = Api.memory () in
      Memory.write mem ~addr:tx_frame_buf frame;
      match Api.grant_create ~for_:ep ~base:tx_frame_buf ~len ~access:Sysif.Read_only with
      | Error _ -> ()
      | Ok grant -> (
          t.drv.tx_grant <- Some grant;
          match Api.asend ep (Message.Dl_writev { grant; len }) with
          | Ok () -> t.drv.tx_busy <- true
(*@recovery-begin*)
          | Error _ ->
              (* Driver just died; postpone (Sec. 6.1). *)
              ignore (Api.grant_revoke grant);
              t.drv.tx_grant <- None;
              t.drv.up <- false;
              t.outage_queued <- t.outage_queued + 1;
              (match t.ctrs with
              | Some c -> Metrics.incr c.c_tx_postponed
              | None -> Api.metric_incr "inet.tx.postponed");
              Queue.push frame t.drv.tx_queue)
    end
  | Some _ | None -> ()

(*@recovery-end*)
let enqueue_frame t frame =
  if Queue.length t.drv.tx_queue < tx_queue_cap then begin
    if not t.drv.up then t.outage_queued <- t.outage_queued + 1;
    Queue.push frame t.drv.tx_queue
  end;
  (* over cap: drop — TCP will retransmit *)
  pump_tx t

let emit_packet t ~dst_ip body =
  let frame =
    {
      Wire.dst_mac = t.gateway_mac;
      src_mac = t.drv.mac;
      packet = { Wire.src_ip = t.local_ip; dst_ip; body };
    }
  in
  enqueue_frame t (Wire.encode frame)

(* ------------------------------------------------------------------ *)
(* Timer plumbing: one kernel alarm for all connections               *)
(* ------------------------------------------------------------------ *)

let rearm_alarm t =
  match Timerset.next_deadline t.timers with
  | None -> ignore (Api.alarm 0)
  | Some deadline ->
      let delay = max 1 (deadline - Api.now ()) in
      ignore (Api.alarm delay)

(* ------------------------------------------------------------------ *)
(* TCP connection plumbing                                             *)
(* ------------------------------------------------------------------ *)

let reply src msg = ignore (Api.send src msg)

(* Complete as much of a blocked send as buffer space allows. *)
let continue_send t conn =
  match conn.pending_send with
  | None -> ()
  | Some io ->
      let mem = Api.memory () in
      let continue = ref true in
      while !continue && io.progress < io.total do
        let space = Tcp.tx_space conn.tcp in
        let want = min (min (io.total - io.progress) app_buf_size) space in
        if want <= 0 then continue := false
        else begin
          match
            Api.safecopy_from ~owner:io.app ~grant:io.grant ~grant_off:io.progress
              ~local_addr:app_buf ~len:want
          with
          | Error _ ->
              (* Application died while blocked; abandon. *)
              conn.pending_send <- None;
              continue := false
          | Ok () ->
              let data = Memory.read mem ~addr:app_buf ~len:want in
              let accepted = Tcp.send conn.tcp ~now:(Api.now ()) data ~off:0 ~len:want in
              io.progress <- io.progress + accepted;
              if accepted < want then continue := false
        end
      done;
      if io.progress >= io.total then begin
        conn.pending_send <- None;
        reply io.app (Message.In_io_reply { result = Ok io.total })
      end

(* Complete a blocked receive if data (or EOF) is available. *)
let continue_recv t conn =
  ignore t;
  match conn.pending_recv with
  | None -> ()
  | Some io ->
      let available = Tcp.rx_available conn.tcp in
      if available > 0 then begin
        let want = min (min io.total app_buf_size) available in
        let data = Tcp.recv conn.tcp ~max:want in
        let len = Bytes.length data in
        let mem = Api.memory () in
        Memory.write mem ~addr:app_buf data;
        conn.pending_recv <- None;
        match Api.safecopy_to ~owner:io.app ~grant:io.grant ~grant_off:0 ~local_addr:app_buf ~len with
        | Ok () -> reply io.app (Message.In_io_reply { result = Ok len })
        | Error _ -> () (* app died *)
      end
      else if Tcp.peer_closed conn.tcp || Tcp.is_closed conn.tcp then begin
        conn.pending_recv <- None;
        reply io.app (Message.In_io_reply { result = Ok 0 })
      end

let sock_of t id = if id >= 0 && id < Array.length t.socks then t.socks.(id) else S_free

let alloc_sock t =
  match t.free_socks with
  | id :: rest ->
      t.free_socks <- rest;
      Some id
  | [] ->
      let n = Array.length t.socks in
      let bigger = Array.make (2 * n) S_free in
      Array.blit t.socks 0 bigger 0 n;
      t.socks <- bigger;
      t.free_socks <- List.init (n - 1) (fun i -> n + 1 + i);
      Some n

let free_sock t id =
  t.socks.(id) <- S_free;
  t.free_socks <- id :: t.free_socks

(* Tear down a connection's demux/timer state once TCP is finished
   (reset, aborted, or closed both ways).  The socket slot itself is
   reclaimed only when no application can still reach it: immediately
   for never-accepted passive connections (which also leave the
   listener's backlog accounting), otherwise once the owner has called
   close. *)
let reap_conn t conn =
  if not conn.reaped then begin
    conn.reaped <- true;
    Timerset.cancel t.timers ~key:conn.sock_id;
    let key = (conn.remote_ip, conn.remote_port, conn.local_port) in
    (match Hashtbl.find_opt t.conns key with
    | Some c when c == conn -> Hashtbl.remove t.conns key
    | Some _ | None -> ());
    if not conn.accepted then begin
      (match Hashtbl.find_opt t.listeners conn.local_port with
      | Some l ->
          l.backlog <- List.filter (fun id -> id <> conn.sock_id) l.backlog;
          l.l_queued <- l.l_queued - 1
      | None -> ());
      free_sock t conn.sock_id
    end
    else if conn.app_closed then free_sock t conn.sock_id
  end

(* Hand backlogged connections to blocked accept callers, FIFO both
   ways — with several worker apps parked in accept this is the
   shared-listener fan-out. *)
let rec deliver_accepts t l =
  if not (Queue.is_empty l.pending_accepts) then begin
    match l.backlog with
    | [] -> ()
    | next :: rest ->
        l.backlog <- rest;
        l.l_queued <- l.l_queued - 1;
        (match sock_of t next with
        | S_tcp_conn c -> c.accepted <- true
        | _ -> ());
        reply (Queue.pop l.pending_accepts) (Message.In_accept_reply { result = Ok next });
        deliver_accepts t l
  end

let conn_callbacks t sock_id =
  (* The conn record is installed in the socket table before any event
     can fire, so lookups by sock_id are safe. *)
  let find () =
    match t.socks.(sock_id) with S_tcp_conn c -> Some c | _ -> None
  in
  {
    Tcp.emit =
      (fun seg ->
        match find () with
        | Some c -> emit_packet t ~dst_ip:c.remote_ip (Wire.Tcp seg)
        | None -> ());
    set_timer =
      (fun delay ->
        (match delay with
        | Some d -> Timerset.set t.timers ~key:sock_id ~deadline:(Api.now () + d)
        | None -> Timerset.cancel t.timers ~key:sock_id);
        rearm_alarm t);
    notify =
      (fun ev ->
        match find () with
        | None -> ()
        | Some c -> (
            match ev with
            | Tcp.Ev_established -> begin
                (match c.pending_connect with
                | Some app ->
                    c.pending_connect <- None;
                    reply app (Message.In_reply { result = Ok () })
                | None -> ());
                (* Passive connections ride the listener backlog. *)
                if not c.accepted then
                  match Hashtbl.find_opt t.listeners c.local_port with
                  | Some l ->
                      if not (List.mem c.sock_id l.backlog) then begin
                        l.backlog <- l.backlog @ [ c.sock_id ];
                        deliver_accepts t l
                      end
                  | None -> ()
              end
            | Tcp.Ev_rx_ready | Tcp.Ev_peer_closed -> continue_recv t c
            | Tcp.Ev_tx_space -> continue_send t c
            | Tcp.Ev_reset -> begin
                (match c.pending_connect with
                | Some app ->
                    c.pending_connect <- None;
                    reply app (Message.In_reply { result = Error Errno.E_conn_refused })
                | None -> ());
                (match c.pending_recv with
                | Some io ->
                    c.pending_recv <- None;
                    reply io.app (Message.In_io_reply { result = Error Errno.E_conn_reset })
                | None -> ());
                (match c.pending_send with
                | Some io ->
                    c.pending_send <- None;
                    reply io.app (Message.In_io_reply { result = Error Errno.E_conn_reset })
                | None -> ());
                reap_conn t c
              end
            | Tcp.Ev_closed ->
                Timerset.cancel t.timers ~key:sock_id;
                continue_recv t c;
                (* Gracefully closed but never-accepted connections stay
                   in the backlog: accept still delivers them so the
                   application can drain buffered data and see EOF. *)
                if c.accepted && c.app_closed then reap_conn t c))
  }

let make_conn t ~sock_id ~remote_ip ~remote_port ~local_port ~active =
  let cfg =
    Tcp.default_config ~local_port ~remote_port ~isn:(Api.random 0x3FFF_FFFF)
  in
  let cb = conn_callbacks t sock_id in
  (* Install a placeholder first so callbacks can find the record. *)
  let tcp =
    if active then Tcp.create_active cfg ~now:(Api.now ()) cb
    else Tcp.create_passive cfg ~now:(Api.now ()) cb
  in
  let conn =
    {
      sock_id;
      tcp;
      remote_ip;
      remote_port;
      local_port;
      (* active opens are application-owned from birth; passive opens
         become owned when accept delivers them *)
      accepted = active;
      app_closed = false;
      reaped = false;
      pending_connect = None;
      pending_recv = None;
      pending_send = None;
    }
  in
  t.socks.(sock_id) <- S_tcp_conn conn;
  Hashtbl.replace t.conns (remote_ip, remote_port, local_port) conn;
  conn

(* ------------------------------------------------------------------ *)
(* Incoming frames                                                     *)
(* ------------------------------------------------------------------ *)

let handle_packet t (frame : Wire.frame) =
  if frame.Wire.packet.dst_ip = t.local_ip then begin
    match frame.Wire.packet.body with
    | Wire.Tcp seg -> begin
        let key = (frame.Wire.packet.src_ip, seg.Wire.src_port, seg.Wire.dst_port) in
        match Hashtbl.find_opt t.conns key with
        | Some conn -> Tcp.handle_segment conn.tcp ~now:(Api.now ()) seg
        | None ->
            if seg.Wire.syn then begin
              match Hashtbl.find_opt t.listeners seg.Wire.dst_port with
              | None -> ()
              | Some l when l.l_queued >= l.l_max ->
                  (* Backlog full: refuse the SYN outright so the
                     client fails fast instead of parking in a queue
                     the server will never drain at storm rates. *)
                  (match t.ctrs with
                  | Some c -> Metrics.incr c.c_accept_refused
                  | None -> Api.metric_incr "inet.accept_refused");
                  emit_packet t ~dst_ip:frame.Wire.packet.src_ip
                    (Wire.Tcp
                       {
                         Wire.src_port = seg.Wire.dst_port;
                         dst_port = seg.Wire.src_port;
                         seq = 0;
                         ack_no = (seg.Wire.seq + 1) land 0xFFFF_FFFF;
                         syn = false;
                         ack = true;
                         fin = false;
                         rst = true;
                         window = 0;
                         payload = Bytes.empty;
                       })
              | Some l -> begin
                  match alloc_sock t with
                  | None -> ()
                  | Some sock_id ->
                      l.l_queued <- l.l_queued + 1;
                      let conn =
                        make_conn t ~sock_id ~remote_ip:frame.Wire.packet.src_ip
                          ~remote_port:seg.Wire.src_port ~local_port:seg.Wire.dst_port
                          ~active:false
                      in
                      Tcp.handle_segment conn.tcp ~now:(Api.now ()) seg
                end
            end
      end
    | Wire.Udp dgram -> begin
        match Hashtbl.find_opt t.udp_ports dgram.Wire.dst_port with
        | None -> ()
        | Some u -> begin
            if Queue.length u.u_rxq < 128 then
              Queue.push (frame.Wire.packet.src_ip, dgram.Wire.src_port, dgram.Wire.payload) u.u_rxq;
            match u.u_pending_recv with
            | Some (app, grant, maxlen) -> begin
                u.u_pending_recv <- None;
                match Queue.take_opt u.u_rxq with
                | None -> ()
                | Some (sip, sport, payload) -> (
                    let len = min (Bytes.length payload) maxlen in
                    let mem = Api.memory () in
                    Memory.write mem ~addr:app_buf (Bytes.sub payload 0 len);
                    match
                      Api.safecopy_to ~owner:app ~grant ~grant_off:0 ~local_addr:app_buf ~len
                    with
                    | Ok () ->
                        reply app (Message.In_recvfrom_reply { result = Ok (len, sip, sport) })
                    | Error _ -> ())
              end
            | None -> ()
          end
      end
  end

(* ------------------------------------------------------------------ *)
(* Driver lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let post_readv t =
  match (t.drv.ep, t.drv.rx_grant) with
  | Some ep, Some grant ->
      ignore (Api.asend ep (Message.Dl_readv { grant; len = frame_buf_size }))
  | _ -> ()

(*@recovery-begin*)
(* A (new or restarted) driver endpoint was published: reintegrate it.
   This mimics "the steps that are taken when the driver is first
   started" (Sec. 6.1). *)
let integrate_driver t ep =
  let fresh = match t.drv.ep with Some old -> not (Endpoint.equal old ep) | None -> true in
  if fresh then begin
    t.drv.generation <- t.drv.generation + 1;
    log "integrating driver %s as %s (generation %d)" t.driver_key (Endpoint.to_string ep)
      t.drv.generation;
    t.drv.ep <- Some ep;
    t.drv.up <- false;
    t.drv.tx_busy <- false;
    t.drv.tx_grant <- None;
    (match t.drv.rx_grant with Some g -> ignore (Api.grant_revoke g) | None -> ());
    t.drv.rx_grant <- None;
    (* Reinitialize: promiscuous mode, as the paper describes. *)
    ignore (Api.asend ep (Message.Dl_conf { mode = { Message.promisc = true; broadcast = true } }))
  end

let handle_conf_reply t ~src ~mac result =
  match t.drv.ep with
  | Some ep when Endpoint.equal ep src -> begin
      match result with
      | Ok () ->
          t.drv.mac <- mac;
          t.drv.up <- true;
          (* The driver answered its (re)configuration: reintegration
             is complete from our side. *)
          Resilix_obs.Span.mark_component t.spans t.driver_key Resilix_obs.Span.Reopen
            ~now:(Api.now ());
          let parked = Queue.length t.drv.tx_queue in
          if parked > 0 then
            Api.emit "inet"
              (Resilix_obs.Event.Retry
                 { component = t.driver_key; operation = "tx-flush"; count = parked });
          (match Api.grant_create ~for_:ep ~base:rx_frame_buf ~len:frame_buf_size ~access:Sysif.Read_write with
          | Ok g -> t.drv.rx_grant <- Some g
          | Error _ -> ());
          post_readv t;
          pump_tx t
      | Error _ -> log "driver %s failed to configure" t.driver_key
    end
  | Some _ | None -> ()

let handle_task_reply t ~src (flags : Message.dl_flags) read_len =
  match t.drv.ep with
  | Some ep when Endpoint.equal ep src ->
      if flags.Message.sent then begin
        (match t.drv.tx_grant with Some g -> ignore (Api.grant_revoke g) | None -> ());
        t.drv.tx_grant <- None;
        t.drv.tx_busy <- false;
        pump_tx t
      end;
      if flags.Message.received then begin
        if read_len <= 0 || read_len > frame_buf_size then
          (* Protocol violation: complain to RS (defect class 5). *)
          ignore
            (Api.sendrec Wellknown.rs
               (Message.Rs_complain
                  { name = t.driver_key; reason = "impossible receive length" }))
        else begin
          let mem = Api.memory () in
          let raw = Memory.read mem ~addr:rx_frame_buf ~len:read_len in
          (match Wire.decode raw with
          | Ok frame -> handle_packet t frame
          | Error _ -> () (* corrupted: drop; TCP recovers *));
          post_readv t
        end
      end
  | Some _ | None -> ()

(*@recovery-end*)
(* ------------------------------------------------------------------ *)
(* Socket requests                                                     *)
(* ------------------------------------------------------------------ *)

let handle_request t ~src body =
  match body with
  | Message.In_socket { proto } -> begin
      match alloc_sock t with
      | None -> reply src (Message.In_socket_reply { result = Error Errno.E_nospace })
      | Some id ->
          (match proto with
          | Message.Tcp -> t.socks.(id) <- S_tcp_fresh
          | Message.Udp ->
              t.socks.(id) <-
                S_udp { u_port = 0; u_rxq = Queue.create (); u_pending_recv = None });
          reply src (Message.In_socket_reply { result = Ok id })
    end
  | Message.In_connect { sock; addr; port } -> begin
      match sock_of t sock with
      | S_tcp_fresh when t.drv.degraded ->
          ignore (addr, port);
          degraded_reject t src (Message.In_reply { result = Error Errno.E_degraded })
      | S_tcp_fresh ->
          let local_port = t.next_ephemeral in
          t.next_ephemeral <- t.next_ephemeral + 1;
          let conn = make_conn t ~sock_id:sock ~remote_ip:addr ~remote_port:port ~local_port ~active:true in
          conn.pending_connect <- Some src
      | _ -> reply src (Message.In_reply { result = Error Errno.E_bad_fd })
    end
  | Message.In_listen { sock; port; backlog } -> begin
      match sock_of t sock with
      | S_tcp_fresh ->
          let l =
            {
              l_port = port;
              l_max = max 1 backlog;
              backlog = [];
              l_queued = 0;
              pending_accepts = Queue.create ();
            }
          in
          t.socks.(sock) <- S_tcp_listen l;
          Hashtbl.replace t.listeners port l;
          reply src (Message.In_reply { result = Ok () })
      | S_udp u ->
          u.u_port <- port;
          Hashtbl.replace t.udp_ports port u;
          reply src (Message.In_reply { result = Ok () })
      | _ -> reply src (Message.In_reply { result = Error Errno.E_bad_fd })
    end
  | Message.In_accept { sock } -> begin
      match sock_of t sock with
      | S_tcp_listen l -> begin
          match l.backlog with
          | next :: rest ->
              l.backlog <- rest;
              l.l_queued <- l.l_queued - 1;
              (match sock_of t next with
              | S_tcp_conn c -> c.accepted <- true
              | _ -> ());
              reply src (Message.In_accept_reply { result = Ok next })
          | [] -> Queue.push src l.pending_accepts
        end
      | _ -> reply src (Message.In_accept_reply { result = Error Errno.E_bad_fd })
    end
  | Message.In_send { sock; grant; len } -> begin
      match sock_of t sock with
      | S_tcp_conn conn when conn.pending_send = None && len >= 0 ->
          conn.pending_send <- Some { app = src; grant; total = len; progress = 0 };
          continue_send t conn
      | S_tcp_conn _ -> reply src (Message.In_io_reply { result = Error Errno.E_busy })
      | _ -> reply src (Message.In_io_reply { result = Error Errno.E_bad_fd })
    end
  | Message.In_recv { sock; grant; len } -> begin
      match sock_of t sock with
      | S_tcp_conn conn when conn.pending_recv = None ->
          conn.pending_recv <- Some { app = src; grant; total = len; progress = 0 };
          continue_recv t conn
      | S_tcp_conn _ -> reply src (Message.In_io_reply { result = Error Errno.E_busy })
      | _ -> reply src (Message.In_io_reply { result = Error Errno.E_bad_fd })
    end
  | Message.In_sendto { sock; addr; port; grant; len } -> begin
      match sock_of t sock with
      | S_udp _ when t.drv.degraded ->
          degraded_reject t src (Message.In_io_reply { result = Error Errno.E_degraded })
      | S_udp u when len >= 0 && len <= Wire.max_payload -> begin
          match Api.safecopy_from ~owner:src ~grant ~grant_off:0 ~local_addr:app_buf ~len with
          | Error e -> reply src (Message.In_io_reply { result = Error e })
          | Ok () ->
              let mem = Api.memory () in
              let payload = Memory.read mem ~addr:app_buf ~len in
              let src_port = if u.u_port <> 0 then u.u_port else 1024 in
              emit_packet t ~dst_ip:addr (Wire.Udp { Wire.src_port; dst_port = port; payload });
              reply src (Message.In_io_reply { result = Ok len })
        end
      | S_udp _ -> reply src (Message.In_io_reply { result = Error Errno.E_inval })
      | _ -> reply src (Message.In_io_reply { result = Error Errno.E_bad_fd })
    end
  | Message.In_recvfrom { sock; grant; len } -> begin
      match sock_of t sock with
      | S_udp u -> begin
          match Queue.take_opt u.u_rxq with
          | Some (sip, sport, payload) -> begin
              let n = min (Bytes.length payload) len in
              let mem = Api.memory () in
              Memory.write mem ~addr:app_buf (Bytes.sub payload 0 n);
              match Api.safecopy_to ~owner:src ~grant ~grant_off:0 ~local_addr:app_buf ~len:n with
              | Ok () -> reply src (Message.In_recvfrom_reply { result = Ok (n, sip, sport) })
              | Error _ -> ()
            end
          | None -> u.u_pending_recv <- Some (src, grant, len)
        end
      | _ -> reply src (Message.In_recvfrom_reply { result = Error Errno.E_bad_fd })
    end
  | Message.In_close { sock } -> begin
      (match sock_of t sock with
      | S_tcp_conn conn ->
          conn.app_closed <- true;
          Tcp.close conn.tcp ~now:(Api.now ());
          (* If TCP is already finished (reset, or close completed
             synchronously) the slot can be reclaimed now; otherwise
             Ev_closed reaps it when the FIN handshake completes. *)
          if Tcp.is_closed conn.tcp then
            if conn.reaped then free_sock t conn.sock_id else reap_conn t conn
      | S_tcp_listen l -> begin
          Hashtbl.remove t.listeners l.l_port;
          (* Parked accept callers can never be served now. *)
          Queue.iter
            (fun app -> reply app (Message.In_accept_reply { result = Error Errno.E_again }))
            l.pending_accepts;
          Queue.clear l.pending_accepts;
          free_sock t sock
        end
      | S_udp u -> begin
          Hashtbl.remove t.udp_ports u.u_port;
          free_sock t sock
        end
      | S_tcp_fresh -> free_sock t sock
      | S_free -> ());
      reply src (Message.In_reply { result = Ok () })
    end
  | _ -> reply src (Message.In_reply { result = Error Errno.E_inval })

(* ------------------------------------------------------------------ *)
(* Data-store subscription                                             *)
(* ------------------------------------------------------------------ *)

(*@recovery-begin*)
let drain_ds_updates t =
  let rec loop () =
    match Api.sendrec Wellknown.ds Message.Ds_check with
    | Ok (Sysif.Rx_msg { body = Message.Ds_check_reply { result = Ok (Some (key, value)) }; _ }) ->
        (match value with
        | Message.V_endpoint ep when String.equal key t.driver_key -> integrate_driver t ep
        | Message.V_int v when String.equal key ("degraded." ^ t.driver_key) ->
            t.drv.degraded <- v <> 0;
            if t.drv.degraded then log "driver %s degraded: refusing new work" t.driver_key
            else log "driver %s degradation cleared" t.driver_key
        | _ -> ());
        loop ()
    | _ -> ()
  in
  loop ()

(*@recovery-end*)
let handle_alarm t =
  let due = Timerset.take_due t.timers ~now:(Api.now ()) in
  List.iter
    (fun sock_id ->
      match sock_of t sock_id with
      | S_tcp_conn conn -> Tcp.handle_timer conn.tcp ~now:(Api.now ())
      | _ -> ())
    due;
  rearm_alarm t

let body t () =
  t.ctrs <-
    Some
      {
        c_degraded_rejects = Api.metric_counter "inet.degraded_rejects";
        c_tx_postponed = Api.metric_counter "inet.tx.postponed";
        c_accept_refused = Api.metric_counter "inet.accept_refused";
      };
  (* Subscribe to Ethernet driver updates (Sec. 5.3: "the network
     server subscribes ... by registering the expression 'eth.*'"). *)
  ignore (Api.sendrec Wellknown.ds (Message.Ds_subscribe { pattern = "eth.*" }));
  (* ... and to breaker-driven degradation markers (policy v2). *)
  ignore (Api.sendrec Wellknown.ds (Message.Ds_subscribe { pattern = "degraded.*" }));
  (* The driver may already be up. *)
  (match Api.sendrec Wellknown.ds (Message.Ds_retrieve { key = t.driver_key }) with
  | Ok (Sysif.Rx_msg { body = Message.Ds_retrieve_reply { result = Ok (Message.V_endpoint ep) }; _ })
    ->
      integrate_driver t ep
  | _ -> ());
  let rec loop () =
    (match Api.receive Sysif.Any with
    | Error _ -> ()
    | Ok (Sysif.Rx_notify { kind = Message.N_ds_update; _ }) -> drain_ds_updates t
    | Ok (Sysif.Rx_notify { kind = Message.N_alarm; _ }) -> handle_alarm t
    | Ok (Sysif.Rx_notify _) -> ()
    | Ok (Sysif.Rx_msg { src; body }) -> begin
        match body with
        | Message.Dl_conf_reply { mac; result } -> handle_conf_reply t ~src ~mac result
        | Message.Dl_task_reply { flags; read_len } -> handle_task_reply t ~src flags read_len
        | other -> handle_request t ~src other
      end);
    loop ()
  in
  loop ()
