module Fnv = Resilix_checksum.Fnv
module Md5 = Resilix_checksum.Md5

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let word ~seed ~index =
  mix (Int64.add (Int64.of_int seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1))))

(* Byte [i] of the file is byte [i mod 8] of word [i / 8]. *)
let read ~seed ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Filegen.read";
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let index = abs / 8 and inner = abs mod 8 in
    let w = word ~seed ~index in
    let take = min (8 - inner) (len - !pos) in
    for j = 0 to take - 1 do
      Bytes.set out (!pos + j)
        (Char.chr (Int64.to_int (Int64.shift_right_logical w (8 * (inner + j))) land 0xFF))
    done;
    pos := !pos + take
  done;
  out

let fold ~seed ~size ~init ~f =
  let chunk = 65536 in
  let acc = ref init in
  let off = ref 0 in
  while !off < size do
    let len = min chunk (size - !off) in
    acc := f !acc (read ~seed ~off:!off ~len);
    off := !off + len
  done;
  !acc

let fnv_digest ~seed ~size =
  Fnv.to_hex (fold ~seed ~size ~init:Fnv.start ~f:(fun h b -> Fnv.update h b ~off:0 ~len:(Bytes.length b)))

let md5_digest ~seed ~size =
  let ctx = Md5.init () in
  fold ~seed ~size ~init:() ~f:(fun () b -> Md5.update ctx b ~off:0 ~len:(Bytes.length b));
  Md5.hex (Md5.finalize ctx)
