(** A TCP engine: connection state machine with sequence numbers,
    cumulative ACKs, adaptive retransmission timeout with exponential
    backoff, fast retransmit, slow start / congestion avoidance, and
    flow control.

    Reliability here is the crux of the paper's network-driver
    recovery scheme (Sec. 6.1): while a crashed Ethernet driver is
    being reincarnated, segments are silently lost; once the fresh
    driver is reintegrated, the retransmission machinery reinserts the
    missing bytes in the stream and applications never notice.

    The engine is transport-agnostic: it emits segments and asks for
    timers through callbacks; the network server and the simulated
    remote peer both embed it. *)

type config = {
  local_port : int;
  remote_port : int;
  mss : int;  (** maximum payload per segment *)
  rx_window : int;  (** receive buffer size, bytes *)
  tx_buffer : int;  (** send buffer size, bytes *)
  rto_initial : int;  (** initial retransmission timeout, us *)
  rto_max : int;  (** backoff ceiling, us *)
  isn : int;  (** initial sequence number (32-bit) *)
}

val default_config : local_port:int -> remote_port:int -> isn:int -> config
(** MSS 1460, 256 KB windows, 200 ms initial RTO, 8 s ceiling. *)

(** Edge-triggered events surfaced to the embedder. *)
type event =
  | Ev_established  (** three-way handshake completed *)
  | Ev_rx_ready  (** new in-order data is readable *)
  | Ev_tx_space  (** send-buffer space was freed by an ACK *)
  | Ev_peer_closed  (** FIN received and all peer data delivered *)
  | Ev_reset  (** connection reset *)
  | Ev_closed  (** both directions finished *)

type callbacks = {
  emit : Wire.tcp_segment -> unit;  (** transmit one segment *)
  set_timer : int option -> unit;
      (** arm the connection's (single) timer for [Some delay_us], or
          cancel it with [None] *)
  notify : event -> unit;
}

type t
(** A connection. *)

val create_active : config -> now:int -> callbacks -> t
(** Open actively: emits the SYN immediately. *)

val create_passive : config -> now:int -> callbacks -> t
(** Passive open: waits for a SYN (the embedder demultiplexes). *)

val handle_segment : t -> now:int -> Wire.tcp_segment -> unit
(** Feed an incoming segment (already CRC-validated). *)

val handle_timer : t -> now:int -> unit
(** The timer armed via [set_timer] fired. *)

val send : t -> now:int -> bytes -> off:int -> len:int -> int
(** Queue application data; returns how many bytes were accepted
    (bounded by free send-buffer space; 0 when full). *)

val recv : t -> max:int -> bytes
(** Pull up to [max] bytes of in-order received data. *)

val close : t -> now:int -> unit
(** No more application data; FIN once the send buffer drains. *)

val abort : t -> unit
(** Drop the connection, emitting RST. *)

val rx_available : t -> int
(** Bytes ready for {!recv}. *)

val tx_space : t -> int
(** Free send-buffer bytes. *)

val is_established : t -> bool
(** Handshake completed and not yet finished. *)

val peer_closed : t -> bool
(** Peer sent FIN and everything before it was delivered. *)

val is_closed : t -> bool
(** Fully terminated (closed both ways, or reset). *)

val retransmissions : t -> int
(** Total segments retransmitted (timeout + fast retransmit) — used
    by the experiment harness to report recovery behaviour. *)
