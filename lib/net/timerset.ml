type t = { table : (int, int) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }
let set t ~key ~deadline = Hashtbl.replace t.table key deadline
let cancel t ~key = Hashtbl.remove t.table key

let next_deadline t =
  Hashtbl.fold
    (fun _ d acc -> match acc with None -> Some d | Some d' -> Some (min d d'))
    t.table None

let take_due t ~now =
  let due = Hashtbl.fold (fun k d acc -> if d <= now then k :: acc else acc) t.table [] in
  List.iter (fun k -> Hashtbl.remove t.table k) due;
  (* Deterministic order for reproducibility. *)
  List.sort Int.compare due
