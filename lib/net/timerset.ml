(* Binary min-heap ordered by deadline, with lazy deletion: [arm]
   remembers each key's current (deadline, generation); stale heap
   entries — re-armed or cancelled keys — are recognized by a
   generation mismatch and dropped when they reach the top.  The heap
   stores (deadline, key, gen) packed in three parallel int arrays to
   avoid per-entry allocation on the retransmission hot path. *)

type t = {
  armed : (int, int * int) Hashtbl.t; (* key -> (deadline, generation) *)
  mutable hd : int array; (* deadlines *)
  mutable hk : int array; (* keys *)
  mutable hg : int array; (* generations *)
  mutable len : int;
  mutable gen : int;
}

let create () =
  {
    armed = Hashtbl.create 64;
    hd = Array.make 64 0;
    hk = Array.make 64 0;
    hg = Array.make 64 0;
    len = 0;
    gen = 0;
  }

let armed t = Hashtbl.length t.armed

let swap t i j =
  let d = t.hd.(i) and k = t.hk.(i) and g = t.hg.(i) in
  t.hd.(i) <- t.hd.(j);
  t.hk.(i) <- t.hk.(j);
  t.hg.(i) <- t.hg.(j);
  t.hd.(j) <- d;
  t.hk.(j) <- k;
  t.hg.(j) <- g

(* Ties break on key so the heap order never depends on insertion
   history. *)
let lt t i j = t.hd.(i) < t.hd.(j) || (t.hd.(i) = t.hd.(j) && t.hk.(i) < t.hk.(j))

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && lt t l !smallest then smallest := l;
  if r < t.len && lt t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let n = Array.length t.hd in
  let bigger a = Array.append a (Array.make n 0) in
  t.hd <- bigger t.hd;
  t.hk <- bigger t.hk;
  t.hg <- bigger t.hg

let push t ~deadline ~key ~gen =
  if t.len = Array.length t.hd then grow t;
  let i = t.len in
  t.hd.(i) <- deadline;
  t.hk.(i) <- key;
  t.hg.(i) <- gen;
  t.len <- t.len + 1;
  sift_up t i

let pop_top t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    swap t 0 t.len;
    sift_down t 0
  end

(* Is the top entry the live arming of its key? *)
let top_live t =
  match Hashtbl.find_opt t.armed t.hk.(0) with
  | Some (_, g) -> g = t.hg.(0)
  | None -> false

(* Drop stale entries until the top is live (or the heap is empty). *)
let rec settle t = if t.len > 0 && not (top_live t) then begin pop_top t; settle t end

let set t ~key ~deadline =
  t.gen <- t.gen + 1;
  Hashtbl.replace t.armed key (deadline, t.gen);
  push t ~deadline ~key ~gen:t.gen

let cancel t ~key = Hashtbl.remove t.armed key

let next_deadline t =
  settle t;
  if t.len = 0 then None else Some t.hd.(0)

let take_due t ~now =
  let due = ref [] in
  let continue = ref true in
  while !continue do
    settle t;
    if t.len > 0 && t.hd.(0) <= now then begin
      let key = t.hk.(0) in
      Hashtbl.remove t.armed key;
      pop_top t;
      due := key :: !due
    end
    else continue := false
  done;
  List.sort Int.compare !due
