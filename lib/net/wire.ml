module Crc32 = Resilix_checksum.Crc32

type tcp_segment = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_no : int;
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  window : int;
  payload : bytes;
}

type udp_datagram = { src_port : int; dst_port : int; payload : bytes }
type ip_payload = Tcp of tcp_segment | Udp of udp_datagram
type packet = { src_ip : int; dst_ip : int; body : ip_payload }
type frame = { dst_mac : int; src_mac : int; packet : packet }

let max_payload = 1460

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let ip_to_string v =
  Printf.sprintf "%d.%d.%d.%d" ((v lsr 24) land 0xFF) ((v lsr 16) land 0xFF) ((v lsr 8) land 0xFF)
    (v land 0xFF)

(* --- low-level byte helpers --- *)

let put_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u48 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 40) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 32) land 0xFF));
  put_u32 buf (v land 0xFFFF_FFFF)

let get_u8 b i = Char.code (Bytes.get b i)
let get_u16 b i = (get_u8 b i lsl 8) lor get_u8 b (i + 1)
let get_u32 b i = (get_u16 b i lsl 16) lor get_u16 b (i + 2)
let get_u48 b i = (get_u16 b i lsl 32) lor get_u32 b (i + 2)

let flags_byte seg =
  (if seg.syn then 1 else 0)
  lor (if seg.ack then 2 else 0)
  lor (if seg.fin then 4 else 0)
  lor if seg.rst then 8 else 0

let proto_tcp = 6
let proto_udp = 17

(* Layout:
   0  dst_mac (6)
   6  src_mac (6)
   12 ethertype (2) = 0x0800
   14 src_ip (4)
   18 dst_ip (4)
   22 proto (1)
   TCP (proto 6), from 23:
     src_port(2) dst_port(2) seq(4) ack(4) flags(1) window(4) len(2) crc(4) payload
   UDP (proto 17), from 23:
     src_port(2) dst_port(2) len(2) crc(4) payload *)

let encode frame =
  let buf = Buffer.create 64 in
  put_u48 buf frame.dst_mac;
  put_u48 buf frame.src_mac;
  put_u16 buf 0x0800;
  put_u32 buf frame.packet.src_ip;
  put_u32 buf frame.packet.dst_ip;
  (match frame.packet.body with
  | Tcp seg ->
      Buffer.add_char buf (Char.chr proto_tcp);
      let hdr = Buffer.create 32 in
      put_u16 hdr seg.src_port;
      put_u16 hdr seg.dst_port;
      put_u32 hdr (seg.seq land 0xFFFF_FFFF);
      put_u32 hdr (seg.ack_no land 0xFFFF_FFFF);
      Buffer.add_char hdr (Char.chr (flags_byte seg));
      put_u32 hdr seg.window;
      put_u16 hdr (Bytes.length seg.payload);
      let hdr = Buffer.contents hdr in
      let crc = Crc32.finish (Crc32.update_string (Crc32.update_string Crc32.start hdr) (Bytes.to_string seg.payload)) in
      Buffer.add_string buf hdr;
      put_u32 buf crc;
      Buffer.add_bytes buf seg.payload
  | Udp dgram ->
      Buffer.add_char buf (Char.chr proto_udp);
      let hdr = Buffer.create 8 in
      put_u16 hdr dgram.src_port;
      put_u16 hdr dgram.dst_port;
      put_u16 hdr (Bytes.length dgram.payload);
      let hdr = Buffer.contents hdr in
      let crc = Crc32.finish (Crc32.update_string (Crc32.update_string Crc32.start hdr) (Bytes.to_string dgram.payload)) in
      Buffer.add_string buf hdr;
      put_u32 buf crc;
      Buffer.add_bytes buf dgram.payload);
  Buffer.to_bytes buf

let decode b =
  try
    if Bytes.length b < 23 then Error "frame too short"
    else if get_u16 b 12 <> 0x0800 then Error "bad ethertype"
    else begin
      let dst_mac = get_u48 b 0 and src_mac = get_u48 b 6 in
      let src_ip = get_u32 b 14 and dst_ip = get_u32 b 18 in
      let proto = get_u8 b 22 in
      if proto = proto_tcp then begin
        if Bytes.length b < 23 + 19 + 4 then Error "tcp header truncated"
        else begin
          let src_port = get_u16 b 23 and dst_port = get_u16 b 25 in
          let seq = get_u32 b 27 and ack_no = get_u32 b 31 in
          let flags = get_u8 b 35 in
          let window = get_u32 b 36 in
          let len = get_u16 b 40 in
          let crc = get_u32 b 42 in
          if Bytes.length b < 46 + len then Error "tcp payload truncated"
          else begin
            let payload = Bytes.sub b 46 len in
            let hdr = Bytes.to_string (Bytes.sub b 23 19) in
            let computed =
              Crc32.finish
                (Crc32.update_string (Crc32.update_string Crc32.start hdr)
                   (Bytes.to_string payload))
            in
            if computed <> crc then Error "tcp checksum mismatch"
            else
              Ok
                {
                  dst_mac;
                  src_mac;
                  packet =
                    {
                      src_ip;
                      dst_ip;
                      body =
                        Tcp
                          {
                            src_port;
                            dst_port;
                            seq;
                            ack_no;
                            syn = flags land 1 <> 0;
                            ack = flags land 2 <> 0;
                            fin = flags land 4 <> 0;
                            rst = flags land 8 <> 0;
                            window;
                            payload;
                          };
                    };
                }
          end
        end
      end
      else if proto = proto_udp then begin
        if Bytes.length b < 23 + 6 + 4 then Error "udp header truncated"
        else begin
          let src_port = get_u16 b 23 and dst_port = get_u16 b 25 in
          let len = get_u16 b 27 in
          let crc = get_u32 b 29 in
          if Bytes.length b < 33 + len then Error "udp payload truncated"
          else begin
            let payload = Bytes.sub b 33 len in
            let hdr = Bytes.to_string (Bytes.sub b 23 6) in
            let computed =
              Crc32.finish
                (Crc32.update_string (Crc32.update_string Crc32.start hdr)
                   (Bytes.to_string payload))
            in
            if computed <> crc then Error "udp checksum mismatch"
            else
              Ok
                {
                  dst_mac;
                  src_mac;
                  packet = { src_ip; dst_ip; body = Udp { src_port; dst_port; payload } };
                }
          end
        end
      end
      else Error "unknown protocol"
    end
  with Invalid_argument _ -> Error "malformed frame"
