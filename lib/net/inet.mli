(** The network server (INET).

    INET owns the TCP/UDP state for the whole system: applications get
    sockets over IPC, and frames flow to/from an Ethernet driver using
    the asynchronous [DL_*] protocol with grants for frame data.

    Driver recovery (Sec. 6.1): INET subscribes to ["eth.*"] in the
    data store.  When its driver crashes, in-flight sends fail with
    [E_dead_src_dst] and outgoing frames queue.  When the reincarnation
    server publishes the restarted driver's new endpoint, INET runs
    its reintegration procedure — reconfigure ([Dl_conf], putting the
    device in promiscuous mode), repost the receive buffer, resume the
    transmit queue — and TCP's retransmission machinery resupplies
    whatever died with the old driver.  Applications never notice.

    If the driver violates the protocol (e.g. an impossible receive
    length), INET files a complaint with the reincarnation server —
    defect class 5 of Sec. 5.1. *)

type t
(** Shared handle for introspection. *)

val create :
  local_ip:int -> gateway_mac:int -> driver_key:string -> ?spans:Resilix_obs.Span.t -> unit -> t
(** [driver_key] is the stable name of the Ethernet driver to bind
    (e.g. ["eth.rtl8139"]); [gateway_mac] is where off-link traffic is
    framed to (the peer).  Pass the system-wide [spans] collector so
    INET can mark the re-open phase of its driver's recovery spans. *)

val body : t -> unit -> unit
(** The process body; boot runs this at the well-known INET slot. *)

val driver_generation : t -> int
(** How many times a driver endpoint has been (re)integrated. *)

val frames_queued_during_outage : t -> int
(** Transmit frames that had to be postponed because the driver was
    dead (Sec. 6.1: "the request fails and is postponed until the
    driver is back"). *)

val driver_degraded : t -> bool
(** Whether INET currently treats its driver as degraded (open circuit
    breaker, per the ["degraded.*"] data-store records).  While true,
    new TCP connects and UDP sends fail fast with [E_degraded] instead
    of parking until a restart that may never come. *)
