(** Deterministic pseudo-random file content.

    The remote peer "serves a 512-MB file" (Sec. 7.1) without anyone
    materializing it: content is a pure function of (seed, offset), so
    the downloader can independently recompute the digest of what it
    should have received — the MD5-comparison step of the paper's
    methodology. *)

val read : seed:int -> off:int -> len:int -> bytes
(** The [len] bytes of the file at offset [off]. *)

val fnv_digest : seed:int -> size:int -> string
(** Streaming FNV-1a hex digest of the whole file (fast; used by the
    benchmark harness). *)

val md5_digest : seed:int -> size:int -> string
(** Streaming MD5 hex digest of the whole file (used by the wget
    example, mirroring the paper). *)
