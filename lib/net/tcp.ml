(* Stream offsets are unwrapped OCaml ints internally; sequence
   numbers only become 32-bit (mod 2^32) at the wire boundary.  Offset
   0 is our SYN; application data starts at offset 1; FIN occupies one
   offset after the last data byte.  Same numbering for the peer. *)

type config = {
  local_port : int;
  remote_port : int;
  mss : int;
  rx_window : int;
  tx_buffer : int;
  rto_initial : int;
  rto_max : int;
  isn : int;
}

let default_config ~local_port ~remote_port ~isn =
  {
    local_port;
    remote_port;
    mss = Wire.max_payload;
    rx_window = 262_144;
    tx_buffer = 262_144;
    rto_initial = 200_000;
    rto_max = 8_000_000;
    isn;
  }

type event = Ev_established | Ev_rx_ready | Ev_tx_space | Ev_peer_closed | Ev_reset | Ev_closed

type callbacks = {
  emit : Wire.tcp_segment -> unit;
  set_timer : int option -> unit;
  notify : event -> unit;
}

type state = Listen | Syn_sent | Syn_received | Established | Done

type t = {
  cfg : config;
  cb : callbacks;
  mutable state : state;
  (* --- send side --- *)
  mutable tx_store : Bytes.t;  (* bytes [snd_una, tx_end) live at tx_store[tx_base..] *)
  mutable tx_base : int;  (* index of snd_una within tx_store *)
  mutable tx_len : int;  (* bytes buffered = tx_end - snd_una *)
  mutable snd_una : int;  (* oldest unacknowledged stream offset *)
  mutable snd_nxt : int;  (* next offset to transmit *)
  mutable fin_offset : int option;  (* our FIN's stream offset, once decided *)
  mutable fin_requested : bool;
  mutable fin_acked : bool;
  mutable peer_window : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dup_acks : int;
  mutable rto : int;
  mutable srtt : int;  (* 0 = no sample yet *)
  mutable rttvar : int;
  mutable rtt_probe : (int * int) option;  (* (offset, sent_at) being timed *)
  mutable timer_armed : bool;
  mutable retransmissions : int;
  mutable max_sent : int;  (* highest offset ever transmitted + 1 *)
  (* --- receive side --- *)
  mutable peer_isn_known : bool;
  mutable peer_isn : int;
  mutable rcv_nxt : int;  (* next expected peer stream offset *)
  rx_buf : Buffer.t;  (* in-order data awaiting the application *)
  ooo : (int, bytes) Hashtbl.t;  (* out-of-order segments by peer offset *)
  mutable peer_fin_offset : int option;
  mutable peer_fin_delivered : bool;
}

let mask32 v = v land 0xFFFF_FFFF

(* Choose the unwrapped value congruent to [wire] (mod 2^32) nearest
   to [near]. *)
let unwrap ~near wire =
  let base = near - (near land 0xFFFF_FFFF) in
  let candidate = base + wire in
  let best = ref candidate in
  let consider c = if abs (c - near) < abs (!best - near) then best := c in
  consider (candidate - 0x1_0000_0000);
  consider (candidate + 0x1_0000_0000);
  !best

let create cfg cb state =
  {
    cfg;
    cb;
    state;
    tx_store = Bytes.create 4096;
    tx_base = 0;
    tx_len = 0;
    snd_una = 1;
    snd_nxt = 1;
    fin_offset = None;
    fin_requested = false;
    fin_acked = false;
    peer_window = cfg.mss;
    cwnd = 2 * cfg.mss;
    ssthresh = 65536;
    dup_acks = 0;
    rto = cfg.rto_initial;
    srtt = 0;
    rttvar = 0;
    rtt_probe = None;
    timer_armed = false;
    retransmissions = 0;
    max_sent = 1;
    peer_isn_known = false;
    peer_isn = 0;
    rcv_nxt = 1;
    rx_buf = Buffer.create 4096;
    ooo = Hashtbl.create 16;
    peer_fin_offset = None;
    peer_fin_delivered = false;
  }

let rx_available t = Buffer.length t.rx_buf
let tx_space t = t.cfg.tx_buffer - t.tx_len
let is_established t = t.state = Established
let retransmissions t = t.retransmissions

let peer_closed t =
  match t.peer_fin_offset with Some off -> t.rcv_nxt >= off + 1 | None -> false

let is_closed t = t.state = Done

(* Our advertised window: free receive-buffer space. *)
let advertised_window t = max 0 (t.cfg.rx_window - Buffer.length t.rx_buf)

let wire_seq t offset = mask32 (t.cfg.isn + offset)
let wire_ack t = mask32 (t.peer_isn + t.rcv_nxt)

let base_segment t =
  {
    Wire.src_port = t.cfg.local_port;
    dst_port = t.cfg.remote_port;
    seq = wire_seq t t.snd_nxt;
    ack_no = (if t.peer_isn_known then wire_ack t else 0);
    syn = false;
    ack = t.peer_isn_known;
    fin = false;
    rst = false;
    window = advertised_window t;
    payload = Bytes.empty;
  }

let emit_ack t = t.cb.emit (base_segment t)

let arm_timer t =
  t.timer_armed <- true;
  t.cb.set_timer (Some t.rto)

let cancel_timer t =
  if t.timer_armed then begin
    t.timer_armed <- false;
    t.cb.set_timer None
  end

(* --- send buffer management --- *)

(* Application data starts at stream offset 1 (offset 0 is the SYN);
   the buffer holds [data_start, data_start + tx_len). *)
let data_start t = max t.snd_una 1

let tx_end t = data_start t + t.tx_len

let tx_append t data ~off ~len =
  (* Compact / grow the store as needed. *)
  let need = t.tx_base + t.tx_len + len in
  if need > Bytes.length t.tx_store then begin
    let required = t.tx_len + len in
    if t.tx_base > 0 && required <= Bytes.length t.tx_store then begin
      Bytes.blit t.tx_store t.tx_base t.tx_store 0 t.tx_len;
      t.tx_base <- 0
    end
    else begin
      let ncap = max (2 * Bytes.length t.tx_store) required in
      let fresh = Bytes.create ncap in
      Bytes.blit t.tx_store t.tx_base fresh 0 t.tx_len;
      t.tx_store <- fresh;
      t.tx_base <- 0
    end
  end;
  Bytes.blit data off t.tx_store (t.tx_base + t.tx_len) len;
  t.tx_len <- t.tx_len + len

(* Bytes of the stream range [offset, offset+len) from the store. *)
let tx_slice t ~offset ~len =
  let start = t.tx_base + (offset - data_start t) in
  Bytes.sub t.tx_store start len

let flight t = t.snd_nxt - t.snd_una

(* Transmit one (re)transmission starting at [offset]. *)
let transmit_at t ~now ~offset =
  let data_end = tx_end t in
  let fin_here =
    match t.fin_offset with Some f -> offset = f | None -> false
  in
  if fin_here then begin
    let seg = { (base_segment t) with Wire.seq = wire_seq t offset; fin = true } in
    t.cb.emit seg
  end
  else begin
    let len = min t.cfg.mss (data_end - offset) in
    let payload = tx_slice t ~offset ~len in
    let seg = { (base_segment t) with Wire.seq = wire_seq t offset; payload } in
    (* Karn: only time segments that are not retransmissions. *)
    if t.rtt_probe = None && offset >= t.max_sent then t.rtt_probe <- Some (offset, now);
    t.max_sent <- max t.max_sent (offset + len);
    t.cb.emit seg
  end

(* Send whatever the congestion + flow-control windows allow. *)
let rec pump t ~now =
  if t.state = Established then begin
    let window = min t.cwnd (max t.cfg.mss t.peer_window) in
    let limit = t.snd_una + window in
    let data_end = tx_end t in
    let fin_off = t.fin_offset in
    let can_send_data = t.snd_nxt < data_end && t.snd_nxt < limit in
    let can_send_fin = (match fin_off with Some f -> t.snd_nxt = f | None -> false) && t.snd_nxt <= limit in
    if can_send_data then begin
      transmit_at t ~now ~offset:t.snd_nxt;
      let len = min t.cfg.mss (data_end - t.snd_nxt) in
      t.snd_nxt <- t.snd_nxt + len;
      if not t.timer_armed then arm_timer t;
      pump t ~now
    end
    else if can_send_fin then begin
      transmit_at t ~now ~offset:t.snd_nxt;
      t.snd_nxt <- t.snd_nxt + 1;
      if not t.timer_armed then arm_timer t
    end
  end

(* Decide the FIN offset once the application has no more data. *)
let maybe_place_fin t ~now =
  if t.fin_requested && t.fin_offset = None then begin
    t.fin_offset <- Some (tx_end t);
    pump t ~now
  end

(* --- public send/recv --- *)

let send t ~now data ~off ~len =
  if t.state = Done || t.fin_requested then 0
  else begin
    let accept = min len (tx_space t) in
    if accept > 0 then begin
      tx_append t data ~off ~len:accept;
      pump t ~now
    end;
    accept
  end

let recv t ~max =
  let have = Buffer.length t.rx_buf in
  let take = min max have in
  if take = 0 then Bytes.empty
  else begin
    let all = Buffer.to_bytes t.rx_buf in
    Buffer.clear t.rx_buf;
    if take < have then Buffer.add_subbytes t.rx_buf all take (have - take);
    Bytes.sub all 0 take
  end

let close t ~now =
  if not t.fin_requested then begin
    t.fin_requested <- true;
    maybe_place_fin t ~now
  end

let abort t =
  if t.state <> Done then begin
    t.cb.emit { (base_segment t) with Wire.rst = true };
    t.state <- Done;
    cancel_timer t;
    t.cb.notify Ev_closed
  end

(* --- connection setup --- *)

let send_syn t =
  let seg =
    {
      (base_segment t) with
      Wire.seq = wire_seq t 0;
      syn = true;
      ack = t.peer_isn_known;
      ack_no = (if t.peer_isn_known then wire_ack t else 0);
    }
  in
  t.cb.emit seg

let create_active cfg ~now cb =
  ignore now;
  let t = create cfg cb Syn_sent in
  t.snd_una <- 0;
  t.snd_nxt <- 1;
  send_syn t;
  arm_timer t;
  t

let create_passive cfg ~now cb =
  ignore now;
  create cfg cb Listen

(* --- ACK processing --- *)

let update_rtt t ~now ~acked_offset =
  match t.rtt_probe with
  | Some (offset, sent_at) when acked_offset > offset ->
      t.rtt_probe <- None;
      let sample = max 1 (now - sent_at) in
      if t.srtt = 0 then begin
        t.srtt <- sample;
        t.rttvar <- sample / 2
      end
      else begin
        let delta = abs (sample - t.srtt) in
        t.rttvar <- ((3 * t.rttvar) + delta) / 4;
        t.srtt <- ((7 * t.srtt) + sample) / 8
      end;
      t.rto <- max t.cfg.rto_initial (min t.cfg.rto_max (t.srtt + (4 * t.rttvar)))
  | Some _ | None -> ()

let fast_retransmit t ~now =
  t.retransmissions <- t.retransmissions + 1;
  t.ssthresh <- max (flight t / 2) (2 * t.cfg.mss);
  t.cwnd <- t.ssthresh;
  transmit_at t ~now ~offset:t.snd_una

let process_ack t ~now ack_offset window =
  t.peer_window <- window;
  if ack_offset > t.snd_una then begin
    update_rtt t ~now ~acked_offset:ack_offset;
    (* Drop acknowledged bytes from the send buffer (the SYN at offset
       0 and the FIN occupy no buffer space). *)
    let data_acked = min (tx_end t) ack_offset in
    let drop = max 0 (data_acked - data_start t) in
    if drop > 0 then begin
      t.tx_base <- t.tx_base + drop;
      t.tx_len <- t.tx_len - drop
    end;
    t.snd_una <- ack_offset;
    if t.snd_nxt < t.snd_una then t.snd_nxt <- t.snd_una;
    t.dup_acks <- 0;
    (* Congestion window growth. *)
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd + t.cfg.mss
    else t.cwnd <- t.cwnd + max 1 (t.cfg.mss * t.cfg.mss / t.cwnd);
    (match t.fin_offset with
    | Some f when ack_offset >= f + 1 -> t.fin_acked <- true
    | Some _ | None -> ());
    if t.snd_una >= t.snd_nxt then cancel_timer t
    else begin
      (* restart for the remaining flight *)
      cancel_timer t;
      arm_timer t
    end;
    if tx_space t > 0 then t.cb.notify Ev_tx_space;
    pump t ~now;
    maybe_place_fin t ~now
  end
  else if ack_offset = t.snd_una && flight t > 0 then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks = 3 then fast_retransmit t ~now
  end

(* --- receive processing --- *)

let deliver_in_order t =
  (* Pull contiguous out-of-order segments into the app buffer. *)
  let progressing = ref true in
  while !progressing do
    match Hashtbl.find_opt t.ooo t.rcv_nxt with
    | Some data ->
        Hashtbl.remove t.ooo t.rcv_nxt;
        Buffer.add_bytes t.rx_buf data;
        t.rcv_nxt <- t.rcv_nxt + Bytes.length data
    | None -> progressing := false
  done

(* Consume the peer's FIN when it is next in sequence.  The single
   place [rcv_nxt] crosses the FIN offset: reassembly must never
   advance past it silently, or [Ev_peer_closed] is lost and the
   application waits on a stream that already ended. *)
let consume_fin t =
  match t.peer_fin_offset with
  | Some f when t.rcv_nxt = f ->
      t.rcv_nxt <- t.rcv_nxt + 1;
      if not t.peer_fin_delivered then begin
        t.peer_fin_delivered <- true;
        t.cb.notify Ev_peer_closed
      end
  | Some _ | None -> ()

let process_payload t ~seg_offset payload =
  let len = Bytes.length payload in
  if len > 0 then begin
    if seg_offset <= t.rcv_nxt && t.rcv_nxt < seg_offset + len then begin
      (* Overlapping or exactly next: take the unseen suffix. *)
      let skip = t.rcv_nxt - seg_offset in
      let fresh = len - skip in
      let room = advertised_window t in
      let take = min fresh room in
      if take > 0 then begin
        Buffer.add_subbytes t.rx_buf payload skip take;
        t.rcv_nxt <- t.rcv_nxt + take;
        deliver_in_order t;
        t.cb.notify Ev_rx_ready
      end
    end
    else if seg_offset > t.rcv_nxt && Hashtbl.length t.ooo < 128
            && seg_offset - t.rcv_nxt < t.cfg.rx_window then
      Hashtbl.replace t.ooo seg_offset payload
  end

let handle_segment t ~now (seg : Wire.tcp_segment) =
  if t.state = Done then ()
  else if seg.Wire.rst then begin
    t.state <- Done;
    cancel_timer t;
    t.cb.notify Ev_reset;
    t.cb.notify Ev_closed
  end
  else begin
    (* SYN processing: learn the peer's ISN. *)
    if seg.Wire.syn && not t.peer_isn_known then begin
      t.peer_isn_known <- true;
      t.peer_isn <- seg.Wire.seq;
      t.rcv_nxt <- 1
    end;
    match t.state with
    | Listen ->
        if seg.Wire.syn then begin
          t.state <- Syn_received;
          t.snd_una <- 0;
          t.snd_nxt <- 1;
          send_syn t;
          arm_timer t
        end
    | Syn_sent ->
        if seg.Wire.syn && seg.Wire.ack then begin
          let ack_off = unwrap ~near:1 (mask32 (seg.Wire.ack_no - t.cfg.isn)) in
          if ack_off >= 1 then begin
            t.state <- Established;
            t.snd_una <- 1;
            t.dup_acks <- 0;
            cancel_timer t;
            emit_ack t;
            t.cb.notify Ev_established;
            pump t ~now;
            maybe_place_fin t ~now
          end
        end
        else if seg.Wire.syn then begin
          (* Simultaneous open: degrade to SYN_RECEIVED semantics. *)
          t.state <- Syn_received;
          send_syn t
        end
    | Syn_received ->
        if seg.Wire.ack then begin
          let ack_off = unwrap ~near:1 (mask32 (seg.Wire.ack_no - t.cfg.isn)) in
          if ack_off >= 1 then begin
            t.state <- Established;
            t.snd_una <- max t.snd_una 1;
            cancel_timer t;
            t.cb.notify Ev_established;
            (* Fall through to normal processing of any payload. *)
            let seg_offset = unwrap ~near:t.rcv_nxt (mask32 (seg.Wire.seq - t.peer_isn)) in
            (* FIN bookkeeping, as in [Established]: the first segment
               after the handshake may already carry the peer's FIN. *)
            if seg.Wire.fin then begin
              let fin_off = seg_offset + Bytes.length seg.Wire.payload in
              if t.peer_fin_offset = None then t.peer_fin_offset <- Some fin_off
            end;
            process_payload t ~seg_offset seg.Wire.payload;
            consume_fin t;
            if Bytes.length seg.Wire.payload > 0 || seg.Wire.fin then emit_ack t;
            pump t ~now
          end
        end
        else if seg.Wire.syn then send_syn t (* our SYNACK was lost *)
    | Established ->
        if seg.Wire.syn then
          (* Retransmitted handshake segment; re-ack it. *)
          emit_ack t
        else begin
          if seg.Wire.ack then begin
            let ack_off = unwrap ~near:t.snd_una (mask32 (seg.Wire.ack_no - t.cfg.isn)) in
            process_ack t ~now ack_off seg.Wire.window
          end;
          let seg_offset = unwrap ~near:t.rcv_nxt (mask32 (seg.Wire.seq - t.peer_isn)) in
          (* FIN bookkeeping. *)
          if seg.Wire.fin then begin
            let fin_off = seg_offset + Bytes.length seg.Wire.payload in
            if t.peer_fin_offset = None then t.peer_fin_offset <- Some fin_off
          end;
          let had_payload = Bytes.length seg.Wire.payload > 0 in
          process_payload t ~seg_offset seg.Wire.payload;
          consume_fin t;
          if had_payload || seg.Wire.fin then emit_ack t;
          (* Connection teardown: both FINs acknowledged. *)
          if t.fin_acked && peer_closed t then begin
            t.state <- Done;
            cancel_timer t;
            t.cb.notify Ev_closed
          end
        end
    | Done -> ()
  end

let handle_timer t ~now =
  t.timer_armed <- false;
  match t.state with
  | Syn_sent | Syn_received ->
      t.retransmissions <- t.retransmissions + 1;
      t.rto <- min (t.rto * 2) t.cfg.rto_max;
      send_syn t;
      arm_timer t
  | Established ->
      if flight t > 0 then begin
        t.retransmissions <- t.retransmissions + 1;
        t.ssthresh <- max (flight t / 2) (2 * t.cfg.mss);
        t.cwnd <- t.cfg.mss;
        t.rto <- min (t.rto * 2) t.cfg.rto_max;
        t.rtt_probe <- None;
        (* Go-back-N: everything after snd_una is presumed lost (the
           whole flight dies with a crashed driver); retransmit from
           the cumulative-ACK point under the collapsed window. *)
        t.snd_nxt <- t.snd_una;
        pump t ~now;
        if (not t.timer_armed) && flight t > 0 then arm_timer t
      end
  | Listen | Done -> ()
