module Engine = Resilix_sim.Engine
module Link = Resilix_hw.Link
module Rng = Resilix_sim.Rng

type pconn = {
  key : int * int * int; (* remote ip, remote port, local port *)
  remote_ip : int;
  remote_mac : int;
  tcp : Tcp.t;
  mutable timer : Engine.handle option;
  request : Buffer.t;
  mutable serving : (int * int * int) option; (* seed, size, sent *)
  mutable done_serving : bool;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  link : Link.t;
  side : Link.side;
  ip : int;
  mac : int;
  files : (string, int * int) Hashtbl.t;
  conns : (int * int * int, pconn) Hashtbl.t;
  mutable served : int;
  mutable accepted : int;
  mutable udp_seq : int;
}

let add_file t name ~size ~seed = Hashtbl.replace t.files name (size, seed)

let file_fnv t name =
  Option.map (fun (size, seed) -> Filegen.fnv_digest ~seed ~size) (Hashtbl.find_opt t.files name)

let file_md5 t name =
  Option.map (fun (size, seed) -> Filegen.md5_digest ~seed ~size) (Hashtbl.find_opt t.files name)

let bytes_served t = t.served
let connections t = t.accepted

let emit_frame t ~dst_mac ~dst_ip body =
  let frame =
    { Wire.dst_mac; src_mac = t.mac; packet = { Wire.src_ip = t.ip; dst_ip; body } }
  in
  Link.send t.link t.side (Wire.encode frame)

(* Push file bytes into the connection as send-buffer space allows. *)
let rec pump_file t conn =
  match conn.serving with
  | None -> ()
  | Some (seed, size, sent) ->
      if sent >= size then begin
        if not conn.done_serving then begin
          conn.done_serving <- true;
          Tcp.close conn.tcp ~now:(Engine.now t.engine)
        end
      end
      else begin
        let space = Tcp.tx_space conn.tcp in
        if space > 0 then begin
          let len = min (min space 16384) (size - sent) in
          let data = Filegen.read ~seed ~off:sent ~len in
          let accepted = Tcp.send conn.tcp ~now:(Engine.now t.engine) data ~off:0 ~len in
          t.served <- t.served + accepted;
          conn.serving <- Some (seed, size, sent + accepted);
          if accepted > 0 then pump_file t conn
        end
      end

let handle_request t conn =
  let s = Buffer.contents conn.request in
  match String.index_opt s '\n' with
  | None -> ()
  | Some i -> (
      let line = String.trim (String.sub s 0 i) in
      match String.split_on_char ' ' line with
      | [ "GET"; name ] -> (
          match Hashtbl.find_opt t.files name with
          | Some (size, seed) ->
              conn.serving <- Some (seed, size, 0);
              pump_file t conn
          | None -> Tcp.close conn.tcp ~now:(Engine.now t.engine))
      | _ -> Tcp.close conn.tcp ~now:(Engine.now t.engine))

let make_conn t ~key ~remote_ip ~remote_port ~remote_mac =
  let rec conn =
    lazy
      (let cb =
         {
           Tcp.emit =
             (fun seg ->
               let c = Lazy.force conn in
               emit_frame t ~dst_mac:c.remote_mac ~dst_ip:c.remote_ip (Wire.Tcp seg));
           set_timer =
             (fun delay ->
               let c = Lazy.force conn in
               (match c.timer with Some h -> Engine.cancel h | None -> ());
               c.timer <- None;
               match delay with
               | Some d ->
                   c.timer <-
                     Some
                       (Engine.schedule t.engine ~after:d (fun () ->
                            let c = Lazy.force conn in
                            c.timer <- None;
                            Tcp.handle_timer c.tcp ~now:(Engine.now t.engine)))
               | None -> ());
           notify =
             (fun ev ->
               let c = Lazy.force conn in
               match ev with
               | Tcp.Ev_rx_ready ->
                   let data = Tcp.recv c.tcp ~max:4096 in
                   Buffer.add_bytes c.request data;
                   if c.serving = None then handle_request t c
               | Tcp.Ev_tx_space -> pump_file t c
               | Tcp.Ev_established -> ()
               | Tcp.Ev_peer_closed ->
                   if c.serving = None then Tcp.close c.tcp ~now:(Engine.now t.engine)
               | Tcp.Ev_reset | Tcp.Ev_closed ->
                   (match c.timer with Some h -> Engine.cancel h | None -> ());
                   Hashtbl.remove t.conns c.key)
         }
       in
       let _, rport, lport = key in
       let cfg = Tcp.default_config ~local_port:lport ~remote_port:rport ~isn:(Rng.int t.rng 0x3FFFFFFF) in
       {
         key;
         remote_ip;
         remote_mac;
         tcp = Tcp.create_passive cfg ~now:(Engine.now t.engine) cb;
         timer = None;
         request = Buffer.create 64;
         serving = None;
         done_serving = false;
       })
  in
  let c = Lazy.force conn in
  Hashtbl.replace t.conns key c;
  t.accepted <- t.accepted + 1;
  c

let on_frame t raw =
  match Wire.decode raw with
  | Error _ -> () (* corrupted on the wire: drop *)
  | Ok frame ->
      if frame.Wire.packet.dst_ip = t.ip then begin
        match frame.Wire.packet.body with
        | Wire.Tcp seg -> begin
            let key = (frame.Wire.packet.src_ip, seg.Wire.src_port, seg.Wire.dst_port) in
            match Hashtbl.find_opt t.conns key with
            | Some conn -> Tcp.handle_segment conn.tcp ~now:(Engine.now t.engine) seg
            | None ->
                if seg.Wire.syn && seg.Wire.dst_port = 80 then begin
                  let conn =
                    make_conn t ~key ~remote_ip:frame.Wire.packet.src_ip
                      ~remote_port:seg.Wire.src_port ~remote_mac:frame.Wire.src_mac
                  in
                  Tcp.handle_segment conn.tcp ~now:(Engine.now t.engine) seg
                end
                else if not seg.Wire.rst then
                  (* Stateless reset for strays. *)
                  emit_frame t ~dst_mac:frame.Wire.src_mac ~dst_ip:frame.Wire.packet.src_ip
                    (Wire.Tcp
                       {
                         Wire.src_port = seg.Wire.dst_port;
                         dst_port = seg.Wire.src_port;
                         seq = seg.Wire.ack_no;
                         ack_no = 0;
                         syn = false;
                         ack = false;
                         fin = false;
                         rst = true;
                         window = 0;
                         payload = Bytes.empty;
                       })
          end
        | Wire.Udp dgram ->
            if dgram.Wire.dst_port = 7 then
              (* Echo service. *)
              emit_frame t ~dst_mac:frame.Wire.src_mac ~dst_ip:frame.Wire.packet.src_ip
                (Wire.Udp
                   {
                     Wire.src_port = 7;
                     dst_port = dgram.Wire.src_port;
                     payload = dgram.Wire.payload;
                   })
      end

let create ~engine ~rng ~link ~side ~ip ~mac ?(files = []) () =
  let t =
    {
      engine;
      rng;
      link;
      side;
      ip;
      mac;
      files = Hashtbl.create 8;
      conns = Hashtbl.create 8;
      served = 0;
      accepted = 0;
      udp_seq = 0;
    }
  in
  List.iter (fun (name, (size, seed)) -> add_file t name ~size ~seed) files;
  Link.attach link side (on_frame t);
  t

type client_result = {
  mutable connected : bool;
  mutable response : string;
  mutable closed : bool;
}

(* An outbound TCP connection from the peer into the machine under
   test: used to exercise the network server's passive-open path.
   Built with refs rather than a lazy knot because the active open
   emits its SYN during construction. *)
let start_tcp_client t ~dst_ip ~dst_mac ~dst_port ~payload =
  let result = { connected = false; response = ""; closed = false } in
  let local_port = 50_000 + Rng.int t.rng 10_000 in
  let key = (dst_ip, dst_port, local_port) in
  let tcp_ref = ref None in
  let timer = ref None in
  let cb =
    {
      Tcp.emit = (fun seg -> emit_frame t ~dst_mac ~dst_ip (Wire.Tcp seg));
      set_timer =
        (fun delay ->
          (match !timer with Some h -> Engine.cancel h | None -> ());
          timer := None;
          match delay with
          | Some d ->
              timer :=
                Some
                  (Engine.schedule t.engine ~after:d (fun () ->
                       timer := None;
                       match !tcp_ref with
                       | Some tcp -> Tcp.handle_timer tcp ~now:(Engine.now t.engine)
                       | None -> ()))
          | None -> ());
      notify =
        (fun ev ->
          match (!tcp_ref, ev) with
          | Some tcp, Tcp.Ev_established ->
              result.connected <- true;
              ignore
                (Tcp.send tcp ~now:(Engine.now t.engine) (Bytes.of_string payload) ~off:0
                   ~len:(String.length payload))
          | Some tcp, Tcp.Ev_rx_ready ->
              let data = Tcp.recv tcp ~max:65536 in
              result.response <- result.response ^ Bytes.to_string data
          | Some tcp, Tcp.Ev_peer_closed -> Tcp.close tcp ~now:(Engine.now t.engine)
          | _, (Tcp.Ev_reset | Tcp.Ev_closed) ->
              result.closed <- true;
              (match !timer with Some h -> Engine.cancel h | None -> ());
              timer := None;
              Hashtbl.remove t.conns key
          | _ -> ())
    }
  in
  let cfg =
    Tcp.default_config ~local_port ~remote_port:dst_port ~isn:(Rng.int t.rng 0x3FFFFFFF)
  in
  let tcp = Tcp.create_active cfg ~now:(Engine.now t.engine) cb in
  tcp_ref := Some tcp;
  Hashtbl.replace t.conns key
    {
      key;
      remote_ip = dst_ip;
      remote_mac = dst_mac;
      tcp;
      timer = None;
      request = Buffer.create 16;
      serving = None;
      done_serving = false;
    };
  result

let start_udp_stream t ~dst_ip ~dst_mac ~dst_port ~src_port ~payload_len ~interval =
  let stopped = ref false in
  let rec tick () =
    if not !stopped then begin
      t.udp_seq <- t.udp_seq + 1;
      let payload = Bytes.make payload_len (Char.chr (t.udp_seq land 0xFF)) in
      emit_frame t ~dst_mac ~dst_ip (Wire.Udp { Wire.src_port; dst_port; payload });
      ignore (Engine.schedule t.engine ~after:interval tick)
    end
  in
  tick ();
  fun () -> stopped := true
