module Engine = Resilix_sim.Engine
module Link = Resilix_hw.Link
module Rng = Resilix_sim.Rng

(* Server-side connection state (the wget/storm file server). *)
type pconn = {
  key : int * int * int; (* remote ip, remote port, local port *)
  remote_ip : int;
  remote_mac : int;
  tcp : Tcp.t;
  tkey : int; (* timer key in the shared timer set *)
  request : Buffer.t;
  mutable serving : (int * int * int) option; (* seed, size, sent *)
  mutable done_serving : bool;
}

type flow = {
  fl_key : int * int * int;
  fl_local_port : int;
  fl_tkey : int;
  mutable fl_tcp : Tcp.t option; (* None only during construction *)
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  link : Link.t;
  side : Link.side;
  ip : int;
  mac : int;
  files : (string, int * int) Hashtbl.t;
  conns : (int * int * int, Tcp.t) Hashtbl.t; (* segment demux *)
  (* One engine event serves every connection's retransmission timer:
     per-connection timers live in a shared Timerset (heap, lazy
     deletion) keyed by a per-peer counter, exactly like INET's single
     kernel alarm — at C10K one pending engine event instead of one
     per connection. *)
  timers : Timerset.t;
  timer_conns : (int, Tcp.t) Hashtbl.t; (* timer key -> connection *)
  mutable next_tkey : int;
  mutable alarm : Engine.handle option;
  mutable alarm_deadline : int;
  mutable next_client_port : int;
  mutable served : int;
  mutable accepted : int;
  mutable udp_seq : int;
}

let add_file t name ~size ~seed = Hashtbl.replace t.files name (size, seed)

let file_fnv t name =
  Option.map (fun (size, seed) -> Filegen.fnv_digest ~seed ~size) (Hashtbl.find_opt t.files name)

let file_md5 t name =
  Option.map (fun (size, seed) -> Filegen.md5_digest ~seed ~size) (Hashtbl.find_opt t.files name)

let bytes_served t = t.served
let connections t = t.accepted

let emit_frame t ~dst_mac ~dst_ip body =
  let frame =
    { Wire.dst_mac; src_mac = t.mac; packet = { Wire.src_ip = t.ip; dst_ip; body } }
  in
  Link.send t.link t.side (Wire.encode frame)

(* ------------------------------------------------------------------ *)
(* Shared timer plumbing                                               *)
(* ------------------------------------------------------------------ *)

let rec rearm t =
  match Timerset.next_deadline t.timers with
  | None -> ()
  | Some deadline ->
      let stale = match t.alarm with None -> true | Some _ -> deadline < t.alarm_deadline in
      if stale then begin
        (match t.alarm with Some h -> Engine.cancel h | None -> ());
        t.alarm_deadline <- deadline;
        t.alarm <-
          Some
            (Engine.schedule_at t.engine ~at:(max deadline (Engine.now t.engine)) (fun () ->
                 t.alarm <- None;
                 fire t))
      end

and fire t =
  let now = Engine.now t.engine in
  let due = Timerset.take_due t.timers ~now in
  List.iter
    (fun tkey ->
      match Hashtbl.find_opt t.timer_conns tkey with
      | Some tcp -> Tcp.handle_timer tcp ~now
      | None -> ())
    due;
  rearm t

let alloc_tkey t =
  let k = t.next_tkey in
  t.next_tkey <- t.next_tkey + 1;
  k

let set_conn_timer t ~tkey delay =
  (match delay with
  | Some d -> Timerset.set t.timers ~key:tkey ~deadline:(Engine.now t.engine + d)
  | None -> Timerset.cancel t.timers ~key:tkey);
  rearm t

let drop_timer t ~tkey =
  Timerset.cancel t.timers ~key:tkey;
  Hashtbl.remove t.timer_conns tkey

(* ------------------------------------------------------------------ *)
(* The file server (port 80)                                           *)
(* ------------------------------------------------------------------ *)

(* Push file bytes into the connection as send-buffer space allows. *)
let rec pump_file t conn =
  match conn.serving with
  | None -> ()
  | Some (seed, size, sent) ->
      if sent >= size then begin
        if not conn.done_serving then begin
          conn.done_serving <- true;
          Tcp.close conn.tcp ~now:(Engine.now t.engine)
        end
      end
      else begin
        let space = Tcp.tx_space conn.tcp in
        if space > 0 then begin
          let len = min (min space 16384) (size - sent) in
          let data = Filegen.read ~seed ~off:sent ~len in
          let accepted = Tcp.send conn.tcp ~now:(Engine.now t.engine) data ~off:0 ~len in
          t.served <- t.served + accepted;
          conn.serving <- Some (seed, size, sent + accepted);
          if accepted > 0 then pump_file t conn
        end
      end

let handle_request t conn =
  let s = Buffer.contents conn.request in
  match String.index_opt s '\n' with
  | None -> ()
  | Some i -> (
      let line = String.trim (String.sub s 0 i) in
      match String.split_on_char ' ' line with
      | [ "GET"; name ] -> (
          match Hashtbl.find_opt t.files name with
          | Some (size, seed) ->
              conn.serving <- Some (seed, size, 0);
              pump_file t conn
          | None -> Tcp.close conn.tcp ~now:(Engine.now t.engine))
      | _ -> Tcp.close conn.tcp ~now:(Engine.now t.engine))

let make_conn t ~key ~remote_ip ~remote_port ~remote_mac =
  let tkey = alloc_tkey t in
  let rec conn =
    lazy
      (let cb =
         {
           Tcp.emit =
             (fun seg ->
               let c = Lazy.force conn in
               emit_frame t ~dst_mac:c.remote_mac ~dst_ip:c.remote_ip (Wire.Tcp seg));
           set_timer = (fun delay -> set_conn_timer t ~tkey delay);
           notify =
             (fun ev ->
               let c = Lazy.force conn in
               match ev with
               | Tcp.Ev_rx_ready ->
                   let data = Tcp.recv c.tcp ~max:4096 in
                   Buffer.add_bytes c.request data;
                   if c.serving = None then handle_request t c
               | Tcp.Ev_tx_space -> pump_file t c
               | Tcp.Ev_established -> ()
               | Tcp.Ev_peer_closed ->
                   if c.serving = None then Tcp.close c.tcp ~now:(Engine.now t.engine)
               | Tcp.Ev_reset | Tcp.Ev_closed ->
                   drop_timer t ~tkey:c.tkey;
                   Hashtbl.remove t.conns c.key)
         }
       in
       let _, rport, lport = key in
       let cfg = Tcp.default_config ~local_port:lport ~remote_port:rport ~isn:(Rng.int t.rng 0x3FFFFFFF) in
       {
         key;
         remote_ip;
         remote_mac;
         tcp = Tcp.create_passive cfg ~now:(Engine.now t.engine) cb;
         tkey;
         request = Buffer.create 64;
         serving = None;
         done_serving = false;
       })
  in
  let c = Lazy.force conn in
  Hashtbl.replace t.conns key c.tcp;
  Hashtbl.replace t.timer_conns tkey c.tcp;
  t.accepted <- t.accepted + 1;
  c

let on_frame t raw =
  match Wire.decode raw with
  | Error _ -> () (* corrupted on the wire: drop *)
  | Ok frame ->
      if frame.Wire.packet.dst_ip = t.ip then begin
        match frame.Wire.packet.body with
        | Wire.Tcp seg -> begin
            let key = (frame.Wire.packet.src_ip, seg.Wire.src_port, seg.Wire.dst_port) in
            match Hashtbl.find_opt t.conns key with
            | Some tcp -> Tcp.handle_segment tcp ~now:(Engine.now t.engine) seg
            | None ->
                if seg.Wire.syn && seg.Wire.dst_port = 80 then begin
                  let conn =
                    make_conn t ~key ~remote_ip:frame.Wire.packet.src_ip
                      ~remote_port:seg.Wire.src_port ~remote_mac:frame.Wire.src_mac
                  in
                  Tcp.handle_segment conn.tcp ~now:(Engine.now t.engine) seg
                end
                else if not seg.Wire.rst then
                  (* Stateless reset for strays. *)
                  emit_frame t ~dst_mac:frame.Wire.src_mac ~dst_ip:frame.Wire.packet.src_ip
                    (Wire.Tcp
                       {
                         Wire.src_port = seg.Wire.dst_port;
                         dst_port = seg.Wire.src_port;
                         seq = seg.Wire.ack_no;
                         ack_no = 0;
                         syn = false;
                         ack = false;
                         fin = false;
                         rst = true;
                         window = 0;
                         payload = Bytes.empty;
                       })
          end
        | Wire.Udp dgram ->
            if dgram.Wire.dst_port = 7 then
              (* Echo service. *)
              emit_frame t ~dst_mac:frame.Wire.src_mac ~dst_ip:frame.Wire.packet.src_ip
                (Wire.Udp
                   {
                     Wire.src_port = 7;
                     dst_port = dgram.Wire.src_port;
                     payload = dgram.Wire.payload;
                   })
      end

let create ~engine ~rng ~link ~side ~ip ~mac ?(files = []) () =
  let t =
    {
      engine;
      rng;
      link;
      side;
      ip;
      mac;
      files = Hashtbl.create 8;
      conns = Hashtbl.create 64;
      timers = Timerset.create ();
      timer_conns = Hashtbl.create 64;
      next_tkey = 0;
      alarm = None;
      alarm_deadline = 0;
      next_client_port = 50_000;
      served = 0;
      accepted = 0;
      udp_seq = 0;
    }
  in
  List.iter (fun (name, (size, seed)) -> add_file t name ~size ~seed) files;
  Link.attach link side (on_frame t);
  t

(* ------------------------------------------------------------------ *)
(* Outbound client flows                                               *)
(* ------------------------------------------------------------------ *)

let flow_tcp f =
  match f.fl_tcp with Some tcp -> tcp | None -> invalid_arg "Peer.flow_tcp: under construction"

let flow_local_port f = f.fl_local_port

let open_flow t ~dst_ip ~dst_mac ~dst_port ?local_port ?(rx_window = 65536) ?(tx_buffer = 16384)
    ~notify () =
  let local_port =
    match local_port with
    | Some p -> p
    | None ->
        (* Sequential ephemeral ports: collision-free for any number of
           concurrent flows (the old random pick had birthday
           collisions by a few hundred). *)
        let p = t.next_client_port in
        t.next_client_port <- (if p >= 65_000 then 50_000 else p + 1);
        p
  in
  let key = (dst_ip, dst_port, local_port) in
  let tkey = alloc_tkey t in
  let flow = { fl_key = key; fl_local_port = local_port; fl_tkey = tkey; fl_tcp = None } in
  let cb =
    {
      Tcp.emit = (fun seg -> emit_frame t ~dst_mac ~dst_ip (Wire.Tcp seg));
      set_timer = (fun delay -> set_conn_timer t ~tkey delay);
      notify =
        (fun ev ->
          (match ev with
          | Tcp.Ev_reset | Tcp.Ev_closed ->
              drop_timer t ~tkey;
              Hashtbl.remove t.conns key
          | _ -> ());
          notify flow ev);
    }
  in
  let cfg =
    {
      (Tcp.default_config ~local_port ~remote_port:dst_port ~isn:(Rng.int t.rng 0x3FFFFFFF)) with
      Tcp.rx_window;
      tx_buffer;
    }
  in
  let tcp = Tcp.create_active cfg ~now:(Engine.now t.engine) cb in
  flow.fl_tcp <- Some tcp;
  (* The SYN may be answered only after several RTOs; register for
     demux and timers even if the handshake retransmits. *)
  Hashtbl.replace t.conns key tcp;
  Hashtbl.replace t.timer_conns tkey tcp;
  flow

let flow_close t f =
  match f.fl_tcp with Some tcp -> Tcp.close tcp ~now:(Engine.now t.engine) | None -> ()

let flow_abort t f =
  match f.fl_tcp with
  | Some tcp ->
      Tcp.abort tcp;
      drop_timer t ~tkey:f.fl_tkey;
      Hashtbl.remove t.conns f.fl_key
  | None -> ()

type client_result = {
  mutable connected : bool;
  mutable response : string;
  mutable closed : bool;
}

(* An outbound TCP connection from the peer into the machine under
   test: used to exercise the network server's passive-open path. *)
let start_tcp_client t ~dst_ip ~dst_mac ~dst_port ~payload =
  let result = { connected = false; response = ""; closed = false } in
  ignore
    (open_flow t ~dst_ip ~dst_mac ~dst_port
       ~notify:(fun flow ev ->
         match ev with
         | Tcp.Ev_established ->
             result.connected <- true;
             ignore
               (Tcp.send (flow_tcp flow) ~now:(Engine.now t.engine) (Bytes.of_string payload)
                  ~off:0 ~len:(String.length payload))
         | Tcp.Ev_rx_ready ->
             let data = Tcp.recv (flow_tcp flow) ~max:65536 in
             result.response <- result.response ^ Bytes.to_string data
         | Tcp.Ev_peer_closed -> Tcp.close (flow_tcp flow) ~now:(Engine.now t.engine)
         | Tcp.Ev_reset | Tcp.Ev_closed -> result.closed <- true
         | Tcp.Ev_tx_space -> ())
       ());
  result

let start_udp_stream t ~dst_ip ~dst_mac ~dst_port ~src_port ~payload_len ~interval =
  let stopped = ref false in
  let rec tick () =
    if not !stopped then begin
      t.udp_seq <- t.udp_seq + 1;
      let payload = Bytes.make payload_len (Char.chr (t.udp_seq land 0xFF)) in
      emit_frame t ~dst_mac ~dst_ip (Wire.Udp { Wire.src_port; dst_port; payload });
      ignore (Engine.schedule t.engine ~after:interval tick)
    end
  in
  tick ();
  fun () -> stopped := true
