(** Multiplexes many logical timers onto one deadline source.

    The network server owns a single kernel alarm; each TCP connection
    needs its own retransmission timer.  This keeps the earliest
    deadline per integer key. *)

type t
(** A timer set. *)

val create : unit -> t
(** Empty set. *)

val set : t -> key:int -> deadline:int -> unit
(** Arm (or re-arm) the timer for [key]. *)

val cancel : t -> key:int -> unit
(** Disarm [key]'s timer. *)

val next_deadline : t -> int option
(** Earliest armed deadline. *)

val take_due : t -> now:int -> int list
(** Remove and return every key whose deadline has passed. *)
