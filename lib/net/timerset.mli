(** Multiplexes many logical timers onto one deadline source.

    The network server owns a single kernel alarm and the remote peer
    owns a single engine event; each TCP connection needs its own
    retransmission timer.  This keeps the earliest deadline per
    integer key.

    Scales to C10K: a binary min-heap with lazy deletion, so [set],
    [cancel] and each expiry are O(log n) amortized — re-arming a
    timer leaves the stale heap entry behind and invalidates it with a
    per-key generation, which {!next_deadline}/{!take_due} skip as
    they surface.  (The previous implementation folded over a hash
    table on every query: O(n) per TCP action, quadratic across a
    connection storm.) *)

type t
(** A timer set. *)

val create : unit -> t
(** Empty set. *)

val set : t -> key:int -> deadline:int -> unit
(** Arm (or re-arm) the timer for [key]. *)

val cancel : t -> key:int -> unit
(** Disarm [key]'s timer. *)

val next_deadline : t -> int option
(** Earliest armed deadline. *)

val take_due : t -> now:int -> int list
(** Remove and return every key whose deadline has passed, in
    ascending key order (deterministic for reproducibility). *)

val armed : t -> int
(** Number of currently armed timers. *)
