(** Wire formats: Ethernet-like frames carrying an IP-lite header and
    TCP or UDP.  Frames are what NIC models DMA in and out of driver
    memory, so everything here round-trips through real byte buffers;
    decode validates a CRC-32 over the transport header + payload, so
    corruption on the link (or a buggy driver writing garbage) is
    detected and the segment dropped — which TCP then repairs
    (Sec. 6.1). *)

type tcp_segment = {
  src_port : int;
  dst_port : int;
  seq : int;  (** 32-bit sequence number of the first payload byte *)
  ack_no : int;  (** cumulative acknowledgement (valid when [ack]) *)
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  window : int;  (** advertised receive window, bytes *)
  payload : bytes;
}

type udp_datagram = { src_port : int; dst_port : int; payload : bytes }

type ip_payload = Tcp of tcp_segment | Udp of udp_datagram

type packet = { src_ip : int; dst_ip : int; body : ip_payload }

type frame = { dst_mac : int; src_mac : int; packet : packet }

val encode : frame -> bytes
(** Serialize to link bytes. *)

val decode : bytes -> (frame, string) result
(** Parse and CRC-check link bytes. *)

val max_payload : int
(** Maximum TCP/UDP payload per frame (the MSS), 1460 bytes. *)

val ip : int -> int -> int -> int -> int
(** [ip a b c d] builds a dotted-quad address as an int. *)

val ip_to_string : int -> string
(** Dotted-quad rendering. *)
