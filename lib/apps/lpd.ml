module Api = Resilix_kernel.Sysif.Api
module Errno = Resilix_proto.Errno

type result = {
  mutable finished : bool;
  mutable jobs_done : int;
  mutable resubmissions : int;
  mutable gave_up : bool;
}

let fresh_result () = { finished = false; jobs_done = 0; resubmissions = 0; gave_up = false }

let make ~jobs ?(recovery_aware = true) ?(max_retries = 25) result () =
  let rec open_printer retries =
    match Fslib.open_file "/dev/printer" ~wr:true with
    | Ok fd -> Some fd
    | Error _ when recovery_aware && retries < max_retries ->
        Api.sleep 100_000;
        open_printer (retries + 1)
    | Error _ -> None
  in
  let rec print_job job retries =
    match open_printer 0 with
    | None -> false
    | Some fd -> (
        let outcome = Fslib.write fd (Bytes.of_string job) in
        ignore (Fslib.close fd);
        match outcome with
        | Ok _ -> true
        | Error Errno.E_busy ->
            Api.sleep 50_000;
            print_job job retries
        | Error _ ->
            if recovery_aware && retries < max_retries then begin
              (* The driver died mid-job: reissue the whole job.  The
                 user may get duplicate pages, but the job completes. *)
              result.resubmissions <- result.resubmissions + 1;
              Api.sleep 200_000;
              print_job job (retries + 1)
            end
            else false)
  in
  let rec run = function
    | [] -> ()
    | job :: rest ->
        if print_job job 0 then begin
          result.jobs_done <- result.jobs_done + 1;
          run rest
        end
        else result.gave_up <- true
  in
  run jobs;
  result.finished <- true
