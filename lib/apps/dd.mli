(** The dd workload (Sec. 7.1, Fig. 8): sequentially read a file from
    the file system (piping it into a checksum) while the disk driver
    may be crashing underneath.

    The paper pipes dd into sha1sum; here SHA-1 is opt-in (real
    wall-clock cost on large files) and a streaming FNV digest is
    always computed for the integrity comparison. *)

type result = {
  mutable finished : bool;
  mutable ok : bool;
  mutable bytes : int;
  mutable started_at : int;
  mutable finished_at : int;
  mutable fnv : string;
  mutable sha1 : string;
}

val fresh_result : unit -> result
(** All zeros. *)

val make : path:string -> ?chunk:int -> ?with_sha1:bool -> result -> unit -> unit
(** Build the application body.  [chunk] defaults to 60 KB. *)
