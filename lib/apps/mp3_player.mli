(** A recovery-aware MP3 player (Sec. 6.3).

    Streams a "song" to [/dev/audio].  When the audio driver crashes,
    the write fails with an I/O error; instead of giving up (as
    historical applications would), the player reopens the device and
    continues from where it was — the listener hears a hiccup, the
    song still finishes. *)

type result = {
  mutable finished : bool;
  mutable completed : bool;  (** the whole song was eventually played *)
  mutable bytes : int;
  mutable recoveries : int;  (** times the player had to reopen the device *)
  mutable gave_up : bool;
}

val fresh_result : unit -> result
(** All zeros. *)

val make :
  song_bytes:int -> ?chunk:int -> ?recovery_aware:bool -> ?max_retries:int -> result -> unit -> unit
(** With [recovery_aware:false] the player behaves like a legacy
    application: the first driver failure aborts playback. *)
