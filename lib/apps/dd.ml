module Api = Resilix_kernel.Sysif.Api
module Fnv = Resilix_checksum.Fnv
module Sha1 = Resilix_checksum.Sha1

type result = {
  mutable finished : bool;
  mutable ok : bool;
  mutable bytes : int;
  mutable started_at : int;
  mutable finished_at : int;
  mutable fnv : string;
  mutable sha1 : string;
}

let fresh_result () =
  { finished = false; ok = false; bytes = 0; started_at = 0; finished_at = 0; fnv = ""; sha1 = "" }

let make ~path ?(chunk = 61440) ?(with_sha1 = false) result () =
  result.started_at <- Api.now ();
  let finish ok =
    result.ok <- ok;
    result.finished_at <- Api.now ();
    result.finished <- true
  in
  match Fslib.open_file path with
  | Error _ -> finish false
  | Ok fd ->
      let fnv = ref Fnv.start in
      let sha1 = if with_sha1 then Some (Sha1.init ()) else None in
      let rec pump () =
        match Fslib.read fd ~len:chunk with
        | Error _ -> finish false
        | Ok data when Bytes.length data = 0 ->
            result.fnv <- Fnv.to_hex !fnv;
            (match sha1 with Some ctx -> result.sha1 <- Sha1.hex (Sha1.finalize ctx) | None -> ());
            ignore (Fslib.close fd);
            finish true
        | Ok data ->
            result.bytes <- result.bytes + Bytes.length data;
            fnv := Fnv.update !fnv data ~off:0 ~len:(Bytes.length data);
            (match sha1 with
            | Some ctx -> Sha1.update ctx data ~off:0 ~len:(Bytes.length data)
            | None -> ());
            pump ()
      in
      pump ()
