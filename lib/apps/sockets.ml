module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Memory = Resilix_kernel.Memory
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Wellknown = Resilix_proto.Wellknown

(* Separate bounce buffer so socket and file I/O can interleave. *)
let buf_addr = 0x12000
let buf_size = 61440

let rpc msg =
  match Api.sendrec Wellknown.inet msg with
  | Ok (Sysif.Rx_msg { body; _ }) -> Ok body
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let socket proto =
  match rpc (Message.In_socket { proto }) with
  | Ok (Message.In_socket_reply { result }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let connect sock ~addr ~port =
  match rpc (Message.In_connect { sock; addr; port }) with
  | Ok (Message.In_reply { result }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let listen ?(backlog = 16) sock ~port =
  match rpc (Message.In_listen { sock; port; backlog }) with
  | Ok (Message.In_reply { result }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let accept sock =
  match rpc (Message.In_accept { sock }) with
  | Ok (Message.In_accept_reply { result }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let with_grant ~len ~access f =
  match Api.grant_create ~for_:Wellknown.inet ~base:buf_addr ~len ~access with
  | Error e -> Error e
  | Ok g ->
      let r = f g in
      ignore (Api.grant_revoke g);
      r

let send_all sock data =
  let total = Bytes.length data in
  let rec chunks off =
    if off >= total then Ok ()
    else begin
      let len = min buf_size (total - off) in
      Memory.write (Api.memory ()) ~addr:buf_addr (Bytes.sub data off len);
      match
        with_grant ~len ~access:Sysif.Read_only (fun grant ->
            match rpc (Message.In_send { sock; grant; len }) with
            | Ok (Message.In_io_reply { result }) -> result
            | Ok _ -> Error Errno.E_io
            | Error e -> Error e)
      with
      | Ok _ -> chunks (off + len)
      | Error e -> Error e
    end
  in
  chunks 0

let recv sock ~len =
  let len = min len buf_size in
  with_grant ~len ~access:Sysif.Write_only (fun grant ->
      match rpc (Message.In_recv { sock; grant; len }) with
      | Ok (Message.In_io_reply { result = Ok n }) ->
          Ok (Memory.read (Api.memory ()) ~addr:buf_addr ~len:n)
      | Ok (Message.In_io_reply { result = Error e }) -> Error e
      | Ok _ -> Error Errno.E_io
      | Error e -> Error e)

let sendto sock ~addr ~port data =
  let len = Bytes.length data in
  if len > buf_size then invalid_arg "Sockets.sendto: datagram too large";
  Memory.write (Api.memory ()) ~addr:buf_addr data;
  with_grant ~len ~access:Sysif.Read_only (fun grant ->
      match rpc (Message.In_sendto { sock; addr; port; grant; len }) with
      | Ok (Message.In_io_reply { result }) -> result
      | Ok _ -> Error Errno.E_io
      | Error e -> Error e)

let recvfrom sock ~len =
  let len = min len buf_size in
  with_grant ~len ~access:Sysif.Write_only (fun grant ->
      match rpc (Message.In_recvfrom { sock; grant; len }) with
      | Ok (Message.In_recvfrom_reply { result = Ok (n, addr, port) }) ->
          Ok (Memory.read (Api.memory ()) ~addr:buf_addr ~len:n, addr, port)
      | Ok (Message.In_recvfrom_reply { result = Error e }) -> Error e
      | Ok _ -> Error Errno.E_io
      | Error e -> Error e)

let close sock =
  match rpc (Message.In_close { sock }) with
  | Ok (Message.In_reply { result }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e
