module Api = Resilix_kernel.Sysif.Api
module Errno = Resilix_proto.Errno

type result = {
  mutable finished : bool;
  mutable completed : bool;
  mutable bytes : int;
  mutable recoveries : int;
  mutable gave_up : bool;
}

let fresh_result () =
  { finished = false; completed = false; bytes = 0; recoveries = 0; gave_up = false }

let make ~song_bytes ?(chunk = 8192) ?(recovery_aware = true) ?(max_retries = 50) result () =
  let finish () = result.finished <- true in
  let rec open_device retries =
    match Fslib.open_file "/dev/audio" ~wr:true with
    | Ok fd -> Some fd
    | Error _ when recovery_aware && retries < max_retries ->
        (* The driver may be mid-reincarnation; give it a moment. *)
        Api.sleep 100_000;
        open_device (retries + 1)
    | Error _ -> None
  in
  match open_device 0 with
  | None ->
      result.gave_up <- true;
      finish ()
  | Some fd ->
      let song_pos = ref 0 in
      let fd = ref fd in
      let retries = ref 0 in
      let rec play () =
        if !song_pos >= song_bytes then begin
          result.completed <- true;
          ignore (Fslib.close !fd);
          finish ()
        end
        else begin
          let len = min chunk (song_bytes - !song_pos) in
          (* Synthesized samples: content does not matter to the codec. *)
          let data = Bytes.make len (Char.chr (!song_pos land 0xFF)) in
          match Fslib.write !fd data with
          | Ok n ->
              song_pos := !song_pos + n;
              result.bytes <- result.bytes + n;
              (* Pace roughly like a real player: sleep a fraction of
                 the audio time the chunk represents. *)
              Api.sleep (n * 4);
              play ()
          | Error Errno.E_again ->
              (* Driver spool full; back off briefly. *)
              Api.sleep 20_000;
              play ()
          | Error _ ->
              if recovery_aware && !retries < max_retries then begin
                incr retries;
                result.recoveries <- result.recoveries + 1;
                ignore (Fslib.close !fd);
                match open_device 0 with
                | Some nfd ->
                    (* Continue the song where it stopped: a hiccup,
                       not a restart (Sec. 6.3). *)
                    fd := nfd;
                    play ()
                | None ->
                    result.gave_up <- true;
                    finish ()
              end
              else begin
                result.gave_up <- true;
                finish ()
              end
        end
      in
      play ()
