module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Memory = Resilix_kernel.Memory
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Wellknown = Resilix_proto.Wellknown

(* Per-process bounce buffer for VFS data. *)
let buf_addr = 0x2000
let buf_size = 61440

let open_file ?(wr = false) ?(create = false) ?(trunc = false) path =
  match
    Api.sendrec Wellknown.vfs (Message.Vfs_open { path; flags = { Message.wr; create; trunc } })
  with
  | Ok (Sysif.Rx_msg { body = Message.Vfs_open_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let with_grant ~for_ ~len ~access f =
  match Api.grant_create ~for_ ~base:buf_addr ~len ~access with
  | Error e -> Error e
  | Ok g ->
      let r = f g in
      ignore (Api.grant_revoke g);
      r

let read fd ~len =
  let len = min len buf_size in
  with_grant ~for_:Wellknown.vfs ~len ~access:Sysif.Write_only (fun grant ->
      match Api.sendrec Wellknown.vfs (Message.Vfs_read { fd; grant; len }) with
      | Ok (Sysif.Rx_msg { body = Message.Vfs_io_reply { result = Ok n }; _ }) ->
          Ok (Memory.read (Api.memory ()) ~addr:buf_addr ~len:n)
      | Ok (Sysif.Rx_msg { body = Message.Vfs_io_reply { result = Error e }; _ }) -> Error e
      | Ok _ -> Error Errno.E_io
      | Error e -> Error e)

let write fd data =
  let len = Bytes.length data in
  if len > buf_size then invalid_arg "Fslib.write: buffer too large";
  Memory.write (Api.memory ()) ~addr:buf_addr data;
  with_grant ~for_:Wellknown.vfs ~len ~access:Sysif.Read_only (fun grant ->
      match Api.sendrec Wellknown.vfs (Message.Vfs_write { fd; grant; len }) with
      | Ok (Sysif.Rx_msg { body = Message.Vfs_io_reply { result }; _ }) -> result
      | Ok _ -> Error Errno.E_io
      | Error e -> Error e)

let lseek fd ~pos =
  match Api.sendrec Wellknown.vfs (Message.Vfs_lseek { fd; pos }) with
  | Ok (Sysif.Rx_msg { body = Message.Vfs_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let close fd =
  match Api.sendrec Wellknown.vfs (Message.Vfs_close { fd }) with
  | Ok (Sysif.Rx_msg { body = Message.Vfs_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let ioctl fd ~op ~arg =
  match Api.sendrec Wellknown.vfs (Message.Vfs_ioctl { fd; op; arg }) with
  | Ok (Sysif.Rx_msg { body = Message.Vfs_io_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e
