(** Application-side file API: thin wrappers over the VFS protocol
    that manage the request grant and bounce buffer (the simulated
    libc's [open]/[read]/[write]). *)

module Errno := Resilix_proto.Errno

val open_file :
  ?wr:bool -> ?create:bool -> ?trunc:bool -> string -> (int, Errno.t) result
(** Open a path; returns a file descriptor. *)

val read : int -> len:int -> (bytes, Errno.t) result
(** Read up to [len] bytes at the current position (max 60 KB per
    call); an empty result means end of file. *)

val write : int -> bytes -> (int, Errno.t) result
(** Write the whole buffer (max 60 KB per call); returns bytes
    written. *)

val lseek : int -> pos:int -> (unit, Errno.t) result
(** Set the file position. *)

val close : int -> (unit, Errno.t) result
(** Release the descriptor. *)

val ioctl : int -> op:string -> arg:int -> (int, Errno.t) result
(** Device control on a character-device descriptor. *)
