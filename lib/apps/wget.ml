module Api = Resilix_kernel.Sysif.Api
module Message = Resilix_proto.Message
module Fnv = Resilix_checksum.Fnv
module Md5 = Resilix_checksum.Md5

type result = {
  mutable finished : bool;
  mutable ok : bool;
  mutable bytes : int;
  mutable started_at : int;
  mutable finished_at : int;
  mutable fnv : string;
  mutable md5 : string;
}

let fresh_result () =
  { finished = false; ok = false; bytes = 0; started_at = 0; finished_at = 0; fnv = ""; md5 = "" }

let make ~server ~port ~file ?(chunk = 32768) ?(with_md5 = false) result () =
  result.started_at <- Api.now ();
  let finish ok =
    result.ok <- ok;
    result.finished_at <- Api.now ();
    result.finished <- true
  in
  match Sockets.socket Message.Tcp with
  | Error _ -> finish false
  | Ok sock -> (
      match Sockets.connect sock ~addr:server ~port with
      | Error _ -> finish false
      | Ok () -> (
          match Sockets.send_all sock (Bytes.of_string ("GET " ^ file ^ "\n")) with
          | Error _ -> finish false
          | Ok () ->
              let fnv = ref Fnv.start in
              let md5 = if with_md5 then Some (Md5.init ()) else None in
              let rec pump () =
                match Sockets.recv sock ~len:chunk with
                | Error _ -> finish false
                | Ok data when Bytes.length data = 0 ->
                    (* Peer closed: transfer complete. *)
                    result.fnv <- Fnv.to_hex !fnv;
                    (match md5 with
                    | Some ctx -> result.md5 <- Md5.hex (Md5.finalize ctx)
                    | None -> ());
                    ignore (Sockets.close sock);
                    finish true
                | Ok data ->
                    result.bytes <- result.bytes + Bytes.length data;
                    fnv := Fnv.update !fnv data ~off:0 ~len:(Bytes.length data);
                    (match md5 with
                    | Some ctx -> Md5.update ctx data ~off:0 ~len:(Bytes.length data)
                    | None -> ());
                    pump ()
              in
              pump ()))
