(** An HTTP-ish static file server: the machine-under-test side of the
    C10K storm workload.

    The protocol is a single request line, [GET <target>\n], answered
    with the raw file bytes followed by close (no headers — the client
    knows what it asked for and validates the content digest itself).
    Two target forms are served:

    - [gen:<seed>:<size>] — deterministic {!Resilix_net.Filegen}
      content, no disk I/O (the storm workload, so the bottleneck
      under study stays the network path);
    - [fs:<path>] — a file read through VFS/MFS ({!Fslib}), exercising
      the full file-system path.

    The server is a pool of worker processes sharing one listening
    socket: a {!listener} app binds the port, then any number of
    {!worker} apps block in accept on it — INET queues the blocked
    accepts and hands out connections FIFO, so slow clients stall one
    worker, not the pool. *)

type stats = {
  mutable lsock : int;  (** the shared listening socket (once listening) *)
  mutable listening : bool;
  mutable workers : int;  (** workers currently in their accept loop *)
  mutable requests : int;  (** responses streamed to completion *)
  mutable bad_requests : int;  (** unparsable / unknown-target requests *)
  mutable io_errors : int;  (** responses cut short by a socket error *)
  mutable bytes_out : int;  (** response bytes accepted into TCP *)
}

val fresh_stats : unit -> stats

val listener : ?backlog:int -> port:int -> stats -> unit -> unit
(** App body: bind and listen on [port] (backlog default 64), record
    the socket in [stats], exit.  Run it to completion (wait for
    [stats.listening]) before spawning workers. *)

val worker : stats -> unit -> unit
(** App body: serve connections accepted from [stats.lsock] until the
    listener closes.  Spawn as many as the desired pool size. *)
