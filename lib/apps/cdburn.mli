(** The CD burning application (Sec. 6.3) — the case where recovery
    must {e not} be attempted: continuing a burn after the SCSI/CD
    driver failed would "most certainly produce a corrupted disc, so
    the error must be reported to the user". *)

type result = {
  mutable finished : bool;
  mutable success : bool;  (** the disc was burned and finalized *)
  mutable error_reported : bool;  (** the failure was surfaced to the user *)
  mutable blocks_burned : int;
}

val fresh_result : unit -> result
(** All zeros. *)

val make : data:string -> ?block:int -> result -> unit -> unit
(** Burn [data] in blocks (default 16 KB each). *)
