(** A recovery-aware printer spooler (Sec. 6.3).

    Submits print jobs to [/dev/printer].  If the printer driver dies
    mid-job, the job is automatically reissued ("without bothering the
    user") — transparent recovery is impossible for character streams,
    so the price is possibly duplicated output, which the test
    observes on the printer device's paper trail. *)

type result = {
  mutable finished : bool;
  mutable jobs_done : int;
  mutable resubmissions : int;
  mutable gave_up : bool;
}

val fresh_result : unit -> result
(** All zeros. *)

val make : jobs:string list -> ?recovery_aware:bool -> ?max_retries:int -> result -> unit -> unit
(** Print each job in order.  With [recovery_aware:false] the first
    failure abandons the queue (the "historical application"
    behaviour). *)
