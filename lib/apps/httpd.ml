module Api = Resilix_kernel.Sysif.Api
module Message = Resilix_proto.Message
module Filegen = Resilix_net.Filegen

type stats = {
  mutable lsock : int;
  mutable listening : bool;
  mutable workers : int;
  mutable requests : int;
  mutable bad_requests : int;
  mutable io_errors : int;
  mutable bytes_out : int;
}

let fresh_stats () =
  {
    lsock = -1;
    listening = false;
    workers = 0;
    requests = 0;
    bad_requests = 0;
    io_errors = 0;
    bytes_out = 0;
  }

let chunk = 32768

let listener ?(backlog = 64) ~port stats () =
  match Sockets.socket Message.Tcp with
  | Error _ -> ()
  | Ok sock -> (
      match Sockets.listen ~backlog sock ~port with
      | Error _ -> ()
      | Ok () ->
          stats.lsock <- sock;
          stats.listening <- true)

(* Accumulate received bytes until the newline terminating the request
   line.  None on connection error, premature close, or an oversized
   line (a misbehaving client). *)
let read_request sock =
  let buf = Buffer.create 64 in
  let rec go () =
    if Buffer.length buf > 512 then None
    else begin
      match Sockets.recv sock ~len:256 with
      | Error _ -> None
      | Ok data when Bytes.length data = 0 -> None
      | Ok data -> (
          Buffer.add_bytes buf data;
          let s = Buffer.contents buf in
          match String.index_opt s '\n' with
          | Some i -> Some (String.sub s 0 i)
          | None -> go ())
    end
  in
  go ()

type target = T_gen of int * int | T_fs of string

let parse_request line =
  let pfx = "GET " in
  let plen = String.length pfx in
  if String.length line <= plen || not (String.equal (String.sub line 0 plen) pfx) then None
  else begin
    let target = String.sub line plen (String.length line - plen) in
    match String.split_on_char ':' target with
    | [ "gen"; seed; size ] -> (
        match (int_of_string_opt seed, int_of_string_opt size) with
        | Some seed, Some size when size >= 0 -> Some (T_gen (seed, size))
        | _ -> None)
    | "fs" :: rest when rest <> [] -> Some (T_fs (String.concat ":" rest))
    | _ -> None
  end

(* Stream [push] until done; count one request served or one I/O
   error.  The response is the raw bytes followed by close — the
   client knows what it asked for and validates the digest itself. *)
let finish_stream stats = function
  | Ok sent ->
      stats.requests <- stats.requests + 1;
      stats.bytes_out <- stats.bytes_out + sent;
      Api.metric_incr "httpd.requests";
      Api.metric_add "httpd.bytes_out" sent
  | Error sent ->
      stats.io_errors <- stats.io_errors + 1;
      stats.bytes_out <- stats.bytes_out + sent;
      Api.metric_incr "httpd.io_errors"

let serve_gen stats sock ~seed ~size =
  let rec push off =
    if off >= size then Ok off
    else begin
      let len = min chunk (size - off) in
      match Sockets.send_all sock (Filegen.read ~seed ~off ~len) with
      | Ok () -> push (off + len)
      | Error _ -> Error off
    end
  in
  finish_stream stats (push 0)

let serve_fs stats sock path =
  match Fslib.open_file path with
  | Error _ ->
      stats.bad_requests <- stats.bad_requests + 1;
      Api.metric_incr "httpd.bad_requests";
      ignore (Sockets.send_all sock (Bytes.of_string "ERR not-found\n"))
  | Ok fd ->
      let rec push sent =
        match Fslib.read fd ~len:chunk with
        | Error _ -> Error sent
        | Ok data when Bytes.length data = 0 -> Ok sent
        | Ok data -> (
            match Sockets.send_all sock data with
            | Ok () -> push (sent + Bytes.length data)
            | Error _ -> Error sent)
      in
      let r = push 0 in
      ignore (Fslib.close fd);
      finish_stream stats r

let serve_conn stats sock =
  (match read_request sock with
  | None ->
      stats.bad_requests <- stats.bad_requests + 1;
      Api.metric_incr "httpd.bad_requests"
  | Some line -> (
      match parse_request line with
      | None ->
          stats.bad_requests <- stats.bad_requests + 1;
          Api.metric_incr "httpd.bad_requests";
          ignore (Sockets.send_all sock (Bytes.of_string "ERR bad-request\n"))
      | Some (T_gen (seed, size)) -> serve_gen stats sock ~seed ~size
      | Some (T_fs path) -> serve_fs stats sock path));
  ignore (Sockets.close sock)

let worker stats () =
  stats.workers <- stats.workers + 1;
  let rec loop () =
    match Sockets.accept stats.lsock with
    | Error _ ->
        (* Listener closed (or never existed): the worker retires. *)
        stats.workers <- stats.workers - 1
    | Ok conn ->
        serve_conn stats conn;
        loop ()
  in
  loop ()
