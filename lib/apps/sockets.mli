(** Application-side socket API over the INET server. *)

module Errno := Resilix_proto.Errno

val socket : Resilix_proto.Message.sock_proto -> (int, Errno.t) result
(** Create a TCP or UDP socket. *)

val connect : int -> addr:int -> port:int -> (unit, Errno.t) result
(** Actively open a TCP connection (blocks until established). *)

val listen : ?backlog:int -> int -> port:int -> (unit, Errno.t) result
(** Bind (UDP) or bind + listen (TCP).  [backlog] (default 16, TCP
    only) bounds the number of un-accepted connections the listener
    will hold — handshaking and established alike; once full, further
    SYNs are refused with RST so storms fail fast instead of queueing
    without bound. *)

val accept : int -> (int, Errno.t) result
(** Block until an inbound connection is established; returns its
    socket. *)

val send_all : int -> bytes -> (unit, Errno.t) result
(** Send the whole buffer (blocking). *)

val recv : int -> len:int -> (bytes, Errno.t) result
(** Receive up to [len] (max 60 KB) bytes; empty means the peer closed. *)

val sendto : int -> addr:int -> port:int -> bytes -> (int, Errno.t) result
(** Send one datagram. *)

val recvfrom : int -> len:int -> (bytes * int * int, Errno.t) result
(** Receive one datagram: (payload, source address, source port). *)

val close : int -> (unit, Errno.t) result
(** Close the socket. *)
