
type result = {
  mutable finished : bool;
  mutable success : bool;
  mutable error_reported : bool;
  mutable blocks_burned : int;
}

let fresh_result () =
  { finished = false; success = false; error_reported = false; blocks_burned = 0 }

let make ~data ?(block = 16384) result () =
  let fail () =
    (* No recovery is possible: tell the user (Sec. 6.3). *)
    result.error_reported <- true;
    result.finished <- true
  in
  match Fslib.open_file "/dev/cd" ~wr:true with
  | Error _ -> fail ()
  | Ok fd -> (
      match Fslib.ioctl fd ~op:"burn_start" ~arg:0 with
      | Error _ -> fail ()
      | Ok _ ->
          let total = String.length data in
          let rec burn off =
            if off >= total then begin
              match Fslib.ioctl fd ~op:"burn_finish" ~arg:0 with
              | Ok _ ->
                  ignore (Fslib.close fd);
                  result.success <- true;
                  result.finished <- true
              | Error _ -> fail ()
            end
            else begin
              let len = min block (total - off) in
              match Fslib.write fd (Bytes.of_string (String.sub data off len)) with
              | Ok _ ->
                  result.blocks_burned <- result.blocks_burned + 1;
                  burn (off + len)
              | Error _ -> fail ()
            end
          in
          burn 0)
