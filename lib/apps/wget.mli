(** The wget workload (Sec. 7.1, Fig. 7): download a file over TCP
    from the remote peer while the Ethernet driver may be crashing
    underneath, then verify the digest of what arrived. *)

type result = {
  mutable finished : bool;
  mutable ok : bool;  (** transfer completed without socket errors *)
  mutable bytes : int;  (** payload bytes received *)
  mutable started_at : int;
  mutable finished_at : int;
  mutable fnv : string;  (** streaming FNV digest of the received data *)
  mutable md5 : string;  (** streaming MD5 (only when requested) *)
}

val fresh_result : unit -> result
(** All zeros. *)

val make :
  server:int ->
  port:int ->
  file:string ->
  ?chunk:int ->
  ?with_md5:bool ->
  result ->
  unit ->
  unit
(** Build the application body.  [chunk] is the per-recv size
    (default 32 KB); MD5 costs real wall-clock on big files, so it is
    opt-in and the cheap FNV is always computed. *)
