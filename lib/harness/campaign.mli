(** Campaign runner: execute a list of {!Trial}s across OCaml domains.

    Results come back keyed by trial index, so the output list is in
    the same order as the input list no matter how many workers ran or
    which worker picked up which trial — with hermetic trial bodies
    (see {!Trial}), [run ~jobs:1] and [run ~jobs:n] are byte-identical.

    Exceptions raised by a trial body are caught in the worker and
    re-raised on the calling domain, lowest trial index first, after
    every worker has drained. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the worker-pool size used
    when [?jobs] is omitted. *)

val run : ?jobs:int -> 'a Trial.t list -> 'a list
(** [run trials] executes every trial and returns their results in
    input order.  [jobs] caps the number of domains (clamped to
    [1 .. length trials]; [jobs:1] runs on the calling domain with no
    spawns at all).  Trials are handed out dynamically (an atomic
    next-index counter), so long trials don't serialize behind short
    ones. *)

val run_named : ?jobs:int -> 'a Trial.t list -> (string * 'a) list
(** {!run}, pairing each result with its trial's name. *)
