(** Campaign runner: execute a list of {!Trial}s across OCaml domains.

    Results come back keyed by trial index, so the output list is in
    the same order as the input list no matter how many workers ran or
    which worker picked up which trial — with hermetic trial bodies
    (see {!Trial}), [run ~jobs:1] and [run ~jobs:n] are byte-identical.

    There is one entry point, {!run}, and it is result-typed: every
    trial's outcome is reported in a {!run_result} record, successful
    or not, and {b all} failed trials are listed (as a {!failure}
    list, lowest index first, each with its trial's name) — never just
    the first exception a worker happened to hit.  Callers that want
    the historical "give me the values or raise" behaviour compose
    [values (run ...)]; callers that want to keep partial results (the
    DST explorer treats a crashed run as a finding, not an abort) read
    [.outcomes] directly.

    Long campaigns are observable through [?on_progress]: an optional
    observer invoked on trial completion from the worker domains,
    serialized by an internal mutex.  It is strictly off the stdout
    path (drive a stderr progress line with it — see {!Progress}), so
    enabling it cannot perturb the deterministic output contract. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the worker-pool size used
    when [?jobs] is omitted. *)

type progress = {
  p_index : int;  (** the finished trial's index in the input list *)
  p_name : string;  (** its {!Trial.t} name *)
  p_elapsed_s : float;  (** that trial's wall-clock runtime, seconds *)
  p_failed : bool;  (** the trial body raised *)
  p_completed : int;  (** trials finished so far, this one included *)
  p_total : int;  (** campaign size *)
}
(** One progress event, emitted after each trial completes.  Events
    arrive serialized (never two observer calls at once) but not
    necessarily with monotonic [p_completed]: a worker can be
    preempted between finishing its trial and reporting it. *)

type failure = {
  f_index : int;  (** the failing trial's index in the input list *)
  f_name : string;  (** its {!Trial.t} name *)
  f_error : exn;  (** the exception its body raised *)
}

exception Partial of failure list
(** Raised by {!values} when at least one trial failed: every failure,
    lowest trial index first.  A printer is registered, so an
    uncaught [Partial] still names each failed trial. *)

val failures_summary : failure list -> string
(** Multi-line human-readable rendering ("campaign: N trial(s)
    failed" followed by one indented line per failure) for callers
    that report and exit non-zero. *)

type 'a run_result = {
  outcomes : ('a, exn) result list;
      (** one per trial, input order: [Ok v] for trials that returned,
          [Error e] for trials that raised *)
  failures : failure list;
      (** the [Error] outcomes again, with index and name attached,
          lowest index first; empty iff every trial succeeded *)
}

val run :
  ?jobs:int ->
  ?on_progress:(progress -> unit) ->
  ?progress_offset:int ->
  ?progress_total:int ->
  'a Trial.t list ->
  'a run_result
(** [run trials] executes every trial and reports every outcome.
    [jobs] caps the number of domains (clamped to [1 .. length
    trials]; [jobs:1] runs on the calling domain with no spawns at
    all; [jobs < 1] is [Invalid_argument]).  Trials are handed out
    dynamically (an atomic next-index counter), so long trials don't
    serialize behind short ones.

    Callers that split one logical campaign into several [run] calls
    (e.g. the guided explorer's batches) keep a single coherent
    progress stream with [progress_offset] (added to [p_index] and
    [p_completed]) and [progress_total] (reported as [p_total] when it
    exceeds [length trials + progress_offset]).  Both affect progress
    events only, never outcomes. *)

val values : 'a run_result -> 'a list
(** The successful results, input order — or {!Partial} with the full
    failure list if any trial failed.  [values (run trials)] is the
    historical [Campaign.run]. *)

val run_collect :
  ?jobs:int -> ?on_progress:(progress -> unit) -> 'a Trial.t list -> ('a, exn) result list
[@@ocaml.deprecated "use (Campaign.run ...).outcomes"]
(** @deprecated [(run trials).outcomes]. *)

val run_named :
  ?jobs:int -> ?on_progress:(progress -> unit) -> 'a Trial.t list -> (string * 'a) list
[@@ocaml.deprecated "use Campaign.values (Campaign.run ...) and pair with trial names"]
(** @deprecated [values (run trials)] paired with each trial's name. *)
