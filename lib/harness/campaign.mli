(** Campaign runner: execute a list of {!Trial}s across OCaml domains.

    Results come back keyed by trial index, so the output list is in
    the same order as the input list no matter how many workers ran or
    which worker picked up which trial — with hermetic trial bodies
    (see {!Trial}), [run ~jobs:1] and [run ~jobs:n] are byte-identical.

    Exceptions raised by trial bodies are caught in the workers and
    collected: after every worker has drained, {b all} failed trials
    are reported (as a {!failure} list, lowest index first, each with
    its trial's name) — via [Error] from {!run_result} or the
    {!Partial} exception from {!run}.

    Long campaigns are observable through [?on_progress]: an optional
    observer invoked on trial completion from the worker domains,
    serialized by an internal mutex.  It is strictly off the stdout
    path (drive a stderr progress line with it — see {!Progress}), so
    enabling it cannot perturb the deterministic output contract. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the worker-pool size used
    when [?jobs] is omitted. *)

type progress = {
  p_index : int;  (** the finished trial's index in the input list *)
  p_name : string;  (** its {!Trial.t} name *)
  p_elapsed_s : float;  (** that trial's wall-clock runtime, seconds *)
  p_failed : bool;  (** the trial body raised *)
  p_completed : int;  (** trials finished so far, this one included *)
  p_total : int;  (** campaign size *)
}
(** One progress event, emitted after each trial completes.  Events
    arrive serialized (never two observer calls at once) but not
    necessarily with monotonic [p_completed]: a worker can be
    preempted between finishing its trial and reporting it. *)

type failure = {
  f_index : int;  (** the failing trial's index in the input list *)
  f_name : string;  (** its {!Trial.t} name *)
  f_error : exn;  (** the exception its body raised *)
}

exception Partial of failure list
(** Raised by {!run} when at least one trial failed: every failure,
    lowest trial index first.  A printer is registered, so an
    uncaught [Partial] still names each failed trial. *)

val failures_summary : failure list -> string
(** Multi-line human-readable rendering ("campaign: N trial(s)
    failed" followed by one indented line per failure) for callers
    that report and exit non-zero. *)

val run_collect :
  ?jobs:int -> ?on_progress:(progress -> unit) -> 'a Trial.t list -> ('a, exn) result list
(** [run_collect trials] executes every trial and returns one
    per-trial result in input order — [Ok v] for trials that returned,
    [Error e] for trials that raised.  Unlike {!run_result}, the
    successful results are kept even when some trials failed; the DST
    explorer uses this to treat a crashed exploration run as a finding
    rather than a campaign abort.  Same [jobs] clamping and dynamic
    hand-out as {!run_result}. *)

val run_result :
  ?jobs:int -> ?on_progress:(progress -> unit) -> 'a Trial.t list -> ('a list, failure list) result
(** [run_result trials] executes every trial; [Ok results] in input
    order when all succeeded, [Error failures] (lowest index first)
    when any raised.  [jobs] caps the number of domains (clamped to
    [1 .. length trials]; [jobs:1] runs on the calling domain with no
    spawns at all).  Trials are handed out dynamically (an atomic
    next-index counter), so long trials don't serialize behind short
    ones. *)

val run : ?jobs:int -> ?on_progress:(progress -> unit) -> 'a Trial.t list -> 'a list
(** {!run_result}, raising {!Partial} on any failure. *)

val run_named :
  ?jobs:int -> ?on_progress:(progress -> unit) -> 'a Trial.t list -> (string * 'a) list
(** {!run}, pairing each result with its trial's name. *)
