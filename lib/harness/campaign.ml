let default_jobs () = Domain.recommended_domain_count ()

(* Workers store per-index results; Domain.join establishes the
   happens-before edge that makes the array reads on the caller safe. *)
let run ?jobs trials =
  let arr = Array.of_list trials in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let jobs =
      match jobs with
      | Some j when j < 1 -> invalid_arg "Campaign.run: jobs must be >= 1"
      | Some j -> min j n
      | None -> min (default_jobs ()) n
    in
    let results = Array.make n None in
    let run_one i =
      results.(i) <-
        Some (match arr.(i).Trial.run () with r -> Ok r | exception e -> Error e)
    in
    if jobs <= 1 then
      for i = 0 to n - 1 do
        run_one i
      done
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            run_one i;
            loop ()
          end
        in
        loop ()
      in
      let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join others
    end;
    Array.to_list
      (Array.map
         (function
           | Some (Ok r) -> r
           | Some (Error e) -> raise e
           | None -> assert false (* every index was claimed *))
         results)
  end

let run_named ?jobs trials =
  List.map2 (fun t r -> (t.Trial.name, r)) trials (run ?jobs trials)
