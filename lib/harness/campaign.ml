let default_jobs () = Domain.recommended_domain_count ()

type progress = {
  p_index : int;
  p_name : string;
  p_elapsed_s : float;
  p_failed : bool;
  p_completed : int;
  p_total : int;
}

type failure = { f_index : int; f_name : string; f_error : exn }

exception Partial of failure list

let failures_summary fs =
  String.concat "\n"
    (Printf.sprintf "campaign: %d trial(s) failed" (List.length fs)
    :: List.map
         (fun f -> Printf.sprintf "  trial #%d %s: %s" f.f_index f.f_name (Printexc.to_string f.f_error))
         fs)

let () =
  Printexc.register_printer (function
    | Partial fs -> Some ("Campaign.Partial\n" ^ failures_summary fs)
    | _ -> None)

(* Workers store per-index results; Domain.join establishes the
   happens-before edge that makes the array reads on the caller safe.
   The progress observer runs on worker domains under one mutex, so a
   user callback never needs its own synchronization — and it writes
   to stderr (or a buffer), never stdout, keeping the table/JSONL
   byte-stream identical for every [jobs] value. *)
let collect ?jobs ?on_progress ?(progress_offset = 0) ?progress_total trials =
  let arr = Array.of_list trials in
  let n = Array.length arr in
  let report_total =
    max (n + progress_offset) (Option.value progress_total ~default:0)
  in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Campaign.run: jobs must be >= 1"
    | Some j -> min j (max n 1)
    | None -> min (default_jobs ()) (max n 1)
  in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let completed = Atomic.make 0 in
    let emit =
      match on_progress with
      | None -> fun _ -> ()
      | Some f ->
          let m = Mutex.create () in
          fun p ->
            Mutex.lock m;
            Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f p)
    in
    let run_one i =
      let t0 = Unix.gettimeofday () in
      let r = match arr.(i).Trial.run () with v -> Ok v | exception e -> Error e in
      results.(i) <- Some r;
      let done_ = 1 + Atomic.fetch_and_add completed 1 in
      emit
        {
          p_index = i + progress_offset;
          p_name = arr.(i).Trial.name;
          p_elapsed_s = Unix.gettimeofday () -. t0;
          p_failed = (match r with Error _ -> true | Ok _ -> false);
          p_completed = done_ + progress_offset;
          p_total = report_total;
        }
    in
    if jobs <= 1 then
      for i = 0 to n - 1 do
        run_one i
      done
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            run_one i;
            loop ()
          end
        in
        loop ()
      in
      let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join others
    end;
    List.init n (fun i ->
        match results.(i) with
        | Some r -> r
        | None -> assert false (* every index was claimed *))
  end

type 'a run_result = { outcomes : ('a, exn) result list; failures : failure list }

let run ?jobs ?on_progress ?progress_offset ?progress_total trials =
  let names = Array.of_list (List.map (fun t -> t.Trial.name) trials) in
  let outcomes = collect ?jobs ?on_progress ?progress_offset ?progress_total trials in
  (* Every failed trial is reported, lowest index first — never just
     the first exception a worker happened to hit. *)
  let failures = ref [] in
  List.iteri
    (fun i r ->
      match r with
      | Ok _ -> ()
      | Error e -> failures := { f_index = i; f_name = names.(i); f_error = e } :: !failures)
    outcomes;
  { outcomes; failures = List.rev !failures }

let values r =
  match r.failures with
  | [] -> List.map (function Ok v -> v | Error e -> raise e) r.outcomes
  | fs -> raise (Partial fs)

(* Deprecated entry points, kept as one-line shims over [run]. *)
let run_collect ?jobs ?on_progress trials = (run ?jobs ?on_progress trials).outcomes

let run_named ?jobs ?on_progress trials =
  List.map2 (fun t r -> (t.Trial.name, r)) trials (values (run ?jobs ?on_progress trials))
