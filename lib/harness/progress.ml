(* Stderr progress rendering for campaign observers.

   Two styles share one formatter: a live single line (carriage
   return + erase, for interactive ttys) and an append-only line per
   trial (for logs/CI).  Both are driven entirely by the
   Campaign.progress events, which arrive serialized under the
   campaign's observer mutex — the reporter keeps plain mutable state
   without further locking. *)

let fmt_eta s =
  if s < 0. then "?"
  else if s < 60. then Printf.sprintf "%.0fs" s
  else if s < 3600. then Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)

let reporter ?(oc = stderr) ?live ~label () =
  let live = match live with Some l -> l | None -> Unix.isatty Unix.stderr in
  let started_at = ref None in
  let failed = ref 0 in
  fun (p : Campaign.progress) ->
    let now = Unix.gettimeofday () in
    let t0 =
      match !started_at with
      | Some t -> t
      | None ->
          (* First event: the campaign started roughly when the first
             finishing trial began. *)
          let t = now -. p.Campaign.p_elapsed_s in
          started_at := Some t;
          t
    in
    if p.Campaign.p_failed then incr failed;
    let elapsed = now -. t0 in
    let eta =
      if p.Campaign.p_completed = 0 then -1.
      else
        elapsed /. float_of_int p.Campaign.p_completed
        *. float_of_int (p.Campaign.p_total - p.Campaign.p_completed)
    in
    let line =
      Printf.sprintf "[%s] %d/%d trials (%.0f%%)%s  last %s (%.1fs)  elapsed %s  eta %s" label
        p.Campaign.p_completed p.Campaign.p_total
        (100. *. float_of_int p.Campaign.p_completed /. float_of_int p.Campaign.p_total)
        (if !failed > 0 then Printf.sprintf "  %d FAILED" !failed else "")
        p.Campaign.p_name p.Campaign.p_elapsed_s (fmt_eta elapsed) (fmt_eta eta)
    in
    if live then begin
      (* \027[K erases the remnant of a longer previous line. *)
      Printf.fprintf oc "\r\027[K%s%!" line;
      if p.Campaign.p_completed >= p.Campaign.p_total then Printf.fprintf oc "\n%!"
    end
    else Printf.fprintf oc "%s\n%!" line

let make ?oc ~when_ ~label () =
  match when_ with
  | `Never -> None
  | `Always -> Some (reporter ?oc ~label ())
  | `Auto -> if Unix.isatty Unix.stderr then Some (reporter ?oc ~label ()) else None
