(** Stderr progress lines for {!Campaign.run}'s [?on_progress].

    The reporter renders completed/total, percentage, the last
    finished trial with its wall clock, a failure count and an ETA
    extrapolated from the campaign's throughput so far.  It writes to
    stderr (never stdout): campaign tables and [--metrics-out] JSONL
    stay byte-identical whether progress reporting is on or off, and
    for every [--jobs] value. *)

val reporter : ?oc:out_channel -> ?live:bool -> label:string -> unit -> Campaign.progress -> unit
(** A fresh observer (one per campaign — it carries the campaign's
    start time and failure count).  [live] (default: whether stderr
    is a tty) chooses between a single in-place line (carriage
    return + erase-line, newline-terminated when the campaign
    completes) and one appended line per trial.  [oc] defaults to
    [stderr]. *)

val make :
  ?oc:out_channel ->
  when_:[ `Auto | `Always | `Never ] ->
  label:string ->
  unit ->
  (Campaign.progress -> unit) option
(** CLI-flag plumbing: [`Never] disables reporting, [`Always] forces
    it, [`Auto] enables it only when stderr is a tty (so redirected
    or CI runs stay quiet). *)
