(** Trial specs: one full-system run as a first-class value.

    Every evaluation in the paper is a sweep of independent runs — a
    wget transfer per kill interval (Fig. 7), a dd run per interval
    (Fig. 8), a batch of fault injections (Sec. 7.2).  A trial
    packages one such run as a pure spec: a stable [name], the [seed]
    that makes the run hermetic (every [System.boot] inside derives
    all of its randomness from it), and a thunk that boots, runs and
    tears down an entire simulated machine, returning the trial's
    result value.

    The hermeticity contract: [run] must not read or write any state
    shared with other trials — no globals, no printing, no sinks.
    Observability output is part of the returned value (collect JSONL
    lines locally and return them) so that a {!Campaign} can replay
    them in deterministic trial order regardless of which domain
    executed what.  Under that contract, executing trials in parallel
    is byte-identical to executing them sequentially. *)

type 'a t = {
  name : string;  (** stable label, e.g. ["fig7/kill-4s"] *)
  seed : int;  (** the trial's master seed (see {!Resilix_sim.Rng.derive}) *)
  run : unit -> 'a;  (** boot, run, reduce to a result; hermetic *)
}

val make : name:string -> seed:int -> (unit -> 'a) -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t
(** Post-compose the trial body; keeps name and seed. *)
