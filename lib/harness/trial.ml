type 'a t = { name : string; seed : int; run : unit -> 'a }

let make ~name ~seed run = { name; seed; run }
let map f t = { t with run = (fun () -> f (t.run ())) }
