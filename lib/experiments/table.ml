let print ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun acc row -> match List.nth_opt row i with Some s -> max acc (String.length s) | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun i w ->
           let s = match List.nth_opt row i with Some s -> s | None -> "" in
           s ^ String.make (max 0 (w - String.length s)) ' ')
         widths)
  in
  print_endline (render header);
  print_endline (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun r -> print_endline (render r)) rows

let section title =
  print_newline ();
  print_endline (String.make (String.length title + 4) '=');
  Printf.printf "= %s =\n" title;
  print_endline (String.make (String.length title + 4) '=')

let note fmt = Printf.printf fmt
