module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Kernel = Resilix_kernel.Kernel
module Sysif = Resilix_kernel.Sysif
module Api = Resilix_kernel.Sysif.Api
module Trace = Resilix_sim.Trace
module Rng = Resilix_sim.Rng
module Trial = Resilix_harness.Trial
module Campaign = Resilix_harness.Campaign
module Privilege = Resilix_proto.Privilege
module Spec = Resilix_proto.Spec
module Policy = Resilix_core.Policy
module Reincarnation = Resilix_core.Reincarnation
module Hwmap = Resilix_system.Hwmap
module Status = Resilix_proto.Status
module Message = Resilix_proto.Message
module Fault = Resilix_vm.Fault
module Sockets = Resilix_apps.Sockets
module Dp8390 = Resilix_drivers.Netdriver_dp8390

(* ------------------------------------------------------------------ *)
(* Heartbeat period vs. detection latency                              *)
(* ------------------------------------------------------------------ *)

type heartbeat_row = { period_us : int; detection_us : int }

let svc_priv = Privilege.driver ~ipc_to:[ "rs"; "ds" ] ~io_ports:[] ~irqs:[]

let heartbeat_trial ~seed ~period =
  Trial.make
    ~name:(Printf.sprintf "ablation/heartbeat-%dus" period)
    ~seed
    (fun () ->
      let t = System.boot ~opts:{ System.default_opts with System.seed; disk_mb = 8 } () in
      Kernel.register_program t.System.kernel "stuck" (fun () ->
          let rec spin () =
            Api.yield ~cost:50 ();
            spin ()
          in
          spin ());
      let spec =
        Spec.make ~name:"svc.stuck" ~program:"stuck" ~privileges:svc_priv
          ~heartbeat_period:period ~max_heartbeat_misses:4 ~mem_kb:64 ()
      in
      let started_at = ref 0 in
      System.start_services t [ spec ];
      started_at := Engine.now t.System.engine;
      ignore
        (System.run_until t ~timeout:120_000_000 (fun () ->
             Reincarnation.events t.System.rs <> []));
      let detection =
        match Reincarnation.events t.System.rs with
        | e :: _ -> e.Reincarnation.detected_at - !started_at
        | [] -> -1
      in
      { period_us = period; detection_us = detection })

let heartbeat_trials ?(periods = [ 50_000; 100_000; 250_000; 500_000; 1_000_000 ]) ?(seed = 42) ()
    =
  List.mapi (fun i period -> heartbeat_trial ~seed:(Rng.derive ~seed ~index:i) ~period) periods

let heartbeat_sweep ?jobs ?on_progress ?periods ?seed () =
  Campaign.(values (run ?jobs ?on_progress (heartbeat_trials ?periods ?seed ())))

let print_heartbeat rows =
  Table.section "Ablation — heartbeat period vs. stuck-driver detection latency";
  Table.note
    "A wedged (infinite-loop) driver is only caught by heartbeats (defect class\n\
     4); detection takes ~misses x period, so shorter periods buy faster recovery\n\
     at the cost of more notification traffic.\n\n";
  Table.print
    ~header:[ "heartbeat period (ms)"; "detection latency (ms)" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.0f" (float_of_int r.period_us /. 1e3);
           (if r.detection_us < 0 then "not detected"
            else Printf.sprintf "%.0f" (float_of_int r.detection_us /. 1e3));
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Recovery policies under a crash storm                               *)
(* ------------------------------------------------------------------ *)

type policy_row = { policy : string; restarts : int; state : string }

let policy_trial ~window_us ~seed (label, policy_key, policies) =
  Trial.make ~name:("ablation/policy-" ^ policy_key) ~seed (fun () ->
      let opts =
        {
          System.default_opts with
          System.seed;
          disk_mb = 8;
          policies = System.default_opts.System.policies @ policies;
        }
      in
      let t = System.boot ~opts () in
      Kernel.register_program t.System.kernel "panicky" (fun () ->
          Api.sleep 10_000;
          Api.panic "crash storm");
      let spec =
        Spec.make ~name:"svc.storm" ~program:"panicky" ~privileges:svc_priv ~heartbeat_period:0
          ~policy:policy_key ~mem_kb:64 ()
      in
      System.start_services t [ spec ];
      System.run t ~until:(Engine.now t.System.engine + window_us);
      let events = Reincarnation.events t.System.rs in
      {
        policy = label;
        restarts =
          List.length (List.filter (fun e -> e.Reincarnation.recovered_at <> None) events);
        state =
          (match Reincarnation.service_state t.System.rs "svc.storm" with
          | `Up -> "up (between crashes)"
          | `Restarting -> "recovering (mid-backoff)"
          | `Down -> "taken down (gave up)"
          | `Degraded -> "degraded (breaker open)"
          | `Unknown -> "unknown");
      })

let policy_trials ?(window_us = 25_000_000) ?(seed = 42) () =
  List.mapi
    (fun i scenario -> policy_trial ~window_us ~seed:(Rng.derive ~seed ~index:i) scenario)
    [
      ("direct (no backoff)", "direct", []);
      ("generic (exponential backoff)", "generic", []);
      ("guarded (give up after 3)", "guard3", [ ("guard3", Policy.guarded ~max_failures:3 ()) ]);
    ]

let policy_comparison ?jobs ?on_progress ?window_us ?seed () =
  Campaign.(values (run ?jobs ?on_progress (policy_trials ?window_us ?seed ())))

let print_policy rows =
  Table.section "Ablation — recovery policies under a crash-storming service (25 s window)";
  Table.note
    "Direct restart burns a restart every crash; Fig. 2's exponential backoff\n\
     bounds the churn; a guarded policy stops recovering a hopeless component.\n\n";
  Table.print
    ~header:[ "policy"; "restarts in window"; "state at end" ]
    (List.map (fun r -> [ r.policy; string_of_int r.restarts; r.state ]) rows)

(* ------------------------------------------------------------------ *)
(* Policy availability under the Sec. 7.2 fault corpus                 *)
(* ------------------------------------------------------------------ *)

type availability_row = {
  a_policy : string;
  a_injected : int;
  a_crashes : int;
  a_restarts : int;
  a_downtime_us : int;
  a_horizon_us : int;
  a_availability : float;  (** percent of the horizon the driver was serving *)
  a_by_class : (string * int * int) list;
      (** defect class name, failures, downtime contributed (us) *)
  a_end_state : string;
}

let service_state_label = function
  | `Up -> "up"
  | `Restarting -> "restarting"
  | `Down -> "down (gave up)"
  | `Degraded -> "degraded (breaker open)"
  | `Unknown -> "unknown"

(* One machine per policy: the DP8390 driver absorbs the same random
   binary-fault corpus that the Sec. 7.2 campaign uses, under receive-
   side UDP traffic, and every detected failure's downtime (detection
   to recovery, or to the end of the run for failures never recovered)
   is charged against the run's availability.  The breaker's parked
   episodes count as downtime too: graceful degradation trades uptime
   for bounded churn and clean errors, and the table shows that trade
   honestly. *)
let availability_trial ~faults ~inject_period ~seed (label, policy_key, extra_policies) =
  Trial.make ~name:("ablation/availability-" ^ policy_key) ~seed (fun () ->
      let opts =
        {
          System.default_opts with
          System.seed;
          disk_mb = 8;
          inet_driver = "eth.dp8390";
          policies = System.default_opts.System.policies @ extra_policies;
        }
      in
      let t = System.boot ~opts () in
      System.start_services t
        [ System.spec_dp8390 ~policy:policy_key ~heartbeat_period:200_000 () ];
      let received = ref 0 in
      ignore
        (System.spawn_app t ~name:"udp-sink" (fun () ->
             match Sockets.socket Message.Udp with
             | Error _ -> ()
             | Ok sock -> (
                 match Sockets.listen sock ~port:9 with
                 | Error _ -> ()
                 | Ok () ->
                     let rec pump () =
                       (match Sockets.recvfrom sock ~len:2048 with
                       | Ok _ -> incr received
                       | Error _ -> Api.sleep 50_000);
                       pump ()
                     in
                     pump ())));
      let _stop =
        Resilix_net.Peer.start_udp_stream t.System.dp_peer ~dst_ip:Hwmap.local_ip
          ~dst_mac:Hwmap.dp8390_mac ~dst_port:9 ~src_port:7777 ~payload_len:700
          ~interval:10_000
      in
      System.run t ~until:(Engine.now t.System.engine + 1_000_000);
      let started_at = Engine.now t.System.engine in
      let image = Dp8390.image_info ~base:Hwmap.dp8390_base in
      let injected = ref 0 in
      let finished = ref false in
      (* The Sec. 7.2 watchdog: silent-but-disabling faults are cleared
         by a user-requested restart (defect class 3). *)
      let last_rx = ref 0 and last_progress_at = ref 0 in
      let rec tick () =
        if !injected >= faults then finished := true
        else begin
          let now = Engine.now t.System.engine in
          if !received > !last_rx then begin
            last_rx := !received;
            last_progress_at := now
          end
          else if
            now - !last_progress_at > 1_500_000
            && Reincarnation.service_state t.System.rs "eth.dp8390" = `Up
          then begin
            last_progress_at := now;
            match Kernel.find_by_name t.System.kernel "eth.dp8390" with
            | Some _ -> ignore (System.kill_service_once t ~target:"eth.dp8390")
            | None -> ()
          end;
          (match Kernel.find_by_name t.System.kernel "eth.dp8390" with
          | Some _ ->
              let ft = Fault.random_type t.System.rng in
              (match System.inject_fault t ~target:"eth.dp8390" ~image ft with
              | Some _ -> incr injected
              | None -> ())
          | None -> ());
          ignore (Engine.schedule t.System.engine ~after:inject_period tick)
        end
      in
      tick ();
      ignore (System.run_until t ~timeout:(faults * inject_period * 8) (fun () -> !finished));
      System.run t ~until:(Engine.now t.System.engine + 5_000_000);
      let end_time = Engine.now t.System.engine in
      let horizon = end_time - started_at in
      let events = Reincarnation.events t.System.rs in
      (* Downtime is the measure of the union of [detection, recovery)
         intervals: overlapping events (several defects detected while
         the component is already down, e.g. watchdog kills during a
         long backoff) must not be double-charged. *)
      let interval_of (e : Reincarnation.recovery_event) =
        let until = match e.Reincarnation.recovered_at with Some r -> r | None -> end_time in
        (e.Reincarnation.detected_at, max e.Reincarnation.detected_at until)
      in
      let union_us evs =
        let sorted = List.sort compare (List.map interval_of evs) in
        let total, last_hi =
          List.fold_left
            (fun (total, hi) (lo, up) ->
              let lo = max lo hi in
              (total + max 0 (up - lo), max hi up))
            (0, min_int) sorted
        in
        ignore last_hi;
        total
      in
      let downtime = min (union_us events) horizon in
      let classes =
        [ Status.D_exit; Status.D_exception; Status.D_killed_by_user; Status.D_heartbeat;
          Status.D_complaint; Status.D_update ]
      in
      let by_class =
        List.filter_map
          (fun d ->
            let of_class = List.filter (fun e -> e.Reincarnation.defect = d) events in
            if of_class = [] then None
            else Some (Status.defect_name d, List.length of_class, min (union_us of_class) horizon))
          classes
      in
      {
        a_policy = label;
        a_injected = !injected;
        a_crashes = List.length events;
        a_restarts =
          List.length (List.filter (fun e -> e.Reincarnation.recovered_at <> None) events);
        a_downtime_us = downtime;
        a_horizon_us = horizon;
        a_availability =
          (if horizon <= 0 then 0.
           else 100. *. float_of_int (horizon - downtime) /. float_of_int horizon);
        a_by_class = by_class;
        a_end_state = service_state_label (Reincarnation.service_state t.System.rs "eth.dp8390");
      })

let availability_trials ?(faults = 120) ?(inject_period = 20_000) ?(seed = 42) () =
  List.mapi
    (fun i scenario ->
      availability_trial ~faults ~inject_period ~seed:(Rng.derive ~seed ~index:i) scenario)
    [
      ("direct (restart only)", "direct", []);
      ("generic (Fig. 2 backoff)", "generic", []);
      ("guarded (give up after 3)", "guard3", [ ("guard3", Policy.guarded ~max_failures:3 ()) ]);
      ("breaker (circuit breaker)", "breaker", []);
    ]

let availability_study ?jobs ?on_progress ?faults ?inject_period ?seed () =
  Campaign.(values (run ?jobs ?on_progress (availability_trials ?faults ?inject_period ?seed ())))

let print_availability rows =
  Table.section "Ablation — policy availability under the Sec. 7.2 fault corpus";
  Table.note
    "Each policy absorbs the same random binary-fault corpus on the DP8390\n\
     driver.  Downtime is summed from defect detection to recovery (or to the\n\
     end of the run); the breaker's parked episodes count as downtime, buying\n\
     bounded restart churn and clean application errors instead of uptime.\n\n";
  Table.print
    ~header:
      [ "policy"; "faults"; "failures"; "restarts"; "downtime (ms)"; "availability"; "end state" ]
    (List.map
       (fun r ->
         [
           r.a_policy;
           string_of_int r.a_injected;
           string_of_int r.a_crashes;
           string_of_int r.a_restarts;
           Printf.sprintf "%.0f" (float_of_int r.a_downtime_us /. 1e3);
           Printf.sprintf "%.2f%%" r.a_availability;
           r.a_end_state;
         ])
       rows);
  Table.note "\nDowntime by defect class:\n";
  Table.print
    ~header:[ "policy"; "defect class"; "failures"; "downtime (ms)" ]
    (List.concat_map
       (fun r ->
         List.map
           (fun (cls, n, dt) ->
             [ r.a_policy; cls; string_of_int n; Printf.sprintf "%.0f" (float_of_int dt /. 1e3) ])
           r.a_by_class)
       rows)

(* ------------------------------------------------------------------ *)
(* IPC primitive costs (virtual time)                                  *)
(* ------------------------------------------------------------------ *)

type ipc_row = { operation : string; cost_us : float }

let all_priv =
  {
    Privilege.none with
    Privilege.ipc_to = Privilege.All;
    kcalls = Privilege.All;
  }

(* Rendezvous round trip (sendrec + reply), like a device request,
   plus non-blocking notification. *)
let rendezvous_trial ~rounds =
  Trial.make ~name:"ablation/ipc-rendezvous" ~seed:7 (fun () ->
      let engine = Engine.create () in
      let trace = Trace.create () in
      let rng = Rng.create ~seed:7 in
      let kernel = Kernel.create ~engine ~trace ~rng () in
      let results = ref [] in
      let record name duration count =
        results := (name, float_of_int duration /. float_of_int count) :: !results
      in
      Kernel.register_program kernel "echo" (fun () ->
          let rec loop () =
            (match Api.receive Sysif.Any with
            | Ok (Sysif.Rx_msg { src; _ }) ->
                ignore (Api.send src Resilix_proto.Message.Ok_reply)
            | _ -> ());
            loop ()
          in
          loop ());
      let echo_ep =
        match
          Kernel.spawn_dynamic kernel ~name:"echo" ~program:"echo" ~args:[] ~priv:all_priv
            ~mem_kb:64
        with
        | Ok e -> e
        | Error _ -> failwith "spawn echo"
      in
      Kernel.register_program kernel "bench" (fun () ->
          let t0 = Api.now () in
          for _ = 1 to rounds do
            ignore (Api.sendrec echo_ep Resilix_proto.Message.Ok_reply)
          done;
          record "sendrec round trip" (Api.now () - t0) rounds;
          let t0 = Api.now () in
          for _ = 1 to rounds do
            ignore (Api.notify echo_ep Resilix_proto.Message.N_heartbeat_request)
          done;
          record "notify (non-blocking)" (Api.now () - t0) rounds;
          Api.exit (Resilix_proto.Status.Exited 0));
      (match
         Kernel.spawn_dynamic kernel ~name:"bench" ~program:"bench" ~args:[] ~priv:all_priv
           ~mem_kb:64
       with
      | Ok _ -> ()
      | Error _ -> failwith "spawn bench");
      Engine.run engine ~until:600_000_000;
      List.rev_map (fun (operation, cost_us) -> { operation; cost_us }) !results)

(* Safecopy costs measured separately: one process grants, the other
   copies. *)
let safecopy_trial ~rounds =
  Trial.make ~name:"ablation/ipc-safecopy" ~seed:8 (fun () ->
      let sizes = [ 64; 1024; 16384; 65536 ] in
      let engine = Engine.create () in
      let kernel =
        Kernel.create ~engine ~trace:(Trace.create ()) ~rng:(Rng.create ~seed:8) ()
      in
      let results = ref [] in
      let record name duration count =
        results := (name, float_of_int duration /. float_of_int count) :: !results
      in
      Kernel.register_program kernel "owner" (fun () ->
          (match Api.receive Sysif.Any with
          | Ok (Sysif.Rx_msg { src; _ }) -> begin
              match Api.grant_create ~for_:src ~base:0 ~len:65536 ~access:Sysif.Read_write with
              | Ok g -> ignore (Api.send src (Resilix_proto.Message.Dev_reply { result = Ok g }))
              | Error _ -> ()
            end
          | _ -> ());
          Api.sleep 1_000_000_000);
      let owner_ep =
        match
          Kernel.spawn_dynamic kernel ~name:"owner" ~program:"owner" ~args:[] ~priv:all_priv
            ~mem_kb:128
        with
        | Ok e -> e
        | Error _ -> failwith "spawn owner"
      in
      Kernel.register_program kernel "copier" (fun () ->
          match Api.sendrec owner_ep Resilix_proto.Message.Ok_reply with
          | Ok (Sysif.Rx_msg { body = Resilix_proto.Message.Dev_reply { result = Ok g }; _ }) ->
              List.iter
                (fun size ->
                  let t0 = Api.now () in
                  for _ = 1 to rounds do
                    ignore
                      (Api.safecopy_from ~owner:owner_ep ~grant:g ~grant_off:0 ~local_addr:0
                         ~len:size)
                  done;
                  record (Printf.sprintf "safecopy %d B" size) (Api.now () - t0) rounds)
                sizes
          | _ -> ());
      (match
         Kernel.spawn_dynamic kernel ~name:"copier" ~program:"copier" ~args:[] ~priv:all_priv
           ~mem_kb:128
       with
      | Ok _ -> ()
      | Error _ -> failwith "spawn copier");
      Engine.run engine ~until:600_000_000;
      List.rev_map (fun (operation, cost_us) -> { operation; cost_us }) !results)

let ipc_trials ?(rounds = 1000) () = [ rendezvous_trial ~rounds; safecopy_trial ~rounds ]

let ipc_microbench ?jobs ?on_progress ?rounds () =
  List.concat (Campaign.(values (run ?jobs ?on_progress (ipc_trials ?rounds ()))))

let print_ipc rows =
  Table.section "Ablation — cost of the primitives recovery is built on (virtual time)";
  Table.note
    "Sec. 4: the protection overhead is \"a few microseconds to perform the\n\
     kernel call, which is generally amortized over the costs of the I/O\".\n\n";
  Table.print
    ~header:[ "operation"; "cost (us/op)" ]
    (List.map (fun r -> [ r.operation; Printf.sprintf "%.2f" r.cost_us ]) rows)
