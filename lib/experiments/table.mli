(** Tiny fixed-width table printer for the experiment harness. *)

val print : header:string list -> string list list -> unit
(** Render rows under a header, column widths auto-sized. *)

val section : string -> unit
(** Print a section banner. *)

val note : ('a, out_channel, unit) format -> 'a
(** Print a free-form annotation line. *)
