(** Fig. 9 — source-code statistics and reengineering effort.

    The paper counted executable LoC per component and the subset
    specific to recovery, showing the changes are "both very limited
    and local": concentrated in the reincarnation server (30%), small
    in the servers, ~5 lines per driver (in the shared driver
    library), zero in the process manager and microkernel.

    This harness reruns that accounting over {e this} repository with
    {!Resilix_sclc}: recovery-specific code is delimited by in-source
    markers, so the table is regenerated from the actual sources. *)

type row = {
  component : string;
  files : string list;  (** repo-relative source files *)
  total : int;  (** executable LoC *)
  recovery : int;  (** recovery-specific LoC *)
  paper_total : int option;  (** the paper's corresponding numbers *)
  paper_recovery : int option;
}

val trials : ?root:string -> unit -> row Resilix_harness.Trial.t list
(** One trial per component (pure file scanning). *)

val run :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?root:string ->
  unit ->
  row list
(** Count.  [root] defaults to the repository root found by walking
    up from the working directory. *)

val print : row list -> unit
(** Print measured-vs-paper, with percentage columns. *)
