module Sclc = Resilix_sclc.Sclc

type row = {
  component : string;
  files : string list;
  total : int;
  recovery : int;
  paper_total : int option;
  paper_recovery : int option;
}

(* Our components mapped onto the paper's Fig. 9 rows. *)
let components =
  [
    ( "Reinc. server",
      [ "lib/core/reincarnation.ml"; "lib/core/policy.ml"; "lib/core/service.ml" ],
      Some 2002, Some 593 );
    ("Data store", [ "lib/datastore/data_store.ml" ], Some 384, Some 59);
    ("VFS server", [ "lib/fs/vfs.ml" ], Some 5464, Some 274);
    ( "File server (MFS)",
      [ "lib/fs/mfs.ml"; "lib/fs/cache.ml"; "lib/fs/layout.ml"; "lib/fs/mkfs.ml" ],
      Some 3356, Some 22 );
    ("SATA driver", [ "lib/drivers/blockdriver_disk.ml" ], Some 2443, Some 5);
    ("RAM disk", [ "lib/drivers/blockdriver_ramdisk.ml" ], Some 454, Some 0);
    ( "Network server (INET)",
      [ "lib/net/inet.ml"; "lib/net/tcp.ml"; "lib/net/wire.ml"; "lib/net/timerset.ml" ],
      Some 20019, Some 124 );
    ("RTL8139 driver", [ "lib/drivers/netdriver_rtl8139.ml" ], Some 2398, Some 5);
    ("DP8390 driver", [ "lib/drivers/netdriver_dp8390.ml" ], Some 2769, Some 5);
    ( "Shared driver library",
      [ "lib/drivers/driver_lib.ml"; "lib/drivers/image.ml" ],
      None, None );
    ("Process manager", [ "lib/pm/proc_manager.ml" ], Some 2954, Some 0);
    ( "Microkernel",
      [ "lib/kernel/kernel.ml"; "lib/kernel/memory.ml"; "lib/kernel/sysif.ml" ],
      Some 4832, Some 0 );
  ]

(* Components count independently, so the accounting is a small
   campaign of per-component trials (the counting is pure file
   scanning; seeds are nominal). *)
let trials ?root () =
  let root =
    match root with
    | Some r -> r
    | None -> ( match Sclc.find_repo_root () with Some r -> r | None -> ".")
  in
  List.map
    (fun (component, files, paper_total, paper_recovery) ->
      Resilix_harness.Trial.make ~name:("fig9/" ^ component) ~seed:0 (fun () ->
          let paths = List.map (Filename.concat root) files in
          let c = Sclc.count_files paths in
          {
            component;
            files;
            total = c.Sclc.code;
            recovery = c.Sclc.recovery;
            paper_total;
            paper_recovery;
          }))
    components

let run ?jobs ?on_progress ?root () =
  Resilix_harness.Campaign.(values (run ?jobs ?on_progress (trials ?root ())))

let print rows =
  Table.section "Fig. 9 — executable LoC and recovery-specific LoC per component";
  Table.note
    "Measured over this repository's sources (marker-delimited recovery code),\n\
     next to the paper's MINIX 3 numbers.  Shares are recovery/total.\n\n";
  let pct r t = if t = 0 then "-" else Printf.sprintf "%.0f%%" (100. *. float_of_int r /. float_of_int t) in
  let fmt_opt = function Some v -> string_of_int v | None -> "-" in
  Table.print
    ~header:[ "component"; "LoC"; "recovery"; "share"; "paper LoC"; "paper rec."; "paper share" ]
    (List.map
       (fun r ->
         [
           r.component;
           string_of_int r.total;
           string_of_int r.recovery;
           pct r.recovery r.total;
           fmt_opt r.paper_total;
           fmt_opt r.paper_recovery;
           (match (r.paper_total, r.paper_recovery) with
           | Some t, Some rec_ -> pct rec_ t
           | _ -> "-");
         ])
       rows);
  let total = List.fold_left (fun a r -> a + r.total) 0 rows in
  let recovery = List.fold_left (fun a r -> a + r.recovery) 0 rows in
  Table.note "\nTotal: %d LoC, %d recovery-specific (paper: 39,011 / 1,072)\n" total recovery
