module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Engine = Resilix_sim.Engine
module Kernel = Resilix_kernel.Kernel
module Status = Resilix_proto.Status
module Message = Resilix_proto.Message
module Reincarnation = Resilix_core.Reincarnation
module Fault = Resilix_vm.Fault
module Nic8390 = Resilix_hw.Nic8390
module Sockets = Resilix_apps.Sockets
module Dp8390 = Resilix_drivers.Netdriver_dp8390
module Rng = Resilix_sim.Rng
module Metrics = Resilix_obs.Metrics
module Span = Resilix_obs.Span
module Export = Resilix_obs.Export
module Trial = Resilix_harness.Trial
module Campaign = Resilix_harness.Campaign

type outcome = {
  injected : int;
  crashes : int;
  panics : int;
  exceptions : int;
  heartbeats : int;
  other : int;
  recovered : int;
  user_resets : int;
  bios_resets : int;
  by_fault_type : (string * int) list;
}

type shard_result = {
  outcome : outcome;
  snapshot : Metrics.snapshot;
  spans : Span.t;
}

(* One shard: a fresh machine absorbing [faults] injections.  This is
   the paper's campaign at reduced length; the full 12,500-fault run
   is the merge of many such hermetic shards, each on its own derived
   seed, so the campaign parallelizes without sharing any state.
   [shard] tags the shard's metric snapshot so campaign-level gauge
   merges resolve deterministically by shard index. *)
let run_shard ~shard ~faults ~seed ~inject_period ~wedge_prob ~has_master_reset () =
  let opts =
    {
      System.default_opts with
      System.seed;
      disk_mb = 8;
      inet_driver = "eth.dp8390";
      nic_wedge_prob = wedge_prob;
      nic_has_master_reset = has_master_reset;
    }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_dp8390 ~policy:"direct" ~heartbeat_period:200_000 () ];
  (* Receive-side traffic: a UDP sink fed by the peer; the driver's
     transmit path is exercised by the sink's periodic replies. *)
  let received = ref 0 in
  ignore
    (System.spawn_app t ~name:"udp-sink" (fun () ->
         let module Api = Resilix_kernel.Sysif.Api in
         match Sockets.socket Message.Udp with
         | Error _ -> ()
         | Ok sock -> (
             match Sockets.listen sock ~port:9 with
             | Error _ -> ()
             | Ok () ->
                 let rec pump n =
                   match Sockets.recvfrom sock ~len:2048 with
                   | Ok (_, src_ip, src_port) ->
                       incr received;
                       (* Periodically talk back so TX code also runs. *)
                       if n mod 8 = 0 then
                         ignore
                           (Sockets.sendto sock ~addr:src_ip ~port:src_port
                              (Bytes.of_string "ack"));
                       pump (n + 1)
                   | Error _ ->
                       Api.sleep 50_000;
                       pump n
                 in
                 pump 0)));
  let _stop =
    Resilix_net.Peer.start_udp_stream t.System.dp_peer ~dst_ip:Hwmap.local_ip
      ~dst_mac:Hwmap.dp8390_mac ~dst_port:9 ~src_port:7777 ~payload_len:700 ~interval:10_000
  in
  System.run t ~until:(Engine.now t.System.engine + 1_000_000);
  let image = Dp8390.image_info ~base:Hwmap.dp8390_base in
  let injected = ref 0 in
  let bios_resets = ref 0 in
  let user_resets = ref 0 in
  let type_counts = Hashtbl.create 7 in
  let finished = ref false in
  (* Watchdog: some faults are silent-but-disabling (e.g. the eliding
     of an rx-enable write) — the driver looks healthy but traffic
     stops and no further driver code executes.  As in the paper's
    defect class 3, the "user" notices the weird behaviour and asks
     the reincarnation server for a restart, which reloads a clean
     binary and lets the campaign continue. *)
  let last_rx = ref 0 in
  let last_progress_at = ref 0 in
  let stall_timeout = 1_500_000 in
  let rec tick () =
    if !injected >= faults then finished := true
    else begin
      let now = Engine.now t.System.engine in
      if !received > !last_rx then begin
        last_rx := !received;
        last_progress_at := now
      end
      else if now - !last_progress_at > stall_timeout then begin
        last_progress_at := now;
        match Kernel.find_by_name t.System.kernel "eth.dp8390" with
        | Some _ ->
            incr user_resets;
            ignore (System.kill_service_once t ~target:"eth.dp8390")
        | None -> ()
      end;
      (* A wedged card defeats driver-level recovery: the restarted
         driver keeps panicking on a dead device.  Perform the
         "low-level BIOS reset" the paper needed in those cases. *)
      if Nic8390.wedged t.System.nic_dp then begin
        incr bios_resets;
        Nic8390.bios_reset t.System.nic_dp
      end;
      (* Only inject into a live, settled driver (like injecting into
         the running driver on a live system). *)
      (match Kernel.find_by_name t.System.kernel "eth.dp8390" with
      | Some _ ->
          let ft = Fault.random_type t.System.rng in
          (match System.inject_fault t ~target:"eth.dp8390" ~image ft with
          | Some _ ->
              incr injected;
              Hashtbl.replace type_counts (Fault.to_string ft)
                (1 + Option.value ~default:0 (Hashtbl.find_opt type_counts (Fault.to_string ft)))
          | None -> ())
      | None -> ());
      ignore (Engine.schedule t.System.engine ~after:inject_period tick)
    end
  in
  tick ();
  ignore (System.run_until t ~timeout:(faults * inject_period * 4) (fun () -> !finished));
  (* Let the final crash (if any) recover. *)
  System.run t ~until:(Engine.now t.System.engine + 5_000_000);
  if Nic8390.wedged t.System.nic_dp then begin
    incr bios_resets;
    Nic8390.bios_reset t.System.nic_dp;
    System.run t ~until:(Engine.now t.System.engine + 5_000_000)
  end;
  let all_events = Reincarnation.events t.System.rs in
  (* User-requested restarts (the watchdog) are experimenter resets,
     not detected crashes. *)
  let events =
    List.filter (fun e -> e.Reincarnation.defect <> Status.D_killed_by_user) all_events
  in
  let count p = List.length (List.filter p events) in
  (* Per-shard gauges: merged into min/max/last distributions across
     shards in the campaign-level report. *)
  Metrics.set_named t.System.metrics "sec72.shard.user_resets" !user_resets;
  Metrics.set_named t.System.metrics "sec72.shard.bios_resets" !bios_resets;
  Metrics.set_named t.System.metrics "sec72.shard.rx_datagrams" !received;
  {
    outcome =
      {
        injected = !injected;
        crashes = List.length events;
        panics = count (fun e -> e.Reincarnation.defect = Status.D_exit);
        exceptions = count (fun e -> e.Reincarnation.defect = Status.D_exception);
        heartbeats = count (fun e -> e.Reincarnation.defect = Status.D_heartbeat);
        other =
          count (fun e ->
              match e.Reincarnation.defect with
              | Status.D_exit | Status.D_exception | Status.D_heartbeat -> false
              | _ -> true);
        recovered = count (fun e -> e.Reincarnation.recovered_at <> None);
        user_resets = !user_resets;
        bios_resets = !bios_resets;
        by_fault_type =
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) type_counts []);
      };
    snapshot = Metrics.snapshot ~at:(Engine.now t.System.engine) ~shard t.System.metrics;
    spans = t.System.spans;
  }

let default_shard_size = 500

let trials ?(faults = 12_500) ?(seed = 42) ?(inject_period = 20_000) ?(wedge_prob = 0.)
    ?(has_master_reset = false) ?(shard_size = default_shard_size) () =
  if shard_size <= 0 then invalid_arg "Sec72.trials: shard_size must be positive";
  (* The shard layout depends only on [faults] and [shard_size] —
     never on the worker count — so any [jobs] value reproduces the
     same campaign. *)
  let shards = (faults + shard_size - 1) / shard_size in
  List.init shards (fun i ->
      let shard_faults = min shard_size (faults - (i * shard_size)) in
      let trial_seed = Rng.derive ~seed ~index:i in
      Trial.make
        ~name:(Printf.sprintf "sec72/shard-%03d" i)
        ~seed:trial_seed
        (run_shard ~shard:i ~faults:shard_faults ~seed:trial_seed ~inject_period ~wedge_prob
           ~has_master_reset))

let empty_outcome =
  {
    injected = 0;
    crashes = 0;
    panics = 0;
    exceptions = 0;
    heartbeats = 0;
    other = 0;
    recovered = 0;
    user_resets = 0;
    bios_resets = 0;
    by_fault_type = [];
  }

let merge_outcomes a b =
  let by_fault_type =
    let tbl = Hashtbl.create 7 in
    List.iter
      (fun (k, v) -> Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      (a.by_fault_type @ b.by_fault_type);
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    injected = a.injected + b.injected;
    crashes = a.crashes + b.crashes;
    panics = a.panics + b.panics;
    exceptions = a.exceptions + b.exceptions;
    heartbeats = a.heartbeats + b.heartbeats;
    other = a.other + b.other;
    recovered = a.recovered + b.recovered;
    user_resets = a.user_resets + b.user_resets;
    bios_resets = a.bios_resets + b.bios_resets;
    by_fault_type;
  }

let reduce results =
  List.fold_left (fun acc r -> merge_outcomes acc r.outcome) empty_outcome results

let run ?jobs ?on_progress ?faults ?seed ?inject_period ?wedge_prob ?has_master_reset ?shard_size
    ?obs () =
  let results =
    Campaign.(
      values
        (run ?jobs ?on_progress
           (trials ?faults ?seed ?inject_period ?wedge_prob ?has_master_reset ?shard_size ())))
  in
  (match obs with
  | None -> ()
  | Some sink ->
      (* Campaign-level observability: the union of every shard's
         metric registry, and all recovery spans concatenated in shard
         order. *)
      let snapshot = Metrics.merge_all (List.map (fun r -> r.snapshot) results) in
      List.iter sink (Export.metric_lines ~label:"sec72" snapshot);
      List.iter sink (Export.span_lines ~label:"sec72" (Span.concat (List.map (fun r -> r.spans) results))));
  reduce results

(* The crash-class split must account for every detected crash, and
   recoveries can't exceed detections: the campaign's internal
   integrity check (the classes are disjoint by construction of
   [Status.defect], so a mismatch means lost events). *)
let ok o =
  o.injected > 0
  && o.panics + o.exceptions + o.heartbeats + o.other = o.crashes
  && o.recovered <= o.crashes

let pct part whole = if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let print label o =
  Table.section (Printf.sprintf "Sec. 7.2 — fault injection into the DP8390 driver (%s)" label);
  Table.note
    "Paper anchors (Bochs): 12,500 faults -> 347 crashes: 65%% panic, 31%% CPU/MMU\n\
     exception, 4%% heartbeat; recovery succeeded in 100%% of detected failures.\n\
     Real hardware: >99%%, with <5 wedged-NIC cases needing a BIOS reset.\n\n";
  Table.print
    ~header:[ "metric"; "value"; "share" ]
    [
      [ "faults injected"; string_of_int o.injected; "" ];
      [ "detectable crashes"; string_of_int o.crashes; "" ];
      [ "  exit / internal panic (class 1)"; string_of_int o.panics;
        Printf.sprintf "%.0f%%" (pct o.panics o.crashes) ];
      [ "  CPU / MMU exception (class 2)"; string_of_int o.exceptions;
        Printf.sprintf "%.0f%%" (pct o.exceptions o.crashes) ];
      [ "  missing heartbeat (class 4)"; string_of_int o.heartbeats;
        Printf.sprintf "%.0f%%" (pct o.heartbeats o.crashes) ];
      [ "  other classes"; string_of_int o.other; Printf.sprintf "%.0f%%" (pct o.other o.crashes) ];
      [ "successful recoveries"; string_of_int o.recovered;
        Printf.sprintf "%.1f%%" (pct o.recovered o.crashes) ];
      [ "silent faults cleared by user restart"; string_of_int o.user_resets; "" ];
      [ "BIOS resets needed (wedged NIC)"; string_of_int o.bios_resets; "" ];
    ];
  Table.note "\nFaults applied by type:\n";
  Table.print ~header:[ "fault type"; "applied" ]
    (List.map (fun (k, v) -> [ k; string_of_int v ]) o.by_fault_type)
