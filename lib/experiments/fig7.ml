module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Span = Resilix_obs.Span
module Rng = Resilix_sim.Rng
module Trial = Resilix_harness.Trial
module Campaign = Resilix_harness.Campaign
module Filegen = Resilix_net.Filegen
module Wget = Resilix_apps.Wget

type row = {
  kill_interval_s : int option;
  bytes : int;
  duration_us : int;
  throughput_mbs : float;
  recoveries : int;
  mean_restart_us : int;
  overhead_pct : float;
  integrity_ok : bool;
}

type trial_result = { row : row; obs_lines : string list }

let file_seed = 77

(* Recovery latency comes from the typed spans RS records (opened at
   defect detection, closed at reintegration). *)
let recovery_stats t =
  let closed =
    List.filter_map (fun s -> Span.total_us s) (Span.spans t.System.spans)
  in
  let n = List.length closed in
  (n, if n = 0 then 0 else List.fold_left ( + ) 0 closed / n)

(* One hermetic trial body: boots its own machine, runs one transfer,
   and returns the row plus its observability lines (emitted by the
   reducer in trial order, so parallel runs stay byte-identical). *)
let one_transfer ~size ~seed ~kill_interval ~label () =
  let opts =
    {
      System.default_opts with
      System.seed;
      peer_files = [ ("file.bin", (size, file_seed)) ];
      disk_mb = 8;
    }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_rtl8139 ~policy:"direct" () ];
  let result = Wget.fresh_result () in
  ignore
    (System.spawn_app t ~name:"wget"
       (Wget.make ~server:Hwmap.rtl_peer_ip ~port:80 ~file:"file.bin" result));
  (match kill_interval with
  | Some interval -> System.start_crash_script t ~target:"eth.rtl8139" ~interval ()
  | None -> ());
  let finished = System.run_until t ~timeout:3_600_000_000 (fun () -> result.Wget.finished) in
  let recoveries, mean_restart = recovery_stats t in
  let duration = result.Wget.finished_at - result.Wget.started_at in
  {
    row =
      {
        kill_interval_s = Option.map (fun i -> i / 1_000_000) kill_interval;
        bytes = result.Wget.bytes;
        duration_us = duration;
        throughput_mbs =
          (if duration > 0 then float_of_int result.Wget.bytes /. float_of_int duration else 0.);
        recoveries;
        mean_restart_us = mean_restart;
        overhead_pct = 0.;
        integrity_ok =
          finished && result.Wget.ok
          && String.equal result.Wget.fnv (Filegen.fnv_digest ~seed:file_seed ~size);
      };
    obs_lines = System.obs_lines ~label t;
  }

let trials ?(size = 64 * 1024 * 1024) ?(intervals = [ 1; 2; 4; 8; 15 ]) ?(seed = 42) () =
  let trial index kill_interval =
    let label =
      match kill_interval with
      | None -> "fig7/baseline"
      | Some i -> Printf.sprintf "fig7/kill-%ds" (i / 1_000_000)
    in
    let trial_seed = Rng.derive ~seed ~index in
    Trial.make ~name:label ~seed:trial_seed
      (one_transfer ~size ~seed:trial_seed ~kill_interval ~label)
  in
  trial 0 None
  :: List.mapi (fun i s -> trial (i + 1) (Some (s * 1_000_000))) intervals

(* Pure reducer: first trial is the uninterrupted baseline the
   overhead column is computed against. *)
let reduce results =
  match List.map (fun r -> r.row) results with
  | [] -> []
  | baseline :: rest ->
      baseline
      :: List.map
           (fun r ->
             {
               r with
               overhead_pct =
                 100. *. (1. -. (r.throughput_mbs /. max 0.001 baseline.throughput_mbs));
             })
           rest

let run ?jobs ?on_progress ?size ?intervals ?(seed = 42) ?obs () =
  let results = Campaign.(values (run ?jobs ?on_progress (trials ?size ?intervals ~seed ()))) in
  (match obs with
  | None -> ()
  | Some sink -> List.iter (fun r -> List.iter sink r.obs_lines) results);
  reduce results

let ok rows = rows <> [] && List.for_all (fun r -> r.integrity_ok) rows

let print rows =
  Table.section "Fig. 7 — wget throughput vs. Ethernet-driver kill interval";
  Table.note
    "Paper anchors (512 MB, RealTek 8139): uninterrupted 10.8 MB/s; with kills:\n\
     10.7 MB/s at 15 s down to 8.1 MB/s at 1 s (overhead 1%%..25%%); mean recovery 0.48 s.\n\n";
  Table.print
    ~header:
      [ "kill interval"; "MB"; "time (s)"; "MB/s"; "recoveries"; "mean restart (ms)"; "overhead"; "integrity" ]
    (List.map
       (fun r ->
         [
           (match r.kill_interval_s with None -> "none" | Some s -> Printf.sprintf "%d s" s);
           Printf.sprintf "%d" (r.bytes / 1024 / 1024);
           Printf.sprintf "%.2f" (float_of_int r.duration_us /. 1e6);
           Printf.sprintf "%.2f" r.throughput_mbs;
           string_of_int r.recoveries;
           Printf.sprintf "%.1f" (float_of_int r.mean_restart_us /. 1e3);
           (match r.kill_interval_s with
           | None -> "-"
           | Some _ -> Printf.sprintf "%.1f%%" r.overhead_pct);
           (if r.integrity_ok then "md5 ok" else "CORRUPT");
         ])
       rows)
