(** Fig. 8 — disk throughput under repeated SATA-driver kills.

    The paper's setup: dd reads a 1-GB file of random data (piped into
    sha1sum) while a crash script SIGKILLs the SATA driver every 1..15
    seconds.  The file server marks pending I/O, waits for the
    reincarnated driver, and reissues the idempotent block reads; the
    SHA-1 is identical in every run.  Overhead is larger than the
    network case (62% at 1 s vs 25%) because the disk moves data
    faster, so every second of recovery dead time costs more. *)

type row = {
  kill_interval_s : int option;
  bytes : int;
  duration_us : int;
  throughput_mbs : float;
  recoveries : int;
  reissued_ios : int;  (** pending block ops redone after crashes *)
  mean_restart_us : int;
  overhead_pct : float;
  integrity_ok : bool;  (** checksum equals the uninterrupted run's *)
}

val run :
  ?size:int -> ?intervals:int list -> ?seed:int -> ?obs:(string -> unit) -> unit -> row list
(** Default: a 128-MB file (scaled from 1 GB), kill intervals
    1,2,4,8,15 s; first row is the uninterrupted baseline.  Recovery
    latencies come from the closed recovery spans; [obs] receives
    JSONL observability lines per run (labels ["fig8/..."]). *)

val print : row list -> unit
(** Print the series next to the paper's anchor numbers. *)
