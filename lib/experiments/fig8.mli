(** Fig. 8 — disk throughput under repeated SATA-driver kills.

    The paper's setup: dd reads a 1-GB file of random data (piped into
    sha1sum) while a crash script SIGKILLs the SATA driver every 1..15
    seconds.  The file server marks pending I/O, waits for the
    reincarnated driver, and reissues the idempotent block reads; the
    SHA-1 is identical in every run.  Overhead is larger than the
    network case (62% at 1 s vs 25%) because the disk moves data
    faster, so every second of recovery dead time costs more.

    The sweep is expressed as hermetic {!Resilix_harness.Trial}s
    (baseline + one per interval) folded by a pure reducer, so it runs
    on every core without changing a byte of output. *)

type row = {
  kill_interval_s : int option;
  bytes : int;
  duration_us : int;
  throughput_mbs : float;
  recoveries : int;
  reissued_ios : int;  (** pending block ops redone after crashes *)
  mean_restart_us : int;
  overhead_pct : float;
  integrity_ok : bool;  (** checksum equals the uninterrupted run's *)
}

type trial_result = {
  row : row;  (** [overhead_pct]/digest comparison filled by {!reduce} *)
  fnv : string;  (** digest of the bytes dd read *)
  obs_lines : string list;  (** the trial's JSONL observability dump *)
}

val trials :
  ?size:int -> ?intervals:int list -> ?seed:int -> unit -> trial_result Resilix_harness.Trial.t list
(** Baseline first, then one trial per kill interval.  All trials
    share [seed]: the on-disk file content derives from the machine
    seed, and the digest comparison needs every run to read identical
    bytes — only the kill schedule varies per trial. *)

val reduce : trial_result list -> row list
(** Pure fold: overhead against the baseline row, and every digest
    compared against the baseline's. *)

val run :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?size:int ->
  ?intervals:int list ->
  ?seed:int ->
  ?obs:(string -> unit) ->
  unit ->
  row list
(** [Campaign.run ?jobs ?on_progress] over {!trials}, then {!reduce}.
    [on_progress] observes per-trial completion without touching the
    output byte-stream.  Default: a
    128-MB file (scaled from 1 GB), kill intervals 1,2,4,8,15 s; first
    row is the uninterrupted baseline.  Recovery latencies come from
    the closed recovery spans; [obs] receives each trial's JSONL lines
    in trial order (labels ["fig8/..."]), identical for any [jobs]. *)

val ok : row list -> bool
(** Internal integrity check: non-empty and every row's checksum
    matched.  Drives the CLI exit code. *)

val print : row list -> unit
(** Print the series next to the paper's anchor numbers. *)
