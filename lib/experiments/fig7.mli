(** Fig. 7 — networking throughput under repeated Ethernet-driver
    kills.

    The paper's setup: wget retrieves a 512-MB file over TCP while a
    crash script SIGKILLs the RTL8139 driver every 1..15 seconds; the
    direct-restart policy recovers it each time, TCP masks the losses,
    and the MD5 of the received data matches the original.  Reported:
    throughput per kill interval, versus the uninterrupted transfer. *)

type row = {
  kill_interval_s : int option;  (** None = uninterrupted baseline *)
  bytes : int;
  duration_us : int;
  throughput_mbs : float;
  recoveries : int;  (** completed driver reincarnations *)
  mean_restart_us : int;  (** RS detect -> service back up *)
  overhead_pct : float;  (** throughput loss vs. the baseline *)
  integrity_ok : bool;  (** digest matches the served file *)
}

val run :
  ?size:int -> ?intervals:int list -> ?seed:int -> ?obs:(string -> unit) -> unit -> row list
(** Default: a 64-MB transfer (scaled from the paper's 512 MB; the
    per-crash dead time is scale-independent, so the overhead shape is
    preserved), kill intervals 1,2,4,8,15 s.  The first row is the
    uninterrupted baseline.  Recovery counts and mean restart time are
    computed from the closed recovery spans ({!Resilix_obs.Span}).
    [obs] receives one JSONL observability line at a time for each
    transfer (labelled ["fig7/baseline"], ["fig7/kill-4s"], ...). *)

val print : row list -> unit
(** Print the series next to the paper's anchor numbers. *)
