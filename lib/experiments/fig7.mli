(** Fig. 7 — networking throughput under repeated Ethernet-driver
    kills.

    The paper's setup: wget retrieves a 512-MB file over TCP while a
    crash script SIGKILLs the RTL8139 driver every 1..15 seconds; the
    direct-restart policy recovers it each time, TCP masks the losses,
    and the MD5 of the received data matches the original.  Reported:
    throughput per kill interval, versus the uninterrupted transfer.

    The sweep is expressed as hermetic {!Resilix_harness.Trial}s (one
    per kill interval, plus the baseline) folded by a pure reducer, so
    it runs on every core without changing a byte of output. *)

type row = {
  kill_interval_s : int option;  (** None = uninterrupted baseline *)
  bytes : int;
  duration_us : int;
  throughput_mbs : float;
  recoveries : int;  (** completed driver reincarnations *)
  mean_restart_us : int;  (** RS detect -> service back up *)
  overhead_pct : float;  (** throughput loss vs. the baseline *)
  integrity_ok : bool;  (** digest matches the served file *)
}

type trial_result = {
  row : row;  (** [overhead_pct] still 0 — filled in by {!reduce} *)
  obs_lines : string list;  (** the trial's JSONL observability dump *)
}

val trials :
  ?size:int -> ?intervals:int list -> ?seed:int -> unit -> trial_result Resilix_harness.Trial.t list
(** The sweep as trial specs: the baseline first, then one trial per
    kill interval.  Trial [i] is seeded [Rng.derive ~seed ~index:i],
    so per-trial streams are independent of sweep width and order. *)

val reduce : trial_result list -> row list
(** Pure fold: computes each row's overhead against the baseline
    (the first result). *)

val run :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?size:int ->
  ?intervals:int list ->
  ?seed:int ->
  ?obs:(string -> unit) ->
  unit ->
  row list
(** [Campaign.run ?jobs ?on_progress] over {!trials}, then {!reduce}.
    [on_progress] observes per-trial completion on stderr-side
    channels only — output stays byte-identical.  Default: a
    64-MB transfer (scaled from the paper's 512 MB; the per-crash dead
    time is scale-independent, so the overhead shape is preserved),
    kill intervals 1,2,4,8,15 s.  The first row is the uninterrupted
    baseline.  Recovery counts and mean restart time are computed from
    the closed recovery spans ({!Resilix_obs.Span}).  [obs] receives
    the JSONL observability lines of every transfer in trial order
    (labelled ["fig7/baseline"], ["fig7/kill-4s"], ...) — the stream
    is identical for any [jobs]. *)

val ok : row list -> bool
(** Internal integrity check: non-empty and every row's digest
    matched ([integrity_ok]).  Drives the CLI exit code. *)

val print : row list -> unit
(** Print the series next to the paper's anchor numbers. *)
