module System = Resilix_system.System
module Span = Resilix_obs.Span
module Trial = Resilix_harness.Trial
module Campaign = Resilix_harness.Campaign
module Mfs = Resilix_fs.Mfs
module Dd = Resilix_apps.Dd

type row = {
  kill_interval_s : int option;
  bytes : int;
  duration_us : int;
  throughput_mbs : float;
  recoveries : int;
  reissued_ios : int;
  mean_restart_us : int;
  overhead_pct : float;
  integrity_ok : bool;
}

type trial_result = { row : row; fnv : string; obs_lines : string list }

(* Same span-based recovery accounting as Fig. 7. *)
let recovery_stats t =
  let closed =
    List.filter_map (fun s -> Span.total_us s) (Span.spans t.System.spans)
  in
  let n = List.length closed in
  (n, if n = 0 then 0 else List.fold_left ( + ) 0 closed / n)

let one_run ~size ~seed ~kill_interval ~label () =
  let disk_mb = (size / 1024 / 1024) + 8 in
  let opts =
    {
      System.default_opts with
      System.seed;
      fs_files = [ ("big.bin", size) ];
      disk_mb;
    }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_sata ~policy:"direct" () ];
  let result = Dd.fresh_result () in
  ignore (System.spawn_app t ~name:"dd" (Dd.make ~path:"/big.bin" result));
  (match kill_interval with
  | Some interval -> System.start_crash_script t ~target:"blk.sata" ~interval ()
  | None -> ());
  let finished = System.run_until t ~timeout:3_600_000_000 (fun () -> result.Dd.finished) in
  let recoveries, mean_restart = recovery_stats t in
  let duration = result.Dd.finished_at - result.Dd.started_at in
  {
    row =
      {
        kill_interval_s = Option.map (fun i -> i / 1_000_000) kill_interval;
        bytes = result.Dd.bytes;
        duration_us = duration;
        throughput_mbs =
          (if duration > 0 then float_of_int result.Dd.bytes /. float_of_int duration else 0.);
        recoveries;
        reissued_ios = Mfs.reissued_ios t.System.mfs;
        mean_restart_us = mean_restart;
        overhead_pct = 0.;
        integrity_ok = finished && result.Dd.ok;
      };
    fnv = result.Dd.fnv;
    obs_lines = System.obs_lines ~label t;
  }

(* Unlike Fig. 7 there is no external reference digest: every run
   must read the same on-disk file, whose content derives from the
   machine seed (mkfs fills it from the blockstore's stream).  So all
   trials share one seed — what varies per trial is only the kill
   schedule — and [reduce] checks every digest against the
   baseline's. *)
let trials ?(size = 128 * 1024 * 1024) ?(intervals = [ 1; 2; 4; 8; 15 ]) ?(seed = 42) () =
  let trial kill_interval =
    let label =
      match kill_interval with
      | None -> "fig8/baseline"
      | Some i -> Printf.sprintf "fig8/kill-%ds" (i / 1_000_000)
    in
    Trial.make ~name:label ~seed (one_run ~size ~seed ~kill_interval ~label)
  in
  trial None :: List.map (fun s -> trial (Some (s * 1_000_000))) intervals

let reduce results =
  match results with
  | [] -> []
  | baseline :: rest ->
      baseline.row
      :: List.map
           (fun r ->
             {
               r.row with
               overhead_pct =
                 100.
                 *. (1. -. (r.row.throughput_mbs /. max 0.001 baseline.row.throughput_mbs));
               integrity_ok = r.row.integrity_ok && String.equal r.fnv baseline.fnv;
             })
           rest

let run ?jobs ?on_progress ?size ?intervals ?(seed = 42) ?obs () =
  let results = Campaign.(values (run ?jobs ?on_progress (trials ?size ?intervals ~seed ()))) in
  (match obs with
  | None -> ()
  | Some sink -> List.iter (fun r -> List.iter sink r.obs_lines) results);
  reduce results

let ok rows = rows <> [] && List.for_all (fun r -> r.integrity_ok) rows

let print rows =
  Table.section "Fig. 8 — dd disk throughput vs. SATA-driver kill interval";
  Table.note
    "Paper anchors (1 GB, SATA): uninterrupted 32.7 MB/s; with kills: 30.5 MB/s\n\
     at 15 s down to 12.3 MB/s at 1 s (overhead 7%%..62%%); identical SHA-1 every run.\n\n";
  Table.print
    ~header:
      [
        "kill interval"; "MB"; "time (s)"; "MB/s"; "recoveries"; "redone I/O";
        "mean restart (ms)"; "overhead"; "integrity";
      ]
    (List.map
       (fun r ->
         [
           (match r.kill_interval_s with None -> "none" | Some s -> Printf.sprintf "%d s" s);
           Printf.sprintf "%d" (r.bytes / 1024 / 1024);
           Printf.sprintf "%.2f" (float_of_int r.duration_us /. 1e6);
           Printf.sprintf "%.2f" r.throughput_mbs;
           string_of_int r.recoveries;
           string_of_int r.reissued_ios;
           Printf.sprintf "%.1f" (float_of_int r.mean_restart_us /. 1e3);
           (match r.kill_interval_s with
           | None -> "-"
           | Some _ -> Printf.sprintf "%.1f%%" r.overhead_pct);
           (if r.integrity_ok then "sha ok" else "CORRUPT");
         ])
       rows)
