(** Ablations over the design choices DESIGN.md calls out — beyond the
    paper's own evaluation.

    Each sweep is a list of hermetic {!Resilix_harness.Trial}s (one
    boot per data point, seeds derived per index), so every sweep
    accepts [?jobs] and parallelizes without changing its output. *)

type heartbeat_row = {
  period_us : int;
  detection_us : int;  (** time from the service wedging to defect class 4 firing *)
}

val heartbeat_trials :
  ?periods:int list -> ?seed:int -> unit -> heartbeat_row Resilix_harness.Trial.t list

val heartbeat_sweep :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?periods:int list ->
  ?seed:int ->
  unit ->
  heartbeat_row list
(** Detection latency of a silently stuck driver as a function of the
    heartbeat period (misses threshold fixed at the default 4). *)

type policy_row = {
  policy : string;
  restarts : int;  (** recoveries during the window *)
  state : string;  (** service lifecycle state at the end of the window *)
}

val policy_trials :
  ?window_us:int -> ?seed:int -> unit -> policy_row Resilix_harness.Trial.t list

val policy_comparison :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?window_us:int ->
  ?seed:int ->
  unit ->
  policy_row list
(** A crash-storming service under the direct, generic (exponential
    backoff) and guarded (give-up) policies: backoff bounds the
    restart churn; give-up stops it. *)

type ipc_row = { operation : string; cost_us : float }

val ipc_trials : ?rounds:int -> unit -> ipc_row list Resilix_harness.Trial.t list

val ipc_microbench :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?rounds:int ->
  unit ->
  ipc_row list
(** Virtual-time cost of the primitives recovery is built from:
    rendezvous round trip, notification, and grant-checked safecopy at
    several sizes (the "few microseconds ... amortized over the I/O"
    of Sec. 4). *)

val print_heartbeat : heartbeat_row list -> unit
val print_policy : policy_row list -> unit
val print_ipc : ipc_row list -> unit
