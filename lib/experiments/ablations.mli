(** Ablations over the design choices DESIGN.md calls out — beyond the
    paper's own evaluation.

    Each sweep is a list of hermetic {!Resilix_harness.Trial}s (one
    boot per data point, seeds derived per index), so every sweep
    accepts [?jobs] and parallelizes without changing its output. *)

type heartbeat_row = {
  period_us : int;
  detection_us : int;  (** time from the service wedging to defect class 4 firing *)
}

val heartbeat_trials :
  ?periods:int list -> ?seed:int -> unit -> heartbeat_row Resilix_harness.Trial.t list

val heartbeat_sweep :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?periods:int list ->
  ?seed:int ->
  unit ->
  heartbeat_row list
(** Detection latency of a silently stuck driver as a function of the
    heartbeat period (misses threshold fixed at the default 4). *)

type policy_row = {
  policy : string;
  restarts : int;  (** recoveries during the window *)
  state : string;  (** service lifecycle state at the end of the window *)
}

val policy_trials :
  ?window_us:int -> ?seed:int -> unit -> policy_row Resilix_harness.Trial.t list

val policy_comparison :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?window_us:int ->
  ?seed:int ->
  unit ->
  policy_row list
(** A crash-storming service under the direct, generic (exponential
    backoff) and guarded (give-up) policies: backoff bounds the
    restart churn; give-up stops it. *)

type availability_row = {
  a_policy : string;
  a_injected : int;  (** faults applied to the driver *)
  a_crashes : int;  (** recovery events detected by RS *)
  a_restarts : int;  (** events that ended in a recovery *)
  a_downtime_us : int;  (** summed detection-to-recovery time *)
  a_horizon_us : int;  (** measured window, injection start to probe *)
  a_availability : float;  (** percent of the horizon the driver was serving *)
  a_by_class : (string * int * int) list;
      (** defect class name, failures of that class, downtime they
          contributed (us) *)
  a_end_state : string;  (** driver lifecycle state at the end *)
}

val availability_trials :
  ?faults:int ->
  ?inject_period:int ->
  ?seed:int ->
  unit ->
  availability_row Resilix_harness.Trial.t list

val availability_study :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?faults:int ->
  ?inject_period:int ->
  ?seed:int ->
  unit ->
  availability_row list
(** The policy-v2 ablation: the DP8390 driver absorbs the Sec. 7.2
    random binary-fault corpus once per policy (direct, generic
    backoff, guarded give-up, circuit breaker) and each run is scored
    on availability — downtime from defect detection to recovery,
    split per defect class.  The breaker's parked (degraded) episodes
    are charged as downtime, so the table shows the uptime-vs-churn
    trade honestly. *)

type ipc_row = { operation : string; cost_us : float }

val ipc_trials : ?rounds:int -> unit -> ipc_row list Resilix_harness.Trial.t list

val ipc_microbench :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?rounds:int ->
  unit ->
  ipc_row list
(** Virtual-time cost of the primitives recovery is built from:
    rendezvous round trip, notification, and grant-checked safecopy at
    several sizes (the "few microseconds ... amortized over the I/O"
    of Sec. 4). *)

val print_heartbeat : heartbeat_row list -> unit
val print_policy : policy_row list -> unit
val print_availability : availability_row list -> unit
val print_ipc : ipc_row list -> unit
