(** Sec. 7.2 — the software fault-injection campaign.

    The paper injected 12,500 single random faults (7 binary-mutation
    types) into the running DP8390 driver under Bochs, observing 347
    detectable crashes: 65% internal panics, 31% CPU/MMU-exception
    kills, 4% missed-heartbeat restarts — with 100% successful
    recovery.  On real hardware >99% recovered; in a handful of cases
    the NIC wedged and needed a BIOS-level reset.

    This harness reruns that campaign inside the simulator: faults are
    injected into the driver's loaded code image while UDP traffic
    flows; crash classes fall out of execution (consistency-check
    panics, MMU faults / illegal instructions, runaway loops), and the
    wedgeable-hardware variant reproduces the BIOS-reset cases. *)

type outcome = {
  injected : int;  (** faults actually applied *)
  crashes : int;  (** detected failures *)
  panics : int;  (** defect class 1 (exit/panic) *)
  exceptions : int;  (** defect class 2 (CPU/MMU exception) *)
  heartbeats : int;  (** defect class 4 (missed heartbeats) *)
  other : int;  (** remaining classes (e.g. complaints) *)
  recovered : int;  (** crashes followed by a completed restart *)
  user_resets : int;
      (** silent-but-disabling faults cleared by a user-requested
          restart (defect class 3) — the campaign watchdog *)
  bios_resets : int;  (** times the NIC wedged and needed out-of-band reset *)
  by_fault_type : (string * int) list;  (** applied faults per type *)
}

val run :
  ?faults:int ->
  ?seed:int ->
  ?inject_period:int ->
  ?wedge_prob:float ->
  ?has_master_reset:bool ->
  unit ->
  outcome
(** Default: 2,000 faults, one every 20 ms of virtual time, no
    hardware wedging (the Bochs-like configuration).  Pass
    [wedge_prob] > 0 for the real-hardware variant. *)

val print : string -> outcome -> unit
(** Print the campaign summary under the given label. *)
