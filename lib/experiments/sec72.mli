(** Sec. 7.2 — the software fault-injection campaign.

    The paper injected 12,500 single random faults (7 binary-mutation
    types) into the running DP8390 driver under Bochs, observing 347
    detectable crashes: 65% internal panics, 31% CPU/MMU-exception
    kills, 4% missed-heartbeat restarts — with 100% successful
    recovery.  On real hardware >99% recovered; in a handful of cases
    the NIC wedged and needed a BIOS-level reset.

    This harness reruns that campaign inside the simulator: faults are
    injected into the driver's loaded code image while UDP traffic
    flows; crash classes fall out of execution (consistency-check
    panics, MMU faults / illegal instructions, runaway loops), and the
    wedgeable-hardware variant reproduces the BIOS-reset cases.

    The campaign is {e sharded}: the fault budget is cut into
    fixed-size batches, each a hermetic {!Resilix_harness.Trial} that
    boots its own machine on a seed derived from the shard index
    ([Rng.derive]).  Shard layout depends only on [faults] and
    [shard_size] — never on the worker count — so the merged outcome
    is identical for any [jobs].  This is what lets the default run
    cover the paper's full 12,500 faults. *)

type outcome = {
  injected : int;  (** faults actually applied *)
  crashes : int;  (** detected failures *)
  panics : int;  (** defect class 1 (exit/panic) *)
  exceptions : int;  (** defect class 2 (CPU/MMU exception) *)
  heartbeats : int;  (** defect class 4 (missed heartbeats) *)
  other : int;  (** remaining classes (e.g. complaints) *)
  recovered : int;  (** crashes followed by a completed restart *)
  user_resets : int;
      (** silent-but-disabling faults cleared by a user-requested
          restart (defect class 3) — the campaign watchdog *)
  bios_resets : int;  (** times the NIC wedged and needed out-of-band reset *)
  by_fault_type : (string * int) list;  (** applied faults per type *)
}

type shard_result = {
  outcome : outcome;  (** this shard's share of the campaign *)
  snapshot : Resilix_obs.Metrics.snapshot;  (** the shard machine's metric registry *)
  spans : Resilix_obs.Span.t;  (** the shard machine's recovery spans *)
}

val default_shard_size : int
(** 500 faults per shard (25 shards for the paper's 12,500). *)

val trials :
  ?faults:int ->
  ?seed:int ->
  ?inject_period:int ->
  ?wedge_prob:float ->
  ?has_master_reset:bool ->
  ?shard_size:int ->
  unit ->
  shard_result Resilix_harness.Trial.t list
(** The campaign as shard trials.  Shard [i] injects its batch into a
    fresh machine seeded [Rng.derive ~seed ~index:i]. *)

val reduce : shard_result list -> outcome
(** Pure fold: sum every shard outcome (fault-type counts merge
    key-wise). *)

val run :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?faults:int ->
  ?seed:int ->
  ?inject_period:int ->
  ?wedge_prob:float ->
  ?has_master_reset:bool ->
  ?shard_size:int ->
  ?obs:(string -> unit) ->
  unit ->
  outcome
(** [Campaign.run ?jobs ?on_progress] over {!trials}, then {!reduce}.
    Default: the paper's 12,500 faults, one every 20 ms of virtual
    time per shard, no hardware wedging (the Bochs-like
    configuration).  Pass [wedge_prob] > 0 for the real-hardware
    variant.  [on_progress] observes per-shard completion (the long
    25-shard default run is no longer silent until the reduce) without
    touching stdout.  [obs] receives campaign-level JSONL: the
    {!Resilix_obs.Metrics.merge_all} union of every shard's registry —
    per-shard gauges (snapshots are tagged with their shard index)
    merge into deterministic min/max/last distributions — and all
    spans concatenated in shard order (label ["sec72"]). *)

val ok : outcome -> bool
(** The campaign's internal integrity check: some faults were
    applied, the crash-class split accounts for every detected crash
    ([panics + exceptions + heartbeats + other = crashes]), and
    recoveries don't exceed detections.  Drives the CLI exit code. *)

val print : string -> outcome -> unit
(** Print the campaign summary under the given label. *)
