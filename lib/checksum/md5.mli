(** MD5 message digest (RFC 1321), implemented from scratch.

    Used by the wget example to verify end-to-end data integrity after
    repeated network-driver crashes, mirroring the paper's Sec. 7.1
    methodology ("we compared the MD5 checksums of the received data
    [with] the original file"). *)

type ctx
(** Streaming digest context. *)

val init : unit -> ctx
(** Fresh context. *)

val update : ctx -> bytes -> off:int -> len:int -> unit
(** Absorb [len] bytes of [b] starting at [off]. *)

val update_string : ctx -> string -> unit
(** Absorb a whole string. *)

val finalize : ctx -> string
(** Produce the 16-byte raw digest.  The context must not be reused. *)

val hex : string -> string
(** Lowercase hexadecimal rendering of a raw digest. *)

val digest_string : string -> string
(** One-shot: hex digest of a string. *)
