(** SHA-1 message digest (FIPS 180-1), implemented from scratch.

    Used by the dd example: the paper pipes a 1-GB read into sha1sum
    and verifies the digest is identical across runs with and without
    disk-driver crashes (Sec. 7.1, Fig. 8). *)

type ctx
(** Streaming digest context. *)

val init : unit -> ctx
(** Fresh context. *)

val update : ctx -> bytes -> off:int -> len:int -> unit
(** Absorb [len] bytes of [b] starting at [off]. *)

val update_string : ctx -> string -> unit
(** Absorb a whole string. *)

val finalize : ctx -> string
(** Produce the 20-byte raw digest.  The context must not be reused. *)

val hex : string -> string
(** Lowercase hexadecimal rendering of a raw digest. *)

val digest_string : string -> string
(** One-shot: hex digest of a string. *)
