(* Reference: FIPS 180-1.  32-bit words carried in OCaml ints. *)

let mask = 0xFFFFFFFF

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  mutable total : int;
  block : Bytes.t;
  mutable fill : int;
  w : int array;  (* 80-entry message schedule, reused across blocks *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    total = 0;
    block = Bytes.create 64;
    fill = 0;
    w = Array.make 80 0;
  }

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let compress ctx buf off =
  let w = ctx.w in
  for i = 0 to 15 do
    let base = off + (4 * i) in
    w.(i) <-
      (Char.code (Bytes.get buf base) lsl 24)
      lor (Char.code (Bytes.get buf (base + 1)) lsl 16)
      lor (Char.code (Bytes.get buf (base + 2)) lsl 8)
      lor Char.code (Bytes.get buf (base + 3))
  done;
  for i = 16 to 79 do
    w.(i) <- rotl (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then (!b land !c) lor (lnot !b land !d land mask), 0x5A827999
      else if i < 40 then !b lxor !c lxor !d, 0x6ED9EBA1
      else if i < 60 then (!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC
      else !b lxor !c lxor !d, 0xCA62C1D6
    in
    let tmp = (rotl !a 5 + f + !e + k + w.(i)) land mask in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := tmp
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask;
  ctx.h1 <- (ctx.h1 + !b) land mask;
  ctx.h2 <- (ctx.h2 + !c) land mask;
  ctx.h3 <- (ctx.h3 + !d) land mask;
  ctx.h4 <- (ctx.h4 + !e) land mask

let update ctx b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then invalid_arg "Sha1.update";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit b !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.block ctx.fill !remaining;
    ctx.fill <- ctx.fill + !remaining
  end

let update_string ctx s =
  update ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  let bitlen = ctx.total * 8 in
  let pad_len =
    let rem = ctx.total mod 64 in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  (* Big-endian 64-bit bit count. *)
  for i = 0 to 7 do
    Bytes.set tail (pad_len + i) (Char.chr ((bitlen lsr (8 * (7 - i))) land 0xFF))
  done;
  ctx.total <- ctx.total - (pad_len + 8);
  update ctx tail ~off:0 ~len:(Bytes.length tail);
  let out = Bytes.create 20 in
  let put i v =
    for j = 0 to 3 do
      Bytes.set out ((4 * i) + j) (Char.chr ((v lsr (8 * (3 - j))) land 0xFF))
    done
  in
  put 0 ctx.h0;
  put 1 ctx.h1;
  put 2 ctx.h2;
  put 3 ctx.h3;
  put 4 ctx.h4;
  Bytes.to_string out

let hex raw =
  let buf = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf

let digest_string s =
  let ctx = init () in
  update_string ctx s;
  hex (finalize ctx)
