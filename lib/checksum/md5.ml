(* Reference: RFC 1321.  All arithmetic is on 32-bit words carried in
   OCaml ints and masked with [land 0xFFFFFFFF]. *)

let mask = 0xFFFFFFFF

type ctx = {
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable total : int;  (* bytes absorbed *)
  block : Bytes.t;  (* 64-byte staging buffer *)
  mutable fill : int;  (* valid bytes in [block] *)
}

let init () =
  {
    a = 0x67452301;
    b = 0xefcdab89;
    c = 0x98badcfe;
    d = 0x10325476;
    total = 0;
    block = Bytes.create 64;
    fill = 0;
  }

let s =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9;
    14; 20; 5; 9; 14; 20; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 6; 10; 15;
    21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

let k =
  [|
    0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee; 0xf57c0faf; 0x4787c62a; 0xa8304613; 0xfd469501;
    0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be; 0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821;
    0xf61e2562; 0xc040b340; 0x265e5a51; 0xe9b6c7aa; 0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
    0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed; 0xa9e3e905; 0xfcefa3f8; 0x676f02d9; 0x8d2a4c8a;
    0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c; 0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70;
    0x289b7ec6; 0xeaa127fa; 0xd4ef3085; 0x04881d05; 0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
    0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039; 0x655b59c3; 0x8f0ccc92; 0xffeff47d; 0x85845dd1;
    0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1; 0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391;
  |]

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let word bytes off i =
  let base = off + (4 * i) in
  Char.code (Bytes.get bytes base)
  lor (Char.code (Bytes.get bytes (base + 1)) lsl 8)
  lor (Char.code (Bytes.get bytes (base + 2)) lsl 16)
  lor (Char.code (Bytes.get bytes (base + 3)) lsl 24)

let compress ctx buf off =
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then (!b land !c) lor (lnot !b land !d land mask), i
      else if i < 32 then (!d land !b) lor (lnot !d land !c land mask), ((5 * i) + 1) mod 16
      else if i < 48 then !b lxor !c lxor !d, ((3 * i) + 5) mod 16
      else !c lxor (!b lor (lnot !d land mask)), (7 * i) mod 16
    in
    let f = (f + !a + k.(i) + word buf off g) land mask in
    a := !d;
    d := !c;
    c := !b;
    b := (!b + rotl f s.(i)) land mask
  done;
  ctx.a <- (ctx.a + !a) land mask;
  ctx.b <- (ctx.b + !b) land mask;
  ctx.c <- (ctx.c + !c) land mask;
  ctx.d <- (ctx.d + !d) land mask

let update ctx b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then invalid_arg "Md5.update";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Fill any partially staged block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit b !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.block ctx.fill !remaining;
    ctx.fill <- ctx.fill + !remaining
  end

let update_string ctx s =
  update ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  let bitlen = ctx.total * 8 in
  (* Padding: 0x80 then zeros then 8-byte little-endian bit length. *)
  let pad_len =
    let rem = ctx.total mod 64 in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (pad_len + i) (Char.chr ((bitlen lsr (8 * i)) land 0xFF))
  done;
  ctx.total <- ctx.total - (pad_len + 8);  (* update below must not recount padding *)
  update ctx tail ~off:0 ~len:(Bytes.length tail);
  let out = Bytes.create 16 in
  let put i v =
    for j = 0 to 3 do
      Bytes.set out ((4 * i) + j) (Char.chr ((v lsr (8 * j)) land 0xFF))
    done
  in
  put 0 ctx.a;
  put 1 ctx.b;
  put 2 ctx.c;
  put 3 ctx.d;
  Bytes.to_string out

let hex raw =
  let buf = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf

let digest_string s =
  let ctx = init () in
  update_string ctx s;
  hex (finalize ctx)
