type t = int64

let start = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let update h b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then invalid_arg "Fnv.update";
  let h = ref h in
  for i = off to off + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)))) prime
  done;
  !h

let update_string h s = update h (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
let string s = update_string start s
let to_hex h = Printf.sprintf "%016Lx" h
