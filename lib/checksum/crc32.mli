(** CRC-32 (IEEE 802.3 polynomial), table-driven.

    Used by the simulated TCP as its segment checksum, and by device
    models to detect frame corruption on the link. *)

type t = int
(** A running CRC value. *)

val start : t
(** Initial value for a fresh computation. *)

val update : t -> bytes -> off:int -> len:int -> t
(** Fold [len] bytes of [b] at [off] into the running value. *)

val update_string : t -> string -> t
(** Fold a whole string. *)

val finish : t -> int
(** Final 32-bit CRC. *)

val string : string -> int
(** One-shot CRC of a string. *)
