type t = int

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let start = 0xFFFFFFFF

let update crc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let c = ref crc in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c

let update_string crc s = update crc (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
let finish crc = crc lxor 0xFFFFFFFF
let string s = finish (update_string start s)
