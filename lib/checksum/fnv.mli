(** FNV-1a 64-bit hash.

    A fast non-cryptographic digest used on the benchmark hot paths
    (integrity checking hundreds of megabytes of simulated transfer
    data) where MD5/SHA-1 would dominate wall-clock time without
    changing what the experiment demonstrates. *)

type t = int64
(** A running hash value. *)

val start : t
(** FNV-1a offset basis. *)

val update : t -> bytes -> off:int -> len:int -> t
(** Fold [len] bytes of [b] at [off] into the running value. *)

val update_string : t -> string -> t
(** Fold a whole string. *)

val string : string -> t
(** One-shot hash of a string. *)

val to_hex : t -> string
(** 16-char lowercase hex rendering. *)
