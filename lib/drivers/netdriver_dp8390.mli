(** DP8390 Ethernet driver (programmed I/O) — the fault-injection
    target of Sec. 7.2.

    Frame data moves through the device's data port a word at a time,
    so the transmit and receive paths are real VM loops with
    consistency checks, loads/stores, and port I/O: mutating this code
    produces the paper's observed spectrum of panics, CPU/MMU
    exceptions, and silent infinite loops caught by heartbeats. *)

val program : unit -> unit
(** The driver binary; args are [base; irq] as decimal strings. *)

val image_info : base:int -> int * int
(** [(origin, insn_count)] of the loaded code image, for the
    injector. *)

val memory_kb : int
(** Address-space size the driver needs. *)
