(** Generic DMA disk driver for the SATA-style controller — used for
    both the SATA disk (Fig. 8's repeatedly-killed driver) and the
    floppy instance (same controller model at a different base/speed).

    The driver is stateless (Sec. 6.2): block I/O is idempotent, so
    after a crash the file server simply reissues pending requests to
    the fresh instance; nothing needs the data store. *)

val program : unit -> unit
(** The driver binary; args are [base; irq] as decimal strings. *)

val image_info : base:int -> int * int
(** [(origin, insn_count)] of the loaded code image. *)

val memory_kb : int
(** Address-space size the driver needs (includes a 64 KB bounce
    buffer). *)

val max_request : int
(** Largest supported request in bytes (64 KB). *)
