module Isa = Resilix_vm.Isa
module Interp = Resilix_vm.Interp
module Memory = Resilix_kernel.Memory
module Api = Resilix_kernel.Sysif.Api

type t = { origin : int; blob : bytes; programs : (string * int * int) list (* name, addr, count *) }

let assemble ~origin named =
  let buf = Buffer.create 1024 in
  let programs =
    List.map
      (fun (name, code) ->
        let encoded = Isa.assemble code in
        let addr = origin + Buffer.length buf in
        Buffer.add_bytes buf encoded;
        (name, addr, Bytes.length encoded / Isa.instr_size))
      named
  in
  { origin; blob = Buffer.to_bytes buf; programs }

let origin t = t.origin
let insn_count t = Bytes.length t.blob / Isa.instr_size

let load t =
  let mem = Api.memory () in
  Memory.write mem ~addr:t.origin t.blob;
  List.map
    (fun (name, addr, count) -> (name, { Interp.base = addr; insn_count = count }))
    t.programs

let find programs name =
  match List.assoc_opt name programs with
  | Some p -> p
  | None -> invalid_arg ("Image.find: no program " ^ name)
