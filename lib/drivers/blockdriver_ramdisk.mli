(** RAM disk driver.

    The paper's footnote 1 describes a small (450-line) RAM disk
    driver providing trusted storage for driver binaries and policy
    scripts so that disk-driver recovery never depends on the disk
    that just failed.  This driver serves reads and writes from its
    own address space; its contents do not survive a restart — which
    is fine for its role as an immutable boot image. *)

val program : unit -> unit
(** The driver binary; single arg: capacity in KB. *)

val memory_needed_kb : size_kb:int -> int
(** Address-space size for a RAM disk of the given capacity. *)
