(** Audio driver (character device).

    Buffers sample data from applications and feeds the codec's FIFO
    from the low-water interrupt.  Driver state (the buffered samples)
    is deliberately *not* backed up in the data store: as Sec. 6.3
    explains, character-stream recovery is impossible in general, so a
    crash loses whatever was in flight and a recovery-aware player
    just hears a hiccup. *)

val program : unit -> unit
(** The driver binary; args are [base; irq] as decimal strings. *)

val image_info : base:int -> int * int
(** [(origin, insn_count)] of the loaded code image. *)

val memory_kb : int
(** Address-space size the driver needs. *)
