module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Errno = Resilix_proto.Errno
module Isa = Resilix_vm.Isa
module Interp = Resilix_vm.Interp

let image_origin = 0x1000
let data_buf = 0x10000
let max_request = 65536
let memory_kb = 192
let sector = 512

let r_id = 0
let r_lba = 1
let r_count = 2
let r_dmah = 3
let r_cmd = 4
let r_isr = 6

let isr_done = 0x1
let isr_err = 0x8

let code ~base =
  let p i = base + i in
  Isa.
    [
      ("init", [ In (R0, p r_id); Chkeq (R0, 0x5A7A); Movi (R4, 0x10); Out (p r_cmd, R4); Movi (R0, 0); Ret ]);
      ("status", [ In (R0, p 5); Chklt (R0, 16); Ret ]);
      (* io: r1 = lba, r2 = sector count, r3 = dma handle, r4 = command
         (0x20 read / 0x30 write). *)
      ( "io",
        [
          Chknz R2;
          Chklt (R2, 129);
          Out (p r_lba, R1);
          Out (p r_count, R2);
          Out (p r_dmah, R3);
          Out (p r_cmd, R4);
          Movi (R0, 0);
          Ret;
        ] );
      (* isr: read and ack the interrupt bits; bits returned in r0. *)
      ("isr", [ In (R0, p r_isr); Chklt (R0, 16); Movi (R5, 0x9); Out (p r_isr, R5); Ret ]);
    ]

let image ~base = Image.assemble ~origin:image_origin (code ~base)

let image_info ~base =
  let img = image ~base in
  (Image.origin img, Image.insn_count img)

let parse_args () =
  match Api.args () with
  | [ base; irq ] -> (int_of_string base, int_of_string irq)
  | _ -> Api.panic "disk: expected args [base; irq]"

type inflight = { src : Resilix_proto.Endpoint.t; grant : int; len : int; write : bool }

let program () =
  let base, irq = parse_args () in
  let programs = Image.load (image ~base) in
  let regs = Array.make 8 0 in
  let exec name ~r1 ~r2 ~r3 ~r4 =
    Array.fill regs 0 8 0;
    regs.(1) <- r1;
    regs.(2) <- r2;
    regs.(3) <- r3;
    regs.(4) <- r4;
    match Interp.run (Image.find programs name) ~regs with
    | r0 -> r0
    | exception Interp.Check_failed { detail; _ } ->
        Api.panic (Printf.sprintf "disk: consistency check failed in %s: %s" name detail)
    | exception Interp.Io_failed { port } ->
        Api.panic (Printf.sprintf "disk: unexpected I/O failure on port %d in %s" port name)
  in
  (match Api.irq_register irq with
  | Ok () -> ()
  | Error _ -> Api.panic "disk: cannot register IRQ");
  let h_data =
    match
      Api.grant_create ~for_:Resilix_proto.Wellknown.hardware ~base:data_buf ~len:max_request
        ~access:Sysif.Read_write
    with
    | Error _ -> Api.panic "disk: grant_create failed"
    | Ok g -> (
        match Api.iommu_map g with Ok h -> h | Error _ -> Api.panic "disk: iommu_map failed")
  in
  ignore (exec "init" ~r1:0 ~r2:0 ~r3:0 ~r4:0);
  (* Disks take a long time to come back after a reset (spin-up +
     IDENTIFY); poll the status register like a real driver. *)
  let rec wait_ready () =
    let bits = exec "status" ~r1:0 ~r2:0 ~r3:0 ~r4:0 in
    if bits land 1 <> 0 then begin
      Api.sleep 10_000;
      wait_ready ()
    end
  in
  wait_ready ();
  let inflight = ref None in
  let start ~src ~grant ~pos ~len ~write =
    if pos < 0 || len <= 0 || len > max_request || pos mod sector <> 0 || len mod sector <> 0 then
      Driver_lib.Reply (Error Errno.E_inval)
    else if !inflight <> None then Driver_lib.Reply (Error Errno.E_busy)
    else begin
      let proceed () =
        inflight := Some { src; grant; len; write };
        let cmd = if write then 0x30 else 0x20 in
        ignore (exec "io" ~r1:(pos / sector) ~r2:(len / sector) ~r3:h_data ~r4:cmd);
        Driver_lib.No_reply
      in
      if write then begin
        match Api.safecopy_from ~owner:src ~grant ~grant_off:0 ~local_addr:data_buf ~len with
        | Ok () -> proceed ()
        | Error e -> Driver_lib.Reply (Error e)
      end
      else proceed ()
    end
  in
  let handlers =
    {
      Driver_lib.default_dev_handlers with
      Driver_lib.dh_read =
        (fun ~src ~minor ~pos ~grant ~len ->
          if minor <> 0 then Driver_lib.Reply (Error Errno.E_nodev)
          else start ~src ~grant ~pos ~len ~write:false);
      dh_write =
        (fun ~src ~minor ~pos ~grant ~len ->
          if minor <> 0 then Driver_lib.Reply (Error Errno.E_nodev)
          else start ~src ~grant ~pos ~len ~write:true);
      dh_irq =
        (fun ~line:_ ->
          let bits = exec "isr" ~r1:0 ~r2:0 ~r3:0 ~r4:0 in
          match !inflight with
          | None -> ()
          | Some { src; grant; len; write } ->
              inflight := None;
              if bits land isr_err <> 0 then Api.panic "disk: device reported an error"
              else if bits land isr_done <> 0 then
                if write then Driver_lib.reply src (Ok len)
                else begin
                  match
                    Api.safecopy_to ~owner:src ~grant ~grant_off:0 ~local_addr:data_buf ~len
                  with
                  | Ok () -> Driver_lib.reply src (Ok len)
                  | Error _ -> () (* requester died; the FS will retry *)
                end);
    }
  in
  Driver_lib.run_dev handlers
