module Api = Resilix_kernel.Sysif.Api
module Memory = Resilix_kernel.Memory
module Message = Resilix_proto.Message
module Isa = Resilix_vm.Isa
module Interp = Resilix_vm.Interp

let image_origin = 0x1000
let tx_buf = 0x4000
let rx_buf = 0x4800
let buf_size = 2048
let memory_kb = 32
let max_frame = 1514

let r_id = 0
let r_cmd = 1
let r_config = 2
let r_isr = 3
let r_data = 4
let r_txgo = 5
let r_rxlen = 6
let r_rxdone = 7
let r_maclo = 8
let r_machi = 9

let isr_rx = 0x1
let isr_tx = 0x4
let isr_err = 0x8

let code ~base =
  let p i = base + i in
  Isa.
    [
      (* reset / poll / setup, like a real NIC bring-up sequence. *)
      ( "reset",
        [
          In (R0, p r_id);
          Chknz R0;
          Chkeq (R0, 0x8390);
          Movi (R4, 0x10);
          Out (p r_cmd, R4);
          Movi (R0, 0);
          Ret;
        ] );
      ("cmdstat", [ In (R0, p r_cmd); Chklt (R0, 0x20); Ret ]);
      (* setup: r3 = promisc; MAC returned in r5/r6. *)
      ( "setup",
        [
          Chklt (R3, 2);
          Out (p r_config, R3);
          Movi (R4, 0x0C);
          Out (p r_cmd, R4);
          In (R5, p r_maclo);
          Chknz R5;
          In (R6, p r_machi);
          Chklt (R6, 0x10000);
          Movi (R0, 0);
          Ret;
        ] );
      (* tx: r1 = byte length, r2 = staging buffer address.  Pushes
         ceil(len/4) words through the data port, then fires TXGO. *)
      ( "tx",
        [
          Chknz R1;
          Chklt (R1, max_frame + 1);
          Mov (R3, R1);
          Addi (R3, 3);
          Shr (R3, 2);
          Chknz R3;
          Chklt (R3, (max_frame / 4) + 2);
          Mov (R5, R2);
          Chkeq (R5, tx_buf);
          Label "loop";
          Jz (R3, "done");
          (* defensive driver style: validate loop state before
             touching memory or the device *)
          Chklt (R3, (max_frame / 4) + 2);
          Chklt (R5, tx_buf + buf_size);
          Load (R6, R5, 0);
          Out (p r_data, R6);
          Addi (R5, 4);
          Addi (R3, -1);
          Jmp "loop";
          Label "done";
          (* loop postconditions: counter drained, cursor in range *)
          Chkeq (R3, 0);
          Chklt (R5, tx_buf + buf_size + 4);
          Out (p r_txgo, R1);
          Movi (R0, 0);
          Ret;
        ] );
      (* rx: r2 = destination buffer address; returns frame length in
         r0 (0 = nothing pending).  Pops the frame word by word, then
         releases it and acks the interrupt. *)
      ( "rx",
        [
          In (R1, p r_rxlen);
          Jz (R1, "empty");
          Chklt (R1, buf_size + 1);
          Mov (R3, R1);
          Addi (R3, 3);
          Shr (R3, 2);
          Chknz R3;
          Chklt (R3, (buf_size / 4) + 2);
          Mov (R5, R2);
          Chkeq (R5, rx_buf);
          Label "rxloop";
          Jz (R3, "rxdone");
          Chklt (R3, (buf_size / 4) + 2);
          Chklt (R5, rx_buf + buf_size);
          In (R6, p r_data);
          Store (R5, 0, R6);
          Addi (R5, 4);
          Addi (R3, -1);
          Jmp "rxloop";
          Label "rxdone";
          Chkeq (R3, 0);
          Chklt (R5, rx_buf + buf_size + 4);
          Movi (R4, 1);
          Out (p r_rxdone, R4);
          Movi (R4, 1);
          Out (p r_isr, R4);
          Label "empty";
          Mov (R0, R1);
          Ret;
        ] );
      ("isr", [ In (R0, p r_isr); Chklt (R0, 16); Ret ]);
      ("txack", [ Movi (R4, isr_tx); Out (p r_isr, R4); Movi (R0, 0); Ret ]);
    ]

let image ~base = Image.assemble ~origin:image_origin (code ~base)

let image_info ~base =
  let img = image ~base in
  (Image.origin img, Image.insn_count img)

let parse_args () =
  match Api.args () with
  | [ base; irq ] -> (int_of_string base, int_of_string irq)
  | _ -> Api.panic "dp8390: expected args [base; irq]"

let program () =
  let base, irq = parse_args () in
  let programs = Image.load (image ~base) in
  let regs = Array.make 8 0 in
  let exec name ~r1 ~r2 ~r3 =
    Array.fill regs 0 8 0;
    regs.(1) <- r1;
    regs.(2) <- r2;
    regs.(3) <- r3;
    match Interp.run (Image.find programs name) ~regs with
    | r0 -> Ok r0
    | exception Interp.Check_failed { detail; _ } ->
        Api.panic (Printf.sprintf "dp8390: consistency check failed in %s: %s" name detail)
    | exception Interp.Io_failed { port } ->
        Api.panic (Printf.sprintf "dp8390: unexpected I/O failure on port %d in %s" port name)
  in
  (match Api.irq_register irq with
  | Ok () -> ()
  | Error _ -> Api.panic "dp8390: cannot register IRQ");
  let mem = Api.memory () in
  let inet = ref None in
  let rx_slot = ref None in
  let stash = Queue.create () in
  let stash_cap = 32 in
  let tx_busy = ref false in
  let tx_queue = Queue.create () in
  let deliver_rx () =
    match (!rx_slot, Queue.is_empty stash) with
    | Some (src, grant, maxlen), false ->
        let frame = Queue.pop stash in
        let len = min (Bytes.length frame) maxlen in
        Memory.write mem ~addr:rx_buf (Bytes.sub frame 0 len);
        (match Api.safecopy_to ~owner:src ~grant ~grant_off:0 ~local_addr:rx_buf ~len with
        | Ok () ->
            rx_slot := None;
            Driver_lib.task_reply src ~sent:false ~received:true ~read_len:len
        | Error _ -> rx_slot := None)
    | (Some _ | None), _ -> ()
  in
  let start_tx ~src ~grant ~len =
    match Api.safecopy_from ~owner:src ~grant ~grant_off:0 ~local_addr:tx_buf ~len with
    | Error _ -> ()
    | Ok () ->
        tx_busy := true;
        ignore (exec "tx" ~r1:len ~r2:tx_buf ~r3:0)
  in
  let pump_rx () =
    (* Drain every frame the device has buffered. *)
    let continue = ref true in
    while !continue do
      match exec "rx" ~r1:0 ~r2:rx_buf ~r3:0 with
      | Ok 0 | Error _ -> continue := false
      | Ok len ->
          let len = min len max_frame in
          let frame = Memory.read mem ~addr:rx_buf ~len in
          if Queue.length stash < stash_cap then Queue.push frame stash;
          deliver_rx ()
    done
  in
  let handlers =
    {
      Driver_lib.nh_conf =
        (fun ~src ~mode ->
          inet := Some src;
          let promisc = if mode.Message.promisc then 1 else 0 in
          match exec "reset" ~r1:0 ~r2:0 ~r3:0 with
          | Error e -> Error e
          | Ok _ -> (
              let rec wait_ready () =
                match exec "cmdstat" ~r1:0 ~r2:0 ~r3:0 with
                | Ok bits when bits land 0x10 <> 0 ->
                    Api.sleep 10_000;
                    wait_ready ()
                | other -> other
              in
              match wait_ready () with
              | Error e -> Error e
              | Ok _ -> (
                  match exec "setup" ~r1:0 ~r2:0 ~r3:promisc with
                  | Ok _ -> Ok (regs.(5) lor (regs.(6) lsl 32))
                  | Error e -> Error e)));
      nh_writev =
        (fun ~src ~grant ~len ->
          if len <= 0 || len > max_frame then Api.panic "dp8390: bogus frame length"
          else if !tx_busy then Queue.push (src, grant, len) tx_queue
          else start_tx ~src ~grant ~len);
      nh_readv =
        (fun ~src ~grant ~len ->
          rx_slot := Some (src, grant, len);
          deliver_rx ());
      nh_getstat = (fun ~src:_ -> (0, 0, 0));
      nh_irq =
        (fun ~line:_ ->
          match exec "isr" ~r1:0 ~r2:0 ~r3:0 with
          | Error _ -> ()
          | Ok bits ->
              if bits land isr_err <> 0 then Api.panic "dp8390: device reported an error";
              if bits land isr_rx <> 0 then pump_rx ();
              if bits land isr_tx <> 0 then begin
                ignore (exec "txack" ~r1:0 ~r2:0 ~r3:0);
                tx_busy := false;
                (match !inet with
                | Some dst -> Driver_lib.task_reply dst ~sent:true ~received:false ~read_len:0
                | None -> ());
                match Queue.take_opt tx_queue with
                | Some (src, grant, len) -> start_tx ~src ~grant ~len
                | None -> ()
              end);
    }
  in
  Driver_lib.run_net handlers
