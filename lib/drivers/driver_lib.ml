module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Signal = Resilix_proto.Signal
module Status = Resilix_proto.Status
module Metrics = Resilix_obs.Metrics

type outcome = Reply of (int, Errno.t) result | No_reply

type dev_handlers = {
  dh_open : minor:int -> (int, Errno.t) result;
  dh_close : minor:int -> (int, Errno.t) result;
  dh_read : src:Endpoint.t -> minor:int -> pos:int -> grant:int -> len:int -> outcome;
  dh_write : src:Endpoint.t -> minor:int -> pos:int -> grant:int -> len:int -> outcome;
  dh_ioctl : src:Endpoint.t -> minor:int -> op:string -> arg:int -> outcome;
  dh_irq : line:int -> unit;
  dh_alarm : unit -> unit;
}

let default_dev_handlers =
  {
    dh_open = (fun ~minor:_ -> Ok 0);
    dh_close = (fun ~minor:_ -> Ok 0);
    dh_read = (fun ~src:_ ~minor:_ ~pos:_ ~grant:_ ~len:_ -> Reply (Error Errno.E_inval));
    dh_write = (fun ~src:_ ~minor:_ ~pos:_ ~grant:_ ~len:_ -> Reply (Error Errno.E_inval));
    dh_ioctl = (fun ~src:_ ~minor:_ ~op:_ ~arg:_ -> Reply (Error Errno.E_inval));
    dh_irq = (fun ~line:_ -> ());
    dh_alarm = (fun () -> ());
  }

let reply src result = ignore (Api.send src (Message.Dev_reply { result }))

(* Handle the notifications every driver must understand.  The two
   recovery cases are the paper's "exactly 5 lines of code in the
   shared driver library" (Sec. 7.3). *)
let handle_common_notify ~src ~kind ~on_irq ~on_alarm =
  match kind with
  | Message.N_heartbeat_request -> ignore (Api.notify src Message.N_heartbeat_reply) (*@recovery*)
  | Message.N_health_probe -> ignore (Api.notify src Message.N_health_reply) (*@recovery*)
  | Message.N_sig Signal.Sig_term -> Api.exit (Status.Exited 0) (*@recovery*)
  | Message.N_irq line -> on_irq ~line
  | Message.N_alarm -> on_alarm ()
  | Message.N_sig _ | Message.N_heartbeat_reply | Message.N_health_reply | Message.N_ds_update ->
      ()

let run_dev handlers =
  (* One requests counter per driver, resolved to a handle once so the
     hot loop neither formats the name nor looks it up per message. *)
  let c_requests = Api.metric_counter (Printf.sprintf "driver.%s.requests" (Api.name ())) in
  let rec loop () =
    (match Api.receive Sysif.Any with
    | Error _ -> ()
    | Ok (Sysif.Rx_notify { src; kind }) ->
        handle_common_notify ~src ~kind ~on_irq:handlers.dh_irq ~on_alarm:handlers.dh_alarm
    | Ok (Sysif.Rx_msg { src; body }) -> begin
        Metrics.incr c_requests;
        match body with
        | Message.Dev_open { minor } -> reply src (handlers.dh_open ~minor)
        | Message.Dev_close { minor } -> reply src (handlers.dh_close ~minor)
        | Message.Dev_read { minor; pos; grant; len } -> begin
            match handlers.dh_read ~src ~minor ~pos ~grant ~len with
            | Reply r -> reply src r
            | No_reply -> ()
          end
        | Message.Dev_write { minor; pos; grant; len } -> begin
            match handlers.dh_write ~src ~minor ~pos ~grant ~len with
            | Reply r -> reply src r
            | No_reply -> ()
          end
        | Message.Dev_ioctl { minor; op; arg } -> begin
            match handlers.dh_ioctl ~src ~minor ~op ~arg with
            | Reply r -> reply src r
            | No_reply -> ()
          end
        | _ -> reply src (Error Errno.E_inval)
      end);
    loop ()
  in
  loop ()

type net_handlers = {
  nh_conf : src:Endpoint.t -> mode:Message.dl_mode -> (int, Errno.t) result;
  nh_writev : src:Endpoint.t -> grant:int -> len:int -> unit;
  nh_readv : src:Endpoint.t -> grant:int -> len:int -> unit;
  nh_getstat : src:Endpoint.t -> int * int * int;
  nh_irq : line:int -> unit;
}

let task_reply dst ~sent ~received ~read_len =
  ignore (Api.asend dst (Message.Dl_task_reply { flags = { sent; received }; read_len }))

let run_net handlers =
  let c_requests = Api.metric_counter (Printf.sprintf "driver.%s.requests" (Api.name ())) in
  let rec loop () =
    (match Api.receive Sysif.Any with
    | Error _ -> ()
    | Ok (Sysif.Rx_notify { src; kind }) ->
        handle_common_notify ~src ~kind ~on_irq:handlers.nh_irq ~on_alarm:(fun () -> ())
    | Ok (Sysif.Rx_msg { src; body }) -> begin
        Metrics.incr c_requests;
        match body with
        | Message.Dl_conf { mode } -> begin
            match handlers.nh_conf ~src ~mode with
            | Ok mac -> ignore (Api.asend src (Message.Dl_conf_reply { mac; result = Ok () }))
            | Error e ->
                ignore (Api.asend src (Message.Dl_conf_reply { mac = 0; result = Error e }))
          end
        | Message.Dl_writev { grant; len } -> handlers.nh_writev ~src ~grant ~len
        | Message.Dl_readv { grant; len } -> handlers.nh_readv ~src ~grant ~len
        | Message.Dl_getstat ->
            let frames_rx, frames_tx, errors = handlers.nh_getstat ~src in
            ignore (Api.asend src (Message.Dl_stat_reply { frames_rx; frames_tx; errors }))
        | _ -> ignore (Api.send src (Message.Err_reply Errno.E_inval))
      end);
    loop ()
  in
  loop ()
