(** Printer driver (character device).

    A write request is one job chunk; the driver feeds it into the
    printer FIFO at device speed and replies only when everything has
    been handed to the hardware.  If the driver dies mid-job the
    spooler's request fails with [E_dead_src_dst]; a recovery-aware
    spooler (the lpd example) reissues the job — accepting the
    possibility of duplicated output, per Sec. 6.3. *)

val program : unit -> unit
(** The driver binary; args are [base; irq] as decimal strings. *)

val image_info : base:int -> int * int
(** [(origin, insn_count)] of the loaded code image. *)

val memory_kb : int
(** Address-space size the driver needs. *)
