module Api = Resilix_kernel.Sysif.Api
module Memory = Resilix_kernel.Memory
module Errno = Resilix_proto.Errno
module Isa = Resilix_vm.Isa
module Interp = Resilix_vm.Interp

let image_origin = 0x1000
let stage_buf = 0x4000
let stage_size = 65536
let memory_kb = 128
let fifo_cap = 4096

let r_id = 0
let r_ctrl = 1
let r_data = 2
let r_isr = 4
let r_level = 5

let code ~base =
  let p i = base + i in
  Isa.
    [
      ( "init",
        [
          In (R0, p r_id);
          Chkeq (R0, 0x9817);
          Movi (R4, 0x10);
          Out (p r_ctrl, R4);
          Movi (R4, 0x1);
          Out (p r_ctrl, R4);
          Movi (R0, 0);
          Ret;
        ] );
      ("level", [ In (R0, p r_level); Chklt (R0, fifo_cap + 1); Ret ]);
      (* feed: r1 = source address, r2 = byte count. *)
      ( "feed",
        [
          Chklt (R2, stage_size + 1);
          Mov (R5, R1);
          Label "loop";
          Jz (R2, "done");
          Loadb (R6, R5, 0);
          Out (p r_data, R6);
          Addi (R5, 1);
          Addi (R2, -1);
          Jmp "loop";
          Label "done";
          Movi (R0, 0);
          Ret;
        ] );
      ("ack", [ In (R0, p r_isr); Out (p r_isr, R0); Ret ]);
    ]

let image ~base = Image.assemble ~origin:image_origin (code ~base)

let image_info ~base =
  let img = image ~base in
  (Image.origin img, Image.insn_count img)

let parse_args () =
  match Api.args () with
  | [ base; irq ] -> (int_of_string base, int_of_string irq)
  | _ -> Api.panic "printer: expected args [base; irq]"

type job = { src : Resilix_proto.Endpoint.t; data : bytes; mutable off : int }

let program () =
  let base, irq = parse_args () in
  let programs = Image.load (image ~base) in
  let regs = Array.make 8 0 in
  let exec name ~r1 ~r2 =
    Array.fill regs 0 8 0;
    regs.(1) <- r1;
    regs.(2) <- r2;
    match Interp.run (Image.find programs name) ~regs with
    | r0 -> r0
    | exception Interp.Check_failed { detail; _ } ->
        Api.panic (Printf.sprintf "printer: consistency check failed in %s: %s" name detail)
    | exception Interp.Io_failed { port } ->
        Api.panic (Printf.sprintf "printer: unexpected I/O failure on port %d" port)
  in
  (match Api.irq_register irq with
  | Ok () -> ()
  | Error _ -> Api.panic "printer: cannot register IRQ");
  ignore (exec "init" ~r1:0 ~r2:0);
  let mem = Api.memory () in
  let current = ref None in
  (* Feed as much of the current job as the FIFO can take; reply when
     the whole request has been handed to the hardware. *)
  let pump () =
    match !current with
    | None -> ()
    | Some job ->
        let level = exec "level" ~r1:0 ~r2:0 in
        let room = fifo_cap - level in
        let remaining = Bytes.length job.data - job.off in
        let take = min room remaining in
        if take > 0 then begin
          Memory.write mem ~addr:stage_buf (Bytes.sub job.data job.off take);
          ignore (exec "feed" ~r1:stage_buf ~r2:take);
          job.off <- job.off + take
        end;
        if job.off >= Bytes.length job.data then begin
          current := None;
          Driver_lib.reply job.src (Ok (Bytes.length job.data))
        end
  in
  let handlers =
    {
      Driver_lib.default_dev_handlers with
      Driver_lib.dh_write =
        (fun ~src ~minor ~pos:_ ~grant ~len ->
          if minor <> 0 then Driver_lib.Reply (Error Errno.E_nodev)
          else if len <= 0 || len > stage_size then Driver_lib.Reply (Error Errno.E_inval)
          else if !current <> None then Driver_lib.Reply (Error Errno.E_busy)
          else begin
            match Api.safecopy_from ~owner:src ~grant ~grant_off:0 ~local_addr:stage_buf ~len with
            | Error e -> Driver_lib.Reply (Error e)
            | Ok () ->
                current := Some { src; data = Memory.read mem ~addr:stage_buf ~len; off = 0 };
                pump ();
                Driver_lib.No_reply
          end);
      dh_irq =
        (fun ~line:_ ->
          ignore (exec "ack" ~r1:0 ~r2:0);
          pump ());
    }
  in
  Driver_lib.run_dev handlers
