(** Shared driver library — the main loop every driver links against.

    This is where the paper's reengineering claim lives (Sec. 7.3):
    making a driver recoverable required "exactly 5 lines of code in
    the shared driver library to handle the new request types", namely
    replying to heartbeat requests and exiting cleanly on SIGTERM.
    Those lines are marked with [@recovery] comments, which the sclc
    line counter uses to reproduce Fig. 9.

    Two loops are provided: the block/character device loop (MINIX
    [Dev_*] protocol, synchronous replies or deferred completion) and
    the network driver loop (MINIX [DL_*] protocol, asynchronous
    replies). *)

module Errno := Resilix_proto.Errno
module Endpoint := Resilix_proto.Endpoint
module Message := Resilix_proto.Message

(** Outcome of a device request handler. *)
type outcome =
  | Reply of (int, Errno.t) result  (** reply now *)
  | No_reply  (** the driver will {!reply} later (interrupt-driven completion) *)

(** Handlers for a block or character driver.  Any handler left as the
    default replies [E_inval]. *)
type dev_handlers = {
  dh_open : minor:int -> (int, Errno.t) result;
  dh_close : minor:int -> (int, Errno.t) result;
  dh_read : src:Endpoint.t -> minor:int -> pos:int -> grant:int -> len:int -> outcome;
  dh_write : src:Endpoint.t -> minor:int -> pos:int -> grant:int -> len:int -> outcome;
  dh_ioctl : src:Endpoint.t -> minor:int -> op:string -> arg:int -> outcome;
  dh_irq : line:int -> unit;
  dh_alarm : unit -> unit;
}

val default_dev_handlers : dev_handlers
(** Everything rejected / ignored. *)

val reply : Endpoint.t -> (int, Errno.t) result -> unit
(** Send a deferred [Dev_reply] to a caller whose request returned
    [No_reply]. *)

val run_dev : dev_handlers -> 'a
(** The block/character driver main loop.  Never returns (the process
    exits via SIGTERM or dies). *)

(** Handlers for a network driver (asynchronous [DL_*] protocol). *)
type net_handlers = {
  nh_conf : src:Endpoint.t -> mode:Message.dl_mode -> (int, Errno.t) result;
      (** (re)initialize the hardware; returns the MAC address *)
  nh_writev : src:Endpoint.t -> grant:int -> len:int -> unit;
  nh_readv : src:Endpoint.t -> grant:int -> len:int -> unit;
  nh_getstat : src:Endpoint.t -> int * int * int;  (** rx, tx, errors *)
  nh_irq : line:int -> unit;
}

val task_reply : Endpoint.t -> sent:bool -> received:bool -> read_len:int -> unit
(** Asynchronous completion notification to the network server. *)

val run_net : net_handlers -> 'a
(** The network driver main loop.  Never returns. *)
