(** RTL8139 Ethernet driver (DMA-based) — the network driver the
    paper's Fig. 7 experiment repeatedly kills during a wget transfer.

    The device-facing hot paths (init, transmit kick, ISR read, RX
    completion) are driver-VM bytecode loaded into the driver's own
    address space; everything else (grant management, IPC with the
    network server) is ordinary code using the shared driver library.

    The driver is stateless across restarts (Sec. 6.1): a fresh
    instance reinitializes the hardware when the network server sends
    [Dl_conf] after learning the new endpoint from the data store. *)

val program : unit -> unit
(** The driver binary.  Expects two args: I/O base and IRQ line (as
    decimal strings).  Register under a program key and start through
    the reincarnation server. *)

val image_info : base:int -> int * int
(** [(origin, insn_count)] of the code image this driver loads — what
    the fault injector needs to aim at it. *)

val memory_kb : int
(** Address-space size the driver needs. *)
