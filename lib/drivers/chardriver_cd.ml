module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Errno = Resilix_proto.Errno
module Isa = Resilix_vm.Isa
module Interp = Resilix_vm.Interp

let image_origin = 0x1000
let data_buf = 0x10000
let max_block = 65536
let memory_kb = 192

let r_id = 0
let r_cmd = 1
let r_dmah = 2
let r_len = 3
let r_go = 4
let r_isr = 6

let isr_done = 0x1
let isr_err = 0x8

let code ~base =
  let p i = base + i in
  Isa.
    [
      ("init", [ In (R0, p r_id); Chkeq (R0, 0xCDB0); Movi (R4, 0x10); Out (p r_cmd, R4); Movi (R0, 0); Ret ]);
      ("cmd", [ Out (p r_cmd, R1); Movi (R0, 0); Ret ]);
      (* burn: r1 = block length, r2 = dma handle. *)
      ( "burn",
        [
          Chknz R1;
          Chklt (R1, max_block + 1);
          Out (p r_dmah, R2);
          Out (p r_len, R1);
          Movi (R4, 1);
          Out (p r_go, R4);
          Movi (R0, 0);
          Ret;
        ] );
      ("isr", [ In (R0, p r_isr); Chklt (R0, 16); Movi (R5, 0x9); Out (p r_isr, R5); Ret ]);
    ]

let image ~base = Image.assemble ~origin:image_origin (code ~base)

let image_info ~base =
  let img = image ~base in
  (Image.origin img, Image.insn_count img)

let parse_args () =
  match Api.args () with
  | [ base; irq ] -> (int_of_string base, int_of_string irq)
  | _ -> Api.panic "cd: expected args [base; irq]"

let program () =
  let base, irq = parse_args () in
  let programs = Image.load (image ~base) in
  let regs = Array.make 8 0 in
  let exec name ~r1 ~r2 =
    Array.fill regs 0 8 0;
    regs.(1) <- r1;
    regs.(2) <- r2;
    match Interp.run (Image.find programs name) ~regs with
    | r0 -> r0
    | exception Interp.Check_failed { detail; _ } ->
        Api.panic (Printf.sprintf "cd: consistency check failed in %s: %s" name detail)
    | exception Interp.Io_failed { port } ->
        Api.panic (Printf.sprintf "cd: unexpected I/O failure on port %d" port)
  in
  (match Api.irq_register irq with
  | Ok () -> ()
  | Error _ -> Api.panic "cd: cannot register IRQ");
  ignore (exec "init" ~r1:0 ~r2:0);
  let h_data =
    match
      Api.grant_create ~for_:Resilix_proto.Wellknown.hardware ~base:data_buf ~len:max_block
        ~access:Sysif.Read_write
    with
    | Error _ -> Api.panic "cd: grant_create failed"
    | Ok g -> (
        match Api.iommu_map g with Ok h -> h | Error _ -> Api.panic "cd: iommu_map failed")
  in
  let inflight = ref None in
  let handlers =
    {
      Driver_lib.default_dev_handlers with
      Driver_lib.dh_ioctl =
        (fun ~src:_ ~minor:_ ~op ~arg:_ ->
          match op with
          | "burn_start" ->
              ignore (exec "cmd" ~r1:0x01 ~r2:0);
              Driver_lib.Reply (Ok 0)
          | "burn_finish" ->
              ignore (exec "cmd" ~r1:0x02 ~r2:0);
              Driver_lib.Reply (Ok 0)
          | _ -> Driver_lib.Reply (Error Errno.E_inval));
      dh_write =
        (fun ~src ~minor ~pos:_ ~grant ~len ->
          if minor <> 0 then Driver_lib.Reply (Error Errno.E_nodev)
          else if len <= 0 || len > max_block then Driver_lib.Reply (Error Errno.E_inval)
          else if !inflight <> None then Driver_lib.Reply (Error Errno.E_busy)
          else begin
            match Api.safecopy_from ~owner:src ~grant ~grant_off:0 ~local_addr:data_buf ~len with
            | Error e -> Driver_lib.Reply (Error e)
            | Ok () ->
                inflight := Some (src, len);
                ignore (exec "burn" ~r1:len ~r2:h_data);
                Driver_lib.No_reply
          end);
      dh_irq =
        (fun ~line:_ ->
          let bits = exec "isr" ~r1:0 ~r2:0 in
          match !inflight with
          | None ->
              (* An error interrupt outside a burn (e.g. the gap
                 watchdog ruining the disc) needs no action here; the
                 next request will observe it. *)
              ()
          | Some (src, len) ->
              inflight := None;
              if bits land isr_err <> 0 then Driver_lib.reply src (Error Errno.E_io)
              else if bits land isr_done <> 0 then Driver_lib.reply src (Ok len));
    }
  in
  Driver_lib.run_dev handlers
