(** Helper for laying out a driver's VM programs as one contiguous
    code image ("text segment") in its address space.

    Keeping all programs contiguous matters for fault injection: the
    injector mutates a random instruction of the whole image, exactly
    like the binary-mutation injectors the paper builds on. *)

type t
(** An assembled multi-program image. *)

val assemble : origin:int -> (string * Resilix_vm.Isa.instr list) list -> t
(** Assemble the named programs back to back starting at [origin]. *)

val origin : t -> int
(** Address of the first instruction. *)

val insn_count : t -> int
(** Total encoded instructions across all programs. *)

val load : t -> (string * Resilix_vm.Interp.program) list
(** Copy the image into the calling process's memory and return the
    per-program handles.  Must run inside a fiber. *)

val find : (string * Resilix_vm.Interp.program) list -> string -> Resilix_vm.Interp.program
(** Look up a loaded program by name.  @raise Invalid_argument if absent. *)
