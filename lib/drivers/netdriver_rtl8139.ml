module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Memory = Resilix_kernel.Memory
module Message = Resilix_proto.Message
module Isa = Resilix_vm.Isa
module Interp = Resilix_vm.Interp

(* Address-space layout. *)
let image_origin = 0x1000
let tx_buf = 0x4000
let rx_buf = 0x4800
let buf_size = 2048
let memory_kb = 32
let max_frame = 1514

(* Register indices (ports are base + index). *)
let r_id = 0
let r_cmd = 1
let r_config = 2
let r_isr = 3
let r_txh = 4
let r_txlen = 5
let r_txgo = 6
let r_rxh = 7
let r_rxcap = 8
let r_rxlen = 9
let r_maclo = 10
let r_machi = 11

let isr_rx = 0x1
let isr_tx = 0x4
let isr_err = 0x8

(* The driver's device-facing code, in driver-VM assembly. *)
let code ~base =
  let p i = base + i in
  Isa.
    [
      (* reset: check the chip id and start a hardware reset; the
         OCaml side then polls "cmdstat" until the reset completes. *)
      ( "reset",
        [ In (R0, p r_id); Chkeq (R0, 0x8139); Movi (R4, 0x10); Out (p r_cmd, R4); Movi (R0, 0); Ret ] );
      ("cmdstat", [ In (R0, p r_cmd); Chklt (R0, 0x20); Ret ]);
      (* setup: r1 = rx dma handle, r2 = rx capacity, r3 = promisc.
         Returns MAC in r5 (low) / r6 (high). *)
      ( "setup",
        [
          Out (p r_config, R3);
          Out (p r_rxh, R1);
          Out (p r_rxcap, R2);
          Movi (R4, 0x0C);
          Out (p r_cmd, R4);
          In (R5, p r_maclo);
          In (R6, p r_machi);
          Movi (R0, 0);
          Ret;
        ] );
      (* tx: r1 = frame length, r2 = tx dma handle. *)
      ( "tx",
        [
          Chknz R1;
          Chklt (R1, max_frame + 1);
          Out (p r_txh, R2);
          Out (p r_txlen, R1);
          Movi (R4, 1);
          Out (p r_txgo, R4);
          Movi (R0, 0);
          Ret;
        ] );
      (* isr: returns pending interrupt bits in r0 (no ack). *)
      ("isr", [ In (R0, p r_isr); Chklt (R0, 16); Ret ]);
      (* rxlen: returns the delivered frame length in r0. *)
      ("rxlen", [ In (R0, p r_rxlen); Chknz R0; Chklt (R0, buf_size + 1); Ret ]);
      ("rxack", [ Movi (R4, isr_rx); Out (p r_isr, R4); Movi (R0, 0); Ret ]);
      ("txack", [ Movi (R4, isr_tx); Out (p r_isr, R4); Movi (R0, 0); Ret ]);
    ]

let image ~base = Image.assemble ~origin:image_origin (code ~base)

let image_info ~base =
  let img = image ~base in
  (Image.origin img, Image.insn_count img)

let parse_args () =
  match Api.args () with
  | [ base; irq ] -> (int_of_string base, int_of_string irq)
  | _ -> Api.panic "rtl8139: expected args [base; irq]"

let program () =
  let base, irq = parse_args () in
  let programs = Image.load (image ~base) in
  let run name regs = Interp.run (Image.find programs name) ~regs in
  let regs = Array.make 8 0 in
  let exec name ~r1 ~r2 ~r3 =
    Array.fill regs 0 8 0;
    regs.(1) <- r1;
    regs.(2) <- r2;
    regs.(3) <- r3;
    match run name regs with
    | r0 -> Ok r0
    | exception Interp.Check_failed { detail; _ } ->
        Api.panic (Printf.sprintf "rtl8139: consistency check failed in %s: %s" name detail)
    | exception Interp.Io_failed { port } ->
        Api.panic (Printf.sprintf "rtl8139: unexpected I/O failure on port %d in %s" port name)
  in
  (match Api.irq_register irq with
  | Ok () -> ()
  | Error _ -> Api.panic "rtl8139: cannot register IRQ");
  (* DMA setup: grant the device access to the two frame buffers. *)
  let dma_handle ~addr =
    match
      Api.grant_create ~for_:Resilix_proto.Wellknown.hardware ~base:addr ~len:buf_size
        ~access:Sysif.Read_write
    with
    | Error _ -> Api.panic "rtl8139: grant_create failed"
    | Ok g -> (
        match Api.iommu_map g with
        | Ok h -> h
        | Error _ -> Api.panic "rtl8139: iommu_map failed")
  in
  let h_tx = dma_handle ~addr:tx_buf in
  let h_rx = dma_handle ~addr:rx_buf in
  let mem = Api.memory () in
  (* Mutable driver state; all lost (by design) on a crash. *)
  let inet = ref None in
  let rx_slot = ref None (* (src, grant, maxlen) posted by INET *) in
  let stash = Queue.create () in
  let stash_cap = 32 in
  let tx_busy = ref false in
  let tx_queue = Queue.create () in
  let deliver_rx () =
    match (!rx_slot, Queue.is_empty stash) with
    | Some (src, grant, maxlen), false ->
        let frame = Queue.pop stash in
        let len = min (Bytes.length frame) maxlen in
        Memory.write mem ~addr:rx_buf (Bytes.sub frame 0 len);
        (match Api.safecopy_to ~owner:src ~grant ~grant_off:0 ~local_addr:rx_buf ~len with
        | Ok () ->
            rx_slot := None;
            Driver_lib.task_reply src ~sent:false ~received:true ~read_len:len
        | Error _ ->
            (* The network server restarted underneath us; drop. *)
            rx_slot := None)
    | (Some _ | None), _ -> ()
  in
  let start_tx ~src ~grant ~len =
    match Api.safecopy_from ~owner:src ~grant ~grant_off:0 ~local_addr:tx_buf ~len with
    | Error _ -> () (* requester is gone *)
    | Ok () ->
        tx_busy := true;
        ignore (exec "tx" ~r1:len ~r2:h_tx ~r3:0)
  in
  let handlers =
    {
      Driver_lib.nh_conf =
        (fun ~src ~mode ->
          inet := Some src;
          let promisc = if mode.Message.promisc then 1 else 0 in
          match exec "reset" ~r1:0 ~r2:0 ~r3:0 with
          | Error e -> Error e
          | Ok _ -> (
              (* The chip takes real time to come out of reset; poll
                 like a real driver would. *)
              let rec wait_ready () =
                match exec "cmdstat" ~r1:0 ~r2:0 ~r3:0 with
                | Ok bits when bits land 0x10 <> 0 ->
                    Api.sleep 10_000;
                    wait_ready ()
                | other -> other
              in
              match wait_ready () with
              | Error e -> Error e
              | Ok _ -> (
                  match exec "setup" ~r1:h_rx ~r2:buf_size ~r3:promisc with
                  | Ok _ -> Ok (regs.(5) lor (regs.(6) lsl 32))
                  | Error e -> Error e)));
      nh_writev =
        (fun ~src ~grant ~len ->
          if len <= 0 || len > max_frame then
            Api.panic "rtl8139: network server sent a bogus frame length"
          else if !tx_busy then Queue.push (src, grant, len) tx_queue
          else start_tx ~src ~grant ~len);
      nh_readv =
        (fun ~src ~grant ~len ->
          rx_slot := Some (src, grant, len);
          deliver_rx ());
      nh_getstat = (fun ~src:_ -> (0, 0, 0));
      nh_irq =
        (fun ~line:_ ->
          match exec "isr" ~r1:0 ~r2:0 ~r3:0 with
          | Error _ -> ()
          | Ok bits ->
              if bits land isr_err <> 0 then Api.panic "rtl8139: device reported an error";
              if bits land isr_rx <> 0 then begin
                match exec "rxlen" ~r1:0 ~r2:0 ~r3:0 with
                | Ok len ->
                    let frame = Memory.read mem ~addr:rx_buf ~len in
                    ignore (exec "rxack" ~r1:0 ~r2:0 ~r3:0);
                    if Queue.length stash < stash_cap then Queue.push frame stash;
                    deliver_rx ()
                | Error _ -> ()
              end;
              if bits land isr_tx <> 0 then begin
                ignore (exec "txack" ~r1:0 ~r2:0 ~r3:0);
                tx_busy := false;
                (match !inet with
                | Some dst -> Driver_lib.task_reply dst ~sent:true ~received:false ~read_len:0
                | None -> ());
                match Queue.take_opt tx_queue with
                | Some (src, grant, len) -> start_tx ~src ~grant ~len
                | None -> ()
              end);
    }
  in
  Driver_lib.run_net handlers
