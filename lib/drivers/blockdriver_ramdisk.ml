module Api = Resilix_kernel.Sysif.Api
module Errno = Resilix_proto.Errno

let data_base = 0x4000

let memory_needed_kb ~size_kb = size_kb + 32

let parse_args () =
  match Api.args () with
  | [ size_kb ] -> int_of_string size_kb * 1024
  | _ -> Api.panic "ramdisk: expected arg [size_kb]"

let program () =
  let size = parse_args () in
  let handlers =
    {
      Driver_lib.default_dev_handlers with
      Driver_lib.dh_read =
        (fun ~src ~minor ~pos ~grant ~len ->
          if minor <> 0 then Driver_lib.Reply (Error Errno.E_nodev)
          else if pos < 0 || len < 0 || pos + len > size then Driver_lib.Reply (Error Errno.E_range)
          else
            Driver_lib.Reply
              (match
                 Api.safecopy_to ~owner:src ~grant ~grant_off:0 ~local_addr:(data_base + pos) ~len
               with
              | Ok () -> Ok len
              | Error e -> Error e));
      dh_write =
        (fun ~src ~minor ~pos ~grant ~len ->
          if minor <> 0 then Driver_lib.Reply (Error Errno.E_nodev)
          else if pos < 0 || len < 0 || pos + len > size then Driver_lib.Reply (Error Errno.E_range)
          else
            Driver_lib.Reply
              (match
                 Api.safecopy_from ~owner:src ~grant ~grant_off:0 ~local_addr:(data_base + pos)
                   ~len
               with
              | Ok () -> Ok len
              | Error e -> Error e));
    }
  in
  Driver_lib.run_dev handlers
