(** CD burner driver (character device).

    Sec. 6.3's example of an unrecoverable failure: if this driver
    dies during a burn session the laser stops, the burn-gap watchdog
    in the device ruins the disc, and the burning application must
    report the failure to the user — no amount of restarting helps.

    Protocol: ioctl ["burn_start"] opens a session, each write burns
    one block, ioctl ["burn_finish"] closes it. *)

val program : unit -> unit
(** The driver binary; args are [base; irq] as decimal strings. *)

val image_info : base:int -> int * int
(** [(origin, insn_count)] of the loaded code image. *)

val memory_kb : int
(** Address-space size the driver needs. *)
