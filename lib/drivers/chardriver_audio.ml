module Api = Resilix_kernel.Sysif.Api
module Memory = Resilix_kernel.Memory
module Errno = Resilix_proto.Errno
module Isa = Resilix_vm.Isa
module Interp = Resilix_vm.Interp

let image_origin = 0x1000
let stage_buf = 0x4000
let stage_size = 65536
let memory_kb = 128
let fifo_cap = 16_384
let spool_cap = 262_144

let r_id = 0
let r_ctrl = 1
let r_data = 2
let r_level = 3
let r_isr = 4

let code ~base =
  let p i = base + i in
  Isa.
    [
      ("init", [ In (R0, p r_id); Chkeq (R0, 0xAD10); Movi (R4, 0x10); Out (p r_ctrl, R4); Movi (R0, 0); Ret ]);
      ("ctrl", [ Out (p r_ctrl, R1); Movi (R0, 0); Ret ]);
      ("level", [ In (R0, p r_level); Chklt (R0, fifo_cap + 1); Ret ]);
      (* feed: r1 = source address, r2 = word count. *)
      ( "feed",
        [
          Chklt (R2, (stage_size / 4) + 1);
          Mov (R5, R1);
          Label "loop";
          Jz (R2, "done");
          Load (R6, R5, 0);
          Out (p r_data, R6);
          Addi (R5, 4);
          Addi (R2, -1);
          Jmp "loop";
          Label "done";
          Movi (R0, 0);
          Ret;
        ] );
      ("ack", [ In (R0, p r_isr); Out (p r_isr, R0); Ret ]);
    ]

let image ~base = Image.assemble ~origin:image_origin (code ~base)

let image_info ~base =
  let img = image ~base in
  (Image.origin img, Image.insn_count img)

let parse_args () =
  match Api.args () with
  | [ base; irq ] -> (int_of_string base, int_of_string irq)
  | _ -> Api.panic "audio: expected args [base; irq]"

let program () =
  let base, irq = parse_args () in
  let programs = Image.load (image ~base) in
  let regs = Array.make 8 0 in
  let exec name ~r1 ~r2 =
    Array.fill regs 0 8 0;
    regs.(1) <- r1;
    regs.(2) <- r2;
    match Interp.run (Image.find programs name) ~regs with
    | r0 -> r0
    | exception Interp.Check_failed { detail; _ } ->
        Api.panic (Printf.sprintf "audio: consistency check failed in %s: %s" name detail)
    | exception Interp.Io_failed { port } ->
        Api.panic (Printf.sprintf "audio: unexpected I/O failure on port %d" port)
  in
  (match Api.irq_register irq with
  | Ok () -> ()
  | Error _ -> Api.panic "audio: cannot register IRQ");
  ignore (exec "init" ~r1:0 ~r2:0);
  let mem = Api.memory () in
  let spool = Queue.create () in
  let spooled = ref 0 in
  let playing = ref false in
  (* Push spooled sample chunks into the codec FIFO while it has room. *)
  let pump () =
    let continue = ref true in
    while !continue && not (Queue.is_empty spool) do
      let level = exec "level" ~r1:0 ~r2:0 in
      let room = fifo_cap - level in
      if room < 4 then continue := false
      else begin
        let chunk = Queue.peek spool in
        let take = min (Bytes.length chunk) (room land lnot 3) in
        if take = 0 then continue := false
        else begin
          Memory.write mem ~addr:stage_buf (Bytes.sub chunk 0 take);
          ignore (exec "feed" ~r1:stage_buf ~r2:((take + 3) / 4));
          spooled := !spooled - take;
          if take = Bytes.length chunk then ignore (Queue.pop spool)
          else begin
            ignore (Queue.pop spool);
            let rest = Bytes.sub chunk take (Bytes.length chunk - take) in
            (* Preserve ordering: re-queue the remainder at the front
               by rebuilding (queues are short). *)
            let others = List.of_seq (Queue.to_seq spool) in
            Queue.clear spool;
            Queue.push rest spool;
            List.iter (fun c -> Queue.push c spool) others
          end
        end
      end
    done
  in
  let handlers =
    {
      Driver_lib.default_dev_handlers with
      Driver_lib.dh_write =
        (fun ~src ~minor ~pos:_ ~grant ~len ->
          if minor <> 0 then Driver_lib.Reply (Error Errno.E_nodev)
          else if len <= 0 || len > stage_size then Driver_lib.Reply (Error Errno.E_inval)
          else if !spooled + len > spool_cap then Driver_lib.Reply (Error Errno.E_again)
          else begin
            match Api.safecopy_from ~owner:src ~grant ~grant_off:0 ~local_addr:stage_buf ~len with
            | Error e -> Driver_lib.Reply (Error e)
            | Ok () ->
                Queue.push (Memory.read mem ~addr:stage_buf ~len) spool;
                spooled := !spooled + len;
                if not !playing then begin
                  playing := true;
                  ignore (exec "ctrl" ~r1:1 ~r2:0)
                end;
                pump ();
                Driver_lib.Reply (Ok len)
          end);
      dh_ioctl =
        (fun ~src:_ ~minor:_ ~op ~arg:_ ->
          match op with
          | "start" ->
              playing := true;
              ignore (exec "ctrl" ~r1:1 ~r2:0);
              Driver_lib.Reply (Ok 0)
          | "stop" ->
              playing := false;
              ignore (exec "ctrl" ~r1:0 ~r2:0);
              Driver_lib.Reply (Ok 0)
          | _ -> Driver_lib.Reply (Error Errno.E_inval));
      dh_irq =
        (fun ~line:_ ->
          ignore (exec "ack" ~r1:0 ~r2:0);
          pump ());
    }
  in
  Driver_lib.run_dev handlers
