(** Typed observability events.

    Every interesting state transition in the simulated system — IPC
    failures, safecopy faults, IRQ drops, process lifecycle, defect
    detection, policy decisions, restarts, data-store publications,
    recovery retries — is recorded as a variant carrying its real
    operands (endpoints, defect classes, counts) and a virtual
    timestamp.  The free-form [Log] constructor remains for narrative
    messages; [message] renders any payload to a one-line string for
    the stderr echo and for legacy substring queries. *)

module Endpoint := Resilix_proto.Endpoint
module Errno := Resilix_proto.Errno
module Status := Resilix_proto.Status

type level = Debug | Info | Warn | Error

(** Which IPC primitive an {!Ipc} event describes. *)
type ipc_kind = Send | Sendrec | Async_send | Notify

type payload =
  | Ipc of {
      kind : ipc_kind;
      src : Endpoint.t;
      dst : Endpoint.t;
      errno : Errno.t option;  (** [None] = delivered; [Some e] = failed with [e] *)
    }
  | Safecopy of {
      caller : Endpoint.t;
      owner : Endpoint.t;
      bytes : int;
      errno : Errno.t option;
    }
  | Irq of { line : int; delivered : bool }
  | Spawn of { ep : Endpoint.t; name : string; program : string }
  | Exit of { ep : Endpoint.t; name : string; status : Status.exit_status }
  | Defect of { component : string; defect : Status.defect; repetition : int }
      (** RS detected a failure: the start of a recovery (Sec. 5.1). *)
  | Policy_decision of { component : string; policy : string; decision : string }
      (** What the recovery policy chose to do (Sec. 5.2). *)
  | Policy_action of { component : string; action : string; repetition : int }
      (** One interpreted step of a policy script, in execution order —
          lets experiments and DST traces see which action fired. *)
  | Breaker of { component : string; from_state : string; to_state : string }
      (** A circuit-breaker state transition (policy v2). *)
  | Restart of { component : string; ep : Endpoint.t; pid : int }
      (** A restarted component is back up with a fresh endpoint. *)
  | Ds_publish of { key : string }
      (** The data store accepted a publication (drives reintegration). *)
  | Retry of { component : string; operation : string; count : int }
      (** A dependent re-issued work after a reincarnation (Sec. 6). *)
  | Heartbeat_miss of { component : string; misses : int }
  | Log of { text : string }  (** free-form narrative *)

type t = {
  time : int;  (** virtual time (microseconds) at which the event was emitted *)
  level : level;
  subsystem : string;  (** emitter, e.g. ["kernel"], ["rs"], ["inet"] *)
  payload : payload;
}

val level_tag : level -> string
(** Three-letter tag, e.g. ["INF"]. *)

val kind_name : ipc_kind -> string

val message : payload -> string
(** One-line rendering of the payload; stable enough for legacy
    substring matching (e.g. exits render as
    ["process NAME (EP) terminated: killed(SIGKILL)"]). *)

val pp : Format.formatter -> t -> unit
(** ["[TIME] LVL subsystem message"]. *)

val shape_add : int64 -> t -> int64
(** Fold one event's schedule-shape contribution into an FNV-1a
    accumulator (see {!Resilix_checksum.Fnv}).  Only recovery-relevant
    payloads contribute — defects, policy decisions/actions, breaker
    transitions, restarts, heartbeat misses, DS publications — and
    only their stable identity fields (component/key/state names),
    never timestamps, endpoints, pids or counters.  Folding a run's
    trace in order yields its event-order fingerprint, one half of
    the DST coverage signature (the other is
    {!Resilix_obs.Span.shape_fingerprint}). *)

val to_json : t -> string
(** One JSON object (single line) describing the event. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)
