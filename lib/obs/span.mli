(** Causal recovery spans.

    A span is opened by the reincarnation server the instant a defect
    is detected and closed when the component has been respawned and
    republished; in between, each recovery phase is marked with its
    virtual timestamp.  The closed spans of a run give per-component
    MTTR distributions, broken down by phase — this is the data behind
    the paper's recovery-latency figures, replacing the hand-rolled
    [detected_at]/[recovered_at] pairs. *)

module Status := Resilix_proto.Status

(** Recovery phases, in causal order. *)
type phase =
  | Detect  (** RS learned of the failure (exit status, missed heartbeat, complaint). *)
  | Policy  (** The recovery policy decided what to do. *)
  | Respawn  (** A fresh process incarnation exists. *)
  | Republish  (** The new endpoint reached the data store. *)
  | Reopen  (** A dependent re-bound to the new incarnation. *)

val phase_name : phase -> string

type span = {
  id : int;
  component : string;
  defect : Status.defect;
  repetition : int;  (** how many failures this component has had, 1-based *)
  opened_at : int;  (** virtual time of detection *)
  mutable marks : (phase * int) list;  (** newest first *)
  mutable closed_at : int option;
  mutable span_tags : (string * string) list;  (** free-form annotations, last write wins *)
}

type t
(** A collector accumulating spans for a whole run. *)

val create : unit -> t

val open_span : t -> component:string -> defect:Status.defect -> repetition:int -> now:int -> span
(** Start a recovery span (records a [Detect] mark at [now]). *)

val mark : span -> phase -> now:int -> unit
(** Timestamp a phase.  Re-marking a phase keeps the first mark. *)

val tag : span -> string -> string -> unit
(** Annotate the span with a key/value tag (e.g. ["policy"],
    ["breaker"]); re-tagging a key replaces its value. *)

val tags : span -> (string * string) list
(** All tags, sorted by key (deterministic for export). *)

val mark_component : t -> string -> phase -> now:int -> unit
(** Mark the component's most recent span.  Only open spans accept
    marks — except [Reopen], which may also be recorded once on a
    closed span (dependents re-bind after RS declares recovery
    complete).  No-op when the component has no eligible span. *)

val close : span -> now:int -> unit
(** Recovery complete.  Closing twice keeps the first close. *)

val close_component : t -> string -> now:int -> unit
(** Close the component's most recent span, if open. *)

val current : t -> string -> span option
(** The component's most recent still-open span. *)

val spans : t -> span list
(** Every span ever opened, oldest first. *)

val open_spans : t -> span list
(** The spans still open (recovery began but never completed),
    oldest first. *)

val incomplete : ?within:int -> t -> span list
(** Spans that violate recovery-span completeness, oldest first:
    never closed, or — when [within] is given — closed more than
    [within] us after detection.  The DST invariant probe. *)

val complete : ?within:int -> t -> bool
(** [incomplete ?within t = []]. *)

val concat : t list -> t
(** One collector holding every source's spans — {!spans} of the
    result lists the sources in order, each source's spans oldest
    first.  Used to aggregate per-trial collectors into one campaign
    report; ids keep their per-source values (they are only unique
    within a source). *)

val shape_fingerprint : t -> int64
(** Order-sensitive FNV-1a fingerprint of the run's recovery-span
    {e shape}: for every span in order, its component, defect kind,
    repetition, marked phases (in causal order) and open/closed state
    — but no timestamps.  Two runs recovering the same way at
    different speeds share a fingerprint; a different failure order,
    defect, phase set or an unclosed span changes it.  The DST
    coverage-signature probe. *)

val total_us : span -> int option
(** [closed_at - opened_at]; [None] while the span is open. *)

val phases : span -> (phase * int) list
(** Marks as deltas from [opened_at], in causal phase order. *)

(** Per-component MTTR summary over the closed spans. *)
type mttr = {
  m_component : string;
  n : int;  (** closed spans *)
  mean_us : int;
  min_us : int;
  max_us : int;
  p95_us : int;
  phase_mean_us : (phase * int) list;
      (** mean delta from detection for each phase that was ever marked *)
}

val report : t -> mttr list
(** One entry per component with at least one closed span, sorted by
    component name. *)
