module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Signal = Resilix_proto.Signal
module Status = Resilix_proto.Status

type level = Debug | Info | Warn | Error

type ipc_kind = Send | Sendrec | Async_send | Notify

type payload =
  | Ipc of { kind : ipc_kind; src : Endpoint.t; dst : Endpoint.t; errno : Errno.t option }
  | Safecopy of { caller : Endpoint.t; owner : Endpoint.t; bytes : int; errno : Errno.t option }
  | Irq of { line : int; delivered : bool }
  | Spawn of { ep : Endpoint.t; name : string; program : string }
  | Exit of { ep : Endpoint.t; name : string; status : Status.exit_status }
  | Defect of { component : string; defect : Status.defect; repetition : int }
  | Policy_decision of { component : string; policy : string; decision : string }
  | Policy_action of { component : string; action : string; repetition : int }
  | Breaker of { component : string; from_state : string; to_state : string }
  | Restart of { component : string; ep : Endpoint.t; pid : int }
  | Ds_publish of { key : string }
  | Retry of { component : string; operation : string; count : int }
  | Heartbeat_miss of { component : string; misses : int }
  | Log of { text : string }

type t = { time : int; level : level; subsystem : string; payload : payload }

let level_tag = function Debug -> "DBG" | Info -> "INF" | Warn -> "WRN" | Error -> "ERR"

let kind_name = function
  | Send -> "send"
  | Sendrec -> "sendrec"
  | Async_send -> "asend"
  | Notify -> "notify"

let status_string = function
  | Status.Exited code -> Printf.sprintf "exited(%d)" code
  | Status.Panicked msg -> Printf.sprintf "panicked(%s)" msg
  | Status.Killed signal -> Printf.sprintf "killed(%s)" (Signal.to_string signal)

let errno_suffix = function
  | None -> "ok"
  | Some e -> Errno.to_string e

let message = function
  | Ipc { kind; src; dst; errno } ->
      Printf.sprintf "ipc %s %s -> %s: %s" (kind_name kind) (Endpoint.to_string src)
        (Endpoint.to_string dst) (errno_suffix errno)
  | Safecopy { caller; owner; bytes; errno } ->
      Printf.sprintf "safecopy %s <-> %s (%d bytes): %s" (Endpoint.to_string caller)
        (Endpoint.to_string owner) bytes (errno_suffix errno)
  | Irq { line; delivered } ->
      Printf.sprintf "irq %d %s" line (if delivered then "delivered" else "dropped")
  | Spawn { ep; name; program } ->
      Printf.sprintf "spawn %s as %s program=%s" name (Endpoint.to_string ep) program
  | Exit { ep; name; status } ->
      Printf.sprintf "process %s (%s) terminated: %s" name (Endpoint.to_string ep)
        (status_string status)
  | Defect { component; defect; repetition } ->
      Printf.sprintf "defect in %s: %s (failure #%d)" component (Status.defect_name defect)
        repetition
  | Policy_decision { component; policy; decision } ->
      Printf.sprintf "policy %s for %s: %s" policy component decision
  | Policy_action { component; action; repetition } ->
      Printf.sprintf "policy action %s for %s (failure #%d)" action component repetition
  | Breaker { component; from_state; to_state } ->
      Printf.sprintf "breaker for %s: %s -> %s" component from_state to_state
  | Restart { component; ep; pid } ->
      Printf.sprintf "service %s up as %s (pid %d)" component (Endpoint.to_string ep) pid
  | Ds_publish { key } -> Printf.sprintf "ds publish %s" key
  | Retry { component; operation; count } ->
      Printf.sprintf "retry %s after %s reincarnation (%d pending)" operation component count
  | Heartbeat_miss { component; misses } ->
      Printf.sprintf "%s missed %d heartbeats" component misses
  | Log { text } -> text

(* DST coverage probe: fold one event's schedule-shape contribution
   into an FNV-1a accumulator.  Only recovery-relevant payloads
   contribute (defects, policy decisions/actions, breaker transitions,
   restarts, heartbeat misses, DS publications) and only their stable
   identity fields — component/key/state names — never timestamps,
   endpoints, pids or counters, so the fingerprint captures the
   *order and kind* of recovery events, not the speed of one
   particular schedule.  Fields are 0x1f-separated against aliasing. *)
let fp h s = Resilix_checksum.Fnv.update_string (Resilix_checksum.Fnv.update_string h s) "\x1f"

let shape_add h e =
  let tag kind = fp (fp h kind) e.subsystem in
  match e.payload with
  | Defect { component; defect; _ } -> fp (fp (tag "defect") component) (Status.defect_name defect)
  | Policy_decision { component; policy; decision } ->
      fp (fp (fp (tag "policy-decision") component) policy) decision
  | Policy_action { component; action; _ } -> fp (fp (tag "policy-action") component) action
  | Breaker { component; from_state; to_state } ->
      fp (fp (fp (tag "breaker") component) from_state) to_state
  | Restart { component; _ } -> fp (tag "restart") component
  | Heartbeat_miss { component; _ } -> fp (tag "heartbeat-miss") component
  | Ds_publish { key } -> fp (tag "ds-publish") key
  | Ipc _ | Safecopy _ | Irq _ | Spawn _ | Exit _ | Retry _ | Log _ -> h

let pp ppf e =
  let time_pp ppf t =
    if t >= 1_000_000 || t <= -1_000_000 then
      Format.fprintf ppf "%.6fs" (float_of_int t /. 1_000_000.)
    else if t >= 1_000 || t <= -1_000 then Format.fprintf ppf "%.3fms" (float_of_int t /. 1_000.)
    else Format.fprintf ppf "%dus" t
  in
  Format.fprintf ppf "[%a] %s %-8s %s" time_pp e.time (level_tag e.level) e.subsystem
    (message e.payload)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let payload_kind = function
  | Ipc _ -> "ipc"
  | Safecopy _ -> "safecopy"
  | Irq _ -> "irq"
  | Spawn _ -> "spawn"
  | Exit _ -> "exit"
  | Defect _ -> "defect"
  | Policy_decision _ -> "policy_decision"
  | Policy_action _ -> "policy_action"
  | Breaker _ -> "breaker"
  | Restart _ -> "restart"
  | Ds_publish _ -> "ds_publish"
  | Retry _ -> "retry"
  | Heartbeat_miss _ -> "heartbeat_miss"
  | Log _ -> "log"

let to_json e =
  Printf.sprintf
    "{\"type\":\"event\",\"at_us\":%d,\"level\":\"%s\",\"subsystem\":\"%s\",\"kind\":\"%s\",\"message\":\"%s\"}"
    e.time (level_tag e.level) (json_escape e.subsystem)
    (payload_kind e.payload)
    (json_escape (message e.payload))
