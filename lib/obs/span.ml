module Status = Resilix_proto.Status

type phase = Detect | Policy | Respawn | Republish | Reopen

let phase_name = function
  | Detect -> "detect"
  | Policy -> "policy"
  | Respawn -> "respawn"
  | Republish -> "republish"
  | Reopen -> "reopen"

let phase_rank = function
  | Detect -> 0
  | Policy -> 1
  | Respawn -> 2
  | Republish -> 3
  | Reopen -> 4

type span = {
  id : int;
  component : string;
  defect : Status.defect;
  repetition : int;
  opened_at : int;
  mutable marks : (phase * int) list;
  mutable closed_at : int option;
  mutable span_tags : (string * string) list;
}

type t = { mutable next_id : int; mutable all : span list (* newest first *) }

let create () = { next_id = 0; all = [] }

let open_span t ~component ~defect ~repetition ~now =
  let s =
    {
      id = t.next_id;
      component;
      defect;
      repetition;
      opened_at = now;
      marks = [ (Detect, now) ];
      closed_at = None;
      span_tags = [];
    }
  in
  t.next_id <- t.next_id + 1;
  t.all <- s :: t.all;
  s

let mark s phase ~now =
  if not (List.mem_assoc phase s.marks) then s.marks <- (phase, now) :: s.marks

let tag s key value = s.span_tags <- (key, value) :: List.remove_assoc key s.span_tags
let tags s = List.sort compare s.span_tags

let latest t component =
  List.find_opt (fun s -> String.equal s.component component) t.all

let current t component =
  match latest t component with
  | Some s when s.closed_at = None -> Some s
  | _ -> None

let mark_component t component phase ~now =
  match latest t component with
  | None -> ()
  | Some s ->
      if s.closed_at = None then mark s phase ~now
      else if phase = Reopen then
        (* Dependents re-bind after RS has already declared the
           recovery complete; accept one Reopen mark post-close. *)
        mark s Reopen ~now

let close s ~now = if s.closed_at = None then s.closed_at <- Some now

let close_component t component ~now =
  match current t component with None -> () | Some s -> close s ~now

let spans t = List.rev t.all

(* Invariant probes for the DST layer: a recovery campaign is complete
   when every span the run opened was also closed — and, with a bound,
   closed within [within] us of detection. *)
let open_spans t = List.rev (List.filter (fun s -> s.closed_at = None) t.all)

let incomplete ?within t =
  List.rev
    (List.filter
       (fun s ->
         match (s.closed_at, within) with
         | None, _ -> true
         | Some _, None -> false
         | Some c, Some bound -> c - s.opened_at > bound)
       t.all)

let complete ?within t = incomplete ?within t = []

(* Campaign aggregation: one collector holding every source's spans,
   sources in list order, each source's spans oldest-first within it.
   Span ids keep their per-source values (they only disambiguate spans
   within one run); [next_id] is bumped past the largest so spans
   opened on the concatenation stay unique. *)
let concat ts =
  let all =
    List.fold_left (fun acc t -> List.rev_append (List.rev t.all) acc) [] ts
  in
  let next_id = List.fold_left (fun m s -> max m (s.id + 1)) 0 all in
  { next_id; all }

(* DST coverage probe: an order-sensitive FNV-1a fingerprint of the
   run's recovery-span *shape* — which components failed how, in what
   order, through which phases — excluding every timestamp, so two
   runs that recover the same way at different speeds share a shape
   while a different failure order, defect kind, phase set or an
   unclosed span produces a different one.  Fields are separated by a
   0x1f byte so adjacent strings cannot alias. *)
let fp h s = Resilix_checksum.Fnv.update_string (Resilix_checksum.Fnv.update_string h s) "\x1f"

let shape_fingerprint t =
  List.fold_left
    (fun h s ->
      let h = fp h "span" in
      let h = fp h s.component in
      let h = fp h (Status.defect_name s.defect) in
      let h = fp h (string_of_int s.repetition) in
      let marks =
        List.sort (fun (a, _) (b, _) -> compare (phase_rank a) (phase_rank b)) s.marks
      in
      let h = List.fold_left (fun h (p, _) -> fp h (phase_name p)) h marks in
      fp h (match s.closed_at with Some _ -> "closed" | None -> "open"))
    Resilix_checksum.Fnv.start (spans t)

let total_us s = Option.map (fun c -> c - s.opened_at) s.closed_at

let phases s =
  List.sort
    (fun (a, _) (b, _) -> compare (phase_rank a) (phase_rank b))
    (List.map (fun (p, at) -> (p, at - s.opened_at)) s.marks)

type mttr = {
  m_component : string;
  n : int;
  mean_us : int;
  min_us : int;
  max_us : int;
  p95_us : int;
  phase_mean_us : (phase * int) list;
}

let report t =
  let by_component = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match total_us s with
      | None -> ()
      | Some _ ->
          let prev = Option.value (Hashtbl.find_opt by_component s.component) ~default:[] in
          Hashtbl.replace by_component s.component (s :: prev))
    t.all;
  Hashtbl.fold
    (fun component closed acc ->
      let totals = List.sort compare (List.filter_map total_us closed) in
      let n = List.length totals in
      let sum = List.fold_left ( + ) 0 totals in
      let p95 =
        (* index of the 95th percentile in the sorted list (nearest-rank) *)
        let rank = max 0 (((n * 95) + 99) / 100 - 1) in
        List.nth totals (min rank (n - 1))
      in
      let phase_mean_us =
        List.filter_map
          (fun p ->
            let deltas =
              List.filter_map (fun s -> List.assoc_opt p (phases s)) closed
            in
            match deltas with
            | [] -> None
            | ds -> Some (p, List.fold_left ( + ) 0 ds / List.length ds))
          [ Detect; Policy; Respawn; Republish; Reopen ]
      in
      {
        m_component = component;
        n;
        mean_us = sum / n;
        min_us = List.hd totals;
        max_us = List.nth totals (n - 1);
        p95_us = p95;
        phase_mean_us;
      }
      :: acc)
    by_component []
  |> List.sort (fun a b -> String.compare a.m_component b.m_component)
