type counter = { mutable c_value : int }
type gauge = { mutable g_value : int }

(* 63 buckets cover every non-negative OCaml int: bucket 0 for <= 0,
   bucket i for [2^(i-1), 2^i - 1], up to bucket 62 for values with 62
   significant bits (max_int = 2^62 - 1 on 64-bit). *)
let bucket_count = 63

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 8; histograms = Hashtbl.create 8 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_value = 0 } in
      Hashtbl.replace t.counters name c;
      c

let add c by = c.c_value <- c.c_value + by
let incr c = add c 1
let value c = c.c_value

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_value = 0 } in
      Hashtbl.replace t.gauges name g;
      g

let set g v = g.g_value <- v

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h =
        { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int; h_buckets = Array.make bucket_count 0 }
      in
      Hashtbl.replace t.histograms name h;
      h

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr i;
      x := !x lsr 1
    done;
    min !i (bucket_count - 1)
  end

let bucket_upper i =
  if i <= 0 then 0
  else if i >= 62 then max_int
  else (1 lsl i) - 1

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let add_named t name by = add (counter t name) by
let set_named t name v = set (gauge t name) v
let observe_named t name v = observe (histogram t name) v

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  count : int;
  sum : int;
  min_v : int;
  max_v : int;
  buckets : (int * int) list;
}

type gauge_snapshot = {
  g_last : int;
  g_shard : int;
  g_min : int;
  g_max : int;
  g_sources : int;
}

type snapshot = {
  taken_at : int;
  counters : (string * int) list;
  gauges : (string * gauge_snapshot) list;
  histograms : (string * hist_snapshot) list;
}

let sorted_bindings tbl f =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])

let snapshot ?(at = 0) ?(shard = 0) (t : t) =
  {
    taken_at = at;
    counters = sorted_bindings t.counters (fun c -> c.c_value);
    gauges =
      sorted_bindings t.gauges (fun g ->
          { g_last = g.g_value; g_shard = shard; g_min = g.g_value; g_max = g.g_value; g_sources = 1 });
    histograms =
      sorted_bindings t.histograms (fun h ->
          let buckets = ref [] in
          for i = bucket_count - 1 downto 0 do
            if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
          done;
          (* Empty histograms are normalized to all-zero so the fresh
             min/max sentinels (max_int/min_int) never leak into
             diffs, merges or rendered reports. *)
          if h.h_count = 0 then { count = 0; sum = 0; min_v = 0; max_v = 0; buckets = [] }
          else
            { count = h.h_count; sum = h.h_sum; min_v = h.h_min; max_v = h.h_max; buckets = !buckets });
  }

(* Merge two sorted association lists with a per-key combiner. *)
let assoc_diff ~combine before after =
  let rec go b a acc =
    match (b, a) with
    | [], rest -> List.rev_append acc (List.map (fun (k, v) -> (k, combine None (Some v))) rest)
    | rest, [] ->
        List.rev_append acc (List.map (fun (k, v) -> (k, combine (Some v) None)) rest)
    | (kb, vb) :: tb, (ka, va) :: ta ->
        let c = String.compare kb ka in
        if c = 0 then go tb ta ((kb, combine (Some vb) (Some va)) :: acc)
        else if c < 0 then go tb a ((kb, combine (Some vb) None) :: acc)
        else go b ta ((ka, combine None (Some va)) :: acc)
  in
  go before after []

let empty_hist = { count = 0; sum = 0; min_v = 0; max_v = 0; buckets = [] }
let zero_gauge = { g_last = 0; g_shard = 0; g_min = 0; g_max = 0; g_sources = 0 }

let diff before after =
  let sub b a = max 0 (Option.value a ~default:0 - Option.value b ~default:0) in
  let hist_sub b a =
    let b = Option.value b ~default:empty_hist in
    let a = Option.value a ~default:empty_hist in
    let buckets =
      List.filter
        (fun (_, n) -> n > 0)
        (List.map
           (fun (i, n) ->
             let prev = Option.value (List.assoc_opt i b.buckets) ~default:0 in
             (i, max 0 (n - prev)))
           a.buckets)
    in
    {
      count = max 0 (a.count - b.count);
      sum = a.sum - b.sum;
      (* min/max are not recoverable for the interval; report the
         newer snapshot's whole-run extremes. *)
      min_v = a.min_v;
      max_v = a.max_v;
      buckets;
    }
  in
  {
    taken_at = after.taken_at;
    counters = assoc_diff ~combine:sub before.counters after.counters;
    gauges =
      assoc_diff ~combine:(fun _ a -> Option.value a ~default:zero_gauge) before.gauges
        after.gauges;
    histograms = assoc_diff ~combine:hist_sub before.histograms after.histograms;
  }

let empty = { taken_at = 0; counters = []; gauges = []; histograms = [] }

(* Campaign aggregation: the union of two per-trial snapshots.
   Counters sum; colliding gauges are promoted to a distribution keyed
   by shard index (min/max over every source, "last" from the
   highest-indexed shard), so the result is independent of merge
   order; histograms add bucket-wise with count/sum summed and min/max
   combined.  Merging with an empty registry is the identity, and
   [merge] is commutative and associative. *)
let merge a b =
  let add_c x y = Option.value x ~default:0 + Option.value y ~default:0 in
  let gauge_dist x y =
    match (x, y) with
    | None, None -> zero_gauge
    | Some g, None | None, Some g -> g
    | Some x, Some y ->
        let g_last, g_shard =
          if x.g_shard > y.g_shard then (x.g_last, x.g_shard)
          else if y.g_shard > x.g_shard then (y.g_last, y.g_shard)
          else (* same shard twice: break the tie by value, not order *)
            (max x.g_last y.g_last, x.g_shard)
        in
        {
          g_last;
          g_shard;
          g_min = min x.g_min y.g_min;
          g_max = max x.g_max y.g_max;
          g_sources = x.g_sources + y.g_sources;
        }
  in
  let hist_add x y =
    let x = Option.value x ~default:empty_hist in
    let y = Option.value y ~default:empty_hist in
    (* A count-0 side carries no samples: its (normalized, all-zero)
       min/max must not clamp the other side's extremes. *)
    if x.count = 0 then y
    else if y.count = 0 then x
    else begin
      let rec buckets bx by =
        match (bx, by) with
        | [], rest | rest, [] -> rest
        | (i, n) :: tx, (j, m) :: ty ->
            if i = j then (i, n + m) :: buckets tx ty
            else if i < j then (i, n) :: buckets tx by
            else (j, m) :: buckets bx ty
      in
      {
        count = x.count + y.count;
        sum = x.sum + y.sum;
        min_v = min x.min_v y.min_v;
        max_v = max x.max_v y.max_v;
        buckets = buckets x.buckets y.buckets;
      }
    end
  in
  {
    taken_at = max a.taken_at b.taken_at;
    counters = assoc_diff ~combine:add_c a.counters b.counters;
    gauges = assoc_diff ~combine:(fun x y -> gauge_dist x y) a.gauges b.gauges;
    histograms = assoc_diff ~combine:hist_add a.histograms b.histograms;
  }

let merge_all snaps = List.fold_left merge empty snaps

let counter_value snap name = Option.value (List.assoc_opt name snap.counters) ~default:0

(* Quantile estimation from the log-2 buckets.  The rank-r sample
   (1-based, r = ceil(q * count)) lives in the first bucket whose
   cumulative count reaches r; within the bucket we interpolate
   linearly over its value span, clamped to the histogram's observed
   extremes so single-valued tails come out exact. *)
let quantile (h : hist_snapshot) q =
  if h.count = 0 then 0
  else if q <= 0. then h.min_v
  else if q >= 1. then h.max_v
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let rec locate cum = function
      | [] -> h.max_v (* unreachable: bucket counts sum to h.count *)
      | (i, n) :: rest ->
          if cum + n >= rank then begin
            let lo = max (if i = 0 then min 0 h.min_v else bucket_upper (i - 1) + 1) h.min_v in
            let hi = min (bucket_upper i) h.max_v in
            if hi <= lo then lo
            else begin
              (* Position of the rank within this bucket, in (0, 1]. *)
              let frac = float_of_int (rank - cum) /. float_of_int n in
              lo + int_of_float (frac *. float_of_int (hi - lo))
            end
          end
          else locate (cum + n) rest
    in
    locate 0 h.buckets
  end

let pp ppf snap =
  Format.fprintf ppf "@[<v>metrics at t=%dus" snap.taken_at;
  List.iter (fun (name, v) -> Format.fprintf ppf "@,  %-40s %d" name v) snap.counters;
  List.iter
    (fun (name, g) ->
      if g.g_sources <= 1 then Format.fprintf ppf "@,  %-40s %d (gauge)" name g.g_last
      else
        Format.fprintf ppf "@,  %-40s last=%d min=%d max=%d over %d shards (gauge)" name
          g.g_last g.g_min g.g_max g.g_sources)
    snap.gauges;
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "@,  %-40s n=%d sum=%d%s" name h.count h.sum
        (if h.count > 0 then Printf.sprintf " min=%d max=%d" h.min_v h.max_v else ""))
    snap.histograms;
  Format.fprintf ppf "@]"
