module Status = Resilix_proto.Status

let esc = Event.json_escape

let metric_lines ?(label = "run") (snap : Metrics.snapshot) =
  let meta =
    Printf.sprintf "{\"type\":\"meta\",\"label\":\"%s\",\"at_us\":%d}" (esc label) snap.taken_at
  in
  let counters =
    List.map
      (fun (name, v) ->
        Printf.sprintf "{\"type\":\"counter\",\"label\":\"%s\",\"name\":\"%s\",\"value\":%d}"
          (esc label) (esc name) v)
      snap.counters
  in
  let gauges =
    List.map
      (fun (name, (g : Metrics.gauge_snapshot)) ->
        Printf.sprintf
          "{\"type\":\"gauge\",\"label\":\"%s\",\"name\":\"%s\",\"value\":%d,\"min\":%d,\"max\":%d,\"shards\":%d}"
          (esc label) (esc name) g.g_last g.g_min g.g_max g.g_sources)
      snap.gauges
  in
  let histograms =
    List.map
      (fun (name, (h : Metrics.hist_snapshot)) ->
        let buckets =
          String.concat "," (List.map (fun (i, c) -> Printf.sprintf "[%d,%d]" i c) h.buckets)
        in
        (* min/max need no count=0 guard: empty snapshots are
           normalized to all-zero by [Metrics.snapshot]. *)
        Printf.sprintf
          "{\"type\":\"histogram\",\"label\":\"%s\",\"name\":\"%s\",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"buckets\":[%s]}"
          (esc label) (esc name) h.count h.sum h.min_v h.max_v buckets)
      snap.histograms
  in
  (meta :: counters) @ gauges @ histograms

let phase_obj deltas =
  String.concat ","
    (List.map (fun (p, d) -> Printf.sprintf "\"%s\":%d" (Span.phase_name p) d) deltas)

let span_lines ?(label = "run") spans =
  let span_line (s : Span.span) =
    let total =
      match Span.total_us s with None -> "null" | Some u -> string_of_int u
    in
    (* Tags appended only when present, so runs that never tag a span
       export byte-identical lines to the pre-tag format. *)
    let tags =
      match Span.tags s with
      | [] -> ""
      | kvs ->
          Printf.sprintf ",\"tags\":{%s}"
            (String.concat ","
               (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)) kvs))
    in
    Printf.sprintf
      "{\"type\":\"span\",\"label\":\"%s\",\"id\":%d,\"component\":\"%s\",\"defect\":\"%s\",\"repetition\":%d,\"opened_at_us\":%d,\"total_us\":%s,\"phases\":{%s}%s}"
      (esc label) s.id (esc s.component)
      (esc (Status.defect_name s.defect))
      s.repetition s.opened_at total
      (phase_obj (Span.phases s))
      tags
  in
  let mttr_line (m : Span.mttr) =
    Printf.sprintf
      "{\"type\":\"mttr\",\"label\":\"%s\",\"component\":\"%s\",\"n\":%d,\"mean_us\":%d,\"min_us\":%d,\"max_us\":%d,\"p95_us\":%d,\"phase_mean_us\":{%s}}"
      (esc label) (esc m.m_component) m.n m.mean_us m.min_us m.max_us m.p95_us
      (phase_obj m.phase_mean_us)
  in
  List.map span_line (Span.spans spans) @ List.map mttr_line (Span.report spans)
