(** JSONL export of metrics and spans.

    Each function renders one JSON object per line — the format
    consumed by [--metrics-out] on the bench and the CLI.  Line
    shapes ("type" discriminates):

    - [{"type":"meta","label":L,"at_us":T}]
    - [{"type":"counter","label":L,"name":N,"value":V}]
    - [{"type":"gauge","label":L,"name":N,"value":V,"min":m,"max":M,
        "shards":K}] — [value] is the highest-indexed shard's write;
      [min]/[max]/[shards] describe the per-shard distribution a
      campaign merge produced ([min = max], [shards = 1] for a
      single-registry snapshot)
    - [{"type":"histogram","label":L,"name":N,"count":C,"sum":S,
        "min":M,"max":X,"buckets":[[i,c],...]}]
    - [{"type":"span","label":L,"id":I,"component":C,"defect":D,
        "repetition":R,"opened_at_us":T,"total_us":U|null,
        "phases":{"detect":d,...}}]
    - [{"type":"mttr","label":L,"component":C,"n":N,"mean_us":U,
        "min_us":..,"max_us":..,"p95_us":..,
        "phase_mean_us":{"policy":..,...}}] *)

val metric_lines : ?label:string -> Metrics.snapshot -> string list
(** A ["meta"] line followed by one line per counter, gauge and
    histogram in the snapshot. *)

val span_lines : ?label:string -> Span.t -> string list
(** One ["span"] line per span (open spans have ["total_us":null]),
    then one ["mttr"] line per component with closed spans. *)
