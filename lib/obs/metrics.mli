(** Metric registry: named counters, gauges and log-bucketed
    virtual-time histograms.

    The kernel, the servers and the drivers register instruments by
    name (get-or-create, so concurrent registrants share one
    instrument) and bump them on hot paths; consumers read the
    registry only through immutable {!snapshot}s, and compare two
    snapshots with {!diff}.  All values are integers — counts, bytes,
    or virtual microseconds. *)

type t
(** A registry. *)

type counter
(** Monotonically increasing value. *)

type gauge
(** Point-in-time value (set, not accumulated). *)

type histogram
(** Distribution of non-negative integers in base-2 log buckets:
    bucket 0 holds values [<= 0], bucket [i >= 1] holds values in
    [[2^(i-1), 2^i - 1]].  [max_int] lands in the last bucket. *)

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create the named counter. *)

val add : counter -> int -> unit
val incr : counter -> unit

val value : counter -> int
(** Current count. *)

val gauge : t -> string -> gauge
val set : gauge -> int -> unit

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one sample.  Negative samples land in bucket 0; any
    [int] (including [max_int]) is accepted. *)

val add_named : t -> string -> int -> unit
(** Get-or-create + {!add}; the by-name path used by the
    [Metric_add] syscall. *)

val set_named : t -> string -> int -> unit
(** Get-or-create + {!set} on a gauge. *)

val observe_named : t -> string -> int -> unit
(** Get-or-create + {!observe}. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : int;
  min_v : int;  (** 0 when [count = 0] (normalized; never a sentinel) *)
  max_v : int;  (** 0 when [count = 0] *)
  buckets : (int * int) list;  (** (bucket index, count), non-empty buckets only, ascending *)
}

type gauge_snapshot = {
  g_last : int;  (** the gauge's value in the highest-indexed shard *)
  g_shard : int;  (** the shard index that supplied [g_last] *)
  g_min : int;  (** smallest value over every merged shard *)
  g_max : int;  (** largest value over every merged shard *)
  g_sources : int;  (** how many shard registries carried the gauge *)
}
(** A gauge as seen by a snapshot.  Fresh snapshots of one registry
    have [g_min = g_max = g_last] and [g_sources = 1]; {!merge}
    promotes colliding gauges to a distribution over shards, keyed by
    shard index so the result is independent of merge order. *)

type snapshot = {
  taken_at : int;  (** virtual time the snapshot was taken (caller-supplied) *)
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * gauge_snapshot) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : ?at:int -> ?shard:int -> t -> snapshot
(** Immutable copy of every instrument ([at] defaults to 0).  [shard]
    (default 0) tags the snapshot's gauges with the trial/shard index
    that produced them — the key {!merge} resolves gauge collisions
    by; pass the trial's campaign index when the snapshot will be
    merged. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff before after] is the activity between the two snapshots:
    counters and histogram buckets subtract ([after - before], clamped
    at 0 for instruments that vanished); gauges take [after]'s value;
    [taken_at] is [after.taken_at]. *)

val empty : snapshot
(** The snapshot of a registry with no instruments ([taken_at = 0]);
    the identity for {!merge}. *)

val merge : snapshot -> snapshot -> snapshot
(** [merge a b] is the union of two snapshots, for aggregating
    per-trial registries into one campaign report:

    - counters present in either side {e sum};
    - colliding gauges are promoted to a {e distribution} keyed by
      shard index: [g_min]/[g_max] cover every source, [g_last] is the
      value set by the highest-indexed shard and [g_sources] counts
      the sources — never dependent on merge order (a same-shard
      collision breaks the tie by the larger value);
    - histograms add bucket-wise; [count]/[sum] sum, [min_v]/[max_v]
      combine ([count = 0] sides contribute nothing);
    - [taken_at] is the max of the two.

    [merge] is commutative and associative, and
    [merge empty s = merge s empty = s]. *)

val merge_all : snapshot list -> snapshot
(** Left fold of {!merge} over the list, starting from {!empty};
    merge-order-independent, so any reassociation (e.g. a parallel
    tree reduce) yields the same snapshot. *)

val counter_value : snapshot -> string -> int
(** Value of a counter in a snapshot; 0 when absent. *)

val bucket_of : int -> int
(** The bucket index {!observe} files a sample under (exposed for
    tests: [bucket_of 0 = 0], [bucket_of max_int = 62]). *)

val bucket_upper : int -> int
(** Inclusive upper bound of a bucket: [bucket_upper 0 = 0],
    [bucket_upper i = 2^i - 1] (saturating at [max_int]). *)

val quantile : hist_snapshot -> float -> int
(** [quantile h q] estimates the [q]-quantile (0 <= q <= 1) of the
    samples recorded in [h] from its log-2 buckets: the bucket
    holding the rank-[ceil q*count] sample is located by cumulative
    count, then the value is linearly interpolated across the
    bucket's span (clamped to the histogram's observed [min_v] and
    [max_v], which tightens the first and last buckets to exact
    values when all their mass sits at the extremes).  The estimate
    is exact for single-bucket distributions and otherwise within the
    bucket's width (a factor of 2).  [q <= 0] returns [min_v],
    [q >= 1] returns [max_v], and an empty histogram returns 0.

    This is the storm report's p50/p95/p99 path — use it instead of
    ad-hoc bucket math. *)

val pp : Format.formatter -> snapshot -> unit
(** Multi-line human-readable rendering. *)
