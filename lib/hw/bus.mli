(** The I/O port bus.

    Device models claim port ranges; the kernel's mediated [Devio_*]
    kernel calls are routed here after the per-driver privilege check
    (Sec. 4: drivers may only touch the ports they were granted). *)

type t
(** A bus instance. *)

type access = Read | Write of int
(** One port access; [Write v] carries the 32-bit value. *)

val create : unit -> t
(** An empty bus. *)

val register : t -> base:int -> len:int -> (reg:int -> access -> (int, Resilix_proto.Errno.t) result) -> unit
(** [register t ~base ~len handler] claims ports [base..base+len-1];
    the handler receives the register offset relative to [base].
    @raise Invalid_argument on overlapping claims. *)

val attach : t -> Resilix_kernel.Kernel.t -> unit
(** Install this bus as the kernel's I/O handler. *)

val io : t -> [ `In of int | `Out of int * int ] -> (int, Resilix_proto.Errno.t) result
(** Raw access (what the kernel calls).  Unclaimed ports float:
    reads return [0xFFFFFFFF], writes are dropped — like real ISA
    buses, and deliberately forgiving to corrupted drivers whose port
    arithmetic went wrong inside their own range. *)
