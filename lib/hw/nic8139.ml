module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel

type stats = { mutable frames_rx : int; mutable frames_tx : int; mutable errors : int }

let isr_rx_ok = 0x1
let isr_tx_ok = 0x4
let isr_err = 0x8

let cmd_reset = 0x10
let cmd_rx_enable = 0x04
let cmd_tx_enable = 0x08

let max_frame = 2048

type t = {
  kernel : Resilix_kernel.Kernel.t;
  link : Link.t;
  side : Link.side;
  irq : int;
  mac : int;
  rng : Rng.t;
  rate : int;
  reset_us : int;
  wedge_prob : float;
  has_master_reset : bool;
  stats : stats;
  mutable wedged : bool;
  mutable ready_at : int; (* controller unavailable until then after a reset *)
  mutable rx_enabled : bool;
  mutable tx_enabled : bool;
  mutable promisc : bool;
  mutable isr : int;
  mutable txh : int;
  mutable txlen : int;
  mutable tx_busy : bool;
  mutable rxh : int;
  mutable rxcap : int;
  mutable rxlen : int;
  mutable rx_slot_free : bool;
  rx_queue : bytes Queue.t;
}

let rx_queue_cap = 64

let stats t = t.stats
let wedged t = t.wedged

let engine t = Kernel.engine t.kernel

let maybe_wedge t =
  t.stats.errors <- t.stats.errors + 1;
  t.isr <- t.isr lor isr_err;
  if Rng.bool t.rng t.wedge_prob then t.wedged <- true

let raise_irq t = Kernel.raise_irq t.kernel t.irq
let resetting t = Engine.now (engine t) < t.ready_at

(* Deliver the next queued frame into the driver's receive buffer if
   the receive path is armed and idle. *)
let pump_rx t =
  if
    (not t.wedged) && (not (resetting t)) && t.rx_enabled && t.rx_slot_free && t.rxh <> 0
    && not (Queue.is_empty t.rx_queue)
  then begin
    let frame = Queue.pop t.rx_queue in
    let len = Bytes.length frame in
    if len <= t.rxcap then begin
      match Kernel.dma t.kernel ~handle:t.rxh ~off:0 ~op:(`Write frame) with
      | Ok _ ->
          t.rx_slot_free <- false;
          t.rxlen <- len;
          t.stats.frames_rx <- t.stats.frames_rx + 1;
          t.isr <- t.isr lor isr_rx_ok;
          raise_irq t
      | Error _ ->
          (* Stale DMA mapping (driver died): frame is lost. *)
          maybe_wedge t
    end
    else maybe_wedge t
  end

(* MAC filtering: accept broadcast, our MAC, or anything in
   promiscuous mode.  The first six bytes of a frame are the
   destination MAC, big-endian. *)
let dst_mac_of frame =
  if Bytes.length frame < 6 then 0
  else
    let b i = Char.code (Bytes.get frame i) in
    (b 0 lsl 40) lor (b 1 lsl 32) lor (b 2 lsl 24) lor (b 3 lsl 16) lor (b 4 lsl 8) lor b 5

let broadcast_mac = 0xFFFF_FFFF_FFFF

let on_link_rx t frame =
  if (not t.wedged) && (not (resetting t)) && t.rx_enabled then begin
    let dst = dst_mac_of frame in
    if t.promisc || dst = t.mac || dst = broadcast_mac then begin
      if Queue.length t.rx_queue < rx_queue_cap then begin
        Queue.push frame t.rx_queue;
        pump_rx t
      end
      (* queue overflow: silently dropped, like real hardware *)
    end
  end

let do_reset t =
  if t.wedged && not t.has_master_reset then () (* reset is ignored: card is gone *)
  else begin
    if t.wedged && t.has_master_reset then t.wedged <- false;
    t.ready_at <- Engine.now (engine t) + t.reset_us;
    t.rx_enabled <- false;
    t.tx_enabled <- false;
    t.promisc <- false;
    t.isr <- 0;
    t.txh <- 0;
    t.txlen <- 0;
    t.tx_busy <- false;
    t.rxh <- 0;
    t.rxcap <- 0;
    t.rxlen <- 0;
    t.rx_slot_free <- true;
    Queue.clear t.rx_queue
  end

let bios_reset t =
  t.wedged <- false;
  do_reset t

let start_tx t =
  if t.wedged then ()
  else if resetting t || (not t.tx_enabled) || t.tx_busy || t.txlen <= 0 || t.txlen > max_frame
  then maybe_wedge t
  else begin
    match Kernel.dma t.kernel ~handle:t.txh ~off:0 ~op:(`Read t.txlen) with
    | Error _ -> maybe_wedge t
    | Ok frame ->
        t.tx_busy <- true;
        let tx_time = max 1 (t.txlen / t.rate) in
        ignore
          (Engine.schedule (engine t) ~after:tx_time (fun () ->
               t.tx_busy <- false;
               if not t.wedged then begin
                 Link.send t.link t.side frame;
                 t.stats.frames_tx <- t.stats.frames_tx + 1;
                 t.isr <- t.isr lor isr_tx_ok;
                 raise_irq t
               end))
  end

let handle t ~reg access =
  if t.wedged then (match access with Bus.Read -> Ok 0xFFFF_FFFF | Bus.Write _ -> Ok 0)
  else
    match (reg, access) with
    | 0, Bus.Read -> Ok 0x8139
    | 1, Bus.Read ->
        if resetting t then Ok cmd_reset
        else
          Ok
            ((if t.rx_enabled then cmd_rx_enable else 0)
            lor if t.tx_enabled then cmd_tx_enable else 0)
    | 1, Bus.Write v ->
        if v land cmd_reset <> 0 then do_reset t
        else if resetting t then () (* programming a resetting chip is ignored *)
        else if v land lnot (cmd_reset lor cmd_rx_enable lor cmd_tx_enable) <> 0 then maybe_wedge t
        else begin
          t.rx_enabled <- v land cmd_rx_enable <> 0;
          t.tx_enabled <- v land cmd_tx_enable <> 0;
          pump_rx t
        end;
        Ok 0
    | 2, Bus.Read -> Ok (if t.promisc then 1 else 0)
    | 2, Bus.Write v ->
        t.promisc <- v land 1 <> 0;
        Ok 0
    | 3, Bus.Read -> Ok t.isr
    | 3, Bus.Write v ->
        let had_rx = t.isr land isr_rx_ok <> 0 in
        t.isr <- t.isr land lnot v;
        if had_rx && v land isr_rx_ok <> 0 then begin
          t.rx_slot_free <- true;
          pump_rx t
        end;
        Ok 0
    | 4, Bus.Write v ->
        t.txh <- v;
        Ok 0
    | 5, Bus.Write v ->
        t.txlen <- v;
        Ok 0
    | 6, Bus.Write _ ->
        start_tx t;
        Ok 0
    | 7, Bus.Write v ->
        t.rxh <- v;
        pump_rx t;
        Ok 0
    | 8, Bus.Write v ->
        t.rxcap <- v;
        Ok 0
    | 9, Bus.Read -> Ok t.rxlen
    | 10, Bus.Read -> Ok (t.mac land 0xFFFF_FFFF)
    | 11, Bus.Read -> Ok ((t.mac lsr 32) land 0xFFFF)
    | _, Bus.Read -> Ok 0xFFFF_FFFF
    | _, Bus.Write _ ->
        (* Writing a read-only or nonexistent register is exactly the
           kind of thing a corrupted driver does. *)
        maybe_wedge t;
        Ok 0

let create ~kernel ~bus ~base ~irq ~link ~side ~mac ~rng ?(rate_bytes_per_us = 12)
    ?(reset_us = 150_000) ?(wedge_prob = 0.0) ?(has_master_reset = false) () =
  let t =
    {
      kernel;
      link;
      side;
      irq;
      mac;
      rng;
      rate = rate_bytes_per_us;
      reset_us;
      wedge_prob;
      has_master_reset;
      stats = { frames_rx = 0; frames_tx = 0; errors = 0 };
      wedged = false;
      ready_at = 0;
      rx_enabled = false;
      tx_enabled = false;
      promisc = false;
      isr = 0;
      txh = 0;
      txlen = 0;
      tx_busy = false;
      rxh = 0;
      rxcap = 0;
      rxlen = 0;
      rx_slot_free = true;
      rx_queue = Queue.create ();
    }
  in
  Bus.register bus ~base ~len:12 (handle t);
  Link.attach link side (on_link_rx t);
  t
