(** Audio codec model (character device).

    Playback consumes samples from a small FIFO at a fixed byte rate.
    If the FIFO runs dry while playing — e.g. because the audio driver
    crashed and was restarted — the listener hears a hiccup; the
    device counts underruns so the mp3-player example can report them
    (Sec. 6.3: "an MP3 player could continue playing a song after a
    driver recovery at the risk of small hiccups").

    Register map:
    {v
      0  ID        RO  0xAD10
      1  CTRL      RW  bit0 play; 0x10 reset
      2  DATA      W   one 32-bit word of samples into the FIFO
      3  LEVEL     RO  bytes currently in the FIFO
      4  ISR       R/ack  0x1 low-water, 0x8 err
      5  UNDERRUNS RO  cumulative underrun periods
    v}
*)

type t
(** An audio device. *)

val create :
  kernel:Resilix_kernel.Kernel.t ->
  bus:Bus.t ->
  base:int ->
  irq:int ->
  rng:Resilix_sim.Rng.t ->
  ?byte_rate:int ->
  ?fifo_cap:int ->
  ?wedge_prob:float ->
  unit ->
  t
(** Claim [base..base+5].  Default rate is 176400 bytes/s (CD-quality
    stereo), FIFO 16 KB. *)

val underruns : t -> int
(** Cumulative underrun (hiccup) count. *)

val bytes_played : t -> int
(** Total sample bytes consumed. *)

val wedged : t -> bool
(** Whether the codec is wedged. *)
