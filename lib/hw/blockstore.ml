type t = {
  seed : int;
  sectors : int;
  sector_size : int;
  written : (int, bytes) Hashtbl.t;
}

let create ~seed ~sectors ~sector_size = { seed; sectors; sector_size; written = Hashtbl.create 1024 }
let sector_size t = t.sector_size
let sectors t = t.sectors

(* splitmix64 keyed by (seed, lba, word index): deterministic content
   for never-written sectors. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let generate t lba =
  let buf = Bytes.create t.sector_size in
  let key = Int64.add (Int64.of_int t.seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (lba + 1))) in
  let words = t.sector_size / 8 in
  for w = 0 to words - 1 do
    let v = mix (Int64.add key (Int64.of_int w)) in
    Bytes.set_int64_le buf (w * 8) v
  done;
  buf

let sector t lba =
  match Hashtbl.find_opt t.written lba with Some b -> b | None -> generate t lba

let read t ~lba ~count =
  if lba < 0 || count < 0 || lba + count > t.sectors then invalid_arg "Blockstore.read";
  let out = Bytes.create (count * t.sector_size) in
  for i = 0 to count - 1 do
    Bytes.blit (sector t (lba + i)) 0 out (i * t.sector_size) t.sector_size
  done;
  out

let write t ~lba data =
  let len = Bytes.length data in
  if len mod t.sector_size <> 0 then invalid_arg "Blockstore.write: partial sector";
  let count = len / t.sector_size in
  if lba < 0 || lba + count > t.sectors then invalid_arg "Blockstore.write: out of range";
  for i = 0 to count - 1 do
    Hashtbl.replace t.written (lba + i) (Bytes.sub data (i * t.sector_size) t.sector_size)
  done

let written_sectors t = Hashtbl.length t.written
