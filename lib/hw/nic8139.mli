(** RTL8139-style Ethernet controller model (DMA-based).

    This is the NIC used for the Fig. 7 experiment (wget with repeated
    driver kills).  The driver programs it through I/O ports and DMA
    buffers mapped through the IOMMU.

    Register map (32-bit registers, offsets from the claimed base):
    {v
      0  ID      RO  0x8139
      1  CMD     RW  0x10 = software reset; 0x04 = RX enable; 0x08 = TX enable
      2  CONFIG  RW  bit0 = promiscuous mode
      3  ISR     R/ack  0x1 RX_OK, 0x4 TX_OK, 0x8 ERR; writing acks those bits
      4  TXH     W   DMA handle of the transmit buffer
      5  TXLEN   W   frame length in bytes
      6  TXGO    W   any write starts transmission
      7  RXH     W   DMA handle of the receive buffer
      8  RXCAP   W   receive buffer capacity
      9  RXLEN   RO  length of the frame most recently delivered
      10 MACLO   RO  low 32 bits of the MAC
      11 MACHI   RO  high 16 bits of the MAC
    v}

    Fault realism: out-of-spec programming (zero/oversized TX length,
    bad DMA handles, junk CMD bits) sets the ERR bit and, with
    probability [wedge_prob], wedges the controller — a wedged NIC
    reads 0xFFFFFFFF everywhere and ignores resets unless it was
    built with [has_master_reset] (the paper's Sec. 7.2 observed
    exactly this: a few cards needed a BIOS-level reset). *)

type t
(** A NIC instance. *)

type stats = { mutable frames_rx : int; mutable frames_tx : int; mutable errors : int }

val create :
  kernel:Resilix_kernel.Kernel.t ->
  bus:Bus.t ->
  base:int ->
  irq:int ->
  link:Link.t ->
  side:Link.side ->
  mac:int ->
  rng:Resilix_sim.Rng.t ->
  ?rate_bytes_per_us:int ->
  ?reset_us:int ->
  ?wedge_prob:float ->
  ?has_master_reset:bool ->
  unit ->
  t
(** Create and claim [base..base+11] on the bus, attach to the link.
    Default rate is 12 bytes/us (~100 Mbit). *)

val stats : t -> stats
(** Frame and error counters. *)

val wedged : t -> bool
(** Whether the controller is wedged (unrecoverable by the driver). *)

val bios_reset : t -> unit
(** Out-of-band full reset (the "low-level BIOS reset" of Sec. 7.2);
    clears the wedge. *)
