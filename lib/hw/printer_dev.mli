(** Printer model (character device).

    Consumes bytes from a small FIFO at printing speed and records
    everything it has "printed".  The lpd example uses this to show
    Sec. 6.3's point: a recovery-aware spooler can reissue a failed
    job after a driver crash, at the cost of possibly duplicated
    output — which the recorded stream makes observable.

    Register map:
    {v
      0  ID      RO  0x9817
      1  CTRL    RW  bit0 online; 0x10 reset
      2  DATA    W   one byte (low 8 bits) into the FIFO
      3  STATUS  RO  bit0 ready (FIFO has room)
      4  ISR     R/ack  0x1 fifo drained, 0x8 err
      5  LEVEL   RO  bytes currently queued in the FIFO
    v}
*)

type t
(** A printer. *)

val create :
  kernel:Resilix_kernel.Kernel.t ->
  bus:Bus.t ->
  base:int ->
  irq:int ->
  rng:Resilix_sim.Rng.t ->
  ?byte_rate:int ->
  ?fifo_cap:int ->
  ?wedge_prob:float ->
  unit ->
  t
(** Claim [base..base+5].  Default speed 50 KB/s, FIFO 4 KB. *)

val printed : t -> string
(** Everything the printer has physically printed so far. *)

val wedged : t -> bool
(** Whether the printer is wedged. *)
