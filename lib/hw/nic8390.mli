(** DP8390-style Ethernet controller model (programmed I/O).

    This is the NIC targeted by the fault-injection campaign
    (Sec. 7.2: "targeted the DP8390 Ethernet driver").  Unlike the
    RTL8139 model it moves frame data through a data port one 32-bit
    word at a time ("remote DMA"), which gives its driver long,
    loop-heavy transfer code — a rich target for binary mutation.

    Register map:
    {v
      0  ID      RO  0x8390
      1  CMD     RW  0x10 reset; 0x04 RX enable; 0x08 TX enable
      2  CONFIG  RW  bit0 promiscuous
      3  ISR     R/ack  0x1 RX_OK, 0x4 TX_OK, 0x8 ERR
      4  DATA    RW  write: next TX word into the staging buffer;
                     read: next word of the current RX frame
      5  TXGO    W   value = frame length; transmits the staged bytes
      6  RXLEN   RO  length of the head RX frame (0 = none)
      7  RXDONE  W   pop the current RX frame
      8  MACLO   RO  9 MACHI RO
    v}
*)

type t
(** A NIC instance. *)

type stats = { mutable frames_rx : int; mutable frames_tx : int; mutable errors : int }

val create :
  kernel:Resilix_kernel.Kernel.t ->
  bus:Bus.t ->
  base:int ->
  irq:int ->
  link:Link.t ->
  side:Link.side ->
  mac:int ->
  rng:Resilix_sim.Rng.t ->
  ?rate_bytes_per_us:int ->
  ?reset_us:int ->
  ?wedge_prob:float ->
  ?has_master_reset:bool ->
  unit ->
  t
(** Create and claim [base..base+9]. *)

val stats : t -> stats
(** Frame and error counters. *)

val wedged : t -> bool
(** Whether the controller is wedged. *)

val bios_reset : t -> unit
(** Out-of-band full reset (clears a wedge). *)
