module Errno = Resilix_proto.Errno

type access = Read | Write of int

type claim = {
  base : int;
  len : int;
  handler : reg:int -> access -> (int, Errno.t) result;
}

type t = { mutable claims : claim list }

let create () = { claims = [] }

let overlaps a b = a.base < b.base + b.len && b.base < a.base + a.len

let register t ~base ~len handler =
  let claim = { base; len; handler } in
  if List.exists (overlaps claim) t.claims then invalid_arg "Bus.register: overlapping port range";
  t.claims <- claim :: t.claims

let find t port = List.find_opt (fun c -> port >= c.base && port < c.base + c.len) t.claims

let io t op =
  match op with
  | `In port -> (
      match find t port with
      | Some c -> c.handler ~reg:(port - c.base) Read
      | None -> Ok 0xFFFF_FFFF)
  | `Out (port, value) -> (
      match find t port with
      | Some c -> c.handler ~reg:(port - c.base) (Write value)
      | None -> Ok 0)

let attach t kernel = Resilix_kernel.Kernel.set_io_handler kernel (io t)
