(** CD burner model (character device).

    The paper's example of a failure that {e cannot} be masked
    (Sec. 6.3): if the driver dies mid-burn, the laser stops and the
    disc is ruined — the application must report the error to the
    user.  The model enforces this with a burn-gap rule: once a
    session is open, more than [gap_timeout] without a completed block
    ruins the disc.

    Register map:
    {v
      0  ID      RO  0xCDB0
      1  CMD     W   0x01 start session, 0x02 finish session, 0x10 reset
      2  DMAH    W   DMA handle of the block to burn
      3  LEN     W   block length
      4  GO      W   burn the block
      5  STATUS  RO  bit0 session open, bit1 busy, bit3 err
      6  ISR     R/ack  0x1 block done, 0x8 err
    v}
*)

type t
(** A burner. *)

type disc_state = Blank | In_session | Complete | Ruined

val create :
  kernel:Resilix_kernel.Kernel.t ->
  bus:Bus.t ->
  base:int ->
  irq:int ->
  rng:Resilix_sim.Rng.t ->
  ?rate_bytes_per_us:int ->
  ?gap_timeout:int ->
  ?wedge_prob:float ->
  unit ->
  t
(** Claim [base..base+6].  Default burn rate 8 bytes/us, gap timeout
    300 ms. *)

val disc : t -> disc_state
(** Current state of the disc in the tray. *)

val burned : t -> string
(** Bytes successfully burned so far. *)

val insert_blank : t -> unit
(** Replace the disc with a fresh blank one. *)
