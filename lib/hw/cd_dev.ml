module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel

let isr_done = 0x1
let isr_err = 0x8

type disc_state = Blank | In_session | Complete | Ruined

type t = {
  kernel : Resilix_kernel.Kernel.t;
  irq : int;
  rng : Rng.t;
  rate : int;
  gap_timeout : int;
  wedge_prob : float;
  mutable wedged : bool;
  mutable disc : disc_state;
  mutable busy : bool;
  mutable dmah : int;
  mutable len : int;
  mutable isr : int;
  mutable gap_watch : Engine.handle option;
  data : Buffer.t;
}

let disc t = t.disc
let burned t = Buffer.contents t.data
let engine t = Kernel.engine t.kernel

let insert_blank t =
  t.disc <- Blank;
  Buffer.clear t.data

let maybe_wedge t =
  t.isr <- t.isr lor isr_err;
  if Rng.bool t.rng t.wedge_prob then t.wedged <- true

(* The buffer-underrun watchdog: if the session stays open with no
   block completed for gap_timeout, the disc is toast. *)
let arm_gap_watch t =
  (match t.gap_watch with Some h -> Engine.cancel h | None -> ());
  t.gap_watch <-
    Some
      (Engine.schedule (engine t) ~after:t.gap_timeout (fun () ->
           t.gap_watch <- None;
           if t.disc = In_session then begin
             t.disc <- Ruined;
             t.isr <- t.isr lor isr_err;
             Kernel.raise_irq t.kernel t.irq
           end))

let start_session t =
  match t.disc with
  | Blank ->
      t.disc <- In_session;
      arm_gap_watch t
  | In_session | Complete | Ruined -> maybe_wedge t

let finish_session t =
  match t.disc with
  | In_session ->
      (match t.gap_watch with Some h -> Engine.cancel h | None -> ());
      t.gap_watch <- None;
      t.disc <- Complete
  | Blank | Complete | Ruined -> maybe_wedge t

let burn_block t =
  if t.disc <> In_session || t.busy || t.len <= 0 || t.len > 65536 then maybe_wedge t
  else begin
    match Kernel.dma t.kernel ~handle:t.dmah ~off:0 ~op:(`Read t.len) with
    | Error _ -> maybe_wedge t
    | Ok block ->
        t.busy <- true;
        let duration = max 1 (t.len / t.rate) in
        ignore
          (Engine.schedule (engine t) ~after:duration (fun () ->
               t.busy <- false;
               if t.disc = In_session && not t.wedged then begin
                 Buffer.add_bytes t.data block;
                 arm_gap_watch t;
                 t.isr <- t.isr lor isr_done;
                 Kernel.raise_irq t.kernel t.irq
               end))
  end

let handle t ~reg access =
  if t.wedged then (match access with Bus.Read -> Ok 0xFFFF_FFFF | Bus.Write _ -> Ok 0)
  else
    match (reg, access) with
    | 0, Bus.Read -> Ok 0xCDB0
    | 1, Bus.Write 0x01 ->
        start_session t;
        Ok 0
    | 1, Bus.Write 0x02 ->
        finish_session t;
        Ok 0
    | 1, Bus.Write 0x10 ->
        (* Reset stops the laser; an open session is ruined when the
           gap watchdog fires. *)
        t.busy <- false;
        t.isr <- 0;
        Ok 0
    | 1, Bus.Write _ ->
        maybe_wedge t;
        Ok 0
    | 2, Bus.Write v ->
        t.dmah <- v;
        Ok 0
    | 3, Bus.Write v ->
        t.len <- v;
        Ok 0
    | 4, Bus.Write _ ->
        burn_block t;
        Ok 0
    | 5, Bus.Read ->
        Ok
          ((if t.disc = In_session then 1 else 0)
          lor (if t.busy then 2 else 0)
          lor if t.isr land isr_err <> 0 then 8 else 0)
    | 6, Bus.Read -> Ok t.isr
    | 6, Bus.Write v ->
        t.isr <- t.isr land lnot v;
        Ok 0
    | _, Bus.Read -> Ok 0xFFFF_FFFF
    | _, Bus.Write _ ->
        maybe_wedge t;
        Ok 0

let create ~kernel ~bus ~base ~irq ~rng ?(rate_bytes_per_us = 8) ?(gap_timeout = 300_000)
    ?(wedge_prob = 0.0) () =
  let t =
    {
      kernel;
      irq;
      rng;
      rate = rate_bytes_per_us;
      gap_timeout;
      wedge_prob;
      wedged = false;
      disc = Blank;
      busy = false;
      dmah = 0;
      len = 0;
      isr = 0;
      gap_watch = None;
      data = Buffer.create 65536;
    }
  in
  Bus.register bus ~base ~len:7 (handle t);
  t
