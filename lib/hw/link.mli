(** A point-to-point network link with bandwidth, latency, loss and
    corruption — the "Internet" between the simulated machine's NIC
    and the remote peer that serves files in the wget experiment. *)

type t
(** A full-duplex link. *)

type side = A | B
(** The two attachment points. *)

val create :
  engine:Resilix_sim.Engine.t ->
  rng:Resilix_sim.Rng.t ->
  ?latency:int ->
  ?bytes_per_us:int ->
  ?drop_prob:float ->
  ?corrupt_prob:float ->
  unit ->
  t
(** Defaults: 200 us one-way latency, 100 bytes/us (~100 MB/s raw so
    the NIC, not the wire, is the bottleneck), no loss, no
    corruption. *)

val attach : t -> side -> (bytes -> unit) -> unit
(** Set the frame-delivery callback for one side. *)

val send : t -> side -> bytes -> unit
(** Transmit a frame from [side] to the opposite side.  The frame is
    delivered after serialization + propagation delay, possibly
    dropped or corrupted per the link's probabilities.  Frames sent
    while the transmitter is busy queue behind it (FIFO). *)

val frames_sent : t -> int
(** Total frames offered to the link (both directions). *)

val frames_dropped : t -> int
(** Frames the link dropped. *)
