module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel

type stats = { mutable reads : int; mutable writes : int; mutable errors : int }

let isr_done = 0x1
let isr_err = 0x8

type t = {
  kernel : Resilix_kernel.Kernel.t;
  irq : int;
  store : Blockstore.t;
  rng : Rng.t;
  rate : int;
  seek_us : int;
  reset_us : int;
  wedge_prob : float;
  has_master_reset : bool;
  stats : stats;
  mutable wedged : bool;
  mutable lba : int;
  mutable count : int;
  mutable dmah : int;
  mutable busy : bool;
  mutable isr : int;
  mutable ready_at : int; (* device unavailable until then after a reset *)
}

let stats t = t.stats
let wedged t = t.wedged
let engine t = Kernel.engine t.kernel
let raise_irq t = Kernel.raise_irq t.kernel t.irq

let fail t =
  t.stats.errors <- t.stats.errors + 1;
  t.isr <- t.isr lor isr_err;
  if Rng.bool t.rng t.wedge_prob then t.wedged <- true

(* Resets take real time on disks (spin-up, IDENTIFY): the restarted
   driver polls STATUS until the controller is ready again.  This is
   the dominant part of the paper's per-crash dead time. *)
let do_reset t =
  if t.wedged && not t.has_master_reset then ()
  else begin
    if t.wedged && t.has_master_reset then t.wedged <- false;
    t.lba <- 0;
    t.count <- 0;
    t.dmah <- 0;
    t.busy <- false;
    t.isr <- 0;
    t.ready_at <- Engine.now (engine t) + t.reset_us
  end

let bios_reset t =
  t.wedged <- false;
  do_reset t

let sector_size t = Blockstore.sector_size t.store

let resetting t = Engine.now (engine t) < t.ready_at

let valid_range t = t.count >= 1 && t.count <= 256 && t.lba >= 0 && t.lba + t.count <= Blockstore.sectors t.store

let start_read t =
  if t.busy || resetting t || not (valid_range t) then fail t
  else begin
    t.busy <- true;
    let duration = t.seek_us + (t.count * sector_size t / t.rate) in
    ignore
      (Engine.schedule (engine t) ~after:duration (fun () ->
           t.busy <- false;
           if not t.wedged then begin
             let data = Blockstore.read t.store ~lba:t.lba ~count:t.count in
             match Kernel.dma t.kernel ~handle:t.dmah ~off:0 ~op:(`Write data) with
             | Ok _ ->
                 t.stats.reads <- t.stats.reads + 1;
                 t.isr <- t.isr lor isr_done;
                 raise_irq t
             | Error _ ->
                 (* The driver died mid-transfer and its mapping is
                    gone: surface an error interrupt. *)
                 fail t;
                 raise_irq t
           end))
  end

let start_write t =
  if t.busy || resetting t || not (valid_range t) then fail t
  else begin
    match Kernel.dma t.kernel ~handle:t.dmah ~off:0 ~op:(`Read (t.count * sector_size t)) with
    | Error _ -> fail t
    | Ok data ->
        t.busy <- true;
        let duration = t.seek_us + (t.count * sector_size t / t.rate) in
        ignore
          (Engine.schedule (engine t) ~after:duration (fun () ->
               t.busy <- false;
               if not t.wedged then begin
                 Blockstore.write t.store ~lba:t.lba data;
                 t.stats.writes <- t.stats.writes + 1;
                 t.isr <- t.isr lor isr_done;
                 raise_irq t
               end))
  end

let handle t ~reg access =
  if t.wedged then (match access with Bus.Read -> Ok 0xFFFF_FFFF | Bus.Write _ -> Ok 0)
  else
    match (reg, access) with
    | 0, Bus.Read -> Ok 0x5A7A
    | 1, Bus.Write v ->
        t.lba <- v;
        Ok 0
    | 2, Bus.Write v ->
        t.count <- v;
        Ok 0
    | 3, Bus.Write v ->
        t.dmah <- v;
        Ok 0
    | 4, Bus.Write 0x20 ->
        start_read t;
        Ok 0
    | 4, Bus.Write 0x30 ->
        start_write t;
        Ok 0
    | 4, Bus.Write 0xE7 -> Ok 0 (* flush: the store is always durable *)
    | 4, Bus.Write 0x10 ->
        do_reset t;
        Ok 0
    | 4, Bus.Write _ ->
        fail t;
        Ok 0
    | 5, Bus.Read ->
        Ok
          ((if t.busy || resetting t then 1 else 0)
          lor if t.isr land isr_err <> 0 then 8 else 0)
    | 6, Bus.Read -> Ok t.isr
    | 6, Bus.Write v ->
        t.isr <- t.isr land lnot v;
        Ok 0
    | _, Bus.Read -> Ok 0xFFFF_FFFF
    | _, Bus.Write _ ->
        fail t;
        Ok 0

let create ~kernel ~bus ~base ~irq ~store ~rng ?(rate_bytes_per_us = 40) ?(seek_us = 100)
    ?(reset_us = 600_000) ?(wedge_prob = 0.0) ?(has_master_reset = false) () =
  let t =
    {
      kernel;
      irq;
      store;
      rng;
      rate = rate_bytes_per_us;
      seek_us;
      reset_us;
      wedge_prob;
      has_master_reset;
      stats = { reads = 0; writes = 0; errors = 0 };
      wedged = false;
      lba = 0;
      count = 0;
      dmah = 0;
      busy = false;
      isr = 0;
      ready_at = 0;
    }
  in
  Bus.register bus ~base ~len:7 (handle t);
  t
