module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel

type stats = { mutable frames_rx : int; mutable frames_tx : int; mutable errors : int }

let isr_rx_ok = 0x1
let isr_tx_ok = 0x4
let isr_err = 0x8
let cmd_reset = 0x10
let cmd_rx_enable = 0x04
let cmd_tx_enable = 0x08
let max_frame = 2048

type t = {
  kernel : Resilix_kernel.Kernel.t;
  link : Link.t;
  side : Link.side;
  irq : int;
  mac : int;
  rng : Rng.t;
  rate : int;
  reset_us : int;
  wedge_prob : float;
  has_master_reset : bool;
  stats : stats;
  mutable wedged : bool;
  mutable ready_at : int; (* controller unavailable until then after a reset *)
  mutable rx_enabled : bool;
  mutable tx_enabled : bool;
  mutable promisc : bool;
  mutable isr : int;
  tx_staging : Buffer.t;
  mutable tx_busy : bool;
  rx_queue : bytes Queue.t;
  mutable rx_read_pos : int; (* word cursor into the head frame *)
}

let rx_queue_cap = 64

let stats t = t.stats
let wedged t = t.wedged
let engine t = Kernel.engine t.kernel
let raise_irq t = Kernel.raise_irq t.kernel t.irq
let resetting t = Engine.now (engine t) < t.ready_at

let maybe_wedge t =
  t.stats.errors <- t.stats.errors + 1;
  t.isr <- t.isr lor isr_err;
  if Rng.bool t.rng t.wedge_prob then t.wedged <- true

let dst_mac_of frame =
  if Bytes.length frame < 6 then 0
  else
    let b i = Char.code (Bytes.get frame i) in
    (b 0 lsl 40) lor (b 1 lsl 32) lor (b 2 lsl 24) lor (b 3 lsl 16) lor (b 4 lsl 8) lor b 5

let broadcast_mac = 0xFFFF_FFFF_FFFF

let on_link_rx t frame =
  if (not t.wedged) && (not (resetting t)) && t.rx_enabled then begin
    let dst = dst_mac_of frame in
    if t.promisc || dst = t.mac || dst = broadcast_mac then
      if Queue.length t.rx_queue < rx_queue_cap then begin
        let was_empty = Queue.is_empty t.rx_queue in
        Queue.push frame t.rx_queue;
        t.stats.frames_rx <- t.stats.frames_rx + 1;
        if was_empty then begin
          t.rx_read_pos <- 0;
          t.isr <- t.isr lor isr_rx_ok;
          raise_irq t
        end
      end
  end

let do_reset t =
  if t.wedged && not t.has_master_reset then ()
  else begin
    if t.wedged && t.has_master_reset then t.wedged <- false;
    t.ready_at <- Engine.now (engine t) + t.reset_us;
    t.rx_enabled <- false;
    t.tx_enabled <- false;
    t.promisc <- false;
    t.isr <- 0;
    Buffer.clear t.tx_staging;
    t.tx_busy <- false;
    Queue.clear t.rx_queue;
    t.rx_read_pos <- 0
  end

let bios_reset t =
  t.wedged <- false;
  do_reset t

let data_write t v =
  if Buffer.length t.tx_staging + 4 > max_frame then maybe_wedge t
  else begin
    Buffer.add_char t.tx_staging (Char.chr (v land 0xFF));
    Buffer.add_char t.tx_staging (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char t.tx_staging (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char t.tx_staging (Char.chr ((v lsr 24) land 0xFF))
  end

let data_read t =
  match Queue.peek_opt t.rx_queue with
  | None -> 0xFFFF_FFFF
  | Some frame ->
      let len = Bytes.length frame in
      let byte i = if i < len then Char.code (Bytes.get frame i) else 0 in
      let off = t.rx_read_pos in
      t.rx_read_pos <- off + 4;
      byte off lor (byte (off + 1) lsl 8) lor (byte (off + 2) lsl 16) lor (byte (off + 3) lsl 24)

let tx_go t len =
  let staged = Buffer.length t.tx_staging in
  if resetting t || t.tx_busy || (not t.tx_enabled) || len <= 0 || len > staged || len > max_frame
  then maybe_wedge t
  else begin
    let frame = Bytes.sub (Buffer.to_bytes t.tx_staging) 0 len in
    Buffer.clear t.tx_staging;
    t.tx_busy <- true;
    let tx_time = max 1 (len / t.rate) in
    ignore
      (Engine.schedule (engine t) ~after:tx_time (fun () ->
           t.tx_busy <- false;
           if not t.wedged then begin
             Link.send t.link t.side frame;
             t.stats.frames_tx <- t.stats.frames_tx + 1;
             t.isr <- t.isr lor isr_tx_ok;
             raise_irq t
           end))
  end

let rx_done t =
  if not (Queue.is_empty t.rx_queue) then ignore (Queue.pop t.rx_queue);
  t.rx_read_pos <- 0;
  if not (Queue.is_empty t.rx_queue) then begin
    t.isr <- t.isr lor isr_rx_ok;
    raise_irq t
  end

let handle t ~reg access =
  if t.wedged then (match access with Bus.Read -> Ok 0xFFFF_FFFF | Bus.Write _ -> Ok 0)
  else
    match (reg, access) with
    | 0, Bus.Read -> Ok 0x8390
    | 1, Bus.Read ->
        if resetting t then Ok cmd_reset
        else
          Ok
            ((if t.rx_enabled then cmd_rx_enable else 0)
            lor if t.tx_enabled then cmd_tx_enable else 0)
    | 1, Bus.Write v ->
        if v land cmd_reset <> 0 then do_reset t
        else if resetting t then ()
        else if v land lnot (cmd_reset lor cmd_rx_enable lor cmd_tx_enable) <> 0 then maybe_wedge t
        else begin
          t.rx_enabled <- v land cmd_rx_enable <> 0;
          t.tx_enabled <- v land cmd_tx_enable <> 0
        end;
        Ok 0
    | 2, Bus.Read -> Ok (if t.promisc then 1 else 0)
    | 2, Bus.Write v ->
        t.promisc <- v land 1 <> 0;
        Ok 0
    | 3, Bus.Read -> Ok t.isr
    | 3, Bus.Write v ->
        t.isr <- t.isr land lnot v;
        Ok 0
    | 4, Bus.Read -> Ok (data_read t)
    | 4, Bus.Write v ->
        data_write t v;
        Ok 0
    | 5, Bus.Write v ->
        tx_go t v;
        Ok 0
    | 6, Bus.Read -> Ok (match Queue.peek_opt t.rx_queue with Some f -> Bytes.length f | None -> 0)
    | 7, Bus.Write _ ->
        rx_done t;
        Ok 0
    | 8, Bus.Read -> Ok (t.mac land 0xFFFF_FFFF)
    | 9, Bus.Read -> Ok ((t.mac lsr 32) land 0xFFFF)
    | _, Bus.Read -> Ok 0xFFFF_FFFF
    | _, Bus.Write _ ->
        maybe_wedge t;
        Ok 0

let create ~kernel ~bus ~base ~irq ~link ~side ~mac ~rng ?(rate_bytes_per_us = 12)
    ?(reset_us = 150_000) ?(wedge_prob = 0.0) ?(has_master_reset = false) () =
  let t =
    {
      kernel;
      link;
      side;
      irq;
      mac;
      rng;
      rate = rate_bytes_per_us;
      reset_us;
      wedge_prob;
      has_master_reset;
      stats = { frames_rx = 0; frames_tx = 0; errors = 0 };
      wedged = false;
      ready_at = 0;
      rx_enabled = false;
      tx_enabled = false;
      promisc = false;
      isr = 0;
      tx_staging = Buffer.create 2048;
      tx_busy = false;
      rx_queue = Queue.create ();
      rx_read_pos = 0;
    }
  in
  Bus.register bus ~base ~len:10 (handle t);
  Link.attach link side (on_link_rx t);
  t
