(** SATA-style disk controller model (DMA-based).

    Backs the Fig. 8 experiment (dd with repeated disk-driver kills).

    Register map:
    {v
      0  ID      RO  0x5A7A
      1  LBA     W   first sector of the transfer
      2  COUNT   W   sectors to transfer (1..256)
      3  DMAH    W   DMA handle of the data buffer
      4  CMD     W   0x20 read, 0x30 write, 0xE7 flush, 0x10 reset
      5  STATUS  RO  bit0 busy, bit3 error
      6  ISR     R/ack  0x1 done, 0x8 error; writing acks
    v}

    Timing: a transfer takes [seek_us] plus sectors*512/[rate].  The
    default 33 bytes/us gives the ~33 MB/s the paper's SATA disk
    sustained.  A reset keeps the controller busy for [reset_us]
    (default 600 ms) — re-initialization latency is what makes a disk
    driver crash expensive (Fig. 8). *)

type t
(** A disk controller. *)

type stats = { mutable reads : int; mutable writes : int; mutable errors : int }

val create :
  kernel:Resilix_kernel.Kernel.t ->
  bus:Bus.t ->
  base:int ->
  irq:int ->
  store:Blockstore.t ->
  rng:Resilix_sim.Rng.t ->
  ?rate_bytes_per_us:int ->
  ?seek_us:int ->
  ?reset_us:int ->
  ?wedge_prob:float ->
  ?has_master_reset:bool ->
  unit ->
  t
(** Create and claim [base..base+6]. *)

val stats : t -> stats
(** Operation counters. *)

val wedged : t -> bool
(** Whether the controller is wedged. *)

val bios_reset : t -> unit
(** Out-of-band full reset. *)
