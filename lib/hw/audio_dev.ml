module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel

let isr_low_water = 0x1
let isr_err = 0x8
let drain_period = 10_000 (* us *)

type t = {
  kernel : Resilix_kernel.Kernel.t;
  irq : int;
  rng : Rng.t;
  byte_rate : int; (* bytes per second *)
  fifo_cap : int;
  low_water : int;
  wedge_prob : float;
  mutable wedged : bool;
  mutable playing : bool;
  mutable fifo : int; (* bytes buffered *)
  mutable isr : int;
  mutable underruns : int;
  mutable played : int;
  mutable above_low_water : bool;
}

let underruns t = t.underruns
let bytes_played t = t.played
let wedged t = t.wedged
let engine t = Kernel.engine t.kernel

let maybe_wedge t =
  t.isr <- t.isr lor isr_err;
  if Rng.bool t.rng t.wedge_prob then t.wedged <- true

(* Periodic drain: consume a period's worth of samples; count an
   underrun for each period the device was playing with an empty
   FIFO. *)
let rec drain t =
  ignore
    (Engine.schedule (engine t) ~after:drain_period (fun () ->
         if not t.wedged then begin
           if t.playing then begin
             let want = t.byte_rate * drain_period / 1_000_000 in
             let take = min t.fifo want in
             t.fifo <- t.fifo - take;
             t.played <- t.played + take;
             if take < want then t.underruns <- t.underruns + 1;
             if t.fifo <= t.low_water && t.above_low_water then begin
               t.above_low_water <- false;
               t.isr <- t.isr lor isr_low_water;
               Kernel.raise_irq t.kernel t.irq
             end
           end;
           drain t
         end))

let handle t ~reg access =
  if t.wedged then (match access with Bus.Read -> Ok 0xFFFF_FFFF | Bus.Write _ -> Ok 0)
  else
    match (reg, access) with
    | 0, Bus.Read -> Ok 0xAD10
    | 1, Bus.Read -> Ok (if t.playing then 1 else 0)
    | 1, Bus.Write v ->
        if v land 0x10 <> 0 then begin
          t.playing <- false;
          t.fifo <- 0;
          t.isr <- 0;
          t.above_low_water <- true
        end
        else if v land lnot 0x11 <> 0 then maybe_wedge t
        else t.playing <- v land 1 <> 0;
        Ok 0
    | 2, Bus.Write _ ->
        if t.fifo + 4 > t.fifo_cap then maybe_wedge t
        else begin
          t.fifo <- t.fifo + 4;
          if t.fifo > t.low_water then t.above_low_water <- true
        end;
        Ok 0
    | 3, Bus.Read -> Ok t.fifo
    | 4, Bus.Read -> Ok t.isr
    | 4, Bus.Write v ->
        t.isr <- t.isr land lnot v;
        Ok 0
    | 5, Bus.Read -> Ok t.underruns
    | _, Bus.Read -> Ok 0xFFFF_FFFF
    | _, Bus.Write _ ->
        maybe_wedge t;
        Ok 0

let create ~kernel ~bus ~base ~irq ~rng ?(byte_rate = 176_400) ?(fifo_cap = 16_384)
    ?(wedge_prob = 0.0) () =
  let t =
    {
      kernel;
      irq;
      rng;
      byte_rate;
      fifo_cap;
      low_water = fifo_cap / 4;
      wedge_prob;
      wedged = false;
      playing = false;
      fifo = 0;
      isr = 0;
      underruns = 0;
      played = 0;
      above_low_water = true;
    }
  in
  Bus.register bus ~base ~len:6 (handle t);
  drain t;
  t
