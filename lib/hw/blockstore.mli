(** Sparse backing store for simulated disks.

    Unwritten sectors have deterministic pseudo-random content derived
    from the store's seed — this is how we "fill a 1-GB file with
    random data" (Sec. 7.1) without allocating a gigabyte: content is
    generated on first read and is stable across reads, so checksums
    of repeated transfers must agree. *)

type t
(** A block store. *)

val create : seed:int -> sectors:int -> sector_size:int -> t
(** A store of [sectors] sectors of [sector_size] bytes. *)

val sector_size : t -> int
(** Bytes per sector. *)

val sectors : t -> int
(** Capacity in sectors. *)

val read : t -> lba:int -> count:int -> bytes
(** Read [count] consecutive sectors.  @raise Invalid_argument when
    the range is outside the device. *)

val write : t -> lba:int -> bytes -> unit
(** Write whole sectors starting at [lba]; length must be a multiple
    of the sector size. *)

val written_sectors : t -> int
(** Number of sectors that have been explicitly written. *)
