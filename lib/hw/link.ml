module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng

type side = A | B

type endpoint = { mutable deliver : (bytes -> unit) option; mutable busy_until : int }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  latency : int;
  bytes_per_us : int;
  drop_prob : float;
  corrupt_prob : float;
  a : endpoint;
  b : endpoint;
  mutable sent : int;
  mutable dropped : int;
}

let create ~engine ~rng ?(latency = 200) ?(bytes_per_us = 100) ?(drop_prob = 0.) ?(corrupt_prob = 0.)
    () =
  {
    engine;
    rng;
    latency;
    bytes_per_us;
    drop_prob;
    corrupt_prob;
    a = { deliver = None; busy_until = 0 };
    b = { deliver = None; busy_until = 0 };
    sent = 0;
    dropped = 0;
  }

let side_ep t = function A -> t.a | B -> t.b
let other_ep t = function A -> t.b | B -> t.a

let attach t side callback = (side_ep t side).deliver <- Some callback

let send t side frame =
  t.sent <- t.sent + 1;
  let src = side_ep t side and dst = other_ep t side in
  let now = Engine.now t.engine in
  let start = max now src.busy_until in
  let tx_time = max 1 (Bytes.length frame / t.bytes_per_us) in
  src.busy_until <- start + tx_time;
  if Rng.bool t.rng t.drop_prob then t.dropped <- t.dropped + 1
  else begin
    let frame =
      if Rng.bool t.rng t.corrupt_prob && Bytes.length frame > 0 then begin
        let copy = Bytes.copy frame in
        let i = Rng.int t.rng (Bytes.length copy) in
        Bytes.set copy i (Char.chr (Char.code (Bytes.get copy i) lxor (1 lsl Rng.int t.rng 8)));
        copy
      end
      else Bytes.copy frame
    in
    let deliver_at = start + tx_time + t.latency in
    ignore
      (Engine.schedule_at t.engine ~at:deliver_at (fun () ->
           match dst.deliver with Some f -> f frame | None -> ()))
  end

let frames_sent t = t.sent
let frames_dropped t = t.dropped
