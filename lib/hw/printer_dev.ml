module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel

let isr_drained = 0x1
let isr_err = 0x8
let tick = 10_000 (* us *)

type t = {
  kernel : Resilix_kernel.Kernel.t;
  irq : int;
  rng : Rng.t;
  byte_rate : int;
  fifo_cap : int;
  wedge_prob : float;
  mutable wedged : bool;
  mutable online : bool;
  fifo : char Queue.t;
  output : Buffer.t;
  mutable isr : int;
}

let printed t = Buffer.contents t.output
let wedged t = t.wedged
let engine t = Kernel.engine t.kernel

let maybe_wedge t =
  t.isr <- t.isr lor isr_err;
  if Rng.bool t.rng t.wedge_prob then t.wedged <- true

let rec run t =
  ignore
    (Engine.schedule (engine t) ~after:tick (fun () ->
         if not t.wedged then begin
           if t.online then begin
             let budget = t.byte_rate * tick / 1_000_000 in
             let had_work = not (Queue.is_empty t.fifo) in
             let printed = ref 0 in
             while !printed < budget && not (Queue.is_empty t.fifo) do
               Buffer.add_char t.output (Queue.pop t.fifo);
               incr printed
             done;
             if had_work && Queue.is_empty t.fifo then begin
               t.isr <- t.isr lor isr_drained;
               Kernel.raise_irq t.kernel t.irq
             end
           end;
           run t
         end))

let handle t ~reg access =
  if t.wedged then (match access with Bus.Read -> Ok 0xFFFF_FFFF | Bus.Write _ -> Ok 0)
  else
    match (reg, access) with
    | 0, Bus.Read -> Ok 0x9817
    | 1, Bus.Read -> Ok (if t.online then 1 else 0)
    | 1, Bus.Write v ->
        if v land 0x10 <> 0 then begin
          t.online <- false;
          Queue.clear t.fifo;
          t.isr <- 0
        end
        else if v land lnot 0x11 <> 0 then maybe_wedge t
        else t.online <- v land 1 <> 0;
        Ok 0
    | 2, Bus.Write v ->
        if Queue.length t.fifo >= t.fifo_cap then maybe_wedge t
        else Queue.push (Char.chr (v land 0xFF)) t.fifo;
        Ok 0
    | 3, Bus.Read -> Ok (if Queue.length t.fifo < t.fifo_cap then 1 else 0)
    | 4, Bus.Read -> Ok t.isr
    | 4, Bus.Write v ->
        t.isr <- t.isr land lnot v;
        Ok 0
    | 5, Bus.Read -> Ok (Queue.length t.fifo)
    | _, Bus.Read -> Ok 0xFFFF_FFFF
    | _, Bus.Write _ ->
        maybe_wedge t;
        Ok 0

let create ~kernel ~bus ~base ~irq ~rng ?(byte_rate = 50_000) ?(fifo_cap = 4096)
    ?(wedge_prob = 0.0) () =
  let t =
    {
      kernel;
      irq;
      rng;
      byte_rate;
      fifo_cap;
      wedge_prob;
      wedged = false;
      online = false;
      fifo = Queue.create ();
      output = Buffer.create 4096;
      isr = 0;
    }
  in
  Bus.register bus ~base ~len:6 (handle t);
  run t;
  t
