(** The simulated machine's fixed hardware map: I/O port bases and IRQ
    lines for every device, plus network addressing.  Shared by the
    boot code, driver specs (least-authority port/IRQ grants), and the
    experiment harness. *)

val rtl8139_base : int
val rtl8139_irq : int
val dp8390_base : int
val dp8390_irq : int
val sata_base : int
val sata_irq : int
val floppy_base : int
val floppy_irq : int
val audio_base : int
val audio_irq : int
val printer_base : int
val printer_irq : int
val cd_base : int
val cd_irq : int

val local_ip : int
(** IP of the machine under test. *)

val rtl_peer_ip : int
(** IP of the remote peer behind the RTL8139's link. *)

val dp_peer_ip : int
(** IP of the remote peer behind the DP8390's link. *)

val rtl8139_mac : int
val dp8390_mac : int
val rtl_peer_mac : int
val dp_peer_mac : int
