module Engine = Resilix_sim.Engine
module Trace = Resilix_sim.Trace
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel
module Sysif = Resilix_kernel.Sysif
module Api = Resilix_kernel.Sysif.Api
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Privilege = Resilix_proto.Privilege
module Signal = Resilix_proto.Signal
module Spec = Resilix_proto.Spec
module Wellknown = Resilix_proto.Wellknown
module Policy = Resilix_core.Policy
module Reincarnation = Resilix_core.Reincarnation
module Service = Resilix_core.Service

type opts = {
  seed : int;
  engine_policy : Engine.policy;
  trace_echo : bool;
  inet_driver : string;
  disk_mb : int;
  fs_files : (string * int) list;
  link_latency : int;
  link_bytes_per_us : int;
  link_drop_prob : float;
  peer_files : (string * (int * int)) list;
  nic_wedge_prob : float;
  nic_has_master_reset : bool;
  policies : (string * Policy.t) list;
  heartbeat_tick : int;
}

let default_opts =
  {
    seed = 42;
    engine_policy = Engine.Fifo;
    trace_echo = false;
    inet_driver = "eth.rtl8139";
    disk_mb = 64;
    fs_files = [];
    link_latency = 200;
    (* The link is a 100 Mbit Ethernet: ~12 bytes/us.  This is what
       capped the paper's wget at ~10.8 MB/s. *)
    link_bytes_per_us = 12;
    link_drop_prob = 0.;
    peer_files = [];
    nic_wedge_prob = 0.;
    nic_has_master_reset = false;
    policies =
      [
        ("direct", Policy.direct);
        ("generic", Policy.generic ~alert:"root" ());
        ("breaker", Policy.breaker ());
      ];
    heartbeat_tick = 100_000;
  }

type t = {
  engine : Engine.t;
  kernel : Kernel.t;
  trace : Trace.t;
  rng : Rng.t;
  bus : Resilix_hw.Bus.t;
  store : Resilix_hw.Blockstore.t;
  nic_rtl : Resilix_hw.Nic8139.t;
  nic_dp : Resilix_hw.Nic8390.t;
  disk : Resilix_hw.Disk.t;
  floppy : Resilix_hw.Disk.t;
  audio : Resilix_hw.Audio_dev.t;
  printer : Resilix_hw.Printer_dev.t;
  cd : Resilix_hw.Cd_dev.t;
  rtl_link : Resilix_hw.Link.t;
  dp_link : Resilix_hw.Link.t;
  rtl_peer : Resilix_net.Peer.t;
  dp_peer : Resilix_net.Peer.t;
  pm : Resilix_pm.Proc_manager.t;
  ds : Resilix_datastore.Data_store.t;
  rs : Reincarnation.t;
  vfs : Resilix_fs.Vfs.t;
  mfs : Resilix_fs.Mfs.t;
  inet : Resilix_net.Inet.t;
  metrics : Resilix_obs.Metrics.t;
  spans : Resilix_obs.Span.t;
  mutable app_counter : int;
}

(* ------------------------------------------------------------------ *)
(* Canned service specs                                                *)
(* ------------------------------------------------------------------ *)

let args_of ~base ~irq = [ string_of_int base; string_of_int irq ]

let spec_rtl8139 ?(policy = "direct") ?(heartbeat_period = 500_000) () =
  Spec.make ~name:"eth.rtl8139" ~program:"eth.rtl8139"
    ~args:(args_of ~base:Hwmap.rtl8139_base ~irq:Hwmap.rtl8139_irq)
    ~privileges:
      (Privilege.driver ~ipc_to:[ "inet" ]
         ~io_ports:[ (Hwmap.rtl8139_base, Hwmap.rtl8139_base + 11) ]
         ~irqs:[ Hwmap.rtl8139_irq ])
    ~heartbeat_period ~policy
    ~mem_kb:Resilix_drivers.Netdriver_rtl8139.memory_kb ()

let spec_dp8390 ?(policy = "direct") ?(heartbeat_period = 500_000) () =
  Spec.make ~name:"eth.dp8390" ~program:"eth.dp8390"
    ~args:(args_of ~base:Hwmap.dp8390_base ~irq:Hwmap.dp8390_irq)
    ~privileges:
      (Privilege.driver ~ipc_to:[ "inet" ]
         ~io_ports:[ (Hwmap.dp8390_base, Hwmap.dp8390_base + 9) ]
         ~irqs:[ Hwmap.dp8390_irq ])
    ~heartbeat_period ~policy
    ~mem_kb:Resilix_drivers.Netdriver_dp8390.memory_kb ()

let spec_sata ?(policy = "direct") ?(heartbeat_period = 500_000) () =
  Spec.make ~name:"blk.sata" ~program:"blk.sata"
    ~args:(args_of ~base:Hwmap.sata_base ~irq:Hwmap.sata_irq)
    ~privileges:
      (Privilege.driver ~ipc_to:[ "mfs"; "vfs" ]
         ~io_ports:[ (Hwmap.sata_base, Hwmap.sata_base + 6) ]
         ~irqs:[ Hwmap.sata_irq ])
    ~heartbeat_period ~policy
    ~mem_kb:Resilix_drivers.Blockdriver_disk.memory_kb ()

let spec_floppy ?(policy = "generic") () =
  Spec.make ~name:"blk.floppy" ~program:"blk.floppy"
    ~args:(args_of ~base:Hwmap.floppy_base ~irq:Hwmap.floppy_irq)
    ~privileges:
      (Privilege.driver ~ipc_to:[ "mfs"; "vfs" ]
         ~io_ports:[ (Hwmap.floppy_base, Hwmap.floppy_base + 6) ]
         ~irqs:[ Hwmap.floppy_irq ])
    ~policy
    ~mem_kb:Resilix_drivers.Blockdriver_disk.memory_kb ()

let spec_ramdisk ?(size_kb = 512) () =
  Spec.make ~name:"blk.ram" ~program:"blk.ram" ~args:[ string_of_int size_kb ]
    ~privileges:(Privilege.driver ~ipc_to:[ "mfs"; "vfs" ] ~io_ports:[] ~irqs:[])
    ~policy:""
    ~mem_kb:(Resilix_drivers.Blockdriver_ramdisk.memory_needed_kb ~size_kb)
    ()

let spec_audio ?(policy = "direct") () =
  Spec.make ~name:"chr.audio" ~program:"chr.audio"
    ~args:(args_of ~base:Hwmap.audio_base ~irq:Hwmap.audio_irq)
    ~privileges:
      (Privilege.driver ~ipc_to:[ "vfs" ]
         ~io_ports:[ (Hwmap.audio_base, Hwmap.audio_base + 5) ]
         ~irqs:[ Hwmap.audio_irq ])
    ~policy
    ~mem_kb:Resilix_drivers.Chardriver_audio.memory_kb ()

let spec_printer ?(policy = "direct") () =
  Spec.make ~name:"chr.printer" ~program:"chr.printer"
    ~args:(args_of ~base:Hwmap.printer_base ~irq:Hwmap.printer_irq)
    ~privileges:
      (Privilege.driver ~ipc_to:[ "vfs" ]
         ~io_ports:[ (Hwmap.printer_base, Hwmap.printer_base + 5) ]
         ~irqs:[ Hwmap.printer_irq ])
    ~policy
    ~mem_kb:Resilix_drivers.Chardriver_printer.memory_kb ()

let spec_cd ?(policy = "direct") () =
  Spec.make ~name:"chr.cd" ~program:"chr.cd"
    ~args:(args_of ~base:Hwmap.cd_base ~irq:Hwmap.cd_irq)
    ~privileges:
      (Privilege.driver ~ipc_to:[ "vfs" ]
         ~io_ports:[ (Hwmap.cd_base, Hwmap.cd_base + 6) ]
         ~irqs:[ Hwmap.cd_irq ])
    ~policy
    ~mem_kb:Resilix_drivers.Chardriver_cd.memory_kb ()

(* ------------------------------------------------------------------ *)
(* Boot                                                                *)
(* ------------------------------------------------------------------ *)

let server_priv = Privilege.server ~ipc_to:Privilege.All

let boot ?(opts = default_opts) () =
  let engine = Engine.create ~policy:opts.engine_policy () in
  let trace = Trace.create ~echo:opts.trace_echo () in
  let master_rng = Rng.create ~seed:opts.seed in
  let rng_kernel = Rng.split master_rng in
  let rng_hw = Rng.split master_rng in
  let rng_links = Rng.split master_rng in
  let rng_peers = Rng.split master_rng in
  (* One metric registry and one span collector for the whole machine:
     the kernel registers its counters in the former, RS records
     recoveries in the latter, and dependents (MFS, INET) mark their
     re-open phase on the same spans. *)
  let metrics = Resilix_obs.Metrics.create () in
  let spans = Resilix_obs.Span.create () in
  let kernel = Kernel.create ~engine ~trace ~rng:rng_kernel ~metrics () in
  (* --- hardware --- *)
  let bus = Resilix_hw.Bus.create () in
  Resilix_hw.Bus.attach bus kernel;
  let rtl_link =
    Resilix_hw.Link.create ~engine ~rng:(Rng.split rng_links) ~latency:opts.link_latency
      ~bytes_per_us:opts.link_bytes_per_us ~drop_prob:opts.link_drop_prob ()
  in
  let dp_link =
    Resilix_hw.Link.create ~engine ~rng:(Rng.split rng_links) ~latency:opts.link_latency
      ~bytes_per_us:opts.link_bytes_per_us ~drop_prob:opts.link_drop_prob ()
  in
  let nic_rtl =
    Resilix_hw.Nic8139.create ~kernel ~bus ~base:Hwmap.rtl8139_base ~irq:Hwmap.rtl8139_irq
      ~link:rtl_link ~side:Resilix_hw.Link.A ~mac:Hwmap.rtl8139_mac ~rng:(Rng.split rng_hw)
      ~wedge_prob:opts.nic_wedge_prob ~has_master_reset:opts.nic_has_master_reset ()
  in
  let nic_dp =
    Resilix_hw.Nic8390.create ~kernel ~bus ~base:Hwmap.dp8390_base ~irq:Hwmap.dp8390_irq
      ~link:dp_link ~side:Resilix_hw.Link.A ~mac:Hwmap.dp8390_mac ~rng:(Rng.split rng_hw)
      ~wedge_prob:opts.nic_wedge_prob ~has_master_reset:opts.nic_has_master_reset ()
  in
  let store =
    Resilix_hw.Blockstore.create ~seed:(opts.seed * 7919) ~sectors:(opts.disk_mb * 2048)
      ~sector_size:512
  in
  let disk =
    Resilix_hw.Disk.create ~kernel ~bus ~base:Hwmap.sata_base ~irq:Hwmap.sata_irq ~store
      ~rng:(Rng.split rng_hw) ()
  in
  let floppy_store =
    Resilix_hw.Blockstore.create ~seed:(opts.seed * 104729) ~sectors:2880 ~sector_size:512
  in
  let floppy =
    Resilix_hw.Disk.create ~kernel ~bus ~base:Hwmap.floppy_base ~irq:Hwmap.floppy_irq
      ~store:floppy_store ~rng:(Rng.split rng_hw) ~rate_bytes_per_us:1 ~seek_us:20_000 ()
  in
  let audio =
    Resilix_hw.Audio_dev.create ~kernel ~bus ~base:Hwmap.audio_base ~irq:Hwmap.audio_irq
      ~rng:(Rng.split rng_hw) ()
  in
  let printer =
    Resilix_hw.Printer_dev.create ~kernel ~bus ~base:Hwmap.printer_base ~irq:Hwmap.printer_irq
      ~rng:(Rng.split rng_hw) ()
  in
  let cd =
    Resilix_hw.Cd_dev.create ~kernel ~bus ~base:Hwmap.cd_base ~irq:Hwmap.cd_irq
      ~rng:(Rng.split rng_hw) ()
  in
  (* --- remote peers --- *)
  let rtl_peer =
    Resilix_net.Peer.create ~engine ~rng:(Rng.split rng_peers) ~link:rtl_link
      ~side:Resilix_hw.Link.B ~ip:Hwmap.rtl_peer_ip ~mac:Hwmap.rtl_peer_mac
      ~files:opts.peer_files ()
  in
  let dp_peer =
    Resilix_net.Peer.create ~engine ~rng:(Rng.split rng_peers) ~link:dp_link
      ~side:Resilix_hw.Link.B ~ip:Hwmap.dp_peer_ip ~mac:Hwmap.dp_peer_mac ()
  in
  (* --- format the disk --- *)
  let mk =
    Resilix_fs.Mkfs.format
      ~write_block:(fun block data -> Resilix_hw.Blockstore.write store ~lba:(block * 8) data)
      ~total_blocks:(opts.disk_mb * 256) ~inode_count:1024
  in
  let mk =
    List.fold_left
      (fun mk (name, size) -> Resilix_fs.Mkfs.add_contiguous_file mk ~name ~size)
      mk opts.fs_files
  in
  Resilix_fs.Mkfs.finish mk;
  (* --- driver binaries --- *)
  Kernel.register_program kernel "eth.rtl8139" Resilix_drivers.Netdriver_rtl8139.program;
  Kernel.register_program kernel "eth.dp8390" Resilix_drivers.Netdriver_dp8390.program;
  Kernel.register_program kernel "blk.sata" Resilix_drivers.Blockdriver_disk.program;
  Kernel.register_program kernel "blk.floppy" Resilix_drivers.Blockdriver_disk.program;
  Kernel.register_program kernel "blk.ram" Resilix_drivers.Blockdriver_ramdisk.program;
  Kernel.register_program kernel "chr.audio" Resilix_drivers.Chardriver_audio.program;
  Kernel.register_program kernel "chr.printer" Resilix_drivers.Chardriver_printer.program;
  Kernel.register_program kernel "chr.cd" Resilix_drivers.Chardriver_cd.program;
  (* --- trusted servers (Fig. 1) --- *)
  let pm = Resilix_pm.Proc_manager.create () in
  let ds = Resilix_datastore.Data_store.create () in
  let rs =
    Reincarnation.create
      ~register_program:(Kernel.register_program kernel)
      ~policies:opts.policies
      ~complainers:[ Wellknown.vfs; Wellknown.mfs; Wellknown.inet ]
      ~heartbeat_tick:opts.heartbeat_tick ~spans ()
  in
  let vfs =
    Resilix_fs.Vfs.create
      ~chardevs:
        [
          ("/dev/audio", ("chr.audio", 0));
          ("/dev/printer", ("chr.printer", 0));
          ("/dev/cd", ("chr.cd", 0));
        ]
      ()
  in
  let mfs = Resilix_fs.Mfs.create ~driver_key:"blk.sata" ~spans () in
  let gateway_mac =
    if String.equal opts.inet_driver "eth.dp8390" then Hwmap.dp_peer_mac else Hwmap.rtl_peer_mac
  in
  let inet =
    Resilix_net.Inet.create ~local_ip:Hwmap.local_ip ~gateway_mac ~driver_key:opts.inet_driver
      ~spans ()
  in
  Kernel.spawn_wellknown kernel ~ep:Wellknown.pm ~name:Wellknown.name_pm
    ~priv:
      {
        server_priv with
        Privilege.kcalls =
          Privilege.Only [ "proc_create"; "proc_kill"; "reap_exit"; "alarm" ];
      }
    (Resilix_pm.Proc_manager.body pm);
  Kernel.spawn_wellknown kernel ~ep:Wellknown.ds ~name:Wellknown.name_ds ~priv:server_priv
    (Resilix_datastore.Data_store.body ds);
  Kernel.spawn_wellknown kernel ~ep:Wellknown.rs ~name:Wellknown.name_rs
    ~priv:{ server_priv with Privilege.kcalls = Privilege.All }
    (Reincarnation.body rs);
  Kernel.spawn_wellknown kernel ~ep:Wellknown.vfs ~name:Wellknown.name_vfs ~priv:server_priv
    ~mem_kb:Resilix_fs.Vfs.memory_kb (Resilix_fs.Vfs.body vfs);
  Kernel.spawn_wellknown kernel ~ep:Wellknown.mfs ~name:Wellknown.name_mfs ~priv:server_priv
    ~mem_kb:Resilix_fs.Mfs.memory_kb (Resilix_fs.Mfs.body mfs);
  Kernel.spawn_wellknown kernel ~ep:Wellknown.inet ~name:Wellknown.name_inet ~priv:server_priv
    ~mem_kb:1024 (Resilix_net.Inet.body inet);
  {
    engine;
    kernel;
    trace;
    rng = master_rng;
    bus;
    store;
    nic_rtl;
    nic_dp;
    disk;
    floppy;
    audio;
    printer;
    cd;
    rtl_link;
    dp_link;
    rtl_peer;
    dp_peer;
    pm;
    ds;
    rs;
    vfs;
    mfs;
    inet;
    metrics;
    spans;
    app_counter = 0;
  }

let obs_lines ?label t =
  let snapshot = Resilix_obs.Metrics.snapshot ~at:(Engine.now t.engine) t.metrics in
  Resilix_obs.Export.metric_lines ?label snapshot
  @ Resilix_obs.Export.span_lines ?label t.spans

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

(* The program key is made unique with a per-boot counter: a global
   one would leak cross-trial state into trace events (the key appears
   in [Spawn] payloads), breaking trial hermeticity. *)
let spawn_app t ~name ?(priv = Privilege.app) ?(mem_kb = 256) body =
  t.app_counter <- t.app_counter + 1;
  let key = Printf.sprintf "app#%s#%d" name t.app_counter in
  Kernel.register_program t.kernel key body;
  match Kernel.spawn_dynamic t.kernel ~name ~program:key ~args:[] ~priv ~mem_kb with
  | Ok ep -> ep
  | Error e -> failwith ("spawn_app failed: " ^ Errno.to_string e)

let run ?until ?max_events t = Engine.run ?until ?max_events t.engine

let run_until t ?(timeout = 60_000_000) pred =
  let deadline = Engine.now t.engine + timeout in
  let rec step () =
    if pred () then true
    else if Engine.now t.engine >= deadline then false
    else if Engine.step t.engine then step ()
    else pred ()
  in
  step ()

let start_services t specs =
  let done_flag = ref false in
  ignore
    (spawn_app t ~name:"service-setup" (fun () ->
         List.iter
           (fun spec ->
             match Service.up spec with
             | Ok () -> ()
             | Error e ->
                 Api.panic
                   (Printf.sprintf "service up %s failed: %s" spec.Spec.name (Errno.to_string e)))
           specs;
         List.iter
           (fun spec ->
             match Service.wait_until_up spec.Spec.name with
             | Ok _ -> ()
             | Error e ->
                 Api.panic
                   (Printf.sprintf "service %s did not come up: %s" spec.Spec.name
                      (Errno.to_string e)))
           specs;
         done_flag := true));
  if not (run_until t (fun () -> !done_flag)) then
    failwith "start_services: services did not come up"

(* The paper's crash simulation (Sec. 7.1): "a tiny shell script that
   first initiates the I/O transfer, and then repeatedly looks up the
   driver's process ID and kills the driver using a SIGKILL signal". *)
let start_crash_script t ~target ~interval ?count () =
  ignore
    (spawn_app t ~name:("crash-" ^ target) (fun () ->
         let remaining = ref (Option.value count ~default:max_int) in
         while !remaining > 0 do
           Api.sleep interval;
           decr remaining;
           match Api.sendrec Wellknown.pm (Message.Pm_pidof { name = target }) with
           | Ok (Sysif.Rx_msg { body = Message.Pm_pidof_reply { result = Ok pid }; _ }) ->
               ignore
                 (Api.sendrec Wellknown.pm (Message.Pm_kill { pid; signal = Signal.Sig_kill }))
           | _ -> () (* between incarnations: try again next round *)
         done))

let kill_service_once t ~target =
  match Kernel.find_by_name t.kernel target with
  | Some ep -> Kernel.kill t.kernel ep (Resilix_proto.Status.Killed Signal.Sig_kill)
  | None -> Error Errno.E_noent

let inject_fault t ~target ~image:(origin, insn_count) ftype =
  match Kernel.find_by_name t.kernel target with
  | None -> None
  | Some ep -> (
      match Kernel.proc_memory t.kernel ep with
      | None -> None
      | Some mem -> Resilix_vm.Fault.inject t.rng mem ~base:origin ~insn_count ftype)
