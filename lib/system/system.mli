(** Boot: assembles a complete simulated machine.

    One call to {!boot} builds the microkernel, the I/O bus with every
    device model ({!Hwmap}), two network links with remote peers, a
    formatted disk, and the trusted server set (PM, DS, RS, VFS, MFS,
    INET) — i.e. the architecture of the paper's Fig. 1.  Drivers are
    then started through the service utility like on a real system,
    which is what makes them guarded, restartable components. *)

module Spec := Resilix_proto.Spec
module Endpoint := Resilix_proto.Endpoint
module Errno := Resilix_proto.Errno

type opts = {
  seed : int;  (** master RNG seed; everything derives from it *)
  engine_policy : Resilix_sim.Engine.policy;
      (** same-instant event ordering (default FIFO; the DST layer
          boots machines under seeded/scripted tie-breaking) *)
  trace_echo : bool;  (** mirror the trace to stderr *)
  inet_driver : string;  (** which Ethernet driver INET binds, e.g. ["eth.rtl8139"] *)
  disk_mb : int;  (** SATA disk size *)
  fs_files : (string * int) list;  (** contiguous files created by mkfs: (name, bytes) *)
  link_latency : int;  (** one-way latency of both links, us *)
  link_bytes_per_us : int;  (** link serialization rate (12 = 100 Mbit Ethernet) *)
  link_drop_prob : float;  (** random loss on the links *)
  peer_files : (string * (int * int)) list;  (** files served by the RTL-side peer *)
  nic_wedge_prob : float;  (** probability that garbage programming wedges a NIC *)
  nic_has_master_reset : bool;  (** whether a wedged NIC accepts a software master reset *)
  policies : (string * Resilix_core.Policy.t) list;  (** policy-script registry for RS *)
  heartbeat_tick : int;  (** RS polling period *)
}

val default_opts : opts
(** Seed 42, FIFO tie-breaking, 64 MB disk, no loss, no wedging,
    RTL8139 bound, 100 ms RS tick, policies [direct] and [generic]
    predefined. *)

type t = {
  engine : Resilix_sim.Engine.t;
  kernel : Resilix_kernel.Kernel.t;
  trace : Resilix_sim.Trace.t;
  rng : Resilix_sim.Rng.t;
  bus : Resilix_hw.Bus.t;
  store : Resilix_hw.Blockstore.t;
  nic_rtl : Resilix_hw.Nic8139.t;
  nic_dp : Resilix_hw.Nic8390.t;
  disk : Resilix_hw.Disk.t;
  floppy : Resilix_hw.Disk.t;
  audio : Resilix_hw.Audio_dev.t;
  printer : Resilix_hw.Printer_dev.t;
  cd : Resilix_hw.Cd_dev.t;
  rtl_link : Resilix_hw.Link.t;
  dp_link : Resilix_hw.Link.t;
  rtl_peer : Resilix_net.Peer.t;
  dp_peer : Resilix_net.Peer.t;
  pm : Resilix_pm.Proc_manager.t;
  ds : Resilix_datastore.Data_store.t;
  rs : Resilix_core.Reincarnation.t;
  vfs : Resilix_fs.Vfs.t;
  mfs : Resilix_fs.Mfs.t;
  inet : Resilix_net.Inet.t;
  metrics : Resilix_obs.Metrics.t;
      (** system-wide metric registry (kernel counters, server/driver counters) *)
  spans : Resilix_obs.Span.t;  (** system-wide recovery span collector *)
  mutable app_counter : int;
      (** per-boot uniquifier for {!spawn_app} program keys (kept
          boot-local so trials stay hermetic) *)
}

val boot : ?opts:opts -> unit -> t
(** Build the machine.  No virtual time has elapsed yet; run the
    engine to let the servers initialize. *)

val obs_lines : ?label:string -> t -> string list
(** JSONL observability dump of the machine so far: one line per
    metric (counters, gauges, histograms), one per recovery span, and
    one MTTR report line per recovered component — see
    {!Resilix_obs.Export}. *)

(** {1 Canned service specs}

    Each follows the paper's service-utility arguments: stable name,
    binary, least-authority privileges (exactly its own ports and IRQ),
    heartbeat period, policy. *)

val spec_rtl8139 : ?policy:string -> ?heartbeat_period:int -> unit -> Spec.t
val spec_dp8390 : ?policy:string -> ?heartbeat_period:int -> unit -> Spec.t
val spec_sata : ?policy:string -> ?heartbeat_period:int -> unit -> Spec.t
val spec_floppy : ?policy:string -> unit -> Spec.t
val spec_ramdisk : ?size_kb:int -> unit -> Spec.t
val spec_audio : ?policy:string -> unit -> Spec.t
val spec_printer : ?policy:string -> unit -> Spec.t
val spec_cd : ?policy:string -> unit -> Spec.t

(** {1 Running workloads} *)

val spawn_app :
  t ->
  name:string ->
  ?priv:Resilix_proto.Privilege.t ->
  ?mem_kb:int ->
  (unit -> unit) ->
  Endpoint.t
(** Start an application process running the given body. *)

val start_services : t -> Spec.t list -> unit
(** Start drivers through the service utility (spawns a setup app that
    issues [service up] for each spec and waits until it is up). *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Advance the simulation. *)

val run_until : t -> ?timeout:int -> (unit -> bool) -> bool
(** Step the engine until the predicate holds; [false] on timeout
    (default 60 simulated seconds) or event exhaustion. *)

(** {1 Failure tooling} *)

val start_crash_script : t -> target:string -> interval:int -> ?count:int -> unit -> unit
(** The Sec. 7.1 crash simulation: an app that periodically looks up
    the driver's pid and SIGKILLs it ([count] times; default
    unbounded). *)

val kill_service_once : t -> target:string -> (unit, Errno.t) result
(** Immediately SIGKILL the named service's current process. *)

val inject_fault :
  t -> target:string -> image:int * int -> Resilix_vm.Fault.fault_type -> string option
(** Mutate the running driver's loaded code image (Sec. 7.2).
    [image] is the (origin, instruction count) from the driver's
    [image_info]. *)
