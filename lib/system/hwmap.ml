let rtl8139_base = 0x300
let rtl8139_irq = 11
let dp8390_base = 0x320
let dp8390_irq = 12
let sata_base = 0x340
let sata_irq = 13
let floppy_base = 0x360
let floppy_irq = 14
let audio_base = 0x380
let audio_irq = 5
let printer_base = 0x390
let printer_irq = 6
let cd_base = 0x3A0
let cd_irq = 7

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let local_ip = ip 10 0 0 1
let rtl_peer_ip = ip 10 0 0 2
let dp_peer_ip = ip 10 0 0 3

let rtl8139_mac = 0x0200_0000_0001
let dp8390_mac = 0x0200_0000_0003
let rtl_peer_mac = 0x0200_0000_0002
let dp_peer_mac = 0x0200_0000_0004
