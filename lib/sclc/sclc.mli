(** Source-code line counter, reproducing the methodology of the
    paper's Fig. 9 (which used the sclc.pl Perl script): count
    {e executable} lines — "blank lines, comments, and definitions in
    header files do not add to the code complexity, so these were
    omitted" — and, separately, the lines that exist only to support
    recovery.

    Recovery lines are identified by in-source markers:
    - a line containing [(*@recovery*)] counts as one recovery line;
    - everything between [(*@recovery-begin*)] and [(*@recovery-end*)]
      counts as recovery (the markers themselves do not). *)

type counts = {
  code : int;  (** executable (non-blank, non-comment) lines *)
  recovery : int;  (** the subset marked as recovery-specific *)
}

val count_string : string -> counts
(** Count OCaml source given as a string (handles nested comments and
    string literals). *)

val count_file : string -> counts
(** Count one [.ml] file. *)

val count_files : string list -> counts
(** Sum over files; nonexistent files count zero. *)

val find_repo_root : ?from:string -> unit -> string option
(** Walk upward looking for a [dune-project] — locates the repository
    so the Fig. 9 harness can run from any working directory. *)
