type counts = { code : int; recovery : int }

let recovery_line_marker = "@recovery*)"
let recovery_begin = "(*@recovery-begin*)"
let recovery_end = "(*@recovery-end*)"

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n > 0 && scan 0

(* One pass over the source: track comment nesting and string
   literals; a line is code when any character on it is outside both.
   Region markers toggle the recovery flag. *)
let count_string src =
  let code = ref 0 and recovery = ref 0 in
  let in_recovery = ref false in
  let comment_depth = ref 0 in
  let in_string = ref false in
  let lines = String.split_on_char '\n' src in
  List.iter
    (fun line ->
      let has_code = ref false in
      let n = String.length line in
      let i = ref 0 in
      while !i < n do
        let c = line.[!i] in
        if !in_string then begin
          if c = '\\' then incr i (* skip the escaped character *)
          else if c = '"' then in_string := false
        end
        else if !comment_depth > 0 then begin
          if c = '(' && !i + 1 < n && line.[!i + 1] = '*' then begin
            incr comment_depth;
            incr i
          end
          else if c = '*' && !i + 1 < n && line.[!i + 1] = ')' then begin
            decr comment_depth;
            incr i
          end
        end
        else if c = '(' && !i + 1 < n && line.[!i + 1] = '*' then begin
          comment_depth := 1;
          incr i
        end
        else if c = '"' then begin
          in_string := true;
          has_code := true
        end
        else if c <> ' ' && c <> '\t' && c <> '\r' then has_code := true;
        incr i
      done;
      (* Region markers (they sit inside comments, so scan the raw
         line text). *)
      let is_begin = contains line recovery_begin in
      let is_end = contains line recovery_end in
      if !has_code then begin
        incr code;
        if !in_recovery || contains line recovery_line_marker then incr recovery
      end;
      if is_begin then in_recovery := true;
      if is_end then in_recovery := false)
    lines;
  { code = !code; recovery = !recovery }

let count_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  count_string content

let count_files paths =
  List.fold_left
    (fun acc path ->
      if Sys.file_exists path then begin
        let c = count_file path in
        { code = acc.code + c.code; recovery = acc.recovery + c.recovery }
      end
      else acc)
    { code = 0; recovery = 0 }
    paths

let find_repo_root ?(from = Sys.getcwd ()) () =
  let rec ascend dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else ascend parent
  in
  ascend from
