type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7

type instr =
  | Nop
  | Movi of reg * int
  | Mov of reg * reg
  | Add of reg * reg
  | Addi of reg * int
  | Sub of reg * reg
  | Andi of reg * int
  | Shr of reg * int
  | Shl of reg * int
  | Load of reg * reg * int
  | Store of reg * int * reg
  | Loadb of reg * reg * int
  | Storeb of reg * int * reg
  | In of reg * int
  | Out of int * reg
  | Jmp of string
  | Jz of reg * string
  | Jnz of reg * string
  | Chkeq of reg * int
  | Chklt of reg * int
  | Chknz of reg
  | Ret
  | Fail
  | Label of string

let instr_size = 8

let reg_index = function
  | R0 -> 0
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7

(* Opcode map.  Gaps are deliberate: bit flips in the opcode byte have
   a realistic chance of producing an illegal instruction. *)
let op_nop = 0x01
let op_movi = 0x02
let op_mov = 0x03
let op_add = 0x04
let op_addi = 0x05
let op_sub = 0x06
let op_andi = 0x07
let op_shr = 0x08
let op_shl = 0x09
let op_load = 0x0A
let op_store = 0x0B
let op_loadb = 0x0C
let op_storeb = 0x0D
let op_in = 0x10
let op_out = 0x11
let op_jmp = 0x20
let op_jz = 0x21
let op_jnz = 0x22
let op_chkeq = 0x30
let op_chklt = 0x31
let op_chknz = 0x32
let op_ret = 0x40
let op_fail = 0x41

let opcode_info op =
  match op with
  | 0x01 -> Some "nop"
  | 0x02 -> Some "movi"
  | 0x03 -> Some "mov"
  | 0x04 -> Some "add"
  | 0x05 -> Some "addi"
  | 0x06 -> Some "sub"
  | 0x07 -> Some "andi"
  | 0x08 -> Some "shr"
  | 0x09 -> Some "shl"
  | 0x0A -> Some "load"
  | 0x0B -> Some "store"
  | 0x0C -> Some "loadb"
  | 0x0D -> Some "storeb"
  | 0x10 -> Some "in"
  | 0x11 -> Some "out"
  | 0x20 -> Some "jmp"
  | 0x21 -> Some "jz"
  | 0x22 -> Some "jnz"
  | 0x30 -> Some "chkeq"
  | 0x31 -> Some "chklt"
  | 0x32 -> Some "chknz"
  | 0x40 -> Some "ret"
  | 0x41 -> Some "fail"
  | _ -> None

let encoded_length instrs =
  List.length (List.filter (function Label _ -> false | _ -> true) instrs)

(* First pass: label -> instruction index. *)
let label_table instrs =
  let table = Hashtbl.create 16 in
  let idx = ref 0 in
  List.iter
    (fun i ->
      match i with
      | Label name ->
          if Hashtbl.mem table name then invalid_arg ("Isa.assemble: duplicate label " ^ name);
          Hashtbl.replace table name !idx
      | _ -> incr idx)
    instrs;
  table

let fits_imm v = v >= -0x8000_0000 && v <= 0xFFFF_FFFF

let assemble instrs =
  let labels = label_table instrs in
  let target name =
    match Hashtbl.find_opt labels name with
    | Some i -> i
    | None -> invalid_arg ("Isa.assemble: unknown label " ^ name)
  in
  let buf = Buffer.create (encoded_length instrs * instr_size) in
  let emit op rd rs imm =
    if not (fits_imm imm) then invalid_arg "Isa.assemble: immediate out of range";
    let imm = imm land 0xFFFF_FFFF in
    Buffer.add_char buf (Char.chr op);
    Buffer.add_char buf (Char.chr rd);
    Buffer.add_char buf (Char.chr rs);
    Buffer.add_char buf '\000';
    Buffer.add_char buf (Char.chr (imm land 0xFF));
    Buffer.add_char buf (Char.chr ((imm lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr ((imm lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((imm lsr 24) land 0xFF))
  in
  let r = reg_index in
  List.iter
    (fun i ->
      match i with
      | Label _ -> ()
      | Nop -> emit op_nop 0 0 0
      | Movi (rd, imm) -> emit op_movi (r rd) 0 imm
      | Mov (rd, rs) -> emit op_mov (r rd) (r rs) 0
      | Add (rd, rs) -> emit op_add (r rd) (r rs) 0
      | Addi (rd, imm) -> emit op_addi (r rd) 0 imm
      | Sub (rd, rs) -> emit op_sub (r rd) (r rs) 0
      | Andi (rd, imm) -> emit op_andi (r rd) 0 imm
      | Shr (rd, imm) -> emit op_shr (r rd) 0 imm
      | Shl (rd, imm) -> emit op_shl (r rd) 0 imm
      | Load (rd, rs, imm) -> emit op_load (r rd) (r rs) imm
      | Store (rd, imm, rs) -> emit op_store (r rd) (r rs) imm
      | Loadb (rd, rs, imm) -> emit op_loadb (r rd) (r rs) imm
      | Storeb (rd, imm, rs) -> emit op_storeb (r rd) (r rs) imm
      | In (rd, port) -> emit op_in (r rd) 0 port
      | Out (port, rs) -> emit op_out 0 (r rs) port
      | Jmp l -> emit op_jmp 0 0 (target l)
      | Jz (rd, l) -> emit op_jz (r rd) 0 (target l)
      | Jnz (rd, l) -> emit op_jnz (r rd) 0 (target l)
      | Chkeq (rd, imm) -> emit op_chkeq (r rd) 0 imm
      | Chklt (rd, imm) -> emit op_chklt (r rd) 0 imm
      | Chknz rd -> emit op_chknz (r rd) 0 0
      | Ret -> emit op_ret 0 0 0
      | Fail -> emit op_fail 0 0 0)
    instrs;
  Buffer.to_bytes buf

type decoded =
  | D_nop
  | D_movi of int * int
  | D_mov of int * int
  | D_add of int * int
  | D_addi of int * int
  | D_sub of int * int
  | D_andi of int * int
  | D_shr of int * int
  | D_shl of int * int
  | D_load of int * int * int
  | D_store of int * int * int
  | D_loadb of int * int * int
  | D_storeb of int * int * int
  | D_in of int * int
  | D_out of int * int
  | D_jmp of int
  | D_jz of int * int
  | D_jnz of int * int
  | D_chkeq of int * int
  | D_chklt of int * int
  | D_chknz of int
  | D_ret
  | D_fail

exception Illegal_instruction of { index : int; byte : int }

(* Sign-extend a 32-bit value. *)
let signed imm = if imm land 0x8000_0000 <> 0 then imm - 0x1_0000_0000 else imm

let decode image ~index =
  let off = index * instr_size in
  if off < 0 || off + instr_size > Bytes.length image then
    raise (Illegal_instruction { index; byte = -1 });
  let byte i = Char.code (Bytes.get image (off + i)) in
  let op = byte 0 in
  (* Register fields are architecturally 3 bits: corrupted high bits
     are ignored rather than trapping, like dense real-world ISAs —
     a mutated register field yields wrong behaviour, not #UD. *)
  let rd = byte 1 land 7 in
  let rs = byte 2 land 7 in
  let imm = byte 4 lor (byte 5 lsl 8) lor (byte 6 lsl 16) lor (byte 7 lsl 24) in
  let simm = signed imm in
  if op = op_nop then D_nop
  else if op = op_movi then D_movi (rd, simm)
  else if op = op_mov then D_mov (rd, rs)
  else if op = op_add then D_add (rd, rs)
  else if op = op_addi then D_addi (rd, simm)
  else if op = op_sub then D_sub (rd, rs)
  else if op = op_andi then D_andi (rd, simm)
  else if op = op_shr then D_shr (rd, imm land 31)
  else if op = op_shl then D_shl (rd, imm land 31)
  else if op = op_load then D_load (rd, rs, simm)
  else if op = op_store then D_store (rd, simm, rs)
  else if op = op_loadb then D_loadb (rd, rs, simm)
  else if op = op_storeb then D_storeb (rd, simm, rs)
  else if op = op_in then D_in (rd, imm)
  else if op = op_out then D_out (imm, rs)
  else if op = op_jmp then D_jmp imm
  else if op = op_jz then D_jz (rd, imm)
  else if op = op_jnz then D_jnz (rd, imm)
  else if op = op_chkeq then D_chkeq (rd, simm)
  else if op = op_chklt then D_chklt (rd, simm)
  else if op = op_chknz then D_chknz rd
  else if op = op_ret then D_ret
  else if op = op_fail then D_fail
  else raise (Illegal_instruction { index; byte = op })

let disassemble_one image ~index =
  match decode image ~index with
  | D_nop -> "nop"
  | D_movi (rd, imm) -> Printf.sprintf "movi r%d, %d" rd imm
  | D_mov (rd, rs) -> Printf.sprintf "mov r%d, r%d" rd rs
  | D_add (rd, rs) -> Printf.sprintf "add r%d, r%d" rd rs
  | D_addi (rd, imm) -> Printf.sprintf "addi r%d, %d" rd imm
  | D_sub (rd, rs) -> Printf.sprintf "sub r%d, r%d" rd rs
  | D_andi (rd, imm) -> Printf.sprintf "andi r%d, 0x%x" rd imm
  | D_shr (rd, n) -> Printf.sprintf "shr r%d, %d" rd n
  | D_shl (rd, n) -> Printf.sprintf "shl r%d, %d" rd n
  | D_load (rd, rs, imm) -> Printf.sprintf "load r%d, [r%d%+d]" rd rs imm
  | D_store (rd, imm, rs) -> Printf.sprintf "store [r%d%+d], r%d" rd imm rs
  | D_loadb (rd, rs, imm) -> Printf.sprintf "loadb r%d, [r%d%+d]" rd rs imm
  | D_storeb (rd, imm, rs) -> Printf.sprintf "storeb [r%d%+d], r%d" rd imm rs
  | D_in (rd, port) -> Printf.sprintf "in r%d, 0x%x" rd port
  | D_out (port, rs) -> Printf.sprintf "out 0x%x, r%d" port rs
  | D_jmp target -> Printf.sprintf "jmp %d" target
  | D_jz (rd, target) -> Printf.sprintf "jz r%d, %d" rd target
  | D_jnz (rd, target) -> Printf.sprintf "jnz r%d, %d" rd target
  | D_chkeq (rd, imm) -> Printf.sprintf "chkeq r%d, %d" rd imm
  | D_chklt (rd, imm) -> Printf.sprintf "chklt r%d, %d" rd imm
  | D_chknz rd -> Printf.sprintf "chknz r%d" rd
  | D_ret -> "ret"
  | D_fail -> "fail"
  | exception Illegal_instruction { byte; _ } -> Printf.sprintf "<illegal 0x%02X>" (byte land 0xFF)

let disassemble image =
  List.init (Bytes.length image / instr_size) (fun index -> disassemble_one image ~index)
