(** Interpreter for driver-VM programs.

    Programs execute *inside a driver process's fiber*: instruction
    fetches read the process's own memory (so injected faults in the
    loaded image take effect immediately), loads/stores go to the same
    address space (wild pointers raise real MMU faults that kill the
    process with SIGSEGV), and [In]/[Out] instructions are mediated
    I/O-port kernel calls subject to the driver's privileges.

    Failure surface, mapped to the paper's defect classes (Sec. 5.1):
    - {!Check_failed} and {!Io_failed} are caught by the driver
      library, which panics — class 1 (exit/panic).
    - Illegal opcodes raise SIGILL and MMU faults raise SIGSEGV via
      the kernel — class 2 (CPU/MMU exception).
    - Runaway loops never return to the driver's message loop, so
      heartbeats go unanswered — class 4. *)

exception Check_failed of { index : int; detail : string }
(** A [Chk*] consistency check failed: the driver detected an
    internal inconsistency. *)

exception Io_failed of { port : int }
(** A mediated port access was rejected (e.g. a corrupted port number
    outside the driver's privilege range). *)

type program = {
  base : int;  (** address of the loaded image in the process *)
  insn_count : int;  (** number of encoded instructions *)
}

val load : base:int -> bytes -> program
(** Copy an assembled image into the *calling process's* memory at
    [base] and describe it.  Must be performed from inside a fiber. *)

val run : ?fuel_slice:int -> program -> regs:int array -> int
(** Execute from instruction 0 until [Ret], returning r0.  [regs] is
    the 8-register file (mutated in place; index 0 = r0), which is how
    the OCaml part of a driver passes parameters in and reads results
    out.  Every [fuel_slice] instructions (default 32) the interpreter
    yields ~1 microsecond of simulated CPU time, so runaway loops
    advance virtual time instead of hanging the simulator.

    @raise Check_failed / Io_failed as documented above; illegal
    instructions and MMU faults terminate the process directly. *)
