module Rng = Resilix_sim.Rng
module Memory = Resilix_kernel.Memory

type fault_type =
  | Change_src
  | Change_dst
  | Garble_pointer
  | Stale_param
  | Invert_loop
  | Flip_bit
  | Elide

let all = [| Change_src; Change_dst; Garble_pointer; Stale_param; Invert_loop; Flip_bit; Elide |]

let to_string = function
  | Change_src -> "change-src-register"
  | Change_dst -> "change-dst-register"
  | Garble_pointer -> "garble-pointer"
  | Stale_param -> "stale-parameter"
  | Invert_loop -> "invert-loop-condition"
  | Flip_bit -> "flip-bit"
  | Elide -> "elide-instruction"

let random_type rng = Rng.pick rng all

(* Opcode bytes; keep in sync with Isa. *)
let op_movi = 0x02
let op_nop = 0x01
let op_jz = 0x21
let op_jnz = 0x22

let opcode_of mem ~base index = Memory.get_u8 mem (base + (index * Isa.instr_size))
let set_opcode mem ~base index v = Memory.set_u8 mem (base + (index * Isa.instr_size)) v

let has_rs op = List.mem op [ 0x03; 0x04; 0x06; 0x0A; 0x0B; 0x0C; 0x0D; 0x11 ]
let has_rd op = List.mem op [ 0x02; 0x03; 0x04; 0x05; 0x06; 0x07; 0x08; 0x09; 0x0A; 0x0B; 0x0C; 0x0D; 0x10; 0x21; 0x22; 0x30; 0x31; 0x32 ]
let is_mem op = List.mem op [ 0x0A; 0x0B; 0x0C; 0x0D ]
let is_cond_jump op = op = op_jz || op = op_jnz

(* Find an instruction satisfying [pred], scanning circularly from a
   random start so repeated injections spread over the image. *)
let find_target rng mem ~base ~insn_count pred =
  if insn_count = 0 then None
  else begin
    let start = Rng.int rng insn_count in
    let rec scan i =
      if i >= insn_count then None
      else
        let index = (start + i) mod insn_count in
        if pred (opcode_of mem ~base index) then Some index else scan (i + 1)
    in
    scan 0
  end

let instr_bytes mem ~base index =
  Memory.read mem ~addr:(base + (index * Isa.instr_size)) ~len:Isa.instr_size

let inject rng mem ~base ~insn_count ft =
  (* Include the disassembly of the mutated instruction, like a real
     injector's log would. *)
  let describe index what =
    let rendered = Isa.disassemble_one (instr_bytes mem ~base index) ~index:0 in
    Some (Printf.sprintf "%s at instruction %d: now `%s`" what index rendered)
  in
  match ft with
  | Change_src -> (
      match find_target rng mem ~base ~insn_count has_rs with
      | None -> None
      | Some index ->
          let addr = base + (index * Isa.instr_size) + 2 in
          Memory.set_u8 mem addr (Rng.int rng 8);
          describe index "changed source register")
  | Change_dst -> (
      match find_target rng mem ~base ~insn_count has_rd with
      | None -> None
      | Some index ->
          let addr = base + (index * Isa.instr_size) + 1 in
          Memory.set_u8 mem addr (Rng.int rng 8);
          describe index "changed destination register")
  | Garble_pointer -> (
      match find_target rng mem ~base ~insn_count is_mem with
      | None -> None
      | Some index ->
          (* XOR the 32-bit address operand with a random mask: the
             classic wild-pointer corruption. *)
          let addr = base + (index * Isa.instr_size) + 4 in
          let mask = 1 + Rng.int rng 0x7FFF_FFFE in
          let old = Memory.get_u32 mem addr in
          Memory.set_u32 mem addr (old lxor mask);
          describe index "garbled pointer operand")
  | Stale_param -> (
      match find_target rng mem ~base ~insn_count (fun op -> op = op_movi) with
      | None -> None
      | Some index ->
          (* Dropping the MOVI means the code keeps using whatever the
             register currently holds — the "current value instead of
             parameter" fault. *)
          set_opcode mem ~base index op_nop;
          describe index "parameter load elided (stale register reuse)")
  | Invert_loop -> (
      match find_target rng mem ~base ~insn_count is_cond_jump with
      | None -> None
      | Some index ->
          let op = opcode_of mem ~base index in
          set_opcode mem ~base index (if op = op_jz then op_jnz else op_jz);
          describe index "inverted loop/branch condition")
  | Flip_bit ->
      if insn_count = 0 then None
      else begin
        let index = Rng.int rng insn_count in
        let byte_off = Rng.int rng Isa.instr_size in
        let bit = Rng.int rng 8 in
        let addr = base + (index * Isa.instr_size) + byte_off in
        Memory.set_u8 mem addr (Memory.get_u8 mem addr lxor (1 lsl bit));
        describe index (Printf.sprintf "flipped bit %d of byte %d" bit byte_off)
      end
  | Elide ->
      if insn_count = 0 then None
      else begin
        let index = Rng.int rng insn_count in
        set_opcode mem ~base index op_nop;
        describe index "instruction elided"
      end
