(** The driver VM instruction set.

    Device drivers in this system implement their device-facing hot
    paths (hardware init, transmit, receive, interrupt handling) as
    programs for a small register machine whose code lives *inside the
    driver process's address space*, like the text segment of a real
    driver binary.  That is what makes the paper's software
    fault-injection methodology (Sec. 7.2) reproducible: the injector
    mutates encoded instructions of the running driver, and the
    consequences — panics, MMU faults, illegal opcodes, runaway
    loops — emerge from execution rather than being scripted.

    Encoding: each instruction occupies 8 bytes —
    [opcode, rd, rs, 0, imm32 (little endian)]. *)

type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7

type instr =
  | Nop
  | Movi of reg * int  (** rd := imm *)
  | Mov of reg * reg  (** rd := rs *)
  | Add of reg * reg  (** rd := rd + rs *)
  | Addi of reg * int  (** rd := rd + imm *)
  | Sub of reg * reg  (** rd := rd - rs *)
  | Andi of reg * int  (** rd := rd land imm *)
  | Shr of reg * int  (** rd := rd lsr imm *)
  | Shl of reg * int  (** rd := (rd lsl imm) land 0xFFFFFFFF *)
  | Load of reg * reg * int  (** rd := mem32\[rs + imm\] *)
  | Store of reg * int * reg  (** mem32\[rd + imm\] := rs *)
  | Loadb of reg * reg * int  (** rd := mem8\[rs + imm\] *)
  | Storeb of reg * int * reg  (** mem8\[rd + imm\] := rs land 0xFF *)
  | In of reg * int  (** rd := io_in(imm) — mediated port read *)
  | Out of int * reg  (** io_out(imm, rs) — mediated port write *)
  | Jmp of string  (** unconditional jump to label *)
  | Jz of reg * string  (** jump if rd = 0 *)
  | Jnz of reg * string  (** jump if rd <> 0 *)
  | Chkeq of reg * int  (** consistency check: panic unless rd = imm *)
  | Chklt of reg * int  (** consistency check: panic unless rd < imm *)
  | Chknz of reg  (** consistency check: panic unless rd <> 0 *)
  | Ret  (** finish, returning r0 *)
  | Fail  (** explicit panic *)
  | Label of string  (** assembler pseudo-instruction, emits nothing *)

val instr_size : int
(** Bytes per encoded instruction (8). *)

val assemble : instr list -> bytes
(** Resolve labels and encode.  Jump targets become absolute
    instruction indices.  @raise Invalid_argument on unknown labels,
    duplicate labels, or immediates that do not fit in 32 bits. *)

val encoded_length : instr list -> int
(** Number of encoded (non-label) instructions. *)

(** A decoded instruction as the interpreter sees it (jumps are
    absolute indices after assembly). *)
type decoded =
  | D_nop
  | D_movi of int * int
  | D_mov of int * int
  | D_add of int * int
  | D_addi of int * int
  | D_sub of int * int
  | D_andi of int * int
  | D_shr of int * int
  | D_shl of int * int
  | D_load of int * int * int
  | D_store of int * int * int
  | D_loadb of int * int * int
  | D_storeb of int * int * int
  | D_in of int * int
  | D_out of int * int
  | D_jmp of int
  | D_jz of int * int
  | D_jnz of int * int
  | D_chkeq of int * int
  | D_chklt of int * int
  | D_chknz of int
  | D_ret
  | D_fail

exception Illegal_instruction of { index : int; byte : int }
(** Raised when decoding hits an invalid opcode — the simulated CPU's
    illegal-instruction exception.  Register fields are 3 bits and
    mask silently, so (as on dense real-world ISAs) a corrupted
    register field produces wrong behaviour rather than a trap. *)

val decode : bytes -> index:int -> decoded
(** Decode the instruction at instruction index [index] of an encoded
    image.  @raise Illegal_instruction on junk. *)

val opcode_info : int -> string option
(** Mnemonic for an opcode byte, or [None] if it is not valid —
    exposed so the fault injector can report what it corrupted. *)

val disassemble_one : bytes -> index:int -> string
(** Render one encoded instruction, e.g. ["load r3, [r5+0]"]; corrupt
    encodings render as ["<illegal 0xEE>"]. *)

val disassemble : bytes -> string list
(** Render a whole image, one line per instruction. *)
