(** Software fault injection (Sec. 7.2).

    Mutates the encoded driver-VM image *inside a running driver's
    address space*, emulating the binary-mutation fault injectors the
    paper builds on (Ng & Chen; Swift et al.).  The seven fault types
    are the paper's list verbatim. *)

type fault_type =
  | Change_src  (** 1: change source register of an instruction *)
  | Change_dst  (** 2: change destination register *)
  | Garble_pointer  (** 3: corrupt the address operand of a load/store *)
  | Stale_param  (** 4: use current register value instead of passed parameter (drop the initializing MOVI) *)
  | Invert_loop  (** 5: invert the termination condition of a loop *)
  | Flip_bit  (** 6: flip one bit of an instruction *)
  | Elide  (** 7: elide an instruction *)

val all : fault_type array
(** The seven types, in the paper's order. *)

val to_string : fault_type -> string
(** Short name for reports. *)

val random_type : Resilix_sim.Rng.t -> fault_type
(** Uniformly chosen fault type. *)

val inject :
  Resilix_sim.Rng.t ->
  Resilix_kernel.Memory.t ->
  base:int ->
  insn_count:int ->
  fault_type ->
  string option
(** [inject rng mem ~base ~insn_count ft] applies one fault of type
    [ft] to the image at [base].  Starts at a random instruction and
    scans for one the fault type applies to; returns a description of
    what was mutated, or [None] when no suitable instruction exists. *)
