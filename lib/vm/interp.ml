module Memory = Resilix_kernel.Memory
module Sysif = Resilix_kernel.Sysif
module Api = Resilix_kernel.Sysif.Api
module Status = Resilix_proto.Status
module Signal = Resilix_proto.Signal

exception Check_failed of { index : int; detail : string }
exception Io_failed of { port : int }

type program = { base : int; insn_count : int }

let load ~base image =
  let mem = Api.memory () in
  Memory.write mem ~addr:base image;
  { base; insn_count = Bytes.length image / Isa.instr_size }

let mask32 v = v land 0xFFFF_FFFF

let run ?(fuel_slice = 32) program ~regs =
  if Array.length regs <> 8 then invalid_arg "Interp.run: want 8 registers";
  let mem = Api.memory () in
  let fetch_buf = Bytes.create Isa.instr_size in
  let fetch index =
    (* Out-of-image program counters are treated like executing
       unmapped memory: an illegal-instruction CPU exception. *)
    if index < 0 || index >= program.insn_count then
      raise (Sysif.Killed_exn (Status.Killed Signal.Sig_ill));
    Memory.blit_out mem ~addr:(program.base + (index * Isa.instr_size)) ~dst:fetch_buf ~dst_off:0
      ~len:Isa.instr_size;
    match Isa.decode fetch_buf ~index:0 with
    | d -> d
    | exception Isa.Illegal_instruction _ ->
        raise (Sysif.Killed_exn (Status.Killed Signal.Sig_ill))
  in
  let pc = ref 0 in
  let fuel = ref fuel_slice in
  let running = ref true in
  while !running do
    decr fuel;
    if !fuel <= 0 then begin
      fuel := fuel_slice;
      Api.yield ~cost:1 ()
    end;
    let index = !pc in
    incr pc;
    match fetch index with
    | Isa.D_nop -> ()
    | Isa.D_movi (rd, imm) -> regs.(rd) <- mask32 imm
    | Isa.D_mov (rd, rs) -> regs.(rd) <- regs.(rs)
    | Isa.D_add (rd, rs) -> regs.(rd) <- mask32 (regs.(rd) + regs.(rs))
    | Isa.D_addi (rd, imm) -> regs.(rd) <- mask32 (regs.(rd) + imm)
    | Isa.D_sub (rd, rs) -> regs.(rd) <- mask32 (regs.(rd) - regs.(rs))
    | Isa.D_andi (rd, imm) -> regs.(rd) <- regs.(rd) land mask32 imm
    | Isa.D_shr (rd, n) -> regs.(rd) <- regs.(rd) lsr n
    | Isa.D_shl (rd, n) -> regs.(rd) <- mask32 (regs.(rd) lsl n)
    | Isa.D_load (rd, rs, imm) -> regs.(rd) <- Memory.get_u32 mem (regs.(rs) + imm)
    | Isa.D_store (rd, imm, rs) -> Memory.set_u32 mem (regs.(rd) + imm) regs.(rs)
    | Isa.D_loadb (rd, rs, imm) -> regs.(rd) <- Memory.get_u8 mem (regs.(rs) + imm)
    | Isa.D_storeb (rd, imm, rs) -> Memory.set_u8 mem (regs.(rd) + imm) regs.(rs)
    | Isa.D_in (rd, port) -> begin
        match Api.devio_in port with
        | Ok v -> regs.(rd) <- mask32 v
        | Error _ -> raise (Io_failed { port })
      end
    | Isa.D_out (port, rs) -> begin
        match Api.devio_out port regs.(rs) with
        | Ok () -> ()
        | Error _ -> raise (Io_failed { port })
      end
    | Isa.D_jmp target -> pc := target
    | Isa.D_jz (rd, target) -> if regs.(rd) = 0 then pc := target
    | Isa.D_jnz (rd, target) -> if regs.(rd) <> 0 then pc := target
    | Isa.D_chkeq (rd, imm) ->
        if regs.(rd) <> mask32 imm then
          raise
            (Check_failed
               { index; detail = Printf.sprintf "r%d = %d, expected %d" rd regs.(rd) (mask32 imm) })
    | Isa.D_chklt (rd, imm) ->
        if regs.(rd) >= mask32 imm then
          raise
            (Check_failed
               { index; detail = Printf.sprintf "r%d = %d, expected < %d" rd regs.(rd) (mask32 imm) })
    | Isa.D_chknz rd ->
        if regs.(rd) = 0 then
          raise (Check_failed { index; detail = Printf.sprintf "r%d is zero" rd })
    | Isa.D_ret -> running := false
    | Isa.D_fail -> raise (Check_failed { index; detail = "explicit fail" })
  done;
  regs.(0)
