(** The data store (DS) server.

    Three roles from Sec. 5.3 of the paper:
    - {b naming}: stable component names mapped to current IPC
      endpoints, kept up to date by the reincarnation server;
    - {b publish/subscribe}: components subscribe to name patterns
      (e.g. the network server subscribes to ["eth.*"]) and get an
      [N_ds_update] notification plus [Ds_check] drain when a watched
      name changes — this is how driver restarts reach dependents;
    - {b private state backup}: system processes may store snapshots
      keyed by their stable name, authenticated against the naming
      table so a restarted (new-endpoint) instance can retrieve them.

    Patterns are exact strings or a prefix followed by ["*"]. *)

type t
(** Shared handle for introspection in tests. *)

val create : unit -> t
(** Make a DS instance. *)

val body : t -> unit -> unit
(** The process body; boot runs this at the well-known DS slot. *)

val pattern_matches : pattern:string -> string -> bool
(** The pattern language, exposed for testing: exact match, or
    prefix-["*"]. *)

val keys : t -> string list
(** Current registry keys (sorted), for tests and the harness. *)

val lookup : t -> string -> Resilix_proto.Endpoint.t option
(** The endpoint the naming table currently maps [name] to ([None]
    when the key is absent or holds a non-endpoint value).  The DST
    endpoint-consistency probe compares this against the kernel's
    live process table. *)

val degraded : t -> string list
(** The components currently published as degraded (non-zero
    ["degraded.<name>"] records), sorted.  Processes inside the
    simulation get the same list via the [Ds_degraded_list] request;
    this accessor serves the DST report and the health tooling. *)
