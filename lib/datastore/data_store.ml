module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message

type subscriber = { ep : Endpoint.t; mutable patterns : string list; pending : (string * Message.ds_value) Queue.t }

type t = {
  registry : (string, Message.ds_value) Hashtbl.t;
  mutable subscribers : subscriber list;
  snapshots : (string * string, string) Hashtbl.t; (* (owner stable name, key) -> data *)
}

let create () = { registry = Hashtbl.create 32; subscribers = []; snapshots = Hashtbl.create 32 }

let pattern_matches ~pattern key =
  let plen = String.length pattern in
  if plen > 0 && pattern.[plen - 1] = '*' then begin
    let prefix = String.sub pattern 0 (plen - 1) in
    String.length key >= String.length prefix && String.sub key 0 (String.length prefix) = prefix
  end
  else String.equal pattern key

let keys t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.registry [])

let lookup t name =
  match Hashtbl.find_opt t.registry name with
  | Some (Message.V_endpoint ep) -> Some ep
  | Some (Message.V_str _) | Some (Message.V_int _) | None -> None

(* The components currently published as degraded: every non-zero
   ["degraded.<name>"] record, name sorted.  RS publishes these when a
   circuit breaker opens and clears them (0-publish then delete) when
   it closes. *)
let degraded_prefix = "degraded."

let degraded t =
  List.sort String.compare
    (Hashtbl.fold
       (fun key value acc ->
         let plen = String.length degraded_prefix in
         match value with
         | Message.V_int v
           when v <> 0
                && String.length key > plen
                && String.sub key 0 plen = degraded_prefix ->
             String.sub key plen (String.length key - plen) :: acc
         | _ -> acc)
       t.registry [])

let subscriber_for t ep =
  match List.find_opt (fun s -> Endpoint.equal s.ep ep) t.subscribers with
  | Some s -> s
  | None ->
      let s = { ep; patterns = []; pending = Queue.create () } in
      t.subscribers <- s :: t.subscribers;
      s

(*@recovery-begin*)
(* Resolve the stable name the naming table currently associates with
   [ep]; this is how snapshot ownership survives endpoint changes. *)
let stable_name_of t ep =
  Hashtbl.fold
    (fun key value acc ->
      match (acc, value) with
      | None, Message.V_endpoint e when Endpoint.equal e ep -> Some key
      | _ -> acc)
    t.registry None

let publish t key value =
  Hashtbl.replace t.registry key value;
  Api.metric_incr "ds.publishes";
  Api.emit "ds" (Resilix_obs.Event.Ds_publish { key });
  (* Fan out to matching subscribers; dead ones are pruned when the
     notification bounces. *)
  t.subscribers <-
    List.filter
      (fun s ->
        if List.exists (fun p -> pattern_matches ~pattern:p key) s.patterns then begin
          Queue.push (key, value) s.pending;
          match Api.notify s.ep Message.N_ds_update with
          | Ok () -> true
          | Error _ -> false
        end
        else true)
      t.subscribers

(*@recovery-end*)
let body t () =
  let reply src msg = ignore (Api.send src msg) in
  let rec loop () =
    (match Api.receive Sysif.Any with
    | Ok (Sysif.Rx_notify _) -> ()
    | Error _ -> ()
    | Ok (Sysif.Rx_msg { src; body }) -> begin
        match body with
        | Message.Ds_publish { key; value } ->
            publish t key value;
            reply src (Message.Ds_reply { result = Ok () })
        | Message.Ds_retrieve { key } ->
            let result =
              match Hashtbl.find_opt t.registry key with
              | Some v -> Ok v
              | None -> Error Errno.E_noent
            in
            reply src (Message.Ds_retrieve_reply { result })
        | Message.Ds_delete { key } ->
            Hashtbl.remove t.registry key;
            reply src (Message.Ds_reply { result = Ok () })
        | Message.Ds_subscribe { pattern } ->
            let s = subscriber_for t src in
            if not (List.mem pattern s.patterns) then s.patterns <- pattern :: s.patterns;
            reply src (Message.Ds_reply { result = Ok () })
        | Message.Ds_check ->
            let result =
              match List.find_opt (fun s -> Endpoint.equal s.ep src) t.subscribers with
              | Some s -> Ok (Queue.take_opt s.pending)
              | None -> Ok None
            in
            reply src (Message.Ds_check_reply { result })
        | Message.Ds_degraded_list ->
            reply src (Message.Ds_degraded_list_reply { result = Ok (degraded t) })
        | Message.Ds_snapshot_store { key; data } ->
            let result =
              match stable_name_of t src with
              | Some owner ->
                  Hashtbl.replace t.snapshots (owner, key) data;
                  Ok ()
              | None -> Error Errno.E_no_perm
            in
            reply src (Message.Ds_reply { result })
        | Message.Ds_snapshot_fetch { key } ->
            let result =
              match stable_name_of t src with
              | Some owner -> (
                  match Hashtbl.find_opt t.snapshots (owner, key) with
                  | Some data -> Ok data
                  | None -> Error Errno.E_noent)
              | None -> Error Errno.E_no_perm
            in
            reply src (Message.Ds_snapshot_reply { result })
        | _ -> reply src (Message.Ds_reply { result = Error Errno.E_inval })
      end);
    loop ()
  in
  loop ()
