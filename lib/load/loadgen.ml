module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Peer = Resilix_net.Peer
module Tcp = Resilix_net.Tcp
module Filegen = Resilix_net.Filegen
module Metrics = Resilix_obs.Metrics
module Fnv = Resilix_checksum.Fnv

type config = {
  requests : int;
  concurrency : int;
  arrival_interval : int;
  burst_every : int;
  burst_size : int;
  slow_fraction : float;
  slow_byte_delay : int;
  size_mix : (int * int) array;
  port : int;
  request_timeout : int;
  retries : int;
  retry_backoff : int;
  bin_us : int;
}

let default_config =
  {
    requests = 100;
    concurrency = 64;
    arrival_interval = 2_000;
    burst_every = 16;
    burst_size = 8;
    slow_fraction = 0.05;
    slow_byte_delay = 20_000;
    size_mix = [| (6, 2_048); (3, 16_384); (1, 131_072) |];
    port = 80;
    request_timeout = 20_000_000;
    retries = 2;
    retry_backoff = 250_000;
    bin_us = 100_000;
  }

type stats = {
  mutable issued : int;
  mutable attempts : int;
  mutable completed : int;
  mutable refused : int;
  mutable resets : int;
  mutable timeouts : int;
  mutable digest_mismatches : int;
  mutable failed : int;
  mutable deferred : int;
  mutable bytes_in : int;
  mutable in_flight : int;
}

let fresh_stats () =
  {
    issued = 0;
    attempts = 0;
    completed = 0;
    refused = 0;
    resets = 0;
    timeouts = 0;
    digest_mismatches = 0;
    failed = 0;
    deferred = 0;
    bytes_in = 0;
    in_flight = 0;
  }

type req = {
  size : int;
  seed : int;
  expected_fnv : string;
  slow : bool;
  mutable attempt : int;
  mutable t0 : int; (* virtual time of the first connection attempt *)
  mutable flow : Peer.flow option;
  mutable established : bool;
  mutable received : int;
  mutable fnv : Fnv.t;
  mutable sent : int; (* request-line bytes pushed (slow path) *)
  mutable resolved : bool; (* counted as completed / failed / timed out *)
  mutable timeout_h : Engine.handle option;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  peer : Peer.t;
  metrics : Metrics.t;
  cfg : config;
  dst_ip : int;
  dst_mac : int;
  content_seed : int;
  stats : stats;
  pending : req Queue.t; (* arrived while at the concurrency cap *)
  mutable goodput : int array; (* bytes received per bin_us bin *)
  mutable goodput_hi : int; (* highest bin index touched *)
  mutable outstanding : int; (* requests not yet resolved *)
  mutable launched_all : bool;
  lat_hist : Metrics.histogram;
  connect_hist : Metrics.histogram;
}

let create ~engine ~seed ~peer ~metrics ?(config = default_config) ~dst_ip ~dst_mac () =
  {
    engine;
    rng = Rng.create ~seed:(Rng.derive ~seed ~index:0x10ad);
    peer;
    metrics;
    cfg = config;
    dst_ip;
    dst_mac;
    content_seed = Rng.derive ~seed ~index:0xf11e;
    stats = fresh_stats ();
    pending = Queue.create ();
    goodput = Array.make 64 0;
    goodput_hi = 0;
    outstanding = 0;
    launched_all = false;
    lat_hist = Metrics.histogram metrics "load.latency_us";
    connect_hist = Metrics.histogram metrics "load.connect_us";
  }

let stats t = t.stats

let goodput_bins t =
  Array.sub t.goodput 0 (min (Array.length t.goodput) (t.goodput_hi + 1))

let bin_us t = t.cfg.bin_us

let finished t = t.launched_all && t.outstanding = 0

let record_bytes t n =
  t.stats.bytes_in <- t.stats.bytes_in + n;
  let idx = Engine.now t.engine / t.cfg.bin_us in
  let len = Array.length t.goodput in
  if idx >= len then begin
    let bigger = Array.make (max (2 * len) (idx + 1)) 0 in
    Array.blit t.goodput 0 bigger 0 len;
    t.goodput <- bigger
  end;
  t.goodput.(idx) <- t.goodput.(idx) + n;
  if idx > t.goodput_hi then t.goodput_hi <- idx

let pick_size t =
  let total = Array.fold_left (fun acc (w, _) -> acc + w) 0 t.cfg.size_mix in
  let roll = Rng.int t.rng (max 1 total) in
  let rec go i acc =
    if i >= Array.length t.cfg.size_mix - 1 then snd t.cfg.size_mix.(i)
    else begin
      let w, sz = t.cfg.size_mix.(i) in
      if roll < acc + w then sz else go (i + 1) (acc + w)
    end
  in
  go 0 0

(* A request resolves exactly once: success, digest mismatch, terminal
   failure, or timeout. *)
let resolve t req outcome =
  if not req.resolved then begin
    req.resolved <- true;
    t.outstanding <- t.outstanding - 1;
    (match req.timeout_h with
    | Some h ->
        Engine.cancel h;
        req.timeout_h <- None
    | None -> ());
    match outcome with
    | `Completed ->
        t.stats.completed <- t.stats.completed + 1;
        Metrics.observe t.lat_hist (Engine.now t.engine - req.t0)
    | `Mismatch -> t.stats.digest_mismatches <- t.stats.digest_mismatches + 1
    | `Failed -> t.stats.failed <- t.stats.failed + 1
    | `Timeout -> t.stats.timeouts <- t.stats.timeouts + 1
  end

let request_line req = Printf.sprintf "GET gen:%d:%d\n" req.seed req.size

(* Slow clients dribble the request line one byte at a time — each
   byte [slow_byte_delay] apart — pinning a server worker for the
   duration (the classic slow-client pressure on a worker pool). *)
let rec send_slowly t req =
  match req.flow with
  | None -> ()
  | Some flow when req.resolved -> ignore flow
  | Some flow ->
      let line = request_line req in
      if req.sent < String.length line then begin
        let b = Bytes.make 1 line.[req.sent] in
        ignore (Tcp.send (Peer.flow_tcp flow) ~now:(Engine.now t.engine) b ~off:0 ~len:1);
        req.sent <- req.sent + 1;
        if req.sent < String.length line then
          ignore
            (Engine.schedule t.engine ~after:t.cfg.slow_byte_delay (fun () -> send_slowly t req))
      end

let send_request t req flow =
  if req.slow then send_slowly t req
  else begin
    let line = Bytes.of_string (request_line req) in
    ignore
      (Tcp.send (Peer.flow_tcp flow) ~now:(Engine.now t.engine) line ~off:0
         ~len:(Bytes.length line))
  end

let rec drain t req flow =
  let data = Tcp.recv (Peer.flow_tcp flow) ~max:65536 in
  let n = Bytes.length data in
  if n > 0 then begin
    req.received <- req.received + n;
    req.fnv <- Fnv.update req.fnv data ~off:0 ~len:n;
    record_bytes t n;
    drain t req flow
  end

let rec launch t req =
  req.attempt <- req.attempt + 1;
  t.stats.attempts <- t.stats.attempts + 1;
  t.stats.in_flight <- t.stats.in_flight + 1;
  req.established <- false;
  req.received <- 0;
  req.fnv <- Fnv.start;
  req.sent <- 0;
  let attempt_start = Engine.now t.engine in
  let flow =
    Peer.open_flow t.peer ~dst_ip:t.dst_ip ~dst_mac:t.dst_mac ~dst_port:t.cfg.port
      ~notify:(fun flow ev -> on_event t req flow ev attempt_start)
      ()
  in
  req.flow <- Some flow

and on_event t req flow ev attempt_start =
  match ev with
  | Tcp.Ev_established ->
      req.established <- true;
      Metrics.observe t.connect_hist (Engine.now t.engine - attempt_start);
      send_request t req flow
  | Tcp.Ev_rx_ready -> drain t req flow
  | Tcp.Ev_tx_space -> ()
  | Tcp.Ev_peer_closed ->
      drain t req flow;
      if not req.resolved then begin
        if req.received = req.size && String.equal (Fnv.to_hex req.fnv) req.expected_fnv then
          resolve t req `Completed
        else resolve t req `Mismatch;
        Peer.flow_close t.peer flow
      end
  | Tcp.Ev_reset ->
      if not req.resolved then begin
        let refused = not req.established in
        if refused then t.stats.refused <- t.stats.refused + 1
        else t.stats.resets <- t.stats.resets + 1;
        retry_or_fail t req ~refused
      end
  | Tcp.Ev_closed -> flow_ended t req

and retry_or_fail t req ~refused =
  (* A refused SYN (backlog overflow or degraded fast-fail) never
     consumes the retry budget: the client keeps knocking until its
     absolute deadline, like a real browser would.  Only resets after
     establishment — a half-served request — burn [retries].  The
     backoff is jittered so a herd of refused clients doesn't return
     in lockstep and re-overflow the backlog it just bounced off. *)
  if refused || req.attempt <= t.cfg.retries then begin
    let jitter = Rng.int_in t.rng ~min:0 ~max:t.cfg.retry_backoff in
    ignore (Engine.schedule t.engine ~after:((t.cfg.retry_backoff / 2) + jitter) (fun () ->
        if not req.resolved then launch t req))
  end
  else resolve t req `Failed

and flow_ended t req =
  (* Terminal for this attempt: give the slot back and start a parked
     arrival if one is waiting. *)
  if req.flow <> None then begin
    req.flow <- None;
    t.stats.in_flight <- t.stats.in_flight - 1;
    match Queue.take_opt t.pending with
    | Some next -> start_request t next
    | None -> ()
  end

and start_request t req =
  if t.stats.in_flight >= t.cfg.concurrency then begin
    t.stats.deferred <- t.stats.deferred + 1;
    Queue.push req t.pending
  end
  else begin
    t.stats.issued <- t.stats.issued + 1;
    req.t0 <- Engine.now t.engine;
    req.timeout_h <-
      Some
        (Engine.schedule t.engine ~after:t.cfg.request_timeout (fun () ->
             req.timeout_h <- None;
             if not req.resolved then begin
               resolve t req `Timeout;
               match req.flow with Some f -> Peer.flow_abort t.peer f | None -> ()
             end));
    launch t req
  end

let start t =
  let cfg = t.cfg in
  t.outstanding <- cfg.requests;
  (* Precompute the deterministic arrival schedule: jittered
     inter-arrival gaps, with every [burst_every]-th arrival opening a
     window of [burst_size] simultaneous starts. *)
  let tcur = ref (Engine.now t.engine + 1) in
  let in_burst = ref 0 in
  for k = 0 to cfg.requests - 1 do
    if !in_burst > 0 then decr in_burst
    else begin
      let iv = max 1 cfg.arrival_interval in
      tcur := !tcur + Rng.int_in t.rng ~min:(max 1 (iv / 2)) ~max:(iv + (iv / 2));
      if cfg.burst_every > 0 && k > 0 && k mod cfg.burst_every = 0 then
        in_burst := cfg.burst_size
    end;
    let size = pick_size t in
    let seed = Rng.derive ~seed:t.content_seed ~index:k in
    let req =
      {
        size;
        seed;
        expected_fnv = Filegen.fnv_digest ~seed ~size;
        slow = Rng.bool t.rng cfg.slow_fraction;
        attempt = 0;
        t0 = 0;
        flow = None;
        established = false;
        received = 0;
        fnv = Fnv.start;
        sent = 0;
        resolved = false;
        timeout_h = None;
      }
    in
    ignore (Engine.schedule_at t.engine ~at:!tcur (fun () -> start_request t req))
  done;
  t.launched_all <- true

let latency_quantile t q =
  match List.assoc_opt "load.latency_us" (Metrics.snapshot t.metrics).Metrics.histograms with
  | Some h -> Metrics.quantile h q
  | None -> 0
