(** Deterministic HTTP-ish load generator: the client side of the C10K
    storm workload.

    The generator runs on the simulated remote peer and opens flows
    into the machine under test through {!Resilix_net.Peer.open_flow},
    so any number of concurrent connections share one engine timer and
    stay deterministic.  Every request asks the in-machine
    {!Resilix_apps.Httpd} server for [gen:<seed>:<size>] content and
    validates the FNV digest of what comes back, so corruption anywhere
    on the path (NIC, driver restart, TCP reassembly) is detected
    end-to-end.

    Everything is driven by engine events and a seed-derived RNG: no
    wall-clock, no ambient randomness — the same seed yields the same
    storm, byte for byte. *)

type config = {
  requests : int;  (** total requests to issue *)
  concurrency : int;  (** cap on simultaneously open flows *)
  arrival_interval : int;  (** mean us between request starts (jittered x0.5–1.5) *)
  burst_every : int;  (** every Nth arrival opens a burst window (0 = never) *)
  burst_size : int;  (** arrivals sharing the burst instant *)
  slow_fraction : float;  (** fraction of clients that dribble the request line *)
  slow_byte_delay : int;  (** us between a slow client's request bytes *)
  size_mix : (int * int) array;  (** (weight, response bytes) request mix *)
  port : int;  (** server port *)
  request_timeout : int;  (** us from issue to forced abort *)
  retries : int;  (** re-connect budget after refusal/reset *)
  retry_backoff : int;  (** us before a retry *)
  bin_us : int;  (** goodput-timeline bin width, us *)
}

val default_config : config
(** 100 requests, concurrency 64, 2 ms mean arrivals, a burst of 8
    every 16th arrival, 5% slow clients, sizes 2K/16K/128K weighted
    6:3:1, port 80, 20 s timeout, 2 retries at 250 ms backoff, 100 ms
    goodput bins. *)

type stats = {
  mutable issued : int;  (** requests actually started (not parked) *)
  mutable attempts : int;  (** connection attempts, retries included *)
  mutable completed : int;  (** responses received whole, digest verified *)
  mutable refused : int;  (** RST before the handshake finished (backlog overflow) *)
  mutable resets : int;  (** reset after established *)
  mutable timeouts : int;  (** requests aborted at the deadline *)
  mutable digest_mismatches : int;  (** complete-looking responses with wrong bytes *)
  mutable failed : int;  (** requests that exhausted their retry budget *)
  mutable deferred : int;  (** arrivals parked at the concurrency cap *)
  mutable bytes_in : int;  (** response bytes received *)
  mutable in_flight : int;  (** flows currently open *)
}

type t

val create :
  engine:Resilix_sim.Engine.t ->
  seed:int ->
  peer:Resilix_net.Peer.t ->
  metrics:Resilix_obs.Metrics.t ->
  ?config:config ->
  dst_ip:int ->
  dst_mac:int ->
  unit ->
  t
(** [metrics] receives the per-request latency histograms
    ([load.latency_us] issue-to-verified and [load.connect_us]
    SYN-to-established). *)

val start : t -> unit
(** Schedule the whole arrival plan onto the engine; run the engine to
    let the storm play out. *)

val stats : t -> stats

val finished : t -> bool
(** Every request has resolved: completed, mismatched, timed out, or
    failed permanently. *)

val goodput_bins : t -> int array
(** Bytes received per [bin_us] window of virtual time, from t=0 to
    the last bin that saw traffic — the timeline that shows the
    mid-storm outage dip. *)

val bin_us : t -> int

val latency_quantile : t -> float -> int
(** [latency_quantile t q] — {!Resilix_obs.Metrics.quantile} over the
    completed-request latency histogram, us. *)
