module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message

(* The cache is organized as clusters of [cluster_blocks] consecutive
   blocks fetched with a single device read: sequential workloads then
   amortize per-request seek + IPC overhead exactly like a real file
   server's read-ahead, which is what lets dd approach the disk's raw
   rate (Fig. 8's 32.7 MB/s baseline). *)
let cluster_blocks = 16

type cluster = { addr : int; mutable base : int; mutable stamp : int }

type t = {
  clusters : cluster array;
  zero_addr : int;
  mutable driver : Endpoint.t;
  minor : int;
  wait_new_driver : Endpoint.t -> Endpoint.t;
  mutable device_blocks : int option;
  mutable tick : int;
  mutable reissued : int;
  mutable hits : int;
  mutable misses : int;
}

let block_size = Layout.block_size
let cluster_bytes = cluster_blocks * block_size

let create ~base_addr ~slots ~driver ~minor ~wait_new_driver =
  let n = max 2 (slots / cluster_blocks) in
  {
    clusters =
      Array.init n (fun i -> { addr = base_addr + (i * cluster_bytes); base = -1; stamp = 0 });
    zero_addr = base_addr + (n * cluster_bytes);
    driver;
    minor;
    wait_new_driver;
    device_blocks = None;
    tick = 0;
    reissued = 0;
    hits = 0;
    misses = 0;
  }

let set_driver t ep = t.driver <- ep
let driver t = t.driver
let zero_slot t = t.zero_addr
let reissued t = t.reissued
let hits t = t.hits
let misses t = t.misses
let set_device_blocks t n = t.device_blocks <- Some n

(* One device operation, reissued across driver reincarnations.  Block
   I/O is idempotent, so "redo I/O" is always safe (Sec. 6.2). *)
let rec device_io t ~write ~pos ~addr ~len =
  let access = if write then Sysif.Read_only else Sysif.Write_only in
  match Api.grant_create ~for_:t.driver ~base:addr ~len ~access with
  | Error e -> Error e
  | Ok grant -> (
      let msg =
        if write then Message.Dev_write { minor = t.minor; pos; grant; len }
        else Message.Dev_read { minor = t.minor; pos; grant; len }
      in
      let outcome = Api.sendrec t.driver msg in
      ignore (Api.grant_revoke grant);
      match outcome with
      | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Ok n }; _ }) -> Ok n
      | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Error e }; _ }) -> Error e
      | Ok _ -> Error Errno.E_io
      (*@recovery-begin*)
      | Error (Errno.E_dead_src_dst | Errno.E_bad_endpoint) ->
          (* The driver died with our request in flight: mark pending,
             wait for the reincarnation server to bring up a fresh
             instance, reopen, and reissue. *)
          let fresh = t.wait_new_driver t.driver in
          t.driver <- fresh;
          t.reissued <- t.reissued + 1;
          ignore (Api.sendrec t.driver (Message.Dev_open { minor = t.minor }));
          device_io t ~write ~pos ~addr ~len
      (*@recovery-end*)
      | Error e -> Error e)

let cluster_of_block t block =
  let base = block / cluster_blocks * cluster_blocks in
  let hit = ref None in
  Array.iter (fun c -> if c.base = base then hit := Some c) t.clusters;
  (base, !hit)

let lru_cluster t =
  let best = ref t.clusters.(0) in
  Array.iter (fun c -> if c.stamp < !best.stamp then best := c) t.clusters;
  !best

let touch t c =
  t.tick <- t.tick + 1;
  c.stamp <- t.tick

let read t ~block =
  let base, found = cluster_of_block t block in
  match found with
  | Some c ->
      t.hits <- t.hits + 1;
      touch t c;
      Ok (c.addr + ((block - base) * block_size))
  | None -> (
      t.misses <- t.misses + 1;
      let c = lru_cluster t in
      c.base <- -1;
      let count =
        match t.device_blocks with
        | Some limit -> min cluster_blocks (max 1 (limit - base))
        | None -> cluster_blocks
      in
      match
        device_io t ~write:false ~pos:(base * block_size) ~addr:c.addr ~len:(count * block_size)
      with
      | Ok _ ->
          c.base <- base;
          touch t c;
          Ok (c.addr + ((block - base) * block_size))
      | Error e -> Error e)

let write_through t ~block =
  let base, found = cluster_of_block t block in
  match found with
  | None -> Error Errno.E_io (* caller must have read it first *)
  | Some c -> (
      touch t c;
      let addr = c.addr + ((block - base) * block_size) in
      match device_io t ~write:true ~pos:(block * block_size) ~addr ~len:block_size with
      | Ok _ -> Ok ()
      | Error e -> Error e)
