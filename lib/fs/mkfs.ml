type t = {
  write_block : int -> bytes -> unit;
  sb : Layout.superblock;
  imap : Bytes.t; (* one block *)
  zmap : Bytes.t; (* zmap_blocks blocks *)
  inode_table : Bytes.t; (* inode_blocks blocks *)
  root_dir : Bytes.t; (* one block: the root directory's single zone *)
  root_zone : int;
  mutable next_free_zone : int;
  mutable next_free_ino : int;
  mutable files : (string * int) list; (* name -> first data block *)
}

let set_bit buf i =
  let byte = i / 8 and bit = i mod 8 in
  Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lor (1 lsl bit)))

let write_inode t ~ino inode =
  let enc = Layout.encode_inode inode in
  Bytes.blit enc 0 t.inode_table (ino * Layout.inode_size) Layout.inode_size

let format ~write_block ~total_blocks ~inode_count =
  let sb = Layout.geometry ~total_blocks ~inode_count in
  let t =
    {
      write_block;
      sb;
      imap = Bytes.make Layout.block_size '\000';
      zmap = Bytes.make (sb.Layout.zmap_blocks * Layout.block_size) '\000';
      inode_table = Bytes.make (sb.Layout.inode_blocks * Layout.block_size) '\000';
      root_dir = Bytes.make Layout.block_size '\000';
      root_zone = sb.Layout.data_start;
      next_free_zone = sb.Layout.data_start + 1;
      next_free_ino = 2;
      files = [];
    }
  in
  (* Metadata blocks and the root zone are permanently allocated. *)
  for b = 0 to sb.Layout.data_start do
    set_bit t.zmap b
  done;
  (* Inodes 0 (never used) and 1 (root). *)
  set_bit t.imap 0;
  set_bit t.imap 1;
  let root =
    {
      Layout.mode = 2;
      size = 0;
      nlinks = 1;
      zones =
        Array.init (Layout.direct_zones + 2) (fun i -> if i = 0 then t.root_zone else 0);
    }
  in
  write_inode t ~ino:1 root;
  t

let root_entries t =
  let per_block = Layout.block_size / Layout.dirent_size in
  let rec count i = if i >= per_block then i else
    let ino, _ = Layout.decode_dirent t.root_dir ~off:(i * Layout.dirent_size) in
    if ino = 0 then i else count (i + 1)
  in
  count 0

let add_root_entry t ~ino ~name =
  let slot = root_entries t in
  if (slot + 1) * Layout.dirent_size > Layout.block_size then failwith "Mkfs: root directory full";
  Bytes.blit (Layout.encode_dirent ~ino ~name) 0 t.root_dir (slot * Layout.dirent_size)
    Layout.dirent_size

let alloc_zone t =
  let z = t.next_free_zone in
  if z >= t.sb.Layout.total_blocks then failwith "Mkfs: disk full";
  t.next_free_zone <- z + 1;
  set_bit t.zmap z;
  z

let add_contiguous_file t ~name ~size =
  let ino = t.next_free_ino in
  if ino >= t.sb.Layout.inode_count then failwith "Mkfs: out of inodes";
  t.next_free_ino <- ino + 1;
  set_bit t.imap ino;
  let nblocks = (size + Layout.block_size - 1) / Layout.block_size in
  let first_data = t.next_free_zone in
  let zones = Array.make (Layout.direct_zones + 2) 0 in
  (* Direct zones. *)
  let remaining = ref nblocks in
  let data_cursor = ref first_data in
  (* Reserve all data zones contiguously first (content stays lazy). *)
  for _ = 1 to nblocks do
    ignore (alloc_zone t)
  done;
  let next_data () =
    let z = !data_cursor in
    data_cursor := z + 1;
    z
  in
  for i = 0 to Layout.direct_zones - 1 do
    if !remaining > 0 then begin
      zones.(i) <- next_data ();
      decr remaining
    end
  done;
  (* Single indirect. *)
  if !remaining > 0 then begin
    let ind = alloc_zone t in
    zones.(Layout.direct_zones) <- ind;
    let blk = Bytes.make Layout.block_size '\000' in
    let n = min !remaining Layout.zones_per_indirect in
    for i = 0 to n - 1 do
      let z = next_data () in
      Bytes.set blk (4 * i) (Char.chr (z land 0xFF));
      Bytes.set blk ((4 * i) + 1) (Char.chr ((z lsr 8) land 0xFF));
      Bytes.set blk ((4 * i) + 2) (Char.chr ((z lsr 16) land 0xFF));
      Bytes.set blk ((4 * i) + 3) (Char.chr ((z lsr 24) land 0xFF))
    done;
    remaining := !remaining - n;
    t.write_block ind blk
  end;
  (* Double indirect. *)
  if !remaining > 0 then begin
    let dind = alloc_zone t in
    zones.(Layout.direct_zones + 1) <- dind;
    let dblk = Bytes.make Layout.block_size '\000' in
    let slot = ref 0 in
    while !remaining > 0 do
      if !slot >= Layout.zones_per_indirect then failwith "Mkfs: file too large";
      let ind = alloc_zone t in
      Bytes.set dblk (4 * !slot) (Char.chr (ind land 0xFF));
      Bytes.set dblk ((4 * !slot) + 1) (Char.chr ((ind lsr 8) land 0xFF));
      Bytes.set dblk ((4 * !slot) + 2) (Char.chr ((ind lsr 16) land 0xFF));
      Bytes.set dblk ((4 * !slot) + 3) (Char.chr ((ind lsr 24) land 0xFF));
      incr slot;
      let blk = Bytes.make Layout.block_size '\000' in
      let n = min !remaining Layout.zones_per_indirect in
      for i = 0 to n - 1 do
        let z = next_data () in
        Bytes.set blk (4 * i) (Char.chr (z land 0xFF));
        Bytes.set blk ((4 * i) + 1) (Char.chr ((z lsr 8) land 0xFF));
        Bytes.set blk ((4 * i) + 2) (Char.chr ((z lsr 16) land 0xFF));
        Bytes.set blk ((4 * i) + 3) (Char.chr ((z lsr 24) land 0xFF))
      done;
      remaining := !remaining - n;
      t.write_block ind blk
    done;
    t.write_block dind dblk
  end;
  write_inode t ~ino { Layout.mode = 1; size; nlinks = 1; zones };
  add_root_entry t ~ino ~name;
  t.files <- (name, first_data) :: t.files;
  t

let file_first_block t name = List.assoc_opt name t.files

let finish t =
  t.write_block 0 (Layout.encode_superblock t.sb);
  t.write_block Layout.imap_block t.imap;
  for i = 0 to t.sb.Layout.zmap_blocks - 1 do
    t.write_block (Layout.zmap_start + i) (Bytes.sub t.zmap (i * Layout.block_size) Layout.block_size)
  done;
  let inode_start = Layout.inode_start t.sb in
  for i = 0 to t.sb.Layout.inode_blocks - 1 do
    t.write_block (inode_start + i)
      (Bytes.sub t.inode_table (i * Layout.block_size) Layout.block_size)
  done;
  t.write_block t.root_zone t.root_dir
