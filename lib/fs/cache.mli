(** Block cache with driver-failure masking.

    Cache slots live in the file server's own address space so the
    disk driver can [safecopy] straight into them.  All device I/O
    goes through {!read} / {!write_through}; when the disk driver dies
    mid-request (the IPC fails with [E_dead_src_dst]), the cache marks
    the request pending, asks its embedder to wait for the
    reincarnated driver's endpoint, reopens the device, and reissues
    the idempotent block operation — exactly the recovery procedure of
    Sec. 6.2, transparent to everything above. *)

module Endpoint := Resilix_proto.Endpoint
module Errno := Resilix_proto.Errno

type t
(** A cache bound to one block device. *)

val create :
  base_addr:int ->
  slots:int ->
  driver:Endpoint.t ->
  minor:int ->
  wait_new_driver:(Endpoint.t -> Endpoint.t) ->
  t
(** [wait_new_driver dead_ep] must block (receiving messages) until a
    replacement endpoint is known, then return it; the cache reopens
    the minor device on it and retries. *)

val set_driver : t -> Endpoint.t -> unit
(** Update the endpoint out-of-band (e.g. a data-store notification
    arrived while no I/O was pending). *)

val driver : t -> Endpoint.t
(** Current driver endpoint. *)

val read : t -> block:int -> (int, Errno.t) result
(** Address (in the local address space) of a slot holding the block's
    current contents. *)

val write_through : t -> block:int -> (unit, Errno.t) result
(** Persist a slot the caller just mutated.  The block must still be
    resident (it is, absent interleaved reads). *)

val zero_slot : t -> int
(** Address of a permanently zeroed scratch slot (for sparse reads). *)

val set_device_blocks : t -> int -> unit
(** Tell the cache the device's size so read-ahead clusters are
    clamped at the end of the disk (call after reading the
    superblock). *)

val reissued : t -> int
(** Block operations reissued after a driver crash. *)

val hits : t -> int
(** Cache hits. *)

val misses : t -> int
(** Cache misses (device reads). *)
