(** On-disk layout of the MINIX-like file system (RXFS).

    {v
      block 0                superblock
      block 1                inode bitmap (1 block)
      blocks 2 .. 2+Z-1      zone bitmap (Z blocks)
      blocks .. inode table
      blocks .. data zones
    v}

    Blocks are 4096 bytes.  Inodes are 64 bytes: mode, size, link
    count, 7 direct zones, one indirect zone, one double-indirect zone
    — enough to address 4 GB files, comfortably covering the paper's
    1-GB dd experiment.  Directory entries are 64 bytes: a 4-byte
    inode number and a 60-byte name. *)

val block_size : int
(** 4096. *)

val magic : int
(** Superblock magic. *)

val inode_size : int
(** 64. *)

val inodes_per_block : int
(** 64. *)

val direct_zones : int
(** 7. *)

val zones_per_indirect : int
(** 1024 zone numbers per indirect block. *)

val dirent_size : int
(** 64. *)

val max_name : int
(** 59 (one byte reserved for the NUL terminator convention). *)

type superblock = {
  total_blocks : int;
  inode_count : int;
  zmap_blocks : int;
  inode_blocks : int;
  data_start : int;
}

val imap_block : int
(** Block number of the inode bitmap. *)

val zmap_start : int
(** First block of the zone bitmap. *)

val inode_start : superblock -> int
(** First block of the inode table. *)

val encode_superblock : superblock -> bytes
(** One full block. *)

val decode_superblock : bytes -> (superblock, string) result
(** Validates the magic. *)

type inode = {
  mode : int;  (** 0 free, 1 regular file, 2 directory *)
  size : int;
  nlinks : int;
  zones : int array;  (** 7 direct, then indirect, then double-indirect *)
}

val empty_inode : inode
(** All zeros. *)

val encode_inode : inode -> bytes
(** 64 bytes. *)

val decode_inode : bytes -> off:int -> inode
(** Read an inode record at [off]. *)

val encode_dirent : ino:int -> name:string -> bytes
(** 64 bytes. @raise Invalid_argument if the name is too long. *)

val decode_dirent : bytes -> off:int -> int * string
(** [(ino, name)]; ino 0 means the slot is free. *)

val geometry : total_blocks:int -> inode_count:int -> superblock
(** Compute the layout for a device of the given size. *)
