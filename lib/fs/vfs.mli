(** The virtual file system server.

    Applications talk to VFS; VFS routes regular-file I/O to the MFS
    file server and character-device I/O ([/dev/...] paths) to the
    corresponding character driver.

    Failure semantics follow Fig. 3 of the paper: block-device-backed
    file I/O is fully masked (MFS blocks and reissues), while a
    character driver crash surfaces as [E_io] to the application —
    "errors are always pushed up, but need to be reported to the user
    only if the application cannot recover" (Sec. 6.3).  VFS does
    refresh its endpoint cache from the data store, so a
    recovery-aware application's retry reaches the reincarnated
    driver. *)

type t
(** Shared handle for introspection. *)

val create : ?chardevs:(string * (string * int)) list -> unit -> t
(** [chardevs] maps device paths to [(stable service name, minor)],
    e.g. [("/dev/audio", ("chr.audio", 0))]. *)

val body : t -> unit -> unit
(** The process body; boot runs this at the well-known VFS slot. *)

val memory_kb : int
(** Address-space size VFS needs. *)

val chardev_errors : t -> int
(** Character-device operations that failed because the driver died —
    each is an error pushed to the application layer. *)

val degraded : t -> string list
(** The driver keys VFS currently treats as degraded (sorted).  VFS
    subscribes to the ["degraded.*"] records the reincarnation server
    publishes when a circuit breaker opens; while a driver is marked,
    character-device operations on it fail immediately with
    [E_degraded] instead of blocking on a parked driver. *)
