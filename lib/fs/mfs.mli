(** The MFS file server.

    Serves the RXFS on-disk format ({!Layout}) over a block driver,
    through a {!Cache} that masks driver failures: if the disk driver
    crashes mid-request, the pending block I/O is reissued against the
    reincarnated driver and applications stay blocked-but-safe until
    it completes (Sec. 6.2, Fig. 5).

    MFS subscribes to ["blk.*"] in the data store, which is how it
    learns the new endpoint of a restarted disk driver. *)

type t
(** Shared handle for introspection. *)

val create :
  driver_key:string -> ?minor:int -> ?cache_slots:int -> ?spans:Resilix_obs.Span.t -> unit -> t
(** [driver_key] is the stable service name of the block driver
    (e.g. ["blk.sata"]). *)

val body : t -> unit -> unit
(** The process body; boot runs this at the well-known MFS slot. *)

val memory_kb : int
(** Address-space size MFS needs (dominated by the block cache). *)

val reissued_ios : t -> int
(** Block operations reissued after driver crashes ("redo I/O" in
    Fig. 5) — the harness reports this per experiment. *)
