module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Memory = Resilix_kernel.Memory
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Wellknown = Resilix_proto.Wellknown
module Metrics = Resilix_obs.Metrics

let cache_base = 0x40000
let default_cache_slots = 192
let memory_kb = 2048

type t = {
  driver_key : string;
  minor : int;
  cache_slots : int;
  mutable cache : Cache.t option; (* set once the body is running *)
  parked : (Endpoint.t * Message.t) Queue.t;
      (* requests that arrived while we were stalled on a dead driver *)
  spans : Resilix_obs.Span.t;
  (* outage-counter handle, resolved once at [body] startup *)
  mutable c_outages : Metrics.counter option;
}

let create ~driver_key ?(minor = 0) ?(cache_slots = default_cache_slots) ?spans () =
  {
    driver_key;
    minor;
    cache_slots;
    cache = None;
    parked = Queue.create ();
    spans = (match spans with Some s -> s | None -> Resilix_obs.Span.create ());
    c_outages = None;
  }

let reissued_ios t = match t.cache with Some c -> Cache.reissued c | None -> 0

let bs = Layout.block_size

(* ------------------------------------------------------------------ *)
(* Data-store interaction                                              *)
(* ------------------------------------------------------------------ *)

let ds_retrieve_driver t =
  match Api.sendrec Wellknown.ds (Message.Ds_retrieve { key = t.driver_key }) with
  | Ok (Sysif.Rx_msg { body = Message.Ds_retrieve_reply { result = Ok (Message.V_endpoint ep) }; _ })
    ->
      Some ep
  | _ -> None

(*@recovery-begin*)
(* Drain pending data-store updates; remember the latest endpoint
   published for our driver. *)
let ds_drain_updates t =
  let latest = ref None in
  let rec loop () =
    match Api.sendrec Wellknown.ds Message.Ds_check with
    | Ok (Sysif.Rx_msg { body = Message.Ds_check_reply { result = Ok (Some (key, value)) }; _ }) ->
        (match value with
        | Message.V_endpoint ep when String.equal key t.driver_key -> latest := Some ep
        | _ -> ());
        loop ()
    | _ -> ()
  in
  loop ();
  !latest

(* Block until the reincarnation server publishes a fresh endpoint for
   our driver (Sec. 6.2: "the file server blocks and waits until the
   disk driver has been restarted"). *)
let wait_new_driver t dead_ep =
  let rec wait () =
    match ds_drain_updates t with
    | Some ep when not (Endpoint.equal ep dead_ep) -> ep
    | Some _ | None -> (
        match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_notify { kind = Message.N_ds_update; _ }) -> wait ()
        | Ok (Sysif.Rx_msg { src; body = Message.Fs_new_driver { endpoint; _ } }) ->
            ignore (Api.send src (Message.Fs_reply { result = Ok () }));
            if Endpoint.equal endpoint dead_ep then wait () else endpoint
        | Ok (Sysif.Rx_msg { src; body }) ->
            (* The file server "blocks and waits" (Sec. 6.2): park the
               request and serve it once the driver is back. *)
            Queue.push (src, body) t.parked;
            wait ()
        | Ok (Sysif.Rx_notify _) | Error _ -> wait ())
  in
  Api.trace "mfs" "disk driver %s died; waiting for reincarnation" t.driver_key;
  (match t.c_outages with
  | Some c -> Metrics.incr c
  | None -> Api.metric_incr "mfs.driver.outages");
  let ep = wait () in
  Api.trace "mfs" "disk driver %s is back as %s; redoing pending I/O" t.driver_key
    (Endpoint.to_string ep);
  Resilix_obs.Span.mark_component t.spans t.driver_key Resilix_obs.Span.Reopen ~now:(Api.now ());
  Api.emit "mfs"
    (Resilix_obs.Event.Retry
       { component = t.driver_key; operation = "redo-io"; count = Queue.length t.parked });
  ep

(*@recovery-end*)
(* ------------------------------------------------------------------ *)
(* Low-level helpers over the cache                                    *)
(* ------------------------------------------------------------------ *)

exception Io_error of Errno.t

let cache_read cache ~block =
  match Cache.read cache ~block with Ok addr -> addr | Error e -> raise (Io_error e)

let cache_flush cache ~block =
  match Cache.write_through cache ~block with Ok () -> () | Error e -> raise (Io_error e)

let get_u32 mem addr = Memory.get_u32 mem addr
let set_u32 mem addr v = Memory.set_u32 mem addr v

(* Zero a freshly allocated block (the store generates random content
   for never-written blocks, so explicit zeroing is essential). *)
let zero_block cache mem ~block =
  let addr = cache_read cache ~block in
  Memory.write mem ~addr (Bytes.make bs '\000');
  cache_flush cache ~block

(* Find, set and persist a clear bit in a bitmap spanning
   [map_start .. map_start+map_blocks).  Returns the bit index. *)
let alloc_bit cache mem ~map_start ~map_blocks ~limit =
  let rec scan_block b =
    if b >= map_blocks then None
    else begin
      let addr = cache_read cache ~block:(map_start + b) in
      let rec scan_byte i =
        if i >= bs then None
        else
          let v = Memory.get_u8 mem (addr + i) in
          if v = 0xFF then scan_byte (i + 1)
          else begin
            let rec scan_bit j =
              if j >= 8 then None
              else if v land (1 lsl j) = 0 then Some j
              else scan_bit (j + 1)
            in
            match scan_bit 0 with
            | Some j ->
                let index = (b * bs * 8) + (i * 8) + j in
                if index >= limit then None
                else begin
                  Memory.set_u8 mem (addr + i) (v lor (1 lsl j));
                  cache_flush cache ~block:(map_start + b);
                  Some index
                end
            | None -> scan_byte (i + 1)
          end
      in
      match scan_byte 0 with Some _ as r -> r | None -> scan_block (b + 1)
    end
  in
  scan_block 0

let clear_bit cache mem ~map_start ~index =
  let block = map_start + (index / (bs * 8)) in
  let byte = index / 8 mod bs in
  let bit = index mod 8 in
  let addr = cache_read cache ~block in
  Memory.set_u8 mem (addr + byte) (Memory.get_u8 mem (addr + byte) land lnot (1 lsl bit));
  cache_flush cache ~block

(* ------------------------------------------------------------------ *)
(* Inodes                                                              *)
(* ------------------------------------------------------------------ *)

type fs = { cache : Cache.t; mem : Memory.t; sb : Layout.superblock }

let inode_location fs ino =
  let block = Layout.inode_start fs.sb + (ino / Layout.inodes_per_block) in
  let off = ino mod Layout.inodes_per_block * Layout.inode_size in
  (block, off)

let read_inode fs ino =
  let block, off = inode_location fs ino in
  let addr = cache_read fs.cache ~block in
  Layout.decode_inode (Memory.read fs.mem ~addr:(addr + off) ~len:Layout.inode_size) ~off:0

let write_inode fs ino inode =
  let block, off = inode_location fs ino in
  let addr = cache_read fs.cache ~block in
  Memory.write fs.mem ~addr:(addr + off) (Layout.encode_inode inode);
  cache_flush fs.cache ~block

let alloc_zone fs =
  match
    alloc_bit fs.cache fs.mem ~map_start:Layout.zmap_start ~map_blocks:fs.sb.Layout.zmap_blocks
      ~limit:fs.sb.Layout.total_blocks
  with
  | Some z ->
      zero_block fs.cache fs.mem ~block:z;
      z
  | None -> raise (Io_error Errno.E_nospace)

let free_zone fs z = if z > 0 then clear_bit fs.cache fs.mem ~map_start:Layout.zmap_start ~index:z

let alloc_inode fs =
  match
    alloc_bit fs.cache fs.mem ~map_start:Layout.imap_block ~map_blocks:1
      ~limit:fs.sb.Layout.inode_count
  with
  | Some ino -> ino
  | None -> raise (Io_error Errno.E_nospace)

(* Map a file block index to a zone number; 0 means a hole.  With
   [alloc] the path (indirect blocks included) is materialized. *)
let bmap fs inode ~index ~alloc =
  let zpi = Layout.zones_per_indirect in
  let read_entry block i = get_u32 fs.mem (cache_read fs.cache ~block + (4 * i)) in
  let write_entry block i v =
    set_u32 fs.mem (cache_read fs.cache ~block + (4 * i)) v;
    cache_flush fs.cache ~block
  in
  let ensure_indirect slot =
    if inode.Layout.zones.(slot) = 0 then begin
      if not alloc then 0
      else begin
        let z = alloc_zone fs in
        inode.Layout.zones.(slot) <- z;
        z
      end
    end
    else inode.Layout.zones.(slot)
  in
  if index < Layout.direct_zones then begin
    if inode.Layout.zones.(index) = 0 && alloc then inode.Layout.zones.(index) <- alloc_zone fs;
    inode.Layout.zones.(index)
  end
  else if index < Layout.direct_zones + zpi then begin
    let ind = ensure_indirect Layout.direct_zones in
    if ind = 0 then 0
    else begin
      let i = index - Layout.direct_zones in
      let z = read_entry ind i in
      if z = 0 && alloc then begin
        let fresh = alloc_zone fs in
        write_entry ind i fresh;
        fresh
      end
      else z
    end
  end
  else begin
    let rest = index - Layout.direct_zones - zpi in
    let d = rest / zpi and r = rest mod zpi in
    if d >= zpi then raise (Io_error Errno.E_range);
    let dind = ensure_indirect (Layout.direct_zones + 1) in
    if dind = 0 then 0
    else begin
      let ind =
        let z = read_entry dind d in
        if z = 0 && alloc then begin
          let fresh = alloc_zone fs in
          write_entry dind d fresh;
          fresh
        end
        else z
      in
      if ind = 0 then 0
      else begin
        let z = read_entry ind r in
        if z = 0 && alloc then begin
          let fresh = alloc_zone fs in
          write_entry ind r fresh;
          fresh
        end
        else z
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Directories and path resolution                                     *)
(* ------------------------------------------------------------------ *)

let dir_find fs dir_inode name =
  let nblocks = (dir_inode.Layout.size + bs - 1) / bs in
  let per_block = bs / Layout.dirent_size in
  let rec scan_block bi =
    if bi >= max nblocks 1 then None
    else begin
      let zone = bmap fs dir_inode ~index:bi ~alloc:false in
      if zone = 0 then scan_block (bi + 1)
      else begin
        let addr = cache_read fs.cache ~block:zone in
        let raw = Memory.read fs.mem ~addr ~len:bs in
        let rec scan_entry i =
          if i >= per_block then None
          else
            let ino, entry_name = Layout.decode_dirent raw ~off:(i * Layout.dirent_size) in
            if ino <> 0 && String.equal entry_name name then Some ino else scan_entry (i + 1)
        in
        match scan_entry 0 with Some _ as r -> r | None -> scan_block (bi + 1)
      end
    end
  in
  scan_block 0

let dir_add fs ~dir_ino name ~ino =
  let dir_inode = read_inode fs dir_ino in
  let per_block = bs / Layout.dirent_size in
  (* Find a free slot in existing blocks, else extend. *)
  let rec try_block bi =
    let zone = bmap fs dir_inode ~index:bi ~alloc:true in
    let addr = cache_read fs.cache ~block:zone in
    let raw = Memory.read fs.mem ~addr ~len:bs in
    let rec find_free i =
      if i >= per_block then None
      else
        let e_ino, _ = Layout.decode_dirent raw ~off:(i * Layout.dirent_size) in
        if e_ino = 0 then Some i else find_free (i + 1)
    in
    match find_free 0 with
    | Some slot ->
        Memory.write fs.mem
          ~addr:(addr + (slot * Layout.dirent_size))
          (Layout.encode_dirent ~ino ~name);
        cache_flush fs.cache ~block:zone;
        let used_end = (bi * bs) + ((slot + 1) * Layout.dirent_size) in
        if used_end > dir_inode.Layout.size then begin
          let updated = { dir_inode with Layout.size = used_end } in
          write_inode fs dir_ino updated
        end
        else
          (* zones array may have been mutated by bmap ~alloc *)
          write_inode fs dir_ino dir_inode
    | None -> try_block (bi + 1)
  in
  try_block 0

let split_path path =
  List.filter (fun c -> String.length c > 0) (String.split_on_char '/' path)

let resolve fs path ~create =
  let components = split_path path in
  let rec walk dir_ino = function
    | [] -> Ok (dir_ino, read_inode fs dir_ino)
    | [ last ] -> begin
        let dir_inode = read_inode fs dir_ino in
        if dir_inode.Layout.mode <> 2 then Error Errno.E_not_dir
        else
          match dir_find fs dir_inode last with
          | Some ino -> Ok (ino, read_inode fs ino)
          | None ->
              if not create then Error Errno.E_noent
              else if String.length last > Layout.max_name then Error Errno.E_inval
              else begin
                let ino = alloc_inode fs in
                let inode =
                  {
                    Layout.mode = 1;
                    size = 0;
                    nlinks = 1;
                    zones = Array.make (Layout.direct_zones + 2) 0;
                  }
                in
                write_inode fs ino inode;
                dir_add fs ~dir_ino last ~ino;
                Ok (ino, inode)
              end
      end
    | comp :: rest -> begin
        let dir_inode = read_inode fs dir_ino in
        if dir_inode.Layout.mode <> 2 then Error Errno.E_not_dir
        else
          match dir_find fs dir_inode comp with
          | Some ino -> walk ino rest
          | None -> Error Errno.E_noent
      end
  in
  match components with [] -> Ok (1, read_inode fs 1) | _ -> walk 1 components

(* ------------------------------------------------------------------ *)
(* Read/write                                                          *)
(* ------------------------------------------------------------------ *)

(* Move [len] bytes between the VFS grant and the file, block by
   block.  The VFS (and behind it, the application) stays blocked in
   sendrec for the duration — including across any disk-driver
   reincarnations the cache masks. *)
let handle_readwrite fs ~src ~ino ~write ~pos ~grant ~len =
  let inode = read_inode fs ino in
  if pos < 0 || len < 0 then Error Errno.E_inval
  else begin
    let len_eff = if write then len else max 0 (min len (inode.Layout.size - pos)) in
    let progress = ref 0 in
    let zones_dirty = ref false in
    (try
       while !progress < len_eff do
         let abs = pos + !progress in
         let index = abs / bs and boff = abs mod bs in
         let chunk = min (bs - boff) (len_eff - !progress) in
         if write then begin
           let zone = bmap fs inode ~index ~alloc:true in
           zones_dirty := true;
           let addr = cache_read fs.cache ~block:zone in
           (match
              Api.safecopy_from ~owner:src ~grant ~grant_off:!progress ~local_addr:(addr + boff)
                ~len:chunk
            with
           | Ok () -> ()
           | Error e -> raise (Io_error e));
           cache_flush fs.cache ~block:zone
         end
         else begin
           let zone = bmap fs inode ~index ~alloc:false in
           let addr =
             if zone = 0 then Cache.zero_slot fs.cache else cache_read fs.cache ~block:zone
           in
           let addr = if zone = 0 then addr else addr + boff in
           match
             Api.safecopy_to ~owner:src ~grant ~grant_off:!progress ~local_addr:addr ~len:chunk
           with
           | Ok () -> ()
           | Error e -> raise (Io_error e)
         end;
         progress := !progress + chunk
       done;
       if write && (pos + !progress > inode.Layout.size || !zones_dirty) then begin
         let size = max inode.Layout.size (pos + !progress) in
         write_inode fs ino { inode with Layout.size }
       end;
       Ok !progress
     with Io_error e -> Error e)
  end

let handle_truncate fs ~ino =
  let inode = read_inode fs ino in
  (try
     (* Free direct zones. *)
     for i = 0 to Layout.direct_zones - 1 do
       free_zone fs inode.Layout.zones.(i)
     done;
     (* Free single-indirect tree. *)
     let free_indirect ind =
       if ind > 0 then begin
         let addr = cache_read fs.cache ~block:ind in
         for i = 0 to Layout.zones_per_indirect - 1 do
           free_zone fs (get_u32 fs.mem (addr + (4 * i)))
         done;
         free_zone fs ind
       end
     in
     free_indirect inode.Layout.zones.(Layout.direct_zones);
     let dind = inode.Layout.zones.(Layout.direct_zones + 1) in
     if dind > 0 then begin
       let addr = cache_read fs.cache ~block:dind in
       let entries = Array.init Layout.zones_per_indirect (fun i -> get_u32 fs.mem (addr + (4 * i))) in
       Array.iter free_indirect entries;
       free_zone fs dind
     end;
     write_inode fs ino
       { inode with Layout.size = 0; zones = Array.make (Layout.direct_zones + 2) 0 };
     Ok ()
   with Io_error e -> Error e)

(* ------------------------------------------------------------------ *)
(* Server body                                                         *)
(* ------------------------------------------------------------------ *)

let body t () =
  t.c_outages <- Some (Api.metric_counter "mfs.driver.outages");
  (* Subscribe to block-driver updates before anything can fail. *)
  ignore (Api.sendrec Wellknown.ds (Message.Ds_subscribe { pattern = "blk.*" }));
  (* Wait for the driver to appear. *)
  let rec find_driver () =
    match ds_retrieve_driver t with
    | Some ep -> ep
    | None ->
        Api.sleep 10_000;
        find_driver ()
  in
  let driver = find_driver () in
  let cache =
    Cache.create ~base_addr:cache_base ~slots:t.cache_slots ~driver ~minor:t.minor
      ~wait_new_driver:(wait_new_driver t)
  in
  t.cache <- Some cache;
  ignore (Api.sendrec driver (Message.Dev_open { minor = t.minor }));
  let mem = Api.memory () in
  (* Mount: read the superblock. *)
  let sb =
    match Cache.read cache ~block:0 with
    | Error _ -> Api.panic "mfs: cannot read superblock"
    | Ok addr -> (
        match Layout.decode_superblock (Memory.read mem ~addr ~len:bs) with
        | Ok sb -> sb
        | Error msg -> Api.panic ("mfs: bad superblock: " ^ msg))
  in
  Cache.set_device_blocks cache sb.Layout.total_blocks;
  Memory.write mem ~addr:(Cache.zero_slot cache) (Bytes.make bs '\000');
  let fs = { cache; mem; sb } in
  Api.trace "mfs" "mounted RXFS: %d blocks, %d inodes" sb.Layout.total_blocks sb.Layout.inode_count;
  let next_request () =
    match Queue.take_opt t.parked with
    | Some (src, body) -> Ok (Sysif.Rx_msg { src; body })
    | None -> Api.receive Sysif.Any
  in
  let rec loop () =
    (match next_request () with
    | Error _ -> ()
    | Ok (Sysif.Rx_notify { kind = Message.N_ds_update; _ }) -> begin
        match ds_drain_updates t with
        | Some ep ->
            Cache.set_driver cache ep;
            ignore (Api.sendrec ep (Message.Dev_open { minor = t.minor }))
        | None -> ()
      end
    | Ok (Sysif.Rx_notify _) -> ()
    | Ok (Sysif.Rx_msg { src; body }) -> begin
        match body with
        | Message.Fs_lookup { path; create } -> begin
            match resolve fs path ~create with
            | Ok (ino, inode) ->
                ignore
                  (Api.send src
                     (Message.Fs_lookup_reply { result = Ok (ino, inode.Layout.size) }))
            | Error e -> ignore (Api.send src (Message.Fs_lookup_reply { result = Error e }))
            | exception Io_error e ->
                ignore (Api.send src (Message.Fs_lookup_reply { result = Error e }))
          end
        | Message.Fs_readwrite { ino; write; pos; grant; len } ->
            let result = handle_readwrite fs ~src ~ino ~write ~pos ~grant ~len in
            ignore (Api.send src (Message.Fs_io_reply { result }))
        | Message.Fs_truncate { ino } ->
            let result = handle_truncate fs ~ino in
            ignore (Api.send src (Message.Fs_reply { result }))
        | Message.Fs_sync ->
            (* Write-through cache: nothing buffered. *)
            ignore (Api.send src (Message.Fs_reply { result = Ok () }))
        | Message.Fs_new_driver { endpoint; _ } ->
            Cache.set_driver cache endpoint;
            ignore (Api.sendrec endpoint (Message.Dev_open { minor = t.minor }));
            ignore (Api.send src (Message.Fs_reply { result = Ok () }))
        | _ -> ignore (Api.send src (Message.Fs_reply { result = Error Errno.E_inval }))
      end);
    loop ()
  in
  loop ()
