module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Wellknown = Resilix_proto.Wellknown
module Metrics = Resilix_obs.Metrics

let staging = 0x20000
let staging_size = 65536
let memory_kb = 1024

type file_kind =
  | F_file of { ino : int; mutable size : int }
  | F_chr of { key : string; minor : int }

type open_file = { kind : file_kind; mutable pos : int }

(* Counter handles resolved once at [body] startup; bumping a handle
   skips the by-name registry lookup on the request path. *)
type ctrs = { c_degraded_rejects : Metrics.counter; c_stale_endpoints : Metrics.counter }

type t = {
  mutable ctrs : ctrs option;
  chardevs : (string, string * int) Hashtbl.t; (* path -> (ds key, minor) *)
  fds : (int * int * int, open_file) Hashtbl.t; (* (owner slot, owner gen, fd) *)
  mutable next_fd : int;
  drivers : (string, Endpoint.t) Hashtbl.t; (* ds key -> cached endpoint *)
  mutable chardev_errors : int;
  degraded_drivers : (string, unit) Hashtbl.t; (* ds key -> breaker open *)
}

let create ?(chardevs = []) () =
  let t =
    {
      ctrs = None;
      chardevs = Hashtbl.create 8;
      fds = Hashtbl.create 32;
      next_fd = 3;
      drivers = Hashtbl.create 8;
      chardev_errors = 0;
      degraded_drivers = Hashtbl.create 4;
    }
  in
  List.iter (fun (path, target) -> Hashtbl.replace t.chardevs path target) chardevs;
  t

let chardev_errors t = t.chardev_errors
let degraded t = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) t.degraded_drivers [])

(* The degradation contract, VFS side: RS publishes ["degraded.<key>"]
   when a driver's circuit breaker opens; while the record is live we
   fail requests for that driver immediately with [E_degraded] instead
   of letting applications block on (or crash into) a parked driver. *)
let degraded_prefix = "degraded."

let driver_degraded t key =
  if Hashtbl.mem t.degraded_drivers key then begin
    (match t.ctrs with
    | Some c -> Metrics.incr c.c_degraded_rejects
    | None -> Api.metric_incr "vfs.chardev.degraded_rejects");
    true
  end
  else false

let drain_ds_updates t =
  let plen = String.length degraded_prefix in
  let rec drain () =
    match Api.sendrec Wellknown.ds Message.Ds_check with
    | Ok (Sysif.Rx_msg { body = Message.Ds_check_reply { result = Ok (Some (key, value)) }; _ }) ->
        (if String.length key > plen && String.sub key 0 plen = degraded_prefix then
           let component = String.sub key plen (String.length key - plen) in
           match value with
           | Message.V_int v when v <> 0 -> Hashtbl.replace t.degraded_drivers component ()
           | _ -> Hashtbl.remove t.degraded_drivers component);
        drain ()
    | _ -> ()
  in
  drain ()

let fd_key (owner : Endpoint.t) fd = (owner.Endpoint.slot, owner.Endpoint.gen, fd)

(* ------------------------------------------------------------------ *)
(* Driver endpoint resolution via the data store                       *)
(* ------------------------------------------------------------------ *)

let resolve_driver t key ~fresh =
  let from_ds () =
    match Api.sendrec Wellknown.ds (Message.Ds_retrieve { key }) with
    | Ok (Sysif.Rx_msg { body = Message.Ds_retrieve_reply { result = Ok (Message.V_endpoint ep) }; _ })
      ->
        Hashtbl.replace t.drivers key ep;
        Some ep
    | _ -> None
  in
  if fresh then from_ds ()
  else match Hashtbl.find_opt t.drivers key with Some ep -> Some ep | None -> from_ds ()

(*@recovery-begin*)
(* One request to a character driver.  If the cached endpoint is
   stale (driver restarted while we were not looking), refresh once
   and retry the *request routing* — but a failure in the middle of an
   operation is reported up, never silently retried (Sec. 6.3). *)
let chardev_request t key msg =
  let attempt ep = Api.sendrec ep msg in
  if driver_degraded t key then Error Errno.E_degraded
  else
  match resolve_driver t key ~fresh:false with
  | None -> Error Errno.E_nodev
  | Some ep -> (
      match attempt ep with
      | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result }; _ }) -> result
      | Ok _ -> Error Errno.E_io
      | Error (Errno.E_dead_src_dst | Errno.E_bad_endpoint) -> (
          t.chardev_errors <- t.chardev_errors + 1;
          (match t.ctrs with
          | Some c -> Metrics.incr c.c_stale_endpoints
          | None -> Api.metric_incr "vfs.chardev.stale_endpoints");
          (* Refresh the endpoint for the *next* operation; this one
             fails upward. *)
          match resolve_driver t key ~fresh:true with
          | Some fresh_ep when not (Endpoint.equal fresh_ep ep) ->
              Api.emit "vfs"
                (Resilix_obs.Event.Retry { component = key; operation = "rebind"; count = 1 });
              Error Errno.E_io
          | _ -> Error Errno.E_io)
      | Error e -> Error e)

(*@recovery-end*)
(* ------------------------------------------------------------------ *)
(* MFS interaction                                                     *)
(* ------------------------------------------------------------------ *)

let mfs_lookup path ~create =
  match Api.sendrec Wellknown.mfs (Message.Fs_lookup { path; create }) with
  | Ok (Sysif.Rx_msg { body = Message.Fs_lookup_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let mfs_truncate ino =
  match Api.sendrec Wellknown.mfs (Message.Fs_truncate { ino }) with
  | Ok (Sysif.Rx_msg { body = Message.Fs_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let mfs_readwrite ~ino ~write ~pos ~grant ~len =
  match Api.sendrec Wellknown.mfs (Message.Fs_readwrite { ino; write; pos; grant; len }) with
  | Ok (Sysif.Rx_msg { body = Message.Fs_io_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)
(* ------------------------------------------------------------------ *)

let handle_open t ~src ~path ~(flags : Message.open_flags) =
  match Hashtbl.find_opt t.chardevs path with
  | Some (key, minor) -> begin
      match chardev_request t key (Message.Dev_open { minor }) with
      | Ok _ ->
          let fd = t.next_fd in
          t.next_fd <- t.next_fd + 1;
          Hashtbl.replace t.fds (fd_key src fd) { kind = F_chr { key; minor }; pos = 0 };
          Ok fd
      | Error e -> Error e
    end
  | None -> begin
      match mfs_lookup path ~create:flags.Message.create with
      | Error e -> Error e
      | Ok (ino, size) ->
          let size =
            if flags.Message.trunc && size > 0 then begin
              ignore (mfs_truncate ino);
              0
            end
            else size
          in
          let fd = t.next_fd in
          t.next_fd <- t.next_fd + 1;
          Hashtbl.replace t.fds (fd_key src fd) { kind = F_file { ino; size }; pos = 0 };
          Ok fd
    end

(* Move [len] bytes between the app's grant and the backing object in
   staging-buffer-sized pieces. *)
let handle_io t ~src ~fd ~grant ~len ~write =
  match Hashtbl.find_opt t.fds (fd_key src fd) with
  | None -> Error Errno.E_bad_fd
  | Some file -> begin
      let progress = ref 0 in
      let result = ref (Ok ()) in
      let continue = ref true in
      while !continue && !progress < len do
        let chunk = min staging_size (len - !progress) in
        (* Stage the app data (writes) or make room (reads). *)
        let step =
          if write then begin
            match
              Api.safecopy_from ~owner:src ~grant ~grant_off:!progress ~local_addr:staging
                ~len:chunk
            with
            | Error e -> Error e
            | Ok () -> begin
                match file.kind with
                | F_file f -> begin
                    match Api.grant_create ~for_:Wellknown.mfs ~base:staging ~len:chunk ~access:Sysif.Read_only with
                    | Error e -> Error e
                    | Ok g ->
                        let r = mfs_readwrite ~ino:f.ino ~write:true ~pos:file.pos ~grant:g ~len:chunk in
                        ignore (Api.grant_revoke g);
                        (match r with
                        | Ok n ->
                            file.pos <- file.pos + n;
                            if file.pos > f.size then f.size <- file.pos;
                            Ok n
                        | Error e -> Error e)
                  end
                | F_chr { key; minor } -> begin
                    if driver_degraded t key then Error Errno.E_degraded
                    else
                    match resolve_driver t key ~fresh:false with
                    | None -> Error Errno.E_nodev
                    | Some ep -> begin
                        match Api.grant_create ~for_:ep ~base:staging ~len:chunk ~access:Sysif.Read_only with
                        | Error e -> Error e
                        | Ok g ->
                            let r =
                              match
                                Api.sendrec ep
                                  (Message.Dev_write { minor; pos = file.pos; grant = g; len = chunk })
                              with
                              | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result }; _ }) -> result
                              | Ok _ -> Error Errno.E_io
                              | Error (Errno.E_dead_src_dst | Errno.E_bad_endpoint) ->
                                  t.chardev_errors <- t.chardev_errors + 1;
                                  ignore (resolve_driver t key ~fresh:true);
                                  Error Errno.E_io
                              | Error e -> Error e
                            in
                            ignore (Api.grant_revoke g);
                            (match r with
                            | Ok n ->
                                file.pos <- file.pos + n;
                                Ok n
                            | Error e -> Error e)
                      end
                  end
              end
          end
          else begin
            (* read *)
            let fetched =
              match file.kind with
              | F_file f -> begin
                  match Api.grant_create ~for_:Wellknown.mfs ~base:staging ~len:chunk ~access:Sysif.Write_only with
                  | Error e -> Error e
                  | Ok g ->
                      let r = mfs_readwrite ~ino:f.ino ~write:false ~pos:file.pos ~grant:g ~len:chunk in
                      ignore (Api.grant_revoke g);
                      r
                end
              | F_chr { key; minor } -> begin
                  if driver_degraded t key then Error Errno.E_degraded
                  else
                  match resolve_driver t key ~fresh:false with
                  | None -> Error Errno.E_nodev
                  | Some ep -> begin
                      match Api.grant_create ~for_:ep ~base:staging ~len:chunk ~access:Sysif.Write_only with
                      | Error e -> Error e
                      | Ok g ->
                          let r =
                            match
                              Api.sendrec ep
                                (Message.Dev_read { minor; pos = file.pos; grant = g; len = chunk })
                            with
                            | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result }; _ }) -> result
                            | Ok _ -> Error Errno.E_io
                            | Error (Errno.E_dead_src_dst | Errno.E_bad_endpoint) ->
                                t.chardev_errors <- t.chardev_errors + 1;
                                ignore (resolve_driver t key ~fresh:true);
                                Error Errno.E_io
                            | Error e -> Error e
                          in
                          ignore (Api.grant_revoke g);
                          r
                    end
                end
            in
            match fetched with
            | Error e -> Error e
            | Ok n -> (
                if n = 0 then Ok 0
                else
                  match
                    Api.safecopy_to ~owner:src ~grant ~grant_off:!progress ~local_addr:staging
                      ~len:n
                  with
                  | Error e -> Error e
                  | Ok () ->
                      file.pos <- file.pos + n;
                      Ok n)
          end
        in
        match step with
        | Ok 0 -> continue := false (* EOF / device has nothing *)
        | Ok n ->
            progress := !progress + n;
            if n < staging_size && !progress < len && not write then continue := false
        | Error e ->
            result := Error e;
            continue := false
      done;
      match !result with
      | Ok () -> Ok !progress
      | Error e -> if !progress > 0 then Ok !progress else Error e
    end

let handle_ioctl t ~src ~fd ~op ~arg =
  match Hashtbl.find_opt t.fds (fd_key src fd) with
  | None -> Error Errno.E_bad_fd
  | Some { kind = F_chr { key; minor }; _ } ->
      chardev_request t key (Message.Dev_ioctl { minor; op; arg })
  | Some _ -> Error Errno.E_inval

let body t () =
  t.ctrs <-
    Some
      {
        c_degraded_rejects = Api.metric_counter "vfs.chardev.degraded_rejects";
        c_stale_endpoints = Api.metric_counter "vfs.chardev.stale_endpoints";
      };
  (* Watch for breaker-driven degradation markers (policy v2). *)
  ignore (Api.sendrec Wellknown.ds (Message.Ds_subscribe { pattern = "degraded.*" }));
  let rec loop () =
    (match Api.receive Sysif.Any with
    | Error _ -> ()
    | Ok (Sysif.Rx_notify { kind = Message.N_ds_update; _ }) -> drain_ds_updates t
    | Ok (Sysif.Rx_notify _) -> ()
    | Ok (Sysif.Rx_msg { src; body }) -> begin
        match body with
        | Message.Vfs_open { path; flags } ->
            let result = handle_open t ~src ~path ~flags in
            ignore (Api.send src (Message.Vfs_open_reply { result }))
        | Message.Vfs_read { fd; grant; len } ->
            let result = handle_io t ~src ~fd ~grant ~len ~write:false in
            ignore (Api.send src (Message.Vfs_io_reply { result }))
        | Message.Vfs_write { fd; grant; len } ->
            let result = handle_io t ~src ~fd ~grant ~len ~write:true in
            ignore (Api.send src (Message.Vfs_io_reply { result }))
        | Message.Vfs_lseek { fd; pos } -> begin
            match Hashtbl.find_opt t.fds (fd_key src fd) with
            | Some file when pos >= 0 ->
                file.pos <- pos;
                ignore (Api.send src (Message.Vfs_reply { result = Ok () }))
            | Some _ -> ignore (Api.send src (Message.Vfs_reply { result = Error Errno.E_inval }))
            | None -> ignore (Api.send src (Message.Vfs_reply { result = Error Errno.E_bad_fd }))
          end
        | Message.Vfs_close { fd } ->
            let existed = Hashtbl.mem t.fds (fd_key src fd) in
            Hashtbl.remove t.fds (fd_key src fd);
            ignore
              (Api.send src
                 (Message.Vfs_reply
                    { result = (if existed then Ok () else Error Errno.E_bad_fd) }))
        | Message.Vfs_ioctl { fd; op; arg } ->
            let result =
              match handle_ioctl t ~src ~fd ~op ~arg with Ok n -> Ok n | Error e -> Error e
            in
            ignore (Api.send src (Message.Vfs_io_reply { result }))
        | _ -> ignore (Api.send src (Message.Vfs_reply { result = Error Errno.E_inval }))
      end);
    loop ()
  in
  loop ()
