let block_size = 4096
let magic = 0x52584653 (* "RXFS" *)
let inode_size = 64
let inodes_per_block = block_size / inode_size
let direct_zones = 7
let zones_per_indirect = block_size / 4
let dirent_size = 64
let max_name = 59
let imap_block = 1
let zmap_start = 2

type superblock = {
  total_blocks : int;
  inode_count : int;
  zmap_blocks : int;
  inode_blocks : int;
  data_start : int;
}

let inode_start sb = zmap_start + sb.zmap_blocks

let set_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let encode_superblock sb =
  let b = Bytes.make block_size '\000' in
  set_u32 b 0 magic;
  set_u32 b 4 sb.total_blocks;
  set_u32 b 8 sb.inode_count;
  set_u32 b 12 sb.zmap_blocks;
  set_u32 b 16 sb.inode_blocks;
  set_u32 b 20 sb.data_start;
  b

let decode_superblock b =
  if Bytes.length b < 24 then Error "superblock truncated"
  else if get_u32 b 0 <> magic then Error "bad magic"
  else
    Ok
      {
        total_blocks = get_u32 b 4;
        inode_count = get_u32 b 8;
        zmap_blocks = get_u32 b 12;
        inode_blocks = get_u32 b 16;
        data_start = get_u32 b 20;
      }

type inode = { mode : int; size : int; nlinks : int; zones : int array }

let zone_slots = direct_zones + 2

let empty_inode = { mode = 0; size = 0; nlinks = 0; zones = Array.make zone_slots 0 }

let encode_inode ino =
  let b = Bytes.make inode_size '\000' in
  set_u32 b 0 ino.mode;
  set_u32 b 4 ino.size;
  set_u32 b 8 ino.nlinks;
  Array.iteri (fun i z -> set_u32 b (12 + (4 * i)) z) ino.zones;
  b

let decode_inode b ~off =
  {
    mode = get_u32 b (off + 0);
    size = get_u32 b (off + 4);
    nlinks = get_u32 b (off + 8);
    zones = Array.init zone_slots (fun i -> get_u32 b (off + 12 + (4 * i)));
  }

let encode_dirent ~ino ~name =
  if String.length name > max_name then invalid_arg "Layout.encode_dirent: name too long";
  let b = Bytes.make dirent_size '\000' in
  set_u32 b 0 ino;
  Bytes.blit_string name 0 b 4 (String.length name);
  b

let decode_dirent b ~off =
  let ino = get_u32 b off in
  let raw = Bytes.sub_string b (off + 4) (dirent_size - 4) in
  let name = match String.index_opt raw '\000' with Some i -> String.sub raw 0 i | None -> raw in
  (ino, name)

let geometry ~total_blocks ~inode_count =
  let bits_per_block = block_size * 8 in
  let zmap_blocks = ((total_blocks + bits_per_block - 1) / bits_per_block) in
  let inode_blocks = (inode_count + inodes_per_block - 1) / inodes_per_block in
  let data_start = zmap_start + zmap_blocks + inode_blocks in
  { total_blocks; inode_count; zmap_blocks; inode_blocks; data_start }
