(** Offline file-system formatter.

    Runs at simulation-setup time (like formatting a disk before
    booting the machine): it writes raw blocks through a caller
    supplied writer, so it has no dependency on the simulated device
    model.

    [add_contiguous_file] lays a file over a contiguous run of data
    zones *without touching the data blocks themselves*: with the
    simulated disk's generate-on-first-read backing store, this is how
    a "1-GB file filled with random data" (Sec. 7.1) exists without a
    gigabyte of memory. *)

type t
(** An in-progress format. *)

val format :
  write_block:(int -> bytes -> unit) -> total_blocks:int -> inode_count:int -> t
(** Write superblock, bitmaps, inode table, and an empty root
    directory. *)

val add_contiguous_file : t -> name:string -> size:int -> t
(** Create [/name] of [size] bytes over the next free contiguous
    zones.  Returns the updated handle.
    @raise Failure if the disk is too small. *)

val file_first_block : t -> string -> int option
(** Data block where a file added by [add_contiguous_file] starts
    (useful for asserting what the content must be). *)

val finish : t -> unit
(** Flush all metadata. *)
