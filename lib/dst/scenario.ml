module System = Resilix_system.System
module Hwmap = Resilix_system.Hwmap
module Engine = Resilix_sim.Engine
module Kernel = Resilix_kernel.Kernel
module Endpoint = Resilix_proto.Endpoint
module Message = Resilix_proto.Message
module Span = Resilix_obs.Span
module Fault = Resilix_vm.Fault
module Data_store = Resilix_datastore.Data_store
module Wget = Resilix_apps.Wget
module Sockets = Resilix_apps.Sockets
module Fslib = Resilix_apps.Fslib
module Httpd = Resilix_apps.Httpd
module Loadgen = Resilix_load.Loadgen
module Metrics = Resilix_obs.Metrics
module Filegen = Resilix_net.Filegen
module Reincarnation = Resilix_core.Reincarnation
module Spec = Resilix_proto.Spec
module Privilege = Resilix_proto.Privilege

type breaker_row = {
  b_component : string;
  b_state : string;
  b_trips : int;
  b_probes : int;
  b_threshold : int;
  b_failures : int;
  b_overdue : bool;
}

type storm_stats = {
  s_requests : int;
  s_completed : int;
  s_refused : int;
  s_resets : int;
  s_timeouts : int;
  s_mismatches : int;
  s_failed : int;
  s_retries : int;
  s_degraded_rejects : int;
  s_accept_refused : int;
  s_served : int;
  s_bytes_in : int;
  s_p50 : int;
  s_p95 : int;
  s_p99 : int;
  s_goodput : int array;
  s_bin_us : int;
  s_outage_at : int;
  s_recovered_by : int;
}

type report = {
  r_completed : bool;
  r_checksum_ok : bool;
  r_endpoints_ok : bool;
  r_applied : int;
  r_expected_spans : int;
  r_recoveries : int;
  r_spans : Span.t;
  r_end_time : int;
  r_decisions : int array;
  r_degraded : string list;
  r_breakers : breaker_row list;
  r_shape : int64;
  r_storm : storm_stats option;
}

type t = {
  name : string;
  targets : string list;
  default_faults : int;
  plan : seed:int -> faults:int -> Fault_plan.t;
  run : seed:int -> policy:Engine.policy -> plan:Fault_plan.t -> report;
}

let make ~name ?(targets = []) ?(default_faults = 0)
    ?(plan = fun ~seed:_ ~faults:_ -> []) ~run () =
  { name; targets; default_faults; plan; run }

(* ------------------------------------------------------------------ *)
(* Helpers for scenario bodies                                         *)
(* ------------------------------------------------------------------ *)

let image_of_target = function
  | "eth.rtl8139" ->
      Some (Resilix_drivers.Netdriver_rtl8139.image_info ~base:Hwmap.rtl8139_base)
  | "eth.dp8390" -> Some (Resilix_drivers.Netdriver_dp8390.image_info ~base:Hwmap.dp8390_base)
  | "blk.sata" -> Some (Resilix_drivers.Blockdriver_disk.image_info ~base:Hwmap.sata_base)
  | _ -> None

(* Schedule every plan entry on the machine's engine.  An entry only
   "applies" when its target has a live process at fire time (kills on
   a mid-restart service miss, exactly like the paper's crash script);
   the returned counters are reduced into the report. *)
let apply_plan t plan =
  let applied = ref 0 and expected_spans = ref 0 in
  List.iter
    (fun (e : Fault_plan.entry) ->
      ignore
        (Engine.schedule_at t.System.engine ~at:e.at (fun () ->
             match e.action with
             | Fault_plan.Kill -> (
                 match System.kill_service_once t ~target:e.target with
                 | Ok () ->
                     incr applied;
                     incr expected_spans
                 | Error _ -> ())
             | Fault_plan.Inject fi -> (
                 match image_of_target e.target with
                 | None -> ()
                 | Some image -> (
                     match
                       System.inject_fault t ~target:e.target ~image Fault.all.(fi)
                     with
                     | Some _ -> incr applied
                     | None -> ())))))
    plan;
  (applied, expected_spans)

let endpoints_consistent t targets =
  let degraded = Data_store.degraded t.System.ds in
  List.for_all
    (fun name ->
      if List.mem name degraded then
        (* A degraded component is parked on purpose: consistency means
           DS does NOT publish an endpoint for it (nobody is routed to
           the parked driver). *)
        Option.is_none (Data_store.lookup t.System.ds name)
      else
        match (Kernel.find_by_name t.System.kernel name, Data_store.lookup t.System.ds name) with
        | Some live, Some published -> Endpoint.compare live published = 0
        | _ -> false)
    targets

(* One second of slack past the cooldown: RS half-opens on its 100 ms
   tick, so an open breaker strictly older than cooldown + 1 s means
   the probe machinery is stuck — the "degraded components are
   eventually probed" half of the DST invariant. *)
let probe_slack_us = 1_000_000

let breaker_rows t =
  let now = Engine.now t.System.engine in
  let events = Reincarnation.events t.System.rs in
  List.map
    (fun (b : Reincarnation.breaker_stat) ->
      {
        b_component = b.Reincarnation.bs_component;
        b_state = Reincarnation.breaker_state_name b.Reincarnation.bs_state;
        b_trips = b.Reincarnation.bs_trips;
        b_probes = b.Reincarnation.bs_probes;
        b_threshold = b.Reincarnation.bs_threshold;
        b_failures =
          List.length
            (List.filter
               (fun (e : Reincarnation.recovery_event) ->
                 String.equal e.Reincarnation.component b.Reincarnation.bs_component)
               events);
        b_overdue =
          (match b.Reincarnation.bs_state with
          | Reincarnation.B_open ->
              now - b.Reincarnation.bs_opened_at > b.Reincarnation.bs_cooldown_us + probe_slack_us
          | Reincarnation.B_closed | Reincarnation.B_half_open -> false);
      })
    (Reincarnation.breaker_stats t.System.rs)

(* The run's coverage-signature fingerprint: recovery-span shape, then
   the trace's recovery-event order, then the end-state degraded set
   and breaker states — all identity fields only, no timestamps (see
   Span.shape_fingerprint / Event.shape_add).  Distinct failure shapes
   get distinct fingerprints; re-timed copies of the same shape share
   one. *)
let shape_of t ~breakers =
  let fp h s =
    Resilix_checksum.Fnv.update_string (Resilix_checksum.Fnv.update_string h s) "\x1f"
  in
  let h = Span.shape_fingerprint t.System.spans in
  let h =
    List.fold_left Resilix_obs.Event.shape_add h (Resilix_sim.Trace.events t.System.trace)
  in
  let h = List.fold_left fp h (Data_store.degraded t.System.ds) in
  List.fold_left (fun h b -> fp (fp h b.b_component) b.b_state) h breakers

let report_of ?storm t ~completed ~checksum_ok ~applied ~expected_spans ~targets =
  let breakers = breaker_rows t in
  {
    r_completed = completed;
    r_checksum_ok = checksum_ok;
    r_endpoints_ok = endpoints_consistent t targets;
    r_applied = applied;
    r_expected_spans = expected_spans;
    r_recoveries =
      List.length (List.filter (fun s -> s.Span.closed_at <> None) (Span.spans t.System.spans));
    r_spans = t.System.spans;
    r_end_time = Engine.now t.System.engine;
    r_decisions = Engine.decisions t.System.engine;
    r_degraded = Data_store.degraded t.System.ds;
    r_breakers = breakers;
    r_shape = shape_of t ~breakers;
    r_storm = storm;
  }

(* ------------------------------------------------------------------ *)
(* Built-in scenario: wget under Ethernet-driver kills                 *)
(* ------------------------------------------------------------------ *)

let wget_file_seed = 77

let wget_run ~size ~seed ~policy ~plan =
  let opts =
    {
      System.default_opts with
      System.seed;
      engine_policy = policy;
      peer_files = [ ("file.bin", (size, wget_file_seed)) ];
      disk_mb = 8;
    }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_rtl8139 ~policy:"direct" () ];
  let result = Wget.fresh_result () in
  ignore
    (System.spawn_app t ~name:"wget"
       (Wget.make ~server:Hwmap.rtl_peer_ip ~port:80 ~file:"file.bin" result));
  let applied, expected_spans = apply_plan t plan in
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> result.Wget.finished) in
  (* Let the last recovery close and dependents re-bind before the
     consistency probes run. *)
  System.run t ~until:(Engine.now t.System.engine + 1_500_000);
  report_of t ~completed:finished
    ~checksum_ok:
      (finished && result.Wget.ok
      && String.equal result.Wget.fnv (Filegen.fnv_digest ~seed:wget_file_seed ~size))
    ~applied:!applied ~expected_spans:!expected_spans ~targets:[ "eth.rtl8139" ]

let wget_sized ?name ~size () =
  let start = 100_000 and horizon = 450_000 in
  let name = Option.value name ~default:(Printf.sprintf "wget-%dk" (size / 1024)) in
  {
    name;
    targets = [ "eth.rtl8139" ];
    default_faults = 3;
    plan =
      (fun ~seed ~faults ->
        Fault_plan.generate ~seed ~targets:[ "eth.rtl8139" ] ~n:faults ~start ~horizon ());
    run = (fun ~seed ~policy ~plan -> wget_run ~size ~seed ~policy ~plan);
  }

let wget_kills = wget_sized ~name:"wget" ~size:(1024 * 1024) ()

(* ------------------------------------------------------------------ *)
(* Built-in scenario: fault injection into the DP8390 driver           *)
(* ------------------------------------------------------------------ *)

let dp_inject_run ~horizon ~seed ~policy ~plan =
  let opts =
    {
      System.default_opts with
      System.seed;
      engine_policy = policy;
      inet_driver = "eth.dp8390";
      disk_mb = 8;
    }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_dp8390 ~policy:"direct" ~heartbeat_period:200_000 () ];
  let received = ref 0 in
  ignore
    (System.spawn_app t ~name:"udp-sink" (fun () ->
         let module Api = Resilix_kernel.Sysif.Api in
         match Sockets.socket Message.Udp with
         | Error _ -> ()
         | Ok sock -> (
             match Sockets.listen sock ~port:9 with
             | Error _ -> ()
             | Ok () ->
                 let rec pump () =
                   (match Sockets.recvfrom sock ~len:2048 with
                   | Ok _ -> incr received
                   | Error _ -> Api.sleep 50_000);
                   pump ()
                 in
                 pump ())));
  let _stop =
    Resilix_net.Peer.start_udp_stream t.System.dp_peer ~dst_ip:Hwmap.local_ip
      ~dst_mac:Hwmap.dp8390_mac ~dst_port:9 ~src_port:7777 ~payload_len:700 ~interval:10_000
  in
  let applied, expected_spans = apply_plan t plan in
  (* Silent-but-disabling faults (the paper's defect class 3): when
     traffic stalls with a healthy-looking driver, the "user" requests
     a restart so the run can make progress again. *)
  let last_rx = ref 0 and last_progress = ref 0 in
  let rec watchdog () =
    let now = Engine.now t.System.engine in
    if now < horizon + 2_000_000 then begin
      if !received > !last_rx then begin
        last_rx := !received;
        last_progress := now
      end
      else if now - !last_progress > 1_000_000 then begin
        last_progress := now;
        match Kernel.find_by_name t.System.kernel "eth.dp8390" with
        | Some _ -> ignore (System.kill_service_once t ~target:"eth.dp8390")
        | None -> ()
      end;
      ignore (Engine.schedule t.System.engine ~after:100_000 watchdog)
    end
  in
  watchdog ();
  System.run t ~until:(horizon + 2_000_000);
  report_of t
    ~completed:(!received > 0)
    ~checksum_ok:true ~applied:!applied ~expected_spans:!expected_spans
    ~targets:[ "eth.dp8390" ]

let dp_inject =
  let start = 500_000 and horizon = 2_500_000 in
  {
    name = "dp-inject";
    targets = [ "eth.dp8390" ];
    default_faults = 10;
    plan =
      (fun ~seed ~faults ->
        Fault_plan.generate ~seed ~targets:[ "eth.dp8390" ] ~n:faults ~start ~horizon
          ~inject_prob:1.0 ());
    run = (fun ~seed ~policy ~plan -> dp_inject_run ~horizon ~seed ~policy ~plan);
  }

(* ------------------------------------------------------------------ *)
(* Built-in scenario: a permanently-faulty driver under a breaker      *)
(* ------------------------------------------------------------------ *)

(* The audio driver is respawned as a program that panics shortly
   after coming up, forever.  Under the paper's flat scripts RS would
   restart it until the give-up bound (or without one, forever); under
   the breaker policy the component must end parked — [`Degraded],
   breaker open, endpoint unpublished — while the workload keeps
   getting clean [E_degraded]/[E_io] errors instead of hanging. *)
let flaky_horizon = 12_000_000

let flaky_run ~seed ~policy ~plan =
  let opts = { System.default_opts with System.seed; engine_policy = policy; disk_mb = 8 } in
  let t = System.boot ~opts () in
  Kernel.register_program t.System.kernel "chr.audio.flaky" (fun () ->
      let module Api = Resilix_kernel.Sysif.Api in
      Api.sleep 60_000;
      Api.exit (Resilix_proto.Status.Panicked "flaky hardware"));
  let spec =
    Spec.make ~name:"chr.audio" ~program:"chr.audio.flaky"
      ~privileges:(Privilege.driver ~ipc_to:[ "vfs" ] ~io_ports:[] ~irqs:[])
      ~policy:"breaker" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  let iterations = ref 0 and clean_errors = ref 0 and hung = ref false in
  ignore
    (System.spawn_app t ~name:"audio-user" (fun () ->
         let module Api = Resilix_kernel.Sysif.Api in
         let rec pump () =
           let t0 = Api.now () in
           (match Fslib.open_file "/dev/audio" ~wr:true with
           | Ok fd ->
               (match Fslib.write fd (Bytes.make 256 'x') with
               | Ok _ -> ()
               | Error _ -> incr clean_errors);
               ignore (Fslib.close fd)
           | Error _ -> incr clean_errors);
           (* A reply (even an error) must come back promptly; a parked
              driver must never turn into an application hang. *)
           if Api.now () - t0 > 2_000_000 then hung := true;
           incr iterations;
           Api.sleep 100_000;
           pump ()
         in
         pump ()));
  let applied, expected_spans = apply_plan t plan in
  System.run t ~until:flaky_horizon;
  report_of t
    ~completed:((not !hung) && !iterations >= flaky_horizon / 100_000 / 2)
    ~checksum_ok:true ~applied:!applied ~expected_spans:!expected_spans
    ~targets:[ "chr.audio" ]

let flaky =
  make ~name:"flaky" ~targets:[ "chr.audio" ]
    ~run:(fun ~seed ~policy ~plan -> flaky_run ~seed ~policy ~plan)
    ()

(* ------------------------------------------------------------------ *)
(* Built-in scenario: C10K storm — HTTP-ish load vs driver kills       *)
(* ------------------------------------------------------------------ *)

let metric_of snap name = Metrics.counter_value snap name

let storm_run ~requests ~concurrency ~workers ~backlog ~seed ~policy ~plan =
  let opts = { System.default_opts with System.seed; engine_policy = policy; disk_mb = 8 } in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_rtl8139 ~policy:"direct" () ];
  (* The server: one listener app binds port 80, then a pool of
     workers blocks in accept on the shared socket. *)
  let hstats = Httpd.fresh_stats () in
  ignore
    (System.spawn_app t ~name:"httpd-listener" (Httpd.listener ~backlog ~port:80 hstats));
  ignore (System.run_until t ~timeout:5_000_000 (fun () -> hstats.Httpd.listening));
  for i = 1 to workers do
    ignore (System.spawn_app t ~name:(Printf.sprintf "httpd-w%d" i) (Httpd.worker hstats))
  done;
  (* The storm: the load generator lives on the RTL-side peer and
     opens flows into the machine through the guarded driver. *)
  let config = { Loadgen.default_config with Loadgen.requests; concurrency } in
  let lg =
    Loadgen.create ~engine:t.System.engine ~seed ~peer:t.System.rtl_peer
      ~metrics:t.System.metrics ~config ~dst_ip:Hwmap.local_ip ~dst_mac:Hwmap.rtl8139_mac ()
  in
  Loadgen.start lg;
  let applied, expected_spans = apply_plan t plan in
  let finished = System.run_until t ~timeout:240_000_000 (fun () -> Loadgen.finished lg) in
  System.run t ~until:(Engine.now t.System.engine + 1_500_000);
  let ls = Loadgen.stats lg in
  let snap = Metrics.snapshot t.System.metrics in
  let q p =
    match List.assoc_opt "load.latency_us" snap.Metrics.histograms with
    | Some h -> Metrics.quantile h p
    | None -> 0
  in
  let outage_at =
    List.fold_left
      (fun acc (e : Fault_plan.entry) ->
        match e.action with
        | Fault_plan.Kill -> if acc = 0 then e.at else min acc e.at
        | Fault_plan.Inject _ -> acc)
      0 plan
  in
  let recovered_by =
    List.fold_left
      (fun acc (s : Span.span) ->
        match s.Span.closed_at with Some c -> max acc c | None -> acc)
      0
      (Span.spans t.System.spans)
  in
  let storm =
    {
      s_requests = requests;
      s_completed = ls.Loadgen.completed;
      s_refused = ls.Loadgen.refused;
      s_resets = ls.Loadgen.resets;
      s_timeouts = ls.Loadgen.timeouts;
      s_mismatches = ls.Loadgen.digest_mismatches;
      s_failed = ls.Loadgen.failed;
      s_retries = ls.Loadgen.attempts - ls.Loadgen.issued;
      s_degraded_rejects = metric_of snap "inet.degraded_rejects";
      s_accept_refused = metric_of snap "inet.accept_refused";
      s_served = hstats.Httpd.requests;
      s_bytes_in = ls.Loadgen.bytes_in;
      s_p50 = q 0.50;
      s_p95 = q 0.95;
      s_p99 = q 0.99;
      s_goodput = Loadgen.goodput_bins lg;
      s_bin_us = Loadgen.bin_us lg;
      s_outage_at = outage_at;
      s_recovered_by = recovered_by;
    }
  in
  report_of ~storm t ~completed:finished
    ~checksum_ok:(ls.Loadgen.digest_mismatches = 0)
    ~applied:!applied ~expected_spans:!expected_spans ~targets:[ "eth.rtl8139" ]

let storm_sized ?name ~requests ~concurrency ~workers ~backlog () =
  (* Kills land mid-storm: inside the arrival span, past the warmup. *)
  let span = requests * Loadgen.default_config.Loadgen.arrival_interval in
  let start = 150_000 + (span / 4) and horizon = 150_000 + (3 * span / 4) in
  let name = Option.value name ~default:(Printf.sprintf "storm-%d" requests) in
  {
    name;
    targets = [ "eth.rtl8139" ];
    default_faults = 1;
    plan =
      (fun ~seed ~faults ->
        Fault_plan.generate ~seed ~targets:[ "eth.rtl8139" ] ~n:faults ~start ~horizon ());
    run =
      (fun ~seed ~policy ~plan ->
        storm_run ~requests ~concurrency ~workers ~backlog ~seed ~policy ~plan);
  }

let storm = storm_sized ~name:"storm" ~requests:64 ~concurrency:32 ~workers:8 ~backlog:16 ()

(* Virtual-time-only rendering: byte-identical for any host, any
   --jobs, any repeat of the same seed. *)
let storm_lines (r : report) =
  match r.r_storm with
  | None -> []
  | Some s ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "goodput bytes/bin:";
      Array.iter (fun b -> Buffer.add_string buf (Printf.sprintf " %d" b)) s.s_goodput;
      [
        Printf.sprintf "requests %d: %d completed, %d failed, %d timed out, %d mismatched"
          s.s_requests s.s_completed s.s_failed s.s_timeouts s.s_mismatches;
        Printf.sprintf
          "attempts: %d retries, %d refused (SYN/backlog), %d resets, %d degraded-rejects, %d accept-refused"
          s.s_retries s.s_refused s.s_resets s.s_degraded_rejects s.s_accept_refused;
        Printf.sprintf "served: %d responses, %d bytes received and verified" s.s_served
          s.s_bytes_in;
        Printf.sprintf "latency: p50=%dus p95=%dus p99=%dus" s.s_p50 s.s_p95 s.s_p99;
        Printf.sprintf "outage: first kill at t=%dus, last recovery closed at t=%dus"
          s.s_outage_at s.s_recovered_by;
        Printf.sprintf "goodput timeline (%dus bins): %d bins" s.s_bin_us
          (Array.length s.s_goodput);
        Buffer.contents buf;
      ]

let builtins = [ wget_kills; dp_inject; flaky; storm ]

let find name = List.find_opt (fun s -> s.name = name) builtins
