(** Seeded exploration: many runs of one scenario, each under a
    different schedule permutation and fault plan.

    Run [i] of an exploration with master seed [s] uses child seed
    [Rng.derive ~seed:s ~index:i] for {e everything} — the machine's
    RNG, the fault-plan generator, and the engine's [Seeded]
    tie-break policy.  Runs are hermetic {!Resilix_harness.Trial}s
    executed on the campaign domain pool, and findings come back in
    run-index order, so an exploration's output is a pure function of
    [(scenario, seed, runs, faults, bound)] — identical for any
    [?jobs]. *)

type outcome = {
  o_index : int;  (** run index within the exploration *)
  o_seed : int;  (** the run's derived child seed *)
  o_plan : Fault_plan.t;
  o_decisions : int array;  (** recorded tie-break trace *)
  o_violations : Invariant.violation list;  (** non-empty *)
}

type result = {
  scenario : string;
  runs : int;
  bound : int;
  failures : outcome list;  (** violating runs only, in run-index order *)
}

val default_bound : int
(** 1 s of virtual time — generous against the paper's ~6 ms
    restarts, so clean runs stay clean. *)

val run :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?faults:int ->
  ?bound:int ->
  Scenario.t ->
  seed:int ->
  runs:int ->
  unit ->
  result
(** Explore.  [faults] defaults to the scenario's [default_faults];
    [bound] to {!default_bound}.  A run that raises becomes a
    ["scenario-crash"] finding rather than aborting the batch. *)

val to_repro : result -> outcome -> Repro.t
(** Package one finding as a saveable {!Repro.t}. *)
