(** Seeded exploration: many runs of one scenario, each under a
    different schedule permutation and fault plan.

    {b Blind mode} ({!run}): run [i] of an exploration with master
    seed [s] uses child seed [Rng.derive ~seed:s ~index:i] for
    {e everything} — the machine's RNG, the fault-plan generator, and
    the engine's [Seeded] tie-break policy.

    {b Guided mode} ({!run_guided}): batches alternate between fresh
    sampling (exactly blind mode's specs, same child seeds) and
    mutating a coverage {!Corpus} — replaying a corpus entry's machine
    seed under a {!Mutate}d fault plan and decision trace ([Scripted]
    policy).  A run enters the corpus when its coverage signature
    (violated-invariant set + shape fingerprint, see {!Corpus}) is
    new, and findings are deduplicated by signature.  The mutation
    schedule derives from the master seed and the run index alone, and
    corpus snapshots iterate key-sorted, so guided output is a pure
    function of [(scenario, seed, runs, faults, bound, batch)].

    Either way, runs are hermetic {!Resilix_harness.Trial}s executed
    on the campaign domain pool, and findings come back in run-index
    order — output is identical for any [?jobs]. *)

type outcome = {
  o_index : int;  (** run index within the exploration *)
  o_seed : int;  (** the run's machine seed (a mutant's parent seed) *)
  o_plan : Fault_plan.t;
  o_decisions : int array;  (** recorded tie-break trace *)
  o_violations : Invariant.violation list;  (** non-empty *)
}

type result = {
  scenario : string;
  runs : int;
  bound : int;
  failures : outcome list;  (** violating runs only, in run-index order *)
}

val default_bound : int
(** 1 s of virtual time — generous against the paper's ~6 ms
    restarts, so clean runs stay clean. *)

val run :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?faults:int ->
  ?bound:int ->
  Scenario.t ->
  seed:int ->
  runs:int ->
  unit ->
  result
(** Explore blind.  [faults] defaults to the scenario's
    [default_faults]; [bound] to {!default_bound}.  A run that raises
    becomes a ["scenario-crash"] finding rather than aborting the
    batch. *)

val to_repro : result -> outcome -> Repro.t
(** Package one finding as a saveable {!Repro.t}. *)

type guided = {
  g_scenario : string;
  g_runs : int;
  g_bound : int;
  g_batch : int;  (** batch size used *)
  g_fresh : int;  (** fresh-sample runs executed *)
  g_mutants : int;  (** corpus-mutation runs executed *)
  g_signatures : string list;
      (** distinct coverage-signature keys observed this exploration
          (clean and failing), sorted *)
  g_failing : (string * outcome) list;
      (** one finding per failing signature key — the first run to hit
          it — in run order *)
  g_corpus : Corpus.t;
      (** the corpus after the exploration (the caller's [?corpus],
          grown, or a fresh one) *)
  g_new_entries : int;  (** corpus entries added by this exploration *)
}

val default_batch : int
(** 16 — small enough that the corpus grows between batches, large
    enough to keep the domain pool busy. *)

val run_guided :
  ?jobs:int ->
  ?on_progress:(Resilix_harness.Campaign.progress -> unit) ->
  ?faults:int ->
  ?bound:int ->
  ?batch:int ->
  ?fresh_only:bool ->
  ?corpus:Corpus.t ->
  Scenario.t ->
  seed:int ->
  runs:int ->
  unit ->
  guided
(** Explore guided.  Odd-numbered batches mutate the corpus when it is
    non-empty; all other batches sample fresh (with blind mode's exact
    child seeds).  [fresh_only:true] disables mutation entirely —
    every run is a blind sample, but signatures and the corpus are
    still tracked, making it the baseline a guided run is measured
    against.  [corpus] seeds the exploration with prior entries
    (loaded from disk via {!Corpus.load}); signatures already in it
    are not re-reported, but still count into {!guided.g_signatures}
    when re-observed.  Progress events span the whole exploration
    ([p_total = runs]) even though batches run as separate campaigns. *)

val guided_to_repro : guided -> outcome -> Repro.t
(** Package one guided finding as a saveable {!Repro.t}.  A mutant's
    repro replays exactly: its machine seed is the parent's and its
    plan and decision trace are stored verbatim. *)

val guided_summary : guided -> string
(** Canonical multi-line rendering: a header line (run/signature
    counts), one ["signature <key>"] line per distinct signature, one
    ["failing <key> ..."] line per deduplicated finding.  Both the CLI
    and the determinism tests print this — byte-identical for any
    [?jobs] and across repeated runs. *)
