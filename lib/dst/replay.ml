module Engine = Resilix_sim.Engine

type outcome = {
  violations : Invariant.violation list;
  decisions : int array;  (** the trace the replay itself recorded *)
  reproduced : bool;
}

let resolve override (r : Repro.t) =
  match override with
  | Some sc -> Ok sc
  | None -> (
      match Scenario.find r.scenario with
      | Some sc -> Ok sc
      | None -> Error (Printf.sprintf "unknown scenario %S" r.scenario))

(* Trailing zeros in a recorded trace are FIFO choices, which is
   exactly what a Scripted policy falls back to when the script runs
   out — dropping them changes nothing. *)
let trim_trailing_zeros a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  Array.sub a 0 !n

let execute (sc : Scenario.t) (r : Repro.t) ~plan ~decisions =
  let report = sc.Scenario.run ~seed:r.seed ~policy:(Engine.Scripted decisions) ~plan in
  let violations = Invariant.check ~bound:r.bound report in
  (violations, trim_trailing_zeros report.Scenario.r_decisions)

let run ?scenario (r : Repro.t) =
  match resolve scenario r with
  | Error _ as e -> e
  | Ok sc ->
      let violations, decisions = execute sc r ~plan:r.plan ~decisions:r.decisions in
      Ok { violations; decisions; reproduced = Invariant.same_failure violations r.violations }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let nonzero a = Array.fold_left (fun n d -> if d <> 0 then n + 1 else n) 0 a

(* Strictly decreasing lexicographic measure; every adopted candidate
   shrinks it, so the greedy loop terminates and the result is never
   larger than the input. *)
let measure plan dec = (List.length plan, nonzero dec, Array.length dec)

let shrink ?scenario (r : Repro.t) =
  match resolve scenario r with
  | Error _ as e -> e
  | Ok sc ->
      let target = Invariant.names r.violations in
      let first_violations, first_dec = execute sc r ~plan:r.plan ~decisions:r.decisions in
      if not (Invariant.same_failure first_violations r.violations) then
        Error
          (Printf.sprintf "repro does not reproduce: expected [%s], got [%s]"
             (String.concat ", " target)
             (String.concat ", " (Invariant.names first_violations)))
      else begin
        let cur_plan = ref r.plan in
        let cur_dec = ref first_dec in
        let cur_violations = ref first_violations in
        let adopt plan dec =
          match execute sc r ~plan ~decisions:dec with
          | violations, dec' when Invariant.names violations = target ->
              if measure plan dec' < measure !cur_plan !cur_dec then begin
                cur_plan := plan;
                cur_dec := dec';
                cur_violations := violations;
                true
              end
              else false
          | _ -> false
        in
        let improved = ref true in
        while !improved do
          improved := false;
          (* Pass 1: drop fault-plan entries one at a time.  On
             adoption the entry at [i] is a new, untried one, so [i]
             stays put. *)
          let i = ref 0 in
          while !i < List.length !cur_plan do
            let cand = List.filteri (fun j _ -> j <> !i) !cur_plan in
            if adopt cand !cur_dec then improved := true else incr i
          done;
          (* Pass 2: revert divergent tie-breaks to FIFO.  Cheap
             opening move first — when the failure is not
             schedule-dependent, the all-FIFO (empty) script
             reproduces it and the whole trace collapses in one run. *)
          if Array.length !cur_dec > 0 && adopt !cur_plan [||] then improved := true;
          (* Then one decision at a time.  Zeroing decision [k] may
             change every later choice point, so the re-recorded
             trace is adopted (and judged by the measure), not the
             mutated array. *)
          let k = ref 0 in
          while !k < Array.length !cur_dec do
            (if !cur_dec.(!k) <> 0 then
               let cand = Array.copy !cur_dec in
               cand.(!k) <- 0;
               if adopt !cur_plan cand then improved := true);
            incr k
          done
        done;
        Ok { r with plan = !cur_plan; decisions = !cur_dec; violations = !cur_violations }
      end
