(** Seeded mutations over exploration inputs.

    The guided explorer's mutation-batch runs re-execute a corpus
    entry's machine seed with a {e perturbed} fault plan and decision
    trace.  These operators supply the perturbations.  Each draws only
    from the {!Resilix_sim.Rng.t} it is handed, so a mutant is a pure
    function of (rng state, parent input) — the explorer derives that
    state from the master seed and the run index, keeping guided
    output independent of wall-clock time, [--jobs], and pool order.

    Mutated plans are always re-sorted by time ({!Fault_plan.t}'s
    invariant); mutated times are clamped non-negative. *)

val plan :
  Resilix_sim.Rng.t -> targets:string array -> Fault_plan.t -> Fault_plan.t
(** One plan mutation: drop an entry, duplicate one at a jittered
    time, point-mutate one (re-time / retarget / flip kill<->inject),
    or time-shift the whole plan.  An empty plan grows one fresh
    entry; empty [targets] returns the plan unchanged. *)

val splice : Resilix_sim.Rng.t -> Fault_plan.t -> Fault_plan.t -> Fault_plan.t
(** Crossover: a random prefix of the first plan joined to a random
    suffix of the second, re-sorted.  If either is empty, the other. *)

val decisions : Resilix_sim.Rng.t -> int array -> int array
(** One decision-trace mutation: flip one recorded tie-break, insert
    one, or truncate (the engine's [Scripted] policy falls back to
    FIFO past the end).  An empty trace grows one nonzero entry. *)
