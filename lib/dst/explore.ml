module Rng = Resilix_sim.Rng
module Engine = Resilix_sim.Engine
module Trial = Resilix_harness.Trial
module Campaign = Resilix_harness.Campaign

type outcome = {
  o_index : int;
  o_seed : int;
  o_plan : Fault_plan.t;
  o_decisions : int array;
  o_violations : Invariant.violation list;
}

type result = {
  scenario : string;
  runs : int;
  bound : int;
  failures : outcome list;  (** violating runs only, in run-index order *)
}

let default_bound = 1_000_000

let run ?jobs ?on_progress ?faults ?(bound = default_bound) (scenario : Scenario.t) ~seed
    ~runs () =
  if runs <= 0 then invalid_arg "Explore.run: runs must be positive";
  let faults = Option.value faults ~default:scenario.Scenario.default_faults in
  let trials =
    List.init runs (fun i ->
        let child = Rng.derive ~seed ~index:i in
        Trial.make
          ~name:(Printf.sprintf "%s/run-%04d" scenario.Scenario.name i)
          ~seed:child
          (fun () ->
            let plan = scenario.Scenario.plan ~seed:child ~faults in
            let report = scenario.Scenario.run ~seed:child ~policy:(Engine.Seeded child) ~plan in
            (plan, report)))
  in
  let collected = (Campaign.run ?jobs ?on_progress trials).Campaign.outcomes in
  let failures = ref [] in
  List.iteri
    (fun i outcome ->
      let child = Rng.derive ~seed ~index:i in
      match outcome with
      | Ok (plan, report) -> (
          match Invariant.check ~bound report with
          | [] -> ()
          | violations ->
              failures :=
                {
                  o_index = i;
                  o_seed = child;
                  o_plan = plan;
                  o_decisions = report.Scenario.r_decisions;
                  o_violations = violations;
                }
                :: !failures)
      | Error exn ->
          (* A crashed run is the strongest finding of all; the plan is
             a pure function of the child seed, so it is recoverable
             even though the run never reported. *)
          failures :=
            {
              o_index = i;
              o_seed = child;
              o_plan = scenario.Scenario.plan ~seed:child ~faults;
              o_decisions = [||];
              o_violations =
                [
                  {
                    Invariant.v_invariant = "scenario-crash";
                    v_detail = Printexc.to_string exn;
                  };
                ];
            }
            :: !failures)
    collected;
  {
    scenario = scenario.Scenario.name;
    runs;
    bound;
    failures = List.rev !failures;
  }

let to_repro result outcome =
  {
    Repro.scenario = result.scenario;
    seed = outcome.o_seed;
    bound = result.bound;
    plan = outcome.o_plan;
    decisions = outcome.o_decisions;
    violations = outcome.o_violations;
  }
