module Rng = Resilix_sim.Rng
module Engine = Resilix_sim.Engine
module Trial = Resilix_harness.Trial
module Campaign = Resilix_harness.Campaign
module Fnv = Resilix_checksum.Fnv

type outcome = {
  o_index : int;
  o_seed : int;
  o_plan : Fault_plan.t;
  o_decisions : int array;
  o_violations : Invariant.violation list;
}

type result = {
  scenario : string;
  runs : int;
  bound : int;
  failures : outcome list;  (** violating runs only, in run-index order *)
}

let default_bound = 1_000_000

(* ------------------------------------------------------------------ *)
(* Run specs: precomputed inputs for one exploration run               *)
(* ------------------------------------------------------------------ *)

(* Both blind and guided exploration execute the same thing: a batch
   of fully-determined (seed, plan, policy) triples on the campaign
   pool.  Precomputing them as specs keeps the two modes on one code
   path and lets the crash path report the exact plan that ran (a
   mutant's plan is not recoverable from its seed). *)
type run_spec = {
  rs_index : int;
  rs_seed : int;
  rs_plan : Fault_plan.t;
  rs_policy : Engine.policy;
}

let fresh_spec (scenario : Scenario.t) ~seed ~faults i =
  let child = Rng.derive ~seed ~index:i in
  {
    rs_index = i;
    rs_seed = child;
    rs_plan = scenario.Scenario.plan ~seed:child ~faults;
    rs_policy = Engine.Seeded child;
  }

let execute ?jobs ?on_progress ?progress_offset ?progress_total (scenario : Scenario.t)
    specs =
  let trials =
    List.map
      (fun spec ->
        Trial.make
          ~name:(Printf.sprintf "%s/run-%04d" scenario.Scenario.name spec.rs_index)
          ~seed:spec.rs_seed
          (fun () ->
            scenario.Scenario.run ~seed:spec.rs_seed ~policy:spec.rs_policy
              ~plan:spec.rs_plan))
      specs
  in
  (Campaign.run ?jobs ?on_progress ?progress_offset ?progress_total trials)
    .Campaign.outcomes

(* A crashed run never reported a shape, but it still needs a coverage
   signature so guided exploration can dedup and corpus it. *)
let crash_shape exn =
  Fnv.update_string (Fnv.update_string Fnv.start "crash\x1f") (Printexc.to_string exn)

let crash_violation exn =
  { Invariant.v_invariant = "scenario-crash"; v_detail = Printexc.to_string exn }

(* Judge one run: its violations, recorded decision trace, and shape. *)
let judge ~bound spec = function
  | Ok (report : Scenario.report) ->
      (Invariant.check ~bound report, report.Scenario.r_decisions, report.Scenario.r_shape)
  | Error exn ->
      ignore spec;
      ([ crash_violation exn ], [||], crash_shape exn)

(* ------------------------------------------------------------------ *)
(* Blind exploration                                                   *)
(* ------------------------------------------------------------------ *)

let run ?jobs ?on_progress ?faults ?(bound = default_bound) (scenario : Scenario.t) ~seed
    ~runs () =
  if runs <= 0 then invalid_arg "Explore.run: runs must be positive";
  let faults = Option.value faults ~default:scenario.Scenario.default_faults in
  let specs = List.init runs (fresh_spec scenario ~seed ~faults) in
  let collected = execute ?jobs ?on_progress scenario specs in
  let failures = ref [] in
  List.iter2
    (fun spec outcome ->
      match judge ~bound spec outcome with
      | [], _, _ -> ()
      | violations, decisions, _ ->
          failures :=
            {
              o_index = spec.rs_index;
              o_seed = spec.rs_seed;
              o_plan = spec.rs_plan;
              o_decisions = decisions;
              o_violations = violations;
            }
            :: !failures)
    specs collected;
  {
    scenario = scenario.Scenario.name;
    runs;
    bound;
    failures = List.rev !failures;
  }

let to_repro result outcome =
  {
    Repro.scenario = result.scenario;
    seed = outcome.o_seed;
    bound = result.bound;
    plan = outcome.o_plan;
    decisions = outcome.o_decisions;
    violations = outcome.o_violations;
  }

(* ------------------------------------------------------------------ *)
(* Guided exploration                                                  *)
(* ------------------------------------------------------------------ *)

type guided = {
  g_scenario : string;
  g_runs : int;
  g_bound : int;
  g_batch : int;
  g_fresh : int;
  g_mutants : int;
  g_signatures : string list;
  g_failing : (string * outcome) list;
  g_corpus : Corpus.t;
  g_new_entries : int;
}

let default_batch = 16

(* Every random choice a mutant spec makes flows from this generator:
   a pure function of (master seed, run index), on a stream disjoint
   from the machine RNG (which reuses the parent's seed), so mutation
   schedules never depend on wall-clock time, [--jobs], or pool
   ordering. *)
let mutation_rng ~seed i =
  Rng.create ~seed:(Rng.derive ~seed:(Rng.derive ~seed ~index:i) ~index:7777)

let mutant_spec ~seed ~parents ~targets i =
  let mrng = mutation_rng ~seed i in
  let parent = Rng.pick mrng parents in
  let repro = parent.Corpus.c_repro in
  let plan =
    if Array.length parents > 1 && Rng.bool mrng 0.2 then
      let other = Rng.pick mrng parents in
      Mutate.splice mrng repro.Repro.plan other.Corpus.c_repro.Repro.plan
    else Mutate.plan mrng ~targets repro.Repro.plan
  in
  let decisions =
    if Rng.bool mrng 0.5 then Mutate.decisions mrng repro.Repro.decisions
    else repro.Repro.decisions
  in
  {
    rs_index = i;
    rs_seed = repro.Repro.seed;
    rs_plan = plan;
    rs_policy = Engine.Scripted decisions;
  }

let run_guided ?jobs ?on_progress ?faults ?(bound = default_bound)
    ?(batch = default_batch) ?(fresh_only = false) ?corpus (scenario : Scenario.t) ~seed
    ~runs () =
  if runs <= 0 then invalid_arg "Explore.run_guided: runs must be positive";
  if batch <= 0 then invalid_arg "Explore.run_guided: batch must be positive";
  let faults = Option.value faults ~default:scenario.Scenario.default_faults in
  let targets = Array.of_list scenario.Scenario.targets in
  let corpus = match corpus with Some c -> c | None -> Corpus.create () in
  let seen = Hashtbl.create 64 in
  let failing = ref [] (* (key, outcome), reverse run order *) in
  let fresh = ref 0 and mutants = ref 0 and new_entries = ref 0 in
  let executed = ref 0 and batch_index = ref 0 in
  while !executed < runs do
    let count = min batch (runs - !executed) in
    (* Odd batches mutate the corpus accumulated so far; even batches
       (and all batches until the corpus is non-empty) sample fresh.
       The corpus snapshot is key-sorted, so batch composition is a
       deterministic function of prior batches' results alone. *)
    let parents = Array.of_list (Corpus.entries corpus) in
    let mutating =
      (not fresh_only) && !batch_index mod 2 = 1 && Array.length parents > 0
    in
    let specs =
      List.init count (fun k ->
          let i = !executed + k in
          if mutating then mutant_spec ~seed ~parents ~targets i
          else fresh_spec scenario ~seed ~faults i)
    in
    if mutating then mutants := !mutants + count else fresh := !fresh + count;
    let collected =
      execute ?jobs ?on_progress ~progress_offset:!executed ~progress_total:runs scenario
        specs
    in
    (* Judge sequentially, in run order — corpus growth and finding
       dedup are single-threaded and deterministic. *)
    List.iter2
      (fun spec outcome ->
        let violations, decisions, shape = judge ~bound spec outcome in
        let key = Corpus.key (Corpus.signature_of ~violations ~shape) in
        if not (Hashtbl.mem seen key) then Hashtbl.add seen key ();
        let repro =
          {
            Repro.scenario = scenario.Scenario.name;
            seed = spec.rs_seed;
            bound;
            plan = spec.rs_plan;
            decisions;
            violations;
          }
        in
        if Corpus.add corpus ~key repro then incr new_entries;
        if violations <> [] && not (List.mem_assoc key !failing) then
          failing :=
            ( key,
              {
                o_index = spec.rs_index;
                o_seed = spec.rs_seed;
                o_plan = spec.rs_plan;
                o_decisions = decisions;
                o_violations = violations;
              } )
            :: !failing)
      specs collected;
    executed := !executed + count;
    incr batch_index
  done;
  {
    g_scenario = scenario.Scenario.name;
    g_runs = runs;
    g_bound = bound;
    g_batch = batch;
    g_fresh = !fresh;
    g_mutants = !mutants;
    g_signatures = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []);
    g_failing = List.rev !failing;
    g_corpus = corpus;
    g_new_entries = !new_entries;
  }

let guided_to_repro g outcome =
  {
    Repro.scenario = g.g_scenario;
    seed = outcome.o_seed;
    bound = g.g_bound;
    plan = outcome.o_plan;
    decisions = outcome.o_decisions;
    violations = outcome.o_violations;
  }

(* One canonical rendering, used by both the CLI and the determinism
   tests — "byte-identical for any --jobs" is pinned against this. *)
let guided_summary g =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "guided scenario=%s runs=%d bound=%d batch=%d fresh=%d mutants=%d signatures=%d \
     corpus-new=%d failing=%d\n"
    g.g_scenario g.g_runs g.g_bound g.g_batch g.g_fresh g.g_mutants
    (List.length g.g_signatures)
    g.g_new_entries
    (List.length g.g_failing);
  List.iter (fun k -> Printf.bprintf b "signature %s\n" k) g.g_signatures;
  List.iter
    (fun (k, o) ->
      Printf.bprintf b "failing %s run-%04d seed=%d invariants=%s\n" k o.o_index o.o_seed
        (String.concat "," (Invariant.names o.o_violations)))
    g.g_failing;
  Buffer.contents b
