(** Repro files: a failing exploration run as portable JSONL.

    One line per fact, so repros diff and shrink cleanly:
    {v
    {"type":"dst-repro","version":1,"scenario":"wget","seed":9,"bound":1000}
    {"type":"fault","at":150000,"target":"eth.rtl8139","action":"kill"}
    {"type":"decisions","values":[1,0,2]}
    {"type":"violation","invariant":"span-completeness","detail":"..."}
    v}

    [fault] lines are the (possibly shrunk) {!Fault_plan.t} in time
    order; [decisions] is the engine's recorded tie-break trace, fed
    back as a [Scripted] policy on replay; [violation] lines are what
    the original run tripped, which replay must reproduce. *)

type t = {
  scenario : string;  (** resolved via {!Scenario.find} on replay *)
  seed : int;  (** the run's derived seed (machine RNG, plan) *)
  bound : int;  (** recovery-span bound the invariants used, us *)
  plan : Fault_plan.t;
  decisions : int array;
  violations : Invariant.violation list;
}

val to_lines : t -> string list
val of_lines : string list -> (t, string) result

val save : t -> string -> unit
(** Write the JSONL file (one line per {!to_lines} element). *)

val load : string -> (t, string) result
(** Parse a file produced by {!save}; [Error] describes the first
    malformed line. *)
