(** Coverage corpus for guided exploration.

    Guided exploration needs two things a blind sweep does not: a
    notion of {e coverage} ("did this run behave in a way we have not
    seen?") and a store of interesting inputs to mutate.  This module
    provides both.

    A run's {b signature} is the pair (violated-invariant set, shape
    fingerprint).  The invariant set is the failure identity already
    used by shrinking ({!Invariant.names}); the shape fingerprint
    ({!Scenario.report.r_shape}) captures {e how} the run unfolded —
    recovery-span structure, recovery-event order, end-state degraded
    and breaker sets — with no timestamps, so it is stable across
    harmless timing jitter but distinguishes genuinely different
    recovery interleavings.  Runs are deduplicated by signature: the
    corpus keeps the first input reaching each signature, and findings
    are reported once per signature rather than once per run.

    Entries are stored as {!Repro} values — each corpus entry {e is} a
    replayable repro — and persist as one JSONL file per entry named
    [<key>.jsonl], so a saved corpus doubles as a directory of repro
    files that [resilix replay] can consume directly.

    Determinism: {!entries} and {!keys} return key-sorted lists, and
    {!load} reads files in sorted name order, so corpus iteration
    order never depends on insertion order, hashtable internals, or
    the filesystem. *)

type signature = {
  s_invariants : string list;  (** sorted violated-invariant names *)
  s_shape : int64;  (** {!Scenario.report.r_shape} *)
}

val signature_of : violations:Invariant.violation list -> shape:int64 -> signature

val key : signature -> string
(** 16-hex-digit FNV-1a key over the signature's fields (0x1f
    separated) — the corpus' dedup identity and on-disk file stem. *)

type entry = { c_key : string; c_repro : Repro.t }

type t

val create : unit -> t
val size : t -> int
val mem : t -> string -> bool

val add : t -> key:string -> Repro.t -> bool
(** [add t ~key repro] keeps [repro] if [key] is new; returns whether
    it was new (the guided explorer's "made progress" predicate). *)

val entries : t -> entry list
(** All entries, sorted by key. *)

val keys : t -> string list
(** All keys, sorted. *)

val save : t -> dir:string -> unit
(** Write one [<key>.jsonl] repro file per entry, creating [dir] if
    needed.  Existing files for the same keys are overwritten;
    unrelated files are left alone. *)

val load : dir:string -> (t, string) result
(** Read every [*.jsonl] in [dir] (sorted name order), keyed by file
    stem.  Fails with a message naming the first unparseable file. *)
