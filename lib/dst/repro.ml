module Fault = Resilix_vm.Fault

let esc = Resilix_obs.Event.json_escape

type t = {
  scenario : string;
  seed : int;
  bound : int;
  plan : Fault_plan.t;
  decisions : int array;
  violations : Invariant.violation list;
}

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let fault_line (e : Fault_plan.entry) =
  match e.action with
  | Fault_plan.Kill ->
      Printf.sprintf {|{"type":"fault","at":%d,"target":"%s","action":"kill"}|} e.at
        (esc e.target)
  | Fault_plan.Inject fi ->
      Printf.sprintf {|{"type":"fault","at":%d,"target":"%s","action":"inject","fault":%d}|}
        e.at (esc e.target) fi

let to_lines r =
  let header =
    Printf.sprintf {|{"type":"dst-repro","version":1,"scenario":"%s","seed":%d,"bound":%d}|}
      (esc r.scenario) r.seed r.bound
  in
  let decisions =
    Printf.sprintf {|{"type":"decisions","values":[%s]}|}
      (String.concat "," (List.map string_of_int (Array.to_list r.decisions)))
  in
  let violations =
    List.map
      (fun v ->
        Printf.sprintf {|{"type":"violation","invariant":"%s","detail":"%s"}|}
          (esc v.Invariant.v_invariant) (esc v.Invariant.v_detail))
      r.violations
  in
  (header :: List.map fault_line r.plan) @ (decisions :: violations)

let save r path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) (to_lines r))

(* ------------------------------------------------------------------ *)
(* A small parser for the flat JSON objects above                      *)
(* ------------------------------------------------------------------ *)

type jv = J_str of string | J_int of int | J_ints of int list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* Parse one serialized line: a single-level object whose values are
   strings, integers, or integer arrays — all this format ever emits. *)
let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let next () =
    match peek () with
    | Some c ->
        incr pos;
        c
    | None -> bad "unexpected end of line"
  in
  let expect c =
    let g = next () in
    if g <> c then bad "expected '%c', got '%c'" c g
  in
  let skip_ws () =
    while (match peek () with Some (' ' | '\t') -> true | _ -> false) do
      incr pos
    done
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let hex4 () =
      let hex = String.init 4 (fun _ -> next ()) in
      match int_of_string_opt ("0x" ^ hex) with
      | Some v -> v
      | None -> bad "bad \\u escape \"\\u%s\"" hex
    in
    (* Decode one \uXXXX escape faithfully: code points are UTF-8
       encoded into the buffer (the old [land 0xff] silently corrupted
       anything above 0xFF), and surrogate pairs combine into their
       supplementary code point.  [json_escape] itself only emits
       \u00XX for control bytes, but repro files are hand-editable and
       a parser that cannot reverse what standard JSON writers emit
       would break the save -> load round trip. *)
    let unicode_escape () =
      let code = hex4 () in
      if code >= 0xD800 && code <= 0xDBFF then begin
        if next () <> '\\' || next () <> 'u' then
          bad "high surrogate \\u%04x without a low surrogate" code;
        let low = hex4 () in
        if low < 0xDC00 || low > 0xDFFF then
          bad "high surrogate \\u%04x followed by \\u%04x" code low;
        0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00))
      end
      else if code >= 0xDC00 && code <= 0xDFFF then bad "lone low surrogate \\u%04x" code
      else code
    in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' -> Buffer.add_utf_8_uchar buf (Uchar.of_int (unicode_escape ()))
          | c -> bad "bad escape '\\%c'" c);
          go ())
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then bad "expected integer";
    int_of_string (String.sub line start (!pos - start))
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          J_ints []
        end
        else begin
          let items = ref [ parse_int () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            skip_ws ();
            items := parse_int () :: !items;
            skip_ws ()
          done;
          expect ']';
          J_ints (List.rev !items)
        end
    | _ -> J_int (parse_int ())
  in
  skip_ws ();
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      skip_ws ();
      expect ':';
      let v = parse_value () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match next () with
      | ',' -> members ()
      | '}' -> ()
      | c -> bad "expected ',' or '}', got '%c'" c
    in
    members ()
  end;
  List.rev !fields

let str fields key =
  match List.assoc_opt key fields with
  | Some (J_str s) -> s
  | _ -> bad "missing string field %S" key

let int fields key =
  match List.assoc_opt key fields with
  | Some (J_int i) -> i
  | _ -> bad "missing integer field %S" key

let of_lines lines =
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  try
    match List.map parse_line lines with
    | [] -> Error "empty repro file"
    | header :: rest ->
        if List.assoc_opt "type" header <> Some (J_str "dst-repro") then
          bad "not a dst-repro file";
        (match List.assoc_opt "version" header with
        | Some (J_int 1) -> ()
        | _ -> bad "unsupported repro version");
        let scenario = str header "scenario" in
        let seed = int header "seed" in
        let bound = int header "bound" in
        let plan = ref [] and decisions = ref [||] and violations = ref [] in
        List.iter
          (fun fields ->
            match str fields "type" with
            | "fault" ->
                let at = int fields "at" in
                let target = str fields "target" in
                let action =
                  match str fields "action" with
                  | "kill" -> Fault_plan.Kill
                  | "inject" ->
                      let fi = int fields "fault" in
                      if fi < 0 || fi >= Array.length Fault.all then
                        bad "fault index %d out of range" fi;
                      Fault_plan.Inject fi
                  | a -> bad "unknown fault action %S" a
                in
                plan := { Fault_plan.at; target; action } :: !plan
            | "decisions" -> (
                match List.assoc_opt "values" fields with
                | Some (J_ints vs) -> decisions := Array.of_list vs
                | _ -> bad "decisions line without values")
            | "violation" ->
                violations :=
                  {
                    Invariant.v_invariant = str fields "invariant";
                    v_detail = str fields "detail";
                  }
                  :: !violations
            | ty -> bad "unknown line type %S" ty)
          rest;
        Ok
          {
            scenario;
            seed;
            bound;
            plan = List.rev !plan;
            decisions = !decisions;
            violations = List.rev !violations;
          }
  with
  | Bad m -> Error m
  | Failure m -> Error m

let load path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  of_lines lines
