(** Fault plans: the scheduled failure workload of one exploration run.

    A plan is a time-sorted list of fault actions against named
    services — SIGKILLs (the paper's Sec. 7.1 crash script, made
    explicit and replayable) and binary-mutation fault injections
    (Sec. 7.2, by fault-type index into {!Resilix_vm.Fault.all}).
    Plans are pure data: they serialize into the JSONL repro file and
    are the first thing the shrinker minimizes. *)

type action =
  | Kill  (** SIGKILL the target's current process *)
  | Inject of int  (** one mutation of the given {!Resilix_vm.Fault.all} index *)

type entry = {
  at : int;  (** virtual time, us *)
  target : string;  (** stable service name, e.g. ["eth.rtl8139"] *)
  action : action;
}

type t = entry list
(** Sorted by [at], ascending. *)

val generate :
  seed:int ->
  targets:string list ->
  n:int ->
  ?start:int ->
  ?horizon:int ->
  ?inject_prob:float ->
  unit ->
  t
(** [generate ~seed ~targets ~n ()] draws [n] entries with times
    uniform in [\[start, horizon)] (defaults 400 ms and 2 s), targets
    picked uniformly, and each action an injection with probability
    [inject_prob] (default 0 = all kills).  A pure function of its
    arguments — the exploration layer calls it with per-run derived
    seeds. *)

val action_to_string : action -> string
val entry_to_string : entry -> string

val pp_compact : t -> string
(** One-line ["; "]-joined rendering for reports. *)
