(** The properties every exploration run is judged against.

    Four invariants, all drawn from the paper's recovery story:

    - {b span-completeness} — every applied kill is followed by a
      recovery span that closes within [bound] microseconds (the
      reincarnation server always finishes what it starts);
    - {b data-integrity} — data moved by the workload matches its
      generator digest (failure transparency: crashes never corrupt
      payloads);
    - {b endpoint-consistency} — after the run settles, the DS naming
      table maps every target service to exactly the kernel's live
      endpoint (the pub/sub rebind protocol converges);
    - {b no-deadlock} — the workload made progress (no lost-wakeup /
      stuck-IPC schedule exists);
    - {b breaker-bound} — a breaker-guarded component never flaps more
      than its breaker allows (at most [threshold] failures per closed
      episode, one more per half-open probe);
    - {b degraded-probe} — a degraded component is eventually probed: a
      breaker never sits open past its cooldown (plus scheduling
      slack) without a half-open probe attempt.

    Details are deterministic strings of virtual-time values, so equal
    runs produce byte-equal violations. *)

type violation = { v_invariant : string; v_detail : string }

val check : bound:int -> Scenario.report -> violation list
(** All violations of a run's report, in fixed invariant order. *)

val names : violation list -> string list
(** Sorted, deduplicated invariant names — the identity of a failure. *)

val same_failure : violation list -> violation list -> bool
(** Whether two runs failed the same way ({!names} agree) — the
    predicate shrinking preserves. *)

val pp_violation : violation -> string
