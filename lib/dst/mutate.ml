module Rng = Resilix_sim.Rng
module Fault = Resilix_vm.Fault

(* Every mutator draws only from the Rng.t it is handed, so a mutation
   is a pure function of (rng state, input) — the guided explorer
   derives that state from the master seed and the run index, never
   from wall-clock or pool ordering. *)

let default_start = 100_000
let default_horizon = 2_000_000

let sort_plan (p : Fault_plan.t) =
  List.stable_sort (fun (a : Fault_plan.entry) b -> compare a.at b.at) p

let fresh_entry rng ~targets : Fault_plan.entry =
  {
    Fault_plan.at = Rng.int_in rng ~min:default_start ~max:default_horizon;
    target = Rng.pick rng targets;
    action =
      (if Rng.bool rng 0.3 then Fault_plan.Inject (Rng.int rng (Array.length Fault.all))
       else Fault_plan.Kill);
  }

(* Jitter a time by up to ~20% of the default horizon, clamped to stay
   non-negative. *)
let jitter rng at =
  let delta = Rng.int_in rng ~min:(-400_000) ~max:400_000 in
  max 0 (at + delta)

let mutate_entry rng ~targets (e : Fault_plan.entry) : Fault_plan.entry =
  match Rng.int rng 3 with
  | 0 -> { e with at = jitter rng e.at }
  | 1 -> { e with target = Rng.pick rng targets }
  | _ -> (
      match e.action with
      | Fault_plan.Kill ->
          { e with action = Fault_plan.Inject (Rng.int rng (Array.length Fault.all)) }
      | Fault_plan.Inject _ -> { e with action = Fault_plan.Kill })

let plan rng ~targets (p : Fault_plan.t) : Fault_plan.t =
  if Array.length targets = 0 then p
  else if p = [] then [ fresh_entry rng ~targets ]
  else
    let arr = Array.of_list p in
    let n = Array.length arr in
    let out =
      match Rng.int rng 4 with
      | 0 when n > 1 ->
          (* drop one entry *)
          let victim = Rng.int rng n in
          List.filteri (fun i _ -> i <> victim) p
      | 1 ->
          (* duplicate one entry at a jittered time *)
          let src = arr.(Rng.int rng n) in
          { src with at = jitter rng src.at } :: p
      | 2 ->
          (* point-mutate one entry *)
          let victim = Rng.int rng n in
          List.mapi (fun i e -> if i = victim then mutate_entry rng ~targets e else e) p
      | _ ->
          (* shift the whole plan in time *)
          let delta = Rng.int_in rng ~min:(-300_000) ~max:300_000 in
          List.map (fun (e : Fault_plan.entry) -> { e with at = max 0 (e.at + delta) }) p
    in
    sort_plan out

let splice rng (a : Fault_plan.t) (b : Fault_plan.t) : Fault_plan.t =
  match (a, b) with
  | [], p | p, [] -> p
  | _ ->
      let take n l = List.filteri (fun i _ -> i < n) l in
      let drop n l = List.filteri (fun i _ -> i >= n) l in
      let cut_a = Rng.int rng (List.length a + 1) in
      let cut_b = Rng.int rng (List.length b + 1) in
      sort_plan (take cut_a a @ drop cut_b b)

let decisions rng (d : int array) : int array =
  if Array.length d = 0 then [| 1 + Rng.int rng 3 |]
  else
    match Rng.int rng 3 with
    | 0 ->
        (* flip one recorded tie-break *)
        let out = Array.copy d in
        out.(Rng.int rng (Array.length d)) <- Rng.int rng 4;
        out
    | 1 ->
        (* insert a tie-break, shifting the suffix *)
        let at = Rng.int rng (Array.length d + 1) in
        let v = Rng.int rng 4 in
        Array.init
          (Array.length d + 1)
          (fun i -> if i < at then d.(i) else if i = at then v else d.(i - 1))
    | _ ->
        (* truncate: the engine falls back to FIFO past the end *)
        Array.sub d 0 (Rng.int rng (Array.length d))
