module Span = Resilix_obs.Span

type violation = { v_invariant : string; v_detail : string }

let pp_violation v = Printf.sprintf "%s: %s" v.v_invariant v.v_detail

let names vs = List.sort_uniq compare (List.map (fun v -> v.v_invariant) vs)

let same_failure a b = names a = names b

let check ~bound (r : Scenario.report) =
  let vs = ref [] in
  let add inv detail = vs := { v_invariant = inv; v_detail = detail } :: !vs in
  let open_spans = List.length (Span.open_spans r.Scenario.r_spans) in
  let late = List.length (Span.incomplete ~within:bound r.Scenario.r_spans) in
  if late > 0 then
    add "span-completeness"
      (Printf.sprintf "%d recovery span(s) open or wider than %dus at t=%dus (%d never closed)"
         late bound r.Scenario.r_end_time open_spans)
  else if r.Scenario.r_recoveries < r.Scenario.r_expected_spans then
    add "span-completeness"
      (Printf.sprintf "%d kill(s) applied but only %d recovery span(s) closed"
         r.Scenario.r_expected_spans r.Scenario.r_recoveries);
  if not r.Scenario.r_checksum_ok then
    add "data-integrity" "workload data did not match its generator digest";
  if not r.Scenario.r_endpoints_ok then
    add "endpoint-consistency" "DS naming table disagrees with the kernel process table";
  if not r.Scenario.r_completed then
    add "no-deadlock"
      (Printf.sprintf "workload made no progress by t=%dus" r.Scenario.r_end_time);
  List.rev !vs
