module Span = Resilix_obs.Span

type violation = { v_invariant : string; v_detail : string }

let pp_violation v = Printf.sprintf "%s: %s" v.v_invariant v.v_detail

let names vs = List.sort_uniq compare (List.map (fun v -> v.v_invariant) vs)

let same_failure a b = names a = names b

let check ~bound (r : Scenario.report) =
  let vs = ref [] in
  let add inv detail = vs := { v_invariant = inv; v_detail = detail } :: !vs in
  let open_spans = List.length (Span.open_spans r.Scenario.r_spans) in
  let late = List.length (Span.incomplete ~within:bound r.Scenario.r_spans) in
  if late > 0 then
    add "span-completeness"
      (Printf.sprintf "%d recovery span(s) open or wider than %dus at t=%dus (%d never closed)"
         late bound r.Scenario.r_end_time open_spans)
  else if r.Scenario.r_recoveries < r.Scenario.r_expected_spans then
    add "span-completeness"
      (Printf.sprintf "%d kill(s) applied but only %d recovery span(s) closed"
         r.Scenario.r_expected_spans r.Scenario.r_recoveries);
  if not r.Scenario.r_checksum_ok then
    add "data-integrity" "workload data did not match its generator digest";
  if not r.Scenario.r_endpoints_ok then
    add "endpoint-consistency" "DS naming table disagrees with the kernel process table";
  if not r.Scenario.r_completed then
    add "no-deadlock"
      (Printf.sprintf "workload made no progress by t=%dus" r.Scenario.r_end_time);
  List.iter
    (fun (b : Scenario.breaker_row) ->
      (* Each closed episode allows at most [threshold] failures before
         tripping, there are at most [probes + 1] closed episodes, and
         each probe can contribute one more failure. *)
      let allowed = (b.Scenario.b_threshold * (b.Scenario.b_probes + 1)) + b.Scenario.b_probes in
      if b.Scenario.b_failures > allowed then
        add "breaker-bound"
          (Printf.sprintf "%s failed %d time(s); its breaker bounds churn at %d (%d trip(s), %d probe(s))"
             b.Scenario.b_component b.Scenario.b_failures allowed b.Scenario.b_trips
             b.Scenario.b_probes);
      if b.Scenario.b_overdue then
        add "degraded-probe"
          (Printf.sprintf "%s breaker open past its cooldown with no half-open probe at t=%dus"
             b.Scenario.b_component r.Scenario.r_end_time))
    r.Scenario.r_breakers;
  List.rev !vs
