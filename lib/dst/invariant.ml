module Span = Resilix_obs.Span

type violation = { v_invariant : string; v_detail : string }

let pp_violation v = Printf.sprintf "%s: %s" v.v_invariant v.v_detail

let names vs = List.sort_uniq compare (List.map (fun v -> v.v_invariant) vs)

let same_failure a b = names a = names b

let check ~bound (r : Scenario.report) =
  let vs = ref [] in
  let add inv detail = vs := { v_invariant = inv; v_detail = detail } :: !vs in
  let open_spans = List.length (Span.open_spans r.Scenario.r_spans) in
  let late = List.length (Span.incomplete ~within:bound r.Scenario.r_spans) in
  if late > 0 then
    add "span-completeness"
      (Printf.sprintf "%d recovery span(s) open or wider than %dus at t=%dus (%d never closed)"
         late bound r.Scenario.r_end_time open_spans)
  else if r.Scenario.r_recoveries < r.Scenario.r_expected_spans then
    add "span-completeness"
      (Printf.sprintf "%d kill(s) applied but only %d recovery span(s) closed"
         r.Scenario.r_expected_spans r.Scenario.r_recoveries);
  if not r.Scenario.r_checksum_ok then
    add "data-integrity" "workload data did not match its generator digest";
  if not r.Scenario.r_endpoints_ok then
    add "endpoint-consistency" "DS naming table disagrees with the kernel process table";
  if not r.Scenario.r_completed then
    add "no-deadlock"
      (Printf.sprintf "workload made no progress by t=%dus" r.Scenario.r_end_time);
  (match r.Scenario.r_storm with
  | None -> ()
  | Some s ->
      (* Every issued request must resolve — completed, mismatched,
         timed out, or failed after retries.  A request that simply
         vanishes is a lost-reply bug in the accept/serve path. *)
      let resolved =
        s.Scenario.s_completed + s.Scenario.s_mismatches + s.Scenario.s_timeouts
        + s.Scenario.s_failed
      in
      if resolved <> s.Scenario.s_requests then
        add "storm-accounting"
          (Printf.sprintf
             "%d request(s) issued but only %d resolved (%d ok, %d mismatch, %d timeout, %d failed)"
             s.Scenario.s_requests resolved s.Scenario.s_completed s.Scenario.s_mismatches
             s.Scenario.s_timeouts s.Scenario.s_failed);
      (* Goodput may dip to zero while the driver is down, but it must
         resume within the recovery bound (plus client retry-backoff
         slack) of the kill.  Quiet stretches elsewhere in the timeline
         are sparse laggards (slow clients dribbling bytes), not
         flatlines — only the gap anchored at the outage is judged. *)
      if s.Scenario.s_outage_at > 0 then begin
        let bins = s.Scenario.s_goodput in
        let ob = s.Scenario.s_outage_at / s.Scenario.s_bin_us in
        let resume = ref None in
        for j = Array.length bins - 1 downto ob + 1 do
          if bins.(j) > 0 then resume := Some j
        done;
        let allowed = bound + 2_000_000 in
        match !resume with
        | Some j ->
            let gap_us = (j * s.Scenario.s_bin_us) - s.Scenario.s_outage_at in
            if gap_us > allowed then
              add "goodput-flatline"
                (Printf.sprintf
                   "goodput flat for %dus after the kill at t=%dus (allowed %dus: recovery \
                    bound %dus + retry slack)"
                   gap_us s.Scenario.s_outage_at allowed bound)
        | None ->
            (* No bytes ever landed after the kill: fine when the storm
               had already drained, a flatline when work remained. *)
            if
              s.Scenario.s_completed < s.Scenario.s_requests
              && r.Scenario.r_end_time - s.Scenario.s_outage_at > allowed
            then
              add "goodput-flatline"
                (Printf.sprintf
                   "no goodput after the kill at t=%dus with %d request(s) unserved"
                   s.Scenario.s_outage_at
                   (s.Scenario.s_requests - s.Scenario.s_completed))
      end);
  List.iter
    (fun (b : Scenario.breaker_row) ->
      (* Each closed episode allows at most [threshold] failures before
         tripping, there are at most [probes + 1] closed episodes, and
         each probe can contribute one more failure. *)
      let allowed = (b.Scenario.b_threshold * (b.Scenario.b_probes + 1)) + b.Scenario.b_probes in
      if b.Scenario.b_failures > allowed then
        add "breaker-bound"
          (Printf.sprintf "%s failed %d time(s); its breaker bounds churn at %d (%d trip(s), %d probe(s))"
             b.Scenario.b_component b.Scenario.b_failures allowed b.Scenario.b_trips
             b.Scenario.b_probes);
      if b.Scenario.b_overdue then
        add "degraded-probe"
          (Printf.sprintf "%s breaker open past its cooldown with no half-open probe at t=%dus"
             b.Scenario.b_component r.Scenario.r_end_time))
    r.Scenario.r_breakers;
  List.rev !vs
