(** Exploration scenarios: boot + workload + fault plan, in a box.

    A scenario is the unit the explorer permutes: it boots a fresh
    machine under a given engine tie-break {!Resilix_sim.Engine.policy},
    runs a workload while a {!Fault_plan.t} fires against it, and
    distills the run into a {!report} that the invariant checker can
    judge without re-inspecting the machine.

    The record is public on purpose: tests and examples build custom
    scenarios (e.g. with an artificially tight bound or a broken
    workload) to force violations deterministically. *)

type report = {
  r_completed : bool;  (** the workload made progress / finished *)
  r_checksum_ok : bool;  (** transferred data matched its digest *)
  r_endpoints_ok : bool;
      (** DS naming table agrees with the kernel's live process table
          for every target service *)
  r_applied : int;  (** plan entries that actually hit a live process *)
  r_expected_spans : int;
      (** applied kills — each must produce a closed recovery span *)
  r_recoveries : int;  (** closed recovery spans observed *)
  r_spans : Resilix_obs.Span.t;  (** the machine's span collector *)
  r_end_time : int;  (** virtual clock at probe time, us *)
  r_decisions : int array;  (** the engine's recorded tie-break trace *)
}

type t = {
  name : string;  (** stable id used in repro files ([find name]) *)
  targets : string list;  (** services the plan generator aims at *)
  default_faults : int;  (** plan length when the caller has no opinion *)
  plan : seed:int -> faults:int -> Fault_plan.t;
      (** pure plan generator; the explorer calls it with per-run
          derived seeds *)
  run : seed:int -> policy:Resilix_sim.Engine.policy -> plan:Fault_plan.t -> report;
      (** boot a fresh machine with [engine_policy = policy], execute
          the workload under [plan], and report.  Must be hermetic: a
          pure function of its three arguments. *)
}

val apply_plan : Resilix_system.System.t -> Fault_plan.t -> int ref * int ref
(** Schedule every plan entry on the machine's engine.  Returns the
    [(applied, expected_spans)] counters, live until the engine has
    run past the last entry. *)

val endpoints_consistent : Resilix_system.System.t -> string list -> bool
(** The DST endpoint-consistency probe: for each named service, the
    kernel has a live process {e and} DS publishes exactly its
    endpoint. *)

val wget_kills : t
(** ["wget"]: a 1 MB HTTP transfer over the RTL8139 while the plan
    SIGKILLs the driver (the paper's Sec. 7.1 workload, explorable). *)

val dp_inject : t
(** ["dp-inject"]: receive-side UDP traffic through the DP8390 while
    the plan injects binary faults (Sec. 7.2, explorable). *)

val builtins : t list

val find : string -> t option
(** Resolve a scenario by [name] — how replay maps a repro file back
    to executable code. *)
