(** Exploration scenarios: boot + workload + fault plan, in a box.

    A scenario is the unit the explorer permutes: it boots a fresh
    machine under a given engine tie-break {!Resilix_sim.Engine.policy},
    runs a workload while a {!Fault_plan.t} fires against it, and
    distills the run into a {!report} that the invariant checker can
    judge without re-inspecting the machine.

    The record is public on purpose: tests and examples build custom
    scenarios (e.g. with an artificially tight bound or a broken
    workload) to force violations deterministically. *)

type breaker_row = {
  b_component : string;  (** the guarded service's stable name *)
  b_state : string;  (** ["closed"] / ["open"] / ["half-open"] *)
  b_trips : int;  (** transitions into [open] *)
  b_probes : int;  (** half-open probe restarts attempted *)
  b_threshold : int;  (** the breaker's trip threshold *)
  b_failures : int;  (** recovery events recorded for the component *)
  b_overdue : bool;
      (** the breaker has been open for longer than its cooldown plus
          slack without a probe — the probe machinery is stuck *)
}
(** One circuit breaker's end-of-run snapshot, judged by the
    [breaker-bound] and [degraded-probe] invariants. *)

type storm_stats = {
  s_requests : int;  (** requests the load generator was asked to issue *)
  s_completed : int;  (** responses received whole, digest verified *)
  s_refused : int;  (** connection attempts RST before established (backlog overflow / degraded) *)
  s_resets : int;  (** connections reset after established *)
  s_timeouts : int;  (** requests aborted at the client deadline *)
  s_mismatches : int;  (** responses with wrong bytes (must be 0) *)
  s_failed : int;  (** requests that exhausted their retry budget *)
  s_retries : int;  (** re-connect attempts beyond the first per request *)
  s_degraded_rejects : int;  (** INET fast-fail rejections while the driver was parked *)
  s_accept_refused : int;  (** SYNs refused because the listener backlog was full *)
  s_served : int;  (** responses the httpd workers streamed to completion *)
  s_bytes_in : int;  (** response bytes the clients received *)
  s_p50 : int;  (** request-latency quantiles, us (issue to verified) *)
  s_p95 : int;
  s_p99 : int;
  s_goodput : int array;  (** client bytes received per [s_bin_us] bin of virtual time *)
  s_bin_us : int;
  s_outage_at : int;  (** virtual time of the first planned kill (0 = none) *)
  s_recovered_by : int;  (** close time of the last recovery span (0 = none) *)
}
(** End-of-run summary of a storm workload, judged by the
    [storm-accounting] and [goodput-flatline] invariants and rendered
    by [resilix storm]. *)

type report = {
  r_completed : bool;  (** the workload made progress / finished *)
  r_checksum_ok : bool;  (** transferred data matched its digest *)
  r_endpoints_ok : bool;
      (** DS naming table agrees with the kernel's live process table
          for every target service (a degraded service counts as
          consistent exactly when DS publishes no endpoint for it) *)
  r_applied : int;  (** plan entries that actually hit a live process *)
  r_expected_spans : int;
      (** applied kills — each must produce a closed recovery span *)
  r_recoveries : int;  (** closed recovery spans observed *)
  r_spans : Resilix_obs.Span.t;  (** the machine's span collector *)
  r_end_time : int;  (** virtual clock at probe time, us *)
  r_decisions : int array;  (** the engine's recorded tie-break trace *)
  r_degraded : string list;
      (** components published as degraded in DS at probe time *)
  r_breakers : breaker_row list;  (** per-breaker snapshots *)
  r_shape : int64;
      (** the run's coverage fingerprint: FNV-1a over the recovery-span
          shape ({!Resilix_obs.Span.shape_fingerprint}), the trace's
          recovery-event order ({!Resilix_obs.Event.shape_add}) and the
          end-state degraded/breaker sets — identity fields only, no
          timestamps.  Together with the violated-invariant set this is
          the run's coverage {e signature} (see [Corpus]). *)
  r_storm : storm_stats option;  (** present only for storm scenarios *)
}

type t = {
  name : string;  (** stable id used in repro files ([find name]) *)
  targets : string list;  (** services the plan generator aims at *)
  default_faults : int;  (** plan length when the caller has no opinion *)
  plan : seed:int -> faults:int -> Fault_plan.t;
      (** pure plan generator; the explorer calls it with per-run
          derived seeds *)
  run : seed:int -> policy:Resilix_sim.Engine.policy -> plan:Fault_plan.t -> report;
      (** boot a fresh machine with [engine_policy = policy], execute
          the workload under [plan], and report.  Must be hermetic: a
          pure function of its three arguments. *)
}

val make :
  name:string ->
  ?targets:string list ->
  ?default_faults:int ->
  ?plan:(seed:int -> faults:int -> Fault_plan.t) ->
  run:(seed:int -> policy:Resilix_sim.Engine.policy -> plan:Fault_plan.t -> report) ->
  unit ->
  t
(** Smart constructor: [targets] defaults to none, [default_faults] to
    0 and [plan] to the empty plan, so workload-only scenarios (and
    test scenarios) don't have to spell out every field. *)

val apply_plan : Resilix_system.System.t -> Fault_plan.t -> int ref * int ref
(** Schedule every plan entry on the machine's engine.  Returns the
    [(applied, expected_spans)] counters, live until the engine has
    run past the last entry. *)

val endpoints_consistent : Resilix_system.System.t -> string list -> bool
(** The DST endpoint-consistency probe: for each named service, the
    kernel has a live process {e and} DS publishes exactly its
    endpoint. *)

val wget_kills : t
(** ["wget"]: a 1 MB HTTP transfer over the RTL8139 while the plan
    SIGKILLs the driver (the paper's Sec. 7.1 workload, explorable). *)

val wget_sized : ?name:string -> size:int -> unit -> t
(** {!wget_kills} with a custom transfer size (and name, default
    ["wget-<size>k"]) — smaller transfers make cheap per-run smoke
    batches for guided exploration.  Not a builtin: replays of repro
    files produced from it must pass the scenario explicitly. *)

val dp_inject : t
(** ["dp-inject"]: receive-side UDP traffic through the DP8390 while
    the plan injects binary faults (Sec. 7.2, explorable). *)

val flaky : t
(** ["flaky"]: the audio driver is replaced by a program that panics
    forever while an application keeps issuing [/dev/audio] writes.
    Under the ["breaker"] policy the component must end parked (open
    breaker, [`Degraded], published in ["degraded.*"]) and the
    application must keep receiving prompt, clean errors — never a
    hang, never unbounded restart churn. *)

val storm : t
(** ["storm"]: the C10K workload at exploration scale — 64 requests at
    concurrency 32 against an 8-worker {!Resilix_apps.Httpd} pool
    (listener backlog 16) while the plan SIGKILLs the RTL8139
    mid-storm.  The report carries {!storm_stats}; the small scale
    keeps per-run cost low enough for [resilix explore] to fuzz. *)

val storm_sized :
  ?name:string -> requests:int -> concurrency:int -> workers:int -> backlog:int -> unit -> t
(** {!storm} at a chosen scale (name default ["storm-<requests>"]) —
    the CLI runs 500-request storms through this.  Not a builtin:
    replays of repro files produced from it must pass the scenario
    explicitly. *)

val storm_lines : report -> string list
(** Human-readable storm summary (latency quantiles, error counts,
    goodput timeline).  Virtual-time only: byte-identical across
    hosts, [--jobs] values and repeats. *)

val builtins : t list

val find : string -> t option
(** Resolve a scenario by [name] — how replay maps a repro file back
    to executable code. *)
