(** Exploration scenarios: boot + workload + fault plan, in a box.

    A scenario is the unit the explorer permutes: it boots a fresh
    machine under a given engine tie-break {!Resilix_sim.Engine.policy},
    runs a workload while a {!Fault_plan.t} fires against it, and
    distills the run into a {!report} that the invariant checker can
    judge without re-inspecting the machine.

    The record is public on purpose: tests and examples build custom
    scenarios (e.g. with an artificially tight bound or a broken
    workload) to force violations deterministically. *)

type breaker_row = {
  b_component : string;  (** the guarded service's stable name *)
  b_state : string;  (** ["closed"] / ["open"] / ["half-open"] *)
  b_trips : int;  (** transitions into [open] *)
  b_probes : int;  (** half-open probe restarts attempted *)
  b_threshold : int;  (** the breaker's trip threshold *)
  b_failures : int;  (** recovery events recorded for the component *)
  b_overdue : bool;
      (** the breaker has been open for longer than its cooldown plus
          slack without a probe — the probe machinery is stuck *)
}
(** One circuit breaker's end-of-run snapshot, judged by the
    [breaker-bound] and [degraded-probe] invariants. *)

type report = {
  r_completed : bool;  (** the workload made progress / finished *)
  r_checksum_ok : bool;  (** transferred data matched its digest *)
  r_endpoints_ok : bool;
      (** DS naming table agrees with the kernel's live process table
          for every target service (a degraded service counts as
          consistent exactly when DS publishes no endpoint for it) *)
  r_applied : int;  (** plan entries that actually hit a live process *)
  r_expected_spans : int;
      (** applied kills — each must produce a closed recovery span *)
  r_recoveries : int;  (** closed recovery spans observed *)
  r_spans : Resilix_obs.Span.t;  (** the machine's span collector *)
  r_end_time : int;  (** virtual clock at probe time, us *)
  r_decisions : int array;  (** the engine's recorded tie-break trace *)
  r_degraded : string list;
      (** components published as degraded in DS at probe time *)
  r_breakers : breaker_row list;  (** per-breaker snapshots *)
  r_shape : int64;
      (** the run's coverage fingerprint: FNV-1a over the recovery-span
          shape ({!Resilix_obs.Span.shape_fingerprint}), the trace's
          recovery-event order ({!Resilix_obs.Event.shape_add}) and the
          end-state degraded/breaker sets — identity fields only, no
          timestamps.  Together with the violated-invariant set this is
          the run's coverage {e signature} (see [Corpus]). *)
}

type t = {
  name : string;  (** stable id used in repro files ([find name]) *)
  targets : string list;  (** services the plan generator aims at *)
  default_faults : int;  (** plan length when the caller has no opinion *)
  plan : seed:int -> faults:int -> Fault_plan.t;
      (** pure plan generator; the explorer calls it with per-run
          derived seeds *)
  run : seed:int -> policy:Resilix_sim.Engine.policy -> plan:Fault_plan.t -> report;
      (** boot a fresh machine with [engine_policy = policy], execute
          the workload under [plan], and report.  Must be hermetic: a
          pure function of its three arguments. *)
}

val make :
  name:string ->
  ?targets:string list ->
  ?default_faults:int ->
  ?plan:(seed:int -> faults:int -> Fault_plan.t) ->
  run:(seed:int -> policy:Resilix_sim.Engine.policy -> plan:Fault_plan.t -> report) ->
  unit ->
  t
(** Smart constructor: [targets] defaults to none, [default_faults] to
    0 and [plan] to the empty plan, so workload-only scenarios (and
    test scenarios) don't have to spell out every field. *)

val apply_plan : Resilix_system.System.t -> Fault_plan.t -> int ref * int ref
(** Schedule every plan entry on the machine's engine.  Returns the
    [(applied, expected_spans)] counters, live until the engine has
    run past the last entry. *)

val endpoints_consistent : Resilix_system.System.t -> string list -> bool
(** The DST endpoint-consistency probe: for each named service, the
    kernel has a live process {e and} DS publishes exactly its
    endpoint. *)

val wget_kills : t
(** ["wget"]: a 1 MB HTTP transfer over the RTL8139 while the plan
    SIGKILLs the driver (the paper's Sec. 7.1 workload, explorable). *)

val wget_sized : ?name:string -> size:int -> unit -> t
(** {!wget_kills} with a custom transfer size (and name, default
    ["wget-<size>k"]) — smaller transfers make cheap per-run smoke
    batches for guided exploration.  Not a builtin: replays of repro
    files produced from it must pass the scenario explicitly. *)

val dp_inject : t
(** ["dp-inject"]: receive-side UDP traffic through the DP8390 while
    the plan injects binary faults (Sec. 7.2, explorable). *)

val flaky : t
(** ["flaky"]: the audio driver is replaced by a program that panics
    forever while an application keeps issuing [/dev/audio] writes.
    Under the ["breaker"] policy the component must end parked (open
    breaker, [`Degraded], published in ["degraded.*"]) and the
    application must keep receiving prompt, clean errors — never a
    hang, never unbounded restart churn. *)

val builtins : t list

val find : string -> t option
(** Resolve a scenario by [name] — how replay maps a repro file back
    to executable code. *)
