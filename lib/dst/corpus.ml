module Fnv = Resilix_checksum.Fnv

(* A coverage signature is the identity of a run for exploration
   purposes: the set of invariants it violated (possibly empty) plus
   the shape fingerprint of how it got there (Scenario.report.r_shape).
   Two runs with the same signature taught us nothing new about each
   other; a run with a fresh signature is kept as corpus material for
   mutation. *)
type signature = { s_invariants : string list; s_shape : int64 }

let signature_of ~violations ~shape =
  { s_invariants = Invariant.names violations; s_shape = shape }

let fp h s = Fnv.update_string (Fnv.update_string h s) "\x1f"

(* 16-hex-digit key: stable, filesystem-safe, and the corpus' dedup
   and on-disk identity.  Hashing (invariants, shape) together keeps
   one flat keyspace. *)
let key s =
  let h = List.fold_left fp Fnv.start s.s_invariants in
  Fnv.to_hex (fp h (Printf.sprintf "%016Lx" s.s_shape))

type entry = { c_key : string; c_repro : Repro.t }

type t = { mutable entries : entry list (* newest first *); keys : (string, unit) Hashtbl.t }

let create () = { entries = []; keys = Hashtbl.create 64 }

let size t = List.length t.entries

let mem t k = Hashtbl.mem t.keys k

let add t ~key:k repro =
  if Hashtbl.mem t.keys k then false
  else begin
    Hashtbl.add t.keys k ();
    t.entries <- { c_key = k; c_repro = repro } :: t.entries;
    true
  end

(* Sorted by key: the deterministic order every consumer (mutation
   parent choice, save, signature listings) iterates in — pool or
   insertion order never leaks into guided exploration output. *)
let entries t = List.sort (fun a b -> String.compare a.c_key b.c_key) t.entries

let keys t = List.sort String.compare (List.map (fun e -> e.c_key) t.entries)

(* ------------------------------------------------------------------ *)
(* Persistence: one Repro JSONL file per entry, named by its key       *)
(* ------------------------------------------------------------------ *)

let entry_file dir k = Filename.concat dir (k ^ ".jsonl")

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter (fun e -> Repro.save e.c_repro (entry_file dir e.c_key)) (entries t)

let load ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "corpus directory %s does not exist" dir)
  else begin
    let files = Array.to_list (Sys.readdir dir) in
    let files =
      List.sort String.compare (List.filter (fun f -> Filename.check_suffix f ".jsonl") files)
    in
    let t = create () in
    let rec go = function
      | [] -> Ok t
      | f :: rest -> (
          match Repro.load (Filename.concat dir f) with
          | Error m -> Error (Printf.sprintf "%s: %s" f m)
          | Ok repro ->
              ignore (add t ~key:(Filename.chop_suffix f ".jsonl") repro);
              go rest)
    in
    go files
  end
