module Rng = Resilix_sim.Rng
module Fault = Resilix_vm.Fault

type action = Kill | Inject of int

type entry = { at : int; target : string; action : action }

type t = entry list

let action_to_string = function
  | Kill -> "kill"
  | Inject i -> Printf.sprintf "inject:%s" (Fault.to_string Fault.all.(i))

let entry_to_string e = Printf.sprintf "%dus %s %s" e.at e.target (action_to_string e.action)

let pp_compact plan =
  String.concat "; " (List.map entry_to_string plan)

let generate ~seed ~targets ~n ?(start = 400_000) ?(horizon = 2_000_000) ?(inject_prob = 0.) () =
  if n < 0 then invalid_arg "Fault_plan.generate: negative n";
  if targets = [] then invalid_arg "Fault_plan.generate: no targets";
  if horizon <= start then invalid_arg "Fault_plan.generate: horizon must exceed start";
  let rng = Rng.create ~seed in
  let targets = Array.of_list targets in
  let entries =
    List.init n (fun _ ->
        let at = Rng.int_in rng ~min:start ~max:(horizon - 1) in
        let target = Rng.pick rng targets in
        let action =
          if Rng.bool rng inject_prob then Inject (Rng.int rng (Array.length Fault.all))
          else Kill
        in
        { at; target; action })
  in
  (* Stable sort by time: entries drawn earlier keep their relative
     order at equal instants, so the plan is a pure function of
     (seed, targets, n, window). *)
  List.stable_sort (fun a b -> compare a.at b.at) entries
