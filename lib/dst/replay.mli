(** Replay and shrinking of repro files.

    Replay re-executes a {!Repro.t} exactly: same scenario, same child
    seed, same fault plan, and the engine driven by the recorded
    decision trace as a [Scripted] tie-break policy.  Because a run is
    a pure function of those inputs, replay reproduces the original
    violation bit for bit.

    Shrinking then minimizes the repro greedily while preserving the
    {e failure identity} (the set of violated invariant names,
    {!Invariant.same_failure}):

    + drop fault-plan entries one at a time, keeping each removal that
      still fails the same way;
    + revert divergent tie-breaks (nonzero decisions) to FIFO one at a
      time, re-recording the trace after each accepted flip;
    + repeat both passes to a fixpoint.

    A candidate is adopted only when the lexicographic measure
    [(plan length, nonzero decisions, trace length)] strictly
    decreases, so shrinking terminates and the result is never larger
    than the input.  Trailing zeros are trimmed from traces — a
    [Scripted] policy that runs out of script falls back to FIFO,
    which is what a zero means. *)

type outcome = {
  violations : Invariant.violation list;  (** what the replay tripped *)
  decisions : int array;  (** the trace the replay itself recorded *)
  reproduced : bool;  (** replay failed the same way the file says *)
}

val run : ?scenario:Scenario.t -> Repro.t -> (outcome, string) result
(** Re-execute a repro.  [?scenario] overrides {!Scenario.find} —
    how tests replay custom scenarios that are not in the registry. *)

val shrink : ?scenario:Scenario.t -> Repro.t -> (Repro.t, string) result
(** Minimize a repro.  [Error] when the scenario is unknown or the
    repro does not reproduce its own violations. *)

val trim_trailing_zeros : int array -> int array
(** Exposed for tests. *)
