module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Privilege = Resilix_proto.Privilege
module Signal = Resilix_proto.Signal
module Spec = Resilix_proto.Spec
module Status = Resilix_proto.Status
module Wellknown = Resilix_proto.Wellknown
module Event = Resilix_obs.Event
module Metrics = Resilix_obs.Metrics
module Span = Resilix_obs.Span

(*@recovery-begin*)
type recovery_event = {
  component : string;
  defect : Status.defect;
  repetition : int;
  detected_at : int;
  mutable recovered_at : int option;
  mutable degraded : bool; (* the breaker absorbed this failure instead of restarting *)
}

(*@recovery-end*)
type service_status = Up | Restarting | Down | Degraded

(*@recovery-begin*)
(* After this much stable uptime the failure count resets, so an old
   crash does not inflate the backoff of an unrelated one much later. *)
let failure_count_decay = 60_000_000

(* Circuit breaker (policy v2).  The state machine lives here and not
   in the policy script: scripts are a fresh child process per failure
   and cannot carry state across invocations. *)
type breaker_state = B_closed | B_open | B_half_open

let breaker_state_name = function
  | B_closed -> "closed"
  | B_open -> "open"
  | B_half_open -> "half-open"

(* Gauge encoding: 0 closed / 1 open / 2 half-open. *)
let breaker_state_gauge = function B_closed -> 0 | B_open -> 1 | B_half_open -> 2

type breaker = {
  bk_config : Policy.breaker_config;
  mutable bk_state : breaker_state;
  mutable bk_window : int list; (* failure times inside the window, newest first *)
  mutable bk_trips : int; (* closed->open and half-open->open transitions *)
  mutable bk_probes : int; (* half-open probe restarts attempted *)
  mutable bk_opened_at : int; (* time of the most recent trip *)
  mutable bk_degraded_since : int; (* first trip of the current degraded episode *)
  mutable bk_probe_started_at : int; (* when the probe incarnation came up *)
  (* proactive health-probe machinery (between heartbeats) *)
  mutable bk_hp_outstanding : bool;
  mutable bk_hp_misses : int;
  mutable bk_hp_cycle : int; (* heartbeat cycle already probed (hb_last_request) *)
  (* state-gauge handle, resolved on first transition (the gauge name
     embeds the service name) and bumped directly thereafter *)
  mutable bk_gauge : Metrics.gauge option;
}

let fresh_breaker config =
  {
    bk_config = config;
    bk_state = B_closed;
    bk_window = [];
    bk_trips = 0;
    bk_probes = 0;
    bk_opened_at = 0;
    bk_degraded_since = 0;
    bk_probe_started_at = 0;
    bk_hp_outstanding = false;
    bk_hp_misses = 0;
    bk_hp_cycle = 0;
    bk_gauge = None;
  }

(*@recovery-end*)
type service = {
  spec : Spec.t;
  mutable endpoint : Endpoint.t option;
  mutable pid : int;
  mutable status : service_status;
  mutable failures : int;
  mutable last_failure_at : int;
(*@recovery-begin*)
  (* heartbeat machinery *)
  mutable hb_outstanding : bool;
  mutable hb_misses : int;
  mutable hb_last_request : int;
  (* defect-class override for kills RS initiated itself *)
  mutable pending_defect : Status.defect option;
(*@recovery-end*)
  (* dynamic update: binary to use on next restart *)
  mutable pending_program : string option;
  mutable term_deadline : int option;
  (* circuit breaker, when the service's policy requests one *)
  breaker : breaker option;
}

(* Instrument handles for RS's periodic paths, resolved once at [body]
   startup (same pattern as the kernel's own counter record). *)
type rs_ctrs = {
  c_hp_misses : Metrics.counter;
  c_hp_sent : Metrics.counter;
  h_degraded_us : Metrics.histogram;
}

type t = {
  register_program : string -> (unit -> unit) -> unit;
  policies : (string, Policy.t) Hashtbl.t;
  complainers : Endpoint.t list;
  heartbeat_tick : int;
  term_grace : int;
  services : (string, service) Hashtbl.t;
  mutable event_log : recovery_event list; (* newest first *)
  mutable script_counter : int;
  mutable reboots : int;
  spans : Span.t;
  (* hot-path instrument handles, resolved once at [body] startup *)
  mutable ctrs : rs_ctrs option;
}

let create ~register_program ?(policies = []) ?(complainers = []) ?(heartbeat_tick = 100_000)
    ?(term_grace = 2_000_000) ?spans () =
  let table = Hashtbl.create 8 in
  List.iter (fun (name, p) -> Hashtbl.replace table name p) policies;
  {
    register_program;
    policies = table;
    complainers;
    heartbeat_tick;
    term_grace;
    services = Hashtbl.create 16;
    event_log = [];
    script_counter = 0;
    reboots = 0;
    spans = (match spans with Some s -> s | None -> Span.create ());
    ctrs = None;
  }

let events t = List.rev t.event_log
let reboots t = t.reboots
let spans t = t.spans

let service_up t name =
  match Hashtbl.find_opt t.services name with Some s -> s.status = Up | None -> false

let service_state t name =
  match Hashtbl.find_opt t.services name with
  | Some { status = Up; _ } -> `Up
  | Some { status = Restarting; _ } -> `Restarting
  | Some { status = Down; _ } -> `Down
  | Some { status = Degraded; _ } -> `Degraded
  | None -> `Unknown

let degraded_components t =
  List.sort String.compare
    (Hashtbl.fold
       (fun name s acc -> if s.status = Degraded then name :: acc else acc)
       t.services [])

(* Read-only breaker snapshot for the DST invariants and the health
   tooling; callable from outside the simulation (no [Api]). *)
type breaker_stat = {
  bs_component : string;
  bs_state : breaker_state;
  bs_trips : int;
  bs_probes : int;
  bs_threshold : int;
  bs_window_us : int;
  bs_cooldown_us : int;
  bs_opened_at : int; (* time of the most recent trip; 0 if never tripped *)
  bs_degraded_since : int option; (* current degraded episode, if any *)
}

let breaker_stats t =
  List.sort
    (fun a b -> String.compare a.bs_component b.bs_component)
    (Hashtbl.fold
       (fun name s acc ->
         match s.breaker with
         | None -> acc
         | Some b ->
             {
               bs_component = name;
               bs_state = b.bk_state;
               bs_trips = b.bk_trips;
               bs_probes = b.bk_probes;
               bs_threshold = b.bk_config.Policy.trip_threshold;
               bs_window_us = b.bk_config.Policy.window_us;
               bs_cooldown_us = b.bk_config.Policy.cooldown_us;
               bs_opened_at = b.bk_opened_at;
               bs_degraded_since =
                 (match b.bk_state with
                 | B_open | B_half_open -> Some b.bk_degraded_since
                 | B_closed -> None);
             }
             :: acc)
       t.services [])

let restarts_of t name =
  List.length
    (List.filter (fun e -> String.equal e.component name && e.recovered_at <> None) t.event_log)

let log fmt = Api.trace "rs" fmt

(* ------------------------------------------------------------------ *)
(* Talking to the process manager                                      *)
(* ------------------------------------------------------------------ *)

let pm_spawn ~name ~program ~args ~priv ~mem_kb =
  match Api.sendrec Wellknown.pm (Message.Pm_spawn { name; program; args; priv; mem_kb }) with
  | Ok (Sysif.Rx_msg { body = Message.Pm_spawn_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let pm_kill ~pid ~signal =
  match Api.sendrec Wellknown.pm (Message.Pm_kill { pid; signal }) with
  | Ok (Sysif.Rx_msg { body = Message.Pm_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let pm_wait_any () =
  match Api.sendrec Wellknown.pm (Message.Pm_waitpid { pid = -1 }) with
  | Ok (Sysif.Rx_msg { body = Message.Pm_wait_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let ds_publish key value =
  ignore (Api.sendrec Wellknown.ds (Message.Ds_publish { key; value }))

let ds_delete key = ignore (Api.sendrec Wellknown.ds (Message.Ds_delete { key }))

(* ------------------------------------------------------------------ *)
(* Starting and restarting services                                    *)
(* ------------------------------------------------------------------ *)

(* Start (or restart) the service's process and publish the new
   endpoint so dependents can reintegrate it (Sec. 5.3). *)
let start_process t service ~program =
  let spec = service.spec in
  match
    pm_spawn ~name:spec.Spec.name ~program ~args:spec.Spec.args ~priv:spec.Spec.privileges
      ~mem_kb:spec.Spec.mem_kb
  with
  | Error e ->
      log "failed to start %s: %s" spec.Spec.name (Errno.to_string e);
      service.status <- Down;
      service.endpoint <- None;
      Error e
  | Ok (ep, pid) ->
      service.endpoint <- Some ep;
      service.pid <- pid;
      service.status <- Up;
      service.hb_outstanding <- false;
      service.hb_misses <- 0;
      service.hb_last_request <- Api.now ();
      service.term_deadline <- None;
      (match service.breaker with
      | Some b ->
          b.bk_hp_outstanding <- false;
          b.bk_hp_misses <- 0
      | None -> ());
      Span.mark_component t.spans spec.Spec.name Span.Respawn ~now:(Api.now ());
      (* Publication is what triggers dependent recovery. *)
      ds_publish spec.Spec.name (Message.V_endpoint ep);
      Span.mark_component t.spans spec.Spec.name Span.Republish ~now:(Api.now ());
      Api.emit "rs" (Event.Restart { component = spec.Spec.name; ep; pid });
      Ok (ep, pid)

(*@recovery-begin*)
let complete_recovery t service =
  (match List.find_opt (fun e -> String.equal e.component service.spec.Spec.name) t.event_log with
  | Some event when event.recovered_at = None -> event.recovered_at <- Some (Api.now ())
  | Some _ | None -> ());
  Span.close_component t.spans service.spec.Spec.name ~now:(Api.now ())

let restart_now t service =
  let program =
    match service.pending_program with Some p -> p | None -> service.spec.Spec.program
  in
  service.pending_program <- None;
  (* The policy phase ends the moment the restart is actually ordered
     (directly or via the policy script's Rs_service_restart). *)
  Span.mark_component t.spans service.spec.Spec.name Span.Policy ~now:(Api.now ());
  match start_process t service ~program with
  | Ok _ ->
      complete_recovery t service;
      Ok ()
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Circuit breaker transitions (policy v2)                             *)
(* ------------------------------------------------------------------ *)

let breaker_gauge name = Printf.sprintf "rs.breaker.%s.state" name
let degraded_key name = "degraded." ^ name

let set_breaker_state t service b to_ =
  let name = service.spec.Spec.name in
  let from_ = b.bk_state in
  if from_ <> to_ then begin
    b.bk_state <- to_;
    (let g =
       match b.bk_gauge with
       | Some g -> g
       | None ->
           let g = Api.metric_gauge (breaker_gauge name) in
           b.bk_gauge <- Some g;
           g
     in
     Metrics.set g (breaker_state_gauge to_));
    Api.emit ~level:Event.Warn "rs"
      (Event.Breaker
         {
           component = name;
           from_state = breaker_state_name from_;
           to_state = breaker_state_name to_;
         });
    match Span.current t.spans name with
    | Some span ->
        Span.tag span "policy" service.spec.Spec.policy;
        Span.tag span "breaker" (breaker_state_name to_)
    | None -> ()
  end

(* Open the breaker: park the service [Degraded], unpublish its
   endpoint, and publish a ["degraded.<name>"] record so VFS/INET and
   applications can fail new work cleanly instead of blocking. *)
let breaker_trip t service b =
  let name = service.spec.Spec.name in
  let now = Api.now () in
  b.bk_trips <- b.bk_trips + 1;
  if b.bk_state = B_closed then b.bk_degraded_since <- now;
  b.bk_opened_at <- now;
  b.bk_window <- [];
  service.status <- Degraded;
  service.endpoint <- None;
  (match t.event_log with
  | event :: _ when String.equal event.component name -> event.degraded <- true
  | _ -> ());
  set_breaker_state t service b B_open;
  log "breaker for %s tripped (%d failures within %dus); degrading" name
    b.bk_config.Policy.trip_threshold b.bk_config.Policy.window_us;
  ds_delete name;
  ds_publish (degraded_key name) (Message.V_int now);
  (* The recovery span ends here: degradation is this failure's
     terminal state.  The half-open probe opens no span of its own. *)
  Span.mark_component t.spans name Span.Policy ~now;
  Span.close_component t.spans name ~now

(* One failure landed on a breaker-guarded service.  Returns [true]
   when the breaker absorbed it (tripped or re-opened) and no policy
   script should run. *)
let breaker_on_failure t service b =
  let now = Api.now () in
  match b.bk_state with
  | B_half_open ->
      (* The probe incarnation failed: straight back to open, with a
         fresh cooldown. *)
      breaker_trip t service b;
      true
  | B_open ->
      (* A straggler defect while already parked; stay open. *)
      breaker_trip t service b;
      true
  | B_closed ->
      b.bk_window <-
        now :: List.filter (fun ts -> now - ts <= b.bk_config.Policy.window_us) b.bk_window;
      if List.length b.bk_window >= b.bk_config.Policy.trip_threshold then begin
        breaker_trip t service b;
        true
      end
      else false

(* Cooldown expired: half-open, restart the component once as a probe.
   [handle_tick] closes the breaker if the probe survives
   [confirm_us]; a failure in between re-opens it. *)
let breaker_probe t service b =
  let name = service.spec.Spec.name in
  let now = Api.now () in
  b.bk_probes <- b.bk_probes + 1;
  set_breaker_state t service b B_half_open;
  log "breaker for %s half-open: probing with a fresh incarnation" name;
  let program =
    match service.pending_program with Some p -> p | None -> service.spec.Spec.program
  in
  service.pending_program <- None;
  service.status <- Restarting;
  match start_process t service ~program with
  | Ok _ -> b.bk_probe_started_at <- Api.now ()
  | Error _ ->
      (* Could not even spawn: back to open, retry after another
         cooldown. *)
      service.status <- Degraded;
      b.bk_opened_at <- now;
      set_breaker_state t service b B_open

(* The probe incarnation survived [confirm_us]: close the breaker and
   lift the degradation.  Publishing a 0 value before deleting lets
   subscribers (VFS, INET) observe the clearing — deletions alone do
   not fan out. *)
let breaker_close t service b =
  let name = service.spec.Spec.name in
  let now = Api.now () in
  set_breaker_state t service b B_closed;
  b.bk_window <- [];
  (match t.ctrs with
  | Some c -> Metrics.observe c.h_degraded_us (now - b.bk_degraded_since)
  | None -> Api.metric_observe "rs.degraded_us" (now - b.bk_degraded_since));
  ds_publish (degraded_key name) (Message.V_int 0);
  ds_delete (degraded_key name);
  log "breaker for %s closed after %dus degraded" name (now - b.bk_degraded_since);
  (* The degraded episode counts as one (slow) completed recovery. *)
  match List.find_opt (fun e -> String.equal e.component name) t.event_log with
  | Some event when event.recovered_at = None -> event.recovered_at <- Some now
  | Some _ | None -> ()

(* Launch the policy script in its own child process, mirroring the
   shell scripts of Sec. 5.2. *)
let run_policy_script t service policy ~reason =
  let spec = service.spec in
  t.script_counter <- t.script_counter + 1;
  let key = Printf.sprintf "policy#%s#%d" spec.Spec.name t.script_counter in
  let ctx =
    {
      Policy.component = spec.Spec.name;
      reason;
      repetition = service.failures;
      params = spec.Spec.policy_params;
    }
  in
  t.register_program key (fun () -> Policy.run ctx policy);
  let script_priv =
    {
      Privilege.none with
      Privilege.uid = 30;
      ipc_to = Privilege.Only [ Wellknown.name_rs; Wellknown.name_ds ];
      kcalls = Privilege.Only [ "alarm" ];
    }
  in
  match pm_spawn ~name:key ~program:key ~args:[] ~priv:script_priv ~mem_kb:16 with
  | Ok _ -> ()
  | Error e ->
      (* Cannot run the script (out of slots?): recover directly rather
         than leaving the system headless. *)
      Api.emit ~level:Event.Warn "rs"
        (Event.Policy_decision
           {
             component = spec.Spec.name;
             policy = spec.Spec.policy;
             decision =
               Printf.sprintf "script failed to start (%s); restarting directly"
                 (Errno.to_string e);
           });
      ignore (restart_now t service)

(* A defect was detected: record it and initiate policy-driven
   recovery (Sec. 5.2). *)
let initiate_recovery t service ~defect =
  let spec = service.spec in
  if service.failures > 0 && Api.now () - service.last_failure_at > failure_count_decay then
    service.failures <- 0;
  service.failures <- service.failures + 1;
  service.last_failure_at <- Api.now ();
  service.status <- Restarting;
  service.endpoint <- None;
  service.hb_outstanding <- false;
  service.hb_misses <- 0;
  t.event_log <-
    {
      component = spec.Spec.name;
      defect;
      repetition = service.failures;
      detected_at = Api.now ();
      recovered_at = None;
      degraded = false;
    }
    :: t.event_log;
  let span =
    Span.open_span t.spans ~component:spec.Spec.name ~defect ~repetition:service.failures
      ~now:(Api.now ())
  in
  (match service.breaker with
  | Some b ->
      Span.tag span "policy" spec.Spec.policy;
      Span.tag span "breaker" (breaker_state_name b.bk_state)
  | None -> ());
  Api.emit ~level:Event.Warn "rs"
    (Event.Defect { component = spec.Spec.name; defect; repetition = service.failures });
  let absorbed =
    match service.breaker with Some b -> breaker_on_failure t service b | None -> false
  in
  if absorbed then ()
  else if String.equal spec.Spec.policy "" then ignore (restart_now t service)
  else
    match Hashtbl.find_opt t.policies spec.Spec.policy with
    | Some policy -> run_policy_script t service policy ~reason:defect
    | None ->
        Api.emit ~level:Event.Warn "rs"
          (Event.Policy_decision
             {
               component = spec.Spec.name;
               policy = spec.Spec.policy;
               decision = "unknown policy; restarting directly";
             });
        ignore (restart_now t service)

(*@recovery-end*)
(* ------------------------------------------------------------------ *)
(* Defect detection                                                    *)
(* ------------------------------------------------------------------ *)

(*@recovery-begin*)
let find_service_by_pid t pid =
  Hashtbl.fold
    (fun _name s acc -> if s.pid = pid && s.status <> Down then Some s else acc)
    t.services None

(* SIGCHLD: drain every zombie the process manager has for us. *)
let handle_sigchld t =
  let rec drain () =
    match pm_wait_any () with
    | Error _ -> ()
    | Ok (pid, name, status) ->
        (match find_service_by_pid t pid with
        | None ->
            (* A policy script or an unmanaged process ended; nothing
               to recover. *)
            if not (String.length name >= 7 && String.sub name 0 7 = "policy#") then
              log "untracked process %s (pid %d) exited" name pid
        | Some service ->
            if service.status = Down then () (* deliberate stop *)
            else begin
              let defect =
                match service.pending_defect with
                | Some d -> d
                | None -> Status.defect_of_exit status
              in
              service.pending_defect <- None;
              initiate_recovery t service ~defect
            end);
        drain ()
  in
  drain ()

(* Heartbeat + SIGTERM-grace bookkeeping, run every tick. *)
let handle_tick t =
  let now = Api.now () in
  Hashtbl.iter
    (fun _name service ->
      (* Escalate dynamic updates that ignored SIGTERM. *)
      (match service.term_deadline with
      | Some deadline when now >= deadline && service.status = Up ->
          Api.emit ~level:Event.Warn "rs"
            (Event.Policy_decision
               {
                 component = service.spec.Spec.name;
                 policy = "update";
                 decision = "ignored SIGTERM; escalating to SIGKILL";
               });
          service.term_deadline <- None;
          ignore (pm_kill ~pid:service.pid ~signal:Signal.Sig_kill)
      | Some _ | None -> ());
      (* Heartbeats (defect class 4). *)
      let period = service.spec.Spec.heartbeat_period in
      if service.status = Up && period > 0 && now - service.hb_last_request >= period then begin
        if service.hb_outstanding then begin
          service.hb_misses <- service.hb_misses + 1;
          Api.emit ~level:Event.Warn "rs"
            (Event.Heartbeat_miss
               { component = service.spec.Spec.name; misses = service.hb_misses });
          if service.hb_misses >= service.spec.Spec.max_heartbeat_misses then begin
            log "%s missed %d heartbeats; killing for recovery" service.spec.Spec.name
              service.hb_misses;
            service.pending_defect <- Some Status.D_heartbeat;
            ignore (pm_kill ~pid:service.pid ~signal:Signal.Sig_kill)
          end
        end;
        match service.endpoint with
        | Some ep when service.status = Up ->
            service.hb_outstanding <- true;
            service.hb_last_request <- now;
            (match Api.notify ep Message.N_heartbeat_request with
            | Ok () -> ()
            | Error _ ->
                (* Endpoint already dead; SIGCHLD is on its way. *)
                ())
        | Some _ | None -> ()
      end;
      (* Circuit breaker (policy v2): cooldown expiry, probe
         confirmation, and proactive health probes between
         heartbeats. *)
      match service.breaker with
      | None -> ()
      | Some b -> (
          match b.bk_state with
          | B_open
            when service.status = Degraded
                 && now - b.bk_opened_at >= b.bk_config.Policy.cooldown_us ->
              breaker_probe t service b
          | B_half_open
            when service.status = Up
                 && now - b.bk_probe_started_at >= b.bk_config.Policy.confirm_us ->
              breaker_close t service b
          | _ ->
              (* Health probe at the midpoint of each heartbeat cycle:
                 catches a stuck component about half a period before
                 the heartbeat machinery would. *)
              if
                service.status = Up && period > 0
                && service.hb_last_request > b.bk_hp_cycle
                && now - service.hb_last_request >= period / 2
              then begin
                if b.bk_hp_outstanding then begin
                  b.bk_hp_misses <- b.bk_hp_misses + 1;
                  (match t.ctrs with
                  | Some c -> Metrics.incr c.c_hp_misses
                  | None -> Api.metric_incr "rs.health_probe.misses");
                  Api.emit ~level:Event.Warn "rs"
                    (Event.Heartbeat_miss
                       { component = service.spec.Spec.name; misses = b.bk_hp_misses });
                  if b.bk_hp_misses >= service.spec.Spec.max_heartbeat_misses then begin
                    log "%s missed %d health probes; killing for recovery"
                      service.spec.Spec.name b.bk_hp_misses;
                    service.pending_defect <- Some Status.D_heartbeat;
                    ignore (pm_kill ~pid:service.pid ~signal:Signal.Sig_kill)
                  end
                end;
                match service.endpoint with
                | Some ep when service.status = Up ->
                    b.bk_hp_outstanding <- true;
                    b.bk_hp_cycle <- service.hb_last_request;
                    (match t.ctrs with
                    | Some c -> Metrics.incr c.c_hp_sent
                    | None -> Api.metric_incr "rs.health_probe.sent");
                    ignore (Api.notify ep Message.N_health_probe)
                | Some _ | None -> ()
              end))
    t.services;
  ignore (Api.alarm t.heartbeat_tick)

let handle_heartbeat_reply t src =
  Hashtbl.iter
    (fun _name service ->
      match service.endpoint with
      | Some ep when Endpoint.equal ep src ->
          service.hb_outstanding <- false;
          service.hb_misses <- 0
      | Some _ | None -> ())
    t.services

let handle_health_reply t src =
  Hashtbl.iter
    (fun _name service ->
      match (service.endpoint, service.breaker) with
      | Some ep, Some b when Endpoint.equal ep src ->
          b.bk_hp_outstanding <- false;
          b.bk_hp_misses <- 0
      | _ -> ())
    t.services

(*@recovery-end*)
(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let rs_reply src result = ignore (Api.send src (Message.Rs_reply { result }))

let handle_up t ~src spec =
  match Hashtbl.find_opt t.services spec.Spec.name with
  | Some existing when existing.status <> Down -> rs_reply src (Error Errno.E_busy)
  | Some _ | None ->
      let breaker =
        match Hashtbl.find_opt t.policies spec.Spec.policy with
        | Some policy -> Option.map fresh_breaker (Policy.breaker_config policy)
        | None -> None
      in
      let service =
        {
          spec;
          endpoint = None;
          pid = -1;
          status = Down;
          failures = 0;
          last_failure_at = 0;
          hb_outstanding = false;
          hb_misses = 0;
          hb_last_request = 0;
          pending_defect = None;
          pending_program = None;
          term_deadline = None;
          breaker;
        }
      in
      Hashtbl.replace t.services spec.Spec.name service;
      (match start_process t service ~program:spec.Spec.program with
      | Ok _ -> rs_reply src (Ok ())
      | Error e -> rs_reply src (Error e))

let handle_down t ~src name =
  match Hashtbl.find_opt t.services name with
  | None -> rs_reply src (Error Errno.E_noent)
  | Some service ->
      service.status <- Down;
      if service.pid >= 0 then ignore (pm_kill ~pid:service.pid ~signal:Signal.Sig_kill);
      ds_delete name;
      (* A deliberately stopped service is no longer degraded — clear
         the record (publishing 0 first so subscribers see it). *)
      (match service.breaker with
      | Some b when b.bk_state <> B_closed ->
          ds_publish (degraded_key name) (Message.V_int 0);
          ds_delete (degraded_key name);
          set_breaker_state t service b B_closed;
          b.bk_window <- []
      | Some _ | None -> ());
      rs_reply src (Ok ())

(*@recovery-begin*)
let handle_restart t ~src name =
  match Hashtbl.find_opt t.services name with
  | None -> rs_reply src (Error Errno.E_noent)
  | Some service when service.status = Up ->
      service.pending_defect <- Some Status.D_killed_by_user;
      (match pm_kill ~pid:service.pid ~signal:Signal.Sig_kill with
      | Ok () ->
          (* The old instance is gone the moment the kill lands; stop
             advertising its endpoint so lookups wait for the fresh
             one. *)
          service.status <- Restarting;
          service.endpoint <- None;
          rs_reply src (Ok ())
      | Error e -> rs_reply src (Error e))
  | Some _ -> rs_reply src (Error Errno.E_busy)

(* Dynamic update (defect class 6): ask the component to exit cleanly,
   escalate to SIGKILL after the grace period, then restart — possibly
   with a new binary ("we can also start a newer or patched version of
   the driver", Sec. 3). *)
let handle_refresh t ~src name program =
  match Hashtbl.find_opt t.services name with
  | None -> rs_reply src (Error Errno.E_noent)
  | Some service when service.status = Up ->
      service.pending_defect <- Some Status.D_update;
      service.pending_program <- program;
      service.term_deadline <- Some (Api.now () + t.term_grace);
      (match pm_kill ~pid:service.pid ~signal:Signal.Sig_term with
      | Ok () -> rs_reply src (Ok ())
      | Error e -> rs_reply src (Error e))
  | Some _ -> rs_reply src (Error Errno.E_busy)

let handle_complain t ~src name reason =
  if not (List.exists (Endpoint.equal src) t.complainers) then rs_reply src (Error Errno.E_no_perm)
  else
    match Hashtbl.find_opt t.services name with
    | None -> rs_reply src (Error Errno.E_noent)
    | Some service when service.status = Up ->
        log "complaint about %s: %s" name reason;
        service.pending_defect <- Some Status.D_complaint;
        (match pm_kill ~pid:service.pid ~signal:Signal.Sig_kill with
        | Ok () ->
            service.status <- Restarting;
            service.endpoint <- None;
            rs_reply src (Ok ())
        | Error e -> rs_reply src (Error e))
    | Some _ ->
        (* Already being recovered; the complaint is moot. *)
        rs_reply src (Ok ())

let handle_service_restart t ~src name =
  match Hashtbl.find_opt t.services name with
  | Some service when service.status = Restarting -> (
      match restart_now t service with
      | Ok () -> rs_reply src (Ok ())
      | Error e -> rs_reply src (Error e))
  | Some _ -> rs_reply src (Error Errno.E_busy)
  | None -> rs_reply src (Error Errno.E_noent)

(*@recovery-begin*)
(* Full system reboot: tear every guarded service down and bring each
   back up from a clean binary — the policy script's last resort. *)
let handle_reboot t ~src =
  t.reboots <- t.reboots + 1;
  log "policy script requested a system reboot";
  (* Phase 1: stop everything (Down suppresses per-service recovery of
     the kills). *)
  Hashtbl.iter
    (fun _name service ->
      let was_live = service.pid >= 0 && service.endpoint <> None in
      service.status <- Down;
      if was_live then ignore (pm_kill ~pid:service.pid ~signal:Signal.Sig_kill))
    t.services;
  (* Phase 2: boot every service afresh with a clean slate. *)
  Hashtbl.iter
    (fun name service ->
      service.failures <- 0;
      service.pending_defect <- None;
      service.pending_program <- None;
      service.term_deadline <- None;
      (match service.breaker with
      | Some b ->
          if b.bk_state <> B_closed then begin
            ds_publish (degraded_key name) (Message.V_int 0);
            ds_delete (degraded_key name)
          end;
          set_breaker_state t service b B_closed;
          b.bk_window <- [];
          b.bk_hp_outstanding <- false;
          b.bk_hp_misses <- 0
      | None -> ());
      ignore (start_process t service ~program:service.spec.Spec.program))
    t.services;
  rs_reply src (Ok ())

(*@recovery-end*)
let handle_lookup t ~src name =
  let result =
    match Hashtbl.find_opt t.services name with
    | Some { endpoint = Some ep; pid; _ } -> Ok (ep, pid)
    | Some _ -> Error Errno.E_again
    | None -> Error Errno.E_noent
  in
  ignore (Api.send src (Message.Rs_lookup_reply { result }))

(*@recovery-end*)
(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let body t () =
  t.ctrs <-
    Some
      {
        c_hp_misses = Api.metric_counter "rs.health_probe.misses";
        c_hp_sent = Api.metric_counter "rs.health_probe.sent";
        h_degraded_us = Api.metric_histogram "rs.degraded_us";
      };
  ignore (Api.alarm t.heartbeat_tick);
  let rec loop () =
    (match Api.receive Sysif.Any with
    | Error _ -> ()
    | Ok (Sysif.Rx_notify { kind = Message.N_sig Signal.Sig_chld; _ }) -> handle_sigchld t
    | Ok (Sysif.Rx_notify { kind = Message.N_alarm; _ }) -> handle_tick t
    | Ok (Sysif.Rx_notify { src; kind = Message.N_heartbeat_reply }) -> handle_heartbeat_reply t src
    | Ok (Sysif.Rx_notify { src; kind = Message.N_health_reply }) -> handle_health_reply t src
    | Ok (Sysif.Rx_notify _) -> ()
    | Ok (Sysif.Rx_msg { src; body }) -> begin
        match body with
        | Message.Rs_up spec -> handle_up t ~src spec
        | Message.Rs_down { name } -> handle_down t ~src name
        | Message.Rs_restart { name } -> handle_restart t ~src name
        | Message.Rs_refresh { name; program } -> handle_refresh t ~src name program
        | Message.Rs_complain { name; reason } -> handle_complain t ~src name reason
        | Message.Rs_service_restart { name } -> handle_service_restart t ~src name
        | Message.Rs_reboot -> handle_reboot t ~src
        | Message.Rs_lookup { name } -> handle_lookup t ~src name
        | _ -> rs_reply src (Error Errno.E_inval)
      end);
    loop ()
  in
  loop ()
