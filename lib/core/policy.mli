(** Recovery policies, v2: Fig. 2 scripts plus circuit breakers.

    In the paper, policies are shell scripts the reincarnation server
    executes in a child process when a component fails; the script
    receives the component name, the failure reason and the current
    failure count, decides when (and whether) to restart, and may take
    side actions such as mailing an alert.  Here a policy is a state
    machine: the {!Script} constructor keeps exactly those Fig. 2
    semantics (an interpreted action list, still run in its own
    spawned process, restarts requested back from RS because "that is
    the only process with the privileges to create new servers and
    drivers"), and the {!Breaker} constructor wraps a script in a
    per-component circuit breaker — closed until [trip_threshold]
    failures land within [window_us], then open (the component is
    parked [Degraded], no restarts), then half-open after
    [cooldown_us] (one probe restart), closing again only once the
    probe incarnation survives [confirm_us].  The breaker state itself
    lives in RS: a policy script is a fresh process per failure and
    cannot carry state across invocations. *)

type action =
  | Backoff of { cap_sec : int }
      (** sleep [2^(repetition-1)] seconds (capped), {e except} for
          dynamic updates — Fig. 2 lines 6–8 *)
  | Restart  (** [service restart $component] — Fig. 2 line 9 *)
  | Alert of string
      (** send a failure alert to the given address — Fig. 2 lines 12–21
          (modelled as a data-store record under ["alert.*"]) *)
  | Log of string  (** record the failure and environment for inspection *)
  | Give_up_after of { max_failures : int }
      (** if the failure count exceeds the bound, stop recovering and
          take the component down ("when a required component ... fails
          too often") *)
  | Restart_dependents of string list
      (** user-requested restart of dependent services (the paper's
          dedicated network-server script restarting DHCP and X) *)
  | Reboot_after of { max_failures : int }
      (** if the failure count exceeds the bound, reboot the entire
          system — "clearly better than leaving the system in an
          unusable state" *)

(** Circuit-breaker parameters (all in virtual microseconds). *)
type breaker_config = {
  trip_threshold : int;  (** failures within [window_us] that open the breaker *)
  window_us : int;  (** sliding failure-counting window *)
  cooldown_us : int;  (** open -> half-open delay before the probe restart *)
  confirm_us : int;  (** half-open survival time before closing again *)
}

(** A policy state machine. *)
type t =
  | Script of action list
      (** the paper's Fig. 2 script: actions run in order;
          [Give_up_after] short-circuits *)
  | Breaker of { config : breaker_config; script : action list }
      (** [script] interprets each failure while the breaker is
          closed; RS drives the breaker transitions *)

(** The arguments the reincarnation server passes to a script
    (Fig. 2 lines 1–4). *)
type ctx = {
  component : string;  (** $1: which component failed *)
  reason : Resilix_proto.Status.defect;  (** $2: defect class *)
  repetition : int;  (** $3: current failure count *)
  params : string list;  (** remaining script parameters *)
}

val script : action list -> t
(** [Script actions] — the Fig. 2 constructor. *)

val actions : t -> action list
(** The per-failure action script of either constructor. *)

val breaker_config : t -> breaker_config option
(** [Some config] for {!Breaker} policies, [None] for scripts. *)

val default_breaker_config : breaker_config
(** 3 failures / 10 s window, 5 s cooldown, 1 s confirm. *)

val direct : t
(** Immediately restart, no backoff — the policy used for the
    performance experiments of Sec. 7.1. *)

val generic : ?alert:string -> ?cap_sec:int -> unit -> t
(** The generic script of Fig. 2: binary exponential backoff (except
    updates), restart, optional alert. *)

val guarded : max_failures:int -> ?alert:string -> unit -> t
(** Like {!generic} but gives up (component stays down, alert raised)
    after [max_failures] failures. *)

val breaker :
  ?trip_threshold:int ->
  ?window_us:int ->
  ?cooldown_us:int ->
  ?confirm_us:int ->
  ?alert:string ->
  unit ->
  t
(** A circuit breaker (defaults: {!default_breaker_config}) around an
    immediate-restart script (optional alert).  No backoff: the
    breaker itself is the churn bound. *)

val action_name : action -> string
(** Stable lowercase label, e.g. ["backoff"], ["give-up-after"] — the
    [action] field of the {!Resilix_obs.Event.Policy_action} trace
    events {!run} emits. *)

val run : ctx -> t -> unit
(** Interpret the policy's action script, emitting one
    [Policy_action] trace event per interpreted action.  Must execute
    inside a process fiber (it sleeps, and talks to RS and DS by
    IPC).  Breaker transitions are {e not} made here — RS owns them. *)
