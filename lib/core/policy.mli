(** Parametrized recovery policy scripts (Sec. 5.2, Fig. 2).

    In the paper, policies are shell scripts the reincarnation server
    executes in a child process when a component fails; the script
    receives the component name, the failure reason and the current
    failure count, decides when (and whether) to restart, and may take
    side actions such as mailing an alert.  Here a policy is a small
    interpreted action list with exactly those semantics, and it still
    runs in its own spawned process: restarts are requested back from
    the reincarnation server, because "that is the only process with
    the privileges to create new servers and drivers". *)

type action =
  | Backoff of { cap_sec : int }
      (** sleep [2^(repetition-1)] seconds (capped), {e except} for
          dynamic updates — Fig. 2 lines 6–8 *)
  | Restart  (** [service restart $component] — Fig. 2 line 9 *)
  | Alert of string
      (** send a failure alert to the given address — Fig. 2 lines 12–21
          (modelled as a data-store record under ["alert.*"]) *)
  | Log of string  (** record the failure and environment for inspection *)
  | Give_up_after of { max_failures : int }
      (** if the failure count exceeds the bound, stop recovering and
          take the component down ("when a required component ... fails
          too often") *)
  | Restart_dependents of string list
      (** user-requested restart of dependent services (the paper's
          dedicated network-server script restarting DHCP and X) *)
  | Reboot_after of { max_failures : int }
      (** if the failure count exceeds the bound, reboot the entire
          system — "clearly better than leaving the system in an
          unusable state" *)

type t = { actions : action list }
(** A policy: actions run in order; [Give_up_after] short-circuits. *)

(** The arguments the reincarnation server passes to a script
    (Fig. 2 lines 1–4). *)
type ctx = {
  component : string;  (** $1: which component failed *)
  reason : Resilix_proto.Status.defect;  (** $2: defect class *)
  repetition : int;  (** $3: current failure count *)
  params : string list;  (** remaining script parameters *)
}

val direct : t
(** Immediately restart, no backoff — the policy used for the
    performance experiments of Sec. 7.1. *)

val generic : ?alert:string -> ?cap_sec:int -> unit -> t
(** The generic script of Fig. 2: binary exponential backoff (except
    updates), restart, optional alert. *)

val guarded : max_failures:int -> ?alert:string -> unit -> t
(** Like {!generic} but gives up (component stays down, alert raised)
    after [max_failures] failures. *)

val run : ctx -> t -> unit
(** Interpret the policy.  Must execute inside a process fiber (it
    sleeps, and talks to RS and DS by IPC). *)
