(** The reincarnation server (RS) — the heart of the paper.

    RS is the (logical) parent of every system process.  It starts
    services from specs handed to it by the service utility, and then
    guards them for the rest of their lives:

    - {b Defect detection} (Sec. 5.1): SIGCHLD notifications from the
      process manager cover exits, panics, exceptions and kills
      (classes 1–3); periodic non-blocking heartbeat requests catch
      stuck processes (class 4); authorized servers can complain about
      protocol violations (class 5); and the administrator can request
      a restart or a dynamic update (classes 3 and 6).
    - {b Policy-driven recovery} (Sec. 5.2): on a defect, RS runs the
      service's policy script in a child process, passing the
      component name, defect class and failure count; the script asks
      RS to perform the actual restart.
    - {b Post-restart reintegration} (Sec. 5.3): after a restart RS
      publishes the service's new endpoint in the data store, whose
      publish/subscribe machinery pushes the update to dependents
      (network server, VFS) that then re-integrate the driver. *)

module Status := Resilix_proto.Status
module Endpoint := Resilix_proto.Endpoint

(** One recovery, as recorded for the experiment harness. *)
type recovery_event = {
  component : string;
  defect : Status.defect;
  repetition : int;  (** failure count at detection time *)
  detected_at : int;  (** virtual time of defect detection *)
  mutable recovered_at : int option;  (** virtual time service was back up (None = not recovered) *)
}

type t
(** Shared RS handle (state readable from outside the simulation). *)

val create :
  register_program:(string -> (unit -> unit) -> unit) ->
  ?policies:(string * Policy.t) list ->
  ?complainers:Endpoint.t list ->
  ?heartbeat_tick:int ->
  ?term_grace:int ->
  ?spans:Resilix_obs.Span.t ->
  unit ->
  t
(** [register_program] installs policy-script bodies in the system's
    binary registry (the kernel program table).  [policies] maps the
    policy names referenced by service specs to their definitions.
    [complainers] are the endpoints allowed to use defect class 5
    (typically VFS, MFS, INET).  [heartbeat_tick] is RS's internal
    polling period (default 100 ms); [term_grace] how long a SIGTERMed
    component gets before SIGKILL (default 2 s).  [spans] is the span
    collector recoveries are recorded into (fresh by default; pass a
    shared one so dependents can mark their re-open phase). *)

val body : t -> unit -> unit
(** The process body; boot runs this at the well-known RS slot. *)

val events : t -> recovery_event list
(** All recoveries so far, oldest first. *)

val spans : t -> Resilix_obs.Span.t
(** The recovery span collector: one span per recovery, opened at
    defect detection, phase-marked through policy / respawn /
    republish, closed when the service is back up.  The MTTR data the
    experiments consume. *)

val service_up : t -> string -> bool
(** Whether the named service is currently believed up. *)

val service_state : t -> string -> [ `Up | `Restarting | `Down | `Unknown ]
(** Current lifecycle state of the named service ([`Restarting]
    includes a policy script mid-backoff). *)

val restarts_of : t -> string -> int
(** Number of completed recoveries of the named service. *)

val reboots : t -> int
(** Times a policy script resorted to a full system reboot. *)
