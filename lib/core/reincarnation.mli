(** The reincarnation server (RS) — the heart of the paper.

    RS is the (logical) parent of every system process.  It starts
    services from specs handed to it by the service utility, and then
    guards them for the rest of their lives:

    - {b Defect detection} (Sec. 5.1): SIGCHLD notifications from the
      process manager cover exits, panics, exceptions and kills
      (classes 1–3); periodic non-blocking heartbeat requests catch
      stuck processes (class 4); authorized servers can complain about
      protocol violations (class 5); and the administrator can request
      a restart or a dynamic update (classes 3 and 6).
    - {b Policy-driven recovery} (Sec. 5.2): on a defect, RS runs the
      service's policy script in a child process, passing the
      component name, defect class and failure count; the script asks
      RS to perform the actual restart.
    - {b Post-restart reintegration} (Sec. 5.3): after a restart RS
      publishes the service's new endpoint in the data store, whose
      publish/subscribe machinery pushes the update to dependents
      (network server, VFS) that then re-integrate the driver.
    - {b Circuit breakers and degradation} (policy v2): a service whose
      policy is a {!Policy.Breaker} gets a per-component breaker.
      [trip_threshold] failures within [window_us] park the service in
      an explicit [`Degraded] state — its endpoint is unpublished and a
      ["degraded.<name>"] record appears in the data store so VFS/INET
      reject new work with [E_degraded] instead of blocking.  After
      [cooldown_us] RS half-opens the breaker and probes with one fresh
      incarnation; surviving [confirm_us] closes it again (publishing a
      0-valued degraded record first so subscribers observe the
      clearing), a failure re-opens it.  While the breaker is closed,
      RS also sends proactive [N_health_probe] notifications at the
      midpoint of each heartbeat cycle. *)

module Status := Resilix_proto.Status
module Endpoint := Resilix_proto.Endpoint

(** One recovery, as recorded for the experiment harness. *)
type recovery_event = {
  component : string;
  defect : Status.defect;
  repetition : int;  (** failure count at detection time *)
  detected_at : int;  (** virtual time of defect detection *)
  mutable recovered_at : int option;  (** virtual time service was back up (None = not recovered) *)
  mutable degraded : bool;
      (** the breaker absorbed this failure (tripped or re-opened)
          instead of restarting; [recovered_at] is then set only if a
          later probe closed the breaker again *)
}

(** Circuit-breaker states (policy v2). *)
type breaker_state = B_closed | B_open | B_half_open

val breaker_state_name : breaker_state -> string
(** ["closed"] / ["open"] / ["half-open"]. *)

(** Read-only breaker snapshot, for the DST invariants and the
    [resilix health] tooling.  Safe to call from outside the
    simulation. *)
type breaker_stat = {
  bs_component : string;
  bs_state : breaker_state;
  bs_trips : int;  (** closed->open and half-open->open transitions *)
  bs_probes : int;  (** half-open probe restarts attempted *)
  bs_threshold : int;
  bs_window_us : int;
  bs_cooldown_us : int;
  bs_opened_at : int;  (** time of the most recent trip; 0 if never tripped *)
  bs_degraded_since : int option;  (** start of the current degraded episode, if any *)
}

type t
(** Shared RS handle (state readable from outside the simulation). *)

val create :
  register_program:(string -> (unit -> unit) -> unit) ->
  ?policies:(string * Policy.t) list ->
  ?complainers:Endpoint.t list ->
  ?heartbeat_tick:int ->
  ?term_grace:int ->
  ?spans:Resilix_obs.Span.t ->
  unit ->
  t
(** [register_program] installs policy-script bodies in the system's
    binary registry (the kernel program table).  [policies] maps the
    policy names referenced by service specs to their definitions.
    [complainers] are the endpoints allowed to use defect class 5
    (typically VFS, MFS, INET).  [heartbeat_tick] is RS's internal
    polling period (default 100 ms); [term_grace] how long a SIGTERMed
    component gets before SIGKILL (default 2 s).  [spans] is the span
    collector recoveries are recorded into (fresh by default; pass a
    shared one so dependents can mark their re-open phase). *)

val body : t -> unit -> unit
(** The process body; boot runs this at the well-known RS slot. *)

val events : t -> recovery_event list
(** All recoveries so far, oldest first. *)

val spans : t -> Resilix_obs.Span.t
(** The recovery span collector: one span per recovery, opened at
    defect detection, phase-marked through policy / respawn /
    republish, closed when the service is back up.  The MTTR data the
    experiments consume. *)

val service_up : t -> string -> bool
(** Whether the named service is currently believed up. *)

val service_state : t -> string -> [ `Up | `Restarting | `Down | `Degraded | `Unknown ]
(** Current lifecycle state of the named service ([`Restarting]
    includes a policy script mid-backoff; [`Degraded] means the
    circuit breaker is open and the service is parked). *)

val degraded_components : t -> string list
(** Services currently parked [`Degraded], sorted by name (RS's own
    view; the data store serves the same list to other processes via
    [Ds_degraded_list]). *)

val breaker_stats : t -> breaker_stat list
(** One snapshot per breaker-guarded service, sorted by name. *)

val restarts_of : t -> string -> int
(** Number of completed recoveries of the named service. *)

val reboots : t -> int
(** Times a policy script resorted to a full system reboot. *)
