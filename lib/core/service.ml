module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Wellknown = Resilix_proto.Wellknown

let rs_request msg =
  match Api.sendrec Wellknown.rs msg with
  | Ok (Sysif.Rx_msg { body = Message.Rs_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let up spec = rs_request (Message.Rs_up spec)
let down name = rs_request (Message.Rs_down { name })
let restart name = rs_request (Message.Rs_restart { name })
let refresh ?program name = rs_request (Message.Rs_refresh { name; program })

let lookup name =
  match Api.sendrec Wellknown.rs (Message.Rs_lookup { name }) with
  | Ok (Sysif.Rx_msg { body = Message.Rs_lookup_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

(* The degradation contract's application-side query: ask DS which
   components currently have an open circuit breaker. *)
let degraded_components () =
  match Api.sendrec Wellknown.ds Message.Ds_degraded_list with
  | Ok (Sysif.Rx_msg { body = Message.Ds_degraded_list_reply { result }; _ }) -> result
  | Ok _ -> Error Errno.E_io
  | Error e -> Error e

let wait_until_up ?(timeout = 5_000_000) name =
  let deadline = Api.now () + timeout in
  let rec poll () =
    match lookup name with
    | Ok (ep, _pid) -> Ok ep
    | Error (Errno.E_again | Errno.E_noent) ->
        if Api.now () >= deadline then Error Errno.E_timeout
        else begin
          Api.sleep 10_000;
          poll ()
        end
    | Error e -> Error e
  in
  poll ()
