(** Client side of the service utility (Sec. 5).

    In MINIX this is the [service] command: it hands the reincarnation
    server a driver binary, stable name, privileges, heartbeat period
    and policy script.  These helpers are called from inside any
    process fiber that is allowed to IPC to RS. *)

module Errno := Resilix_proto.Errno
module Endpoint := Resilix_proto.Endpoint

val up : Resilix_proto.Spec.t -> (unit, Errno.t) result
(** Start a service ([service up]). *)

val down : string -> (unit, Errno.t) result
(** Stop a service permanently ([service down]). *)

val restart : string -> (unit, Errno.t) result
(** Kill and recover a running service ([service restart]) — defect
    class 3. *)

val refresh : ?program:string -> string -> (unit, Errno.t) result
(** Dynamic update ([service refresh]) — defect class 6; [program]
    optionally names a replacement binary. *)

val lookup : string -> (Endpoint.t * int, Errno.t) result
(** Current endpoint and pid of a service. *)

val degraded_components : unit -> (string list, Errno.t) result
(** Ask the data store which components are currently degraded (open
    circuit breaker) — the application-side query of the degradation
    contract. *)

val wait_until_up : ?timeout:int -> string -> (Endpoint.t, Errno.t) result
(** Poll {!lookup} (with small sleeps) until the service is up or
    [timeout] (default 5 s) elapses. *)
