(*@recovery-begin*)
module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Message = Resilix_proto.Message
module Status = Resilix_proto.Status
module Wellknown = Resilix_proto.Wellknown
module Event = Resilix_obs.Event

type action =
  | Backoff of { cap_sec : int }
  | Restart
  | Alert of string
  | Log of string
  | Give_up_after of { max_failures : int }
  | Restart_dependents of string list
  | Reboot_after of { max_failures : int }

type breaker_config = {
  trip_threshold : int;
  window_us : int;
  cooldown_us : int;
  confirm_us : int;
}

type t =
  | Script of action list
  | Breaker of { config : breaker_config; script : action list }

type ctx = {
  component : string;
  reason : Status.defect;
  repetition : int;
  params : string list;
}

let script actions = Script actions
let actions = function Script actions -> actions | Breaker { script; _ } -> script
let breaker_config = function Script _ -> None | Breaker { config; _ } -> Some config

let default_breaker_config =
  { trip_threshold = 3; window_us = 10_000_000; cooldown_us = 5_000_000; confirm_us = 1_000_000 }

let direct = Script [ Restart ]

let generic ?alert ?(cap_sec = 32) () =
  let base = [ Backoff { cap_sec }; Restart ] in
  match alert with None -> Script base | Some a -> Script (base @ [ Alert a ])

let guarded ~max_failures ?alert () =
  Script (Give_up_after { max_failures } :: actions (generic ?alert ()))

let breaker ?(trip_threshold = default_breaker_config.trip_threshold)
    ?(window_us = default_breaker_config.window_us)
    ?(cooldown_us = default_breaker_config.cooldown_us)
    ?(confirm_us = default_breaker_config.confirm_us) ?alert () =
  let script = Restart :: (match alert with None -> [] | Some a -> [ Alert a ]) in
  Breaker { config = { trip_threshold; window_us; cooldown_us; confirm_us }; script }

let action_name = function
  | Backoff _ -> "backoff"
  | Restart -> "restart"
  | Alert _ -> "alert"
  | Log _ -> "log"
  | Give_up_after _ -> "give-up-after"
  | Restart_dependents _ -> "restart-dependents"
  | Reboot_after _ -> "reboot-after"

let request_restart ctx =
  match Api.sendrec Wellknown.rs (Message.Rs_service_restart { name = ctx.component }) with
  | Ok (Sysif.Rx_msg { body = Message.Rs_reply { result = Ok () }; _ }) -> true
  | Ok _ | Error _ ->
      Api.emit ~level:Event.Warn "policy"
        (Event.Policy_decision
           { component = ctx.component; policy = "script"; decision = "restart request failed" });
      false

let publish_alert ctx addr status =
  let text =
    Printf.sprintf "failure: %s, %d, %d; restart status: %s" ctx.component
      (Status.defect_number ctx.reason) ctx.repetition status
  in
  ignore
    (Api.sendrec Wellknown.ds
       (Message.Ds_publish
          {
            key = Printf.sprintf "alert.%s.%d" ctx.component ctx.repetition;
            value = Message.V_str (Printf.sprintf "to:%s %s" addr text);
          }))

let run ctx t =
  (* [restart_status] mirrors the $status variable of Fig. 2. *)
  let restart_status = ref "not-attempted" in
  let rec go = function
    | [] -> ()
    | action :: rest -> (
        Api.emit "policy"
          (Event.Policy_action
             {
               component = ctx.component;
               action = action_name action;
               repetition = ctx.repetition;
             });
        match action with
        | Backoff { cap_sec } ->
            (* "Binary exponential backoff is used before restarting,
               except for dynamic updates." *)
            if ctx.reason <> Status.D_update then begin
              let seconds = min cap_sec (1 lsl max 0 (ctx.repetition - 1)) in
              Api.sleep (seconds * 1_000_000)
            end;
            go rest
        | Restart ->
            restart_status := (if request_restart ctx then "0" else "1");
            go rest
        | Alert addr ->
            publish_alert ctx addr !restart_status;
            go rest
        | Log note ->
            Api.emit "policy"
              (Event.Policy_decision
                 {
                   component = ctx.component;
                   policy = "script";
                   decision =
                     Printf.sprintf "log: failed (reason %d, repetition %d): %s"
                       (Status.defect_number ctx.reason) ctx.repetition note;
                 });
            go rest
        | Give_up_after { max_failures } ->
            if ctx.repetition > max_failures then begin
              Api.emit ~level:Event.Warn "policy"
                (Event.Policy_decision
                   {
                     component = ctx.component;
                     policy = "script";
                     decision =
                       Printf.sprintf "failed %d times; giving up" ctx.repetition;
                   });
              ignore (Api.sendrec Wellknown.rs (Message.Rs_down { name = ctx.component }));
              publish_alert ctx "root" "gave-up"
            end
            else go rest
        | Restart_dependents names ->
            List.iter
              (fun name -> ignore (Api.sendrec Wellknown.rs (Message.Rs_restart { name })))
              names;
            go rest
        | Reboot_after { max_failures } ->
            if ctx.repetition > max_failures then begin
              Api.emit ~level:Event.Warn "policy"
                (Event.Policy_decision
                   {
                     component = ctx.component;
                     policy = "script";
                     decision =
                       Printf.sprintf "failed %d times; rebooting the system" ctx.repetition;
                   });
              ignore (Api.sendrec Wellknown.rs Message.Rs_reboot)
            end
            else go rest)
  in
  go (actions t)
