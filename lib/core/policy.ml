(*@recovery-begin*)
module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Message = Resilix_proto.Message
module Status = Resilix_proto.Status
module Wellknown = Resilix_proto.Wellknown
module Event = Resilix_obs.Event

type action =
  | Backoff of { cap_sec : int }
  | Restart
  | Alert of string
  | Log of string
  | Give_up_after of { max_failures : int }
  | Restart_dependents of string list
  | Reboot_after of { max_failures : int }

type t = { actions : action list }

type ctx = {
  component : string;
  reason : Status.defect;
  repetition : int;
  params : string list;
}

let direct = { actions = [ Restart ] }

let generic ?alert ?(cap_sec = 32) () =
  let base = [ Backoff { cap_sec }; Restart ] in
  match alert with None -> { actions = base } | Some a -> { actions = base @ [ Alert a ] }

let guarded ~max_failures ?alert () =
  let g = generic ?alert () in
  { actions = (Give_up_after { max_failures } :: g.actions) }

let request_restart ctx =
  match Api.sendrec Wellknown.rs (Message.Rs_service_restart { name = ctx.component }) with
  | Ok (Sysif.Rx_msg { body = Message.Rs_reply { result = Ok () }; _ }) -> true
  | Ok _ | Error _ ->
      Api.emit ~level:Event.Warn "policy"
        (Event.Policy_decision
           { component = ctx.component; policy = "script"; decision = "restart request failed" });
      false

let publish_alert ctx addr status =
  let text =
    Printf.sprintf "failure: %s, %d, %d; restart status: %s" ctx.component
      (Status.defect_number ctx.reason) ctx.repetition status
  in
  ignore
    (Api.sendrec Wellknown.ds
       (Message.Ds_publish
          {
            key = Printf.sprintf "alert.%s.%d" ctx.component ctx.repetition;
            value = Message.V_str (Printf.sprintf "to:%s %s" addr text);
          }))

let run ctx t =
  (* [restart_status] mirrors the $status variable of Fig. 2. *)
  let restart_status = ref "not-attempted" in
  let rec go = function
    | [] -> ()
    | action :: rest -> (
        match action with
        | Backoff { cap_sec } ->
            (* "Binary exponential backoff is used before restarting,
               except for dynamic updates." *)
            if ctx.reason <> Status.D_update then begin
              let seconds = min cap_sec (1 lsl max 0 (ctx.repetition - 1)) in
              Api.sleep (seconds * 1_000_000)
            end;
            go rest
        | Restart ->
            restart_status := (if request_restart ctx then "0" else "1");
            go rest
        | Alert addr ->
            publish_alert ctx addr !restart_status;
            go rest
        | Log note ->
            Api.emit "policy"
              (Event.Policy_decision
                 {
                   component = ctx.component;
                   policy = "script";
                   decision =
                     Printf.sprintf "log: failed (reason %d, repetition %d): %s"
                       (Status.defect_number ctx.reason) ctx.repetition note;
                 });
            go rest
        | Give_up_after { max_failures } ->
            if ctx.repetition > max_failures then begin
              Api.emit ~level:Event.Warn "policy"
                (Event.Policy_decision
                   {
                     component = ctx.component;
                     policy = "script";
                     decision =
                       Printf.sprintf "failed %d times; giving up" ctx.repetition;
                   });
              ignore (Api.sendrec Wellknown.rs (Message.Rs_down { name = ctx.component }));
              publish_alert ctx "root" "gave-up"
            end
            else go rest
        | Restart_dependents names ->
            List.iter
              (fun name -> ignore (Api.sendrec Wellknown.rs (Message.Rs_restart { name })))
              names;
            go rest
        | Reboot_after { max_failures } ->
            if ctx.repetition > max_failures then begin
              Api.emit ~level:Event.Warn "policy"
                (Event.Policy_decision
                   {
                     component = ctx.component;
                     policy = "script";
                     decision =
                       Printf.sprintf "failed %d times; rebooting the system" ctx.repetition;
                   });
              ignore (Api.sendrec Wellknown.rs Message.Rs_reboot)
            end
            else go rest)
  in
  go t.actions
