(* The system interface: the effect through which every simulated
   process interacts with the kernel, plus the [Api] wrappers that give
   process code a readable, MINIX-flavoured vocabulary.

   Process bodies are plain OCaml functions run as effect-handler
   fibers by the kernel; performing [Sys op] suspends the fiber until
   the kernel completes the operation.  This file deliberately has no
   kernel dependencies so that servers, drivers and applications depend
   only on [Sysif] + [Proto]. *)

module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Status = Resilix_proto.Status
module Signal = Resilix_proto.Signal
module Privilege = Resilix_proto.Privilege
module Event = Resilix_obs.Event
module Metrics = Resilix_obs.Metrics

(* What [receive] returns: a rendezvous message or a pending
   notification. *)
type rx =
  | Rx_msg of { src : Endpoint.t; body : Message.t }
  | Rx_notify of { src : Endpoint.t; kind : Message.notify_kind }

(* Receive filter. *)
type source = Any | From of Endpoint.t

type grant_access = Read_only | Write_only | Read_write

type 'a syscall =
  (* --- IPC --- *)
  | Send : Endpoint.t * Message.t -> (unit, Errno.t) result syscall
  | Asend : Endpoint.t * Message.t -> (unit, Errno.t) result syscall
  | Receive : source -> (rx, Errno.t) result syscall
  | Sendrec : Endpoint.t * Message.t -> (rx, Errno.t) result syscall
  | Notify : Endpoint.t * Message.notify_kind -> (unit, Errno.t) result syscall
  (* --- time and identity --- *)
  | Sleep : int -> unit syscall
  | Yield : int -> unit syscall (* consume simulated CPU time *)
  | Now : int syscall
  | Self : Endpoint.t syscall
  | My_memory : Memory.t syscall
  | My_args : string list syscall
  | My_name : string syscall
  | Random : int -> int syscall
  | Exit : Status.exit_status -> unit syscall
  (* --- observability --- *)
  | Obs_emit : Event.level * string * Event.payload -> unit syscall (* level, subsystem, payload *)
  | Metric_add : string * int -> unit syscall (* named counter += n *)
  | Metric_observe : string * int -> unit syscall (* named histogram sample *)
  | Metric_set : string * int -> unit syscall (* named gauge := v *)
  (* Handle resolution: look the instrument up once (at registration
     time) and bump the returned handle directly thereafter, instead
     of paying a hashtable lookup per event on the fast path. *)
  | Metric_counter : string -> Metrics.counter syscall
  | Metric_gauge : string -> Metrics.gauge syscall
  | Metric_histogram : string -> Metrics.histogram syscall
  (* --- kernel calls --- *)
  | Safecopy : {
      dir : [ `Read | `Write ];
      owner : Endpoint.t;
      grant : int;
      grant_off : int;
      local_addr : int;
      len : int;
    }
      -> (unit, Errno.t) result syscall
  | Grant_create : {
      for_ : Endpoint.t;
      base : int;
      len : int;
      access : grant_access;
    }
      -> (int, Errno.t) result syscall
  | Grant_revoke : int -> (unit, Errno.t) result syscall
  | Devio_in : int -> (int, Errno.t) result syscall
  | Devio_out : int * int -> (unit, Errno.t) result syscall
  | Irq_register : int -> (unit, Errno.t) result syscall
  | Alarm : int -> (unit, Errno.t) result syscall
  | Iommu_map : int -> (int, Errno.t) result syscall
  | Iommu_unmap : int -> (unit, Errno.t) result syscall
  | Proc_create : {
      name : string;
      program : string;
      args : string list;
      priv : Privilege.t;
      mem_kb : int;
    }
      -> (Endpoint.t, Errno.t) result syscall
  | Proc_kill : Endpoint.t * Signal.t -> (unit, Errno.t) result syscall
  | Reap_exit : (Endpoint.t * string * Status.exit_status) option syscall
  | Privctl : Endpoint.t * Privilege.t -> (unit, Errno.t) result syscall

type _ Effect.t += Sys : 'a syscall -> 'a Effect.t

(* Raised inside a fiber to unwind it when the kernel kills the
   process; the kernel's fiber wrapper translates it back into the
   carried exit status.  Process code must never catch it. *)
exception Killed_exn of Status.exit_status

(* Raised by [Api.panic]. *)
exception Panic_exn of string

(* The name under which each kernel call is privilege-checked, or
   [None] when the operation is unrestricted. *)
let kcall_name : type a. a syscall -> string option = function
  | Safecopy _ -> Some "safecopy"
  | Grant_create _ -> Some "grant_create"
  | Grant_revoke _ -> Some "grant_revoke"
  | Devio_in _ | Devio_out _ -> Some "devio"
  | Irq_register _ -> Some "irqctl"
  | Alarm _ -> Some "alarm"
  | Iommu_map _ | Iommu_unmap _ -> Some "iommu_map"
  | Proc_create _ -> Some "proc_create"
  | Proc_kill _ -> Some "proc_kill"
  | Reap_exit -> Some "reap_exit"
  | Privctl _ -> Some "privctl"
  | Send _ | Asend _ | Receive _ | Sendrec _ | Notify _ | Sleep _ | Yield _ | Now | Self
  | My_memory | My_args | My_name | Random _ | Exit _ | Obs_emit _ | Metric_add _
  | Metric_observe _ | Metric_set _ | Metric_counter _ | Metric_gauge _ | Metric_histogram _ ->
      None

(* Convenience wrappers used by all process code. *)
module Api = struct
  let perform op = Effect.perform (Sys op)

  let send dst msg = perform (Send (dst, msg))
  let asend dst msg = perform (Asend (dst, msg))
  let receive filter = perform (Receive filter)
  let sendrec dst msg = perform (Sendrec (dst, msg))
  let notify dst kind = perform (Notify (dst, kind))
  let sleep d = perform (Sleep d)
  let yield ?(cost = 1) () = perform (Yield cost)
  let now () = perform Now
  let self () = perform Self
  let memory () = perform My_memory
  let args () = perform My_args
  let name () = perform My_name
  let random n = perform (Random n)

  let exit status : 'a =
    perform (Exit status);
    assert false

  let panic msg : 'a = raise (Panic_exn msg)
  let emit ?(level = Event.Info) subsystem payload = perform (Obs_emit (level, subsystem, payload))

  let trace subsystem fmt =
    Format.kasprintf (fun text -> emit subsystem (Event.Log { text })) fmt

  let metric_add name n = perform (Metric_add (name, n))
  let metric_incr name = metric_add name 1
  let metric_observe name v = perform (Metric_observe (name, v))
  let metric_set name v = perform (Metric_set (name, v))
  let metric_counter name = perform (Metric_counter name)
  let metric_gauge name = perform (Metric_gauge name)
  let metric_histogram name = perform (Metric_histogram name)

  let safecopy_from ~owner ~grant ~grant_off ~local_addr ~len =
    perform (Safecopy { dir = `Read; owner; grant; grant_off; local_addr; len })

  let safecopy_to ~owner ~grant ~grant_off ~local_addr ~len =
    perform (Safecopy { dir = `Write; owner; grant; grant_off; local_addr; len })

  let grant_create ~for_ ~base ~len ~access = perform (Grant_create { for_; base; len; access })
  let grant_revoke id = perform (Grant_revoke id)
  let devio_in port = perform (Devio_in port)
  let devio_out port value = perform (Devio_out (port, value))
  let irq_register line = perform (Irq_register line)
  let alarm delay = perform (Alarm delay)
  let iommu_map grant = perform (Iommu_map grant)
  let iommu_unmap handle = perform (Iommu_unmap handle)

  let proc_create ~name ~program ~args ~priv ~mem_kb =
    perform (Proc_create { name; program; args; priv; mem_kb })

  let proc_kill target signal = perform (Proc_kill (target, signal))
  let reap_exit () = perform Reap_exit
  let privctl target priv = perform (Privctl (target, priv))

  (* Fail-fast helpers for code paths where an IPC error is a bug in
     the caller (e.g. boot-time setup). *)
  let send_exn dst msg =
    match send dst msg with
    | Ok () -> ()
    | Error e -> panic (Format.asprintf "send to %a failed: %a" Endpoint.pp dst Errno.pp e)

  let sendrec_exn dst msg =
    match sendrec dst msg with
    | Ok rx -> rx
    | Error e -> panic (Format.asprintf "sendrec to %a failed: %a" Endpoint.pp dst Errno.pp e)

  let receive_exn filter =
    match receive filter with
    | Ok rx -> rx
    | Error e -> panic (Format.asprintf "receive failed: %a" Errno.pp e)
end
