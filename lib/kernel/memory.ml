exception Fault of { addr : int; len : int }

type t = { data : Bytes.t }

let create ~size = { data = Bytes.make size '\000' }
let size t = Bytes.length t.data

let check t ~addr ~len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.data then raise (Fault { addr; len })

let read t ~addr ~len =
  check t ~addr ~len;
  Bytes.sub t.data addr len

let write t ~addr src =
  let len = Bytes.length src in
  check t ~addr ~len;
  Bytes.blit src 0 t.data addr len

let blit_out t ~addr ~dst ~dst_off ~len =
  check t ~addr ~len;
  Bytes.blit t.data addr dst dst_off len

let blit_in t ~addr ~src ~src_off ~len =
  check t ~addr ~len;
  Bytes.blit src src_off t.data addr len

let copy ~src ~src_addr ~dst ~dst_addr ~len =
  check src ~addr:src_addr ~len;
  check dst ~addr:dst_addr ~len;
  Bytes.blit src.data src_addr dst.data dst_addr len

let get_u8 t addr =
  check t ~addr ~len:1;
  Char.code (Bytes.get t.data addr)

let set_u8 t addr v =
  check t ~addr ~len:1;
  Bytes.set t.data addr (Char.chr (v land 0xFF))

let get_u32 t addr =
  check t ~addr ~len:4;
  Char.code (Bytes.get t.data addr)
  lor (Char.code (Bytes.get t.data (addr + 1)) lsl 8)
  lor (Char.code (Bytes.get t.data (addr + 2)) lsl 16)
  lor (Char.code (Bytes.get t.data (addr + 3)) lsl 24)

let set_u32 t addr v =
  check t ~addr ~len:4;
  Bytes.set t.data addr (Char.chr (v land 0xFF));
  Bytes.set t.data (addr + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set t.data (addr + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set t.data (addr + 3) (Char.chr ((v lsr 24) land 0xFF))
