module Engine = Resilix_sim.Engine
module Trace = Resilix_sim.Trace
module Rng = Resilix_sim.Rng
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Status = Resilix_proto.Status
module Signal = Resilix_proto.Signal
module Privilege = Resilix_proto.Privilege
module Wellknown = Resilix_proto.Wellknown
module Event = Resilix_obs.Event
module Metrics = Resilix_obs.Metrics

type costs = {
  syscall : int;
  ipc : int;
  notify : int;
  copy_base : int;
  copy_bytes_per_us : int;
  devio : int;
  spawn : int;
}

let default_costs =
  { syscall = 1; ipc = 2; notify = 1; copy_base = 1; copy_bytes_per_us = 2000; devio = 2; spawn = 3000 }

(* Hot-path handles into the metric registry: the kernel bumps these
   on every IPC/copy/interrupt, so it resolves each counter once at
   creation instead of by name per operation. *)
type counters = {
  c_messages : Metrics.counter;
  c_notifications : Metrics.counter;
  c_async_messages : Metrics.counter;
  c_safecopies : Metrics.counter;
  c_safecopy_bytes : Metrics.counter;
  c_devios : Metrics.counter;
  c_irqs : Metrics.counter;
  c_irqs_dropped : Metrics.counter;
  c_spawns : Metrics.counter;
  c_kills : Metrics.counter;
  c_exits : Metrics.counter;
}

module String_set = Set.Make (String)

type grant = { for_ : Endpoint.t; base : int; len : int; access : Sysif.grant_access }

type pstate =
  | Running
  | Runnable of { event : Engine.handle; abort : exn -> unit }
  | Recv_wait of {
      filter : Sysif.source;
      for_reply : bool;
          (* true while in the receive phase of sendrec: notifications
             and async messages must queue rather than intercept the
             reply (MINIX's MF_REPLY_PEND) *)
      resume : (Sysif.rx, Errno.t) result -> unit;
      abort : exn -> unit;
    }
  | Send_wait of send_wait
  | Sleep_wait of { event : Engine.handle; abort : exn -> unit }
  | Dead

and send_wait = {
  dst_slot : int;
  msg : Message.t;
  completion : completion;
  sw_abort : exn -> unit;
}

and completion =
  | C_send of ((unit, Errno.t) result -> unit)
  | C_sendrec of ((Sysif.rx, Errno.t) result -> unit)

type proc = {
  slot : int;
  gen : int;
  p_name : string;
  p_args : string list;
  mutable priv : Privilege.t;
  memory : Memory.t;
  mutable state : pstate;
  mutable kill_pending : Status.exit_status option;
  mutable pending_notifies : (Endpoint.t * Message.notify_kind) list; (* FIFO *)
  async_in : (Endpoint.t * Message.t) Queue.t;
  senders : int Queue.t; (* slots blocked sending to me *)
  grants : (int, grant) Hashtbl.t;
  mutable next_grant : int;
  mutable alarm : Engine.handle option;
  mutable peers : String_set.t; (* names we received messages from: implicit reply right *)
}

type iommu_entry = { owner_slot : int; owner_gen : int; grant_id : int }

type t = {
  engine : Engine.t;
  trace : Trace.t;
  rng : Rng.t;
  costs : costs;
  mutable procs : proc option array;
  mutable slot_gen : int array; (* next generation per slot *)
  programs : (string, unit -> unit) Hashtbl.t;
  mutable io_handler : [ `In of int | `Out of int * int ] -> (int, Errno.t) result;
  irq_table : (int, int) Hashtbl.t; (* line -> slot *)
  iommu : (int, iommu_entry) Hashtbl.t;
  mutable next_dma_handle : int;
  exit_queue : (Endpoint.t * string * Status.exit_status) Queue.t;
  metrics : Metrics.t;
  ctr : counters;
}

let create ~engine ~trace ~rng ?(costs = default_costs) ?metrics () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  {
    engine;
    trace;
    rng;
    costs;
    procs = Array.make 64 None;
    slot_gen = Array.make 64 0;
    programs = Hashtbl.create 32;
    io_handler = (fun _ -> Error Errno.E_io);
    irq_table = Hashtbl.create 16;
    iommu = Hashtbl.create 16;
    next_dma_handle = 1;
    exit_queue = Queue.create ();
    metrics;
    ctr =
      {
        c_messages = Metrics.counter metrics "kernel.ipc.messages";
        c_notifications = Metrics.counter metrics "kernel.ipc.notifications";
        c_async_messages = Metrics.counter metrics "kernel.ipc.async_messages";
        c_safecopies = Metrics.counter metrics "kernel.safecopy.calls";
        c_safecopy_bytes = Metrics.counter metrics "kernel.safecopy.bytes";
        c_devios = Metrics.counter metrics "kernel.devio.calls";
        c_irqs = Metrics.counter metrics "kernel.irq.raised";
        c_irqs_dropped = Metrics.counter metrics "kernel.irq.dropped";
        c_spawns = Metrics.counter metrics "kernel.proc.spawns";
        c_kills = Metrics.counter metrics "kernel.proc.kills";
        c_exits = Metrics.counter metrics "kernel.proc.exits";
      };
  }

let engine t = t.engine
let trace t = t.trace
let metrics t = t.metrics
let set_io_handler t handler = t.io_handler <- handler
let register_program t key main = Hashtbl.replace t.programs key main
let has_program t key = Hashtbl.mem t.programs key

let log t fmt = Trace.emit t.trace ~now:(Engine.now t.engine) Trace.Debug "kernel" fmt
let kemit t ?level payload = Trace.emit_event t.trace ~now:(Engine.now t.engine) ?level "kernel" payload

let proc_of_slot t slot =
  if slot < 0 || slot >= Array.length t.procs then None else t.procs.(slot)

(* Live process named by [ep], checking the generation: a stale
   endpoint (the process died and possibly got replaced) is
   distinguishable from a never-valid one. *)
type ep_lookup = Lookup_ok of proc | Lookup_stale | Lookup_bad

let lookup_ep t (ep : Endpoint.t) =
  if ep.Endpoint.slot < 0 || ep.Endpoint.slot >= Array.length t.procs then Lookup_bad
  else
    match t.procs.(ep.Endpoint.slot) with
    | Some p when p.gen = ep.Endpoint.gen && p.state <> Dead -> Lookup_ok p
    | Some _ | None ->
        (* Any generation that was ever allocated for this slot but is
           no longer live names a dead (possibly replaced) process. *)
        if ep.Endpoint.gen <= t.slot_gen.(ep.Endpoint.slot) && ep.Endpoint.gen > 0 then Lookup_stale
        else Lookup_bad

let ep_of_proc p = Endpoint.make ~slot:p.slot ~gen:p.gen
let alive t ep = match lookup_ep t ep with Lookup_ok _ -> true | Lookup_stale | Lookup_bad -> false

let find_by_name t name =
  let found = ref None in
  Array.iter
    (fun p ->
      match p with
      | Some p when p.state <> Dead && String.equal p.p_name name && !found = None ->
          found := Some (ep_of_proc p)
      | Some _ | None -> ())
    t.procs;
  !found

let proc_memory t ep = match lookup_ep t ep with Lookup_ok p -> Some p.memory | _ -> None
let proc_name t ep = match lookup_ep t ep with Lookup_ok p -> Some p.p_name | _ -> None

let process_count t =
  Array.fold_left (fun acc p -> match p with Some p when p.state <> Dead -> acc + 1 | _ -> acc) 0 t.procs

(* ------------------------------------------------------------------ *)
(* Scheduling primitives                                               *)
(* ------------------------------------------------------------------ *)

(* Transition [proc] to Runnable: after [cost] microseconds either the
   pending kill fires (unwinding the fiber) or [go] resumes it. *)
let make_runnable t proc ~cost ~abort go =
  let event =
    Engine.schedule t.engine ~after:cost (fun () ->
        match proc.kill_pending with
        | Some status ->
            proc.kill_pending <- None;
            proc.state <- Running;
            abort (Sysif.Killed_exn status)
        | None ->
            proc.state <- Running;
            go ())
  in
  proc.state <- Runnable { event; abort }

(* Wake a process blocked in Recv_wait with result [v]. *)
let wake_receiver t proc ~cost v =
  match proc.state with
  | Recv_wait { resume; abort; _ } -> make_runnable t proc ~cost ~abort (fun () -> resume v)
  | Running | Runnable _ | Send_wait _ | Sleep_wait _ | Dead ->
      invalid_arg "wake_receiver: process is not receiving"

(* Does a Recv_wait filter accept a message/notification from [src]? *)
let filter_accepts filter (src : Endpoint.t) =
  match filter with Sysif.Any -> true | Sysif.From e -> Endpoint.equal e src

(* ------------------------------------------------------------------ *)
(* Process death                                                       *)
(* ------------------------------------------------------------------ *)

(* Deliver a notification; queues (with dedup) if the target is not
   receiving.  Never blocks. *)
let rec deliver_notify t ~src ~(dst : proc) kind =
  Metrics.incr t.ctr.c_notifications;
  match dst.state with
  | Recv_wait { filter; for_reply = false; _ } when filter_accepts filter src ->
      wake_receiver t dst ~cost:t.costs.notify (Ok (Sysif.Rx_notify { src; kind }))
  | Running | Runnable _ | Recv_wait _ | Send_wait _ | Sleep_wait _ ->
      let already =
        List.exists
          (fun (s, k) -> Endpoint.equal s src && Message.equal_notify_kind k kind)
          dst.pending_notifies
      in
      if not already then dst.pending_notifies <- dst.pending_notifies @ [ (src, kind) ]
  | Dead -> ()

(* Full cleanup when a process terminates for any reason.  This is the
   only path to [Dead]. *)
and finalize t proc status =
  if proc.state <> Dead then begin
    proc.state <- Dead;
    Metrics.incr t.ctr.c_exits;
    let ep = ep_of_proc proc in
    kemit t (Event.Exit { ep; name = proc.p_name; status });
    (* Cancel timers. *)
    (match proc.alarm with Some h -> Engine.cancel h | None -> ());
    proc.alarm <- None;
    (* Release hardware resources. *)
    let lines = Hashtbl.fold (fun line slot acc -> if slot = proc.slot then line :: acc else acc) t.irq_table [] in
    List.iter (fun line -> Hashtbl.remove t.irq_table line) lines;
    let dmas =
      Hashtbl.fold (fun h e acc -> if e.owner_slot = proc.slot then h :: acc else acc) t.iommu []
    in
    List.iter (fun h -> Hashtbl.remove t.iommu h) dmas;
    Hashtbl.reset proc.grants;
    (* Abort rendezvous partners: anyone sending to us or waiting for a
       message from us gets E_dead_src_dst — this is how a file server
       notices that its disk driver died mid-request (Sec. 6.2). *)
    Array.iter
      (fun other ->
        match other with
        | Some other when other.slot <> proc.slot -> begin
            match other.state with
            | Send_wait sw when sw.dst_slot = proc.slot -> begin
                match sw.completion with
                | C_send resume ->
                    make_runnable t other ~cost:t.costs.ipc ~abort:sw.sw_abort (fun () ->
                        resume (Error Errno.E_dead_src_dst))
                | C_sendrec resume ->
                    make_runnable t other ~cost:t.costs.ipc ~abort:sw.sw_abort (fun () ->
                        resume (Error Errno.E_dead_src_dst))
              end
            | Recv_wait { filter = Sysif.From e; _ } when Endpoint.equal e ep ->
                wake_receiver t other ~cost:t.costs.ipc (Error Errno.E_dead_src_dst)
            | Running | Runnable _ | Recv_wait _ | Send_wait _ | Sleep_wait _ | Dead -> ()
          end
        | Some _ | None -> ())
      t.procs;
    (* Tell the process manager (which forwards SIGCHLD to RS). *)
    Queue.push (ep, proc.p_name, status) t.exit_queue;
    (match proc_of_slot t Wellknown.pm.Endpoint.slot with
    | Some pm when pm.state <> Dead && pm.slot <> proc.slot ->
        deliver_notify t ~src:Wellknown.hardware ~dst:pm (Message.N_sig Signal.Sig_chld)
    | Some _ | None -> ())
  end

let status_of_exn = function
  | Sysif.Killed_exn status -> status
  | Sysif.Panic_exn msg -> Status.Panicked msg
  | Memory.Fault _ -> Status.Killed Signal.Sig_segv
  | e -> Status.Panicked (Printexc.to_string e)

(* Kill a process from kernel context. *)
let do_kill t proc status =
  Metrics.incr t.ctr.c_kills;
  match proc.state with
  | Dead -> ()
  | Running ->
      (* Only reachable for self-directed kills: the fiber is on the
         stack right now, so unwind at the next syscall boundary. *)
      proc.kill_pending <- Some status
  | Runnable { event; abort } ->
      Engine.cancel event;
      abort (Sysif.Killed_exn status)
  | Sleep_wait { event; abort } ->
      Engine.cancel event;
      abort (Sysif.Killed_exn status)
  | Recv_wait { abort; _ } -> abort (Sysif.Killed_exn status)
  | Send_wait { sw_abort; _ } -> sw_abort (Sysif.Killed_exn status)

(* ------------------------------------------------------------------ *)
(* Syscall implementation                                              *)
(* ------------------------------------------------------------------ *)

let ipc_allowed t proc (dst : proc) =
  ignore t;
  Privilege.allows proc.priv.Privilege.ipc_to dst.p_name || String_set.mem dst.p_name proc.peers

(* Attempt to deliver [msg] from [src_proc] to [dst]; returns true when
   the destination was receiving and the rendezvous completed. *)
let try_deliver t ~(src_proc : proc) ~(dst : proc) ?(async = false) msg =
  match dst.state with
  | Recv_wait { for_reply = true; _ } when async ->
      (* An async message never stands in for a sendrec reply. *)
      false
  | Recv_wait { filter; _ } when filter_accepts filter (ep_of_proc src_proc) ->
      Metrics.incr t.ctr.c_messages;
      (* [add] on a persistent set allocates even when the element is
         already present; after the first exchange it always is, so
         guard with [mem] to keep the per-message path allocation-free. *)
      if not (String_set.mem src_proc.p_name dst.peers) then
        dst.peers <- String_set.add src_proc.p_name dst.peers;
      wake_receiver t dst ~cost:t.costs.ipc
        (Ok (Sysif.Rx_msg { src = ep_of_proc src_proc; body = msg }));
      true
  | Running | Runnable _ | Recv_wait _ | Send_wait _ | Sleep_wait _ | Dead -> false

(* Find a queued sender acceptable to [filter]; lazily drops stale
   queue entries (senders that died or were already serviced). *)
let pop_matching_sender t (receiver : proc) filter =
  let rec scan rejected =
    match Queue.take_opt receiver.senders with
    | None ->
        (* restore rejected entries in order *)
        List.iter (fun s -> Queue.push s receiver.senders) (List.rev rejected);
        None
    | Some slot -> (
        match proc_of_slot t slot with
        | Some sender -> (
            match sender.state with
            | Send_wait sw when sw.dst_slot = receiver.slot ->
                if filter_accepts filter (ep_of_proc sender) then begin
                  List.iter (fun s -> Queue.push s receiver.senders) (List.rev rejected);
                  Some (sender, sw)
                end
                else scan (slot :: rejected)
            | _ -> scan rejected (* stale entry *))
        | None -> scan rejected)
  in
  (* Preserve overall FIFO order for the entries we skip. *)
  let result = scan [] in
  result

let take_pending_notify (proc : proc) filter =
  let rec split acc = function
    | [] -> None
    | ((src, _kind) as hd) :: tl ->
        if filter_accepts filter src then begin
          proc.pending_notifies <- List.rev_append acc tl;
          Some hd
        end
        else split (hd :: acc) tl
  in
  split [] proc.pending_notifies

let take_async (proc : proc) filter =
  (* The async queue is small; scan in FIFO order for a match. *)
  let n = Queue.length proc.async_in in
  let rec scan i found =
    if i >= n then found
    else
      let ((src, _msg) as entry) = Queue.pop proc.async_in in
      match found with
      | None when filter_accepts filter src -> scan (i + 1) (Some entry)
      | _ ->
          Queue.push entry proc.async_in;
          scan (i + 1) found
  in
  scan 0 None

(* Complete a receive for [receiver], which is about to block (or is
   blocked): returns the rx if something is deliverable right now. *)
let try_complete_receive t (receiver : proc) filter =
  match take_pending_notify receiver filter with
  | Some (src, kind) -> Some (Sysif.Rx_notify { src; kind })
  | None -> (
      match pop_matching_sender t receiver filter with
      | Some (sender, sw) ->
          Metrics.incr t.ctr.c_messages;
          if not (String_set.mem sender.p_name receiver.peers) then
            receiver.peers <- String_set.add sender.p_name receiver.peers;
          let sender_ep = ep_of_proc sender in
          (match sw.completion with
          | C_send resume ->
              make_runnable t sender ~cost:t.costs.ipc ~abort:sw.sw_abort (fun () -> resume (Ok ()))
          | C_sendrec resume ->
              (* Sender now waits for our reply. *)
              sender.state <-
                Recv_wait
                  {
                    filter = Sysif.From (ep_of_proc receiver);
                    for_reply = true;
                    resume;
                    abort = sw.sw_abort;
                  });
          Some (Sysif.Rx_msg { src = sender_ep; body = sw.msg })
      | None -> (
          match take_async receiver filter with
          | Some (src, msg) ->
              Metrics.incr t.ctr.c_async_messages;
              receiver.peers <-
                (match proc_of_slot t src.Endpoint.slot with
                | Some p when p.gen = src.Endpoint.gen -> String_set.add p.p_name receiver.peers
                | Some _ | None -> receiver.peers);
              Some (Sysif.Rx_msg { src; body = msg })
          | None -> None))

let do_safecopy t (caller : proc) ~dir ~owner ~grant_id ~grant_off ~local_addr ~len =
  match lookup_ep t owner with
  | Lookup_stale ->
      kemit t ~level:Trace.Warn
        (Event.Safecopy
           { caller = ep_of_proc caller; owner; bytes = len; errno = Some Errno.E_dead_src_dst });
      Error Errno.E_dead_src_dst
  | Lookup_bad -> Error Errno.E_bad_endpoint
  | Lookup_ok owner_proc -> (
      match Hashtbl.find_opt owner_proc.grants grant_id with
      | None -> Error Errno.E_no_perm
      | Some g -> (
          let caller_ep = ep_of_proc caller in
          if not (Endpoint.equal g.for_ caller_ep) then Error Errno.E_no_perm
          else if grant_off < 0 || len < 0 || grant_off + len > g.len then Error Errno.E_range
          else
            let access_ok =
              match (dir, g.access) with
              | `Read, (Sysif.Read_only | Sysif.Read_write) -> true
              | `Write, (Sysif.Write_only | Sysif.Read_write) -> true
              | `Read, Sysif.Write_only | `Write, Sysif.Read_only -> false
            in
            if not access_ok then Error Errno.E_no_perm
            else
              try
                Metrics.incr t.ctr.c_safecopies;
                Metrics.add t.ctr.c_safecopy_bytes len;
                (match dir with
                | `Read ->
                    Memory.copy ~src:owner_proc.memory ~src_addr:(g.base + grant_off)
                      ~dst:caller.memory ~dst_addr:local_addr ~len
                | `Write ->
                    Memory.copy ~src:caller.memory ~src_addr:local_addr ~dst:owner_proc.memory
                      ~dst_addr:(g.base + grant_off) ~len);
                Ok ()
              with Memory.Fault _ -> Error Errno.E_range))

(* Start a fiber for [proc] running [body], scheduled [delay] from now. *)
let rec start_fiber t proc ~delay body =
  let open Effect.Deep in
  let rec handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> finalize t proc (Status.Exited 0));
      exnc = (fun e -> finalize t proc (status_of_exn e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sysif.Sys op -> Some (fun (k : (a, _) continuation) -> handle_syscall t proc op k)
          | _ -> None);
    }
  and run () = match_with body () handler in
  let abort e =
    (* The fiber never started; there is no continuation to unwind. *)
    finalize t proc (status_of_exn e)
  in
  make_runnable t proc ~cost:delay ~abort run

(* The kernel half of every syscall.  [k] resumes the calling fiber. *)
and handle_syscall : type a. t -> proc -> a Sysif.syscall -> (a, unit) Effect.Deep.continuation -> unit =
 fun t proc op k ->
  let open Effect.Deep in
  let self_ep = ep_of_proc proc in
  (* Immediate (free) operations resume synchronously. *)
  let ret_now (v : a) = continue k v in
  (* Scheduled operations resume after [cost]. *)
  let ret ?(cost = t.costs.syscall) (v : a) =
    let abort e = discontinue k e in
    make_runnable t proc ~cost ~abort (fun () -> continue k v)
  in
  (* Privilege gate for kernel calls. *)
  let kcall_denied () =
    match Sysif.kcall_name op with
    | None -> false
    | Some name -> not (Privilege.allows proc.priv.Privilege.kcalls name)
  in
  match op with
  | Sysif.Now -> ret_now (Engine.now t.engine)
  | Sysif.Self -> ret_now self_ep
  | Sysif.My_memory -> ret_now proc.memory
  | Sysif.My_args -> ret_now proc.p_args
  | Sysif.My_name -> ret_now proc.p_name
  | Sysif.Random n -> ret_now (Rng.int t.rng n)
  | Sysif.Obs_emit (level, subsystem, payload) ->
      Trace.emit_event t.trace ~now:(Engine.now t.engine) ~level subsystem payload;
      ret_now ()
  | Sysif.Metric_add (name, n) ->
      Metrics.add_named t.metrics name n;
      ret_now ()
  | Sysif.Metric_observe (name, v) ->
      Metrics.observe_named t.metrics name v;
      ret_now ()
  | Sysif.Metric_set (name, v) ->
      Metrics.set_named t.metrics name v;
      ret_now ()
  | Sysif.Metric_counter name -> ret_now (Metrics.counter t.metrics name)
  | Sysif.Metric_gauge name -> ret_now (Metrics.gauge t.metrics name)
  | Sysif.Metric_histogram name -> ret_now (Metrics.histogram t.metrics name)
  | Sysif.Yield cost -> ret ~cost ()
  | Sysif.Sleep d ->
      let abort e = discontinue k e in
      let event = Engine.schedule t.engine ~after:(max 0 d) (fun () ->
          match proc.kill_pending with
          | Some status ->
              proc.kill_pending <- None;
              proc.state <- Running;
              abort (Sysif.Killed_exn status)
          | None ->
              proc.state <- Running;
              continue k ())
      in
      proc.state <- Sleep_wait { event; abort }
  | Sysif.Exit status -> discontinue k (Sysif.Killed_exn status)
  | Sysif.Send (dst, msg) -> begin
      match lookup_ep t dst with
      | Lookup_stale ->
          kemit t ~level:Trace.Warn
            (Event.Ipc
               { kind = Event.Send; src = self_ep; dst; errno = Some Errno.E_dead_src_dst });
          ret (Error Errno.E_dead_src_dst)
      | Lookup_bad -> ret (Error Errno.E_bad_endpoint)
      | Lookup_ok dst_proc ->
          if dst_proc.slot = proc.slot then ret (Error Errno.E_inval)
          else if not (ipc_allowed t proc dst_proc) then ret (Error Errno.E_no_perm)
          else if try_deliver t ~src_proc:proc ~dst:dst_proc msg then ret ~cost:t.costs.ipc (Ok ())
          else begin
            Queue.push proc.slot dst_proc.senders;
            proc.state <-
              Send_wait
                {
                  dst_slot = dst_proc.slot;
                  msg;
                  completion = C_send (fun r -> continue k r);
                  sw_abort = (fun e -> discontinue k e);
                }
          end
    end
  | Sysif.Sendrec (dst, msg) -> begin
      match lookup_ep t dst with
      | Lookup_stale ->
          kemit t ~level:Trace.Warn
            (Event.Ipc
               { kind = Event.Sendrec; src = self_ep; dst; errno = Some Errno.E_dead_src_dst });
          ret (Error Errno.E_dead_src_dst)
      | Lookup_bad -> ret (Error Errno.E_bad_endpoint)
      | Lookup_ok dst_proc ->
          if dst_proc.slot = proc.slot then ret (Error Errno.E_inval)
          else if not (ipc_allowed t proc dst_proc) then ret (Error Errno.E_no_perm)
          else if try_deliver t ~src_proc:proc ~dst:dst_proc msg then
            (* Message handed over; now wait for the reply. *)
            proc.state <-
              Recv_wait
                {
                  filter = Sysif.From (ep_of_proc dst_proc);
                  for_reply = true;
                  resume = (fun r -> continue k r);
                  abort = (fun e -> discontinue k e);
                }
          else begin
            Queue.push proc.slot dst_proc.senders;
            proc.state <-
              Send_wait
                {
                  dst_slot = dst_proc.slot;
                  msg;
                  completion = C_sendrec (fun r -> continue k r);
                  sw_abort = (fun e -> discontinue k e);
                }
          end
    end
  | Sysif.Asend (dst, msg) -> begin
      match lookup_ep t dst with
      | Lookup_stale ->
          kemit t ~level:Trace.Warn
            (Event.Ipc
               { kind = Event.Async_send; src = self_ep; dst; errno = Some Errno.E_dead_src_dst });
          ret (Error Errno.E_dead_src_dst)
      | Lookup_bad -> ret (Error Errno.E_bad_endpoint)
      | Lookup_ok dst_proc ->
          if not (ipc_allowed t proc dst_proc) then ret (Error Errno.E_no_perm)
          else if try_deliver t ~src_proc:proc ~dst:dst_proc msg then ret ~cost:t.costs.ipc (Ok ())
          else begin
            Metrics.incr t.ctr.c_async_messages;
            Queue.push (self_ep, msg) dst_proc.async_in;
            ret (Ok ())
          end
    end
  | Sysif.Notify (dst, kind) -> begin
      match lookup_ep t dst with
      | Lookup_stale -> ret (Error Errno.E_dead_src_dst)
      | Lookup_bad -> ret (Error Errno.E_bad_endpoint)
      | Lookup_ok dst_proc ->
          if not (ipc_allowed t proc dst_proc) then ret (Error Errno.E_no_perm)
          else begin
            deliver_notify t ~src:self_ep ~dst:dst_proc kind;
            ret ~cost:t.costs.notify (Ok ())
          end
    end
  | Sysif.Receive filter -> begin
      (* Fail fast when waiting on a specific endpoint that is gone. *)
      let stale_source =
        match filter with
        | Sysif.Any -> false
        | Sysif.From e -> (
            (* The hardware pseudo-endpoint is always valid. *)
            if Endpoint.equal e Wellknown.hardware then false
            else match lookup_ep t e with Lookup_ok _ -> false | Lookup_stale | Lookup_bad -> true)
      in
      match try_complete_receive t proc filter with
      | Some rx -> ret ~cost:t.costs.ipc (Ok rx)
      | None ->
          if stale_source then ret (Error Errno.E_dead_src_dst)
          else
            proc.state <-
              Recv_wait
                {
                  filter;
                  for_reply = false;
                  resume = (fun r -> continue k r);
                  abort = (fun e -> discontinue k e);
                }
    end
  | Sysif.Safecopy { dir; owner; grant; grant_off; local_addr; len } ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else
        let cost = t.costs.copy_base + (len / t.costs.copy_bytes_per_us) in
        ret ~cost (do_safecopy t proc ~dir ~owner ~grant_id:grant ~grant_off ~local_addr ~len)
  | Sysif.Grant_create { for_; base; len; access } ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else if base < 0 || len < 0 || base + len > Memory.size proc.memory then
        ret (Error Errno.E_range)
      else begin
        let id = proc.next_grant in
        proc.next_grant <- proc.next_grant + 1;
        Hashtbl.replace proc.grants id { for_; base; len; access };
        ret (Ok id)
      end
  | Sysif.Grant_revoke id ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else begin
        Hashtbl.remove proc.grants id;
        ret (Ok ())
      end
  | Sysif.Devio_in port ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else if not (Privilege.allows_port proc.priv port) then ret (Error Errno.E_no_perm)
      else begin
        Metrics.incr t.ctr.c_devios;
        ret ~cost:t.costs.devio (t.io_handler (`In port))
      end
  | Sysif.Devio_out (port, value) ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else if not (Privilege.allows_port proc.priv port) then ret (Error Errno.E_no_perm)
      else begin
        Metrics.incr t.ctr.c_devios;
        match t.io_handler (`Out (port, value)) with
        | Ok _ -> ret ~cost:t.costs.devio (Ok ())
        | Error e -> ret ~cost:t.costs.devio (Error e)
      end
  | Sysif.Irq_register line ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else if not (Privilege.allows_irq proc.priv line) then ret (Error Errno.E_no_perm)
      else begin
        Hashtbl.replace t.irq_table line proc.slot;
        ret (Ok ())
      end
  | Sysif.Alarm delay ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else begin
        (match proc.alarm with Some h -> Engine.cancel h | None -> ());
        proc.alarm <- None;
        if delay > 0 then
          proc.alarm <-
            Some
              (Engine.schedule t.engine ~after:delay (fun () ->
                   proc.alarm <- None;
                   if proc.state <> Dead then
                     deliver_notify t ~src:Wellknown.hardware ~dst:proc Message.N_alarm));
        ret (Ok ())
      end
  | Sysif.Iommu_map grant_id ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else begin
        match Hashtbl.find_opt proc.grants grant_id with
        | None -> ret (Error Errno.E_no_perm)
        | Some g ->
            if not (Endpoint.equal g.for_ Wellknown.hardware) then ret (Error Errno.E_no_perm)
            else begin
              let handle = t.next_dma_handle in
              t.next_dma_handle <- t.next_dma_handle + 1;
              Hashtbl.replace t.iommu handle
                { owner_slot = proc.slot; owner_gen = proc.gen; grant_id };
              ret (Ok handle)
            end
      end
  | Sysif.Iommu_unmap handle ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else begin
        (match Hashtbl.find_opt t.iommu handle with
        | Some e when e.owner_slot = proc.slot -> Hashtbl.remove t.iommu handle
        | Some _ | None -> ());
        ret (Ok ())
      end
  | Sysif.Proc_create { name; program; args; priv; mem_kb } ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else ret ~cost:t.costs.spawn (spawn_dynamic t ~name ~program ~args ~priv ~mem_kb)
  | Sysif.Proc_kill (target, signal) ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else begin
        match lookup_ep t target with
        | Lookup_stale -> ret (Error Errno.E_dead_src_dst)
        | Lookup_bad -> ret (Error Errno.E_bad_endpoint)
        | Lookup_ok target_proc -> (
            match signal with
            | Signal.Sig_kill | Signal.Sig_segv | Signal.Sig_ill ->
                do_kill t target_proc (Status.Killed signal);
                ret (Ok ())
            | Signal.Sig_term | Signal.Sig_chld ->
                deliver_notify t ~src:self_ep ~dst:target_proc (Message.N_sig signal);
                ret (Ok ()))
      end
  | Sysif.Reap_exit ->
      if kcall_denied () then ret None else ret (Queue.take_opt t.exit_queue)
  | Sysif.Privctl (target, priv) ->
      if kcall_denied () then ret (Error Errno.E_no_perm)
      else begin
        match lookup_ep t target with
        | Lookup_stale -> ret (Error Errno.E_dead_src_dst)
        | Lookup_bad -> ret (Error Errno.E_bad_endpoint)
        | Lookup_ok target_proc ->
            target_proc.priv <- priv;
            ret (Ok ())
      end

(* ------------------------------------------------------------------ *)
(* Process creation                                                    *)
(* ------------------------------------------------------------------ *)

and alloc_slot t =
  let n = Array.length t.procs in
  let rec scan i =
    if i >= n then None
    else
      match t.procs.(i) with
      | None -> Some i
      | Some p when p.state = Dead -> Some i
      | Some _ -> scan (i + 1)
  in
  match scan Wellknown.first_dynamic_slot with
  | Some i -> i
  | None ->
      let bigger = Array.make (n * 2) None in
      Array.blit t.procs 0 bigger 0 n;
      t.procs <- bigger;
      let gens = Array.make (n * 2) 0 in
      Array.blit t.slot_gen 0 gens 0 n;
      t.slot_gen <- gens;
      n

and make_proc t ~slot ~name ~args ~priv ~mem_kb =
  let gen = t.slot_gen.(slot) + 1 in
  t.slot_gen.(slot) <- gen;
  let proc =
    {
      slot;
      gen;
      p_name = name;
      p_args = args;
      priv;
      memory = Memory.create ~size:(mem_kb * 1024);
      state = Running (* immediately replaced by make_runnable *);
      kill_pending = None;
      pending_notifies = [];
      async_in = Queue.create ();
      senders = Queue.create ();
      grants = Hashtbl.create 8;
      next_grant = 1;
      alarm = None;
      peers = String_set.empty;
    }
  in
  t.procs.(slot) <- Some proc;
  proc

and spawn_dynamic :
    t ->
    name:string ->
    program:string ->
    args:string list ->
    priv:Privilege.t ->
    mem_kb:int ->
    (Endpoint.t, Errno.t) result =
 fun t ~name ~program ~args ~priv ~mem_kb ->
  match Hashtbl.find_opt t.programs program with
  | None -> Error Errno.E_noent
  | Some main ->
      Metrics.incr t.ctr.c_spawns;
      let slot = alloc_slot t in
      let proc = make_proc t ~slot ~name ~args ~priv ~mem_kb in
      kemit t ~level:Trace.Debug (Event.Spawn { ep = ep_of_proc proc; name; program });
      (* The creating kernel call itself costs [spawn]; the child's
         first instruction runs strictly after that work finished, so
         the creator (and RS's endpoint publication) wins the race. *)
      start_fiber t proc ~delay:(t.costs.spawn + 100) main;
      Ok (ep_of_proc proc)

let spawn_wellknown t ~ep ~name ~priv ?(args = []) ?(mem_kb = 1024) body =
  let slot = ep.Endpoint.slot in
  if slot < 0 || slot >= Array.length t.procs then
    invalid_arg "spawn_wellknown: slot out of range";
  (match proc_of_slot t slot with
  | Some p when p.state <> Dead -> invalid_arg "spawn_wellknown: slot in use"
  | Some _ | None -> ());
  t.slot_gen.(slot) <- ep.Endpoint.gen - 1;
  let proc = make_proc t ~slot ~name ~args ~priv ~mem_kb in
  Metrics.incr t.ctr.c_spawns;
  kemit t ~level:Trace.Debug (Event.Spawn { ep = ep_of_proc proc; name; program = "<boot>" });
  start_fiber t proc ~delay:0 body

let kill t ep status =
  match lookup_ep t ep with
  | Lookup_stale -> Error Errno.E_dead_src_dst
  | Lookup_bad -> Error Errno.E_bad_endpoint
  | Lookup_ok proc ->
      Metrics.incr t.ctr.c_kills;
      do_kill t proc status;
      Ok ()

let deliver_signal t ep signal =
  match lookup_ep t ep with
  | Lookup_stale -> Error Errno.E_dead_src_dst
  | Lookup_bad -> Error Errno.E_bad_endpoint
  | Lookup_ok proc ->
      deliver_notify t ~src:Wellknown.hardware ~dst:proc (Message.N_sig signal);
      Ok ()

(* ------------------------------------------------------------------ *)
(* Hardware-facing interface                                           *)
(* ------------------------------------------------------------------ *)

let raise_irq t line =
  Metrics.incr t.ctr.c_irqs;
  (* An interrupt with no live handler is lost — exactly the window a
     crashed driver leaves open, so it is worth an event. *)
  let dropped () =
    Metrics.incr t.ctr.c_irqs_dropped;
    kemit t ~level:Trace.Warn (Event.Irq { line; delivered = false })
  in
  match Hashtbl.find_opt t.irq_table line with
  | None -> dropped ()
  | Some slot -> (
      match proc_of_slot t slot with
      | Some proc when proc.state <> Dead ->
          deliver_notify t ~src:Wellknown.hardware ~dst:proc (Message.N_irq line)
      | Some _ | None -> dropped ())

let dma t ~handle ~off ~op =
  match Hashtbl.find_opt t.iommu handle with
  | None -> Error Errno.E_no_perm
  | Some entry -> (
      match proc_of_slot t entry.owner_slot with
      | Some owner when owner.gen = entry.owner_gen && owner.state <> Dead -> (
          match Hashtbl.find_opt owner.grants entry.grant_id with
          | None -> Error Errno.E_no_perm
          | Some g -> (
              let len = match op with `Read n -> n | `Write b -> Bytes.length b in
              if off < 0 || len < 0 || off + len > g.len then Error Errno.E_range
              else
                try
                  match op with
                  | `Read n -> Ok (Memory.read owner.memory ~addr:(g.base + off) ~len:n)
                  | `Write b ->
                      Memory.write owner.memory ~addr:(g.base + off) b;
                      Ok Bytes.empty
                with Memory.Fault _ -> Error Errno.E_range))
      | Some _ | None -> Error Errno.E_no_perm)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

module Stats = struct
  type snapshot = {
    at : int;
    messages : int;
    notifications : int;
    async_messages : int;
    safecopies : int;
    safecopy_bytes : int;
    devios : int;
    irqs : int;
    irqs_dropped : int;
    spawns : int;
    kills : int;
    exits : int;
  }

  let snapshot t =
    let v c = Metrics.value c in
    {
      at = Engine.now t.engine;
      messages = v t.ctr.c_messages;
      notifications = v t.ctr.c_notifications;
      async_messages = v t.ctr.c_async_messages;
      safecopies = v t.ctr.c_safecopies;
      safecopy_bytes = v t.ctr.c_safecopy_bytes;
      devios = v t.ctr.c_devios;
      irqs = v t.ctr.c_irqs;
      irqs_dropped = v t.ctr.c_irqs_dropped;
      spawns = v t.ctr.c_spawns;
      kills = v t.ctr.c_kills;
      exits = v t.ctr.c_exits;
    }

  let diff before after =
    {
      at = after.at;
      messages = after.messages - before.messages;
      notifications = after.notifications - before.notifications;
      async_messages = after.async_messages - before.async_messages;
      safecopies = after.safecopies - before.safecopies;
      safecopy_bytes = after.safecopy_bytes - before.safecopy_bytes;
      devios = after.devios - before.devios;
      irqs = after.irqs - before.irqs;
      irqs_dropped = after.irqs_dropped - before.irqs_dropped;
      spawns = after.spawns - before.spawns;
      kills = after.kills - before.kills;
      exits = after.exits - before.exits;
    }

  let pp ppf s =
    Format.fprintf ppf
      "@[<v>messages=%d notifications=%d async=%d@,safecopies=%d (%d bytes) devios=%d@,irqs=%d (%d dropped) spawns=%d kills=%d exits=%d@]"
      s.messages s.notifications s.async_messages s.safecopies s.safecopy_bytes s.devios s.irqs
      s.irqs_dropped s.spawns s.kills s.exits
end
