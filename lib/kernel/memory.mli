(** Simulated private address spaces.

    Each process owns one flat byte region.  Any access outside it
    raises {!Fault}, the simulator's MMU exception: if it happens on a
    process's own stack (e.g. the driver VM dereferencing a garbled
    pointer), the kernel kills the process with SIGSEGV — defect
    class 2 of Sec. 5.1. *)

exception Fault of { addr : int; len : int }
(** MMU exception: access of [len] bytes at [addr] fell outside the
    address space. *)

type t
(** An address space. *)

val create : size:int -> t
(** [create ~size] is a zero-filled space of [size] bytes. *)

val size : t -> int
(** Capacity in bytes. *)

val read : t -> addr:int -> len:int -> bytes
(** Copy out a range.  @raise Fault on out-of-bounds access. *)

val write : t -> addr:int -> bytes -> unit
(** Copy a buffer in at [addr].  @raise Fault on out-of-bounds. *)

val blit_out : t -> addr:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** Copy from the space into a caller buffer without allocating. *)

val blit_in : t -> addr:int -> src:bytes -> src_off:int -> len:int -> unit
(** Copy from a caller buffer into the space. *)

val copy : src:t -> src_addr:int -> dst:t -> dst_addr:int -> len:int -> unit
(** Inter-space copy (the kernel's virtual-copy primitive). *)

val get_u8 : t -> int -> int
(** One byte. @raise Fault if out of bounds. *)

val set_u8 : t -> int -> int -> unit
(** Store one byte (low 8 bits of the value). *)

val get_u32 : t -> int -> int
(** Little-endian 32-bit load (returned as a non-negative int). *)

val set_u32 : t -> int -> int -> unit
(** Little-endian 32-bit store (low 32 bits of the value). *)
