(** The system interface: how process code talks to the kernel.

    Every simulated process (server, driver, application) is an OCaml
    function run as an effect-handler fiber; performing {!Sys}
    suspends it until the kernel completes the operation.  Process
    code normally uses the {!Api} wrappers, which read like the MINIX
    system library: [send]/[receive]/[sendrec] rendezvous IPC,
    non-blocking [notify], and the privileged kernel calls (safecopy
    over grants, mediated port I/O, IRQ registration, IOMMU mapping,
    process management).

    This module has no kernel dependencies: servers, drivers and
    applications depend only on [Sysif] + the protocol types. *)

module Endpoint := Resilix_proto.Endpoint
module Errno := Resilix_proto.Errno
module Message := Resilix_proto.Message
module Status := Resilix_proto.Status
module Signal := Resilix_proto.Signal
module Privilege := Resilix_proto.Privilege
module Event := Resilix_obs.Event
module Metrics := Resilix_obs.Metrics

(** What {!Api.receive} yields: a rendezvous message or a pending
    notification. *)
type rx =
  | Rx_msg of { src : Endpoint.t; body : Message.t }
  | Rx_notify of { src : Endpoint.t; kind : Message.notify_kind }

(** Receive filter: anyone, or one specific endpoint. *)
type source = Any | From of Endpoint.t

(** Access rights carried by a memory grant. *)
type grant_access = Read_only | Write_only | Read_write

(** The kernel operations, indexed by their result type.  See {!Api}
    for per-operation documentation. *)
type 'a syscall =
  | Send : Endpoint.t * Message.t -> (unit, Errno.t) result syscall
  | Asend : Endpoint.t * Message.t -> (unit, Errno.t) result syscall
  | Receive : source -> (rx, Errno.t) result syscall
  | Sendrec : Endpoint.t * Message.t -> (rx, Errno.t) result syscall
  | Notify : Endpoint.t * Message.notify_kind -> (unit, Errno.t) result syscall
  | Sleep : int -> unit syscall
  | Yield : int -> unit syscall
  | Now : int syscall
  | Self : Endpoint.t syscall
  | My_memory : Memory.t syscall
  | My_args : string list syscall
  | My_name : string syscall
  | Random : int -> int syscall
  | Exit : Status.exit_status -> unit syscall
  | Obs_emit : Event.level * string * Event.payload -> unit syscall
  | Metric_add : string * int -> unit syscall
  | Metric_observe : string * int -> unit syscall
  | Metric_set : string * int -> unit syscall
  | Metric_counter : string -> Metrics.counter syscall
  | Metric_gauge : string -> Metrics.gauge syscall
  | Metric_histogram : string -> Metrics.histogram syscall
  | Safecopy : {
      dir : [ `Read | `Write ];
      owner : Endpoint.t;
      grant : int;
      grant_off : int;
      local_addr : int;
      len : int;
    }
      -> (unit, Errno.t) result syscall
  | Grant_create : {
      for_ : Endpoint.t;
      base : int;
      len : int;
      access : grant_access;
    }
      -> (int, Errno.t) result syscall
  | Grant_revoke : int -> (unit, Errno.t) result syscall
  | Devio_in : int -> (int, Errno.t) result syscall
  | Devio_out : int * int -> (unit, Errno.t) result syscall
  | Irq_register : int -> (unit, Errno.t) result syscall
  | Alarm : int -> (unit, Errno.t) result syscall
  | Iommu_map : int -> (int, Errno.t) result syscall
  | Iommu_unmap : int -> (unit, Errno.t) result syscall
  | Proc_create : {
      name : string;
      program : string;
      args : string list;
      priv : Privilege.t;
      mem_kb : int;
    }
      -> (Endpoint.t, Errno.t) result syscall
  | Proc_kill : Endpoint.t * Signal.t -> (unit, Errno.t) result syscall
  | Reap_exit : (Endpoint.t * string * Status.exit_status) option syscall
  | Privctl : Endpoint.t * Privilege.t -> (unit, Errno.t) result syscall

type _ Effect.t += Sys : 'a syscall -> 'a Effect.t

exception Killed_exn of Status.exit_status
(** Raised inside a fiber to unwind it when the kernel kills the
    process; the kernel's fiber wrapper translates it back into the
    carried exit status.  Process code must never catch it. *)

exception Panic_exn of string
(** Raised by {!Api.panic}; the kernel records a [Panicked] exit. *)

val kcall_name : 'a syscall -> string option
(** The name under which a kernel call is privilege-checked against
    the caller's [kcalls] list, or [None] for unrestricted
    operations (IPC is checked separately, per destination). *)

(** The process-side system library. *)
module Api : sig
  val send : Endpoint.t -> Message.t -> (unit, Errno.t) result
  (** Rendezvous send: blocks until the destination receives (or
      dies — [E_dead_src_dst]). *)

  val asend : Endpoint.t -> Message.t -> (unit, Errno.t) result
  (** Asynchronous send: queues in the kernel, never blocks (used by
      network drivers for completion notifications). *)

  val receive : source -> (rx, Errno.t) result
  (** Block until a message or notification matching the filter is
      available.  Pending notifications are delivered first. *)

  val sendrec : Endpoint.t -> Message.t -> (rx, Errno.t) result
  (** Send, then wait for the reply from the same endpoint.  The
      reply phase is protected against interception by notifications
      and async messages (MINIX's MF_REPLY_PEND).  Fails with
      [E_dead_src_dst] if the peer dies in either phase — the signal
      servers key their driver-recovery schemes on. *)

  val notify : Endpoint.t -> Message.notify_kind -> (unit, Errno.t) result
  (** Non-blocking notification; pending kinds are deduplicated. *)

  val sleep : int -> unit
  (** Block for a number of virtual microseconds. *)

  val yield : ?cost:int -> unit -> unit
  (** Consume simulated CPU time (the driver VM calls this as fuel). *)

  val now : unit -> int
  (** Current virtual time. *)

  val self : unit -> Endpoint.t
  (** This process's (temporally unique) endpoint. *)

  val memory : unit -> Memory.t
  (** This process's address space. *)

  val args : unit -> string list
  (** The argv the service spec passed. *)

  val name : unit -> string
  (** This process's name. *)

  val random : int -> int
  (** Deterministic pseudo-random integer in [\[0, n)]. *)

  val exit : Status.exit_status -> 'a
  (** Terminate this process. *)

  val panic : string -> 'a
  (** Terminate with a panic status — what a driver does when it
      detects an internal inconsistency (defect class 1). *)

  val emit : ?level:Event.level -> string -> Event.payload -> unit
  (** Emit a typed observability event into the system trace under a
      subsystem tag ([level] defaults to [Info]). *)

  val trace : string -> ('a, Format.formatter, unit, unit) format4 -> 'a
  (** Emit a free-form [Log] line into the system trace under a
      subsystem tag. *)

  val metric_add : string -> int -> unit
  (** Bump the named counter in the system-wide metric registry. *)

  val metric_incr : string -> unit
  (** [metric_add name 1]. *)

  val metric_observe : string -> int -> unit
  (** Record a sample in the named histogram. *)

  val metric_set : string -> int -> unit
  (** Set the named gauge (e.g. a breaker-state indicator). *)

  val metric_counter : string -> Metrics.counter
  (** Resolve the named counter to a direct handle, creating it on
      first use.  Resolve once at startup and bump the handle with
      {!Resilix_obs.Metrics.incr}/[add] on hot paths — same registry
      entry as {!metric_add}, without the per-event name lookup. *)

  val metric_gauge : string -> Metrics.gauge
  (** Resolve the named gauge to a direct handle (see
      {!metric_counter}). *)

  val metric_histogram : string -> Metrics.histogram
  (** Resolve the named histogram to a direct handle (see
      {!metric_counter}). *)

  val safecopy_from :
    owner:Endpoint.t -> grant:int -> grant_off:int -> local_addr:int -> len:int ->
    (unit, Errno.t) result
  (** Copy from a granted region of [owner]'s memory into ours; the
      kernel checks that the grant exists, names us as grantee,
      permits reading, and covers the range. *)

  val safecopy_to :
    owner:Endpoint.t -> grant:int -> grant_off:int -> local_addr:int -> len:int ->
    (unit, Errno.t) result
  (** Copy from our memory into a granted region of [owner]'s. *)

  val grant_create :
    for_:Endpoint.t -> base:int -> len:int -> access:grant_access -> (int, Errno.t) result
  (** Create a memory capability over our own address space for one
      specific grantee; returns the grant id to ship in a message. *)

  val grant_revoke : int -> (unit, Errno.t) result
  (** Destroy a grant. *)

  val devio_in : int -> (int, Errno.t) result
  (** Mediated I/O-port read ([E_no_perm] outside the driver's
      granted ranges). *)

  val devio_out : int -> int -> (unit, Errno.t) result
  (** Mediated I/O-port write. *)

  val irq_register : int -> (unit, Errno.t) result
  (** Claim an IRQ line (privilege-checked); interrupts arrive as
      [N_irq] notifications from the hardware pseudo-endpoint. *)

  val alarm : int -> (unit, Errno.t) result
  (** Arm (or with 0, cancel) this process's single kernel alarm;
      expiry arrives as an [N_alarm] notification. *)

  val iommu_map : int -> (int, Errno.t) result
  (** Expose a grant (made out to the hardware pseudo-endpoint) to
      device DMA; returns the DMA handle the driver programs into the
      device.  Mappings die with the process — a crashed driver's
      device cannot scribble on its successor. *)

  val iommu_unmap : int -> (unit, Errno.t) result
  (** Tear down a DMA mapping. *)

  val proc_create :
    name:string -> program:string -> args:string list -> priv:Privilege.t -> mem_kb:int ->
    (Endpoint.t, Errno.t) result
  (** Create a process from the binary registry (process manager
      only). *)

  val proc_kill : Endpoint.t -> Signal.t -> (unit, Errno.t) result
  (** Kill ([SIGKILL]/[SIGSEGV]/[SIGILL]) or signal ([SIGTERM]) a
      process (process manager only). *)

  val reap_exit : unit -> (Endpoint.t * string * Status.exit_status) option
  (** Collect one queued exit record (process manager only). *)

  val privctl : Endpoint.t -> Privilege.t -> (unit, Errno.t) result
  (** Replace a process's privileges (reincarnation server only). *)

  val send_exn : Endpoint.t -> Message.t -> unit
  (** {!send}, panicking on error — for boot-time setup paths. *)

  val sendrec_exn : Endpoint.t -> Message.t -> rx
  (** {!sendrec}, panicking on error. *)

  val receive_exn : source -> rx
  (** {!receive}, panicking on error. *)
end
