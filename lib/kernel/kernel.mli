(** The simulated microkernel.

    Every server, driver and application is an isolated process: a
    private {!Memory.t} address space plus an OCaml fiber that talks to
    the kernel exclusively through {!Sysif} effects.  The kernel
    provides MINIX-style rendezvous IPC with temporally unique
    endpoints, non-blocking notifications, capability grants with
    [safecopy], per-process privileges, I/O-port and IRQ mediation,
    and an IOMMU for device DMA (Sec. 4 of the paper).

    All activity is driven by a {!Resilix_sim.Engine}; each kernel
    operation advances virtual time by a configurable cost, which is
    what the performance experiments measure.

    {2 Error conventions}

    Every run-time fallible operation returns a [result] (typically
    [(_, Errno.t) result]): IPC, kernel calls, process management —
    including everything reachable from process code through
    {!Sysif}.  The only raising paths are boot-time wiring errors
    that indicate a mis-built system image rather than a run-time
    condition: {!spawn_wellknown} raises [Invalid_argument] for an
    out-of-range or occupied slot.  Nothing else in this interface
    raises. *)

module Endpoint := Resilix_proto.Endpoint
module Errno := Resilix_proto.Errno
module Status := Resilix_proto.Status
module Signal := Resilix_proto.Signal
module Privilege := Resilix_proto.Privilege

(** Virtual-time cost (microseconds) of each kernel operation. *)
type costs = {
  syscall : int;  (** fixed overhead of any scheduled syscall *)
  ipc : int;  (** rendezvous message delivery / context switch *)
  notify : int;  (** non-blocking notification *)
  copy_base : int;  (** fixed part of safecopy *)
  copy_bytes_per_us : int;  (** safecopy throughput, bytes per microsecond *)
  devio : int;  (** mediated I/O-port access ("a few microseconds", Sec. 4) *)
  spawn : int;  (** process creation + binary load *)
}

val default_costs : costs
(** 1 us syscalls, 2 us IPC, 2 GB/s copies, 3 ms spawn. *)

type t
(** A kernel instance. *)

val create :
  engine:Resilix_sim.Engine.t ->
  trace:Resilix_sim.Trace.t ->
  rng:Resilix_sim.Rng.t ->
  ?costs:costs ->
  ?metrics:Resilix_obs.Metrics.t ->
  unit ->
  t
(** Create a kernel bound to a simulation engine.  [metrics] is the
    registry the kernel's counters live in (fresh by default); pass a
    shared registry so servers and drivers report into the same
    place. *)

val engine : t -> Resilix_sim.Engine.t
(** The engine driving this kernel. *)

val trace : t -> Resilix_sim.Trace.t
(** The shared trace log. *)

val metrics : t -> Resilix_obs.Metrics.t
(** The metric registry (kernel counters live under ["kernel.*"]). *)

(** Immutable views of the kernel's counters, for benchmarks and
    tests.  Replaces the old mutable [stats] record: read a
    {!Stats.snapshot} before and after the interval of interest and
    {!Stats.diff} them. *)
module Stats : sig
  type snapshot = {
    at : int;  (** virtual time of the snapshot *)
    messages : int;  (** rendezvous messages delivered *)
    notifications : int;
    async_messages : int;
    safecopies : int;
    safecopy_bytes : int;
    devios : int;
    irqs : int;
    irqs_dropped : int;  (** raised with no live handler registered *)
    spawns : int;
    kills : int;
    exits : int;
  }

  val snapshot : t -> snapshot
  (** Current counter values. *)

  val diff : snapshot -> snapshot -> snapshot
  (** [diff before after]: activity between two snapshots
      (fields subtract; [at] is [after.at]). *)

  val pp : Format.formatter -> snapshot -> unit
end

(** {1 Programs and processes} *)

val register_program : t -> string -> (unit -> unit) -> unit
(** [register_program t key main] adds a binary to the program
    registry.  The reincarnation server starts (and after a crash
    restarts) services by program key, which models reloading a fresh
    copy of the driver binary. *)

val has_program : t -> string -> bool
(** Whether [key] is registered. *)

val spawn_wellknown :
  t ->
  ep:Endpoint.t ->
  name:string ->
  priv:Privilege.t ->
  ?args:string list ->
  ?mem_kb:int ->
  (unit -> unit) ->
  unit
(** Boot-time creation of a trusted server at a fixed slot.  Raises
    [Invalid_argument] if the slot is out of range or taken — the one
    raising path in this interface (see the error conventions
    above). *)

val spawn_dynamic :
  t ->
  name:string ->
  program:string ->
  args:string list ->
  priv:Privilege.t ->
  mem_kb:int ->
  (Endpoint.t, Errno.t) result
(** Used by the process manager to create a process from a registered
    program (also available to processes as the [Proc_create] kernel
    call). *)

val kill : t -> Endpoint.t -> Status.exit_status -> (unit, Errno.t) result
(** Terminate a process immediately (stale endpoints fail). *)

val deliver_signal : t -> Endpoint.t -> Signal.t -> (unit, Errno.t) result
(** Post a signal notification (e.g. SIGTERM) without killing. *)

(** {1 Hardware-facing interface (wired by the system builder)} *)

val set_io_handler : t -> ([ `In of int | `Out of int * int ] -> (int, Errno.t) result) -> unit
(** Install the I/O-port bus backend; the kernel routes privileged
    [Devio_*] kernel calls through it. *)

val raise_irq : t -> int -> unit
(** Called by device models: delivers an [N_irq] notification to the
    process registered on that line (dropped if none). *)

val dma :
  t ->
  handle:int ->
  off:int ->
  op:[ `Read of int | `Write of bytes ] ->
  (bytes, Errno.t) result
(** Device DMA through the IOMMU: [handle] was produced by the
    [Iommu_map] kernel call over a memory grant.  Reads return the
    bytes; writes return an empty buffer.  Fails with [E_no_perm] for
    stale mappings (e.g. after the owning driver died) and [E_range]
    for out-of-grant accesses. *)

(** {1 Introspection (tests, fault injector, experiment harness)} *)

val alive : t -> Endpoint.t -> bool
(** Whether the endpoint names a live process (generation included). *)

val find_by_name : t -> string -> Endpoint.t option
(** Endpoint of the live process with the given name, if any. *)

val proc_memory : t -> Endpoint.t -> Memory.t option
(** Address space of a live process — used by the software fault
    injector to mutate a running driver's loaded code image. *)

val proc_name : t -> Endpoint.t -> string option
(** Name of a live process. *)

val process_count : t -> int
(** Number of live processes. *)
