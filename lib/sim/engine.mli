(** Discrete-event simulation engine.

    The engine owns the virtual clock and a queue of pending events.
    Events scheduled for the same instant fire in the order they were
    scheduled.  The entire simulated operating system — kernel, device
    models, timers — is driven by this single queue, which is what
    makes runs deterministic and replayable. *)

type t
(** An engine instance. *)

type handle
(** A cancellation handle for a scheduled event. *)

val create : unit -> t
(** A fresh engine with the clock at {!Time.zero}. *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~at f] runs [f] when the clock reaches [at].
    [at] must not be in the past. *)

val schedule : t -> after:Time.t -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] after [after] has elapsed. *)

val cancel : handle -> unit
(** Prevents the event from firing.  Idempotent; safe after firing. *)

val step : t -> bool
(** Runs the single earliest pending event.  Returns [false] when the
    queue is empty. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue is empty, [until] is
    reached (clock stops exactly at [until]), or [max_events] have
    fired.  Defaults: no time bound, no event bound. *)

val pending : t -> int
(** Number of events waiting (including cancelled ones not yet
    reaped). *)
