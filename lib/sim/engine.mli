(** Discrete-event simulation engine.

    The engine owns the virtual clock and a queue of pending events.
    Events scheduled for the same instant fire, by default, in the
    order they were scheduled.  The entire simulated operating system —
    kernel, device models, timers — is driven by this single queue,
    which is what makes runs deterministic and replayable.

    The same-instant order is pluggable ({!policy}): a seeded
    permutation lets the deterministic-simulation-testing layer
    ({!Resilix_dst}) explore adversarial interleavings, and every
    choice it makes is recorded into a compact {!decisions} trace so a
    failing schedule can be replayed exactly ([Scripted]). *)

type t
(** An engine instance. *)

type handle
(** A cancellation handle for a scheduled event. *)

(** How same-instant events are ordered.

    - [Fifo] (the default): scheduling order — the historical
      behaviour; no decisions are recorded and the hot path is
      unchanged.
    - [Seeded seed]: whenever [k >= 2] live events compete for the
      same instant, the one with the smallest
      [Rng.derive ~seed ~index:scheduling_seq] fires first — a seeded
      permutation that is a pure function of the seed and each event's
      scheduling position.
    - [Scripted trace]: replays a recorded decision trace; each entry
      is the index (in scheduling order) of the candidate that fired
      at the corresponding choice point, clamped to the candidate
      count.  When the trace runs out, further choices fall back to
      FIFO (index 0). *)
type policy = Fifo | Seeded of int | Scripted of int array

val create : ?policy:policy -> unit -> t
(** A fresh engine with the clock at {!Time.zero}.  [policy] defaults
    to [Fifo]. *)

val policy : t -> policy
(** The tie-break policy the engine was created with. *)

val decisions : t -> int array
(** The decision trace so far: one entry per instant at which at least
    two live events competed, each the chosen candidate's index in
    scheduling order.  Instants with a single (forced) event record
    nothing, which keeps the trace compact.  Always empty under
    [Fifo]. *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~at f] runs [f] when the clock reaches [at].
    [at] must not be in the past. *)

val schedule : t -> after:Time.t -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] after [after] has elapsed. *)

val cancel : handle -> unit
(** Prevents the event from firing.  Idempotent; safe after firing. *)

val step : t -> bool
(** Runs the single earliest pending event (under a non-[Fifo] policy,
    the candidate the policy chooses).  Returns [false] when the
    queue is empty. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue is empty, [until] is
    reached (clock stops exactly at [until]), or [max_events] have
    fired.  Defaults: no time bound, no event bound. *)

val pending : t -> int
(** Number of events waiting (under [Fifo], including cancelled ones
    not yet reaped; choice policies reap cancelled same-instant
    events while gathering candidates). *)
