type handle = { mutable cancelled : bool }

(* Representation of a far-future event parked in the overflow heap;
   near-future events are stored unpacked in the wheel's parallel
   arrays and never get a record at all. *)
type event = { fire : unit -> unit; handle : handle }

type policy = Fifo | Seeded of int | Scripted of int array

(* Inert values used to blank pooled slots (heap backing store, wheel
   buckets and the candidate scratch buffers); the handle is
   permanently cancelled so a leaked slot can never fire. *)
let dummy_handle = { cancelled = true }
let dummy_event = { fire = ignore; handle = dummy_handle }
let no_fire : unit -> unit = ignore

(* ------------------------------------------------------------------ *)
(* Timing wheel                                                        *)
(* ------------------------------------------------------------------ *)

(* Events scheduled within [wheel_size] instants of the clock go into
   a ring of per-instant FIFO buckets: append and pop are O(1) int-
   indexed array operations, versus O(log n) sifts in the heap.  A
   bucket holds at most one instant's events at a time (anything one
   whole revolution ahead is past the horizon and parks in the
   overflow heap), so a non-empty bucket's instant is implied by its
   index and needs no per-entry key. *)
let wheel_bits = 10
let wheel_size = 1 lsl wheel_bits
let wheel_mask = wheel_size - 1

type bucket = {
  mutable b_seqs : int array;
  mutable b_fires : (unit -> unit) array;
  mutable b_handles : handle array;
  mutable b_head : int; (* next entry to pop *)
  mutable b_len : int; (* append position *)
}

let fresh_bucket () = { b_seqs = [||]; b_fires = [||]; b_handles = [||]; b_head = 0; b_len = 0 }

let bucket_grow b =
  let cap = Array.length b.b_seqs in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let nseqs = Array.make ncap 0 in
  let nfires = Array.make ncap no_fire in
  let nhandles = Array.make ncap dummy_handle in
  Array.blit b.b_seqs 0 nseqs 0 cap;
  Array.blit b.b_fires 0 nfires 0 cap;
  Array.blit b.b_handles 0 nhandles 0 cap;
  b.b_seqs <- nseqs;
  b.b_fires <- nfires;
  b.b_handles <- nhandles

(* Entries are always appended in ascending seq order (the global seq
   is monotone, and a choice-policy re-push refills a just-drained
   bucket in candidate order), so popping from the head is exactly
   FIFO-by-seq. *)
let bucket_append b ~seq fire handle =
  let i = b.b_len in
  if i = Array.length b.b_seqs then bucket_grow b;
  Array.unsafe_set b.b_seqs i seq;
  Array.unsafe_set b.b_fires i fire;
  Array.unsafe_set b.b_handles i handle;
  b.b_len <- i + 1

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  wheel : bucket array;
  mutable ring_count : int; (* events stored in the wheel *)
  overflow : event Heap.t; (* events beyond the wheel horizon *)
  policy : policy;
  (* Decision trace: one entry per instant at which >= 2 live events
     competed, stored in a growable int buffer (no per-decision
     allocation).  Empty under [Fifo] (no overhead on the default
     path). *)
  mutable decisions : int array;
  mutable n_decisions : int;
  mutable script_pos : int;
  (* Reusable scratch buffers for same-instant candidate collection
     under choice policies; [cand_*] slots are blanked after each
     choice so fired events are not retained. *)
  mutable cand_seqs : int array;
  mutable cand_fires : (unit -> unit) array;
  mutable cand_handles : handle array;
}

let create ?(policy = Fifo) () =
  {
    clock = Time.zero;
    seq = 0;
    wheel = Array.init wheel_size (fun _ -> fresh_bucket ());
    ring_count = 0;
    overflow = Heap.create ~dummy:dummy_event ();
    policy;
    decisions = [||];
    n_decisions = 0;
    script_pos = 0;
    cand_seqs = [||];
    cand_fires = [||];
    cand_handles = [||];
  }

let now t = t.clock
let policy t = t.policy
let decisions t = Array.sub t.decisions 0 t.n_decisions

let record_decision t d =
  let cap = Array.length t.decisions in
  if t.n_decisions >= cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nd = Array.make ncap 0 in
    Array.blit t.decisions 0 nd 0 t.n_decisions;
    t.decisions <- nd
  end;
  t.decisions.(t.n_decisions) <- d;
  t.n_decisions <- t.n_decisions + 1

let schedule_at t ~at fire =
  if at < t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at Time.pp t.clock);
  let handle = { cancelled = false } in
  t.seq <- t.seq + 1;
  if at - t.clock < wheel_size then begin
    bucket_append (Array.unsafe_get t.wheel (at land wheel_mask)) ~seq:t.seq fire handle;
    t.ring_count <- t.ring_count + 1
  end
  else Heap.push t.overflow ~key:at ~seq:t.seq { fire; handle };
  handle

let schedule t ~after fire =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock after) fire

let cancel handle = handle.cancelled <- true

let has_pending t = t.ring_count > 0 || not (Heap.is_empty t.overflow)
let pending t = t.ring_count + Heap.length t.overflow

(* Earliest instant with a wheel entry.  Only call with
   [ring_count > 0]; every ring entry lies in [clock, clock + wheel_size),
   so the scan terminates, and its cost is the clock distance to the
   next event (amortized O(1) under load). *)
let next_ring_time t =
  let i = ref t.clock in
  let rec scan () =
    let b = Array.unsafe_get t.wheel (!i land wheel_mask) in
    if b.b_head < b.b_len then !i
    else begin
      incr i;
      scan ()
    end
  in
  scan ()

(* The next instant at which an event fires.  On a same-instant tie
   between the overflow heap and the wheel, the heap's entries were
   scheduled before the wheel's horizon reached that instant, so they
   necessarily carry the smaller seqs and must be drained first. *)
let next_key t =
  if t.ring_count = 0 then Heap.min_key t.overflow
  else begin
    let rt = next_ring_time t in
    if (not (Heap.is_empty t.overflow)) && Heap.min_key t.overflow < rt then
      Heap.min_key t.overflow
    else rt
  end

let grow_cand t =
  let cap = Array.length t.cand_seqs in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nseqs = Array.make ncap 0 in
  let nfires = Array.make ncap no_fire in
  let nhandles = Array.make ncap dummy_handle in
  Array.blit t.cand_seqs 0 nseqs 0 cap;
  Array.blit t.cand_fires 0 nfires 0 cap;
  Array.blit t.cand_handles 0 nhandles 0 cap;
  t.cand_seqs <- nseqs;
  t.cand_fires <- nfires;
  t.cand_handles <- nhandles

(* Which of the [k] live candidates (in scheduling/seq order in the
   scratch buffer) fires next.  [Fifo] would be 0; [Seeded] orders
   same-instant events by the derived rank of their scheduling seq,
   i.e. a seeded permutation that is a pure function of (seed, seq);
   [Scripted] replays a recorded trace, falling back to FIFO when it
   runs out. *)
let choose t ~k =
  match t.policy with
  | Fifo -> 0
  | Seeded seed ->
      let best = ref 0 and best_rank = ref max_int in
      for i = 0 to k - 1 do
        let r = Rng.derive ~seed ~index:t.cand_seqs.(i) in
        if r < !best_rank then begin
          best := i;
          best_rank := r
        end
      done;
      !best
  | Scripted arr ->
      let d = if t.script_pos < Array.length arr then arr.(t.script_pos) else 0 in
      t.script_pos <- t.script_pos + 1;
      if d < 0 then 0 else min d (k - 1)

let step_choice t =
  if not (has_pending t) then false
  else begin
    let at = next_key t in
    t.clock <- at;
    (* Collect every live event scheduled for [at] into the scratch
       buffers, in scheduling (seq) order: overflow entries first (they
       predate the wheel covering [at], hence smaller seqs), then the
       bucket, whose entries are already seq-sorted.  Cancelled entries
       are reaped here: they never fire, so dropping them changes only
       the [pending] count. *)
    let k = ref 0 in
    let add seq fire handle =
      if not handle.cancelled then begin
        if Array.length t.cand_seqs = !k then grow_cand t;
        t.cand_seqs.(!k) <- seq;
        t.cand_fires.(!k) <- fire;
        t.cand_handles.(!k) <- handle;
        incr k
      end
    in
    while (not (Heap.is_empty t.overflow)) && Heap.min_key t.overflow = at do
      let s = Heap.min_seq t.overflow in
      let e = Heap.pop_min t.overflow in
      add s e.fire e.handle
    done;
    if t.ring_count > 0 then begin
      let b = Array.unsafe_get t.wheel (at land wheel_mask) in
      let n = b.b_len - b.b_head in
      if n > 0 then begin
        (* A non-empty bucket under the clock's index holds exactly
           this instant's events (one instant per bucket at a time). *)
        for i = b.b_head to b.b_len - 1 do
          add b.b_seqs.(i) b.b_fires.(i) b.b_handles.(i);
          b.b_fires.(i) <- no_fire;
          b.b_handles.(i) <- dummy_handle
        done;
        b.b_head <- 0;
        b.b_len <- 0;
        t.ring_count <- t.ring_count - n
      end
    end;
    let k = !k in
    (match k with
    | 0 -> () (* every event at this instant was cancelled *)
    | 1 ->
        let chosen = t.cand_fires.(0) in
        t.cand_fires.(0) <- no_fire;
        t.cand_handles.(0) <- dummy_handle;
        (* forced: no decision recorded *)
        chosen ()
    | _ ->
        let choice = choose t ~k in
        record_decision t choice;
        (* Re-park the losers at the same instant with their original
           seqs; the bucket was just drained, and iterating in
           ascending candidate order keeps it seq-sorted. *)
        let b = Array.unsafe_get t.wheel (at land wheel_mask) in
        for i = 0 to k - 1 do
          if i <> choice then begin
            bucket_append b ~seq:t.cand_seqs.(i) t.cand_fires.(i) t.cand_handles.(i);
            t.ring_count <- t.ring_count + 1
          end
        done;
        let chosen = t.cand_fires.(choice) in
        (* Blank the scratch before firing so the buffers neither
           retain fired events nor carry state across a reentrant
           step. *)
        Array.fill t.cand_fires 0 k no_fire;
        Array.fill t.cand_handles 0 k dummy_handle;
        chosen ());
    true
  end

let step_fifo t =
  if t.ring_count = 0 then
    if Heap.is_empty t.overflow then false
    else begin
      t.clock <- Heap.min_key t.overflow;
      let e = Heap.pop_min t.overflow in
      if not e.handle.cancelled then e.fire ();
      true
    end
  else begin
    let rt = next_ring_time t in
    if (not (Heap.is_empty t.overflow)) && Heap.min_key t.overflow <= rt then begin
      (* Earlier instant, or same-instant tie: the overflow entry was
         scheduled before the wheel covered [rt] and has the smaller
         seq either way. *)
      t.clock <- Heap.min_key t.overflow;
      let e = Heap.pop_min t.overflow in
      if not e.handle.cancelled then e.fire ();
      true
    end
    else begin
      t.clock <- rt;
      let b = Array.unsafe_get t.wheel (rt land wheel_mask) in
      let h = b.b_head in
      let fire = Array.unsafe_get b.b_fires h in
      let handle = Array.unsafe_get b.b_handles h in
      Array.unsafe_set b.b_fires h no_fire;
      Array.unsafe_set b.b_handles h dummy_handle;
      let h = h + 1 in
      if h = b.b_len then begin
        b.b_head <- 0;
        b.b_len <- 0
      end
      else b.b_head <- h;
      t.ring_count <- t.ring_count - 1;
      if not handle.cancelled then fire ();
      true
    end
  end

let step t = match t.policy with Seeded _ | Scripted _ -> step_choice t | Fifo -> step_fifo t

let run ?until ?max_events t =
  let fired = ref 0 in
  (* [next_key] reads the head's instant in place (no allocation); the
     removal happens inside [step]. *)
  let continue () =
    (match max_events with Some m -> !fired < m | None -> true)
    && has_pending t
    &&
    match until with
    | Some stop -> Time.compare (next_key t) stop <= 0
    | None -> true
  in
  while continue () do
    ignore (step t);
    incr fired
  done;
  let stopped_by_budget = match max_events with Some m -> !fired >= m | None -> false in
  match until with
  | Some stop when (not stopped_by_budget) && Time.compare t.clock stop < 0 -> t.clock <- stop
  | Some _ | None -> ()
