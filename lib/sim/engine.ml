type handle = { mutable cancelled : bool }

type event = { fire : unit -> unit; handle : handle }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : event Heap.t;
}

let create () = { clock = Time.zero; seq = 0; queue = Heap.create () }
let now t = t.clock

let schedule_at t ~at fire =
  if Time.compare at t.clock < 0 then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at Time.pp t.clock);
  let handle = { cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~key:at ~seq:t.seq { fire; handle };
  handle

let schedule t ~after fire =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock after) fire

let cancel handle = handle.cancelled <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, _, ev) ->
      t.clock <- at;
      if not ev.handle.cancelled then ev.fire ();
      true

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue () =
    (match max_events with Some m -> !fired < m | None -> true)
    &&
    match Heap.peek t.queue with
    | None -> false
    | Some (at, _, _) -> (
        match until with
        | Some stop when Time.compare at stop > 0 -> false
        | Some _ | None -> true)
  in
  while continue () do
    ignore (step t);
    incr fired
  done;
  let stopped_by_budget = match max_events with Some m -> !fired >= m | None -> false in
  match until with
  | Some stop when (not stopped_by_budget) && Time.compare t.clock stop < 0 -> t.clock <- stop
  | Some _ | None -> ()

let pending t = Heap.length t.queue
