type handle = { mutable cancelled : bool }

type event = { fire : unit -> unit; handle : handle }

type policy = Fifo | Seeded of int | Scripted of int array

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : event Heap.t;
  policy : policy;
  (* Decision trace: one entry per instant at which >= 2 live events
     competed, newest first.  Empty under [Fifo] (no overhead on the
     default path). *)
  mutable decisions : int list;
  mutable n_decisions : int;
  mutable script_pos : int;
}

let create ?(policy = Fifo) () =
  {
    clock = Time.zero;
    seq = 0;
    queue = Heap.create ();
    policy;
    decisions = [];
    n_decisions = 0;
    script_pos = 0;
  }

let now t = t.clock
let policy t = t.policy

let decisions t =
  let arr = Array.make t.n_decisions 0 in
  let rec fill i = function
    | [] -> ()
    | d :: rest ->
        arr.(i) <- d;
        fill (i - 1) rest
  in
  fill (t.n_decisions - 1) t.decisions;
  arr

let schedule_at t ~at fire =
  if Time.compare at t.clock < 0 then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at Time.pp t.clock);
  let handle = { cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~key:at ~seq:t.seq { fire; handle };
  handle

let schedule t ~after fire =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock after) fire

let cancel handle = handle.cancelled <- true

(* Pop every live event scheduled for [at], in scheduling (seq) order.
   Cancelled entries are reaped here: they never fire, so dropping
   them does not change behaviour, only the [pending] count. *)
let same_instant_live t ~at first =
  let acc = ref (match first with Some se -> [ se ] | None -> []) in
  let rec go () =
    match Heap.peek t.queue with
    | Some (at2, _, _) when at2 = at -> (
        match Heap.pop t.queue with
        | Some (_, s, e) ->
            if not e.handle.cancelled then acc := (s, e) :: !acc;
            go ()
        | None -> ())
    | _ -> ()
  in
  go ();
  List.rev !acc

(* Which of the [k] live candidates (listed in seq order) fires next.
   [Fifo] would be 0; [Seeded] orders same-instant events by the
   derived rank of their scheduling seq, i.e. a seeded permutation
   that is a pure function of (seed, seq); [Scripted] replays a
   recorded trace, falling back to FIFO when it runs out. *)
let choose t ~k candidates =
  match t.policy with
  | Fifo -> 0
  | Seeded seed ->
      let best = ref 0 and best_rank = ref max_int in
      List.iteri
        (fun i (s, _) ->
          let r = Rng.derive ~seed ~index:s in
          if r < !best_rank then begin
            best := i;
            best_rank := r
          end)
        candidates;
      !best
  | Scripted arr ->
      let d = if t.script_pos < Array.length arr then arr.(t.script_pos) else 0 in
      t.script_pos <- t.script_pos + 1;
      if d < 0 then 0 else min d (k - 1)

let step_choice t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, seq, ev) ->
      t.clock <- at;
      let first = if ev.handle.cancelled then None else Some (seq, ev) in
      (match same_instant_live t ~at first with
      | [] -> () (* every event at this instant was cancelled *)
      | [ (_, e) ] -> e.fire () (* forced: no decision recorded *)
      | candidates ->
          let k = List.length candidates in
          let choice = choose t ~k candidates in
          t.decisions <- choice :: t.decisions;
          t.n_decisions <- t.n_decisions + 1;
          List.iteri
            (fun i (s, e) -> if i <> choice then Heap.push t.queue ~key:at ~seq:s e)
            candidates;
          let _, chosen = List.nth candidates choice in
          chosen.fire ());
      true

let step t =
  match t.policy with
  | Seeded _ | Scripted _ -> step_choice t
  | Fifo -> (
      match Heap.pop t.queue with
      | None -> false
      | Some (at, _, ev) ->
          t.clock <- at;
          if not ev.handle.cancelled then ev.fire ();
          true)

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue () =
    (match max_events with Some m -> !fired < m | None -> true)
    &&
    match Heap.peek t.queue with
    | None -> false
    | Some (at, _, _) -> (
        match until with
        | Some stop when Time.compare at stop > 0 -> false
        | Some _ | None -> true)
  in
  while continue () do
    ignore (step t);
    incr fired
  done;
  let stopped_by_budget = match max_events with Some m -> !fired >= m | None -> false in
  match until with
  | Some stop when (not stopped_by_budget) && Time.compare t.clock stop < 0 -> t.clock <- stop
  | Some _ | None -> ()

let pending t = Heap.length t.queue
