(** Virtual time for the discrete-event simulation.

    Time is measured in integer microseconds since the start of the
    simulation.  Using integers keeps every run exactly reproducible:
    two events scheduled at the same instant are ordered by their
    scheduling sequence number, never by floating-point noise. *)

type t = int
(** A point in (or span of) virtual time, in microseconds. *)

val zero : t
(** The simulation epoch. *)

val usec : int -> t
(** [usec n] is [n] microseconds. *)

val msec : int -> t
(** [msec n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f s] converts a duration in (possibly fractional) seconds. *)

val to_sec_f : t -> float
(** [to_sec_f t] is the duration [t] expressed in seconds. *)

val add : t -> t -> t
(** Addition of durations / offsets. *)

val compare : t -> t -> int
(** Total order on instants. *)

val pp : Format.formatter -> t -> unit
(** Prints a human-readable rendering, e.g. ["12.345678s"]. *)
