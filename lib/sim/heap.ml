type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let ensure_capacity h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* The dummy element is immediately overwritten before being read. *)
    let ndata = Array.make ncap h.data.(if cap = 0 then 0 else 0) in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let push h ~key ~seq value =
  let entry = { key; seq; value } in
  if Array.length h.data = 0 then h.data <- Array.make 16 entry
  else ensure_capacity h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.data.(0) in
    Some (e.key, e.seq, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let e = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (e.key, e.seq, e.value)
  end

let clear h =
  h.data <- [||];
  h.size <- 0
