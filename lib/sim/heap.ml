(* Pooled binary min-heap: keys and sequence numbers live in inline int
   arrays (unboxed), values in a parallel array.  Nothing is allocated
   on push/pop except when the backing arrays grow, and vacated value
   slots are overwritten with [dummy] so popped elements do not leak
   through the heap's backing store.

   The sift loops are hole-based: the moving element is held in locals
   while parents (or children) shift into the hole, so each level costs
   one 3-array move instead of a 3-array swap.  Indices are bounded by
   [size] (checked at every entry point), so the internal accesses use
   [unsafe_get]/[unsafe_set] — this heap sits on the hot path of every
   simulated event. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create ~dummy () = { keys = [||]; seqs = [||]; vals = [||]; size = 0; dummy }
let length h = h.size
let is_empty h = h.size = 0

(* Move the hole at [i] rootward past every parent larger than
   [(key, seq)], then drop the element in. *)
let sift_up h i key seq v =
  let keys = h.keys and seqs = h.seqs and vals = h.vals in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = Array.unsafe_get keys p in
    if pk > key || (pk = key && Array.unsafe_get seqs p > seq) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set vals !i (Array.unsafe_get vals p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i v

(* Move the hole at the root leafward, pulling the smaller child up,
   until [(key, seq)] dominates both children; drop the element in. *)
let sift_down h key seq v =
  let keys = h.keys and seqs = h.seqs and vals = h.vals in
  let n = h.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      (* index of the smaller child *)
      let c =
        if r < n then begin
          let lk = Array.unsafe_get keys l and rk = Array.unsafe_get keys r in
          if rk < lk || (rk = lk && Array.unsafe_get seqs r < Array.unsafe_get seqs l) then r
          else l
        end
        else l
      in
      let ck = Array.unsafe_get keys c in
      if ck < key || (ck = key && Array.unsafe_get seqs c < seq) then begin
        Array.unsafe_set keys !i ck;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
        Array.unsafe_set vals !i (Array.unsafe_get vals c);
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i v

let ensure_capacity h =
  let cap = Array.length h.keys in
  if h.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nkeys = Array.make ncap 0 and nseqs = Array.make ncap 0 in
    let nvals = Array.make ncap h.dummy in
    Array.blit h.keys 0 nkeys 0 h.size;
    Array.blit h.seqs 0 nseqs 0 h.size;
    Array.blit h.vals 0 nvals 0 h.size;
    h.keys <- nkeys;
    h.seqs <- nseqs;
    h.vals <- nvals
  end

let push h ~key ~seq value =
  ensure_capacity h;
  let i = h.size in
  h.size <- i + 1;
  sift_up h i key seq value

let min_key h =
  if h.size = 0 then invalid_arg "Heap.min_key: empty heap";
  h.keys.(0)

let min_seq h =
  if h.size = 0 then invalid_arg "Heap.min_seq: empty heap";
  h.seqs.(0)

let pop_min h =
  if h.size = 0 then invalid_arg "Heap.pop_min: empty heap";
  let vals = h.vals in
  let v = Array.unsafe_get vals 0 in
  let n = h.size - 1 in
  h.size <- n;
  if n > 0 then begin
    let lk = Array.unsafe_get h.keys n and ls = Array.unsafe_get h.seqs n in
    let lv = Array.unsafe_get vals n in
    (* The vacated slot must not keep the moved value alive. *)
    Array.unsafe_set vals n h.dummy;
    sift_down h lk ls lv
  end
  else Array.unsafe_set vals 0 h.dummy;
  v

let peek h = if h.size = 0 then None else Some (h.keys.(0), h.seqs.(0), h.vals.(0))

let pop h =
  if h.size = 0 then None
  else
    let key = h.keys.(0) and seq = h.seqs.(0) in
    Some (key, seq, pop_min h)

let clear h =
  (* Keep the backing arrays (capacity is sticky across runs of the
     same engine) but drop every retained value. *)
  Array.fill h.vals 0 h.size h.dummy;
  h.size <- 0
