module Event = Resilix_obs.Event

type level = Event.level = Debug | Info | Warn | Error

type event = Event.t = {
  time : Time.t;
  level : level;
  subsystem : string;
  payload : Event.payload;
}

type t = {
  capacity : int;
  mutable echo : bool;
  queue : event Queue.t;
}

let create ?(capacity = 65536) ?(echo = false) () = { capacity; echo; queue = Queue.create () }
let set_echo t echo = t.echo <- echo

let pp_event = Event.pp

let record t e =
  if Queue.length t.queue >= t.capacity then ignore (Queue.pop t.queue);
  Queue.push e t.queue;
  if t.echo then Format.eprintf "%a@." pp_event e

let emit_event t ~now ?(level = Info) subsystem payload =
  record t { time = now; level; subsystem; payload }

let emit t ~now level subsystem fmt =
  Format.kasprintf
    (fun text -> record t { time = now; level; subsystem; payload = Event.Log { text } })
    fmt

let events t = List.of_seq (Queue.to_seq t.queue)

let message e = Event.message e.payload

let query t ~pred = List.filter pred (events t)

let matches ~subsystem ~contains e =
  String.equal e.subsystem subsystem
  &&
  let msg = message e in
  let sub_len = String.length contains and msg_len = String.length msg in
  let rec scan i =
    if i + sub_len > msg_len then false
    else if String.sub msg i sub_len = contains then true
    else scan (i + 1)
  in
  sub_len = 0 || scan 0

let find t ~subsystem ~contains =
  List.find_opt (matches ~subsystem ~contains) (events t)

let count t ~subsystem ~contains =
  List.length (List.filter (matches ~subsystem ~contains) (events t))

let clear t = Queue.clear t.queue
