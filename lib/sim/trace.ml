type level = Debug | Info | Warn | Error

type event = { time : Time.t; level : level; subsystem : string; message : string }

type t = {
  capacity : int;
  mutable echo : bool;
  queue : event Queue.t;
}

let create ?(capacity = 65536) ?(echo = false) () = { capacity; echo; queue = Queue.create () }
let set_echo t echo = t.echo <- echo

let level_tag = function Debug -> "DBG" | Info -> "INF" | Warn -> "WRN" | Error -> "ERR"

let pp_event ppf e =
  Format.fprintf ppf "[%a] %s %-8s %s" Time.pp e.time (level_tag e.level) e.subsystem e.message

let record t e =
  if Queue.length t.queue >= t.capacity then ignore (Queue.pop t.queue);
  Queue.push e t.queue;
  if t.echo then Format.eprintf "%a@." pp_event e

let emit t ~now level subsystem fmt =
  Format.kasprintf (fun message -> record t { time = now; level; subsystem; message }) fmt

let events t = List.of_seq (Queue.to_seq t.queue)

let matches ~subsystem ~contains e =
  String.equal e.subsystem subsystem
  &&
  let sub_len = String.length contains and msg_len = String.length e.message in
  let rec scan i =
    if i + sub_len > msg_len then false
    else if String.sub e.message i sub_len = contains then true
    else scan (i + 1)
  in
  sub_len = 0 || scan 0

let find t ~subsystem ~contains =
  List.find_opt (matches ~subsystem ~contains) (events t)

let count t ~subsystem ~contains =
  List.length (List.filter (matches ~subsystem ~contains) (events t))

let clear t = Queue.clear t.queue
