module Event = Resilix_obs.Event

type level = Event.level = Debug | Info | Warn | Error

type event = Event.t = {
  time : Time.t;
  level : level;
  subsystem : string;
  payload : Event.payload;
}

(* Bounded ring over a plain array: recording is one store + index
   bump (the Queue representation allocated a cell per event).  The
   array grows geometrically up to [capacity] so small traces stay
   small; once full, the oldest slot is overwritten in place. *)
type t = {
  capacity : int;
  mutable echo : bool;
  mutable buf : event array;
  mutable head : int; (* index of the oldest retained event *)
  mutable len : int;
}

let create ?(capacity = 65536) ?(echo = false) () =
  { capacity; echo; buf = [||]; head = 0; len = 0 }

let set_echo t echo = t.echo <- echo

let pp_event = Event.pp

(* With [capacity = 0] and echo off there is no sink: recording (and,
   in [emit], even rendering the format string) is skipped. *)
let sink_attached t = t.capacity > 0 || t.echo

let record t e =
  if t.echo then Format.eprintf "%a@." pp_event e;
  if t.capacity > 0 then begin
    if t.len < t.capacity then begin
      let cap = Array.length t.buf in
      if t.len = cap then begin
        (* Not yet full: [head] is still 0, so a straight blit keeps
           order while the ring grows toward [capacity]. *)
        let ncap = min t.capacity (max 64 (cap * 2)) in
        let nbuf = Array.make ncap e in
        Array.blit t.buf 0 nbuf 0 t.len;
        t.buf <- nbuf
      end;
      t.buf.(t.len) <- e;
      t.len <- t.len + 1
    end
    else begin
      t.buf.(t.head) <- e;
      t.head <- (t.head + 1) mod t.capacity
    end
  end

let emit_event t ~now ?(level = Info) subsystem payload =
  if sink_attached t then record t { time = now; level; subsystem; payload }

let emit t ~now level subsystem fmt =
  if sink_attached t then
    Format.kasprintf
      (fun text -> record t { time = now; level; subsystem; payload = Event.Log { text } })
      fmt
  else
    (* No sink: consume the format arguments without rendering. *)
    Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let events t =
  let n = Array.length t.buf in
  List.init t.len (fun i -> t.buf.((t.head + i) mod n))

let message e = Event.message e.payload

let query t ~pred = List.filter pred (events t)

let matches ~subsystem ~contains e =
  String.equal e.subsystem subsystem
  &&
  let msg = message e in
  let sub_len = String.length contains and msg_len = String.length msg in
  (* Allocation-free substring scan: compare char by char instead of
     carving a fresh [String.sub] per position, so [query]/[count]
     over a large ring do no per-position allocation. *)
  let rec same i j = j >= sub_len || (msg.[i + j] = contains.[j] && same i (j + 1)) in
  let rec scan i = i + sub_len <= msg_len && (same i 0 || scan (i + 1)) in
  sub_len = 0 || scan 0

let find t ~subsystem ~contains =
  List.find_opt (matches ~subsystem ~contains) (events t)

let count t ~subsystem ~contains =
  List.length (List.filter (matches ~subsystem ~contains) (events t))

(* A throwaway event used to blank vacated slots, so cleared events
   become collectable without giving up the ring's allocation. *)
let blank : event =
  { time = 0; level = Debug; subsystem = ""; payload = Event.Log { text = "" } }

let allocated_slots t = Array.length t.buf

let clear t =
  (* Keep the array: re-paying geometric growth after every clear
     would put allocation back on the hot path (same contract as
     [Sim.Heap.clear]).  Blank the occupied slots so the cleared
     events are not retained through the ring. *)
  Array.fill t.buf 0 (Array.length t.buf) blank;
  t.head <- 0;
  t.len <- 0
