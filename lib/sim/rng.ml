type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

(* Hierarchical seeding: the child seed is a pure function of
   (seed, index) — no generator state is involved, so siblings are
   the same no matter how many there are or in which order they are
   derived.  Two mix rounds keep child streams decorrelated from the
   parent stream (which also walks gamma-spaced states but mixes only
   once per draw). *)
let derive ~seed ~index =
  if index < 0 then invalid_arg "Rng.derive: negative index";
  let z =
    mix
      (Int64.add
         (mix (Int64.of_int seed))
         (Int64.mul golden_gamma (Int64.of_int (index + 1))))
  in
  Int64.to_int z land max_int

let int t n =
  assert (n > 0);
  (* [to_int] keeps the low 63 bits as a signed value; mask to stay
     non-negative. *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod n

let int_in t ~min ~max =
  assert (max >= min);
  min + int t (max - min + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t p = float t 1.0 < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
