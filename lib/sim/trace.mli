(** Structured trace log for the simulated system.

    The trace is a bounded ring of typed {!Resilix_obs.Event.t}
    events: the kernel, servers, drivers and experiments emit either a
    typed payload ({!emit_event}) or a free-form message ({!emit},
    which wraps it in [Event.Log]).  Tests assert on the recorded
    history — structurally via {!query}, or by substring via the
    legacy {!find}/{!count} helpers, which match against the rendered
    {!message}.  [echo] mirrors events to stderr for interactive
    runs. *)

(** Re-exported so existing [Trace.Info] / [e.Trace.time] code keeps
    working; a trace event {e is} an observability event. *)
type level = Resilix_obs.Event.level = Debug | Info | Warn | Error

type event = Resilix_obs.Event.t = {
  time : Time.t;  (** virtual time at which the event was emitted *)
  level : level;
  subsystem : string;  (** e.g. ["kernel"], ["rs"], ["inet"] *)
  payload : Resilix_obs.Event.payload;
}

type t
(** A bounded in-memory trace buffer. *)

val create : ?capacity:int -> ?echo:bool -> unit -> t
(** [create ()] makes an empty trace keeping the last [capacity]
    (default 65536) events in a ring buffer.  With [echo:true] events
    are also printed to stderr as they happen.  [capacity:0] (with
    echo off) detaches the sink entirely: {!emit} then skips even the
    rendering of its format arguments, making tracing free for
    benchmark and exploration runs that never read the history. *)

val sink_attached : t -> bool
(** Whether anything would observe a recorded event (a ring with
    [capacity > 0], or echo).  Callers building expensive payloads by
    hand may use this as a guard; {!emit} and {!emit_event} already
    check it. *)

val set_echo : t -> bool -> unit
(** Toggle mirroring to stderr. *)

val emit : t -> now:Time.t -> level -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [emit t ~now level subsystem fmt ...] records one free-form
    [Log] event. *)

val emit_event : t -> now:Time.t -> ?level:level -> string -> Resilix_obs.Event.payload -> unit
(** [emit_event t ~now subsystem payload] records one typed event
    ([level] defaults to [Info]). *)

val events : t -> event list
(** All retained events, oldest first. *)

val message : event -> string
(** The event's one-line rendering (typed payloads render via
    {!Resilix_obs.Event.message}). *)

val query : t -> pred:(event -> bool) -> event list
(** Retained events satisfying [pred], oldest first.  The structural
    replacement for substring matching:
    [query t ~pred:(fun e -> match e.payload with Defect d -> ... )]. *)

val find : t -> subsystem:string -> contains:string -> event option
(** First retained event from [subsystem] whose rendered message
    contains [contains] as a substring. *)

val count : t -> subsystem:string -> contains:string -> int
(** Number of retained matching events. *)

val clear : t -> unit
(** Drop all retained events.  The ring keeps its allocation (like
    [Sim.Heap.clear]) so a cleared trace records again without
    re-paying geometric growth; the vacated slots are blanked, so
    cleared events become collectable. *)

val allocated_slots : t -> int
(** The ring's currently allocated slot count (grows geometrically up
    to [capacity], and is retained across {!clear}).  A test probe —
    not part of the observable event history. *)

val pp_event : Format.formatter -> event -> unit
(** One-line rendering of an event. *)
