(** Structured trace log for the simulated system.

    The kernel, servers, drivers and experiments all emit events here;
    tests assert on the recorded history, and [echo] mirrors events to
    stderr for interactive runs. *)

type level = Debug | Info | Warn | Error

type event = {
  time : Time.t;  (** virtual time at which the event was emitted *)
  level : level;
  subsystem : string;  (** e.g. ["kernel"], ["rs"], ["inet"] *)
  message : string;
}

type t
(** A bounded in-memory trace buffer. *)

val create : ?capacity:int -> ?echo:bool -> unit -> t
(** [create ()] makes an empty trace keeping the last [capacity]
    (default 65536) events.  With [echo:true] events are also printed
    to stderr as they happen. *)

val set_echo : t -> bool -> unit
(** Toggle mirroring to stderr. *)

val emit : t -> now:Time.t -> level -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [emit t ~now level subsystem fmt ...] records one event. *)

val events : t -> event list
(** All retained events, oldest first. *)

val find : t -> subsystem:string -> contains:string -> event option
(** First retained event from [subsystem] whose message contains
    [contains] as a substring. *)

val count : t -> subsystem:string -> contains:string -> int
(** Number of retained matching events. *)

val clear : t -> unit
(** Drop all retained events. *)

val pp_event : Format.formatter -> event -> unit
(** One-line rendering of an event. *)
