(** Imperative binary min-heap used by the event queue.

    Elements carry an integer primary key (the event time) and an
    integer secondary key (a monotonically increasing sequence number)
    so that ties are broken deterministically in FIFO order. *)

type 'a t
(** A heap of values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val peek : 'a t -> (int * int * 'a) option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop h] removes and returns the minimum element. *)

val clear : 'a t -> unit
(** Removes every element. *)
