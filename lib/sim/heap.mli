(** Imperative binary min-heap used by the event queue.

    Elements carry an integer primary key (the event time) and an
    integer secondary key (a monotonically increasing sequence number)
    so that ties are broken deterministically in FIFO order.

    The representation is pooled: keys and sequence numbers live in
    inline [int] arrays and values in a parallel array, so the hot
    path ([push]/[pop_min]) allocates nothing, and vacated slots are
    overwritten with the creation-time [dummy] so popped values become
    collectable immediately. *)

type 'a t
(** A heap of values of type ['a]. *)

val create : dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is a fresh empty heap.  [dummy] is an inert
    value of the element type used to blank vacated slots; it is never
    returned by any accessor. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v] with priority [(key, seq)].
    Allocation-free except when the backing arrays grow. *)

val min_key : 'a t -> int
(** Key of the minimum element, without allocating.
    @raise Invalid_argument on an empty heap. *)

val min_seq : 'a t -> int
(** Sequence number of the minimum element, without allocating.
    @raise Invalid_argument on an empty heap. *)

val pop_min : 'a t -> 'a
(** Removes and returns the minimum element's value, without boxing
    the result.  Read {!min_key}/{!min_seq} first if the priority is
    needed.
    @raise Invalid_argument on an empty heap. *)

val peek : 'a t -> (int * int * 'a) option
(** [peek h] is the minimum element without removing it.  Allocates;
    prefer {!min_key}/{!min_seq} on hot paths. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop h] removes and returns the minimum element.  Allocates;
    prefer {!pop_min} on hot paths. *)

val clear : 'a t -> unit
(** Removes every element.  Capacity is retained; every vacated value
    slot is blanked with the dummy so cleared values can be
    collected. *)
