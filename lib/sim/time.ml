type t = int

let zero = 0
let usec n = n
let msec n = n * 1_000
let sec n = n * 1_000_000
let of_sec_f s = int_of_float (s *. 1_000_000.)
let to_sec_f t = float_of_int t /. 1_000_000.
let add = ( + )
let compare = Int.compare

let pp ppf t =
  if t >= 1_000_000 || t <= -1_000_000 then Format.fprintf ppf "%.6fs" (to_sec_f t)
  else if t >= 1_000 || t <= -1_000 then Format.fprintf ppf "%.3fms" (float_of_int t /. 1_000.)
  else Format.fprintf ppf "%dus" t
