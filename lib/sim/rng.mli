(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows from one of
    these, seeded explicitly, so that experiments are replayable. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t].
    Use to give each subsystem its own stream. *)

val derive : seed:int -> index:int -> int
(** [derive ~seed ~index] is the child seed for the [index]-th
    sub-stream of [seed] — a pure function of the pair, so the value
    is independent of how many siblings exist or in which order they
    are derived (unlike {!split}, which advances the parent).  Use it
    to give each trial of a campaign its own hermetic seed.
    [index] must be non-negative. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val int_in : t -> min:int -> max:int -> int
(** [int_in t ~min ~max] is uniform in [\[min, max\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element of a non-empty array. *)
