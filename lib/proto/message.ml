type dl_mode = { promisc : bool; broadcast : bool } [@@deriving show, eq]
type dl_flags = { sent : bool; received : bool } [@@deriving show, eq]
type ds_value = V_endpoint of Endpoint.t | V_str of string | V_int of int [@@deriving show, eq]
type open_flags = { wr : bool; create : bool; trunc : bool } [@@deriving show, eq]
type sock_proto = Tcp | Udp [@@deriving show, eq]

type t =
  | Ok_reply
  | Err_reply of Errno.t
  | Dev_open of { minor : int }
  | Dev_close of { minor : int }
  | Dev_read of { minor : int; pos : int; grant : int; len : int }
  | Dev_write of { minor : int; pos : int; grant : int; len : int }
  | Dev_ioctl of { minor : int; op : string; arg : int }
  | Dev_reply of { result : (int, Errno.t) result }
  | Dl_conf of { mode : dl_mode }
  | Dl_conf_reply of { mac : int; result : (unit, Errno.t) result }
  | Dl_writev of { grant : int; len : int }
  | Dl_readv of { grant : int; len : int }
  | Dl_task_reply of { flags : dl_flags; read_len : int }
  | Dl_getstat
  | Dl_stat_reply of { frames_rx : int; frames_tx : int; errors : int }
  | Rs_up of Spec.t
  | Rs_down of { name : string }
  | Rs_restart of { name : string }
  | Rs_refresh of { name : string; program : string option }
  | Rs_complain of { name : string; reason : string }
  | Rs_service_restart of { name : string }
  | Rs_reboot
  | Rs_lookup of { name : string }
  | Rs_lookup_reply of { result : (Endpoint.t * int, Errno.t) result }
  | Rs_reply of { result : (unit, Errno.t) result }
  | Ds_publish of { key : string; value : ds_value }
  | Ds_retrieve of { key : string }
  | Ds_retrieve_reply of { result : (ds_value, Errno.t) result }
  | Ds_delete of { key : string }
  | Ds_subscribe of { pattern : string }
  | Ds_check
  | Ds_check_reply of { result : ((string * ds_value) option, Errno.t) result }
  | Ds_degraded_list
  | Ds_degraded_list_reply of { result : (string list, Errno.t) result }
  | Ds_snapshot_store of { key : string; data : string }
  | Ds_snapshot_fetch of { key : string }
  | Ds_snapshot_reply of { result : (string, Errno.t) result }
  | Ds_reply of { result : (unit, Errno.t) result }
  | Pm_spawn of {
      name : string;
      program : string;
      args : string list;
      priv : Privilege.t;
      mem_kb : int;
    }
  | Pm_spawn_reply of { result : (Endpoint.t * int, Errno.t) result }
  | Pm_kill of { pid : int; signal : Signal.t }
  | Pm_waitpid of { pid : int }  (** [-1] = any zombie child (non-blocking) *)
  | Pm_wait_reply of { result : (int * string * Status.exit_status, Errno.t) result }
      (** pid, process name, exit status *)
  | Pm_pidof of { name : string }
  | Pm_pidof_reply of { result : (int, Errno.t) result }
  | Pm_reply of { result : (unit, Errno.t) result }
  | Vfs_open of { path : string; flags : open_flags }
  | Vfs_open_reply of { result : (int, Errno.t) result }
  | Vfs_read of { fd : int; grant : int; len : int }
  | Vfs_write of { fd : int; grant : int; len : int }
  | Vfs_io_reply of { result : (int, Errno.t) result }
  | Vfs_lseek of { fd : int; pos : int }
  | Vfs_close of { fd : int }
  | Vfs_ioctl of { fd : int; op : string; arg : int }
  | Vfs_reply of { result : (unit, Errno.t) result }
  | Fs_lookup of { path : string; create : bool }
  | Fs_lookup_reply of { result : (int * int, Errno.t) result }
  | Fs_readwrite of { ino : int; write : bool; pos : int; grant : int; len : int }
  | Fs_io_reply of { result : (int, Errno.t) result }
  | Fs_truncate of { ino : int }
  | Fs_new_driver of { major : int; endpoint : Endpoint.t }
  | Fs_sync
  | Fs_reply of { result : (unit, Errno.t) result }
  | In_socket of { proto : sock_proto }
  | In_socket_reply of { result : (int, Errno.t) result }
  | In_connect of { sock : int; addr : int; port : int }
  | In_listen of { sock : int; port : int; backlog : int }
  | In_accept of { sock : int }
  | In_accept_reply of { result : (int, Errno.t) result }
  | In_send of { sock : int; grant : int; len : int }
  | In_recv of { sock : int; grant : int; len : int }
  | In_io_reply of { result : (int, Errno.t) result }
  | In_sendto of { sock : int; addr : int; port : int; grant : int; len : int }
  | In_recvfrom of { sock : int; grant : int; len : int }
  | In_recvfrom_reply of { result : (int * int * int, Errno.t) result }
  | In_close of { sock : int }
  | In_reply of { result : (unit, Errno.t) result }
[@@deriving show, eq]

type notify_kind =
  | N_sig of Signal.t
  | N_irq of int
  | N_alarm
  | N_heartbeat_request
  | N_heartbeat_reply
  | N_health_probe
  | N_health_reply
  | N_ds_update
[@@deriving show, eq]

let tag = function
  | Ok_reply -> "Ok_reply"
  | Err_reply _ -> "Err_reply"
  | Dev_open _ -> "Dev_open"
  | Dev_close _ -> "Dev_close"
  | Dev_read _ -> "Dev_read"
  | Dev_write _ -> "Dev_write"
  | Dev_ioctl _ -> "Dev_ioctl"
  | Dev_reply _ -> "Dev_reply"
  | Dl_conf _ -> "Dl_conf"
  | Dl_conf_reply _ -> "Dl_conf_reply"
  | Dl_writev _ -> "Dl_writev"
  | Dl_readv _ -> "Dl_readv"
  | Dl_task_reply _ -> "Dl_task_reply"
  | Dl_getstat -> "Dl_getstat"
  | Dl_stat_reply _ -> "Dl_stat_reply"
  | Rs_up _ -> "Rs_up"
  | Rs_down _ -> "Rs_down"
  | Rs_restart _ -> "Rs_restart"
  | Rs_refresh _ -> "Rs_refresh"
  | Rs_complain _ -> "Rs_complain"
  | Rs_service_restart _ -> "Rs_service_restart"
  | Rs_reboot -> "Rs_reboot"
  | Rs_lookup _ -> "Rs_lookup"
  | Rs_lookup_reply _ -> "Rs_lookup_reply"
  | Rs_reply _ -> "Rs_reply"
  | Ds_publish _ -> "Ds_publish"
  | Ds_retrieve _ -> "Ds_retrieve"
  | Ds_retrieve_reply _ -> "Ds_retrieve_reply"
  | Ds_delete _ -> "Ds_delete"
  | Ds_subscribe _ -> "Ds_subscribe"
  | Ds_check -> "Ds_check"
  | Ds_check_reply _ -> "Ds_check_reply"
  | Ds_degraded_list -> "Ds_degraded_list"
  | Ds_degraded_list_reply _ -> "Ds_degraded_list_reply"
  | Ds_snapshot_store _ -> "Ds_snapshot_store"
  | Ds_snapshot_fetch _ -> "Ds_snapshot_fetch"
  | Ds_snapshot_reply _ -> "Ds_snapshot_reply"
  | Ds_reply _ -> "Ds_reply"
  | Pm_spawn _ -> "Pm_spawn"
  | Pm_spawn_reply _ -> "Pm_spawn_reply"
  | Pm_kill _ -> "Pm_kill"
  | Pm_waitpid _ -> "Pm_waitpid"
  | Pm_wait_reply _ -> "Pm_wait_reply"
  | Pm_pidof _ -> "Pm_pidof"
  | Pm_pidof_reply _ -> "Pm_pidof_reply"
  | Pm_reply _ -> "Pm_reply"
  | Vfs_open _ -> "Vfs_open"
  | Vfs_open_reply _ -> "Vfs_open_reply"
  | Vfs_read _ -> "Vfs_read"
  | Vfs_write _ -> "Vfs_write"
  | Vfs_io_reply _ -> "Vfs_io_reply"
  | Vfs_lseek _ -> "Vfs_lseek"
  | Vfs_close _ -> "Vfs_close"
  | Vfs_ioctl _ -> "Vfs_ioctl"
  | Vfs_reply _ -> "Vfs_reply"
  | Fs_lookup _ -> "Fs_lookup"
  | Fs_lookup_reply _ -> "Fs_lookup_reply"
  | Fs_readwrite _ -> "Fs_readwrite"
  | Fs_io_reply _ -> "Fs_io_reply"
  | Fs_truncate _ -> "Fs_truncate"
  | Fs_new_driver _ -> "Fs_new_driver"
  | Fs_sync -> "Fs_sync"
  | Fs_reply _ -> "Fs_reply"
  | In_socket _ -> "In_socket"
  | In_socket_reply _ -> "In_socket_reply"
  | In_connect _ -> "In_connect"
  | In_listen _ -> "In_listen"
  | In_accept _ -> "In_accept"
  | In_accept_reply _ -> "In_accept_reply"
  | In_send _ -> "In_send"
  | In_recv _ -> "In_recv"
  | In_io_reply _ -> "In_io_reply"
  | In_sendto _ -> "In_sendto"
  | In_recvfrom _ -> "In_recvfrom"
  | In_recvfrom_reply _ -> "In_recvfrom_reply"
  | In_close _ -> "In_close"
  | In_reply _ -> "In_reply"
