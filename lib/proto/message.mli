(** All IPC message types, in one shared definition (like MINIX's
    global message headers).  The kernel never interprets these; each
    protocol section documents who speaks it.

    Bulk data never travels inside messages: requests carry a grant id
    naming a memory capability in the sender's grant table, and the
    receiver moves the data with the [safecopy] kernel call (Sec. 4). *)

type dl_mode = { promisc : bool; broadcast : bool } [@@deriving show, eq]
(** Receive-mode configuration for a network driver. *)

type dl_flags = { sent : bool; received : bool } [@@deriving show, eq]
(** Completion flags in a network driver's task reply. *)

type ds_value = V_endpoint of Endpoint.t | V_str of string | V_int of int
[@@deriving show, eq]
(** Values stored under stable names in the data store. *)

type open_flags = { wr : bool; create : bool; trunc : bool } [@@deriving show, eq]
(** VFS open flags. *)

type sock_proto = Tcp | Udp [@@deriving show, eq]
(** Transport protocols offered by the network server. *)

type t =
  (* ------- generic replies ------- *)
  | Ok_reply  (** generic success acknowledgement *)
  | Err_reply of Errno.t  (** generic failure acknowledgement *)
  (* ------- block/character device protocol (server -> driver) ------- *)
  | Dev_open of { minor : int }
  | Dev_close of { minor : int }
  | Dev_read of { minor : int; pos : int; grant : int; len : int }
      (** read [len] bytes at byte offset [pos] into the caller's granted buffer *)
  | Dev_write of { minor : int; pos : int; grant : int; len : int }
  | Dev_ioctl of { minor : int; op : string; arg : int }
      (** device-specific control, e.g. ["set_rate"], ["burn_start"] *)
  | Dev_reply of { result : (int, Errno.t) result }
      (** driver's answer: bytes transferred (or ioctl result) *)
  (* ------- network driver protocol (INET -> driver), MINIX DL_* ------- *)
  | Dl_conf of { mode : dl_mode }  (** (re)initialize; reply is [Dl_conf_reply] *)
  | Dl_conf_reply of { mac : int; result : (unit, Errno.t) result }
  | Dl_writev of { grant : int; len : int }  (** transmit one frame from granted buffer *)
  | Dl_readv of { grant : int; len : int }  (** post a receive buffer of size [len] *)
  | Dl_task_reply of { flags : dl_flags; read_len : int }
      (** asynchronous completion: a frame was sent and/or received *)
  | Dl_getstat
  | Dl_stat_reply of { frames_rx : int; frames_tx : int; errors : int }
  (* ------- reincarnation server protocol ------- *)
  | Rs_up of Spec.t  (** start a service (the `service up` command) *)
  | Rs_down of { name : string }  (** stop and forget a service *)
  | Rs_restart of { name : string }  (** user-requested restart (defect class 3) *)
  | Rs_refresh of { name : string; program : string option }
      (** dynamic update (defect class 6); [program] optionally names a new binary *)
  | Rs_complain of { name : string; reason : string }
      (** authorized server reports a malfunctioning component (class 5) *)
  | Rs_service_restart of { name : string }
      (** sent by a running policy script: actually perform the restart *)
  | Rs_reboot
      (** last-resort full restart of every guarded service ("the
          policy script may reboot the entire system", Sec. 5.2) *)
  | Rs_lookup of { name : string }  (** query a service's current endpoint/pid *)
  | Rs_lookup_reply of { result : (Endpoint.t * int, Errno.t) result }
  | Rs_reply of { result : (unit, Errno.t) result }
  (* ------- data store protocol ------- *)
  | Ds_publish of { key : string; value : ds_value }
  | Ds_retrieve of { key : string }
  | Ds_retrieve_reply of { result : (ds_value, Errno.t) result }
  | Ds_delete of { key : string }
  | Ds_subscribe of { pattern : string }
      (** glob-lite pattern: ["eth.*"] matches every Ethernet driver *)
  | Ds_check  (** fetch the next pending update after an [N_ds_update] notification *)
  | Ds_check_reply of { result : ((string * ds_value) option, Errno.t) result }
  | Ds_degraded_list
      (** query the components currently published as degraded
          (["degraded.*"] records with a non-zero value) *)
  | Ds_degraded_list_reply of { result : (string list, Errno.t) result }
  | Ds_snapshot_store of { key : string; data : string }
      (** private state backup, authenticated by stable name (Sec. 5.3) *)
  | Ds_snapshot_fetch of { key : string }
  | Ds_snapshot_reply of { result : (string, Errno.t) result }
  | Ds_reply of { result : (unit, Errno.t) result }
  (* ------- process manager protocol ------- *)
  | Pm_spawn of { name : string; program : string; args : string list; priv : Privilege.t; mem_kb : int }
  | Pm_spawn_reply of { result : (Endpoint.t * int, Errno.t) result }  (** endpoint, pid *)
  | Pm_kill of { pid : int; signal : Signal.t }
  | Pm_waitpid of { pid : int }  (** [-1] = any zombie child (non-blocking) *)
  | Pm_wait_reply of { result : (int * string * Status.exit_status, Errno.t) result }
      (** pid, process name, exit status *)
  | Pm_pidof of { name : string }
  | Pm_pidof_reply of { result : (int, Errno.t) result }
  | Pm_reply of { result : (unit, Errno.t) result }
  (* ------- VFS protocol (application -> VFS) ------- *)
  | Vfs_open of { path : string; flags : open_flags }
  | Vfs_open_reply of { result : (int, Errno.t) result }
  | Vfs_read of { fd : int; grant : int; len : int }
  | Vfs_write of { fd : int; grant : int; len : int }
  | Vfs_io_reply of { result : (int, Errno.t) result }  (** bytes moved *)
  | Vfs_lseek of { fd : int; pos : int }
  | Vfs_close of { fd : int }
  | Vfs_ioctl of { fd : int; op : string; arg : int }
  | Vfs_reply of { result : (unit, Errno.t) result }
  (* ------- VFS <-> file server (MFS) protocol ------- *)
  | Fs_lookup of { path : string; create : bool }
  | Fs_lookup_reply of { result : (int * int, Errno.t) result }  (** inode number, size *)
  | Fs_readwrite of { ino : int; write : bool; pos : int; grant : int; len : int }
  | Fs_io_reply of { result : (int, Errno.t) result }
  | Fs_truncate of { ino : int }
  | Fs_new_driver of { major : int; endpoint : Endpoint.t }
      (** VFS tells the file server about a recovered block driver *)
  | Fs_sync
  | Fs_reply of { result : (unit, Errno.t) result }
  (* ------- INET socket protocol (application -> INET) ------- *)
  | In_socket of { proto : sock_proto }
  | In_socket_reply of { result : (int, Errno.t) result }
  | In_connect of { sock : int; addr : int; port : int }
  | In_listen of { sock : int; port : int; backlog : int }
      (** [backlog] bounds the listener's un-accepted connections
          (handshaking + established); overflow SYNs are refused with
          RST *)
  | In_accept of { sock : int }
  | In_accept_reply of { result : (int, Errno.t) result }
  | In_send of { sock : int; grant : int; len : int }
  | In_recv of { sock : int; grant : int; len : int }
  | In_io_reply of { result : (int, Errno.t) result }
  | In_sendto of { sock : int; addr : int; port : int; grant : int; len : int }
  | In_recvfrom of { sock : int; grant : int; len : int }
  | In_recvfrom_reply of { result : (int * int * int, Errno.t) result }
      (** bytes, source address, source port *)
  | In_close of { sock : int }
  | In_reply of { result : (unit, Errno.t) result }
[@@deriving show, eq]

(** Non-blocking notification kinds (MINIX [notify]).  A notification
    carries no payload beyond its kind and source. *)
type notify_kind =
  | N_sig of Signal.t  (** signal delivery (SIGTERM for shutdown, SIGCHLD to RS) *)
  | N_irq of int  (** hardware interrupt on a registered line *)
  | N_alarm  (** kernel alarm set with the [alarm] kernel call *)
  | N_heartbeat_request  (** RS asking "are you alive?" (Sec. 5.1, input 4) *)
  | N_heartbeat_reply  (** driver's non-blocking "yes" *)
  | N_health_probe  (** RS's proactive liveness probe between heartbeats (policy v2) *)
  | N_health_reply  (** the component's non-blocking probe answer *)
  | N_ds_update  (** the data store has pending updates for a subscriber *)
[@@deriving show, eq]

val tag : t -> string
(** Constructor name only — compact label for traces. *)
