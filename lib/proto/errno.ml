type t =
  | E_dead_src_dst
  | E_bad_endpoint
  | E_no_perm
  | E_again
  | E_io
  | E_noent
  | E_inval
  | E_nospace
  | E_busy
  | E_timeout
  | E_conn_refused
  | E_conn_reset
  | E_bad_fd
  | E_exist
  | E_not_dir
  | E_is_dir
  | E_nodev
  | E_range
  | E_nomem
  | E_degraded
[@@deriving eq]

let to_string = function
  | E_dead_src_dst -> "EDEADSRCDST"
  | E_bad_endpoint -> "EBADENDPT"
  | E_no_perm -> "EPERM"
  | E_again -> "EAGAIN"
  | E_io -> "EIO"
  | E_noent -> "ENOENT"
  | E_inval -> "EINVAL"
  | E_nospace -> "ENOSPC"
  | E_busy -> "EBUSY"
  | E_timeout -> "ETIMEDOUT"
  | E_conn_refused -> "ECONNREFUSED"
  | E_conn_reset -> "ECONNRESET"
  | E_bad_fd -> "EBADF"
  | E_exist -> "EEXIST"
  | E_not_dir -> "ENOTDIR"
  | E_is_dir -> "EISDIR"
  | E_nodev -> "ENODEV"
  | E_range -> "ERANGE"
  | E_nomem -> "ENOMEM"
  | E_degraded -> "EDEGRADED"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let show = to_string
