(** Error codes shared across all IPC protocols (MINIX-style). *)

type t =
  | E_dead_src_dst  (** IPC peer died or endpoint is stale — the signal a server sees when a driver crashes mid-request *)
  | E_bad_endpoint  (** endpoint never existed / malformed *)
  | E_no_perm  (** privilege check failed *)
  | E_again  (** temporarily unavailable, retry *)
  | E_io  (** device or driver level I/O error *)
  | E_noent  (** no such name / file / service *)
  | E_inval  (** malformed request *)
  | E_nospace  (** out of blocks / table slots *)
  | E_busy  (** resource held (e.g. service already running) *)
  | E_timeout  (** operation timed out *)
  | E_conn_refused  (** no listener at destination *)
  | E_conn_reset  (** connection torn down by peer *)
  | E_bad_fd  (** unknown file / socket descriptor *)
  | E_exist  (** name already exists *)
  | E_not_dir  (** path component is not a directory *)
  | E_is_dir  (** directory where a file was expected *)
  | E_nodev  (** no driver registered for the device *)
  | E_range  (** offset/length outside the valid range *)
  | E_nomem  (** out of memory / grant slots *)
  | E_degraded
      (** target component is degraded: its circuit breaker is open and
          the servers reject new work cleanly instead of blocking *)
[@@deriving show, eq]

val to_string : t -> string
(** Short lowercase name, e.g. ["EDEADSRCDST"]. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)
