(** Process termination statuses and the defect classes of Sec. 5.1. *)

type exit_status =
  | Exited of int  (** voluntary exit with a code; 0 is clean *)
  | Panicked of string  (** internal-inconsistency panic *)
  | Killed of Signal.t  (** killed: by the user (SIGKILL/SIGTERM) or by a CPU/MMU exception (SIGSEGV/SIGILL) *)
[@@deriving show, eq]

(** The six inputs that can initiate recovery (Sec. 5.1). *)
type defect =
  | D_exit  (** 1: process exit or panic *)
  | D_exception  (** 2: crashed by CPU or MMU exception *)
  | D_killed_by_user  (** 3: killed by user *)
  | D_heartbeat  (** 4: heartbeat message missing *)
  | D_complaint  (** 5: complaint by another component *)
  | D_update  (** 6: dynamic update requested by user *)
[@@deriving show, eq]

val defect_of_exit : exit_status -> defect
(** Classify a termination reported by the process manager into
    defect class 1, 2 or 3. *)

val defect_number : defect -> int
(** The paper's class number (1..6); this is what a policy script
    receives as its [reason] argument. *)

val defect_name : defect -> string
(** Human-readable name of the class. *)
