type allow = All | Only of string list [@@deriving show, eq]

type t = {
  uid : int;
  ipc_to : allow;
  kcalls : allow;
  io_ports : (int * int) list;
  irqs : int list;
  may_complain : bool;
}
[@@deriving show, eq]

let none =
  { uid = 9999; ipc_to = Only []; kcalls = Only []; io_ports = []; irqs = []; may_complain = false }

let app =
  {
    none with
    ipc_to = Only [ "pm"; "rs"; "ds"; "vfs"; "inet" ];
    kcalls = Only [ "grant_create"; "grant_revoke"; "alarm" ];
  }

let server ~ipc_to =
  {
    uid = 10;
    ipc_to;
    kcalls =
      Only [ "safecopy"; "grant_create"; "grant_revoke"; "alarm"; "times"; "proc_kill_request" ];
    io_ports = [];
    irqs = [];
    may_complain = true;
  }

let driver ~ipc_to ~io_ports ~irqs =
  {
    uid = 20;
    ipc_to = Only (ipc_to @ [ "rs"; "ds" ]);
    kcalls =
      Only [ "safecopy"; "grant_create"; "grant_revoke"; "devio"; "irqctl"; "iommu_map"; "alarm" ];
    io_ports;
    irqs;
    may_complain = false;
  }

let allows a name = match a with All -> true | Only names -> List.mem name names
let allows_port t p = List.exists (fun (lo, hi) -> p >= lo && p <= hi) t.io_ports
let allows_irq t i = List.mem i t.irqs
