(** Service specifications — the arguments passed to the reincarnation
    server when a driver or server is started through the service
    utility (Sec. 5): binary (program key), stable name, privileges,
    heartbeat period, and an optional parametrized policy script. *)

type t = {
  name : string;  (** stable name, e.g. ["eth.rtl8139"] *)
  program : string;  (** key into the program (binary) registry *)
  args : string list;  (** argv-style parameters for the program *)
  privileges : Privilege.t;  (** least-authority grant for the process *)
  heartbeat_period : int;
      (** microseconds between heartbeat requests; [0] disables heartbeating *)
  max_heartbeat_misses : int;  (** consecutive misses before defect class 4 fires *)
  policy : string;  (** policy-script registry key; [""] = direct immediate restart *)
  policy_params : string list;  (** parameters passed to the policy script *)
  mem_kb : int;  (** address-space size for the process *)
}
[@@deriving show, eq]

val make :
  name:string ->
  program:string ->
  ?args:string list ->
  privileges:Privilege.t ->
  ?heartbeat_period:int ->
  ?max_heartbeat_misses:int ->
  ?policy:string ->
  ?policy_params:string list ->
  ?mem_kb:int ->
  unit ->
  t
(** Build a spec with sensible defaults (500 ms heartbeats, 4 misses,
    direct-restart policy, 256 KB address space). *)
