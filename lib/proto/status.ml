type exit_status = Exited of int | Panicked of string | Killed of Signal.t [@@deriving show, eq]

type defect = D_exit | D_exception | D_killed_by_user | D_heartbeat | D_complaint | D_update
[@@deriving show, eq]

let defect_of_exit = function
  | Exited _ | Panicked _ -> D_exit
  | Killed (Signal.Sig_segv | Signal.Sig_ill) -> D_exception
  | Killed (Signal.Sig_kill | Signal.Sig_term | Signal.Sig_chld) -> D_killed_by_user

let defect_number = function
  | D_exit -> 1
  | D_exception -> 2
  | D_killed_by_user -> 3
  | D_heartbeat -> 4
  | D_complaint -> 5
  | D_update -> 6

let defect_name = function
  | D_exit -> "exit/panic"
  | D_exception -> "cpu/mmu exception"
  | D_killed_by_user -> "killed by user"
  | D_heartbeat -> "heartbeat missing"
  | D_complaint -> "complaint"
  | D_update -> "dynamic update"
