(** Well-known process-table slots and stable service names.

    The trusted servers live at fixed slots established at boot; all
    other components are found through the data store by stable name
    (Sec. 5.3). *)

val hardware : Endpoint.t
(** Pseudo-endpoint used as the source of IRQ/alarm notifications. *)

val pm : Endpoint.t
(** The process manager. *)

val rs : Endpoint.t
(** The reincarnation server. *)

val ds : Endpoint.t
(** The data store. *)

val vfs : Endpoint.t
(** The virtual file system server. *)

val mfs : Endpoint.t
(** The MINIX-like file server. *)

val inet : Endpoint.t
(** The network server. *)

val first_dynamic_slot : int
(** Slot at which dynamically created processes begin. *)

val name_of_slot : int -> string option
(** Stable name of a well-known slot, if any. *)

(** Stable names used as data-store keys ([drv.*] entries are
    published by RS so dependents can subscribe, e.g. to ["eth.*"]). *)

val name_pm : string
val name_rs : string
val name_ds : string
val name_vfs : string
val name_mfs : string
val name_inet : string
