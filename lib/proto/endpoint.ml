type t = { slot : int; gen : int } [@@deriving eq]

let make ~slot ~gen = { slot; gen }

let compare a b =
  match Int.compare a.slot b.slot with 0 -> Int.compare a.gen b.gen | c -> c

let pp ppf t = Format.fprintf ppf "ep:%d.%d" t.slot t.gen
let to_string t = Format.asprintf "%a" pp t
let show = to_string
