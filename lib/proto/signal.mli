(** The small set of POSIX-style signals the simulated system uses. *)

type t =
  | Sig_term  (** polite shutdown request (dynamic update path) *)
  | Sig_kill  (** unconditional kill (the crash script uses this) *)
  | Sig_segv  (** MMU exception: bad pointer dereference *)
  | Sig_ill  (** CPU exception: illegal instruction *)
  | Sig_chld  (** child status change, sent by PM to the parent (RS) *)
[@@deriving show, eq]

val to_string : t -> string
(** e.g. ["SIGTERM"]. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)
