let ep slot = Endpoint.make ~slot ~gen:0

let hardware = ep 0
let pm = ep 1
let rs = ep 2
let ds = ep 3
let vfs = ep 4
let mfs = ep 5
let inet = ep 6
let first_dynamic_slot = 8

let name_pm = "pm"
let name_rs = "rs"
let name_ds = "ds"
let name_vfs = "vfs"
let name_mfs = "mfs"
let name_inet = "inet"

let name_of_slot = function
  | 0 -> Some "hardware"
  | 1 -> Some name_pm
  | 2 -> Some name_rs
  | 3 -> Some name_ds
  | 4 -> Some name_vfs
  | 5 -> Some name_mfs
  | 6 -> Some name_inet
  | _ -> None
