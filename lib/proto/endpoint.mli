(** Temporally unique IPC endpoints.

    An endpoint names a process instance: a process-table slot plus a
    generation number that the kernel bumps every time the slot is
    reused.  This is the paper's mechanism for making sure messages
    cannot be delivered to the wrong process across a restart — a
    recovered driver gets a fresh endpoint, and sends to the stale one
    fail with [E_dead_src_dst] (Sec. 5.3). *)

type t = { slot : int; gen : int } [@@deriving show, eq]

val make : slot:int -> gen:int -> t
(** Construct an endpoint. *)

val compare : t -> t -> int
(** Total order (slot-major). *)

val pp : Format.formatter -> t -> unit
(** Compact rendering, e.g. ["ep:7.2"]. *)

val to_string : t -> string
(** Same rendering as {!pp}, as a string. *)
