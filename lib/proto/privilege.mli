(** Per-process privileges (principle of least authority, Sec. 4).

    Privileges are attached to a process when the reincarnation server
    creates it and enforced by the kernel at run time: which stable
    names it may IPC to, which kernel calls it may make, which I/O
    port ranges and IRQ lines it may touch. *)

type allow = All | Only of string list [@@deriving show, eq]
(** A whitelist: [All] for trusted servers, [Only names] otherwise. *)

type t = {
  uid : int;  (** unprivileged user id (system processes get uid > 0) *)
  ipc_to : allow;  (** stable names of permitted IPC destinations *)
  kcalls : allow;  (** permitted kernel call names, e.g. ["safecopy"] *)
  io_ports : (int * int) list;  (** inclusive port ranges this process may access *)
  irqs : int list;  (** IRQ lines this process may register *)
  may_complain : bool;  (** may report malfunctioning components to RS (defect class 5) *)
}
[@@deriving show, eq]

val none : t
(** No authority at all (plain applications). *)

val app : t
(** An ordinary application: may IPC to the servers (PM, VFS, INET,
    DS, RS) but makes no kernel calls and touches no hardware. *)

val server : ipc_to:allow -> t
(** A trusted system server: full kernel-call set except process
    management, no hardware access. *)

val driver : ipc_to:string list -> io_ports:(int * int) list -> irqs:int list -> t
(** A device driver: the driver kernel-call subset (safecopy, devio,
    irqctl, iommu_map, grants, alarms) plus exactly the given hardware
    resources. *)

val allows : allow -> string -> bool
(** [allows a name] checks membership. *)

val allows_port : t -> int -> bool
(** Whether the process may touch I/O port [p]. *)

val allows_irq : t -> int -> bool
(** Whether the process may register IRQ line [i]. *)
