type t = {
  name : string;
  program : string;
  args : string list;
  privileges : Privilege.t;
  heartbeat_period : int;
  max_heartbeat_misses : int;
  policy : string;
  policy_params : string list;
  mem_kb : int;
}
[@@deriving show, eq]

let make ~name ~program ?(args = []) ~privileges ?(heartbeat_period = 500_000)
    ?(max_heartbeat_misses = 4) ?(policy = "") ?(policy_params = []) ?(mem_kb = 256) () =
  {
    name;
    program;
    args;
    privileges;
    heartbeat_period;
    max_heartbeat_misses;
    policy;
    policy_params;
    mem_kb;
  }
