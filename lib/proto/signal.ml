type t = Sig_term | Sig_kill | Sig_segv | Sig_ill | Sig_chld [@@deriving eq]

let to_string = function
  | Sig_term -> "SIGTERM"
  | Sig_kill -> "SIGKILL"
  | Sig_segv -> "SIGSEGV"
  | Sig_ill -> "SIGILL"
  | Sig_chld -> "SIGCHLD"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let show = to_string
