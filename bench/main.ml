(* The benchmark harness.

   Running `dune exec bench/main.exe` does two things:

   1. Regenerates every table and figure of the paper's evaluation at
      benchmark scale (Fig. 3, Fig. 7, Fig. 8, Sec. 7.2 in both the
      emulator and wedgeable-hardware variants, Fig. 9) plus the
      ablations — printed as tables with the paper's anchor numbers.

   2. Runs Bechamel micro/macro benchmarks: one Test.make per paper
      table (measuring the wall-clock cost of regenerating it at small
      scale) and one per hot primitive of the simulator.

   Absolute throughput numbers are in *virtual* time and calibrated to
   the paper's hardware; the Bechamel numbers are host wall-clock.

   Flags:
     --smoke             reduced scale + skip Bechamel (CI-friendly)
     --metrics-out FILE  write JSONL metrics, spans and MTTR reports
                         from the fig7/fig8 runs to FILE *)

module E = Resilix_experiments
module Md5 = Resilix_checksum.Md5
module Sha1 = Resilix_checksum.Sha1
module Crc32 = Resilix_checksum.Crc32
module Fnv = Resilix_checksum.Fnv
module Engine = Resilix_sim.Engine
module Wire = Resilix_net.Wire

let mb = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's tables                               *)
(* ------------------------------------------------------------------ *)

let regenerate_tables ~smoke ~obs () =
  if smoke then begin
    (* Reduced scale: enough virtual traffic for a few recoveries per
       interval, fast enough for the test suite. *)
    E.Fig7.print (E.Fig7.run ~size:(8 * mb) ~intervals:[ 1; 2 ] ?obs ());
    E.Fig8.print (E.Fig8.run ~size:(32 * mb) ~intervals:[ 1; 2 ] ?obs ())
  end
  else begin
    E.Fig3.print (E.Fig3.run ());
    E.Fig7.print (E.Fig7.run ~size:(64 * mb) ~intervals:[ 1; 2; 4; 8; 15 ] ?obs ());
    E.Fig8.print (E.Fig8.run ~size:(256 * mb) ~intervals:[ 1; 2; 4; 8; 15 ] ?obs ());
    E.Sec72.print "emulator variant" (E.Sec72.run ~faults:2000 ());
    E.Sec72.print "real-hardware variant: wedgeable NIC"
      (E.Sec72.run ~faults:2000 ~wedge_prob:1.0 ~has_master_reset:false ());
    E.Fig9.print (E.Fig9.run ());
    E.Ablations.print_heartbeat (E.Ablations.heartbeat_sweep ());
    E.Ablations.print_policy (E.Ablations.policy_comparison ());
    E.Ablations.print_ipc (E.Ablations.ipc_microbench ())
  end

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel benchmarks                                         *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let payload_64k = String.init 65536 (fun i -> Char.chr (i land 0xFF))

let checksum_tests =
  [
    Test.make ~name:"md5 64KB" (Staged.stage (fun () -> ignore (Md5.digest_string payload_64k)));
    Test.make ~name:"sha1 64KB" (Staged.stage (fun () -> ignore (Sha1.digest_string payload_64k)));
    Test.make ~name:"crc32 64KB" (Staged.stage (fun () -> ignore (Crc32.string payload_64k)));
    Test.make ~name:"fnv 64KB" (Staged.stage (fun () -> ignore (Fnv.string payload_64k)));
  ]

let engine_test =
  Test.make ~name:"engine: 1000 events"
    (Staged.stage (fun () ->
         let engine = Engine.create () in
         for i = 1 to 1000 do
           ignore (Engine.schedule engine ~after:i (fun () -> ()))
         done;
         Engine.run engine))

let wire_frame =
  {
    Wire.dst_mac = 2;
    src_mac = 1;
    packet =
      {
        Wire.src_ip = Wire.ip 10 0 0 1;
        dst_ip = Wire.ip 10 0 0 2;
        body =
          Wire.Tcp
            {
              Wire.src_port = 40000;
              dst_port = 80;
              seq = 17;
              ack_no = 21;
              syn = false;
              ack = true;
              fin = false;
              rst = false;
              window = 65535;
              payload = Bytes.make 1460 'x';
            };
      };
  }

let wire_test =
  Test.make ~name:"wire: encode+decode 1460B segment"
    (Staged.stage (fun () ->
         match Wire.decode (Wire.encode wire_frame) with Ok _ -> () | Error _ -> assert false))

(* One Test.make per paper table, at reduced scale. *)
let table_tests =
  [
    Test.make ~name:"table fig3 (3 scenarios)" (Staged.stage (fun () -> ignore (E.Fig3.run ())));
    Test.make ~name:"table fig7 (8MB, 1 interval)"
      (Staged.stage (fun () -> ignore (E.Fig7.run ~size:(8 * mb) ~intervals:[ 1 ] ())));
    Test.make ~name:"table fig8 (32MB, 1 interval)"
      (Staged.stage (fun () -> ignore (E.Fig8.run ~size:(32 * mb) ~intervals:[ 1 ] ())));
    Test.make ~name:"table sec7.2 (200 faults)"
      (Staged.stage (fun () -> ignore (E.Sec72.run ~faults:200 ())));
    Test.make ~name:"table fig9 (sclc over the repo)"
      (Staged.stage (fun () -> ignore (E.Fig9.run ())));
  ]

let all_benchmarks =
  Test.make_grouped ~name:"resilix"
    (checksum_tests @ [ engine_test; wire_test ] @ table_tests)

let run_bechamel () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false () in
  let raw = Benchmark.all cfg instances all_benchmarks in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_newline ();
  print_endline "=== Bechamel micro/macro benchmarks (host wall clock) ===";
  Printf.printf "%-45s %16s\n" "benchmark" "time per run";
  Printf.printf "%s\n" (String.make 62 '-');
  let rows = ref [] in
  Hashtbl.iter (fun name result -> rows := (name, result) :: !rows) results;
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
          in
          Printf.printf "%-45s %16s\n" name pretty
      | _ -> Printf.printf "%-45s %16s\n" name "n/a")
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let parse_args () =
  let smoke = ref false in
  let metrics_out = ref None in
  let rec go = function
    | [] -> ()
    | "--smoke" :: rest -> smoke := true; go rest
    | "--metrics-out" :: file :: rest -> metrics_out := Some file; go rest
    | arg :: _ ->
        Printf.eprintf "usage: %s [--smoke] [--metrics-out FILE]\n(unknown argument %S)\n"
          Sys.executable_name arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  (!smoke, !metrics_out)

let () =
  let smoke, metrics_out = parse_args () in
  match metrics_out with
  | None ->
      regenerate_tables ~smoke ~obs:None ();
      if not smoke then run_bechamel ()
  | Some file ->
      let oc = open_out file in
      let sink line = output_string oc line; output_char oc '\n' in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> regenerate_tables ~smoke ~obs:(Some sink) ());
      if not smoke then run_bechamel ()
