(* The benchmark harness.

   Running `dune exec bench/main.exe` does two things:

   1. Regenerates every table and figure of the paper's evaluation at
      benchmark scale (Fig. 3, Fig. 7, Fig. 8, Sec. 7.2 in both the
      emulator and wedgeable-hardware variants, Fig. 9) plus the
      ablations — printed as tables with the paper's anchor numbers.
      Sweeps run as trial campaigns on a domain pool (see
      lib/harness); the output is byte-identical for any --jobs.

   2. Runs Bechamel micro/macro benchmarks: one Test.make per paper
      table (measuring the wall-clock cost of regenerating it at small
      scale) and one per hot primitive of the simulator.

   Absolute throughput numbers are in *virtual* time and calibrated to
   the paper's hardware; the Bechamel numbers are host wall-clock.

   Flags:
     --smoke             reduced scale + skip Bechamel (CI-friendly)
     --jobs N            worker-domain count for the trial campaigns
                         (default: all cores)
     --progress          force the live stderr campaign-progress line
                         (default: only when stderr is a tty); never
                         touches stdout
     --metrics-out FILE  write JSONL metrics, spans and MTTR reports
                         from the fig7/fig8 runs to FILE
     --speedup-out FILE  run the smoke sweep sequentially and on the
                         domain pool, record wall-clock + speedup as
                         JSON to FILE (the BENCH_PR<n>.json artifact)
     --engine-out FILE   run the simulation-core microbench (timer
                         storm events/sec under Fifo and Seeded, kernel
                         IPC ping-pong round-trips/sec) and record it
                         as JSON to FILE (the BENCH_PR7.json artifact);
                         --smoke shrinks the event counts
     --engine-only       exit right after --engine-out (skip tables and
                         Bechamel)
     --coverage-out FILE run the coverage-growth microbench (distinct
                         exploration signatures per run budget, guided
                         corpus mutation vs blind sampling) and record
                         it as JSON to FILE (the BENCH_PR8.json
                         artifact); --smoke shrinks the run budget and
                         transfer size
     --coverage-only     exit right after --coverage-out (skip tables
                         and Bechamel); exit 1 if guided discovered
                         fewer signatures than blind

   Exit status is non-zero when any experiment's internal integrity
   check fails (digest mismatch, crash-class split inconsistency) or
   when any campaign trial failed (every failure is summarized by
   trial name on stderr). *)

module E = Resilix_experiments
module Campaign = Resilix_harness.Campaign
module Progress = Resilix_harness.Progress
module Md5 = Resilix_checksum.Md5
module Sha1 = Resilix_checksum.Sha1
module Crc32 = Resilix_checksum.Crc32
module Fnv = Resilix_checksum.Fnv
module Engine = Resilix_sim.Engine
module Wire = Resilix_net.Wire

let mb = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's tables                               *)
(* ------------------------------------------------------------------ *)

(* Returns the names of experiments whose internal integrity check
   failed (empty = all clean). *)
let regenerate_tables ~smoke ~jobs ~progress ~obs () =
  let prog label = Progress.make ~when_:progress ~label () in
  let failed = ref [] in
  let check name ok = if not ok then failed := name :: !failed in
  if smoke then begin
    (* Reduced scale: enough virtual traffic for a few recoveries per
       interval, fast enough for the test suite. *)
    let r7 = E.Fig7.run ?jobs ?on_progress:(prog "fig7") ~size:(8 * mb) ~intervals:[ 1; 2 ] ?obs () in
    E.Fig7.print r7;
    check "fig7 integrity (fnv digest)" (E.Fig7.ok r7);
    let r8 = E.Fig8.run ?jobs ?on_progress:(prog "fig8") ~size:(32 * mb) ~intervals:[ 1; 2 ] ?obs () in
    E.Fig8.print r8;
    check "fig8 integrity (fnv digest)" (E.Fig8.ok r8)
  end
  else begin
    E.Fig3.print (E.Fig3.run ?jobs ?on_progress:(prog "fig3") ());
    let r7 =
      E.Fig7.run ?jobs ?on_progress:(prog "fig7") ~size:(64 * mb) ~intervals:[ 1; 2; 4; 8; 15 ]
        ?obs ()
    in
    E.Fig7.print r7;
    check "fig7 integrity (fnv digest)" (E.Fig7.ok r7);
    let r8 =
      E.Fig8.run ?jobs ?on_progress:(prog "fig8") ~size:(256 * mb) ~intervals:[ 1; 2; 4; 8; 15 ]
        ?obs ()
    in
    E.Fig8.print r8;
    check "fig8 integrity (fnv digest)" (E.Fig8.ok r8);
    (* The paper's full 12,500-fault campaign (the shard/default). *)
    let o_emu = E.Sec72.run ?jobs ?on_progress:(prog "sec72/emu") () in
    E.Sec72.print "emulator variant" o_emu;
    check "sec7.2 emulator crash-class split" (E.Sec72.ok o_emu);
    let o_hw =
      E.Sec72.run ?jobs ?on_progress:(prog "sec72/hw") ~wedge_prob:1.0 ~has_master_reset:false ()
    in
    E.Sec72.print "real-hardware variant: wedgeable NIC" o_hw;
    check "sec7.2 hw crash-class split" (E.Sec72.ok o_hw);
    E.Fig9.print (E.Fig9.run ?jobs ?on_progress:(prog "fig9") ());
    E.Ablations.print_heartbeat
      (E.Ablations.heartbeat_sweep ?jobs ?on_progress:(prog "ablation/heartbeat") ());
    E.Ablations.print_policy
      (E.Ablations.policy_comparison ?jobs ?on_progress:(prog "ablation/policy") ());
    E.Ablations.print_ipc (E.Ablations.ipc_microbench ?jobs ?on_progress:(prog "ablation/ipc") ())
  end;
  List.rev !failed

(* ------------------------------------------------------------------ *)
(* Campaign-runner speedup measurement (BENCH_PR2.json)                *)
(* ------------------------------------------------------------------ *)

let measure_speedup ~jobs file =
  let trials () = E.Fig7.trials ~size:(8 * mb) ~intervals:[ 1; 2 ] () in
  let n_trials = List.length (trials ()) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let jobs = match jobs with Some j -> j | None -> Campaign.default_jobs () in
  let seq_s, seq = time (fun () -> Campaign.(values (run ~jobs:1 (trials ())))) in
  let par_s, par = time (fun () -> Campaign.(values (run ~jobs (trials ())))) in
  let identical = E.Fig7.reduce seq = E.Fig7.reduce par in
  (* A parallel wall clock below the timer resolution makes the ratio
     meaningless: flag the measurement invalid rather than reporting a
     fake 0x speedup. *)
  let speedup = if par_s > 0. then Some (seq_s /. par_s) else None in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"campaign runner, fig7 smoke sweep (8 MB, baseline + 2 kill intervals)\",\n\
    \  \"trials\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"sequential_s\": %.3f,\n\
    \  \"parallel_s\": %.3f,\n\
    \  \"speedup\": %s,\n\
    \  \"speedup_valid\": %b,\n\
    \  \"identical_output\": %b\n\
     }\n"
    n_trials jobs
    (Campaign.default_jobs ())
    seq_s par_s
    (match speedup with Some s -> Printf.sprintf "%.3f" s | None -> "null")
    (speedup <> None) identical;
  close_out oc;
  Printf.printf
    "\ncampaign speedup: %d trials, jobs=%d: %.2fs sequential, %.2fs parallel (%s, output %s) -> %s\n"
    n_trials jobs seq_s par_s
    (match speedup with
    | Some s -> Printf.sprintf "%.2fx" s
    | None -> "invalid: parallel time below timer resolution")
    (if identical then "identical" else "DIVERGED")
    file;
  identical

(* ------------------------------------------------------------------ *)
(* Engine + IPC microbench (BENCH_PR7.json)                            *)
(* ------------------------------------------------------------------ *)

module Kernel = Resilix_kernel.Kernel
module SimTrace = Resilix_sim.Trace
module Rng = Resilix_sim.Rng
module Sysif = Resilix_kernel.Sysif
module Api = Sysif.Api
module Privilege = Resilix_proto.Privilege
module Msg = Resilix_proto.Message

(* Seed-engine throughput measured on this container immediately before
   the PR-7 hot-path refactor (commit a108f84, timer storm below at
   full scale under Fifo).  The refactored engine's speedup in
   [measure_engine] is reported against this pinned baseline; rerunning
   on different hardware invalidates the comparison, which is why the
   artifact records [speedup_valid]. *)
(* Fifo timer-storm throughput of the seed engine (commit a108f84:
   boxed heap entries, peek-then-pop, list-based candidate collection),
   measured on this container with the exact storm below (512 timers,
   1e6 events).  Kept as the fixed "before" so BENCH_PR7.json reports
   the refactor's speedup against a stable baseline. *)
let seed_events_per_sec = 4_686_803.0

(* Timer storm: [timers] concurrent timers firing and rescheduling
   themselves across 7 colliding instants until [total] events have
   fired.  The collisions make the same-instant candidate path (and
   under [Seeded], the decision trace) part of the measured work. *)
let timer_storm ~policy ~timers ~total () =
  let engine = Engine.create ~policy () in
  let fired = ref 0 in
  let rec tick i () =
    incr fired;
    if !fired + timers <= total then
      ignore (Engine.schedule engine ~after:(1 + ((i + !fired) mod 7)) (tick i))
  in
  for i = 0 to timers - 1 do
    ignore (Engine.schedule engine ~after:(1 + (i mod 7)) (tick i))
  done;
  Engine.run engine;
  !fired

(* Kernel IPC ping-pong: a client sendrecs [rounds] times to an echo
   server; every round trip is a rendezvous + reply through the
   kernel's delivery path. *)
let ipc_pingpong ~rounds () =
  let engine = Engine.create () in
  let kernel =
    Kernel.create ~engine ~trace:(SimTrace.create ()) ~rng:(Rng.create ~seed:7) ()
  in
  let all_priv =
    { Privilege.none with Privilege.ipc_to = Privilege.All; kcalls = Privilege.All }
  in
  Kernel.register_program kernel "echo" (fun () ->
      let rec loop () =
        (match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_msg { src; _ }) -> ignore (Api.send src Msg.Ok_reply)
        | _ -> ());
        loop ()
      in
      loop ());
  let echo_ep =
    match
      Kernel.spawn_dynamic kernel ~name:"echo" ~program:"echo" ~args:[] ~priv:all_priv ~mem_kb:64
    with
    | Ok e -> e
    | Error _ -> failwith "spawn echo"
  in
  let done_rounds = ref 0 in
  Kernel.register_program kernel "ping" (fun () ->
      for _ = 1 to rounds do
        (match Api.sendrec echo_ep Msg.Ok_reply with Ok _ -> incr done_rounds | Error _ -> ())
      done);
  (match
     Kernel.spawn_dynamic kernel ~name:"ping" ~program:"ping" ~args:[] ~priv:all_priv ~mem_kb:64
   with
  | Ok _ -> ()
  | Error _ -> failwith "spawn ping");
  Engine.run engine;
  !done_rounds

let measure_engine ~smoke file =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let timers = 512 in
  let total = if smoke then 20_000 else 1_000_000 in
  let rounds = if smoke then 2_000 else 50_000 in
  let fifo_s, fifo_n = time (timer_storm ~policy:Engine.Fifo ~timers ~total) in
  let seeded_s, seeded_n = time (timer_storm ~policy:(Engine.Seeded 7) ~timers ~total) in
  let ipc_s, ipc_n = time (ipc_pingpong ~rounds) in
  let rate n s = if s > 0. then float_of_int n /. s else 0. in
  let fifo_eps = rate fifo_n fifo_s in
  let seeded_eps = rate seeded_n seeded_s in
  let ipc_rps = rate ipc_n ipc_s in
  (* The speedup against the pinned seed baseline only means something
     at the baseline's scale and above timer resolution. *)
  let speedup_valid = (not smoke) && fifo_s > 0.01 && seed_events_per_sec > 0. in
  let speedup = if seed_events_per_sec > 0. then fifo_eps /. seed_events_per_sec else 0. in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"engine microbench: timer storm (events/sec) + kernel IPC ping-pong \
     (round-trips/sec)\",\n\
    \  \"cores\": %d,\n\
    \  \"smoke\": %b,\n\
    \  \"timers\": %d,\n\
    \  \"events\": %d,\n\
    \  \"events_per_sec_fifo\": %.0f,\n\
    \  \"events_per_sec_seeded\": %.0f,\n\
    \  \"ipc_rounds\": %d,\n\
    \  \"ipc_roundtrips_per_sec\": %.0f,\n\
    \  \"events_per_sec_before\": %.0f,\n\
    \  \"events_per_sec_after\": %.0f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"speedup_valid\": %b\n\
     }\n"
    (Campaign.default_jobs ())
    smoke timers total fifo_eps seeded_eps rounds ipc_rps seed_events_per_sec fifo_eps speedup
    speedup_valid;
  close_out oc;
  Printf.printf
    "\nengine microbench: %d events: %.0f ev/s fifo, %.0f ev/s seeded; %d IPC round trips: %.0f/s \
     -> %s\n"
    total fifo_eps seeded_eps rounds ipc_rps file;
  if seed_events_per_sec > 0. then
    Printf.printf "engine speedup vs seed baseline (%.0f ev/s): %.2fx%s\n" seed_events_per_sec
      speedup
      (if speedup_valid then "" else " (not comparable at this scale)")

(* ------------------------------------------------------------------ *)
(* Coverage-growth microbench (BENCH_PR8.json)                         *)
(* ------------------------------------------------------------------ *)

module Dst = Resilix_dst

(* Guided vs blind exploration on the same run budget: how many
   distinct coverage signatures (violated-invariant set + recovery
   shape, see lib/dst/corpus.mli) does each discover?  The bound is
   deliberately tight so the scenario fails in many distinct ways —
   coverage growth, not bug-finding, is what is measured.  Both modes
   go through [Explore.run_guided] ([~fresh_only:true] disables
   mutation, making it blind sampling with signature tracking), so the
   comparison isolates the corpus-mutation schedule. *)
let measure_coverage ~smoke file =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let scenario =
    if smoke then Dst.Scenario.wget_sized ~size:(64 * 1024) () else Dst.Scenario.wget_kills
  in
  let runs = if smoke then 32 else 240 in
  let seed = 42 and bound = 1_000 and batch = 16 in
  let explore ~fresh_only () =
    Dst.Explore.run_guided ~fresh_only ~bound ~batch scenario ~seed ~runs ()
  in
  let blind_s, blind = time (explore ~fresh_only:true) in
  let guided_s, guided = time (explore ~fresh_only:false) in
  let sigs (g : Dst.Explore.guided) = List.length g.Dst.Explore.g_signatures in
  let failing (g : Dst.Explore.guided) = List.length g.Dst.Explore.g_failing in
  let guided_ge_blind = sigs guided >= sigs blind in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"coverage growth: distinct exploration signatures per run budget, \
     guided (corpus mutation) vs blind (fresh sampling)\",\n\
    \  \"scenario\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"smoke\": %b,\n\
    \  \"runs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"bound\": %d,\n\
    \  \"batch\": %d,\n\
    \  \"signatures_blind\": %d,\n\
    \  \"signatures_guided\": %d,\n\
    \  \"failing_signatures_blind\": %d,\n\
    \  \"failing_signatures_guided\": %d,\n\
    \  \"guided_ge_blind\": %b,\n\
    \  \"blind_s\": %.3f,\n\
    \  \"guided_s\": %.3f\n\
     }\n"
    scenario.Dst.Scenario.name
    (Campaign.default_jobs ())
    smoke runs seed bound batch (sigs blind) (sigs guided) (failing blind) (failing guided)
    guided_ge_blind blind_s guided_s;
  close_out oc;
  Printf.printf
    "\ncoverage growth (%s, %d runs): blind %d signature(s) (%d failing) in %.2fs, guided %d \
     (%d failing) in %.2fs -> %s\n"
    scenario.Dst.Scenario.name runs (sigs blind) (failing blind) blind_s (sigs guided)
    (failing guided) guided_s file;
  guided_ge_blind

(* ------------------------------------------------------------------ *)
(* C10K storm benchmark (BENCH_PR10.json)                              *)
(* ------------------------------------------------------------------ *)

(* The storm scenario at benchmark scale: 500 concurrent connections
   against the httpd worker pool with a mid-storm Ethernet-driver
   kill.  Run twice with the same seed; the rendered report must be
   byte-identical (the storm is virtual-time-only), every request must
   resolve, and no response may be corrupted.  Smoke shrinks to the
   64-request builtin. *)
let measure_storm ~smoke file =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let requests, concurrency, workers, backlog =
    if smoke then (64, 32, 8, 16) else (500, 500, 32, 128)
  in
  let sc =
    if smoke then Dst.Scenario.storm
    else Dst.Scenario.storm_sized ~requests ~concurrency ~workers ~backlog ()
  in
  let seed = 42 in
  let plan = sc.Dst.Scenario.plan ~seed ~faults:sc.Dst.Scenario.default_faults in
  let once () = sc.Dst.Scenario.run ~seed ~policy:Engine.Fifo ~plan in
  let run1_s, r1 = time once in
  let run2_s, r2 = time once in
  let deterministic =
    Dst.Scenario.storm_lines r1 = Dst.Scenario.storm_lines r2
    && r1.Dst.Scenario.r_decisions = r2.Dst.Scenario.r_decisions
  in
  let s =
    match r1.Dst.Scenario.r_storm with
    | Some s -> s
    | None -> failwith "storm scenario produced no storm stats"
  in
  let resolved =
    s.Dst.Scenario.s_completed + s.Dst.Scenario.s_mismatches + s.Dst.Scenario.s_timeouts
    + s.Dst.Scenario.s_failed
  in
  let all_resolved = resolved = s.Dst.Scenario.s_requests in
  let ok = deterministic && all_resolved && s.Dst.Scenario.s_mismatches = 0 in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"C10K storm: concurrent HTTP-ish load + mid-storm driver kill, \
     tail latency and determinism\",\n\
    \  \"scenario\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"smoke\": %b,\n\
    \  \"seed\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"concurrency\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"backlog\": %d,\n\
    \  \"completed\": %d,\n\
    \  \"timeouts\": %d,\n\
    \  \"failed\": %d,\n\
    \  \"mismatches\": %d,\n\
    \  \"refused\": %d,\n\
    \  \"retries\": %d,\n\
    \  \"served\": %d,\n\
    \  \"bytes_in\": %d,\n\
    \  \"p50_us\": %d,\n\
    \  \"p95_us\": %d,\n\
    \  \"p99_us\": %d,\n\
    \  \"outage_at_us\": %d,\n\
    \  \"recovered_by_us\": %d,\n\
    \  \"run1_s\": %.3f,\n\
    \  \"run2_s\": %.3f,\n\
    \  \"all_resolved\": %b,\n\
    \  \"deterministic\": %b\n\
     }\n"
    sc.Dst.Scenario.name
    (Campaign.default_jobs ())
    smoke seed requests concurrency workers backlog s.Dst.Scenario.s_completed
    s.Dst.Scenario.s_timeouts s.Dst.Scenario.s_failed s.Dst.Scenario.s_mismatches
    s.Dst.Scenario.s_refused s.Dst.Scenario.s_retries s.Dst.Scenario.s_served
    s.Dst.Scenario.s_bytes_in s.Dst.Scenario.s_p50 s.Dst.Scenario.s_p95 s.Dst.Scenario.s_p99
    s.Dst.Scenario.s_outage_at s.Dst.Scenario.s_recovered_by run1_s run2_s all_resolved
    deterministic;
  close_out oc;
  Printf.printf
    "\nstorm (%s, %d requests @ %d concurrent): %d completed, %d timeout(s), %d failed, \
     p50=%dus p95=%dus p99=%dus in %.2fs/%.2fs -> %s (%s) -> %s\n"
    sc.Dst.Scenario.name requests concurrency s.Dst.Scenario.s_completed
    s.Dst.Scenario.s_timeouts s.Dst.Scenario.s_failed s.Dst.Scenario.s_p50 s.Dst.Scenario.s_p95
    s.Dst.Scenario.s_p99 run1_s run2_s
    (if deterministic then "deterministic" else "DIVERGED")
    (if all_resolved then "all resolved" else "REQUESTS LOST")
    file;
  ok

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel benchmarks                                         *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let payload_64k = String.init 65536 (fun i -> Char.chr (i land 0xFF))

let checksum_tests =
  [
    Test.make ~name:"md5 64KB" (Staged.stage (fun () -> ignore (Md5.digest_string payload_64k)));
    Test.make ~name:"sha1 64KB" (Staged.stage (fun () -> ignore (Sha1.digest_string payload_64k)));
    Test.make ~name:"crc32 64KB" (Staged.stage (fun () -> ignore (Crc32.string payload_64k)));
    Test.make ~name:"fnv 64KB" (Staged.stage (fun () -> ignore (Fnv.string payload_64k)));
  ]

let engine_test =
  Test.make ~name:"engine: 1000 events"
    (Staged.stage (fun () ->
         let engine = Engine.create () in
         for i = 1 to 1000 do
           ignore (Engine.schedule engine ~after:i (fun () -> ()))
         done;
         Engine.run engine))

let wire_frame =
  {
    Wire.dst_mac = 2;
    src_mac = 1;
    packet =
      {
        Wire.src_ip = Wire.ip 10 0 0 1;
        dst_ip = Wire.ip 10 0 0 2;
        body =
          Wire.Tcp
            {
              Wire.src_port = 40000;
              dst_port = 80;
              seq = 17;
              ack_no = 21;
              syn = false;
              ack = true;
              fin = false;
              rst = false;
              window = 65535;
              payload = Bytes.make 1460 'x';
            };
      };
  }

let wire_test =
  Test.make ~name:"wire: encode+decode 1460B segment"
    (Staged.stage (fun () ->
         match Wire.decode (Wire.encode wire_frame) with Ok _ -> () | Error _ -> assert false))

(* One Test.make per paper table, at reduced scale. *)
let table_tests =
  [
    Test.make ~name:"table fig3 (3 scenarios)" (Staged.stage (fun () -> ignore (E.Fig3.run ())));
    Test.make ~name:"table fig7 (8MB, 1 interval)"
      (Staged.stage (fun () -> ignore (E.Fig7.run ~size:(8 * mb) ~intervals:[ 1 ] ())));
    Test.make ~name:"table fig8 (32MB, 1 interval)"
      (Staged.stage (fun () -> ignore (E.Fig8.run ~size:(32 * mb) ~intervals:[ 1 ] ())));
    Test.make ~name:"table sec7.2 (200 faults)"
      (Staged.stage (fun () -> ignore (E.Sec72.run ~faults:200 ())));
    Test.make ~name:"table fig9 (sclc over the repo)"
      (Staged.stage (fun () -> ignore (E.Fig9.run ())));
  ]

let all_benchmarks =
  Test.make_grouped ~name:"resilix"
    (checksum_tests @ [ engine_test; wire_test ] @ table_tests)

let run_bechamel () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false () in
  let raw = Benchmark.all cfg instances all_benchmarks in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_newline ();
  print_endline "=== Bechamel micro/macro benchmarks (host wall clock) ===";
  Printf.printf "%-45s %16s\n" "benchmark" "time per run";
  Printf.printf "%s\n" (String.make 62 '-');
  let rows = ref [] in
  Hashtbl.iter (fun name result -> rows := (name, result) :: !rows) results;
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
          in
          Printf.printf "%-45s %16s\n" name pretty
      | _ -> Printf.printf "%-45s %16s\n" name "n/a")
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let parse_args () =
  let smoke = ref false in
  let metrics_out = ref None in
  let speedup_out = ref None in
  let engine_out = ref None in
  let engine_only = ref false in
  let coverage_out = ref None in
  let coverage_only = ref false in
  let storm_out = ref None in
  let storm_only = ref false in
  let jobs = ref None in
  let progress = ref `Auto in
  let usage arg =
    Printf.eprintf
      "usage: %s [--smoke] [--jobs N] [--progress] [--no-progress] [--metrics-out FILE] \
       [--speedup-out FILE] [--engine-out FILE] [--engine-only] [--coverage-out FILE] \
       [--coverage-only] [--storm-out FILE] [--storm-only]\n\
       (unknown argument %S)\n"
      Sys.executable_name arg;
    exit 2
  in
  let rec go = function
    | [] -> ()
    | "--smoke" :: rest -> smoke := true; go rest
    | "--progress" :: rest -> progress := `Always; go rest
    | "--no-progress" :: rest -> progress := `Never; go rest
    | "--metrics-out" :: file :: rest -> metrics_out := Some file; go rest
    | "--speedup-out" :: file :: rest -> speedup_out := Some file; go rest
    | "--engine-out" :: file :: rest -> engine_out := Some file; go rest
    | "--engine-only" :: rest -> engine_only := true; go rest
    | "--coverage-out" :: file :: rest -> coverage_out := Some file; go rest
    | "--coverage-only" :: rest -> coverage_only := true; go rest
    | "--storm-out" :: file :: rest -> storm_out := Some file; go rest
    | "--storm-only" :: rest -> storm_only := true; go rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := Some j; go rest
        | _ -> usage n)
    | arg :: _ -> usage arg
  in
  go (List.tl (Array.to_list Sys.argv));
  ( !smoke,
    !jobs,
    !progress,
    !metrics_out,
    !speedup_out,
    !engine_out,
    !engine_only,
    !coverage_out,
    !coverage_only,
    !storm_out,
    !storm_only )

let () =
  let ( smoke,
        jobs,
        progress,
        metrics_out,
        speedup_out,
        engine_out,
        engine_only,
        coverage_out,
        coverage_only,
        storm_out,
        storm_only ) =
    parse_args ()
  in
  try
    (match engine_out with Some file -> measure_engine ~smoke file | None -> ());
    if engine_only then exit 0;
    let coverage_ok =
      match coverage_out with None -> true | Some file -> measure_coverage ~smoke file
    in
    if coverage_only then exit (if coverage_ok then 0 else 1);
    let storm_ok = match storm_out with None -> true | Some file -> measure_storm ~smoke file in
    if storm_only then exit (if storm_ok then 0 else 1);
    let failed =
      match metrics_out with
      | None -> regenerate_tables ~smoke ~jobs ~progress ~obs:None ()
      | Some file ->
          let oc = open_out file in
          let sink line = output_string oc line; output_char oc '\n' in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> regenerate_tables ~smoke ~jobs ~progress ~obs:(Some sink) ())
    in
    let speedup_ok =
      match speedup_out with None -> true | Some file -> measure_speedup ~jobs file
    in
    if not smoke then run_bechamel ();
    match failed with
    | [] -> if not (speedup_ok && coverage_ok && storm_ok) then exit 1
    | names ->
        List.iter (Printf.eprintf "INTEGRITY FAILURE: %s\n") names;
        exit 1
  with Campaign.Partial failures ->
    prerr_endline (Campaign.failures_summary failures);
    exit 1
