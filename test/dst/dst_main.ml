(* The @dst batch: a small fixed-seed exploration of the real machine,
   run as part of `dune runtest`.

   Everything here is deterministic — fixed seeds, fixed run counts —
   and fast (a few seconds): it proves the full pipeline on actual
   boots (explore -> finding -> shrink -> save -> load -> replay ->
   reproduced) and that exploration output is identical for any job
   count.  The paper-scale batch lives in test/slow behind
   RESILIX_SLOW_TESTS=1. *)

module Explore = Resilix_dst.Explore
module Replay = Resilix_dst.Replay
module Repro = Resilix_dst.Repro
module Scenario = Resilix_dst.Scenario
module Invariant = Resilix_dst.Invariant
module Corpus = Resilix_dst.Corpus

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

let outcome_key (o : Explore.outcome) =
  (o.Explore.o_index, o.Explore.o_seed, o.Explore.o_plan, Array.to_list o.Explore.o_decisions,
   o.Explore.o_violations)

let () =
  let wget =
    match Scenario.find "wget" with Some s -> s | None -> failwith "wget scenario missing"
  in
  (* 1. A clean batch: under the default (generous) bound, seeded
     schedule exploration of driver kills must uphold every
     invariant. *)
  let clean = Explore.run ~jobs:2 wget ~seed:42 ~runs:2 () in
  check "clean batch has no findings" (clean.Explore.failures = []);

  (* 2. A violating batch: a 1 ms recovery bound is tighter than any
     real restart, so every kill trips span-completeness —
     deterministic findings without hunting for races. *)
  let explore jobs = Explore.run ~jobs wget ~seed:42 ~runs:3 ~bound:1_000 () in
  let r1 = explore 1 in
  let r2 = explore 2 in
  check "tight bound produces findings" (r1.Explore.failures <> []);
  check "exploration is jobs-invariant"
    (List.map outcome_key r1.Explore.failures = List.map outcome_key r2.Explore.failures);

  (* 3. The finding round-trips through shrink, a repro file on disk,
     and replay. *)
  (match r1.Explore.failures with
  | [] -> ()
  | first :: _ -> (
      let repro = Explore.to_repro r1 first in
      match Replay.shrink repro with
      | Error m -> check ("shrink succeeds: " ^ m) false
      | Ok min -> (
          check "shrunk plan is never larger"
            (List.length min.Repro.plan <= List.length repro.Repro.plan);
          check "shrunk trace is never larger"
            (Array.length min.Repro.decisions <= Array.length repro.Repro.decisions);
          check "shrinking preserves the failure"
            (Invariant.same_failure min.Repro.violations repro.Repro.violations);
          let path = Filename.temp_file "dst-batch" ".jsonl" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Repro.save min path;
              match Repro.load path with
              | Error m -> check ("repro loads: " ^ m) false
              | Ok loaded -> (
                  check "repro file round-trips" (loaded = min);
                  match Replay.run loaded with
                  | Error m -> check ("replay runs: " ^ m) false
                  | Ok outcome ->
                      check "replay reproduces the violation" outcome.Replay.reproduced)))));

  (* 4. Guided exploration on the real machine: a small transfer keeps
     each run cheap.  The guided summary must be byte-identical across
     job counts and repeat runs, and mutation must discover at least
     as many coverage signatures as fresh sampling on the same run
     budget. *)
  let small = Scenario.wget_sized ~size:(64 * 1024) () in
  let guided jobs = Explore.run_guided ~jobs ~batch:8 ~bound:1_000 small ~seed:42 ~runs:24 () in
  let g1 = guided 1 in
  let g2 = guided 2 in
  check "guided summary is jobs-invariant"
    (Explore.guided_summary g1 = Explore.guided_summary g2);
  check "guided signature keys are jobs-invariant"
    (g1.Explore.g_signatures = g2.Explore.g_signatures);
  check "guided repeat run is byte-identical"
    (Explore.guided_summary g1 = Explore.guided_summary (guided 1));
  check "guided ran mutation batches" (g1.Explore.g_mutants > 0);
  let blind =
    Explore.run_guided ~jobs:2 ~batch:8 ~bound:1_000 ~fresh_only:true small ~seed:42 ~runs:24 ()
  in
  check "guided covers at least blind on the same budget"
    (List.length g1.Explore.g_signatures >= List.length blind.Explore.g_signatures);

  (* 5. The corpus round-trips through disk, and a reloaded corpus
     seeds a follow-up exploration without re-reporting old
     signatures. *)
  let dir = Filename.temp_file "dst-corpus" "" in
  Sys.remove dir;
  Corpus.save g1.Explore.g_corpus ~dir;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      match Corpus.load ~dir with
      | Error m -> check ("corpus loads: " ^ m) false
      | Ok loaded ->
          check "corpus round-trips through disk"
            (Corpus.entries loaded = Corpus.entries g1.Explore.g_corpus);
          let resumed =
            Explore.run_guided ~jobs:2 ~batch:8 ~bound:1_000 ~corpus:loaded small ~seed:42
              ~runs:24 ()
          in
          check "resumed exploration adds no duplicate corpus entries"
            (resumed.Explore.g_new_entries
            = Corpus.size resumed.Explore.g_corpus - Corpus.size g1.Explore.g_corpus));

  if !failures > 0 then begin
    Printf.printf "@dst batch: %d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "@dst batch passed"
