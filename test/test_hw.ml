(* Tests for the hardware models: bus routing, link timing, block
   store determinism, device FIFOs and failure modes (wedging, burn
   gaps, underruns). *)

module Engine = Resilix_sim.Engine
module Trace = Resilix_sim.Trace
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel
module Bus = Resilix_hw.Bus
module Link = Resilix_hw.Link
module Blockstore = Resilix_hw.Blockstore
module Audio_dev = Resilix_hw.Audio_dev
module Printer_dev = Resilix_hw.Printer_dev
module Cd_dev = Resilix_hw.Cd_dev
module Nic8139 = Resilix_hw.Nic8139

let make_kernel () =
  let engine = Engine.create () in
  let kernel = Kernel.create ~engine ~trace:(Trace.create ()) ~rng:(Rng.create ~seed:2) () in
  (engine, kernel)

(* --- bus --- *)

let test_bus_routing () =
  let bus = Bus.create () in
  let log = ref [] in
  Bus.register bus ~base:0x100 ~len:4 (fun ~reg access ->
      match access with
      | Bus.Read ->
          log := ("read", reg) :: !log;
          Ok (0x40 + reg)
      | Bus.Write v ->
          log := ("write", v) :: !log;
          Ok 0);
  Alcotest.(check (result int Alcotest.reject)) "read routes with relative reg" (Ok 0x42)
    (Bus.io bus (`In 0x102));
  ignore (Bus.io bus (`Out (0x103, 99)));
  Alcotest.(check (list (pair string int))) "accesses seen" [ ("write", 99); ("read", 2) ] !log

let test_bus_unclaimed_floats () =
  let bus = Bus.create () in
  Alcotest.(check (result int Alcotest.reject)) "unclaimed port reads all-ones" (Ok 0xFFFF_FFFF)
    (Bus.io bus (`In 0x999));
  Alcotest.(check (result int Alcotest.reject)) "unclaimed write swallowed" (Ok 0)
    (Bus.io bus (`Out (0x999, 1)))

let test_bus_overlap_rejected () =
  let bus = Bus.create () in
  Bus.register bus ~base:0x100 ~len:8 (fun ~reg:_ _ -> Ok 0);
  Alcotest.check_raises "overlapping claim" (Invalid_argument "Bus.register: overlapping port range")
    (fun () -> Bus.register bus ~base:0x104 ~len:2 (fun ~reg:_ _ -> Ok 0))

(* --- link --- *)

let test_link_timing () =
  let engine = Engine.create () in
  let link = Link.create ~engine ~rng:(Rng.create ~seed:1) ~latency:200 ~bytes_per_us:12 () in
  let arrived_at = ref (-1) in
  Link.attach link Link.B (fun _ -> arrived_at := Engine.now engine);
  Link.send link Link.A (Bytes.make 1200 'x');
  Engine.run engine;
  (* 1200 bytes at 12 B/us = 100 us serialization + 200 us latency. *)
  Alcotest.(check int) "serialization + propagation" 300 !arrived_at

let test_link_serializes_bursts () =
  let engine = Engine.create () in
  let link = Link.create ~engine ~rng:(Rng.create ~seed:1) ~latency:0 ~bytes_per_us:10 () in
  let times = ref [] in
  Link.attach link Link.B (fun _ -> times := Engine.now engine :: !times);
  for _ = 1 to 3 do
    Link.send link Link.A (Bytes.make 100 'x')
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "back-to-back frames queue behind each other" [ 10; 20; 30 ]
    (List.rev !times)

let test_link_drops () =
  let engine = Engine.create () in
  let link = Link.create ~engine ~rng:(Rng.create ~seed:1) ~drop_prob:1.0 () in
  let got = ref 0 in
  Link.attach link Link.B (fun _ -> incr got);
  for _ = 1 to 10 do
    Link.send link Link.A (Bytes.make 10 'x')
  done;
  Engine.run engine;
  Alcotest.(check int) "all frames dropped" 0 !got;
  Alcotest.(check int) "drops counted" 10 (Link.frames_dropped link)

(* --- block store --- *)

let test_blockstore_determinism () =
  let a = Blockstore.create ~seed:7 ~sectors:128 ~sector_size:512 in
  let b = Blockstore.create ~seed:7 ~sectors:128 ~sector_size:512 in
  Alcotest.(check bool) "same seed, same content" true
    (Bytes.equal (Blockstore.read a ~lba:5 ~count:3) (Blockstore.read b ~lba:5 ~count:3));
  let c = Blockstore.create ~seed:8 ~sectors:128 ~sector_size:512 in
  Alcotest.(check bool) "different seed differs" false
    (Bytes.equal (Blockstore.read a ~lba:5 ~count:3) (Blockstore.read c ~lba:5 ~count:3))

let test_blockstore_write_persists () =
  let s = Blockstore.create ~seed:7 ~sectors:128 ~sector_size:512 in
  let data = Bytes.make 1024 'Z' in
  Blockstore.write s ~lba:10 data;
  Alcotest.(check bool) "written content read back" true
    (Bytes.equal data (Blockstore.read s ~lba:10 ~count:2));
  (* Neighbours keep their generated content. *)
  let before = Blockstore.read s ~lba:12 ~count:1 in
  Alcotest.(check bool) "neighbour unchanged" true
    (Bytes.equal before (Blockstore.read s ~lba:12 ~count:1))

let prop_blockstore_reads_stable =
  QCheck.Test.make ~name:"blockstore reads are stable" ~count:100
    QCheck.(pair (int_bound 100) (int_range 1 8))
    (fun (lba, count) ->
      let s = Blockstore.create ~seed:99 ~sectors:256 ~sector_size:512 in
      let one = Blockstore.read s ~lba ~count in
      let two = Blockstore.read s ~lba ~count in
      Bytes.equal one two)

(* --- devices, driven through raw bus I/O --- *)

let test_audio_underruns () =
  let engine, kernel = make_kernel () in
  let bus = Bus.create () in
  let audio =
    Audio_dev.create ~kernel ~bus ~base:0x380 ~irq:5 ~rng:(Rng.create ~seed:1)
      ~byte_rate:100_000 ()
  in
  (* Feed 4 KB of samples and start playback: at 100 KB/s the FIFO
     drains in ~40 ms and the device underruns afterwards. *)
  for _ = 1 to 1024 do
    ignore (Bus.io bus (`Out (0x382, 0xABCD)))
  done;
  ignore (Bus.io bus (`Out (0x381, 1)));
  Engine.run engine ~until:500_000;
  Alcotest.(check int) "all samples played" 4096 (Audio_dev.bytes_played audio);
  Alcotest.(check bool) "underruns counted after starvation" true (Audio_dev.underruns audio > 0)

let test_printer_prints_in_order () =
  let engine, kernel = make_kernel () in
  let bus = Bus.create () in
  let printer =
    Printer_dev.create ~kernel ~bus ~base:0x390 ~irq:6 ~rng:(Rng.create ~seed:1) ()
  in
  ignore (Bus.io bus (`Out (0x391, 1)));
  String.iter (fun c -> ignore (Bus.io bus (`Out (0x392, Char.code c)))) "hello paper";
  Engine.run engine ~until:2_000_000;
  Alcotest.(check string) "bytes printed in order" "hello paper" (Printer_dev.printed printer)

let test_cd_gap_ruins_disc () =
  let engine, kernel = make_kernel () in
  let bus = Bus.create () in
  let cd =
    Cd_dev.create ~kernel ~bus ~base:0x3A0 ~irq:7 ~rng:(Rng.create ~seed:1) ~gap_timeout:100_000 ()
  in
  ignore (Bus.io bus (`Out (0x3A1, 0x01))) (* start session *);
  (match Cd_dev.disc cd with
  | Cd_dev.In_session -> ()
  | _ -> Alcotest.fail "session should be open");
  (* ... and then the driver dies: no blocks arrive for > gap. *)
  Engine.run engine ~until:500_000;
  match Cd_dev.disc cd with
  | Cd_dev.Ruined -> ()
  | _ -> Alcotest.fail "unattended session must ruin the disc"

let test_nic_wedges_on_garbage_and_master_reset () =
  let engine, kernel = make_kernel () in
  let bus = Bus.create () in
  let link = Link.create ~engine ~rng:(Rng.create ~seed:1) () in
  let nic =
    Nic8139.create ~kernel ~bus ~base:0x300 ~irq:11 ~link ~side:Link.A ~mac:1
      ~rng:(Rng.create ~seed:1) ~wedge_prob:1.0 ~has_master_reset:false ()
  in
  (* Garbage CMD bits wedge the chip (wedge_prob = 1). *)
  ignore (Bus.io bus (`Out (0x301, 0xE0)));
  Alcotest.(check bool) "nic wedged" true (Nic8139.wedged nic);
  (* Software reset is ignored when there is no master reset... *)
  ignore (Bus.io bus (`Out (0x301, 0x10)));
  Alcotest.(check bool) "still wedged after reset" true (Nic8139.wedged nic);
  Alcotest.(check (result int Alcotest.reject)) "registers read all-ones" (Ok 0xFFFF_FFFF)
    (Bus.io bus (`In 0x300));
  (* ... only the out-of-band BIOS reset clears it (Sec. 7.2). *)
  Nic8139.bios_reset nic;
  Alcotest.(check bool) "bios reset clears the wedge" false (Nic8139.wedged nic)

let tests =
  [
    Alcotest.test_case "bus routing" `Quick test_bus_routing;
    Alcotest.test_case "bus unclaimed ports float" `Quick test_bus_unclaimed_floats;
    Alcotest.test_case "bus overlap rejected" `Quick test_bus_overlap_rejected;
    Alcotest.test_case "link timing" `Quick test_link_timing;
    Alcotest.test_case "link serializes bursts" `Quick test_link_serializes_bursts;
    Alcotest.test_case "link drops" `Quick test_link_drops;
    Alcotest.test_case "blockstore determinism" `Quick test_blockstore_determinism;
    Alcotest.test_case "blockstore writes persist" `Quick test_blockstore_write_persists;
    QCheck_alcotest.to_alcotest prop_blockstore_reads_stable;
    Alcotest.test_case "audio underruns counted" `Quick test_audio_underruns;
    Alcotest.test_case "printer prints in order" `Quick test_printer_prints_in_order;
    Alcotest.test_case "cd burn gap ruins disc" `Quick test_cd_gap_ruins_disc;
    Alcotest.test_case "nic wedge + bios reset" `Quick test_nic_wedges_on_garbage_and_master_reset;
  ]
