(* Tests for the simulated microkernel: rendezvous IPC, temporally
   unique endpoints, notifications, async sends, grants + safecopy,
   privileges, kills during IPC, alarms, IRQ routing and DMA. *)

module Engine = Resilix_sim.Engine
module Trace = Resilix_sim.Trace
module Rng = Resilix_sim.Rng
module Kernel = Resilix_kernel.Kernel
module Memory = Resilix_kernel.Memory
module Sysif = Resilix_kernel.Sysif
module Api = Resilix_kernel.Sysif.Api
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Privilege = Resilix_proto.Privilege
module Signal = Resilix_proto.Signal
module Status = Resilix_proto.Status
module Wellknown = Resilix_proto.Wellknown

let make_kernel () =
  let engine = Engine.create () in
  let trace = Trace.create () in
  let rng = Rng.create ~seed:1 in
  let kernel = Kernel.create ~engine ~trace ~rng () in
  (engine, kernel)

let all_priv =
  {
    Privilege.none with
    Privilege.ipc_to = Privilege.All;
    kcalls = Privilege.All;
    io_ports = [ (0, 0xFFFF) ];
    irqs = List.init 32 Fun.id;
  }

let ep slot = Endpoint.make ~slot ~gen:1

(* Spawn a test process at a dynamic slot with full privileges. *)
let spawn kernel name body =
  Kernel.register_program kernel name body;
  match
    Kernel.spawn_dynamic kernel ~name ~program:name ~args:[] ~priv:all_priv ~mem_kb:64
  with
  | Ok e -> e
  | Error _ -> Alcotest.fail "spawn failed"

let errno = Alcotest.testable Errno.pp Errno.equal

let test_rendezvous_send_receive () =
  let engine, kernel = make_kernel () in
  let got = ref None in
  let receiver =
    spawn kernel "receiver" (fun () ->
        match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_msg { body = Message.Dev_open { minor }; _ }) -> got := Some minor
        | _ -> ())
  in
  let _sender =
    spawn kernel "sender" (fun () -> ignore (Api.send receiver (Message.Dev_open { minor = 7 })))
  in
  Engine.run engine;
  Alcotest.(check (option int)) "message delivered" (Some 7) !got

let test_sender_blocks_until_receive () =
  let engine, kernel = make_kernel () in
  let send_done_at = ref 0 in
  let receiver =
    spawn kernel "receiver" (fun () ->
        Api.sleep 1000;
        ignore (Api.receive Sysif.Any))
  in
  let _sender =
    spawn kernel "sender" (fun () ->
        ignore (Api.send receiver Message.Ok_reply);
        send_done_at := Api.now ())
  in
  Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "send completed only after receive (at %d)" !send_done_at)
    true (!send_done_at >= 1000)

let test_sendrec_reply () =
  let engine, kernel = make_kernel () in
  let reply = ref None in
  let server =
    spawn kernel "server" (fun () ->
        match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_msg { src; body = Message.Dev_read _ }) ->
            ignore (Api.send src (Message.Dev_reply { result = Ok 42 }))
        | _ -> ())
  in
  let _client =
    spawn kernel "client" (fun () ->
        match Api.sendrec server (Message.Dev_read { minor = 0; pos = 0; grant = 0; len = 0 }) with
        | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Ok n }; _ }) -> reply := Some n
        | _ -> ())
  in
  Engine.run engine;
  Alcotest.(check (option int)) "sendrec got the reply" (Some 42) !reply

let test_receive_from_filters () =
  let engine, kernel = make_kernel () in
  let order = ref [] in
  (* Receiver waits specifically for B even though A sends first. *)
  let mk_receiver a_ep b_ep =
    spawn kernel "receiver" (fun () ->
        (match Api.receive (Sysif.From b_ep) with
        | Ok (Sysif.Rx_msg { body = Message.Err_reply e; _ }) -> order := ("b", e) :: !order
        | _ -> ());
        match Api.receive (Sysif.From a_ep) with
        | Ok (Sysif.Rx_msg { body = Message.Err_reply e; _ }) -> order := ("a", e) :: !order
        | _ -> ())
  in
  (* Pre-create sender endpoints by spawning them first but have them
     sleep so the receiver installs its filter first. *)
  let a =
    spawn kernel "a" (fun () ->
        Api.sleep 10;
        ignore (Api.send (Option.get (Kernel.find_by_name kernel "receiver")) (Message.Err_reply Errno.E_io)))
  in
  let b =
    spawn kernel "b" (fun () ->
        Api.sleep 50;
        ignore (Api.send (Option.get (Kernel.find_by_name kernel "receiver")) (Message.Err_reply Errno.E_busy)))
  in
  let _r = mk_receiver a b in
  Engine.run engine;
  Alcotest.(check (list (pair string errno)))
    "B served first despite A arriving earlier"
    [ ("a", Errno.E_io); ("b", Errno.E_busy) ]
    !order

let test_notify_queued_and_deduped () =
  let engine, kernel = make_kernel () in
  let notifies = ref 0 in
  let receiver =
    spawn kernel "receiver" (fun () ->
        Api.sleep 1000;
        let rec drain () =
          match Api.receive Sysif.Any with
          | Ok (Sysif.Rx_notify { kind = Message.N_heartbeat_request; _ }) ->
              incr notifies;
              drain ()
          | Ok (Sysif.Rx_msg { body = Message.Ok_reply; _ }) -> () (* stop marker *)
          | _ -> drain ()
        in
        drain ())
  in
  let _sender =
    spawn kernel "sender" (fun () ->
        (* Three notifies of the same kind while target is asleep must
           collapse into one pending notification. *)
        ignore (Api.notify receiver Message.N_heartbeat_request);
        ignore (Api.notify receiver Message.N_heartbeat_request);
        ignore (Api.notify receiver Message.N_heartbeat_request);
        Api.sleep 2000;
        ignore (Api.send receiver Message.Ok_reply))
  in
  Engine.run engine;
  Alcotest.(check int) "notifications deduplicated" 1 !notifies

let test_async_send_does_not_block () =
  let engine, kernel = make_kernel () in
  let t_sent = ref (-1) in
  let got = ref false in
  let receiver =
    spawn kernel "receiver" (fun () ->
        Api.sleep 5000;
        match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_msg { body = Message.Ok_reply; _ }) -> got := true
        | _ -> ())
  in
  let _sender =
    spawn kernel "sender" (fun () ->
        ignore (Api.asend receiver Message.Ok_reply);
        t_sent := Api.now ())
  in
  Engine.run engine;
  Alcotest.(check bool) "async send returned immediately" true (!t_sent >= 0 && !t_sent < 5000);
  Alcotest.(check bool) "message eventually delivered" true !got

let test_dead_destination () =
  let engine, kernel = make_kernel () in
  let result = ref None in
  let victim = spawn kernel "victim" (fun () -> Api.sleep 100) in
  let _sender =
    spawn kernel "sender" (fun () ->
        Api.sleep 1000 (* victim exits at t=100ish *);
        result := Some (Api.send victim Message.Ok_reply))
  in
  Engine.run engine;
  match !result with
  | Some (Error Errno.E_dead_src_dst) -> ()
  | _ -> Alcotest.fail "expected E_dead_src_dst for send to dead process"

let test_kill_aborts_rendezvous () =
  let engine, kernel = make_kernel () in
  let result = ref None in
  (* The "driver" receives a request and hangs forever; killing it must
     abort the file-server-style sendrec with E_dead_src_dst. *)
  let driver =
    spawn kernel "driver" (fun () ->
        ignore (Api.receive Sysif.Any);
        Api.sleep 1_000_000_000)
  in
  let _fs =
    spawn kernel "fs" (fun () ->
        result := Some (Api.sendrec driver (Message.Dev_read { minor = 0; pos = 0; grant = 0; len = 512 })))
  in
  ignore
    (Engine.schedule engine ~after:5000 (fun () ->
         ignore (Kernel.kill kernel driver (Status.Killed Signal.Sig_kill))));
  Engine.run engine;
  match !result with
  | Some (Error Errno.E_dead_src_dst) -> ()
  | _ -> Alcotest.fail "expected E_dead_src_dst when driver killed mid-sendrec"

let test_stale_endpoint_after_restart () =
  let engine, kernel = make_kernel () in
  let result = ref None in
  Kernel.register_program kernel "drv" (fun () -> Api.sleep 1_000_000_000);
  let first =
    match Kernel.spawn_dynamic kernel ~name:"drv" ~program:"drv" ~args:[] ~priv:all_priv ~mem_kb:64 with
    | Ok e -> e
    | Error _ -> Alcotest.fail "spawn"
  in
  ignore
    (Engine.schedule engine ~after:100 (fun () ->
         ignore (Kernel.kill kernel first (Status.Killed Signal.Sig_kill));
         (* Restart: same slot may be reused, generation must differ. *)
         match
           Kernel.spawn_dynamic kernel ~name:"drv" ~program:"drv" ~args:[] ~priv:all_priv
             ~mem_kb:64
         with
         | Ok second -> Alcotest.(check bool) "endpoint differs" false (Endpoint.equal first second)
         | Error _ -> Alcotest.fail "respawn"));
  let _sender =
    spawn kernel "sender" (fun () ->
        Api.sleep 10_000;
        result := Some (Api.send first Message.Ok_reply))
  in
  Engine.run engine ~until:20_000;
  match !result with
  | Some (Error Errno.E_dead_src_dst) -> ()
  | _ -> Alcotest.fail "expected stale endpoint send to fail with E_dead_src_dst"

let test_grant_safecopy () =
  let engine, kernel = make_kernel () in
  let copied = ref "" in
  let owner =
    spawn kernel "owner" (fun () ->
        let mem = Api.memory () in
        Memory.write mem ~addr:100 (Bytes.of_string "hello grants");
        match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_msg { src; body = Message.Dev_read { grant = -1; _ } }) ->
            (* Create the grant on demand and ship its id. *)
            let g =
              match
                Api.grant_create ~for_:src ~base:100 ~len:12 ~access:Sysif.Read_only
              with
              | Ok g -> g
              | Error _ -> Api.panic "grant_create failed"
            in
            ignore (Api.send src (Message.Dev_reply { result = Ok g }))
        | _ -> ())
  in
  let _reader =
    spawn kernel "reader" (fun () ->
        match Api.sendrec owner (Message.Dev_read { minor = 0; pos = 0; grant = -1; len = 12 }) with
        | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Ok g }; _ }) -> (
            match Api.safecopy_from ~owner ~grant:g ~grant_off:0 ~local_addr:0 ~len:12 with
            | Ok () ->
                let mem = Api.memory () in
                copied := Bytes.to_string (Memory.read mem ~addr:0 ~len:12)
            | Error _ -> ())
        | _ -> ())
  in
  Engine.run engine;
  Alcotest.(check string) "safecopy moved the bytes" "hello grants" !copied

let test_grant_wrong_grantee_rejected () =
  let engine, kernel = make_kernel () in
  let outcome = ref None in
  let owner =
    spawn kernel "owner" (fun () ->
        let other = Endpoint.make ~slot:63 ~gen:9 in
        (match Api.grant_create ~for_:other ~base:0 ~len:16 ~access:Sysif.Read_write with
        | Ok _ -> ()
        | Error _ -> ());
        Api.sleep 10_000)
  in
  let _thief =
    spawn kernel "thief" (fun () ->
        Api.sleep 100;
        (* Grant id 1 exists but names someone else as grantee. *)
        outcome := Some (Api.safecopy_from ~owner ~grant:1 ~grant_off:0 ~local_addr:0 ~len:8))
  in
  Engine.run engine ~until:20_000;
  match !outcome with
  | Some (Error Errno.E_no_perm) -> ()
  | _ -> Alcotest.fail "expected E_no_perm for wrong grantee"

let test_grant_bounds_checked () =
  let engine, kernel = make_kernel () in
  let outcome = ref None in
  let owner =
    spawn kernel "owner" (fun () ->
        (match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_msg { src; _ }) ->
            let g =
              match Api.grant_create ~for_:src ~base:0 ~len:16 ~access:Sysif.Read_write with
              | Ok g -> g
              | Error _ -> Api.panic "grant failed"
            in
            ignore (Api.send src (Message.Dev_reply { result = Ok g }))
        | _ -> ());
        Api.sleep 10_000)
  in
  let _client =
    spawn kernel "client" (fun () ->
        match Api.sendrec owner Message.Ok_reply with
        | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Ok g }; _ }) ->
            outcome := Some (Api.safecopy_from ~owner ~grant:g ~grant_off:8 ~local_addr:0 ~len:16)
        | _ -> ())
  in
  Engine.run engine ~until:20_000;
  match !outcome with
  | Some (Error Errno.E_range) -> ()
  | _ -> Alcotest.fail "expected E_range for out-of-grant copy"

let test_ipc_privilege_enforced () =
  let engine, kernel = make_kernel () in
  let outcome = ref None in
  let target = spawn kernel "target" (fun () -> ignore (Api.receive Sysif.Any)) in
  Kernel.register_program kernel "restricted" (fun () ->
      outcome := Some (Api.send target Message.Ok_reply));
  let priv = { Privilege.none with Privilege.ipc_to = Privilege.Only [ "somebody-else" ] } in
  (match
     Kernel.spawn_dynamic kernel ~name:"restricted" ~program:"restricted" ~args:[] ~priv ~mem_kb:64
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "spawn");
  Engine.run engine ~until:10_000;
  match !outcome with
  | Some (Error Errno.E_no_perm) -> ()
  | _ -> Alcotest.fail "expected E_no_perm for disallowed IPC destination"

let test_kcall_privilege_enforced () =
  let engine, kernel = make_kernel () in
  let outcome = ref None in
  Kernel.register_program kernel "noio" (fun () -> outcome := Some (Api.devio_in 0x300));
  let priv =
    { Privilege.none with Privilege.ipc_to = Privilege.All; kcalls = Privilege.Only [ "alarm" ] }
  in
  (match Kernel.spawn_dynamic kernel ~name:"noio" ~program:"noio" ~args:[] ~priv ~mem_kb:64 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "spawn");
  Engine.run engine;
  match !outcome with
  | Some (Error Errno.E_no_perm) -> ()
  | _ -> Alcotest.fail "expected E_no_perm for denied kernel call"

let test_io_port_privilege () =
  let engine, kernel = make_kernel () in
  Kernel.set_io_handler kernel (fun _ -> Ok 0xAB);
  let in_range = ref None and out_of_range = ref None in
  Kernel.register_program kernel "drv" (fun () ->
      in_range := Some (Api.devio_in 0x300);
      out_of_range := Some (Api.devio_in 0x400));
  let priv =
    {
      Privilege.none with
      Privilege.ipc_to = Privilege.All;
      kcalls = Privilege.All;
      io_ports = [ (0x300, 0x30F) ];
    }
  in
  (match Kernel.spawn_dynamic kernel ~name:"drv" ~program:"drv" ~args:[] ~priv ~mem_kb:64 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "spawn");
  Engine.run engine;
  (match !in_range with
  | Some (Ok 0xAB) -> ()
  | _ -> Alcotest.fail "allowed port read should succeed");
  match !out_of_range with
  | Some (Error Errno.E_no_perm) -> ()
  | _ -> Alcotest.fail "port outside the privileged range must be denied"

let test_mmu_fault_kills () =
  let engine, kernel = make_kernel () in
  let _victim =
    spawn kernel "victim" (fun () ->
        let mem = Api.memory () in
        (* Dereference a wild pointer: instant SIGSEGV. *)
        ignore (Memory.get_u32 mem 99_999_999))
  in
  (* PM would normally reap this; check via trace + liveness. *)
  Engine.run engine;
  Alcotest.(check bool) "victim is dead" true (Kernel.find_by_name kernel "victim" = None);
  let trace = Kernel.trace kernel in
  Alcotest.(check bool)
    "killed by SIGSEGV recorded" true
    (Trace.query trace ~pred:(fun e ->
         match e.Trace.payload with
         | Resilix_obs.Event.Exit { name = "victim"; status = Status.Killed Signal.Sig_segv; _ }
           -> true
         | _ -> false)
    <> [])

let test_exit_status_panic () =
  let engine, kernel = make_kernel () in
  let _p = spawn kernel "panicky" (fun () -> Api.panic "inconsistent state") in
  Engine.run engine;
  let trace = Kernel.trace kernel in
  Alcotest.(check bool)
    "panic recorded" true
    (Trace.query trace ~pred:(fun e ->
         match e.Trace.payload with
         | Resilix_obs.Event.Exit { status = Status.Panicked "inconsistent state"; _ } -> true
         | _ -> false)
    <> [])

let test_alarm_notification () =
  let engine, kernel = make_kernel () in
  let fired_at = ref 0 in
  let _p =
    spawn kernel "sleeper" (fun () ->
        ignore (Api.alarm 5000);
        match Api.receive (Sysif.From Wellknown.hardware) with
        | Ok (Sysif.Rx_notify { kind = Message.N_alarm; _ }) -> fired_at := Api.now ()
        | _ -> ())
  in
  Engine.run engine;
  (* The process only starts after the spawn cost, so just require the
     alarm to have fired a full period after that. *)
  Alcotest.(check bool)
    (Printf.sprintf "alarm after ~5000 (got %d)" !fired_at)
    true
    (!fired_at >= 5000 && !fired_at < 20_000)

let test_irq_routing () =
  let engine, kernel = make_kernel () in
  let got_irq = ref None in
  let _drv =
    spawn kernel "drv" (fun () ->
        ignore (Api.irq_register 11);
        match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_notify { kind = Message.N_irq line; _ }) -> got_irq := Some line
        | _ -> ())
  in
  (* Raise the line well after the driver had time to register. *)
  ignore (Engine.schedule engine ~after:10_000 (fun () -> Kernel.raise_irq kernel 11));
  Engine.run engine;
  Alcotest.(check (option int)) "IRQ 11 delivered" (Some 11) !got_irq

let test_dma_through_iommu () =
  let engine, kernel = make_kernel () in
  let handle = ref None in
  let _drv =
    spawn kernel "drv" (fun () ->
        let mem = Api.memory () in
        Memory.write mem ~addr:0x200 (Bytes.of_string "dma payload!");
        (match Api.grant_create ~for_:Wellknown.hardware ~base:0x200 ~len:12 ~access:Sysif.Read_write with
        | Ok g -> (
            match Api.iommu_map g with Ok h -> handle := Some h | Error _ -> ())
        | Error _ -> ());
        Api.sleep 100_000)
  in
  ignore
    (Engine.schedule engine ~after:10_000 (fun () ->
         match !handle with
         | Some h -> (
             (match Kernel.dma kernel ~handle:h ~off:0 ~op:(`Read 12) with
             | Ok b -> Alcotest.(check string) "device reads driver memory" "dma payload!" (Bytes.to_string b)
             | Error _ -> Alcotest.fail "dma read failed");
             (* Out-of-grant access must be rejected. *)
             match Kernel.dma kernel ~handle:h ~off:8 ~op:(`Read 12) with
             | Error Errno.E_range -> ()
             | _ -> Alcotest.fail "expected E_range for out-of-grant DMA")
         | None -> Alcotest.fail "no dma handle"));
  Engine.run engine ~until:50_000

let test_dma_stale_after_death () =
  let engine, kernel = make_kernel () in
  let handle = ref None in
  let victim =
    spawn kernel "drv" (fun () ->
        (match Api.grant_create ~for_:Wellknown.hardware ~base:0 ~len:64 ~access:Sysif.Read_write with
        | Ok g -> ( match Api.iommu_map g with Ok h -> handle := Some h | Error _ -> ())
        | Error _ -> ());
        Api.sleep 1_000_000_000)
  in
  ignore
    (Engine.schedule engine ~after:10_000 (fun () ->
         ignore (Kernel.kill kernel victim (Status.Killed Signal.Sig_kill))));
  ignore
    (Engine.schedule engine ~after:20_000 (fun () ->
         match !handle with
         | Some h -> (
             match Kernel.dma kernel ~handle:h ~off:0 ~op:(`Read 8) with
             | Error Errno.E_no_perm -> ()
             | _ -> Alcotest.fail "DMA must fail after the owning driver died")
         | None -> Alcotest.fail "no dma handle"));
  Engine.run engine ~until:30_000

let test_sendrec_to_self_rejected () =
  let engine, kernel = make_kernel () in
  let outcome = ref None in
  Kernel.register_program kernel "selfish" (fun () ->
      let self = Api.self () in
      outcome := Some (Api.sendrec self Message.Ok_reply));
  (match
     Kernel.spawn_dynamic kernel ~name:"selfish" ~program:"selfish" ~args:[] ~priv:all_priv
       ~mem_kb:64
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "spawn");
  Engine.run engine;
  match !outcome with
  | Some (Error Errno.E_inval) -> ()
  | _ -> Alcotest.fail "sendrec to self must fail"

let test_receive_from_dead_source_fails () =
  let engine, kernel = make_kernel () in
  let outcome = ref None in
  let short_lived = spawn kernel "short" (fun () -> ()) in
  let _waiter =
    spawn kernel "waiter" (fun () ->
        Api.sleep 1000;
        outcome := Some (Api.receive (Sysif.From short_lived)))
  in
  Engine.run engine;
  match !outcome with
  | Some (Error Errno.E_dead_src_dst) -> ()
  | _ -> Alcotest.fail "receive from a dead endpoint must fail immediately"

let test_receive_aborted_when_source_dies () =
  let engine, kernel = make_kernel () in
  let outcome = ref None in
  let victim = spawn kernel "victim" (fun () -> Api.sleep 1_000_000_000) in
  let _waiter = spawn kernel "waiter" (fun () -> outcome := Some (Api.receive (Sysif.From victim))) in
  ignore
    (Engine.schedule engine ~after:5000 (fun () ->
         ignore (Kernel.kill kernel victim (Status.Killed Signal.Sig_kill))));
  Engine.run engine ~until:20_000;
  match !outcome with
  | Some (Error Errno.E_dead_src_dst) -> ()
  | _ -> Alcotest.fail "pending receive must abort when its source dies"

let test_sigterm_is_notification () =
  let engine, kernel = make_kernel () in
  let got_term = ref false in
  let victim =
    spawn kernel "victim" (fun () ->
        match Api.receive Sysif.Any with
        | Ok (Sysif.Rx_notify { kind = Message.N_sig Signal.Sig_term; _ }) -> got_term := true
        | _ -> ())
  in
  ignore
    (Engine.schedule engine ~after:100 (fun () ->
         ignore (Kernel.deliver_signal kernel victim Signal.Sig_term)));
  Engine.run engine;
  Alcotest.(check bool) "SIGTERM delivered as notification" true !got_term;
  Alcotest.(check bool) "victim exited gracefully" true (Kernel.find_by_name kernel "victim" = None)

let test_exit_queue_for_pm () =
  (* The exit queue + SIGCHLD path is exercised through the PM in the
     server tests; here just check the kernel records exits. *)
  let engine, kernel = make_kernel () in
  let _p = spawn kernel "transient" (fun () -> Api.exit (Status.Exited 3)) in
  let before = Kernel.Stats.snapshot kernel in
  Engine.run engine;
  let delta = Kernel.Stats.diff before (Kernel.Stats.snapshot kernel) in
  Alcotest.(check int) "one exit recorded" 1 delta.Kernel.Stats.exits

let prop_many_processes_all_messages_delivered =
  QCheck.Test.make ~name:"N senders, one receiver: all delivered exactly once" ~count:30
    QCheck.(int_range 1 20)
    (fun n ->
      let engine, kernel = make_kernel () in
      let received = Hashtbl.create 16 in
      let receiver =
        spawn kernel "receiver" (fun () ->
            for _ = 1 to n do
              match Api.receive Sysif.Any with
              | Ok (Sysif.Rx_msg { body = Message.Dev_open { minor }; _ }) ->
                  Hashtbl.replace received minor (1 + Option.value ~default:0 (Hashtbl.find_opt received minor))
              | _ -> ()
            done)
      in
      for i = 1 to n do
        ignore
          (spawn kernel (Printf.sprintf "sender%d" i) (fun () ->
               ignore (Api.send receiver (Message.Dev_open { minor = i }))))
      done;
      Engine.run engine;
      List.for_all
        (fun i -> Hashtbl.find_opt received i = Some 1)
        (List.init n (fun i -> i + 1)))

(* Property: safecopy succeeds exactly on in-grant, in-memory ranges. *)
let prop_grant_bounds =
  QCheck.Test.make ~name:"safecopy honours grant bounds exactly" ~count:40
    QCheck.(quad (int_bound 2000) (int_bound 2000) (int_bound 2000) (int_bound 2000))
    (fun (base, len, off, n) ->
      let engine, kernel = make_kernel () in
      let outcome = ref None in
      let owner =
        spawn kernel "owner" (fun () ->
            (match Api.receive Sysif.Any with
            | Ok (Sysif.Rx_msg { src; _ }) -> (
                match Api.grant_create ~for_:src ~base ~len ~access:Sysif.Read_write with
                | Ok g -> ignore (Api.send src (Message.Dev_reply { result = Ok g }))
                | Error _ -> ignore (Api.send src (Message.Dev_reply { result = Error Errno.E_nomem })))
            | _ -> ());
            Api.sleep 1_000_000_000)
      in
      ignore
        (spawn kernel "copier" (fun () ->
             match Api.sendrec owner Message.Ok_reply with
             | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result = Ok g }; _ }) ->
                 outcome :=
                   Some (Api.safecopy_from ~owner ~grant:g ~grant_off:off ~local_addr:0 ~len:n)
             | _ -> outcome := Some (Error Errno.E_nomem)));
      Engine.run engine ~until:10_000_000;
      let mem_bytes = 64 * 1024 in
      let grant_creatable = base + len <= mem_bytes in
      let in_grant = off + n <= len in
      match !outcome with
      | Some (Ok ()) -> grant_creatable && in_grant
      | Some (Error Errno.E_range) -> grant_creatable && not in_grant
      | Some (Error Errno.E_nomem) -> not grant_creatable
      | _ -> false)

let tests =
  [
    Alcotest.test_case "rendezvous send/receive" `Quick test_rendezvous_send_receive;
    QCheck_alcotest.to_alcotest prop_grant_bounds;
    Alcotest.test_case "sender blocks until receive" `Quick test_sender_blocks_until_receive;
    Alcotest.test_case "sendrec round trip" `Quick test_sendrec_reply;
    Alcotest.test_case "receive-from filter" `Quick test_receive_from_filters;
    Alcotest.test_case "notify queued and deduped" `Quick test_notify_queued_and_deduped;
    Alcotest.test_case "async send does not block" `Quick test_async_send_does_not_block;
    Alcotest.test_case "send to dead process" `Quick test_dead_destination;
    Alcotest.test_case "kill aborts rendezvous (sendrec)" `Quick test_kill_aborts_rendezvous;
    Alcotest.test_case "stale endpoint after restart" `Quick test_stale_endpoint_after_restart;
    Alcotest.test_case "grant + safecopy" `Quick test_grant_safecopy;
    Alcotest.test_case "safecopy wrong grantee rejected" `Quick test_grant_wrong_grantee_rejected;
    Alcotest.test_case "safecopy bounds checked" `Quick test_grant_bounds_checked;
    Alcotest.test_case "IPC destination privilege" `Quick test_ipc_privilege_enforced;
    Alcotest.test_case "kernel call privilege" `Quick test_kcall_privilege_enforced;
    Alcotest.test_case "I/O port privilege" `Quick test_io_port_privilege;
    Alcotest.test_case "MMU fault kills process" `Quick test_mmu_fault_kills;
    Alcotest.test_case "panic exit status" `Quick test_exit_status_panic;
    Alcotest.test_case "alarm notification" `Quick test_alarm_notification;
    Alcotest.test_case "IRQ routing" `Quick test_irq_routing;
    Alcotest.test_case "DMA through IOMMU" `Quick test_dma_through_iommu;
    Alcotest.test_case "DMA stale after driver death" `Quick test_dma_stale_after_death;
    Alcotest.test_case "sendrec to self rejected" `Quick test_sendrec_to_self_rejected;
    Alcotest.test_case "receive from dead source" `Quick test_receive_from_dead_source_fails;
    Alcotest.test_case "receive aborted when source dies" `Quick test_receive_aborted_when_source_dies;
    Alcotest.test_case "SIGTERM as notification" `Quick test_sigterm_is_notification;
    Alcotest.test_case "exit recorded" `Quick test_exit_queue_for_pm;
    QCheck_alcotest.to_alcotest prop_many_processes_all_messages_delivered;
  ]
