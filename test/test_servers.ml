(* Tests for the trusted servers: data store (naming, pub/sub,
   authenticated snapshots — including state recovery across a
   reincarnation), process manager, and the complaint defect class
   through a protocol-violating driver. *)

module System = Resilix_system.System
module Kernel = Resilix_kernel.Kernel
module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Privilege = Resilix_proto.Privilege
module Signal = Resilix_proto.Signal
module Spec = Resilix_proto.Spec
module Status = Resilix_proto.Status
module Wellknown = Resilix_proto.Wellknown
module Data_store = Resilix_datastore.Data_store
module Reincarnation = Resilix_core.Reincarnation
module Service = Resilix_core.Service
module Driver_lib = Resilix_drivers.Driver_lib

let boot () = System.boot ~opts:{ System.default_opts with System.disk_mb = 8 } ()

let with_app ?priv t body =
  let finished = ref false in
  let failure = ref None in
  ignore
    (System.spawn_app t ~name:"tapp" ?priv (fun () ->
         (try body () with e -> failure := Some (Printexc.to_string e));
         finished := true));
  let ok = System.run_until t ~timeout:120_000_000 (fun () -> !finished) in
  Alcotest.(check bool) "app finished" true ok;
  match !failure with Some msg -> Alcotest.fail msg | None -> ()

(* --- data store --- *)

let test_pattern_matching () =
  let cases =
    [
      ("eth.*", "eth.rtl8139", true);
      ("eth.*", "eth.", true);
      ("eth.*", "ethx", false);
      ("eth.*", "blk.sata", false);
      ("blk.sata", "blk.sata", true);
      ("blk.sata", "blk.sata2", false);
      ("*", "anything", true);
    ]
  in
  List.iter
    (fun (pattern, key, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s ~ %s" pattern key)
        expected
        (Data_store.pattern_matches ~pattern key))
    cases

let prop_star_pattern_is_prefix =
  QCheck.Test.make ~name:"'p*' matches exactly the p-prefixed keys" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 8)) (string_of_size (QCheck.Gen.int_bound 12)))
    (fun (prefix, key) ->
      let pattern = prefix ^ "*" in
      let is_prefix =
        String.length key >= String.length prefix
        && String.sub key 0 (String.length prefix) = prefix
      in
      Data_store.pattern_matches ~pattern key = is_prefix)

let ds_publish key value =
  match Api.sendrec Wellknown.ds (Message.Ds_publish { key; value }) with
  | Ok (Sysif.Rx_msg { body = Message.Ds_reply { result = Ok () }; _ }) -> ()
  | _ -> failwith "publish failed"

let ds_retrieve key =
  match Api.sendrec Wellknown.ds (Message.Ds_retrieve { key }) with
  | Ok (Sysif.Rx_msg { body = Message.Ds_retrieve_reply { result }; _ }) -> result
  | _ -> Error Errno.E_io

let test_ds_publish_retrieve_delete () =
  let t = boot () in
  with_app t (fun () ->
      ds_publish "answer" (Message.V_int 42);
      (match ds_retrieve "answer" with
      | Ok (Message.V_int 42) -> ()
      | _ -> failwith "retrieve mismatch");
      (match Api.sendrec Wellknown.ds (Message.Ds_delete { key = "answer" }) with
      | Ok _ -> ()
      | Error _ -> failwith "delete failed");
      match ds_retrieve "answer" with
      | Error Errno.E_noent -> ()
      | _ -> failwith "deleted key still present")

let test_ds_subscription_notifies () =
  let t = boot () in
  with_app t (fun () ->
      (match Api.sendrec Wellknown.ds (Message.Ds_subscribe { pattern = "cfg.*" }) with
      | Ok _ -> ()
      | Error _ -> failwith "subscribe failed");
      ds_publish "cfg.speed" (Message.V_int 9600);
      ds_publish "other.key" (Message.V_int 1);
      (* The matching publication arrives as a notification + check. *)
      match Api.receive Sysif.Any with
      | Ok (Sysif.Rx_notify { kind = Message.N_ds_update; _ }) -> (
          match Api.sendrec Wellknown.ds Message.Ds_check with
          | Ok (Sysif.Rx_msg { body = Message.Ds_check_reply { result = Ok (Some (key, Message.V_int 9600)) }; _ })
            ->
              if not (String.equal key "cfg.speed") then failwith "wrong key";
              (* And nothing else is pending (other.key did not match). *)
              (match Api.sendrec Wellknown.ds Message.Ds_check with
              | Ok (Sysif.Rx_msg { body = Message.Ds_check_reply { result = Ok None }; _ }) -> ()
              | _ -> failwith "unexpected second update")
          | _ -> failwith "check did not return the update")
      | _ -> failwith "expected a DS notification")

let test_snapshot_requires_identity () =
  let t = boot () in
  (* An anonymous app has no stable name in the registry, so the data
     store must refuse to store private state for it. *)
  with_app t (fun () ->
      match Api.sendrec Wellknown.ds (Message.Ds_snapshot_store { key = "x"; data = "y" }) with
      | Ok (Sysif.Rx_msg { body = Message.Ds_reply { result = Error Errno.E_no_perm }; _ }) -> ()
      | _ -> failwith "unauthenticated snapshot store must be refused")

(* A stateful service: keeps a counter, backs it up in the data store,
   and restores it after a restart — the Sec. 5.3 state-recovery
   mechanism ("a restarted component may need to retrieve state that
   is lost when it crashed"). *)
let stateful_program () =
  let counter = ref 0 in
  (* Restore state from our authenticated snapshot, if any.  A fresh
     incarnation may briefly precede its naming-table entry, so retry
     on EPERM like a robust service would. *)
  let rec restore tries =
    match Api.sendrec Wellknown.ds (Message.Ds_snapshot_fetch { key = "counter" }) with
    | Ok (Sysif.Rx_msg { body = Message.Ds_snapshot_reply { result = Ok data }; _ }) ->
        counter := int_of_string data
    | Ok (Sysif.Rx_msg { body = Message.Ds_snapshot_reply { result = Error Errno.E_no_perm }; _ })
      when tries > 0 ->
        Api.sleep 10_000;
        restore (tries - 1)
    | _ -> ()
  in
  restore 5;
  Driver_lib.run_dev
    {
      Driver_lib.default_dev_handlers with
      Driver_lib.dh_ioctl =
        (fun ~src:_ ~minor:_ ~op ~arg:_ ->
          match op with
          | "get" -> Driver_lib.Reply (Ok !counter)
          | "incr" ->
              incr counter;
              ignore
                (Api.sendrec Wellknown.ds
                   (Message.Ds_snapshot_store { key = "counter"; data = string_of_int !counter }));
              Driver_lib.Reply (Ok !counter)
          | _ -> Driver_lib.Reply (Error Errno.E_inval));
    }

let svc_ioctl name op =
  match Service.lookup name with
  | Error e -> Error e
  | Ok (ep, _) -> (
      match Api.sendrec ep (Message.Dev_ioctl { minor = 0; op; arg = 0 }) with
      | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result }; _ }) -> result
      | Ok _ -> Error Errno.E_io
      | Error e -> Error e)

let test_stateful_recovery_via_snapshots () =
  let t = boot () in
  Kernel.register_program t.System.kernel "stateful" stateful_program;
  let spec =
    Spec.make ~name:"svc.counter" ~program:"stateful"
      ~privileges:(Privilege.driver ~ipc_to:[ "vfs" ] ~io_ports:[] ~irqs:[])
      ~heartbeat_period:0 ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  let after_restart = ref (-1) in
  with_app ~priv:{ Privilege.app with Privilege.ipc_to = Privilege.All } t (fun () ->
      for _ = 1 to 3 do
        ignore (svc_ioctl "svc.counter" "incr")
      done;
      (* Kill the service; its in-memory counter dies with it. *)
      ignore (Service.restart "svc.counter");
      (match Service.wait_until_up "svc.counter" with
      | Ok _ -> ()
      | Error _ -> failwith "service did not come back");
      Api.sleep 50_000;
      match svc_ioctl "svc.counter" "get" with
      | Ok v -> after_restart := v
      | Error e -> failwith ("get failed: " ^ Errno.to_string e));
  Alcotest.(check int) "state restored from the data store" 3 !after_restart;
  Alcotest.(check int) "one reincarnation happened" 1
    (Reincarnation.restarts_of t.System.rs "svc.counter")

(* --- process manager --- *)

let test_pm_pidof_and_kill () =
  let t = boot () in
  Kernel.register_program t.System.kernel "sleeper" (fun () -> Api.sleep 1_000_000_000);
  let spec =
    Spec.make ~name:"svc.sleeper" ~program:"sleeper"
      ~privileges:(Privilege.driver ~ipc_to:[] ~io_ports:[] ~irqs:[])
      ~heartbeat_period:0 ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  with_app t (fun () ->
      let pid =
        match Api.sendrec Wellknown.pm (Message.Pm_pidof { name = "svc.sleeper" }) with
        | Ok (Sysif.Rx_msg { body = Message.Pm_pidof_reply { result = Ok pid }; _ }) -> pid
        | _ -> failwith "pidof failed"
      in
      (match Api.sendrec Wellknown.pm (Message.Pm_pidof { name = "nobody" }) with
      | Ok (Sysif.Rx_msg { body = Message.Pm_pidof_reply { result = Error Errno.E_noent }; _ }) -> ()
      | _ -> failwith "pidof of unknown name must fail");
      match Api.sendrec Wellknown.pm (Message.Pm_kill { pid; signal = Signal.Sig_kill }) with
      | Ok (Sysif.Rx_msg { body = Message.Pm_reply { result = Ok () }; _ }) -> ()
      | _ -> failwith "kill failed");
  (* RS recovers it (killed-by-user class). *)
  System.run t ~until:(Resilix_sim.Engine.now t.System.engine + 1_000_000);
  Alcotest.(check bool) "recovered after pm kill" true
    (Reincarnation.service_up t.System.rs "svc.sleeper")

let test_pm_kill_unknown_pid () =
  let t = boot () in
  with_app t (fun () ->
      match Api.sendrec Wellknown.pm (Message.Pm_kill { pid = 424242; signal = Signal.Sig_kill }) with
      | Ok (Sysif.Rx_msg { body = Message.Pm_reply { result = Error Errno.E_noent }; _ }) -> ()
      | _ -> failwith "killing an unknown pid must fail")

(* --- complaints (defect class 5) --- *)

(* A protocol-violating network driver: it claims to have received a
   frame of an impossible length, which INET reports to RS. *)
let liar_program () =
  Driver_lib.run_net
    {
      Driver_lib.nh_conf = (fun ~src:_ ~mode:_ -> Ok 0x4242);
      nh_writev = (fun ~src:_ ~grant:_ ~len:_ -> ());
      nh_readv =
        (fun ~src ~grant:_ ~len:_ ->
          Driver_lib.task_reply src ~sent:false ~received:true ~read_len:999_999);
      nh_getstat = (fun ~src:_ -> (0, 0, 0));
      nh_irq = (fun ~line:_ -> ());
    }

let test_complaint_defect_class () =
  let opts =
    { System.default_opts with System.disk_mb = 8; inet_driver = "eth.liar" }
  in
  let t = System.boot ~opts () in
  Kernel.register_program t.System.kernel "liar" liar_program;
  let spec =
    Spec.make ~name:"eth.liar" ~program:"liar"
      ~privileges:(Privilege.driver ~ipc_to:[ "inet" ] ~io_ports:[] ~irqs:[])
      ~heartbeat_period:0 ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  (* INET configures the driver, posts a receive buffer, the driver
     lies, INET complains, RS replaces the driver. *)
  System.run t ~until:(Resilix_sim.Engine.now t.System.engine + 3_000_000);
  let complaints =
    List.filter
      (fun e -> e.Reincarnation.defect = Status.D_complaint)
      (Reincarnation.events t.System.rs)
  in
  Alcotest.(check bool) "at least one complaint recorded" true (List.length complaints >= 1);
  (* The liar keeps lying after every replacement, so the last event
     may still be mid-recovery; at least one full replace must have
     completed. *)
  Alcotest.(check bool) "complained-about driver was replaced" true
    (List.exists (fun e -> e.Reincarnation.recovered_at <> None) complaints)

let test_complaint_requires_authority () =
  let t = boot () in
  Kernel.register_program t.System.kernel "sleeper" (fun () -> Api.sleep 1_000_000_000);
  let spec =
    Spec.make ~name:"svc.sleeper" ~program:"sleeper"
      ~privileges:(Privilege.driver ~ipc_to:[] ~io_ports:[] ~irqs:[])
      ~heartbeat_period:0 ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  with_app t (fun () ->
      (* An ordinary application is not an authorized complainer. *)
      match
        Api.sendrec Wellknown.rs (Message.Rs_complain { name = "svc.sleeper"; reason = "grudge" })
      with
      | Ok (Sysif.Rx_msg { body = Message.Rs_reply { result = Error Errno.E_no_perm }; _ }) -> ()
      | _ -> failwith "unauthorized complaint must be rejected")

let tests =
  [
    Alcotest.test_case "ds pattern matching" `Quick test_pattern_matching;
    QCheck_alcotest.to_alcotest prop_star_pattern_is_prefix;
    Alcotest.test_case "ds publish/retrieve/delete" `Quick test_ds_publish_retrieve_delete;
    Alcotest.test_case "ds subscription notifies" `Quick test_ds_subscription_notifies;
    Alcotest.test_case "snapshot needs a stable name" `Quick test_snapshot_requires_identity;
    Alcotest.test_case "stateful recovery via DS snapshots" `Quick test_stateful_recovery_via_snapshots;
    Alcotest.test_case "pm pidof and kill" `Quick test_pm_pidof_and_kill;
    Alcotest.test_case "pm kill unknown pid" `Quick test_pm_kill_unknown_pid;
    Alcotest.test_case "complaint replaces a lying driver" `Quick test_complaint_defect_class;
    Alcotest.test_case "complaints require authority" `Quick test_complaint_requires_authority;
  ]
