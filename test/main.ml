let () =
  Alcotest.run "resilix"
    [
      ("sim", Test_sim.tests);
      ("obs", Test_obs.tests);
      ("harness", Test_harness.tests);
      ("proto", Test_proto.tests);
      ("checksum", Test_checksum.tests);
      ("kernel", Test_kernel.tests);
      ("vm", Test_vm.tests);
      ("hw", Test_hw.tests);
      ("net", Test_net.tests);
      ("tcp-edge", Test_tcp_edge.tests);
      ("fs", Test_fs.tests);
      ("servers", Test_servers.tests);
      ("system", Test_system.tests);
      ("chardev", Test_chardev.tests);
      ("recovery", Test_recovery.tests);
      ("policy", Test_policy.tests);
      ("faultinj", Test_faultinj.tests);
      ("sclc", Test_sclc.tests);
      ("dst", Test_dst.tests);
      ("storm", Test_storm.tests);
    ]
