(* Tests for the network stack below the INET server: wire codecs and
   the TCP engine driven over a simulated (lossy, reordering-free)
   pipe. *)

module Engine = Resilix_sim.Engine
module Rng = Resilix_sim.Rng
module Wire = Resilix_net.Wire
module Tcp = Resilix_net.Tcp

(* --- wire codec --- *)

let seg ?(payload = "") ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false) () =
  {
    Wire.src_port = 1234;
    dst_port = 80;
    seq = 0x89ABCDEF;
    ack_no = 0x01020304;
    syn;
    ack;
    fin;
    rst;
    window = 65535;
    payload = Bytes.of_string payload;
  }

let frame body =
  { Wire.dst_mac = 0x0000_0000_0002; src_mac = 0x0000_0000_0001; packet = { Wire.src_ip = Wire.ip 10 0 0 1; dst_ip = Wire.ip 10 0 0 2; body } }

let test_tcp_roundtrip () =
  let f = frame (Wire.Tcp (seg ~payload:"hello tcp" ~ack:true ())) in
  match Wire.decode (Wire.encode f) with
  | Error e -> Alcotest.fail e
  | Ok f' -> (
      Alcotest.(check bool) "macs preserved" true (f'.Wire.dst_mac = f.Wire.dst_mac);
      match f'.Wire.packet.body with
      | Wire.Tcp s ->
          Alcotest.(check string) "payload" "hello tcp" (Bytes.to_string s.Wire.payload);
          Alcotest.(check int) "seq" 0x89ABCDEF s.Wire.seq;
          Alcotest.(check bool) "ack flag" true s.Wire.ack
      | Wire.Udp _ -> Alcotest.fail "wrong protocol")

let test_udp_roundtrip () =
  let f = frame (Wire.Udp { Wire.src_port = 53; dst_port = 5353; payload = Bytes.of_string "dns?" }) in
  match Wire.decode (Wire.encode f) with
  | Error e -> Alcotest.fail e
  | Ok f' -> (
      match f'.Wire.packet.body with
      | Wire.Udp d -> Alcotest.(check string) "payload" "dns?" (Bytes.to_string d.Wire.payload)
      | Wire.Tcp _ -> Alcotest.fail "wrong protocol")

let test_corruption_detected () =
  let f = frame (Wire.Tcp (seg ~payload:"integrity matters" ~ack:true ())) in
  let b = Wire.encode f in
  (* Flip one payload bit. *)
  let i = Bytes.length b - 3 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  match Wire.decode b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted frame must not decode"

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip for arbitrary payloads" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_bound 1460))
    (fun payload ->
      let f = frame (Wire.Tcp (seg ~payload ~ack:true ())) in
      match Wire.decode (Wire.encode f) with
      | Ok { Wire.packet = { body = Wire.Tcp s; _ }; _ } ->
          Bytes.to_string s.Wire.payload = payload
      | _ -> false)

(* --- TCP over a simulated pipe --- *)

(* Wire two TCP engines together through the engine with latency,
   optional loss, and per-connection timers. *)
type pipe_end = {
  mutable conn : Tcp.t option;
  mutable timer : Engine.handle option;
  mutable events : Tcp.event list;
}

let make_pair ?(latency = 500) ?(drop_prob = 0.) ?(seed = 7) engine =
  let rng = Rng.create ~seed in
  let a = { conn = None; timer = None; events = [] } in
  let b = { conn = None; timer = None; events = [] } in
  let deliver_to dst seg =
    if not (Rng.bool rng drop_prob) then
      ignore
        (Engine.schedule engine ~after:latency (fun () ->
             match dst.conn with
             | Some c -> Tcp.handle_segment c ~now:(Engine.now engine) seg
             | None -> ()))
  in
  let callbacks this other =
    {
      Tcp.emit = (fun seg -> deliver_to other seg);
      set_timer =
        (fun delay ->
          (match this.timer with Some h -> Engine.cancel h | None -> ());
          this.timer <- None;
          match delay with
          | Some d ->
              this.timer <-
                Some
                  (Engine.schedule engine ~after:d (fun () ->
                       this.timer <- None;
                       match this.conn with
                       | Some c -> Tcp.handle_timer c ~now:(Engine.now engine)
                       | None -> ()))
          | None -> ());
      notify = (fun ev -> this.events <- ev :: this.events);
    }
  in
  let cfg_a = Tcp.default_config ~local_port:1000 ~remote_port:2000 ~isn:111 in
  let cfg_b = Tcp.default_config ~local_port:2000 ~remote_port:1000 ~isn:999_222 in
  b.conn <- Some (Tcp.create_passive cfg_b ~now:0 (callbacks b a));
  a.conn <- Some (Tcp.create_active cfg_a ~now:0 (callbacks a b));
  (a, b)

let test_handshake () =
  let engine = Engine.create () in
  let a, b = make_pair engine in
  Engine.run engine ~until:1_000_000;
  Alcotest.(check bool) "A established" true (Tcp.is_established (Option.get a.conn));
  Alcotest.(check bool) "B established" true (Tcp.is_established (Option.get b.conn))

(* Pump [total] bytes from A to B through app-level send/recv loops. *)
let transfer engine a b ~total ~chunk =
  let sent = ref 0 and received = Buffer.create total in
  let conn_a = Option.get a.conn and conn_b = Option.get b.conn in
  let src_byte i = Char.chr (((i * 131) + (i / 251)) land 0xFF) in
  let rec feeder () =
    if !sent < total && not (Tcp.is_closed conn_a) then begin
      let want = min chunk (total - !sent) in
      let data = Bytes.init want (fun i -> src_byte (!sent + i)) in
      let accepted = Tcp.send conn_a ~now:(Engine.now engine) data ~off:0 ~len:want in
      sent := !sent + accepted;
      if !sent >= total then Tcp.close conn_a ~now:(Engine.now engine);
      ignore (Engine.schedule engine ~after:2_000 feeder)
    end
  in
  let rec drainer () =
    let data = Tcp.recv conn_b ~max:65536 in
    Buffer.add_bytes received data;
    if not (Tcp.peer_closed conn_b && Tcp.rx_available conn_b = 0) then
      ignore (Engine.schedule engine ~after:2_000 drainer)
  in
  feeder ();
  drainer ();
  Engine.run engine ~until:600_000_000;
  let got = Buffer.contents received in
  let expected = String.init total src_byte in
  (got, expected)

let test_bulk_transfer_clean () =
  let engine = Engine.create () in
  let a, b = make_pair engine in
  let got, expected = transfer engine a b ~total:200_000 ~chunk:8192 in
  Alcotest.(check int) "all bytes arrive" (String.length expected) (String.length got);
  Alcotest.(check bool) "content identical" true (String.equal got expected)

let test_bulk_transfer_lossy () =
  let engine = Engine.create () in
  let a, b = make_pair ~drop_prob:0.05 ~seed:21 engine in
  let got, expected = transfer engine a b ~total:120_000 ~chunk:4096 in
  Alcotest.(check int) "all bytes arrive despite 5% loss" (String.length expected)
    (String.length got);
  Alcotest.(check bool) "content identical" true (String.equal got expected);
  Alcotest.(check bool) "losses caused retransmissions" true
    (Tcp.retransmissions (Option.get a.conn) > 0)

let test_transfer_across_blackout () =
  (* Model a driver crash: 100% loss for a window in the middle of the
     transfer; TCP must recover afterwards (Sec. 6.1). *)
  let engine = Engine.create () in
  let dropping = ref false in
  let rng = Rng.create ~seed:5 in
  let a = { conn = None; timer = None; events = [] } in
  let b = { conn = None; timer = None; events = [] } in
  let deliver_to dst seg =
    ignore rng;
    if not !dropping then
      ignore
        (Engine.schedule engine ~after:500 (fun () ->
             match dst.conn with
             | Some c -> Tcp.handle_segment c ~now:(Engine.now engine) seg
             | None -> ()))
  in
  let callbacks this other =
    {
      Tcp.emit = (fun seg -> deliver_to other seg);
      set_timer =
        (fun delay ->
          (match this.timer with Some h -> Engine.cancel h | None -> ());
          this.timer <- None;
          match delay with
          | Some d ->
              this.timer <-
                Some
                  (Engine.schedule engine ~after:d (fun () ->
                       this.timer <- None;
                       match this.conn with
                       | Some c -> Tcp.handle_timer c ~now:(Engine.now engine)
                       | None -> ()))
          | None -> ());
      notify = (fun ev -> this.events <- ev :: this.events);
    }
  in
  let cfg_a = Tcp.default_config ~local_port:1000 ~remote_port:2000 ~isn:77 in
  let cfg_b = Tcp.default_config ~local_port:2000 ~remote_port:1000 ~isn:88 in
  b.conn <- Some (Tcp.create_passive cfg_b ~now:0 (callbacks b a));
  a.conn <- Some (Tcp.create_active cfg_a ~now:0 (callbacks a b));
  (* Blackout between t=1s and t=1.5s. *)
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> dropping := true));
  ignore (Engine.schedule engine ~after:1_500_000 (fun () -> dropping := false));
  let got, expected = transfer engine a b ~total:400_000 ~chunk:8192 in
  Alcotest.(check int) "all bytes arrive across the blackout" (String.length expected)
    (String.length got);
  Alcotest.(check bool) "content identical" true (String.equal got expected)

let test_clean_close () =
  let engine = Engine.create () in
  let a, b = make_pair engine in
  let conn_a = Option.get a.conn and conn_b = Option.get b.conn in
  ignore
    (Engine.schedule engine ~after:10_000 (fun () ->
         let data = Bytes.of_string "bye" in
         ignore (Tcp.send conn_a ~now:(Engine.now engine) data ~off:0 ~len:3);
         Tcp.close conn_a ~now:(Engine.now engine)));
  ignore
    (Engine.schedule engine ~after:200_000 (fun () ->
         ignore (Tcp.recv conn_b ~max:100);
         Tcp.close conn_b ~now:(Engine.now engine)));
  Engine.run engine ~until:30_000_000;
  Alcotest.(check bool) "A fully closed" true (Tcp.is_closed conn_a);
  Alcotest.(check bool) "B saw peer close" true (Tcp.peer_closed conn_b)

let prop_lossy_transfer_delivers_exactly =
  QCheck.Test.make ~name:"tcp delivers the exact stream under random loss" ~count:15
    QCheck.(pair (int_range 1 40_000) (int_range 0 15))
    (fun (total, loss_pct) ->
      let engine = Engine.create () in
      let a, b = make_pair ~drop_prob:(float_of_int loss_pct /. 100.) ~seed:(total + loss_pct) engine in
      let got, expected = transfer engine a b ~total ~chunk:3000 in
      String.equal got expected)

let tests =
  [
    Alcotest.test_case "wire tcp roundtrip" `Quick test_tcp_roundtrip;
    Alcotest.test_case "wire udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "wire corruption detected" `Quick test_corruption_detected;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    Alcotest.test_case "tcp handshake" `Quick test_handshake;
    Alcotest.test_case "tcp bulk transfer (clean)" `Quick test_bulk_transfer_clean;
    Alcotest.test_case "tcp bulk transfer (5% loss)" `Quick test_bulk_transfer_lossy;
    Alcotest.test_case "tcp across 0.5s blackout" `Quick test_transfer_across_blackout;
    Alcotest.test_case "tcp clean close" `Quick test_clean_close;
    QCheck_alcotest.to_alcotest prop_lossy_transfer_delivers_exactly;
  ]
