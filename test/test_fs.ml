(* Tests for the file-system stack: on-disk codecs, mkfs, and the
   VFS/MFS path exercised through application file I/O. *)

module Layout = Resilix_fs.Layout
module Mkfs = Resilix_fs.Mkfs
module System = Resilix_system.System
module Fslib = Resilix_apps.Fslib
module Errno = Resilix_proto.Errno

(* --- layout codecs --- *)

let test_superblock_roundtrip () =
  let sb = Layout.geometry ~total_blocks:2048 ~inode_count:256 in
  match Layout.decode_superblock (Layout.encode_superblock sb) with
  | Error e -> Alcotest.fail e
  | Ok sb' ->
      Alcotest.(check int) "total blocks" sb.Layout.total_blocks sb'.Layout.total_blocks;
      Alcotest.(check int) "data start" sb.Layout.data_start sb'.Layout.data_start

let test_superblock_magic_checked () =
  let b = Bytes.make Layout.block_size '\000' in
  match Layout.decode_superblock b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zeroed block must not decode as a superblock"

let test_inode_roundtrip () =
  let inode =
    { Layout.mode = 1; size = 123456; nlinks = 2; zones = Array.init 9 (fun i -> i * 7) }
  in
  let decoded = Layout.decode_inode (Layout.encode_inode inode) ~off:0 in
  Alcotest.(check int) "size" inode.Layout.size decoded.Layout.size;
  Alcotest.(check bool) "zones" true (inode.Layout.zones = decoded.Layout.zones)

let prop_dirent_roundtrip =
  let name_gen =
    QCheck.Gen.(
      let* n = int_range 1 Layout.max_name in
      string_size ~gen:(map (fun i -> Char.chr (33 + (i mod 90))) (int_bound 1000)) (return n))
  in
  QCheck.Test.make ~name:"dirent roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 100000) name_gen))
    (fun (ino, name) ->
      let ino', name' = Layout.decode_dirent (Layout.encode_dirent ~ino ~name) ~off:0 in
      ino = ino' && String.equal name name')

let test_geometry_covers_device () =
  let sb = Layout.geometry ~total_blocks:100_000 ~inode_count:1024 in
  Alcotest.(check bool) "zone bitmap covers every block" true
    (sb.Layout.zmap_blocks * Layout.block_size * 8 >= sb.Layout.total_blocks);
  Alcotest.(check bool) "inode table sized for the count" true
    (sb.Layout.inode_blocks * Layout.inodes_per_block >= 1024)

(* --- mkfs --- *)

let test_mkfs_structure () =
  let blocks = Hashtbl.create 64 in
  let write_block b data = Hashtbl.replace blocks b (Bytes.copy data) in
  let mk = Mkfs.format ~write_block ~total_blocks:1024 ~inode_count:128 in
  let mk = Mkfs.add_contiguous_file mk ~name:"data" ~size:(100 * Layout.block_size) in
  Mkfs.finish mk;
  (match Layout.decode_superblock (Hashtbl.find blocks 0) with
  | Ok sb -> Alcotest.(check int) "total blocks recorded" 1024 sb.Layout.total_blocks
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "file placement known" true (Mkfs.file_first_block mk "data" <> None);
  (* The file needs an indirect block (100 > 7 direct zones), which
     mkfs must have written explicitly. *)
  let inode_block = Hashtbl.find blocks (Layout.zmap_start + 1) in
  let inode = Layout.decode_inode inode_block ~off:(2 * Layout.inode_size) in
  Alcotest.(check int) "file size recorded" (100 * Layout.block_size) inode.Layout.size;
  Alcotest.(check bool) "indirect zone allocated" true
    (inode.Layout.zones.(Layout.direct_zones) <> 0);
  Alcotest.(check bool) "indirect block written" true
    (Hashtbl.mem blocks inode.Layout.zones.(Layout.direct_zones))

(* --- end-to-end file I/O through VFS/MFS --- *)

let boot_fs () =
  let t = System.boot ~opts:{ System.default_opts with System.disk_mb = 16 } () in
  System.start_services t [ System.spec_sata () ];
  t

let with_app t body =
  let finished = ref false in
  let failure = ref None in
  ignore
    (System.spawn_app t ~name:"fsapp" (fun () ->
         (try body () with e -> failure := Some (Printexc.to_string e));
         finished := true));
  let ok = System.run_until t ~timeout:120_000_000 (fun () -> !finished) in
  Alcotest.(check bool) "app finished" true ok;
  match !failure with Some msg -> Alcotest.fail msg | None -> ()

let expect_ok label = function Ok v -> v | Error e -> Alcotest.fail (label ^ ": " ^ Errno.to_string e)

let test_create_write_read () =
  let t = boot_fs () in
  with_app t (fun () ->
      let fd = expect_ok "open" (Fslib.open_file "/a.txt" ~wr:true ~create:true) in
      let n = expect_ok "write" (Fslib.write fd (Bytes.of_string "first file")) in
      assert (n = 10);
      ignore (Fslib.close fd);
      let fd = expect_ok "reopen" (Fslib.open_file "/a.txt") in
      let data = expect_ok "read" (Fslib.read fd ~len:100) in
      assert (String.equal (Bytes.to_string data) "first file");
      (* EOF afterwards *)
      let eof = expect_ok "read eof" (Fslib.read fd ~len:100) in
      assert (Bytes.length eof = 0);
      ignore (Fslib.close fd))

let test_large_file_spans_indirect_zones () =
  let t = boot_fs () in
  with_app t (fun () ->
      let fd = expect_ok "open" (Fslib.open_file "/big" ~wr:true ~create:true) in
      (* 200 KB: beyond the 7 direct zones (28 KB), into the indirect. *)
      let chunk = Bytes.init 50_000 (fun i -> Char.chr (i land 0xFF)) in
      for _ = 1 to 4 do
        ignore (expect_ok "write" (Fslib.write fd chunk))
      done;
      ignore (Fslib.close fd);
      let fd = expect_ok "reopen" (Fslib.open_file "/big") in
      let total = ref 0 in
      let sum = ref 0 in
      let rec drain () =
        let data = expect_ok "read" (Fslib.read fd ~len:60_000) in
        if Bytes.length data > 0 then begin
          total := !total + Bytes.length data;
          Bytes.iter (fun c -> sum := !sum + Char.code c) data;
          drain ()
        end
      in
      drain ();
      assert (!total = 200_000);
      (* Content check: sum of the repeating 0..255 ramp. *)
      let expected_sum =
        let s = ref 0 in
        for i = 0 to 49_999 do
          s := !s + (i land 0xFF)
        done;
        4 * !s
      in
      assert (!sum = expected_sum))

let test_lseek_and_sparse_holes () =
  let t = boot_fs () in
  with_app t (fun () ->
      let fd = expect_ok "open" (Fslib.open_file "/sparse" ~wr:true ~create:true) in
      ignore (expect_ok "seek" (Fslib.lseek fd ~pos:100_000));
      ignore (expect_ok "write at offset" (Fslib.write fd (Bytes.of_string "tail")));
      ignore (Fslib.close fd);
      let fd = expect_ok "reopen" (Fslib.open_file "/sparse") in
      (* The hole reads as zeros. *)
      let head = expect_ok "read hole" (Fslib.read fd ~len:1000) in
      assert (Bytes.length head = 1000);
      Bytes.iter (fun c -> assert (c = '\000')) head;
      ignore (expect_ok "seek tail" (Fslib.lseek fd ~pos:100_000));
      let tail = expect_ok "read tail" (Fslib.read fd ~len:10) in
      assert (String.equal (Bytes.to_string tail) "tail");
      ignore (Fslib.close fd))

let test_truncate_on_open () =
  let t = boot_fs () in
  with_app t (fun () ->
      let fd = expect_ok "open" (Fslib.open_file "/t" ~wr:true ~create:true) in
      ignore (expect_ok "write" (Fslib.write fd (Bytes.make 50_000 'x')));
      ignore (Fslib.close fd);
      let fd = expect_ok "open trunc" (Fslib.open_file "/t" ~wr:true ~trunc:true) in
      ignore (Fslib.close fd);
      let fd = expect_ok "reopen" (Fslib.open_file "/t") in
      let data = expect_ok "read" (Fslib.read fd ~len:10) in
      assert (Bytes.length data = 0);
      ignore (Fslib.close fd))

let test_missing_file_enoent () =
  let t = boot_fs () in
  with_app t (fun () ->
      match Fslib.open_file "/no-such-file" with
      | Error Errno.E_noent -> ()
      | Ok _ -> failwith "open of a missing file succeeded"
      | Error e -> failwith ("unexpected error: " ^ Errno.to_string e))

let test_bad_fd_rejected () =
  let t = boot_fs () in
  with_app t (fun () ->
      (match Fslib.read 99 ~len:10 with
      | Error Errno.E_bad_fd -> ()
      | _ -> failwith "read on a bogus fd must fail");
      match Fslib.close 99 with
      | Error Errno.E_bad_fd -> ()
      | _ -> failwith "close on a bogus fd must fail")

let test_many_files () =
  let t = boot_fs () in
  with_app t (fun () ->
      for i = 1 to 20 do
        let path = Printf.sprintf "/file%02d" i in
        let fd = expect_ok "open" (Fslib.open_file path ~wr:true ~create:true) in
        ignore (expect_ok "write" (Fslib.write fd (Bytes.of_string (string_of_int (i * i)))));
        ignore (Fslib.close fd)
      done;
      for i = 1 to 20 do
        let path = Printf.sprintf "/file%02d" i in
        let fd = expect_ok "open" (Fslib.open_file path) in
        let data = expect_ok "read" (Fslib.read fd ~len:20) in
        assert (String.equal (Bytes.to_string data) (string_of_int (i * i)));
        ignore (Fslib.close fd)
      done)

let test_mkfs_files_visible_in_fs () =
  let opts =
    { System.default_opts with System.disk_mb = 16; fs_files = [ ("preload.bin", 123_456) ] }
  in
  let t = System.boot ~opts () in
  System.start_services t [ System.spec_sata () ];
  with_app t (fun () ->
      let fd = expect_ok "open preloaded" (Fslib.open_file "/preload.bin") in
      let total = ref 0 in
      let rec drain () =
        let data = expect_ok "read" (Fslib.read fd ~len:60_000) in
        if Bytes.length data > 0 then begin
          total := !total + Bytes.length data;
          drain ()
        end
      in
      drain ();
      assert (!total = 123_456))

(* Model-based property: a random sequence of writes and seeks through
   VFS/MFS must read back exactly like the same operations applied to
   an in-memory byte array. *)
let prop_fs_matches_reference_model =
  QCheck.Test.make ~name:"vfs/mfs matches an in-memory model" ~count:6
    QCheck.(
      list_of_size
        (QCheck.Gen.int_range 1 8)
        (pair (int_bound 150_000) (int_range 1 30_000)))
    (fun ops ->
      let t = boot_fs () in
      let model = Bytes.make 200_000 '\000' in
      let model_size = ref 0 in
      let ok = ref true in
      let finished = ref false in
      ignore
        (System.spawn_app t ~name:"model" (fun () ->
             (match Fslib.open_file "/m" ~wr:true ~create:true with
             | Error _ -> ok := false
             | Ok fd ->
                 List.iteri
                   (fun i (pos, len) ->
                     let c = Char.chr (65 + (i mod 26)) in
                     let data = Bytes.make len c in
                     (match Fslib.lseek fd ~pos with Ok () -> () | Error _ -> ok := false);
                     (match Fslib.write fd data with
                     | Ok n when n = len -> ()
                     | _ -> ok := false);
                     Bytes.blit data 0 model pos len;
                     model_size := max !model_size (pos + len))
                   ops;
                 ignore (Fslib.close fd);
                 (* Read everything back and compare. *)
                 (match Fslib.open_file "/m" with
                 | Error _ -> ok := false
                 | Ok fd ->
                     let buf = Buffer.create !model_size in
                     let rec drain () =
                       match Fslib.read fd ~len:60_000 with
                       | Ok data when Bytes.length data > 0 ->
                           Buffer.add_bytes buf data;
                           drain ()
                       | Ok _ -> ()
                       | Error _ -> ok := false
                     in
                     drain ();
                     ignore (Fslib.close fd);
                     if
                       not
                         (String.equal (Buffer.contents buf)
                            (Bytes.sub_string model 0 !model_size))
                     then ok := false));
             finished := true));
      ignore (System.run_until t ~timeout:300_000_000 (fun () -> !finished));
      !finished && !ok)

let tests =
  [
    Alcotest.test_case "superblock roundtrip" `Quick test_superblock_roundtrip;
    QCheck_alcotest.to_alcotest prop_fs_matches_reference_model;
    Alcotest.test_case "superblock magic checked" `Quick test_superblock_magic_checked;
    Alcotest.test_case "inode roundtrip" `Quick test_inode_roundtrip;
    QCheck_alcotest.to_alcotest prop_dirent_roundtrip;
    Alcotest.test_case "geometry covers the device" `Quick test_geometry_covers_device;
    Alcotest.test_case "mkfs writes a valid structure" `Quick test_mkfs_structure;
    Alcotest.test_case "create/write/read/EOF" `Quick test_create_write_read;
    Alcotest.test_case "large file uses indirect zones" `Quick test_large_file_spans_indirect_zones;
    Alcotest.test_case "lseek + sparse holes read zero" `Quick test_lseek_and_sparse_holes;
    Alcotest.test_case "truncate on open" `Quick test_truncate_on_open;
    Alcotest.test_case "missing file is ENOENT" `Quick test_missing_file_enoent;
    Alcotest.test_case "bad fd rejected" `Quick test_bad_fd_rejected;
    Alcotest.test_case "twenty small files" `Quick test_many_files;
    Alcotest.test_case "mkfs files visible through VFS" `Quick test_mkfs_files_visible_in_fs;
  ]
