(* Reincarnation-server scenarios: the six defect classes of Sec. 5.1
   and the policy machinery of Sec. 5.2. *)

module System = Resilix_system.System
module Engine = Resilix_sim.Engine
module Kernel = Resilix_kernel.Kernel
module Api = Resilix_kernel.Sysif.Api
module Sysif = Resilix_kernel.Sysif
module Endpoint = Resilix_proto.Endpoint
module Errno = Resilix_proto.Errno
module Message = Resilix_proto.Message
module Privilege = Resilix_proto.Privilege
module Spec = Resilix_proto.Spec
module Status = Resilix_proto.Status
module Wellknown = Resilix_proto.Wellknown
module Policy = Resilix_core.Policy
module Reincarnation = Resilix_core.Reincarnation
module Service = Resilix_core.Service
module Data_store = Resilix_datastore.Data_store

let boot ?policies () =
  let opts =
    match policies with
    | None -> { System.default_opts with System.disk_mb = 8 }
    | Some ps ->
        { System.default_opts with System.disk_mb = 8; policies = System.default_opts.System.policies @ ps }
  in
  System.boot ~opts ()

let svc_priv = Privilege.driver ~ipc_to:[ "rs"; "ds"; "vfs" ] ~io_ports:[] ~irqs:[]

(* A well-behaved service: answers heartbeats, exits on SIGTERM. *)
let docile_program () =
  Resilix_drivers.Driver_lib.run_dev Resilix_drivers.Driver_lib.default_dev_handlers

(* A service that wedges itself in an infinite loop: only heartbeat
   monitoring can catch it (defect class 4). *)
let stuck_program () =
  let rec spin () =
    Api.yield ~cost:50 ();
    spin ()
  in
  spin ()

(* A service that panics shortly after starting — a crash-storm
   generator for backoff tests (defect class 1). *)
let panicky_program () =
  Api.sleep 10_000;
  Api.panic "deliberate inconsistency"

let defects_of rs = List.map (fun e -> e.Reincarnation.defect) (Reincarnation.events rs)

let test_heartbeat_detection () =
  let t = boot () in
  Kernel.register_program t.System.kernel "stuck" stuck_program;
  let spec =
    Spec.make ~name:"svc.stuck" ~program:"stuck" ~privileges:svc_priv ~heartbeat_period:200_000
      ~max_heartbeat_misses:3 ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  (* The service never answers a single heartbeat. *)
  System.run t ~until:(Engine.now t.System.engine + 5_000_000);
  let ds = defects_of t.System.rs in
  Alcotest.(check bool) "heartbeat defect detected" true (List.mem Status.D_heartbeat ds);
  Alcotest.(check bool) "service was restarted" true
    (Reincarnation.restarts_of t.System.rs "svc.stuck" >= 1)

let test_docile_service_stays_up () =
  let t = boot () in
  Kernel.register_program t.System.kernel "docile" docile_program;
  let spec =
    Spec.make ~name:"svc.docile" ~program:"docile" ~privileges:svc_priv
      ~heartbeat_period:200_000 ~max_heartbeat_misses:3 ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 5_000_000);
  Alcotest.(check int) "no spurious recoveries" 0 (List.length (Reincarnation.events t.System.rs));
  Alcotest.(check bool) "still up" true (Reincarnation.service_up t.System.rs "svc.docile")

let test_exponential_backoff () =
  let t = boot () in
  Kernel.register_program t.System.kernel "panicky" panicky_program;
  let spec =
    Spec.make ~name:"svc.panicky" ~program:"panicky" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"generic" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 16_000_000);
  let events = Reincarnation.events t.System.rs in
  Alcotest.(check bool)
    (Printf.sprintf "several failures recorded (%d)" (List.length events))
    true
    (List.length events >= 3);
  (* Fig. 2: sleep (1 << (repetition - 1)) between detection and
     restart, so inter-failure gaps must grow roughly geometrically. *)
  let times = List.map (fun e -> e.Reincarnation.detected_at) events in
  let rec gaps = function a :: (b :: _ as rest) -> (b - a) :: gaps rest | _ -> [] in
  (match gaps times with
  | g1 :: g2 :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "backoff grows (gap1=%dus gap2=%dus)" g1 g2)
        true
        (g2 > g1 && g2 >= 2_000_000 && g1 >= 1_000_000)
  | _ -> Alcotest.fail "expected at least two inter-failure gaps");
  (* All these failures are panics: defect class 1. *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "defect class is exit/panic" true
        (e.Reincarnation.defect = Status.D_exit))
    events

let test_policy_gives_up () =
  let t =
    boot ~policies:[ ("fragile", Policy.guarded ~max_failures:2 ~alert:"admin@local" ()) ] ()
  in
  Kernel.register_program t.System.kernel "panicky" panicky_program;
  let spec =
    Spec.make ~name:"svc.fragile" ~program:"panicky" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"fragile" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 30_000_000);
  Alcotest.(check bool) "service ends down" false (Reincarnation.service_up t.System.rs "svc.fragile");
  (* The policy script raised a failure alert (the "mail"). *)
  let alerts =
    List.filter
      (fun k -> String.length k >= 5 && String.sub k 0 5 = "alert")
      (Data_store.keys t.System.ds)
  in
  Alcotest.(check bool) "alert was recorded" true (List.length alerts >= 1)

(* Versioned service for the dynamic-update test (defect class 6). *)
let versioned_program version () =
  let handlers =
    {
      Resilix_drivers.Driver_lib.default_dev_handlers with
      Resilix_drivers.Driver_lib.dh_ioctl =
        (fun ~src:_ ~minor:_ ~op ~arg:_ ->
          if String.equal op "version" then Resilix_drivers.Driver_lib.Reply (Ok version)
          else Resilix_drivers.Driver_lib.Reply (Error Errno.E_inval));
    }
  in
  Resilix_drivers.Driver_lib.run_dev handlers

let query_version target =
  match Service.lookup target with
  | Error e -> Error e
  | Ok (ep, _pid) -> (
      match Api.sendrec ep (Message.Dev_ioctl { minor = 0; op = "version"; arg = 0 }) with
      | Ok (Sysif.Rx_msg { body = Message.Dev_reply { result }; _ }) -> result
      | Ok _ -> Error Errno.E_io
      | Error e -> Error e)

let test_dynamic_update () =
  let t = boot () in
  Kernel.register_program t.System.kernel "verdrv-v1" (versioned_program 1);
  Kernel.register_program t.System.kernel "verdrv-v2" (versioned_program 2);
  let spec =
    Spec.make ~name:"svc.ver" ~program:"verdrv-v1" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"generic" ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  let v_before = ref 0 and v_after = ref 0 and refresh_ok = ref false and done_flag = ref false in
  ignore
    (System.spawn_app t ~name:"updater"
       ~priv:{ Privilege.app with Privilege.ipc_to = Privilege.All }
       (fun () ->
         (match query_version "svc.ver" with Ok v -> v_before := v | Error _ -> ());
         (* `service refresh` with a patched binary (Sec. 5.1 input 6). *)
         (match Service.refresh ~program:"verdrv-v2" "svc.ver" with
         | Ok () -> refresh_ok := true
         | Error _ -> ());
         (* Wait for the update to complete. *)
         let rec wait tries =
           if tries = 0 then ()
           else begin
             Api.sleep 100_000;
             match query_version "svc.ver" with
             | Ok v when v <> !v_before -> v_after := v
             | Ok _ | Error _ -> wait (tries - 1)
           end
         in
         wait 50;
         done_flag := true));
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> !done_flag) in
  Alcotest.(check bool) "updater finished" true finished;
  Alcotest.(check bool) "refresh accepted" true !refresh_ok;
  Alcotest.(check int) "old version first" 1 !v_before;
  Alcotest.(check int) "new version after update" 2 !v_after;
  let events = Reincarnation.events t.System.rs in
  Alcotest.(check bool) "defect class is dynamic update" true
    (List.exists (fun e -> e.Reincarnation.defect = Status.D_update) events);
  (* Updates skip the backoff: recovery must be fast. *)
  (match events with
  | [ e ] -> (
      match e.Reincarnation.recovered_at with
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "no backoff before update restart (%dus)" (r - e.Reincarnation.detected_at))
            true
            (r - e.Reincarnation.detected_at < 500_000)
      | None -> Alcotest.fail "update recovery not completed")
  | _ -> Alcotest.fail "expected exactly one recovery event")

let test_user_restart () =
  let t = boot () in
  Kernel.register_program t.System.kernel "docile" docile_program;
  let spec =
    Spec.make ~name:"svc.docile" ~program:"docile" ~privileges:svc_priv ~heartbeat_period:0
      ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  let first_ep = ref None and second_ep = ref None and done_flag = ref false in
  ignore
    (System.spawn_app t ~name:"admin" (fun () ->
         (match Service.lookup "svc.docile" with Ok (ep, _) -> first_ep := Some ep | Error _ -> ());
         ignore (Service.restart "svc.docile");
         (match Service.wait_until_up "svc.docile" with
         | Ok ep -> second_ep := Some ep
         | Error _ -> ());
         done_flag := true));
  let finished = System.run_until t ~timeout:60_000_000 (fun () -> !done_flag) in
  Alcotest.(check bool) "admin finished" true finished;
  (match (!first_ep, !second_ep) with
  | Some a, Some b ->
      Alcotest.(check bool) "temporally unique endpoints differ across restart" false
        (Endpoint.equal a b)
  | _ -> Alcotest.fail "missing endpoints");
  Alcotest.(check bool) "defect class is killed-by-user" true
    (List.exists
       (fun e -> e.Reincarnation.defect = Status.D_killed_by_user)
       (Reincarnation.events t.System.rs))

let test_crash_script_storm () =
  (* The Sec. 7.1 crash script, against a docile service, for many
     rounds: every kill must be recovered. *)
  let t = boot () in
  Kernel.register_program t.System.kernel "docile" docile_program;
  let spec =
    Spec.make ~name:"svc.docile" ~program:"docile" ~privileges:svc_priv ~heartbeat_period:0
      ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.start_crash_script t ~target:"svc.docile" ~interval:500_000 ~count:10 ();
  System.run t ~until:(Engine.now t.System.engine + 10_000_000);
  Alcotest.(check int) "ten kills, ten recoveries" 10
    (Reincarnation.restarts_of t.System.rs "svc.docile");
  Alcotest.(check bool) "service is up at the end" true
    (Reincarnation.service_up t.System.rs "svc.docile")

let test_exception_defect_class () =
  let t = boot () in
  Kernel.register_program t.System.kernel "wild" (fun () ->
      Api.sleep 10_000;
      (* Dereference a wild pointer: MMU exception, defect class 2. *)
      ignore (Resilix_kernel.Memory.get_u32 (Api.memory ()) 0x7FFF_FFFF));
  let spec =
    Spec.make ~name:"svc.wild" ~program:"wild" ~privileges:svc_priv ~heartbeat_period:0
      ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  System.run t ~until:(Engine.now t.System.engine + 2_000_000);
  Alcotest.(check bool) "CPU/MMU exception defect recorded" true
    (List.mem Status.D_exception (defects_of t.System.rs))

(* A service that ignores SIGTERM: a dynamic update must escalate to
   SIGKILL after the grace period ("followed by a SIGKILL signal, if
   the driver does not comply", Sec. 6). *)
let stubborn_program () =
  let rec loop () =
    (match Api.receive Sysif.Any with
    | Ok (Sysif.Rx_notify { src; kind = Message.N_heartbeat_request }) ->
        ignore (Api.notify src Message.N_heartbeat_reply)
    | _ -> () (* including SIGTERM: rudely ignored *));
    loop ()
  in
  loop ()

let test_sigterm_escalates_to_sigkill () =
  let t = boot () in
  Kernel.register_program t.System.kernel "stubborn" stubborn_program;
  Kernel.register_program t.System.kernel "docile" docile_program;
  let spec =
    Spec.make ~name:"svc.stubborn" ~program:"stubborn" ~privileges:svc_priv ~heartbeat_period:0
      ~mem_kb:64 ()
  in
  System.start_services t [ spec ];
  let refreshed = ref None in
  ignore
    (System.spawn_app t ~name:"admin" (fun () ->
         refreshed := Some (Service.refresh ~program:"docile" "svc.stubborn")));
  (* Grace period is 2 s; escalation + restart within 5 s. *)
  System.run t ~until:(Engine.now t.System.engine + 5_000_000);
  (match !refreshed with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "refresh was not accepted");
  Alcotest.(check bool) "service is up on the new binary" true
    (Reincarnation.service_up t.System.rs "svc.stubborn");
  let events = Reincarnation.events t.System.rs in
  Alcotest.(check bool) "exactly one update recovery" true
    (match events with [ e ] -> e.Reincarnation.defect = Status.D_update | _ -> false);
  (* The escalation is visible as a typed policy decision. *)
  Alcotest.(check bool) "SIGKILL escalation recorded" true
    (Resilix_sim.Trace.query t.System.trace ~pred:(fun e ->
         match e.Resilix_sim.Trace.payload with
         | Resilix_obs.Event.Policy_decision
             {
               component = "svc.stubborn";
               policy = "update";
               decision = "ignored SIGTERM; escalating to SIGKILL";
             } ->
             true
         | _ -> false)
    <> [])

(* A dedicated policy script that also restarts dependent services —
   the paper's network-server example ("recovery requires restarting
   the DHCP client and X Window System, which can be specified in a
   dedicated policy script"). *)
let test_policy_restarts_dependents () =
  let t =
    boot
      ~policies:
        [ ("with-deps", Resilix_core.Policy.script [ Restart; Restart_dependents [ "svc.dep" ] ]) ]
      ()
  in
  Kernel.register_program t.System.kernel "docile" docile_program;
  let main_spec =
    Spec.make ~name:"svc.main" ~program:"docile" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"with-deps" ~mem_kb:64 ()
  in
  let dep_spec =
    Spec.make ~name:"svc.dep" ~program:"docile" ~privileges:svc_priv ~heartbeat_period:0
      ~mem_kb:64 ()
  in
  System.start_services t [ main_spec; dep_spec ];
  let dep_ep_before = ref None and dep_ep_after = ref None in
  ignore
    (System.spawn_app t ~name:"observer" (fun () ->
         (match Service.lookup "svc.dep" with Ok (ep, _) -> dep_ep_before := Some ep | _ -> ());
         Api.sleep 300_000;
         (* Crash the main service; its policy script should also
            bounce the dependent. *)
         ()));
  System.run t ~until:(Engine.now t.System.engine + 400_000);
  ignore (System.kill_service_once t ~target:"svc.main");
  System.run t ~until:(Engine.now t.System.engine + 3_000_000);
  ignore
    (System.spawn_app t ~name:"observer2" (fun () ->
         match Service.lookup "svc.dep" with Ok (ep, _) -> dep_ep_after := Some ep | _ -> ()));
  System.run t ~until:(Engine.now t.System.engine + 1_000_000);
  Alcotest.(check bool) "main recovered" true (Reincarnation.service_up t.System.rs "svc.main");
  Alcotest.(check bool) "dependent is up" true (Reincarnation.service_up t.System.rs "svc.dep");
  Alcotest.(check bool) "dependent was restarted too" true
    (Reincarnation.restarts_of t.System.rs "svc.dep" >= 1);
  match (!dep_ep_before, !dep_ep_after) with
  | Some a, Some b ->
      Alcotest.(check bool) "dependent got a fresh endpoint" false (Endpoint.equal a b)
  | _ -> Alcotest.fail "missing dependent endpoints"

(* The last-resort policy: after repeated failures, reboot the whole
   system — every guarded service gets a fresh incarnation, including
   the innocent ones. *)
let test_policy_reboots_system () =
  let t =
    boot
      ~policies:
        [
          ( "desperate",
            Resilix_core.Policy.script [ Reboot_after { max_failures = 2 }; Restart ] );
        ]
      ()
  in
  Kernel.register_program t.System.kernel "panicky" panicky_program;
  Kernel.register_program t.System.kernel "docile" docile_program;
  let bad =
    Spec.make ~name:"svc.bad" ~program:"panicky" ~privileges:svc_priv ~heartbeat_period:0
      ~policy:"desperate" ~mem_kb:64 ()
  in
  let good =
    Spec.make ~name:"svc.good" ~program:"docile" ~privileges:svc_priv ~heartbeat_period:0
      ~mem_kb:64 ()
  in
  System.start_services t [ bad; good ];
  let good_before = ref None in
  (match Kernel.find_by_name t.System.kernel "svc.good" with
  | Some ep -> good_before := Some ep
  | None -> Alcotest.fail "good service missing");
  (* svc.bad panics immediately, three failures trip the reboot. *)
  System.run t ~until:(Engine.now t.System.engine + 3_000_000);
  Alcotest.(check bool) "a reboot happened" true (Reincarnation.reboots t.System.rs >= 1);
  Alcotest.(check bool) "innocent service is up again" true
    (Reincarnation.service_up t.System.rs "svc.good");
  match (!good_before, Kernel.find_by_name t.System.kernel "svc.good") with
  | Some a, Some b ->
      Alcotest.(check bool) "innocent service was rebooted too (fresh endpoint)" false
        (Endpoint.equal a b)
  | _ -> Alcotest.fail "good service not found after reboot"

let tests =
  [
    Alcotest.test_case "heartbeat catches a stuck driver" `Quick test_heartbeat_detection;
    Alcotest.test_case "policy reboots the system" `Quick test_policy_reboots_system;
    Alcotest.test_case "SIGTERM escalation on update" `Quick test_sigterm_escalates_to_sigkill;
    Alcotest.test_case "dedicated script restarts dependents" `Quick test_policy_restarts_dependents;
    Alcotest.test_case "docile service stays up" `Quick test_docile_service_stays_up;
    Alcotest.test_case "exponential backoff (Fig. 2)" `Quick test_exponential_backoff;
    Alcotest.test_case "policy gives up after repeated failures" `Quick test_policy_gives_up;
    Alcotest.test_case "dynamic update replaces the binary" `Quick test_dynamic_update;
    Alcotest.test_case "user-requested restart" `Quick test_user_restart;
    Alcotest.test_case "crash-script storm: 10/10 recoveries" `Quick test_crash_script_storm;
    Alcotest.test_case "MMU exception defect class" `Quick test_exception_defect_class;
  ]
