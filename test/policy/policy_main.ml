(* The @policy batch: the circuit-breaker degradation story on the
   real machine, run as part of `dune runtest`.

   Deterministic and fast: one full flaky-driver run (the breaker must
   park the component while the workload keeps getting clean errors)
   judged by the breaker invariants, then a tiny seeded exploration of
   the same scenario to show the invariants hold across schedules.
   Unit tests for the individual state-machine transitions live in
   test/test_policy.ml. *)

module Engine = Resilix_sim.Engine
module Explore = Resilix_dst.Explore
module Scenario = Resilix_dst.Scenario
module Invariant = Resilix_dst.Invariant

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

let () =
  let flaky =
    match Scenario.find "flaky" with Some s -> s | None -> failwith "flaky scenario missing"
  in
  (* 1. One full run: permanently-faulty driver under the breaker
     policy. *)
  let plan = flaky.Scenario.plan ~seed:7 ~faults:flaky.Scenario.default_faults in
  let r = flaky.Scenario.run ~seed:7 ~policy:Engine.Fifo ~plan in
  check "workload never hangs" r.Scenario.r_completed;
  check "component published degraded" (r.Scenario.r_degraded = [ "chr.audio" ]);
  (match r.Scenario.r_breakers with
  | [ b ] ->
      check "breaker ends open" (b.Scenario.b_state = "open");
      check "probes were attempted" (b.Scenario.b_probes >= 1);
      check "churn stays within the breaker bound"
        (b.Scenario.b_failures
        <= (b.Scenario.b_threshold * (b.Scenario.b_probes + 1)) + b.Scenario.b_probes);
      check "open breaker is never probe-overdue" (not b.Scenario.b_overdue)
  | bs -> check (Printf.sprintf "one breaker row (got %d)" (List.length bs)) false);
  check "breaker invariants hold on the run"
    (Invariant.check ~bound:2_000_000 r = []);

  (* 2. A small seeded exploration: the breaker-bound and
     degraded-probe invariants must hold under schedule permutation
     too. *)
  let batch = Explore.run ~jobs:2 flaky ~seed:42 ~runs:2 () in
  check "seeded exploration finds no violations" (batch.Explore.failures = []);

  if !failures > 0 then begin
    Printf.printf "@policy batch: %d check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "@policy batch passed"
