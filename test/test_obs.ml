(* Tests for the observability layer: metric registry (counters,
   gauges, log-bucketed histograms), snapshot/diff, trace-ring
   overflow, recovery spans + MTTR reports, and the JSONL export. *)

module Event = Resilix_obs.Event
module Metrics = Resilix_obs.Metrics
module Span = Resilix_obs.Span
module Export = Resilix_obs.Export
module Trace = Resilix_sim.Trace
module Time = Resilix_sim.Time
module Status = Resilix_proto.Status
module Signal = Resilix_proto.Signal

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.add_named m "ipc" 3;
  Metrics.add_named m "ipc" 4;
  Metrics.set_named m "queue_depth" 9;
  Metrics.set_named m "queue_depth" 2;
  Alcotest.(check int) "counter accumulates" 7 (Metrics.value (Metrics.counter m "ipc"));
  let snap = Metrics.snapshot ~at:123 ~shard:3 m in
  Alcotest.(check int) "snapshot at" 123 snap.Metrics.taken_at;
  Alcotest.(check (list (pair string int))) "counters" [ ("ipc", 7) ] snap.Metrics.counters;
  match snap.Metrics.gauges with
  | [ ("queue_depth", g) ] ->
      Alcotest.(check int) "gauge keeps last value" 2 g.Metrics.g_last;
      Alcotest.(check int) "single-shard min is the value" 2 g.Metrics.g_min;
      Alcotest.(check int) "single-shard max is the value" 2 g.Metrics.g_max;
      Alcotest.(check int) "snapshot tags the shard" 3 g.Metrics.g_shard;
      Alcotest.(check int) "one source" 1 g.Metrics.g_sources
  | gs -> Alcotest.failf "expected one gauge, got %d" (List.length gs)

let test_counter_handles_are_shared () =
  let m = Metrics.create () in
  let a = Metrics.counter m "x" in
  let b = Metrics.counter m "x" in
  Metrics.incr a;
  Metrics.add b 2;
  Alcotest.(check int) "one underlying counter" 3
    (Metrics.counter_value (Metrics.snapshot m) "x")

let test_snapshot_diff () =
  let m = Metrics.create () in
  Metrics.add_named m "calls" 10;
  let before = Metrics.snapshot ~at:100 m in
  Metrics.add_named m "calls" 5;
  Metrics.add_named m "fresh" 1;
  let after = Metrics.snapshot ~at:200 m in
  let d = Metrics.diff before after in
  Alcotest.(check int) "diff timestamp is the end" 200 d.Metrics.taken_at;
  Alcotest.(check (list (pair string int)))
    "per-interval deltas"
    [ ("calls", 5); ("fresh", 1) ]
    d.Metrics.counters

(* ------------------------------------------------------------------ *)
(* Histogram bucketing edge cases                                      *)
(* ------------------------------------------------------------------ *)

let test_bucket_edges () =
  Alcotest.(check int) "zero in bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negative clamps to bucket 0" 0 (Metrics.bucket_of (-5));
  Alcotest.(check int) "one in bucket 1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "boundary 2^k-1 vs 2^k" 3 (Metrics.bucket_of 7);
  Alcotest.(check int) "8 starts bucket 4" 4 (Metrics.bucket_of 8);
  Alcotest.(check int) "max_int clamps to the last bucket" 62 (Metrics.bucket_of max_int);
  Alcotest.(check int) "upper of bucket 3 is 7" 7 (Metrics.bucket_upper 3);
  Alcotest.(check bool) "last upper saturates" true (Metrics.bucket_upper 62 > 0)

let test_histogram_observe () =
  let m = Metrics.create () in
  List.iter (Metrics.observe_named m "latency") [ 0; 1; 7; 8; max_int ];
  let snap = Metrics.snapshot m in
  match snap.Metrics.histograms with
  | [ ("latency", h) ] ->
      Alcotest.(check int) "count" 5 h.Metrics.count;
      Alcotest.(check int) "min" 0 h.Metrics.min_v;
      Alcotest.(check int) "max" max_int h.Metrics.max_v;
      Alcotest.(check (list (pair int int)))
        "non-empty buckets only"
        [ (0, 1); (1, 1); (3, 1); (4, 1); (62, 1) ]
        h.Metrics.buckets
  | hs -> Alcotest.failf "expected one histogram, got %d" (List.length hs)

(* ------------------------------------------------------------------ *)
(* Trace ring                                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_ring_overflow () =
  let trace = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit trace ~now:(Time.usec i) Trace.Debug "x" "event %d" i
  done;
  let evs = Trace.events trace in
  Alcotest.(check int) "capacity enforced" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest evicted first, order kept" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Trace.time) evs)

let test_trace_typed_query () =
  let trace = Trace.create () in
  Trace.emit_event trace ~now:(Time.usec 1) "kernel"
    (Event.Exit { ep = Resilix_proto.Endpoint.make ~slot:3 ~gen:1; name = "drv";
                  status = Status.Killed Signal.Sig_segv });
  Trace.emit trace ~now:(Time.usec 2) Trace.Info "kernel" "plain log";
  let hits =
    Trace.query trace ~pred:(fun e ->
        match e.Trace.payload with
        | Event.Exit { status = Status.Killed Signal.Sig_segv; _ } -> true
        | _ -> false)
  in
  Alcotest.(check int) "typed query finds the exit" 1 (List.length hits);
  (* The compat renderer still supports substring search. *)
  Alcotest.(check bool) "legacy find still works" true
    (Trace.find trace ~subsystem:"kernel" ~contains:"killed(SIGSEGV)" <> None)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Snapshot union (campaign aggregation)                               *)
(* ------------------------------------------------------------------ *)

let snap_of build = let m = Metrics.create () in build m; Metrics.snapshot m

let test_merge_counters_sum () =
  let a = snap_of (fun m -> Metrics.add_named m "ipc" 3; Metrics.add_named m "spawns" 1) in
  let b = snap_of (fun m -> Metrics.add_named m "ipc" 4; Metrics.add_named m "faults" 9) in
  let u = Metrics.merge a b in
  Alcotest.(check (list (pair string int)))
    "counters sum key-wise, union of names"
    [ ("faults", 9); ("ipc", 7); ("spawns", 1) ]
    u.Metrics.counters

let shard_snap_of shard build =
  let m = Metrics.create () in
  build m;
  Metrics.snapshot ~shard m

let test_merge_gauge_distribution () =
  let a = shard_snap_of 0 (fun m -> Metrics.set_named m "depth" 5; Metrics.set_named m "only_a" 1) in
  let b = shard_snap_of 1 (fun m -> Metrics.set_named m "depth" 2) in
  let u = Metrics.merge a b in
  (match u.Metrics.gauges with
  | [ ("depth", d); ("only_a", o) ] ->
      Alcotest.(check int) "last comes from the highest shard" 2 d.Metrics.g_last;
      Alcotest.(check int) "distribution min" 2 d.Metrics.g_min;
      Alcotest.(check int) "distribution max" 5 d.Metrics.g_max;
      Alcotest.(check int) "two sources" 2 d.Metrics.g_sources;
      Alcotest.(check int) "left-only survives unchanged" 1 o.Metrics.g_last;
      Alcotest.(check int) "left-only stays one source" 1 o.Metrics.g_sources
  | gs -> Alcotest.failf "expected two gauges, got %d" (List.length gs));
  (* The regression the old [last_write] combiner had: merging in the
     reverse order must produce the identical snapshot, because "last"
     is keyed on the shard index carried by the snapshot, not on merge
     order. *)
  Alcotest.(check bool) "gauge merge is commutative" true (Metrics.merge b a = u)

let test_merge_all_reversed_order_identical () =
  (* Satellite regression: reducing shard snapshots in reversed (or
     any) order yields the same aggregate a sequential in-order fold
     does — the property the campaign runner's deterministic reduce
     relies on. *)
  let shards =
    List.init 5 (fun i ->
        shard_snap_of i (fun m ->
            Metrics.set_named m "depth" (10 - (2 * i));
            Metrics.add_named m "events" (i + 1);
            Metrics.observe_named m "lat" (1 lsl i)))
  in
  let fwd = Metrics.merge_all shards in
  let rev = Metrics.merge_all (List.rev shards) in
  Alcotest.(check bool) "merge_all agrees with reversed input" true (fwd = rev);
  (* Reassociation must not matter either. *)
  let split =
    Metrics.merge
      (Metrics.merge_all (List.filteri (fun i _ -> i < 2) shards))
      (Metrics.merge_all (List.filteri (fun i _ -> i >= 2) shards))
  in
  Alcotest.(check bool) "merge reassociates freely" true (fwd = split);
  match fwd.Metrics.gauges with
  | [ ("depth", d) ] ->
      Alcotest.(check int) "last from shard 4" 2 d.Metrics.g_last;
      Alcotest.(check int) "min across shards" 2 d.Metrics.g_min;
      Alcotest.(check int) "max across shards" 10 d.Metrics.g_max;
      Alcotest.(check int) "five sources" 5 d.Metrics.g_sources
  | gs -> Alcotest.failf "expected one gauge, got %d" (List.length gs)

let test_merge_histograms () =
  let a = snap_of (fun m -> List.iter (Metrics.observe_named m "lat") [ 1; 2; 100 ]) in
  let b = snap_of (fun m -> List.iter (Metrics.observe_named m "lat") [ 3; 1000 ]) in
  let u = Metrics.merge a b in
  (match u.Metrics.histograms with
  | [ ("lat", h) ] ->
      Alcotest.(check int) "count sums" 5 h.Metrics.count;
      Alcotest.(check int) "sum sums" 1106 h.Metrics.sum;
      Alcotest.(check int) "min combines" 1 h.Metrics.min_v;
      Alcotest.(check int) "max combines" 1000 h.Metrics.max_v;
      let bucket_total = List.fold_left (fun acc (_, n) -> acc + n) 0 h.Metrics.buckets in
      Alcotest.(check int) "bucket-wise addition preserves mass" 5 bucket_total;
      (* 2 (left) and 3 (right) land in the same bucket: it must hold
         both samples after the merge. *)
      Alcotest.(check int) "shared bucket adds" 2
        (List.assoc (Metrics.bucket_of 2) h.Metrics.buckets)
  | hs -> Alcotest.fail (Printf.sprintf "expected one histogram, got %d" (List.length hs)))

let test_merge_empty_identity () =
  let s =
    snap_of (fun m ->
        Metrics.add_named m "c" 2;
        Metrics.set_named m "g" 3;
        Metrics.observe_named m "h" 7)
  in
  Alcotest.(check bool) "empty is right identity" true (Metrics.merge s Metrics.empty = s);
  Alcotest.(check bool) "empty is left identity" true (Metrics.merge Metrics.empty s = s);
  Alcotest.(check bool) "merge_all [] is empty" true (Metrics.merge_all [] = Metrics.empty);
  (* A registered-but-never-observed histogram snapshots as all zeros —
     the internal max_int/min_int accumulator sentinels must never leak
     into a snapshot — and merging it is a no-op. *)
  let e = snap_of (fun m -> ignore (Metrics.histogram m "h")) in
  (match e.Metrics.histograms with
  | [ ("h", h) ] ->
      Alcotest.(check int) "empty snapshot count" 0 h.Metrics.count;
      Alcotest.(check int) "empty snapshot min normalized" 0 h.Metrics.min_v;
      Alcotest.(check int) "empty snapshot max normalized" 0 h.Metrics.max_v;
      Alcotest.(check (list (pair int int))) "no buckets" [] h.Metrics.buckets
  | _ -> Alcotest.fail "expected the h histogram");
  let u = Metrics.merge e e in
  (match u.Metrics.histograms with
  | [ ("h", h) ] ->
      Alcotest.(check int) "empty merge count" 0 h.Metrics.count;
      Alcotest.(check int) "empty merge min" 0 h.Metrics.min_v;
      Alcotest.(check int) "empty merge max" 0 h.Metrics.max_v
  | _ -> Alcotest.fail "expected the h histogram");
  (* Empty on one side must not drag min/max toward zero on the other:
     hist_add short-circuits the count=0 operand entirely. *)
  let full = snap_of (fun m -> List.iter (Metrics.observe_named m "h") [ 5; 9 ]) in
  List.iter
    (fun merged ->
      match merged.Metrics.histograms with
      | [ ("h", h) ] ->
          Alcotest.(check int) "count unchanged" 2 h.Metrics.count;
          Alcotest.(check int) "min survives empty operand" 5 h.Metrics.min_v;
          Alcotest.(check int) "max survives empty operand" 9 h.Metrics.max_v
      | _ -> Alcotest.fail "expected the h histogram")
    [ Metrics.merge e full; Metrics.merge full e ]

let test_merge_all_associative_on_counters () =
  let mk v = snap_of (fun m -> Metrics.add_named m "c" v) in
  let u = Metrics.merge_all [ mk 1; mk 2; mk 3; mk 4 ] in
  Alcotest.(check int) "fold sums every operand" 10 (Metrics.counter_value u "c")

let test_span_concat () =
  let mk offset closed =
    let t = Span.create () in
    let s =
      Span.open_span t ~component:"eth.rtl8139" ~defect:Status.D_exit ~repetition:1
        ~now:offset
    in
    if closed then Span.close s ~now:(offset + 100);
    t
  in
  let a = mk 0 true and b = mk 1000 true and c = mk 2000 false in
  let all = Span.concat [ a; b; c ] in
  Alcotest.(check (list int))
    "spans keep source order, oldest first"
    [ 0; 1000; 2000 ]
    (List.map (fun s -> s.Span.opened_at) (Span.spans all));
  (* The concatenated collector still produces a coherent MTTR report
     over the union of closed spans. *)
  (match Span.report all with
  | [ r ] ->
      Alcotest.(check int) "two closed spans counted" 2 r.Span.n;
      Alcotest.(check int) "mean over both sources" 100 r.Span.mean_us
  | rs -> Alcotest.fail (Printf.sprintf "expected one component, got %d" (List.length rs)));
  (* New spans opened on the concatenation don't collide with ids of
     the sources' spans. *)
  let fresh =
    Span.open_span all ~component:"blk.sata" ~defect:Status.D_exit ~repetition:1 ~now:3000
  in
  Alcotest.(check bool) "fresh id unique" true
    (List.for_all
       (fun s -> s == fresh || s.Span.id <> fresh.Span.id)
       (Span.spans all))

let test_span_lifecycle () =
  let c = Span.create () in
  let s = Span.open_span c ~component:"eth" ~defect:Status.D_killed_by_user ~repetition:1 ~now:100 in
  Span.mark s Span.Policy ~now:150;
  Span.mark s Span.Policy ~now:999 (* re-mark keeps the first *);
  Span.mark_component c "eth" Span.Respawn ~now:200;
  Span.mark_component c "eth" Span.Republish ~now:250;
  Span.close_component c "eth" ~now:300;
  Alcotest.(check (option int)) "total" (Some 200) (Span.total_us s);
  Alcotest.(check (list (pair string int)))
    "phase deltas in causal order"
    [ ("detect", 0); ("policy", 50); ("respawn", 100); ("republish", 150) ]
    (List.map (fun (p, d) -> (Span.phase_name p, d)) (Span.phases s))

let test_span_reopen_after_close () =
  let c = Span.create () in
  let s = Span.open_span c ~component:"blk" ~defect:Status.D_exit ~repetition:1 ~now:0 in
  Span.close_component c "blk" ~now:50;
  (* Dependents re-bind after RS declares recovery complete: Reopen is
     the one phase accepted on a closed span — once. *)
  Span.mark_component c "blk" Span.Reopen ~now:80;
  Span.mark_component c "blk" Span.Reopen ~now:999;
  Span.mark_component c "blk" Span.Respawn ~now:999 (* other phases refused *);
  Alcotest.(check (list (pair string int)))
    "reopen recorded once, respawn refused"
    [ ("detect", 0); ("reopen", 80) ]
    (List.map (fun (p, d) -> (Span.phase_name p, d)) (Span.phases s));
  Alcotest.(check (option int)) "close kept" (Some 50) (Span.total_us s)

let test_mttr_report () =
  let c = Span.create () in
  let close ~component ~opened ~total =
    ignore
      (Span.open_span c ~component ~defect:Status.D_killed_by_user ~repetition:1 ~now:opened);
    Span.close_component c component ~now:(opened + total)
  in
  close ~component:"eth" ~opened:0 ~total:100;
  close ~component:"eth" ~opened:1000 ~total:300;
  close ~component:"blk" ~opened:2000 ~total:40;
  ignore (Span.open_span c ~component:"eth" ~defect:Status.D_exit ~repetition:3 ~now:5000);
  (* still open: excluded *)
  match Span.report c with
  | [ blk; eth ] ->
      Alcotest.(check string) "sorted by component" "blk" blk.Span.m_component;
      Alcotest.(check int) "blk n" 1 blk.Span.n;
      Alcotest.(check int) "eth n (open span excluded)" 2 eth.Span.n;
      Alcotest.(check int) "eth mean" 200 eth.Span.mean_us;
      Alcotest.(check int) "eth min" 100 eth.Span.min_us;
      Alcotest.(check int) "eth max" 300 eth.Span.max_us;
      Alcotest.(check int) "eth p95 (nearest rank of 2)" 300 eth.Span.p95_us
  | rs -> Alcotest.failf "expected two components, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* JSONL export                                                        *)
(* ------------------------------------------------------------------ *)

let test_export_jsonl () =
  let m = Metrics.create () in
  Metrics.add_named m "kernel.ipc.messages" 5;
  Metrics.set_named m "rs.restarts_pending" 2;
  Metrics.observe_named m "mttr_us" 100;
  let c = Span.create () in
  ignore (Span.open_span c ~component:"eth" ~defect:Status.D_heartbeat ~repetition:2 ~now:10);
  Span.close_component c "eth" ~now:60;
  let lines = Export.metric_lines ~label:"t" (Metrics.snapshot ~at:99 m) @ Export.span_lines ~label:"t" c in
  let has needle =
    List.exists (fun l ->
      let rec find i =
        i + String.length needle <= String.length l
        && (String.sub l i (String.length needle) = needle || find (i + 1))
      in
      find 0) lines
  in
  Alcotest.(check bool) "meta line" true (has {|"type":"meta"|});
  Alcotest.(check bool) "counter line" true (has {|"name":"kernel.ipc.messages","value":5|});
  Alcotest.(check bool) "gauge line carries the distribution" true
    (has {|"type":"gauge","label":"t","name":"rs.restarts_pending","value":2,"min":2,"max":2,"shards":1|});
  Alcotest.(check bool) "histogram line" true (has {|"type":"histogram"|});
  Alcotest.(check bool) "span line" true (has {|"type":"span"|});
  Alcotest.(check bool) "span total" true (has {|"total_us":50|});
  Alcotest.(check bool) "mttr line" true (has {|"type":"mttr"|});
  Alcotest.(check bool) "mttr component" true (has {|"component":"eth"|});
  (* every line must be minimally well-formed JSON object syntax *)
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

(* ------------------------------------------------------------------ *)
(* Quantile estimation                                                 *)
(* ------------------------------------------------------------------ *)

let hist_of samples =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) samples;
  match (Metrics.snapshot m).Metrics.histograms with
  | [ (_, hs) ] -> hs
  | _ -> Alcotest.fail "expected one histogram"

let test_quantile_edges () =
  Alcotest.(check int) "empty histogram" 0 (Metrics.quantile (hist_of []) 0.5);
  let one = hist_of [ 37 ] in
  Alcotest.(check int) "single sample p50" 37 (Metrics.quantile one 0.5);
  Alcotest.(check int) "single sample p99" 37 (Metrics.quantile one 0.99);
  Alcotest.(check int) "q<=0 is min" 37 (Metrics.quantile one 0.);
  Alcotest.(check int) "q>=1 is max" 37 (Metrics.quantile one 1.)

let test_quantile_two_point () =
  (* Two well-separated spikes: every quantile must land on (or very
     near) one of them — min/max clamping makes the extreme buckets
     exact. *)
  let h = hist_of (List.init 90 (fun _ -> 100) @ List.init 10 (fun _ -> 10_000)) in
  let in_bucket name v = Alcotest.(check bool) name true (v >= 100 && v <= 127) in
  (* the low spike's bucket is [64,127], clamped below by min_v=100 *)
  in_bucket "p50 within the low spike's bucket" (Metrics.quantile h 0.5);
  in_bucket "p90 within the low spike's bucket" (Metrics.quantile h 0.9);
  (* the high spike's bucket, clamped above by max_v *)
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 within the high spike's bucket (got %d)" p99)
    true
    (p99 > 5_000 && p99 <= 10_000);
  Alcotest.(check int) "p100 exactly the max" 10_000 (Metrics.quantile h 1.0)

let test_quantile_uniform () =
  (* Uniform over [1, 4096]: the log-bucket estimate must stay within
     one bucket width (a factor of 2) of the true quantile. *)
  let h = hist_of (List.init 4096 (fun i -> i + 1)) in
  List.iter
    (fun q ->
      let truth = int_of_float (q *. 4096.) in
      let est = Metrics.quantile h q in
      let ok = est >= truth / 2 && est <= truth * 2 in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within a bucket width (est %d, true %d)" (q *. 100.) est truth)
        true ok)
    [ 0.5; 0.9; 0.95; 0.99 ];
  (* and it must be monotone in q *)
  let est = List.map (Metrics.quantile h) [ 0.1; 0.5; 0.9; 0.99 ] in
  Alcotest.(check bool) "monotone" true (List.sort compare est = est)

let test_quantile_merge_consistent () =
  (* Quantiles of a merged snapshot = quantiles of the union of the
     samples (buckets add exactly). *)
  let m1 = Metrics.create () and m2 = Metrics.create () in
  let h1 = Metrics.histogram m1 "lat" and h2 = Metrics.histogram m2 "lat" in
  List.iter (Metrics.observe h1) (List.init 50 (fun i -> 10 + i));
  List.iter (Metrics.observe h2) (List.init 50 (fun i -> 5_000 + i));
  let merged = Metrics.merge (Metrics.snapshot m1) (Metrics.snapshot ~shard:1 m2) in
  match merged.Metrics.histograms with
  | [ (_, hs) ] ->
      let union = hist_of (List.init 50 (fun i -> 10 + i) @ List.init 50 (fun i -> 5_000 + i)) in
      List.iter
        (fun q ->
          Alcotest.(check int)
            (Printf.sprintf "q=%.2f agrees" q)
            (Metrics.quantile union q) (Metrics.quantile hs q))
        [ 0.25; 0.5; 0.75; 0.95 ]
  | _ -> Alcotest.fail "expected one merged histogram"

let test_json_escape () =
  Alcotest.(check string) "quotes and backslashes" {|a\"b\\c|} (Event.json_escape {|a"b\c|});
  Alcotest.(check string) "control chars" {|x\ny|} (Event.json_escape "x\ny")

let tests =
  [
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "counter handles share state" `Quick test_counter_handles_are_shared;
    Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
    Alcotest.test_case "histogram bucket edges (0, max_int)" `Quick test_bucket_edges;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "merge sums counters" `Quick test_merge_counters_sum;
    Alcotest.test_case "merge promotes gauges to distributions" `Quick
      test_merge_gauge_distribution;
    Alcotest.test_case "merge_all is order- and association-free" `Quick
      test_merge_all_reversed_order_identical;
    Alcotest.test_case "merge adds histograms bucket-wise" `Quick test_merge_histograms;
    Alcotest.test_case "merge identity and empty histograms" `Quick test_merge_empty_identity;
    Alcotest.test_case "merge_all folds every operand" `Quick
      test_merge_all_associative_on_counters;
    Alcotest.test_case "span concat" `Quick test_span_concat;
    Alcotest.test_case "trace ring overflow" `Quick test_trace_ring_overflow;
    Alcotest.test_case "typed trace query" `Quick test_trace_typed_query;
    Alcotest.test_case "span lifecycle and phases" `Quick test_span_lifecycle;
    Alcotest.test_case "reopen allowed once after close" `Quick test_span_reopen_after_close;
    Alcotest.test_case "MTTR report" `Quick test_mttr_report;
    Alcotest.test_case "quantile edges" `Quick test_quantile_edges;
    Alcotest.test_case "quantile two-point distribution" `Quick test_quantile_two_point;
    Alcotest.test_case "quantile uniform within bucket width" `Quick test_quantile_uniform;
    Alcotest.test_case "quantile merge consistency" `Quick test_quantile_merge_consistent;
    Alcotest.test_case "JSONL export" `Quick test_export_jsonl;
    Alcotest.test_case "json escaping" `Quick test_json_escape;
  ]
